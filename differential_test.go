package sage_test

// The differential safety net behind the serving layer: every registry
// algorithm, invoked through the same public RunAlgorithm path sage-serve
// dispatches to, cross-checked against the obviously-correct sequential
// oracles of internal/refalgo (or validated structurally where outputs
// are not unique) on seeded random graphs of several shapes — and on
// every storage opening a served dataset can have: memory-mapped,
// heap-copied, and byte-compressed. A registry algorithm without a
// checker here fails the test, so the net grows with the registry.

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"sage"
	"sage/internal/algos"
	"sage/internal/graph"
	"sage/internal/refalgo"
)

// oracles bundles one shape's reference inputs and lazily computed
// sequential answers, shared by all three openings.
type oracles struct {
	g, wg, sc *graph.Graph // in-memory CSRs the references run on
	numSets   uint32

	bfsDist   []uint32
	dijkstra  []int64
	widest    []int64
	bc        []float64
	comps     []uint32
	biconn    map[[2]uint32]int
	coreness  []uint32
	triangles int64
	kcliques  int64
	trussness map[[2]uint32]uint32
	pagerank  []float64
	ppr       []float64
	density   float64
}

func newOracles(g, wg, sc *graph.Graph, numSets uint32) *oracles {
	return &oracles{
		g: g, wg: wg, sc: sc, numSets: numSets,
		bfsDist:   refalgo.BFSDistances(g, 0),
		dijkstra:  refalgo.Dijkstra(wg, 0),
		widest:    refalgo.WidestPath(wg, 0),
		bc:        refalgo.Betweenness(g, 0),
		comps:     refalgo.Components(g, 0),
		biconn:    refalgo.Biconnected(g),
		coreness:  refalgo.Coreness(g),
		triangles: refalgo.Triangles(g),
		kcliques:  refalgo.KCliques(g, 4),
		trussness: refalgo.Trussness(g),
		pagerank:  refalgo.PageRank(g, 1e-10, 100),
		ppr:       refalgo.PersonalizedPageRank(g, 0, 0.85, 1e-9, 100),
		density:   refalgo.MaxDensity(g),
	}
}

// value asserts the dynamic type of a registry result.
func value[T any](t *testing.T, res *sage.AlgoResult) T {
	t.Helper()
	v, ok := res.Value.(T)
	if !ok {
		t.Fatalf("result has type %T, want %T", res.Value, v)
	}
	return v
}

func closeTo(a, b float64) bool { return math.Abs(a-b) <= 1e-8*(1+math.Abs(b)) }

// checkers maps every registry algorithm to its differential check.
var checkers = map[string]func(t *testing.T, o *oracles, res *sage.AlgoResult){
	"bfs": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		parents := value[[]uint32](t, res)
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			if (parents[v] == algos.Infinity) != (o.bfsDist[v] == algos.Infinity) {
				t.Fatalf("reachability mismatch at %d", v)
			}
			if parents[v] == algos.Infinity || v == 0 {
				continue
			}
			if o.bfsDist[parents[v]]+1 != o.bfsDist[v] {
				t.Fatalf("parent of %d (dist %d) is %d (dist %d)",
					v, o.bfsDist[v], parents[v], o.bfsDist[parents[v]])
			}
			if !o.g.HasEdge(parents[v], v) {
				t.Fatalf("parent edge (%d,%d) missing", parents[v], v)
			}
		}
	},
	"wbfs": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		dist := value[[]uint32](t, res)
		for v, want := range o.dijkstra {
			if want == math.MaxInt64 {
				if dist[v] != algos.Infinity {
					t.Fatalf("%d should be unreachable, got %d", v, dist[v])
				}
			} else if int64(dist[v]) != want {
				t.Fatalf("dist[%d]=%d want %d", v, dist[v], want)
			}
		}
	},
	"bellmanford": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		dist := value[[]int64](t, res)
		for v, want := range o.dijkstra {
			if want == math.MaxInt64 {
				if dist[v] != algos.InfDist {
					t.Fatalf("%d should be unreachable", v)
				}
			} else if dist[v] != want {
				t.Fatalf("dist[%d]=%d want %d", v, dist[v], want)
			}
		}
	},
	"widest":  checkWidest,
	"widestb": checkWidest,
	"bc": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		deps := value[[]float64](t, res)
		for v, want := range o.bc {
			if math.Abs(deps[v]-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("delta[%d]=%v want %v", v, deps[v], want)
			}
		}
	},
	"spanner": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		edges := value[[]sage.Edge](t, res)
		for _, e := range edges {
			if !o.g.HasEdge(e.U, e.V) {
				t.Fatalf("spanner edge (%d,%d) not in G", e.U, e.V)
			}
		}
		if int64(len(edges)) > 8*int64(o.g.NumVertices()) {
			t.Fatalf("spanner too large: %d edges for n=%d", len(edges), o.g.NumVertices())
		}
		// Spanning: the spanner must induce exactly G's components.
		h := graph.FromEdges(o.g.NumVertices(), edges, graph.BuildOpts{Symmetrize: true})
		if !refalgo.SameComponents(o.comps, refalgo.Components(h, 0)) {
			t.Fatal("spanner changes the component structure")
		}
	},
	"ldd": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		ldd := value[*algos.LDDResult](t, res)
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			c := ldd.Cluster[v]
			if c == algos.Infinity {
				t.Fatalf("vertex %d unclustered", v)
			}
			if ldd.Cluster[c] != c {
				t.Fatalf("center %d not in own cluster", c)
			}
			p := ldd.Parent[v]
			if v != c {
				if ldd.Cluster[p] != c {
					t.Fatalf("parent of %d in different cluster", v)
				}
				if p != c && !o.g.HasEdge(p, v) {
					t.Fatalf("parent edge (%d,%d) missing", p, v)
				}
			}
		}
	},
	"cc": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		labels := value[[]uint32](t, res)
		if !refalgo.SameComponents(o.comps, labels) {
			t.Fatal("connectivity partition differs from union-find")
		}
	},
	"forest": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		forest := value[[]sage.Edge](t, res)
		distinct := map[uint32]bool{}
		for _, c := range o.comps {
			distinct[c] = true
		}
		if want := int(o.g.NumVertices()) - len(distinct); len(forest) != want {
			t.Fatalf("forest has %d edges, want %d", len(forest), want)
		}
		parent := make([]uint32, o.g.NumVertices())
		for i := range parent {
			parent[i] = uint32(i)
		}
		var find func(x uint32) uint32
		find = func(x uint32) uint32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range forest {
			if !o.g.HasEdge(e.U, e.V) {
				t.Fatalf("forest edge (%d,%d) not in G", e.U, e.V)
			}
			a, b := find(e.U), find(e.V)
			if a == b {
				t.Fatalf("forest cycle through (%d,%d)", e.U, e.V)
			}
			parent[a] = b
		}
	},
	"biconn": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		bc := value[*algos.BiconnResult](t, res)
		got := map[[2]uint32]uint32{}
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			for _, u := range o.g.Neighbors(v) {
				if v < u {
					got[[2]uint32{v, u}] = bc.EdgeLabel(v, u)
				}
			}
		}
		if !refalgo.SamePartition(o.biconn, got) {
			t.Fatal("biconnected partitions differ from Hopcroft-Tarjan")
		}
	},
	"mis": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		in := value[[]bool](t, res)
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			hasIn := false
			for _, u := range o.g.Neighbors(v) {
				if in[u] {
					hasIn = true
					if in[v] {
						t.Fatalf("adjacent MIS members %d,%d", v, u)
					}
				}
			}
			if !in[v] && !hasIn {
				t.Fatalf("%d excluded but has no MIS neighbor", v)
			}
		}
	},
	"matching": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		match := value[[]sage.Edge](t, res)
		used := make([]bool, o.g.NumVertices())
		for _, e := range match {
			if !o.g.HasEdge(e.U, e.V) {
				t.Fatalf("matched edge (%d,%d) not in G", e.U, e.V)
			}
			if used[e.U] || used[e.V] {
				t.Fatal("vertex reused in matching")
			}
			used[e.U], used[e.V] = true, true
		}
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			for _, u := range o.g.Neighbors(v) {
				if !used[v] && !used[u] {
					t.Fatalf("edge (%d,%d) unmatched and free", v, u)
				}
			}
		}
	},
	"coloring": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		colors := value[[]uint32](t, res)
		maxDeg := o.g.MaxDegree()
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			if colors[v] > maxDeg {
				t.Fatalf("color %d exceeds Delta=%d", colors[v], maxDeg)
			}
			for _, u := range o.g.Neighbors(v) {
				if colors[u] == colors[v] {
					t.Fatalf("edge (%d,%d) monochromatic", v, u)
				}
			}
		}
	},
	"setcover": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		cover := value[[]uint32](t, res)
		chosen := make([]bool, o.numSets)
		for _, s := range cover {
			if s >= o.numSets {
				t.Fatalf("cover includes non-set %d", s)
			}
			chosen[s] = true
		}
		// Every coverable element (vertices >= numSets with a neighbor)
		// must be covered by a chosen set.
		for e := o.numSets; e < o.sc.NumVertices(); e++ {
			nghs := o.sc.Neighbors(e)
			if len(nghs) == 0 {
				continue
			}
			covered := false
			for _, s := range nghs {
				if s < o.numSets && chosen[s] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("element %d uncovered", e)
			}
		}
	},
	"kcore": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		core := value[[]uint32](t, res)
		for v, want := range o.coreness {
			if core[v] != want {
				t.Fatalf("core[%d]=%d want %d", v, core[v], want)
			}
		}
	},
	"densest": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		d := value[*algos.DensestResult](t, res)
		if d.Density < o.density/(2*(1+0.05))-1e-9 {
			t.Fatalf("density %.4f below the 2(1+eps) bound (certificate %.4f)", d.Density, o.density)
		}
		var inN, inArcs int64
		for v := uint32(0); v < o.g.NumVertices(); v++ {
			if !d.InSub[v] {
				continue
			}
			inN++
			for _, u := range o.g.Neighbors(v) {
				if d.InSub[u] {
					inArcs++
				}
			}
		}
		if inN == 0 {
			t.Fatal("empty densest subgraph")
		}
		if got := float64(inArcs) / 2 / float64(inN); math.Abs(got-d.Density) > 1e-9 {
			t.Fatalf("reported density %.6f but subgraph has %.6f", d.Density, got)
		}
	},
	"tc": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		tr := value[*algos.TriangleResult](t, res)
		if tr.Count != o.triangles {
			t.Fatalf("%d triangles, want %d", tr.Count, o.triangles)
		}
	},
	"pagerank-iter": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		next := value[[]float64](t, res)
		n := int(o.g.NumVertices())
		const d = 0.85
		for v := 0; v < n; v++ {
			var acc float64
			for _, u := range o.g.Neighbors(uint32(v)) {
				acc += (1 / float64(n)) / float64(o.g.Degree(u))
			}
			want := (1-d)/float64(n) + d*acc
			if !closeTo(next[v], want) {
				t.Fatalf("iter[%d]=%v want %v", v, next[v], want)
			}
		}
	},
	"pagerank": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		ranks := value[[]float64](t, res)
		for v, want := range o.pagerank {
			if !closeTo(ranks[v], want) {
				t.Fatalf("pr[%d]=%v want %v", v, ranks[v], want)
			}
		}
	},
	"ppr": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		ranks := value[[]float64](t, res)
		for v, want := range o.ppr {
			if !closeTo(ranks[v], want) {
				t.Fatalf("ppr[%d]=%v want %v", v, ranks[v], want)
			}
		}
	},
	"kclique": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		if got := value[int64](t, res); got != o.kcliques {
			t.Fatalf("%d 4-cliques, want %d", got, o.kcliques)
		}
	},
	"ktruss": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		kt := value[*algos.KTrussResult](t, res)
		for e, want := range o.trussness {
			got, ok := kt.EdgeTrussness(e[0], e[1])
			if !ok {
				t.Fatalf("edge %v missing from k-truss output", e)
			}
			if got != want {
				t.Fatalf("edge %v trussness %d want %d", e, got, want)
			}
		}
	},
	"localcluster": func(t *testing.T, o *oracles, res *sage.AlgoResult) {
		lc := value[*algos.LocalClusterResult](t, res)
		if len(lc.Members) == 0 {
			t.Fatal("empty cluster")
		}
		hasSeed := false
		inSet := map[uint32]bool{}
		var vol, cut int64
		for _, v := range lc.Members {
			if v >= o.g.NumVertices() {
				t.Fatalf("member %d out of range", v)
			}
			hasSeed = hasSeed || v == 0
			inSet[v] = true
		}
		if !hasSeed {
			t.Fatal("cluster omits the seed")
		}
		for v := range inSet {
			vol += int64(o.g.Degree(v))
			for _, u := range o.g.Neighbors(v) {
				if !inSet[u] {
					cut++
				}
			}
		}
		if vol == 0 {
			if lc.Conductance != 1 {
				t.Fatalf("degenerate cluster conductance %v, want 1", lc.Conductance)
			}
			return
		}
		total := int64(o.g.NumEdges())
		denom := vol
		if total-vol < denom {
			denom = total - vol
		}
		if denom <= 0 {
			return // cluster swallowed the component; conductance unchecked
		}
		want := float64(cut) / float64(denom)
		if math.Abs(want-lc.Conductance) > 1e-9 {
			t.Fatalf("reported conductance %.6f but cut/vol gives %.6f", lc.Conductance, want)
		}
	},
}

func checkWidest(t *testing.T, o *oracles, res *sage.AlgoResult) {
	widths := value[[]int64](t, res)
	for v, want := range o.widest {
		switch want {
		case math.MinInt64:
			if widths[v] != algos.NegInf {
				t.Fatalf("%d should be unreachable", v)
			}
		case math.MaxInt64:
			if widths[v] != algos.InfDist {
				t.Fatalf("src width wrong at %d", v)
			}
		default:
			if widths[v] != want {
				t.Fatalf("width[%d]=%d want %d", v, widths[v], want)
			}
		}
	}
}

// setCoverInstance derives the bipartite instance the way the harness
// does: every vertex is a set covering its neighborhood.
func setCoverInstance(g *sage.Graph) (*sage.Graph, uint32) {
	raw := g.RawCSR()
	n := raw.NumVertices()
	edges := make([]sage.Edge, 0, raw.NumEdges())
	for v := uint32(0); v < n; v++ {
		for _, u := range raw.Neighbors(v) {
			edges = append(edges, sage.Edge{U: v, V: n + u})
		}
	}
	return sage.FromEdges(2*n, edges), n
}

// persistAndOpen saves g (optionally compressed) and reopens it with the
// requested storage path, registering cleanup.
func persistAndOpen(t *testing.T, dir, name string, g *sage.Graph, compress, copyOpen bool) *sage.Graph {
	t.Helper()
	if compress {
		g = g.Compress(64)
	}
	path := filepath.Join(dir, name+".sg")
	if err := sage.Create(path, g); err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	var opts []sage.OpenOption
	if copyOpen {
		opts = append(opts, sage.WithCopy())
	}
	opened, err := sage.Open(path, opts...)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	t.Cleanup(func() { _ = opened.Close() })
	if compress && !opened.Compressed() {
		t.Fatalf("%s: compressed graph reopened uncompressed", name)
	}
	if !copyOpen && !opened.Mapped() {
		t.Fatalf("%s: binary open not memory-mapped", name)
	}
	return opened
}

// TestDifferentialRegistry is the randomized differential suite: every
// registry algorithm against its oracle, on several seeded graph shapes,
// for every storage opening. Runs under -race in CI.
func TestDifferentialRegistry(t *testing.T) {
	shapes := []struct {
		name  string
		build func() *sage.Graph
	}{
		{"rmat", func() *sage.Graph { return sage.GenerateRMAT(9, 8, 0xd1f) }},
		{"powerlaw", func() *sage.Graph { return sage.GeneratePowerLaw(500, 4, 0xd2f) }},
		{"erdos", func() *sage.Graph { return sage.GenerateErdosRenyi(400, 1500, 0xd3f) }},
		{"grid", func() *sage.Graph { return sage.GenerateGrid(20, 20, false) }},
	}
	// Every registry entry must have a checker — a new algorithm cannot
	// land without joining the differential net.
	for _, name := range sage.AlgorithmNames() {
		if checkers[name] == nil {
			t.Fatalf("registry algorithm %q has no differential checker", name)
		}
	}

	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			g := sh.build()
			wg := weighted(t, g, 0xbeef)
			sc, numSets := setCoverInstance(g)
			o := newOracles(g.RawCSR(), wg.RawCSR(), sc.RawCSR(), numSets)
			dir := t.TempDir()

			openings := []struct {
				name               string
				compress, copyOpen bool
			}{
				{"mmap", false, false},
				{"copy", false, true},
				{"compressed", true, false},
			}
			for _, op := range openings {
				t.Run(op.name, func(t *testing.T) {
					g2 := persistAndOpen(t, dir, "g-"+op.name, g, op.compress, op.copyOpen)
					wg2 := persistAndOpen(t, dir, "wg-"+op.name, wg, op.compress, op.copyOpen)
					sc2 := persistAndOpen(t, dir, "sc-"+op.name, sc, op.compress, op.copyOpen)
					e := sage.NewEngine()
					for _, a := range sage.Algorithms() {
						t.Run(a.Name, func(t *testing.T) {
							input, args := g2, sage.AlgoArgs{}
							if a.Weighted {
								input = wg2
							}
							if a.SetCover {
								input, args.NumSets = sc2, numSets
							}
							if a.Name == "pagerank" {
								args.Eps = 1e-10 // match the oracle's threshold
							}
							res, err := e.RunAlgorithm(context.Background(), a.Name, input, args)
							if err != nil {
								t.Fatalf("run: %v", err)
							}
							checkers[a.Name](t, o, res)
						})
					}
				})
			}
		})
	}
}
