package sage

import (
	"context"
	"fmt"
	"strings"

	"sage/internal/algos"
)

// This file is the public face of the unified algorithm registry: an
// enumerable description of every algorithm (name, parameter schema) and
// a name-based invoker that dispatches through the same per-run session
// machinery as the typed methods. The sage-run CLI and the experiment
// harness both derive their dispatch from the same underlying registry,
// so an algorithm added there is immediately runnable everywhere.

// ParamKind is the type of one algorithm parameter.
type ParamKind int

// Parameter kinds.
const (
	// ParamVertex is a vertex id.
	ParamVertex = ParamKind(algos.ArgVertex)
	// ParamInt is an integer parameter.
	ParamInt = ParamKind(algos.ArgInt)
	// ParamFloat is a floating-point parameter.
	ParamFloat = ParamKind(algos.ArgFloat)
)

// String names the kind for listings.
func (k ParamKind) String() string { return algos.ArgKind(k).String() }

// AlgorithmParam describes one parameter of an algorithm beyond the
// graph. Name matches the AlgoArgs field it binds to (lower-cased).
type AlgorithmParam struct {
	Name    string
	Kind    ParamKind
	Default float64
	Doc     string
}

// Algorithm describes one registered algorithm.
type Algorithm struct {
	// Name is the canonical key accepted by RunAlgorithm ("bfs", ...).
	Name string
	// Title is the display name used in the paper's figures.
	Title string
	// Doc is a one-line description.
	Doc string
	// Weighted algorithms interpret edge weights (all 1 on unweighted
	// inputs).
	Weighted bool
	// SetCover algorithms run on a bipartite set-cover instance and
	// require AlgoArgs.NumSets.
	SetCover bool
	// Params is the parameter schema beyond the graph.
	Params []AlgorithmParam
}

// Algorithms enumerates the registry: the paper's Figure 1 suite in
// order, then the PSAM-extension problems.
func Algorithms() []Algorithm {
	specs := algos.Registry()
	out := make([]Algorithm, len(specs))
	for i, s := range specs {
		params := make([]AlgorithmParam, len(s.Args))
		for j, a := range s.Args {
			params[j] = AlgorithmParam{Name: a.Name, Kind: ParamKind(a.Kind), Default: a.Default, Doc: a.Doc}
		}
		out[i] = Algorithm{
			Name: s.Name, Title: s.Title, Doc: s.Doc,
			Weighted: s.Weighted, SetCover: s.SetCover, Params: params,
		}
	}
	return out
}

// AlgorithmNames returns the canonical registry names in order.
func AlgorithmNames() []string { return algos.Names() }

// AlgoArgs carries the per-call parameters of a registry invocation.
// Zero values select each algorithm's documented default (see
// Algorithms()[i].Params). The JSON names match the parameter schema
// names, so a request body like {"src": 3, "maxiters": 50} maps directly
// — the wire format of the sage-serve run endpoint.
type AlgoArgs struct {
	Src      uint32  `json:"src,omitempty"`
	K        int     `json:"k,omitempty"`
	Eps      float64 `json:"eps,omitempty"`
	MaxIters int     `json:"maxiters,omitempty"`
	Beta     float64 `json:"beta,omitempty"`
	Damping  float64 `json:"damping,omitempty"`
	NumSets  uint32  `json:"numsets,omitempty"`
	MaxSize  int     `json:"maxsize,omitempty"`
}

// CanonicalArgs normalizes args against the named algorithm's parameter
// schema: parameters the algorithm does not take are zeroed, and omitted
// (zero-valued) parameters are replaced by their documented defaults.
// Two invocations that select the same computation therefore produce
// identical AlgoArgs — the property result caches key on. Unknown names
// report the registry's contents.
func CanonicalArgs(name string, args AlgoArgs) (AlgoArgs, error) {
	spec, ok := algos.Lookup(name)
	if !ok {
		return AlgoArgs{}, fmt.Errorf("sage: unknown algorithm %q (known: %s)",
			name, strings.Join(algos.Names(), ", "))
	}
	return AlgoArgs(spec.Canonical(algos.Args(args))), nil
}

// EstimateDRAMWords estimates the peak small-memory (DRAM) residency, in
// simulated words, of running the named algorithm on g. The estimate is
// vertex-proportional for the Table 1 problems and edge-proportional for
// the ones whose state is Θ(m) (triangle counting, k-clique, k-truss);
// admission controllers use it to bound the aggregate DRAM residency of
// concurrent runs, the constraint the PSAM's small-memory is about.
func EstimateDRAMWords(name string, g *Graph) (int64, error) {
	spec, ok := algos.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("sage: unknown algorithm %q (known: %s)",
			name, strings.Join(algos.Names(), ", "))
	}
	return spec.EstimateDRAMWords(uint64(g.NumVertices()), g.NumEdges()), nil
}

// AlgoResult is a registry invocation's outcome.
type AlgoResult struct {
	// Value is the algorithm's raw output (e.g. []uint32 parents for
	// "bfs"); consult the typed methods for each algorithm's type.
	Value any
	// Summary is a one-line human-readable result description.
	Summary string
	// Stats is the invocation's own PSAM accounting.
	Stats RunStats
}

// RunAlgorithm invokes a registered algorithm by name as its own Run:
// private counters merged into the engine aggregate, cancellation at
// frontier/iteration boundaries, per-call stats in the result. Unknown
// names report the registry's contents.
func (e *Engine) RunAlgorithm(ctx context.Context, name string, g *Graph, args AlgoArgs) (*AlgoResult, error) {
	spec, ok := algos.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sage: unknown algorithm %q (known: %s)",
			name, strings.Join(algos.Names(), ", "))
	}
	if spec.SetCover && args.NumSets == 0 {
		return nil, fmt.Errorf("sage: algorithm %q requires AlgoArgs.NumSets > 0", name)
	}
	for _, a := range spec.Args {
		if a.Name == "src" && args.Src >= g.NumVertices() {
			return nil, fmt.Errorf("sage: source vertex %d out of range (graph has %d vertices)",
				args.Src, g.NumVertices())
		}
	}
	if spec.Validate != nil {
		if err := spec.Validate(algos.Args(args)); err != nil {
			return nil, fmt.Errorf("sage: %w", err)
		}
	}
	r := e.NewRun()
	defer e.recycle(r)
	res, err := capture(r, ctx, func(o *algos.Options) algos.Result {
		return spec.Run(g.use(), o, algos.Args(args))
	})
	if err != nil {
		return nil, err
	}
	return &AlgoResult{Value: res.Value, Summary: res.Summary, Stats: r.Stats()}, nil
}
