package sage_test

// Runnable godoc examples for the public API entry points: the storage
// layer (Open/Create), the engine session model (NewRun), the name-based
// registry (RunAlgorithm), and batch-dynamic snapshots
// (Snapshot/ApplyBatch). Each runs under `go test` and in pkgsite; the
// CI docs job executes them all.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"sage"
)

// ExampleOpen stores a graph with Create and reopens it. On platforms
// with mmap the reopened graph's adjacency arrays alias the file's
// read-only mapping — the graph is consumed in place from storage.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "sage-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "grid.sg")

	if err := sage.Create(path, sage.GenerateGrid(4, 4, false)); err != nil {
		panic(err)
	}
	g, err := sage.Open(path) // sniffs the format, memory-maps the container
	if err != nil {
		panic(err)
	}
	defer g.Close() // releases the mapping; the graph must not be used after

	fmt.Println(g.NumVertices(), "vertices,", g.NumEdges(), "arcs")
	// Output: 16 vertices, 48 arcs
}

// ExampleEngine_NewRun holds an explicit Run session: the primitive
// behind every engine call, with private PSAM counters readable through
// Run.Stats. Engines are immutable and goroutine-safe; a Run is one
// session and is not.
func ExampleEngine_NewRun() {
	g := sage.GenerateChain(8) // the path graph 0-1-...-7
	e := sage.NewEngine(sage.WithMode(sage.AppDirect))

	run := e.NewRun()
	parents, err := run.BFS(context.Background(), g, 0)
	if err != nil {
		panic(err) // a background context cannot be cancelled
	}
	fmt.Println("parent of 7:", parents[7])
	fmt.Println("NVRAM writes:", run.Stats().NVRAMWrites) // semi-asymmetric: none
	// Output:
	// parent of 7: 6
	// NVRAM writes: 0
}

// ExampleEngine_RunAlgorithm invokes a registry algorithm by name — the
// dispatch path of the sage-run CLI and the sage-serve HTTP service.
// sage.Algorithms enumerates the names and parameter schemas.
func ExampleEngine_RunAlgorithm() {
	g := sage.FromEdges(5, []sage.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	e := sage.NewEngine()

	res, err := e.RunAlgorithm(context.Background(), "cc", g, sage.AlgoArgs{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Summary)
	// Output: 2 connected components
}

// ExampleGraph_Snapshot runs an algorithm on a batch-dynamic snapshot:
// the base graph stays read-only (and keeps answering queries untouched)
// while the update lives in a DRAM-resident delta overlay.
func ExampleGraph_Snapshot() {
	g := sage.GenerateChain(6) // one component: 0-1-2-3-4-5
	e := sage.NewEngine()

	snap, err := g.Snapshot().ApplyBatch([]sage.EdgeOp{{U: 2, V: 3, Del: true}})
	if err != nil {
		panic(err)
	}
	cut, _ := e.RunAlgorithm(context.Background(), "cc", snap.Graph(), sage.AlgoArgs{})
	base, _ := e.RunAlgorithm(context.Background(), "cc", g, sage.AlgoArgs{})
	fmt.Println("snapshot:", cut.Summary)
	fmt.Println("base:    ", base.Summary)
	// Output:
	// snapshot: 2 connected components
	// base:     1 connected components
}

// ExampleSnapshot_ApplyBatch shows the persistent-value semantics:
// applying a batch returns a new snapshot and leaves older ones (and the
// base) untouched, so in-flight readers never see a mutation.
func ExampleSnapshot_ApplyBatch() {
	g := sage.GenerateChain(4) // arcs: 0-1, 1-2, 2-3 both ways
	s0 := g.Snapshot()

	s1, err := s0.ApplyBatch([]sage.EdgeOp{{U: 0, V: 3}})
	if err != nil {
		panic(err)
	}
	fmt.Println("s0 arcs:", s0.NumEdges(), "delta words:", s0.DeltaWords())
	fmt.Println("s1 arcs:", s1.NumEdges(), "delta words:", s1.DeltaWords())

	// Reverting the op cancels the overlay out: s2 is the base again.
	s2, err := s1.ApplyBatch([]sage.EdgeOp{{U: 0, V: 3, Del: true}})
	if err != nil {
		panic(err)
	}
	fmt.Println("s2 is the base handle:", s2.Graph() == g)
	// Output:
	// s0 arcs: 6 delta words: 0
	// s1 arcs: 8 delta words: 10
	// s2 is the base handle: true
}
