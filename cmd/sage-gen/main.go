// Command sage-gen generates synthetic graphs and stores them through the
// sage dataset API, in any registered format (default: the mmap-able v2
// binary container that sage-run consumes in place).
//
// Usage:
//
//	sage-gen -kind rmat -logn 18 -deg 16 -out web.sg
//	sage-gen -kind grid -rows 512 -cols 512 -out road.sg
//	sage-gen -kind powerlaw -n 100000 -deg 8 -weighted -out social.sg
//	sage-gen -kind rmat -logn 16 -compress 64 -out web64.sg
//	sage-gen -kind chain -n 4096 -format adj -out path.adj
//
// Graph kinds:
//
//	rmat      R-MAT recursive-matrix graph, 2^logn vertices (social/web shape)
//	er        Erdos-Renyi G(n, m) with m = n*deg/2
//	powerlaw  preferential attachment with ~deg edges per vertex
//	grid      rows x cols lattice (-torus to wrap)
//	star      vertex 0 adjacent to all other n-1 vertices (max degree skew)
//	chain     path graph on n vertices (max diameter)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"sage"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat|er|powerlaw|grid|star|chain (see command doc)")
	logn := flag.Int("logn", 16, "log2 vertices (rmat), in [1, 30]")
	n := flag.Uint64("n", 1<<16, "vertices (er, powerlaw, star, chain)")
	deg := flag.Int("deg", 16, "average degree target (rmat, er, powerlaw)")
	rows := flag.Uint64("rows", 256, "grid rows")
	cols := flag.Uint64("cols", 256, "grid cols")
	torus := flag.Bool("torus", false, "wrap the grid")
	weighted := flag.Bool("weighted", false, "attach uniform weights in [1, log2 n)")
	seed := flag.Uint64("seed", 1, "generator seed")
	compressBS := flag.Int("compress", 0, "store byte-compressed with this block size (0 = CSR)")
	format := flag.String("format", "", "output format (default: by extension, else the v2 binary container)")
	out := flag.String("out", "", "output path (required)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sage-gen -kind <kind> [options] -out <path>\n\n"+
			"kinds: rmat (2^logn vertices), er, powerlaw, grid (rows x cols),\n"+
			"       star (hub 0 + n-1 leaves), chain (path on n vertices)\n"+
			"formats: %s\n\noptions:\n", strings.Join(sage.Formats(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "missing -out")
		flag.Usage()
		os.Exit(2)
	}

	// Validate ranges up front: a nonsensical flag must exit 2, not write a
	// degenerate (or address-space-sized) graph.
	switch *kind {
	case "rmat":
		if *logn < 1 || *logn > 30 {
			fail("-logn %d out of range [1, 30]", *logn)
		}
	case "er", "powerlaw", "star", "chain":
		if *n < 1 || *n > math.MaxUint32 {
			fail("-n %d out of range [1, 2^32)", *n)
		}
	case "grid":
		if *rows < 1 || *cols < 1 || *rows > math.MaxUint32 || *cols > math.MaxUint32 ||
			*rows**cols > math.MaxUint32 {
			fail("-rows %d x -cols %d out of range: need rows, cols >= 1 and rows*cols < 2^32", *rows, *cols)
		}
	default:
		fail("unknown kind %q (want rmat|er|powerlaw|grid|star|chain)", *kind)
	}
	switch *kind {
	case "rmat", "er", "powerlaw":
		if *deg < 1 {
			fail("-deg %d out of range: need >= 1", *deg)
		}
		vertices := uint64(1) << *logn
		if *kind != "rmat" {
			vertices = *n
		}
		if uint64(*deg) >= vertices {
			fail("-deg %d out of range: must be below the vertex count %d", *deg, vertices)
		}
		// Cap the total edge volume, not just each factor: n and deg can
		// each be in range while n*deg is an address-space-sized request.
		// (No int64 overflow: vertices < 2^32 and deg < 2^31.)
		if vertices*uint64(*deg) > 1<<32 {
			fail("vertex count %d x -deg %d targets %d arcs, beyond the 2^32 cap",
				vertices, *deg, vertices*uint64(*deg))
		}
	}
	if *compressBS < 0 || *compressBS > 1<<20 {
		fail("-compress %d out of range [0, 2^20]", *compressBS)
	}

	var g *sage.Graph
	switch *kind {
	case "rmat":
		g = sage.GenerateRMAT(*logn, *deg, *seed)
	case "er":
		g = sage.GenerateErdosRenyi(uint32(*n), int(*n)*(*deg)/2, *seed)
	case "powerlaw":
		g = sage.GeneratePowerLaw(uint32(*n), *deg/2, *seed)
	case "grid":
		g = sage.GenerateGrid(uint32(*rows), uint32(*cols), *torus)
	case "star":
		g = sage.GenerateStar(uint32(*n))
	case "chain":
		g = sage.GenerateChain(uint32(*n))
	}
	if *weighted {
		wg, err := g.WithUniformWeights(*seed + 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weight:", err)
			os.Exit(1)
		}
		g = wg
	}
	if *compressBS > 0 {
		g = g.Compress(*compressBS)
	}

	var opts []sage.SaveOption
	if *format != "" {
		opts = append(opts, sage.As(*format))
	}
	if err := sage.Create(*out, g, opts...); err != nil {
		fmt.Fprintln(os.Stderr, "save:", err)
		os.Exit(1)
	}
	kindTag := "csr"
	if g.Compressed() {
		kindTag = fmt.Sprintf("compressed(bs=%d)", *compressBS)
	}
	fmt.Printf("wrote %s: n=%d m=%d davg=%.1f weighted=%v repr=%s\n",
		*out, g.NumVertices(), g.NumEdges(),
		float64(g.NumEdges())/float64(max(g.NumVertices(), 1)), g.Weighted(), kindTag)
}
