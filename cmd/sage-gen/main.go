// Command sage-gen generates synthetic graphs and writes them in the
// binary format consumed by sage-run.
//
// Usage:
//
//	sage-gen -kind rmat -logn 18 -deg 16 -out web.sg
//	sage-gen -kind grid -rows 512 -cols 512 -out road.sg
//	sage-gen -kind powerlaw -n 100000 -deg 8 -weighted -out social.sg
package main

import (
	"flag"
	"fmt"
	"os"

	"sage/internal/gen"
	"sage/internal/graph"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat|er|powerlaw|grid|star|chain")
	logn := flag.Int("logn", 16, "log2 vertices (rmat)")
	n := flag.Uint("n", 1<<16, "vertices (er, powerlaw, star, chain)")
	deg := flag.Int("deg", 16, "average degree target")
	rows := flag.Uint("rows", 256, "grid rows")
	cols := flag.Uint("cols", 256, "grid cols")
	torus := flag.Bool("torus", false, "wrap the grid")
	weighted := flag.Bool("weighted", false, "attach uniform weights in [1, log2 n)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "missing -out")
		flag.Usage()
		os.Exit(2)
	}
	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = gen.RMAT(*logn, *deg, *seed)
	case "er":
		g = gen.ErdosRenyi(uint32(*n), int(*n)*(*deg)/2, *seed)
	case "powerlaw":
		g = gen.PowerLaw(uint32(*n), *deg/2, *seed)
	case "grid":
		g = gen.Grid2D(uint32(*rows), uint32(*cols), *torus)
	case "star":
		g = gen.Star(uint32(*n))
	case "chain":
		g = gen.Chain(uint32(*n))
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *weighted {
		g = gen.AddUniformWeights(g, *seed+1)
	}
	if err := g.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "save:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: n=%d m=%d davg=%.1f weighted=%v\n",
		*out, g.NumVertices(), g.NumEdges(),
		float64(g.NumEdges())/float64(g.NumVertices()), g.Weighted())
}
