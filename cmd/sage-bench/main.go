// Command sage-bench regenerates the paper's tables and figures over the
// synthetic workloads. The graph problems inside every experiment come
// from the same algorithm registry that backs sage-run and the public
// sage.Algorithms API (see internal/harness.Problems).
//
// Usage:
//
//	sage-bench -exp fig1 -scale 16
//	sage-bench -exp all  -scale 14 -cache /tmp/sage-workloads
//	sage-bench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"sage/internal/harness"
)

// experiments is the ordered experiment table.
var experiments = []struct {
	ID  string
	Doc string
	Run func(scale int) []*harness.Report
}{
	{"fig1", "NVRAM systems on a larger-than-DRAM graph", one(harness.RunFig1)},
	{"fig2", "graph corpus density envelope", func(int) []*harness.Report { return []*harness.Report{harness.RunFig2()} }},
	{"fig6", "self-relative speedup sweep", one(harness.RunFig6)},
	{"fig7", "DRAM vs NVRAM configurations in-memory", one(harness.RunFig7)},
	{"table1", "PSAM cost vs write asymmetry omega", one(harness.RunTable1)},
	{"table2", "graph inputs", one(harness.RunTable2)},
	{"table3", "Sage vs semi-external streaming", one(harness.RunTable3)},
	{"table4", "triangle counting vs filter block size", one(harness.RunTable4)},
	{"table5", "traversal strategy memory usage", one(harness.RunTable5)},
	{"sec52", "NUMA layout micro-benchmark", one(harness.RunSec52)},
	{"appD1", "triangle counting vs vertex ordering", one(harness.RunAppD1)},
	{"all", "every experiment", harness.RunAll},
}

// one adapts a single-report runner.
func one(f func(int) *harness.Report) func(int) []*harness.Report {
	return func(scale int) []*harness.Report { return []*harness.Report{f(scale)} }
}

func listExperiments(w *os.File) {
	fmt.Fprintln(w, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(w, "  %-8s %s\n", e.ID, e.Doc)
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	scale := flag.Int("scale", 16, "log2 vertices of the R-MAT workload")
	list := flag.Bool("list", false, "list the experiments and exit")
	cache := flag.String("cache", "", "workload cache directory: persist the generated graphs through the dataset layer and reopen them memory-mapped on later runs")
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}
	if *cache != "" {
		if err := harness.SetWorkloadCache(*cache); err != nil {
			fmt.Fprintln(os.Stderr, "cache:", err)
			os.Exit(1)
		}
		defer harness.CloseWorkloadCache()
	}
	for _, e := range experiments {
		if e.ID == *exp {
			for _, rep := range e.Run(*scale) {
				fmt.Println(rep.String())
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", *exp)
	listExperiments(os.Stderr)
	os.Exit(2)
}
