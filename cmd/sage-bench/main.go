// Command sage-bench regenerates the paper's tables and figures over the
// synthetic workloads.
//
// Usage:
//
//	sage-bench -exp fig1 -scale 16
//	sage-bench -exp all  -scale 14
//
// Experiments: fig1, fig2, fig6, fig7, table1, table2, table3, table4,
// table5, sec52, all. Scale is log2 of the vertex count of the main
// R-MAT workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"sage/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1|fig2|fig6|fig7|table1|table2|table3|table4|table5|sec52|all)")
	scale := flag.Int("scale", 16, "log2 vertices of the R-MAT workload")
	flag.Parse()

	runners := map[string]func() []*harness.Report{
		"fig1":   func() []*harness.Report { return []*harness.Report{harness.RunFig1(*scale)} },
		"fig2":   func() []*harness.Report { return []*harness.Report{harness.RunFig2()} },
		"fig6":   func() []*harness.Report { return []*harness.Report{harness.RunFig6(*scale)} },
		"fig7":   func() []*harness.Report { return []*harness.Report{harness.RunFig7(*scale)} },
		"table1": func() []*harness.Report { return []*harness.Report{harness.RunTable1(*scale)} },
		"table2": func() []*harness.Report { return []*harness.Report{harness.RunTable2(*scale)} },
		"table3": func() []*harness.Report { return []*harness.Report{harness.RunTable3(*scale)} },
		"table4": func() []*harness.Report { return []*harness.Report{harness.RunTable4(*scale)} },
		"table5": func() []*harness.Report { return []*harness.Report{harness.RunTable5(*scale)} },
		"sec52":  func() []*harness.Report { return []*harness.Report{harness.RunSec52(*scale)} },
		"appD1":  func() []*harness.Report { return []*harness.Report{harness.RunAppD1(*scale)} },
		"all":    func() []*harness.Report { return harness.RunAll(*scale) },
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	for _, rep := range run() {
		fmt.Println(rep.String())
	}
}
