// Command sage-serve runs the Sage graph-query service: a catalog of
// stored graphs kept resident (memory-mapped and shared across requests)
// with every registry algorithm exposed over HTTP.
//
// Datasets are named on the command line, either explicitly
// (-dataset name=path, repeatable) or as positional paths whose basename
// becomes the name. Files are opened lazily on first query, shared by all
// concurrent runs, and LRU-evicted under -dataset-budget.
//
// Endpoints:
//
//	GET  /healthz                      liveness + uptime
//	GET  /readyz                       routing readiness (503 during WAL replay and drain)
//	GET  /v1/datasets                  catalog listing (with live delta state)
//	GET  /v1/algorithms                registry with the JSON args schema
//	POST /v1/run/{dataset}/{algo}      run; JSON body = args, e.g. {"src": 3}
//	POST /v1/update/{dataset}          batch edge updates; {"ops":[{"u":1,"v":2}]}
//	GET  /metrics                      engine PSAM aggregate + service counters
//
// Admission control: -max-concurrent bounds runs in flight,
// -dram-budget bounds their summed estimated DRAM residency in simulated
// words, and -cost-budget bounds their summed predicted cost under the
// -cost-model hardware profile (optane|dram|reram|flash); excess load is
// shed with 429 + a Retry-After computed from live queue state. Every
// run answers with X-Sage-Cost-* headers (predicted vs. actual cost
// under the model). A client disconnect cancels its run at the next
// frontier/iteration boundary.
//
// Batch updates keep the stored file immutable: edge inserts/deletes live
// in a DRAM-resident delta overlay, served as immutable snapshots so
// in-flight runs finish on the version they started with. -delta-budget
// bounds each overlay's DRAM words (batches beyond it answer 507 until a
// {"compact": true} update folds the overlay into a rewritten file).
// -auto-compact-cost triggers that fold automatically once the overlay's
// predicted traversal overhead under the cost model crosses the given
// threshold (with hysteresis, so a hovering dataset does not flap).
//
// Durability: with -wal (the default), every accepted batch is appended
// to a per-dataset write-ahead log at <path>.wal — fsynced per
// -wal-fsync before the 200 is written — and replayed onto the stored
// file at startup, so updates survive a crash or kill. When the log is
// unwritable (disk full, I/O errors) the dataset degrades to read-only:
// reads keep serving, writes answer 503 {"reason": "read_only"}, and the
// dataset heals automatically when the disk does. Concurrent batches to
// one dataset share fsyncs through a group-commit window, and
// -wal-segment-bytes rotates a growing log into a numbered segment chain
// replayed in order at startup. A compaction folds the logged batches
// into the rewritten container and retires the whole chain.
// See docs/HTTP_API.md for the full endpoint reference.
//
// Cluster mode: -role=router turns the process into the scale-out
// front-end instead of a replica. A router holds no datasets; it hashes
// the {dataset} path segment on a consistent-hash ring over the -peers
// replicas and proxies the same API — responses relayed verbatim, so
// clients cannot tell a routed answer from a direct one. Reads fail over
// around dead replicas; writes fan out to every owner with the primary's
// generation attached and answer 502 with a machine-readable reason when
// an owner is unreachable (update batches are idempotent: retry the same
// batch once the replica is back). See docs/ARCHITECTURE.md for the
// topology and docs/HTTP_API.md for the router's error contract.
//
// Usage:
//
//	sage-gen -kind rmat -logn 20 -deg 16 -out web.sg
//	sage-serve -listen :8080 -dataset web=web.sg
//	curl -X POST localhost:8080/v1/run/web/bfs -d '{"src": 0}'
//
// Cluster usage (two replicas, replication 2, one router):
//
//	sage-serve -listen :8081 -dataset web=r1/web.sg &
//	sage-serve -listen :8082 -dataset web=r2/web.sg &
//	sage-serve -role=router -listen :8080 -peers r1=http://localhost:8081,r2=http://localhost:8082
//	curl -X POST localhost:8080/v1/run/web/bfs -d '{"src": 0}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sage"
	"sage/internal/cluster"
	"sage/internal/server"
	"sage/internal/wal"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	role := flag.String("role", "replica", "replica (serve datasets) | router (proxy the API across -peers)")
	peersFlag := flag.String("peers", "", "router: comma-separated name=url replica endpoints")
	replication := flag.Int("replication", 0, "router: replicas owning each dataset (0 = the NUMA model's per-socket recommendation)")
	vnodes := flag.Int("vnodes", 0, "router: virtual nodes per replica on the hash ring (0 = 128)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "router: background /readyz probe period (negative disables)")
	retryBackoff := flag.Duration("retry-backoff", 100*time.Millisecond, "router: read-failover pause and down-replica quarantine window")
	routerCacheEntries := flag.Int("router-cache-entries", 0, "router: router-side result-cache capacity (0 = disabled)")
	routerCacheBytes := flag.Int64("router-cache-bytes", 0, "router: router-side result-cache byte budget (0 = 64 MiB when enabled)")
	modeName := flag.String("mode", "appdirect", "dram|appdirect|memorymode|nvramall")
	strategyName := flag.String("strategy", "chunked", "chunked|blocked|sparse|auto")
	costModelName := flag.String("cost-model", "optane", "hardware cost profile: "+strings.Join(sage.CostModelNames(), "|"))
	maxConcurrent := flag.Int("max-concurrent", 0, "max runs in flight (0 = GOMAXPROCS)")
	dramBudget := flag.Int64("dram-budget", 0, "aggregate DRAM budget for concurrent runs, in simulated words (0 = unlimited)")
	costBudget := flag.Int64("cost-budget", 0, "aggregate predicted-cost budget for concurrent runs, in model cost units (0 = unlimited)")
	autoCompactCost := flag.Int64("auto-compact-cost", 0, "predicted overlay traversal overhead, in model cost units, at which a dataset auto-compacts (0 = disabled)")
	datasetBudget := flag.Int64("dataset-budget", 0, "resident-dataset budget in simulated words; idle datasets beyond it are evicted (0 = unlimited)")
	deltaBudget := flag.Int64("delta-budget", 0, "per-dataset update-overlay DRAM budget in simulated words; over-budget batches answer 507 (0 = unlimited)")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache capacity (negative disables)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte budget (0 = 64 MiB default)")
	queueWait := flag.Duration("queue-wait", 0, "how long a run may wait for a concurrency slot before 429")
	maxRun := flag.Duration("max-run", 0, "per-run execution limit (0 = unbounded)")
	copyDatasets := flag.Bool("copy", false, "load datasets into private heap memory instead of memory-mapping")
	preload := flag.Bool("preload", false, "open every dataset at startup instead of lazily")
	walEnabled := flag.Bool("wal", true, "write-ahead log update batches to <dataset>.wal and replay them at startup")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always|interval|never")
	walInterval := flag.Duration("wal-interval", 100*time.Millisecond, "background flush period under -wal-fsync interval")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "rotate the active WAL segment once it reaches this many bytes (0 = never)")
	drainGrace := flag.Duration("drain-grace", 0, "delay between /readyz reporting draining and connection shutdown, for load balancers to catch up")

	type namedPath struct{ name, path string }
	var datasets []namedPath
	flag.Func("dataset", "name=path of a stored graph (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		datasets = append(datasets, namedPath{name, path})
		return nil
	})
	flag.Parse()

	// Positional paths: name = basename without extension.
	for _, path := range flag.Args() {
		base := filepath.Base(path)
		datasets = append(datasets, namedPath{strings.TrimSuffix(base, filepath.Ext(base)), path})
	}
	if *role == "router" {
		if len(datasets) != 0 {
			fmt.Fprintln(os.Stderr, "a router holds no datasets; point -peers at the replicas that do")
			os.Exit(2)
		}
		runRouter(*listen, *peersFlag, *replication, *vnodes,
			*probeInterval, *retryBackoff, *routerCacheEntries, *routerCacheBytes, *drainGrace)
		return
	}
	if *role != "replica" {
		fmt.Fprintf(os.Stderr, "unknown role %q (want replica or router)\n", *role)
		os.Exit(2)
	}
	if len(datasets) == 0 {
		fmt.Fprintln(os.Stderr, "no datasets: pass -dataset name=path or positional graph paths")
		flag.Usage()
		os.Exit(2)
	}

	modes := map[string]sage.Mode{
		"dram": sage.DRAM, "appdirect": sage.AppDirect,
		"memorymode": sage.MemoryMode, "nvramall": sage.NVRAMAll,
	}
	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	strategies := map[string]sage.Strategy{
		"chunked": sage.Chunked, "blocked": sage.Blocked, "sparse": sage.Sparse,
		"auto": sage.Auto,
	}
	strategy, ok := strategies[*strategyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}
	costModel, ok := sage.LookupCostModel(*costModelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown cost model %q (have %s)\n", *costModelName, strings.Join(sage.CostModelNames(), ", "))
		os.Exit(2)
	}
	walPolicy, err := wal.ParsePolicy(*walFsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Engine:             sage.NewEngine(sage.WithMode(mode), sage.WithStrategy(strategy), sage.WithModel(costModel)),
		MaxConcurrent:      *maxConcurrent,
		DRAMBudgetWords:    *dramBudget,
		CostBudget:         *costBudget,
		AutoCompactCost:    *autoCompactCost,
		DatasetBudgetWords: *datasetBudget,
		DeltaBudgetWords:   *deltaBudget,
		ResultCacheEntries: *cacheEntries,
		ResultCacheBytes:   *cacheBytes,
		QueueWait:          *queueWait,
		MaxRunDuration:     *maxRun,
		CopyDatasets:       *copyDatasets,
		Durability: server.Durability{
			Enabled:      *walEnabled,
			Policy:       walPolicy,
			Interval:     *walInterval,
			SegmentBytes: *walSegmentBytes,
		},
	})
	names := make([]string, 0, len(datasets))
	for _, d := range datasets {
		if err := srv.AddDataset(d.name, d.path); err != nil {
			fmt.Fprintln(os.Stderr, "dataset:", err)
			os.Exit(2)
		}
		names = append(names, d.name)
	}
	if *preload {
		// Warm the serving catalog itself: the datasets are resident
		// before the first query, and a corrupt file fails the start
		// instead of a request.
		for _, d := range datasets {
			if err := srv.Preload(d.name); err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", d.name, err)
				os.Exit(1)
			}
		}
	}

	// Bind before announcing, so "serving" in the log means reachable.
	// WAL replay runs after the listener is up: /readyz answers 503
	// ("starting") until Recover finishes, so load balancers hold traffic
	// while large logs replay, then flip to ready.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	if *walEnabled {
		replayed, degraded := srv.Recover()
		if replayed > 0 {
			log.Printf("sage-serve: replayed %d write-ahead batch(es)", replayed)
		}
		for _, name := range degraded {
			log.Printf("sage-serve: dataset %s is read-only (write-ahead log unavailable)", name)
		}
	}
	log.Printf("sage-serve: %d dataset(s) [%s], %d algorithms, mode %s, serving on %s",
		len(names), strings.Join(names, ", "), len(sage.AlgorithmNames()), *modeName, ln.Addr())

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	// Graceful drain: flip /readyz to 503 first so load balancers stop
	// routing, give them -drain-grace to notice, then close connections.
	srv.BeginDrain()
	log.Printf("sage-serve: draining")
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	log.Printf("sage-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// runRouter is the -role=router main loop: build the ring over -peers,
// probe them once so the first requests route on fresh health state, and
// proxy until a signal drains the process.
func runRouter(listen, peersFlag string, replication, vnodes int,
	probeInterval, retryBackoff time.Duration, cacheEntries int, cacheBytes int64,
	drainGrace time.Duration) {
	if peersFlag == "" {
		fmt.Fprintln(os.Stderr, "router role needs -peers name=url[,name=url...]")
		os.Exit(2)
	}
	peers, err := cluster.ParsePeers(peersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:         peers,
		VNodes:        vnodes,
		Replication:   replication,
		ProbeInterval: probeInterval,
		RetryBackoff:  retryBackoff,
		CacheEntries:  cacheEntries,
		CacheBytes:    cacheBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rt.ProbeNow()
	rt.Start()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	names := make([]string, len(peers))
	for i, p := range peers {
		names[i] = p.Name
	}
	log.Printf("sage-serve: router over %d replica(s) [%s], serving on %s",
		len(peers), strings.Join(names, ", "), ln.Addr())

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	rt.BeginDrain()
	log.Printf("sage-serve: draining")
	if drainGrace > 0 {
		time.Sleep(drainGrace)
	}
	log.Printf("sage-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	rt.Close()
}
