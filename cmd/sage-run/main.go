// Command sage-run executes one Sage algorithm on a stored graph under a
// chosen memory configuration and reports the result summary, wall-clock
// time, and the run's simulated PSAM statistics.
//
// The algorithm surface comes entirely from the engine's registry
// (sage.Algorithms): -list enumerates it, -algo selects from it, and an
// interrupt (Ctrl-C) cancels the run mid-algorithm through the engine's
// context support.
//
// Graphs are opened through the sage dataset API: the storage format is
// sniffed from the file (override with -format; -formats lists the
// registry), and binary containers are memory-mapped so the adjacency
// arrays are consumed in place from the file — pass -copy to load into
// private heap memory instead.
//
// Usage:
//
//	sage-run -list
//	sage-run -formats
//	sage-run -graph web.sg -algo bfs -src 0
//	sage-run -graph web.sg -algo kcore -mode memorymode -copy
//	sage-run -graph social.adj -algo pagerank -maxiters 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sage"
)

// listAlgorithms prints the registry as an aligned table.
func listAlgorithms(w *os.File) {
	fmt.Fprintln(w, "registered algorithms:")
	for _, a := range sage.Algorithms() {
		params := ""
		for _, p := range a.Params {
			params += fmt.Sprintf(" -%s=%v", p.Name, p.Default)
		}
		tag := ""
		if a.Weighted {
			tag = " [weighted]"
		}
		if a.SetCover {
			tag = " [bipartite; requires -numsets]"
		}
		fmt.Fprintf(w, "  %-14s %s%s\n", a.Name, a.Doc, tag)
		if params != "" {
			fmt.Fprintf(w, "  %-14s   params:%s\n", "", params)
		}
	}
}

func main() {
	path := flag.String("graph", "", "graph path (any registered format; see -formats)")
	algo := flag.String("algo", "bfs", "algorithm name from the registry (see -list)")
	list := flag.Bool("list", false, "list the algorithm registry and exit")
	listFormats := flag.Bool("formats", false, "list the storage format registry and exit")
	formatName := flag.String("format", "", "override storage-format sniffing (see -formats)")
	copyGraph := flag.Bool("copy", false, "load into private heap memory instead of memory-mapping")
	modeName := flag.String("mode", "appdirect", "dram|appdirect|memorymode|nvramall")
	strategyName := flag.String("strategy", "chunked", "chunked|blocked|sparse")
	compressBS := flag.Int("compress", 0, "re-compress the graph in memory with this block size (0 = keep stored representation)")

	src := flag.Uint("src", 0, "source vertex for rooted algorithms")
	k := flag.Int("k", 0, "k parameter (spanner stretch, clique size; 0 = algorithm default)")
	eps := flag.Float64("eps", 0, "convergence / approximation parameter (0 = algorithm default)")
	maxIters := flag.Int("maxiters", 0, "iteration cap (0 = algorithm default)")
	beta := flag.Float64("beta", 0, "LDD decomposition parameter (0 = default 0.2)")
	damping := flag.Float64("damping", 0, "PageRank damping factor (0 = default 0.85)")
	numSets := flag.Uint("numsets", 0, "set count for the bipartite set-cover instance")
	maxSize := flag.Int("maxsize", 0, "local-cluster sweep-cut size cap (0 = unbounded)")
	flag.Parse()

	if *list {
		listAlgorithms(os.Stdout)
		return
	}
	if *listFormats {
		fmt.Println("registered storage formats:")
		for _, line := range sage.FormatDescriptions() {
			fmt.Println(" ", line)
		}
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "missing -graph")
		flag.Usage()
		os.Exit(2)
	}
	var openOpts []sage.OpenOption
	if *formatName != "" {
		openOpts = append(openOpts, sage.WithFormat(*formatName))
	}
	if *copyGraph {
		openOpts = append(openOpts, sage.WithCopy())
	}
	g, err := sage.Open(*path, openOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer g.Close()
	if *compressBS > 0 {
		g = g.Compress(*compressBS)
	}

	modes := map[string]sage.Mode{
		"dram": sage.DRAM, "appdirect": sage.AppDirect,
		"memorymode": sage.MemoryMode, "nvramall": sage.NVRAMAll,
	}
	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	strategies := map[string]sage.Strategy{
		"chunked": sage.Chunked, "blocked": sage.Blocked, "sparse": sage.Sparse,
	}
	strategy, ok := strategies[*strategyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}

	known := false
	for _, name := range sage.AlgorithmNames() {
		if name == *algo {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n\n", *algo)
		listAlgorithms(os.Stderr)
		os.Exit(2)
	}

	// Validate before the lossy uint32 conversions below: an oversized
	// -src must exit 2, not wrap around and run from the wrong vertex.
	if *src >= uint(g.NumVertices()) {
		fmt.Fprintf(os.Stderr, "src %d out of range: graph has %d vertices\n", *src, g.NumVertices())
		os.Exit(2)
	}
	if *numSets > uint(g.NumVertices()) {
		fmt.Fprintf(os.Stderr, "numsets %d out of range: graph has %d vertices\n", *numSets, g.NumVertices())
		os.Exit(2)
	}

	opts := []sage.Option{sage.WithMode(mode), sage.WithStrategy(strategy)}
	if mode == sage.MemoryMode {
		opts = append(opts, sage.WithCache(g.SizeWords()/8))
	}
	e := sage.NewEngine(opts...)

	// Ctrl-C cancels the run at the next frontier/iteration boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	args := sage.AlgoArgs{
		Src: uint32(*src), K: *k, Eps: *eps, MaxIters: *maxIters,
		Beta: *beta, Damping: *damping, NumSets: uint32(*numSets), MaxSize: *maxSize,
	}
	start := time.Now()
	res, err := e.RunAlgorithm(ctx, *algo, g, args)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		if ctx.Err() != nil {
			os.Exit(130) // interrupted
		}
		os.Exit(2)
	}

	storage := "heap copy"
	if g.Mapped() {
		storage = "mmap (zero-copy)"
	}
	fmt.Printf("%s on n=%d m=%d [%s, %s, %s]\n",
		*algo, g.NumVertices(), g.NumEdges(), *modeName, *strategyName, storage)
	fmt.Println(" ", res.Summary)
	fmt.Println("  time:", elapsed.Round(time.Microsecond))
	fmt.Println("  run stats:", res.Stats)
}
