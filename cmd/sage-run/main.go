// Command sage-run executes one Sage algorithm on a stored graph under a
// chosen memory configuration and reports the result summary, wall-clock
// time, and simulated PSAM statistics.
//
// Usage:
//
//	sage-run -graph web.sg -algo bfs -src 0
//	sage-run -graph web.sg -algo kcore -mode memorymode
//	sage-run -graph social.sg -algo wbfs -src 3 -mode appdirect
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sage"
)

func main() {
	path := flag.String("graph", "", "binary graph path (from sage-gen)")
	algo := flag.String("algo", "bfs", "bfs|wbfs|bellmanford|widest|bc|spanner|ldd|cc|forest|biconn|mis|matching|coloring|kcore|densest|tc|pagerank|ppr|kclique|ktruss|localcluster")
	src := flag.Uint("src", 0, "source vertex for rooted algorithms")
	modeName := flag.String("mode", "appdirect", "dram|appdirect|memorymode|nvramall")
	strategyName := flag.String("strategy", "chunked", "chunked|blocked|sparse")
	compressBS := flag.Int("compress", 0, "compress the graph with this block size (0 = uncompressed)")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "missing -graph")
		flag.Usage()
		os.Exit(2)
	}
	g, err := sage.Load(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	if *compressBS > 0 {
		g = g.Compress(*compressBS)
	}

	modes := map[string]sage.Mode{
		"dram": sage.DRAM, "appdirect": sage.AppDirect,
		"memorymode": sage.MemoryMode, "nvramall": sage.NVRAMAll,
	}
	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	strategies := map[string]sage.Strategy{
		"chunked": sage.Chunked, "blocked": sage.Blocked, "sparse": sage.Sparse,
	}
	strategy, ok := strategies[*strategyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}

	opts := []sage.Option{sage.WithMode(mode), sage.WithStrategy(strategy)}
	if mode == sage.MemoryMode {
		opts = append(opts, sage.WithCache(g.SizeWords()/8))
	}
	e := sage.NewEngine(opts...)
	if *src >= uint(g.NumVertices()) {
		fmt.Fprintf(os.Stderr, "src %d out of range: graph has %d vertices\n", *src, g.NumVertices())
		os.Exit(2)
	}
	s := uint32(*src)

	start := time.Now()
	var summary string
	switch *algo {
	case "bfs":
		parents := e.BFS(g, s)
		reached := 0
		for _, p := range parents {
			if p != ^uint32(0) {
				reached++
			}
		}
		summary = fmt.Sprintf("reached %d of %d vertices", reached, g.NumVertices())
	case "wbfs":
		dist := e.WBFS(g, s)
		summary = fmt.Sprintf("computed %d distances", len(dist))
	case "bellmanford":
		dist := e.BellmanFord(g, s)
		summary = fmt.Sprintf("computed %d distances", len(dist))
	case "widest":
		w := e.WidestPath(g, s)
		summary = fmt.Sprintf("computed %d widths", len(w))
	case "bc":
		deps := e.Betweenness(g, s)
		var maxDep float64
		for _, d := range deps {
			if d > maxDep {
				maxDep = d
			}
		}
		summary = fmt.Sprintf("max dependency %.2f", maxDep)
	case "spanner":
		edges := e.Spanner(g, 0)
		summary = fmt.Sprintf("spanner with %d edges (n=%d)", len(edges), g.NumVertices())
	case "ldd":
		res := e.LDD(g, 0.2)
		summary = fmt.Sprintf("decomposed in %d rounds", res.Rounds)
	case "cc":
		labels := e.Connectivity(g)
		distinct := map[uint32]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		summary = fmt.Sprintf("%d connected components", len(distinct))
	case "forest":
		f := e.SpanningForest(g)
		summary = fmt.Sprintf("spanning forest with %d edges", len(f))
	case "biconn":
		res := e.Biconnectivity(g)
		distinct := map[uint32]bool{}
		for v, l := range res.Label {
			if res.Parent[v] != uint32(v) && res.Parent[v] != ^uint32(0) {
				distinct[l] = true
			}
		}
		summary = fmt.Sprintf("%d biconnected components (tree-edge labels)", len(distinct))
	case "mis":
		in := e.MIS(g)
		count := 0
		for _, b := range in {
			if b {
				count++
			}
		}
		summary = fmt.Sprintf("independent set of size %d", count)
	case "matching":
		m := e.MaximalMatching(g)
		summary = fmt.Sprintf("matching of size %d", len(m))
	case "coloring":
		colors := e.Coloring(g)
		maxC := uint32(0)
		for _, c := range colors {
			if c > maxC {
				maxC = c
			}
		}
		summary = fmt.Sprintf("used %d colors", maxC+1)
	case "kcore":
		core := e.KCore(g)
		maxK := uint32(0)
		for _, k := range core {
			if k > maxK {
				maxK = k
			}
		}
		summary = fmt.Sprintf("max coreness %d", maxK)
	case "densest":
		res := e.ApproxDensestSubgraph(g)
		summary = fmt.Sprintf("density %.3f in %d rounds", res.Density, res.Rounds)
	case "tc":
		res := e.TriangleCount(g)
		summary = fmt.Sprintf("%d triangles (intersection work %d, total work %d)",
			res.Count, res.IntersectionWork, res.TotalWork)
	case "pagerank":
		_, iters := e.PageRank(g, 1e-6, 100)
		summary = fmt.Sprintf("converged in %d iterations", iters)
	case "ppr":
		_, iters := e.PersonalizedPageRank(g, s, 0.85, 1e-9, 100)
		summary = fmt.Sprintf("personalized PageRank converged in %d iterations", iters)
	case "kclique":
		c := e.KCliqueCount(g, 4)
		summary = fmt.Sprintf("%d 4-cliques", c)
	case "ktruss":
		res := e.KTruss(g)
		maxT := uint32(0)
		for _, tr := range res.Trussness {
			if tr > maxT {
				maxT = tr
			}
		}
		summary = fmt.Sprintf("max trussness %d over %d edges", maxT, len(res.Trussness))
	case "localcluster":
		res := e.LocalCluster(g, s, 0.85, 0)
		summary = fmt.Sprintf("cluster of %d vertices at conductance %.3f",
			len(res.Members), res.Conductance)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("%s on n=%d m=%d [%s, %s]\n", *algo, g.NumVertices(), g.NumEdges(), *modeName, *strategyName)
	fmt.Println(" ", summary)
	fmt.Println("  time:", elapsed.Round(time.Microsecond))
	fmt.Println("  stats:", e.Stats())
}
