// Command sage-vet is the repository's custom vet tool: five analyzers
// enforcing the zero-copy arena, hot-path allocation, cancellation,
// durability-error, and WAL-ordering invariants. Run it through the
// toolchain so facts flow across packages:
//
//	go build -o bin/sage-vet ./cmd/sage-vet
//	go vet -vettool=bin/sage-vet ./...
//
// See docs/STATIC_ANALYSIS.md for the analyzer catalogue and the
// //sage: annotation grammar.
package main

import "sage/internal/sagevet/unit"

func main() { unit.Main() }
