package sage_test

// The batch-dynamic acceptance net: for random update batches, every
// registry algorithm on a (base + overlay) snapshot must agree with the
// same algorithm on an eagerly rebuilt static graph — across memory-mapped
// and heap-copied openings of the base — while the base arena bytes stay
// verifiably untouched and older snapshots stay valid. The oracles and
// per-algorithm checkers are shared with differential_test.go, so a new
// registry algorithm is automatically held to the dynamic contract too.

import (
	"context"
	"crypto/sha256"
	"math/rand"
	"os"
	"testing"

	"sage"
	"sage/internal/graph"
)

// edgeModel is the test's independent merged-graph reference: plain maps
// mutated alongside the snapshot, rebuilt into a CSR for the oracles.
type edgeModel struct {
	n   uint32
	adj map[uint32]map[uint32]bool
}

func modelOf(g *graph.Graph) *edgeModel {
	m := &edgeModel{n: g.NumVertices(), adj: map[uint32]map[uint32]bool{}}
	for v := uint32(0); v < m.n; v++ {
		for _, u := range g.Neighbors(v) {
			if m.adj[v] == nil {
				m.adj[v] = map[uint32]bool{}
			}
			m.adj[v][u] = true
		}
	}
	return m
}

func (m *edgeModel) apply(ops []sage.EdgeOp) {
	for _, op := range ops {
		if op.Del {
			delete(m.adj[op.U], op.V)
			delete(m.adj[op.V], op.U)
			continue
		}
		if m.adj[op.U] == nil {
			m.adj[op.U] = map[uint32]bool{}
		}
		if m.adj[op.V] == nil {
			m.adj[op.V] = map[uint32]bool{}
		}
		m.adj[op.U][op.V] = true
		m.adj[op.V][op.U] = true
	}
}

// rebuild turns the model into a static CSR (symmetrized by construction).
func (m *edgeModel) rebuild() *graph.Graph {
	var edges []graph.Edge
	for v, nghs := range m.adj {
		for u := range nghs {
			if v < u {
				edges = append(edges, graph.Edge{U: v, V: u})
			}
		}
	}
	return graph.FromEdges(m.n, edges, graph.BuildOpts{Symmetrize: true})
}

// has reports edge presence, treating the model as authoritative.
func (m *edgeModel) has(u, v uint32) bool { return m.adj[u][v] }

// randomBatch builds a mixed batch biased toward edges that exist (for
// deletes) and pairs that do not (for inserts), so both kinds land.
func randomBatch(rng *rand.Rand, m *edgeModel, size int) []sage.EdgeOp {
	var ops []sage.EdgeOp
	for len(ops) < size {
		u, v := uint32(rng.Intn(int(m.n))), uint32(rng.Intn(int(m.n)))
		if u == v {
			continue
		}
		ops = append(ops, sage.EdgeOp{U: u, V: v, Del: m.has(u, v) && rng.Intn(2) == 0})
	}
	return ops
}

// bipartiteBatch builds update ops that respect the set-cover layout
// (sets [0, numSets) on one side, elements above).
func bipartiteBatch(rng *rand.Rand, m *edgeModel, numSets uint32, size int) []sage.EdgeOp {
	var ops []sage.EdgeOp
	for len(ops) < size {
		s := uint32(rng.Intn(int(numSets)))
		e := numSets + uint32(rng.Intn(int(m.n-numSets)))
		ops = append(ops, sage.EdgeOp{U: s, V: e, Del: m.has(s, e) && rng.Intn(2) == 0})
	}
	return ops
}

// csrChecksum hashes a CSR's structural arrays — the base-unmodified
// witness for the in-memory view.
func csrChecksum(g *graph.Graph) [32]byte {
	h := sha256.New()
	for v := uint32(0); v < g.NumVertices(); v++ {
		nghs := g.Neighbors(v)
		b := make([]byte, 0, 4*len(nghs))
		for _, u := range nghs {
			b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
		h.Write(b)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func fileChecksum(t *testing.T, path string) [32]byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(b)
}

// equalCSR asserts two CSRs have identical merged structure.
func equalCSR(t *testing.T, got, want *graph.Graph, what string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: shape (%d,%d) want (%d,%d)", what,
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := uint32(0); v < want.NumVertices(); v++ {
		a, b := got.Neighbors(v), want.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("%s: degree(%d)=%d want %d", what, v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: adjacency of %d differs at %d", what, v, i)
			}
		}
	}
}

// TestSnapshotDifferentialRegistry is the acceptance criterion: random
// update batches against two seeded shapes, every registry algorithm on
// the snapshot checked against the oracles of an eagerly rebuilt static
// graph, on both the memory-mapped and heap-copied openings of the base.
func TestSnapshotDifferentialRegistry(t *testing.T) {
	shapes := []struct {
		name  string
		build func() *sage.Graph
	}{
		{"rmat", func() *sage.Graph { return sage.GenerateRMAT(9, 8, 0x51f) }},
		{"erdos", func() *sage.Graph { return sage.GenerateErdosRenyi(400, 1400, 0x52f) }},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			dir := t.TempDir()
			base := sh.build()
			wbase := weighted(t, base, 0xfeed)
			scBase, numSets := setCoverInstance(base)

			for _, op := range []struct {
				name     string
				copyOpen bool
			}{{"mmap", false}, {"copy", true}} {
				t.Run(op.name, func(t *testing.T) {
					g2 := persistAndOpen(t, dir, "g-"+op.name, base, false, op.copyOpen)
					wg2 := persistAndOpen(t, dir, "wg-"+op.name, wbase, false, op.copyOpen)
					sc2 := persistAndOpen(t, dir, "sc-"+op.name, scBase, false, op.copyOpen)
					paths := map[string]string{
						"g":  dir + "/g-" + op.name + ".sg",
						"wg": dir + "/wg-" + op.name + ".sg",
						"sc": dir + "/sc-" + op.name + ".sg",
					}
					fileSums := map[string][32]byte{}
					for k, p := range paths {
						fileSums[k] = fileChecksum(t, p)
					}
					baseSum := csrChecksum(g2.RawCSR())

					// Two sequential batches; the same ops drive the model
					// (the independent reference) and both topology twins.
					rng := rand.New(rand.NewSource(0x5a9e))
					m := modelOf(g2.RawCSR())
					scModel := modelOf(sc2.RawCSR())
					snap, wsnap := g2.Snapshot(), wg2.Snapshot()
					first := snap // the elder snapshot, checked at the end
					firstRebuild := m.rebuild()
					var err error
					for b := 0; b < 2; b++ {
						batch := randomBatch(rng, m, 120)
						if snap, err = snap.ApplyBatch(batch); err != nil {
							t.Fatal(err)
						}
						if wsnap, err = wsnap.ApplyBatch(batch); err != nil {
							t.Fatal(err)
						}
						m.apply(batch)
					}
					scBatch := bipartiteBatch(rng, scModel, numSets, 60)
					scSnap, err := sc2.Snapshot().ApplyBatch(scBatch)
					if err != nil {
						t.Fatal(err)
					}
					scModel.apply(scBatch)

					// The eager rebuilds: oracles run on these.
					eager := m.rebuild()
					scEager := scModel.rebuild()
					if snap.NumEdges() != eager.NumEdges() {
						t.Fatalf("snapshot m=%d, eager m=%d", snap.NumEdges(), eager.NumEdges())
					}
					// Materialize must agree with the independent rebuild,
					// for the unweighted and the weighted twin.
					equalCSR(t, snap.Materialize().RawCSR(), eager, "materialize")
					equalCSR(t, wsnap.Materialize().RawCSR(), eager, "materialize (weighted)")

					weager := eagerWeighted(t, wsnap)
					o := newOracles(eager, weager, scEager, numSets)
					e := sage.NewEngine()
					for _, a := range sage.Algorithms() {
						input, args := snap.Graph(), sage.AlgoArgs{}
						if a.Weighted {
							input = wsnap.Graph()
						}
						if a.SetCover {
							input, args.NumSets = scSnap.Graph(), numSets
						}
						if a.Name == "pagerank" {
							args.Eps = 1e-10 // match the oracle's threshold
						}
						res, err := e.RunAlgorithm(context.Background(), a.Name, input, args)
						if err != nil {
							t.Fatalf("%s: %v", a.Name, err)
						}
						checkers[a.Name](t, o, res)
					}

					// The base was never written: neither the files on disk
					// nor the opened arrays moved a byte.
					for k, p := range paths {
						if fileChecksum(t, p) != fileSums[k] {
							t.Fatalf("base file %s modified by updates", k)
						}
					}
					if csrChecksum(g2.RawCSR()) != baseSum {
						t.Fatal("base adjacency arrays modified by updates")
					}
					// The elder identity snapshot still serves the original
					// graph.
					equalCSR(t, first.Materialize().RawCSR(), firstRebuild, "elder snapshot")
				})
			}
		})
	}
}

// eagerWeighted rebuilds the weighted snapshot's merged view statically,
// via the public Materialize (already cross-checked against the model's
// structure above), preserving weights for the weighted oracles.
func eagerWeighted(t *testing.T, wsnap *sage.Snapshot) *graph.Graph {
	t.Helper()
	return wsnap.Materialize().RawCSR()
}

// TestSnapshotEmptyOverlayFastPath pins the zero-cost property: an
// identity snapshot hands algorithms the base graph itself (same handle,
// same flat zero-copy arrays), and a batch that cancels out returns to
// exactly that.
func TestSnapshotEmptyOverlayFastPath(t *testing.T) {
	g := sage.GenerateRMAT(8, 8, 7)
	snap := g.Snapshot()
	if snap.Graph() != g {
		t.Fatal("identity snapshot does not expose the base handle")
	}
	if snap.DeltaWords() != 0 {
		t.Fatal("identity snapshot reports delta words")
	}
	s2, err := snap.ApplyBatch([]sage.EdgeOp{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Graph() == g {
		t.Fatal("non-empty overlay still exposes the base handle")
	}
	s3, err := s2.ApplyBatch([]sage.EdgeOp{{U: 1, V: 2, Del: true}})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Graph() != g {
		t.Fatal("cancelled-out overlay does not return to the base handle")
	}
	if snap.Materialize() != g {
		t.Fatal("identity Materialize copies the base")
	}
}

// TestSnapshotRejectsBadOps pins the public validation contract.
func TestSnapshotRejectsBadOps(t *testing.T) {
	g := sage.GenerateChain(8)
	snap := g.Snapshot()
	for _, bad := range [][]sage.EdgeOp{
		{{U: 0, V: 8}},
		{{U: 3, V: 3}},
		{{U: 0, V: 2, W: 9}},
	} {
		if _, err := snap.ApplyBatch(bad); err == nil {
			t.Fatalf("batch %v accepted", bad)
		}
	}
}
