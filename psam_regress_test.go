package sage_test

import (
	"fmt"
	"testing"

	"sage"
)

// statKey is the golden subset of Stats that the hot-path refactor must
// preserve exactly: the simulated PSAM cost and the four access-count
// totals. (PeakDRAMWords is excluded: chunk-pool reuse makes the peak
// depend on allocator state, not on the access pattern under test.)
type statKey struct {
	Cost, NVRAMReads, NVRAMWrites, DRAMReads, DRAMWrites int64
}

func keyOf(s sage.Stats) statKey {
	return statKey{s.PSAMCost, s.NVRAMReads, s.NVRAMWrites, s.DRAMReads, s.DRAMWrites}
}

// goldenStats pins the simulated access counts of the four reference
// workloads on a fixed seed graph (R-MAT logN=11, avgDeg=8, seed=7),
// captured at one worker so randomized tie-breaking cannot perturb the
// counts. Any change to these numbers is an accounting change and must be
// deliberate (see the frontierDegree fix commit for the one audited
// delta).
var goldenStats = map[string]statKey{
	"csr/chunked/bfs":             {14908, 9660, 0, 3303, 1945},
	"csr/chunked/pagerankiter":    {27608, 12780, 0, 12780, 2048},
	"csr/chunked/connectivity":    {49558, 25050, 0, 19816, 4692},
	"csr/chunked/kcore":           {128478, 64239, 0, 60584, 3655},
	"csr/blocked/bfs":             {14908, 9660, 0, 3303, 1945},
	"csr/blocked/pagerankiter":    {27608, 12780, 0, 12780, 2048},
	"csr/blocked/connectivity":    {49558, 25050, 0, 19816, 4692},
	"csr/blocked/kcore":           {128478, 64239, 0, 60584, 3655},
	"csr/sparse/bfs":              {14932, 9660, 0, 3303, 1969},
	"csr/sparse/pagerankiter":     {27608, 12780, 0, 12780, 2048},
	"csr/sparse/connectivity":     {49770, 25050, 0, 19816, 4904},
	"csr/sparse/kcore":            {128478, 64239, 0, 60584, 3655},
	"byte64/chunked/bfs":          {14722, 9474, 0, 3303, 1945},
	"byte64/chunked/pagerankiter": {27608, 12780, 0, 12780, 2048},
	"byte64/chunked/connectivity": {49359, 24851, 0, 19816, 4692},
	"byte64/chunked/kcore":        {125774, 61535, 0, 60584, 3655},
	"byte64/blocked/bfs":          {14722, 9474, 0, 3303, 1945},
	"byte64/blocked/pagerankiter": {27608, 12780, 0, 12780, 2048},
	"byte64/blocked/connectivity": {49359, 24851, 0, 19816, 4692},
	"byte64/blocked/kcore":        {125774, 61535, 0, 60584, 3655},
	"byte64/sparse/bfs":           {14746, 9474, 0, 3303, 1969},
	"byte64/sparse/pagerankiter":  {27608, 12780, 0, 12780, 2048},
	"byte64/sparse/connectivity":  {49571, 24851, 0, 19816, 4904},
	"byte64/sparse/kcore":         {125774, 61535, 0, 60584, 3655},
}

// regressGraphs builds the fixed CSR and byte-compressed inputs.
func regressGraphs() map[string]*sage.Graph {
	g := sage.GenerateRMAT(11, 8, 7)
	return map[string]*sage.Graph{
		"csr":    g,
		"byte64": g.Compress(64),
	}
}

// TestPSAMStatsRegression runs BFS, PageRankIter, Connectivity, and KCore
// under every traversal strategy and asserts the accumulated counters
// match the goldens. Run with -run TestPSAMStatsRegression -v to print
// actual values when re-goldening after a deliberate accounting change.
func TestPSAMStatsRegression(t *testing.T) {
	old := sage.Workers()
	defer sage.SetWorkers(old)
	sage.SetWorkers(1)
	for gname, g := range regressGraphs() {
		for _, strat := range []struct {
			name string
			s    sage.Strategy
		}{{"chunked", sage.Chunked}, {"blocked", sage.Blocked}, {"sparse", sage.Sparse}} {
			e := sage.NewEngine(sage.WithStrategy(strat.s), sage.WithSeed(7))
			run := func(algo string, fn func()) {
				e.ResetStats()
				fn()
				name := fmt.Sprintf("%s/%s/%s", gname, strat.name, algo)
				got := keyOf(e.Stats())
				want, ok := goldenStats[name]
				if !ok {
					t.Errorf("missing golden %q: {%d, %d, %d, %d, %d}",
						name, got.Cost, got.NVRAMReads, got.NVRAMWrites, got.DRAMReads, got.DRAMWrites)
					return
				}
				if got != want {
					t.Errorf("%s: stats drifted:\n got  %+v\n want %+v", name, got, want)
				}
			}
			run("bfs", func() { e.MustBFS(g, 0) })
			run("pagerankiter", func() {
				n := int(g.NumVertices())
				prev := make([]float64, n)
				next := make([]float64, n)
				for i := range prev {
					prev[i] = 1 / float64(n)
				}
				e.MustPageRankIter(g, prev, next)
			})
			run("connectivity", func() { e.MustConnectivity(g) })
			run("kcore", func() { e.MustKCore(g) })
		}
	}
}
