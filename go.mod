module sage

go 1.24
