// Benchmarks regenerating the paper's tables and figures as testing.B
// targets (one family per table/figure; run with
// `go test -bench=. -benchmem`). Each benchmark reports the simulated
// PSAM cost of the measured configuration as a custom metric alongside
// wall-clock time, so the cost ratios of the figures can be read straight
// off the -bench output. The full tables (all problems x all
// configurations, with the paper-vs-measured notes) are printed by
// `go run ./cmd/sage-bench`.
package sage_test

import (
	"testing"

	"sage"
	"sage/internal/algos"
	"sage/internal/gbbs"
	"sage/internal/harness"
	"sage/internal/numa"
	"sage/internal/psam"
	"sage/internal/semiext"
	"sage/internal/traverse"
)

// benchScale keeps -bench runs tractable: 2^14 vertices, ~500k arcs.
const benchScale = 14

// BenchmarkFig1 measures the three Figure 1 configurations on the core
// problems of the larger-than-DRAM comparison.
func BenchmarkFig1(b *testing.B) {
	w := harness.NewWorkload(benchScale)
	configs := map[string]struct {
		mode     psam.Mode
		strategy traverse.Strategy
		mutating bool
	}{
		"SageNVRAM":   {psam.AppDirect, traverse.Chunked, false},
		"GBBSMemMode": {psam.MemoryMode, traverse.Blocked, true},
	}
	problems := map[string]func(o *algos.Options){
		"BFS":          func(o *algos.Options) { algos.BFS(w.G, o, 0) },
		"Connectivity": func(o *algos.Options) { algos.Connectivity(w.G, o) },
		"KCore":        func(o *algos.Options) { algos.KCore(w.G, o) },
		"PageRankIter": func(o *algos.Options) { runPRIter(w, o) },
	}
	for cname, cfg := range configs {
		for pname, run := range problems {
			b.Run(cname+"/"+pname, func(b *testing.B) {
				var cost int64
				for i := 0; i < b.N; i++ {
					env := psam.NewEnv(cfg.mode)
					if cfg.mode == psam.MemoryMode {
						env.WithCache(w.G.SizeWords() / 8)
					}
					var o *algos.Options
					if cfg.mutating {
						o = gbbs.Options(env)
					} else {
						o = algos.Defaults().WithEnv(env)
					}
					o.Traverse.Strategy = cfg.strategy
					run(o)
					cost = env.Cost()
				}
				b.ReportMetric(float64(cost), "psam-cost")
			})
		}
	}
}

func runPRIter(w *harness.Workload, o *algos.Options) {
	n := int(w.G.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	for i := range prev {
		prev[i] = 1 / float64(n)
	}
	algos.PageRankIter(w.G, o, prev, next)
}

// BenchmarkFig6 measures the Figure 6 speedup workload: BFS, connectivity
// and k-core wall-clock under 1 worker and all workers.
func BenchmarkFig6(b *testing.B) {
	g := sage.GenerateRMAT(benchScale, 16, 1)
	for _, workers := range []int{1, sage.Workers()} {
		for name, run := range map[string]func(e *sage.Engine){
			"BFS":          func(e *sage.Engine) { e.MustBFS(g, 0) },
			"Connectivity": func(e *sage.Engine) { e.MustConnectivity(g) },
			"KCore":        func(e *sage.Engine) { e.MustKCore(g) },
		} {
			b.Run(benchName(name, workers), func(b *testing.B) {
				old := sage.Workers()
				sage.SetWorkers(workers)
				defer sage.SetWorkers(old)
				e := sage.NewEngine(sage.WithMode(sage.AppDirect))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(e)
				}
			})
		}
	}
}

func benchName(problem string, workers int) string {
	if workers == 1 {
		return problem + "/T1"
	}
	return problem + "/Tp"
}

// BenchmarkFig7 measures the four Figure 7 configurations on BFS and
// maximal matching (a traversal problem and a filter problem).
func BenchmarkFig7(b *testing.B) {
	w := harness.NewWorkload(benchScale)
	configs := []struct {
		name     string
		mode     psam.Mode
		mutating bool
	}{
		{"GBBS-DRAM", psam.DRAMOnly, true},
		{"GBBS-libvmmalloc", psam.NVRAMAll, true},
		{"Sage-DRAM", psam.DRAMOnly, false},
		{"Sage-NVRAM", psam.AppDirect, false},
	}
	for _, cfg := range configs {
		for pname, run := range map[string]func(o *algos.Options){
			"BFS":      func(o *algos.Options) { algos.BFS(w.G, o, 0) },
			"Matching": func(o *algos.Options) { algos.MaximalMatching(w.G, o) },
		} {
			b.Run(cfg.name+"/"+pname, func(b *testing.B) {
				var cost int64
				for i := 0; i < b.N; i++ {
					env := psam.NewEnv(cfg.mode)
					var o *algos.Options
					if cfg.mutating {
						o = gbbs.Options(env)
					} else {
						o = algos.Defaults().WithEnv(env)
					}
					run(o)
					cost = env.Cost()
				}
				b.ReportMetric(float64(cost), "psam-cost")
			})
		}
	}
}

// BenchmarkTable1Omega measures Sage vs GBBS cost growth across the write
// asymmetry sweep (the counts are gathered once; the benchmark measures a
// full instrumented run per iteration).
func BenchmarkTable1Omega(b *testing.B) {
	w := harness.NewWorkload(benchScale)
	for _, sys := range []struct {
		name     string
		mode     psam.Mode
		mutating bool
	}{
		{"Sage", psam.AppDirect, false},
		{"GBBS-NVRAM", psam.NVRAMAll, true},
	} {
		b.Run(sys.name, func(b *testing.B) {
			var growth float64
			for i := 0; i < b.N; i++ {
				env := psam.NewEnv(sys.mode)
				var o *algos.Options
				if sys.mutating {
					o = gbbs.Options(env)
				} else {
					o = algos.Defaults().WithEnv(env)
				}
				algos.MaximalMatching(w.G, o)
				counts := env.Totals()
				c1 := counts.Cost(psam.Config{NVRAMRead: 1, Omega: 1})
				c16 := counts.Cost(psam.Config{NVRAMRead: 1, Omega: 16})
				growth = float64(c16) / float64(c1)
			}
			b.ReportMetric(growth, "cost-growth-w16/w1")
		})
	}
}

// BenchmarkTable3Streaming measures the semi-external engine against Sage
// on BFS (page I/O cost vs PSAM cost).
func BenchmarkTable3Streaming(b *testing.B) {
	w := harness.NewWorkload(benchScale)
	b.Run("SemiExt/BFS", func(b *testing.B) {
		grid := semiext.NewGrid(w.G, 8)
		var cost int64
		for i := 0; i < b.N; i++ {
			grid.Dev = &semiext.Device{PageCost: semiext.DefaultPageCost}
			grid.BFS(0)
			cost = grid.Dev.Cost()
		}
		b.ReportMetric(float64(cost), "io-cost")
	})
	b.Run("Sage/BFS", func(b *testing.B) {
		var cost int64
		for i := 0; i < b.N; i++ {
			env := psam.NewEnv(psam.AppDirect)
			o := algos.Defaults().WithEnv(env)
			algos.BFS(w.G, o, 0)
			cost = env.Cost()
		}
		b.ReportMetric(float64(cost), "psam-cost")
	})
}

// BenchmarkTable4BlockSize measures triangle counting on the compressed
// graph across filter block sizes, reporting the decode work.
func BenchmarkTable4BlockSize(b *testing.B) {
	g := sage.GenerateRMAT(benchScale, 16, 5)
	for _, bs := range []int{64, 128, 256} {
		cg := g.Compress(bs)
		b.Run(benchBS(bs), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				e := sage.NewEngine(sage.WithMode(sage.AppDirect), sage.WithFilterBlockSize(bs))
				res := e.MustTriangleCount(cg)
				total = res.TotalWork
			}
			b.ReportMetric(float64(total), "decode-work")
		})
	}
}

func benchBS(bs int) string {
	switch bs {
	case 64:
		return "FB64"
	case 128:
		return "FB128"
	default:
		return "FB256"
	}
}

// BenchmarkTable5Traversal measures BFS peak DRAM words per traversal
// strategy (sparse-only, the Appendix D.2 configuration).
func BenchmarkTable5Traversal(b *testing.B) {
	g := sage.GenerateRMAT(benchScale+1, 32, 9)
	for _, s := range []sage.Strategy{sage.Sparse, sage.Blocked, sage.Chunked} {
		b.Run(s.String(), func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				env := psam.NewEnv(psam.AppDirect)
				o := algos.Defaults().WithEnv(env)
				o.Traverse.Strategy = s
				o.Traverse.ForceSparse = true
				algos.BFS(g.Raw(), o, 0)
				peak = env.Space.Peak()
			}
			b.ReportMetric(float64(peak), "peak-dram-words")
		})
	}
}

// BenchmarkSec52NUMA measures the degree-count kernel and reports the
// modeled layout ratios.
func BenchmarkSec52NUMA(b *testing.B) {
	g := sage.GenerateRMAT(benchScale, 16, 3)
	model := numa.DefaultModel()
	for _, pl := range []numa.Placement{numa.SingleSocket, numa.Interleaved, numa.Replicated} {
		b.Run(pl.String(), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				_, words := numa.DegreeCount(g.RawCSR())
				t = model.SimulatedTime(pl, words, 2*sage.Workers())
			}
			b.ReportMetric(t, "sim-time")
		})
	}
}

// BenchmarkKCoreVariants is the §4.3.4 ablation: histogram-based peeling
// (with the dense optimization) against the fetch-and-add variant.
func BenchmarkKCoreVariants(b *testing.B) {
	g := sage.GenerateRMAT(benchScale, 16, 11)
	for _, fetchAdd := range []bool{false, true} {
		name := "Histogram"
		if fetchAdd {
			name = "FetchAdd"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := algos.Defaults()
				o.KCoreFetchAdd = fetchAdd
				algos.KCore(g.Raw(), o)
			}
		})
	}
}

// BenchmarkTraversalStrategies is the §4.1 ablation on the full
// direction-optimized BFS (not forced sparse).
func BenchmarkTraversalStrategies(b *testing.B) {
	g := sage.GenerateRMAT(benchScale, 16, 13)
	for _, s := range []sage.Strategy{sage.Chunked, sage.Blocked, sage.Sparse} {
		b.Run(s.String(), func(b *testing.B) {
			e := sage.NewEngine(sage.WithMode(sage.AppDirect), sage.WithStrategy(s))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.MustBFS(g, 0)
			}
		})
	}
}

// BenchmarkWidestPathVariants compares the paper's two widest-path
// implementations (§4.3.1).
func BenchmarkWidestPathVariants(b *testing.B) {
	g := weighted(b, sage.GenerateRMAT(benchScale, 16, 17), 5)
	b.Run("BellmanFordStyle", func(b *testing.B) {
		e := sage.NewEngine()
		for i := 0; i < b.N; i++ {
			e.MustWidestPath(g, 0)
		}
	})
	b.Run("Bucketed", func(b *testing.B) {
		e := sage.NewEngine()
		for i := 0; i < b.N; i++ {
			e.MustWidestPathBucketed(g, 0)
		}
	})
}
