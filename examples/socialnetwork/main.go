// Social-network analytics: the substructure workloads the paper's
// introduction motivates (community detection, §4.3.4) — triangle
// counting, coreness decomposition, and approximate densest subgraph on a
// power-law graph, all with the graph treated as read-only NVRAM data.
package main

import (
	"fmt"

	"sage"
)

func main() {
	// A preferential-attachment network: heavy-tailed degrees like the
	// paper's com-Orkut/Twitter inputs.
	g := sage.GeneratePowerLaw(1<<15, 8, 7)
	fmt.Printf("social graph: n=%d, m=%d, max degree %d\n",
		g.NumVertices(), g.NumEdges(), maxDegree(g))

	e := sage.NewEngine(sage.WithMode(sage.AppDirect))

	// Triangle counting through the oriented graph filter (§4.3.4): the
	// work counters are the quantities Table 4 studies.
	tc := e.MustTriangleCount(g)
	fmt.Printf("triangles: %d (intersection work %d, decode work %d)\n",
		tc.Count, tc.IntersectionWork, tc.TotalWork)

	// Coreness of every vertex by bucketed peeling; kmax bounds the
	// densest community's connectivity.
	core := e.MustKCore(g)
	kmax := uint32(0)
	for _, k := range core {
		if k > kmax {
			kmax = k
		}
	}
	fmt.Printf("coreness computed for all vertices; kmax = %d\n", kmax)

	// A 2(1+eps)-approximate densest subgraph.
	dens := e.MustApproxDensestSubgraph(g)
	members := 0
	for _, in := range dens.InSub {
		if in {
			members++
		}
	}
	fmt.Printf("densest subgraph: density %.2f over %d vertices (%d peel rounds)\n",
		dens.Density, members, dens.Rounds)

	fmt.Println("PSAM stats:", e.Stats())
}

func maxDegree(g *sage.Graph) uint32 {
	var d uint32
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > d {
			d = g.Degree(v)
		}
	}
	return d
}
