// NVRAM-modes tour: the same analytics run under every memory
// configuration of the paper's evaluation (§5.4-§5.5), side by side —
// the programmatic version of Figure 7's comparison — plus the §3.2
// extension problems (k-clique, personalized PageRank) and the k-truss
// boundary case whose Θ(m) state the space tracker exposes.
package main

import (
	"fmt"

	"sage"
)

func main() {
	g := sage.GenerateRMAT(15, 16, 21)
	fmt.Printf("graph: n=%d m=%d\n\n", g.NumVertices(), g.NumEdges())

	fmt.Println("Connectivity under the four memory configurations:")
	configs := []struct {
		name string
		mode sage.Mode
	}{
		{"GBBS/Sage-DRAM   ", sage.DRAM},
		{"Sage-NVRAM       ", sage.AppDirect},
		{"Memory Mode      ", sage.MemoryMode},
		{"libvmmalloc-style", sage.NVRAMAll},
	}
	var base int64
	for _, c := range configs {
		opts := []sage.Option{sage.WithMode(c.mode)}
		if c.mode == sage.MemoryMode {
			opts = append(opts, sage.WithCache(g.SizeWords()/8))
		}
		e := sage.NewEngine(opts...)
		e.MustConnectivity(g)
		st := e.Stats()
		if base == 0 {
			base = st.PSAMCost
		}
		fmt.Printf("  %s  cost=%-10d (%.2fx)  nvramWrites=%d\n",
			c.name, st.PSAMCost, float64(st.PSAMCost)/float64(base), st.NVRAMWrites)
	}

	fmt.Println("\nPSAM extensions (§3.2):")
	e := sage.NewEngine(sage.WithMode(sage.AppDirect))
	c4 := e.MustKCliqueCount(g, 4)
	fmt.Printf("  4-cliques: %d (no NVRAM writes: %v)\n", c4, e.Stats().NVRAMWrites == 0)

	ppr, iters := e.MustPersonalizedPageRank(g, 0, 0.85, 1e-9, 100)
	var mass float64
	for _, r := range ppr {
		mass += r
	}
	fmt.Printf("  personalized PageRank from 0: converged in %d iters (mass %.3f)\n", iters, mass)

	// The boundary case: k-truss needs Θ(m) mutable state (§3.2).
	e2 := sage.NewEngine(sage.WithMode(sage.AppDirect))
	small := sage.GenerateRMAT(12, 12, 5)
	res := e2.MustKTruss(small)
	maxT := uint32(0)
	for _, t := range res.Trussness {
		if t > maxT {
			maxT = t
		}
	}
	fmt.Printf("  k-truss on n=%d: max trussness %d; peak DRAM %d words for m=%d arcs\n",
		small.NumVertices(), maxT, e2.Stats().PeakDRAMWords, small.NumEdges())
	fmt.Println("  (Theta(m) state - exactly the PSAM boundary the paper describes)")
}
