// Road-network routing: the weighted shortest-path workloads (§4.3.1) on
// a high-diameter grid — integral-weight wBFS via bucketing, Bellman-Ford,
// and widest path (bottleneck routing), comparing the two widest-path
// variants the paper provides.
package main

import (
	"fmt"

	"sage"
)

func main() {
	g, err := sage.GenerateGrid(256, 256, false).WithUniformWeights(11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("road network: n=%d, m=%d (256x256 grid, weights in [1, %d))\n",
		g.NumVertices(), g.NumEdges(), log2(g.NumVertices()))

	e := sage.NewEngine(sage.WithMode(sage.AppDirect))
	src := uint32(0)
	dst := g.NumVertices() - 1 // opposite corner

	dist := e.MustWBFS(g, src)
	fmt.Printf("wBFS (bucketed): dist(corner->corner) = %d\n", dist[dst])

	bf := e.MustBellmanFord(g, src)
	fmt.Printf("bellman-ford:    dist(corner->corner) = %d (agree: %v)\n",
		bf[dst], int64(dist[dst]) == bf[dst])

	w1 := e.MustWidestPath(g, src)
	w2 := e.MustWidestPathBucketed(g, src)
	fmt.Printf("widest path:     width(corner->corner) = %d (variants agree: %v)\n",
		w1[dst], w1[dst] == w2[dst])

	deps := e.MustBetweenness(g, src)
	var maxDep float64
	var maxV uint32
	for v, d := range deps {
		if d > maxDep {
			maxDep, maxV = d, uint32(v)
		}
	}
	fmt.Printf("betweenness:     most loaded vertex %d (dependency %.1f)\n", maxV, maxDep)

	fmt.Println("PSAM stats:", e.Stats())
}

func log2(n uint32) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
