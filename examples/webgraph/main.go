// Web-graph analytics on a compressed graph: connectivity, PageRank, and
// a spanner over the byte-compressed representation (§4.2.1) — the
// configuration Sage uses for the ClueWeb/Hyperlink inputs, where
// compression is essential for fitting the graph in NVRAM and the filter
// block size is locked to the compression block size.
package main

import (
	"fmt"

	"sage"
)

func main() {
	raw := sage.GenerateRMAT(16, 24, 3)
	g := raw.Compress(64)
	fmt.Printf("web graph: n=%d, m=%d; compressed %0.1fx smaller than CSR\n",
		g.NumVertices(), g.NumEdges(),
		float64(raw.SizeWords())/float64(g.SizeWords()))

	e := sage.NewEngine(sage.WithMode(sage.AppDirect), sage.WithFilterBlockSize(64))

	labels := e.MustConnectivity(g)
	comps := map[uint32]int{}
	for _, l := range labels {
		comps[l]++
	}
	largest := 0
	for _, c := range comps {
		if c > largest {
			largest = c
		}
	}
	fmt.Printf("connectivity: %d components; largest holds %.1f%% of vertices\n",
		len(comps), 100*float64(largest)/float64(g.NumVertices()))

	ranks, iters := e.MustPageRank(g, 1e-6, 100)
	best, bestRank := uint32(0), 0.0
	for v, r := range ranks {
		if r > bestRank {
			best, bestRank = uint32(v), r
		}
	}
	fmt.Printf("pagerank: converged in %d iterations; top vertex %d (rank %.2e, degree %d)\n",
		iters, best, bestRank, g.Degree(best))

	spanner := e.MustSpanner(g, 0)
	fmt.Printf("O(log n)-spanner: %d edges (%.2f x n) preserving distances within O(log n)\n",
		len(spanner), float64(len(spanner))/float64(g.NumVertices()))

	fmt.Println("PSAM stats:", e.Stats())
}
