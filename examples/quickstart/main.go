// Quickstart: the Go rendering of Figure 4 — BFS over a graph stored in
// (simulated) NVRAM through the semi-asymmetric engine. The graph comes
// from a file: sage.Create persists it in the v2 binary container and
// sage.Open memory-maps it back, so the adjacency arrays the engine
// traverses alias the file directly — the graph is consumed in place
// from storage, exactly as Sage consumes it in place from App-Direct
// NVRAM. The engine is an immutable configuration; every call runs as
// its own session with private PSAM counters, so the example prints both
// the per-run statistics of each call and the engine's aggregate.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"sage"
)

func main() {
	// A web-scale-shaped graph, scaled to a laptop: 2^16 vertices with
	// average degree ~16 (compare Table 2's davg range of 17-76) —
	// generated once and persisted, as sage-gen would.
	dir, err := os.MkdirTemp("", "sage-quickstart")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.sg")
	if err := sage.Create(path, sage.GenerateRMAT(16, 16, 1)); err != nil {
		panic(err)
	}

	// Open the stored graph. The file is memory-mapped: no byte of
	// adjacency data is copied to the heap, and the kernel pages edges in
	// as the traversals touch them.
	g, err := sage.Open(path)
	if err != nil {
		panic(err)
	}
	defer g.Close()
	fmt.Printf("graph: n=%d, m=%d arcs (%.1f MB simulated NVRAM, mmap=%v)\n",
		g.NumVertices(), g.NumEdges(), float64(g.SizeWords())*8/1e6, g.Mapped())

	// The engine in Sage's configuration: graph in App-Direct NVRAM,
	// chunked traversal, all mutable state in DRAM.
	e := sage.NewEngine(sage.WithMode(sage.AppDirect))

	// Figure 4's algorithm, as a one-liner (background context).
	parents := e.MustBFS(g, 0)

	reached := 0
	for _, p := range parents {
		if p != ^uint32(0) {
			reached++
		}
	}
	fmt.Printf("BFS from 0 reached %d vertices\n", reached)

	// The same call as an explicit session: a Run owns its own counters,
	// so its Stats describe this call alone — even when other goroutines
	// use the engine concurrently.
	run := e.NewRun()
	if _, _, err := run.PageRank(context.Background(), g, 1e-6, 100); err != nil {
		panic(err)
	}
	fmt.Println("PageRank run stats:", run.Stats())

	// The engine aggregates every completed run.
	st := e.Stats()
	fmt.Println("engine aggregate:  ", st)
	if st.NVRAMWrites == 0 {
		fmt.Println("semi-asymmetric discipline held: zero NVRAM writes")
	}

	// The same algorithm on the byte-compressed representation (§4.2.1):
	// the result is identical, and the graph occupies far less NVRAM.
	cg := g.Compress(64)
	e2 := sage.NewEngine(sage.WithMode(sage.AppDirect))
	parents2 := e2.MustBFS(cg, 0)
	same := true
	for v := range parents {
		if (parents[v] == ^uint32(0)) != (parents2[v] == ^uint32(0)) {
			same = false
			break
		}
	}
	fmt.Printf("compressed graph: %.1fx smaller, identical reachability: %v\n",
		float64(g.SizeWords())/float64(cg.SizeWords()), same)
}
