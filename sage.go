// Package sage is a Go implementation of Sage, the parallel
// semi-asymmetric graph engine of Dhulipala et al. (VLDB 2020): graph
// algorithms that treat the graph as a read-only structure residing in
// NVRAM and keep mutable state proportional to the number of vertices in
// DRAM, eliminating NVRAM writes entirely.
//
// Real Optane hardware is not required: the engine runs against a
// simulated two-tier memory (the Parallel Semi-Asymmetric Model, PSAM)
// that charges every graph and state access to the appropriate account,
// so programs observe both real wall-clock parallel performance and the
// deterministic PSAM cost that the paper's evaluation is framed in.
//
// A minimal session:
//
//	g := sage.GenerateRMAT(18, 16, 1)
//	e := sage.NewEngine(sage.WithMode(sage.AppDirect))
//	parents := e.MustBFS(g, 0)
//	fmt.Println(e.Stats())
//
// Engines are immutable and goroutine-safe: every call executes as its
// own Run with private PSAM counters merged into the engine aggregate on
// completion, so concurrent calls on one engine are correct by
// construction. The context-aware forms (e.BFS(ctx, g, 0)) cancel at
// frontier/iteration boundaries and return ctx.Err(); sage.Algorithms
// enumerates the registry behind the typed methods, invokable by name
// through Engine.RunAlgorithm.
//
// Stored graphs are handled by Open and Create (see open.go): a format
// registry sniffs binary containers and text formats, and binary files
// are memory-mapped so the opened graph is consumed in place from
// storage — close it with Graph.Close when done:
//
//	g, err := sage.Open("web.sg")
//	defer g.Close()
//
// Evolving graphs are served through batch-dynamic snapshots (see
// snapshot.go): the stored base stays read-only while edge updates live
// in a DRAM-resident delta, the semi-asymmetric split applied to
// mutation itself. ApplyBatch returns a new immutable Snapshot sharing
// the base zero-copy; every algorithm runs on a snapshot unchanged, and
// Compact folds the delta into a fresh container file:
//
//	snap, err := g.Snapshot().ApplyBatch([]sage.EdgeOp{{U: 1, V: 2}})
//	parents = e.MustBFS(snap.Graph(), 0)
package sage

import (
	"sync/atomic"

	"sage/internal/compress"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
	"sage/internal/store"
	"sage/internal/traverse"
)

// Mode selects where the simulated graph lives (§5.1.2, §5.4).
type Mode = psam.Mode

// Memory configurations, re-exported from the PSAM model.
const (
	// DRAM stores graph and state in DRAM (the in-memory baseline).
	DRAM = psam.DRAMOnly
	// AppDirect stores the graph in byte-addressable NVRAM and all
	// mutable state in DRAM — Sage's configuration.
	AppDirect = psam.AppDirect
	// MemoryMode stores the graph behind a direct-mapped DRAM cache.
	MemoryMode = psam.MemoryMode
	// NVRAMAll stores graph and temporaries in NVRAM (the libvmmalloc
	// emulation of Figure 7).
	NVRAMAll = psam.NVRAMAll
)

// Strategy selects the sparse traversal implementation (§4.1).
type Strategy = traverse.Strategy

// Traversal strategies.
const (
	// Chunked is Sage's edgeMapChunked: O(n) intermediate memory.
	Chunked = traverse.Chunked
	// Blocked is GBBS's edgeMapBlocked baseline.
	Blocked = traverse.Blocked
	// Sparse is Ligra's original push traversal.
	Sparse = traverse.Sparse
	// Auto selects direction and push implementation per traversal from
	// the engine's cost model's predictions instead of the measured-count
	// heuristic.
	Auto = traverse.Auto
)

// Graph is an immutable graph handle: an uncompressed CSR or a
// byte-compressed representation, optionally weighted. Graphs returned by
// Open may be backed by a memory mapping of their file; Close releases it.
type Graph struct {
	adj    graph.Adj
	raw    *graph.Graph   // non-nil iff uncompressed
	ds     *store.Dataset // non-nil iff file-backed (owns the arena)
	closed atomic.Bool
}

// NumVertices returns n.
func (g *Graph) NumVertices() uint32 { g.check(); return g.adj.NumVertices() }

// NumEdges returns the number of stored arcs (2x the undirected edges).
func (g *Graph) NumEdges() uint64 { g.check(); return g.adj.NumEdges() }

// Weighted reports whether edges carry integer weights.
func (g *Graph) Weighted() bool { g.check(); return g.adj.Weighted() }

// Compressed reports whether the graph uses the byte-compressed format.
func (g *Graph) Compressed() bool {
	g.check()
	_, ok := g.adj.(*compress.CGraph)
	return ok
}

// Degree returns deg(v).
func (g *Graph) Degree(v uint32) uint32 { g.check(); return g.adj.Degree(v) }

// SizeWords returns the simulated NVRAM footprint. For snapshot views
// this is the base's footprint; the DRAM-resident delta is reported by
// Snapshot.DeltaWords instead.
func (g *Graph) SizeWords() int64 {
	g.check()
	if g.raw != nil {
		return g.raw.SizeWords()
	}
	return g.adj.(interface{ SizeWords() int64 }).SizeWords()
}

// Edge is an undirected edge.
type Edge = graph.Edge

// WeightedEdge is an edge with an integer weight.
type WeightedEdge = graph.WEdge

// FromEdges builds a symmetrized, deduplicated graph over n vertices.
func FromEdges(n uint32, edges []Edge) *Graph {
	raw := graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
	return &Graph{adj: raw, raw: raw}
}

// FromWeightedEdges builds a symmetrized weighted graph.
func FromWeightedEdges(n uint32, edges []WeightedEdge) *Graph {
	raw := graph.FromWeightedEdges(n, edges, graph.BuildOpts{Symmetrize: true})
	return &Graph{adj: raw, raw: raw}
}

// GenerateRMAT generates a symmetrized R-MAT graph with 2^logN vertices
// and ~avgDeg·2^logN arcs (the stand-in for the paper's social/web
// inputs).
func GenerateRMAT(logN, avgDeg int, seed uint64) *Graph {
	raw := gen.RMAT(logN, avgDeg, seed)
	return &Graph{adj: raw, raw: raw}
}

// GenerateErdosRenyi generates a G(n, m) random graph.
func GenerateErdosRenyi(n uint32, m int, seed uint64) *Graph {
	raw := gen.ErdosRenyi(n, m, seed)
	return &Graph{adj: raw, raw: raw}
}

// GeneratePowerLaw generates a preferential-attachment graph with ~d
// edges per vertex.
func GeneratePowerLaw(n uint32, d int, seed uint64) *Graph {
	raw := gen.PowerLaw(n, d, seed)
	return &Graph{adj: raw, raw: raw}
}

// GenerateGrid generates a rows×cols lattice (torus if wrap).
func GenerateGrid(rows, cols uint32, wrap bool) *Graph {
	raw := gen.Grid2D(rows, cols, wrap)
	return &Graph{adj: raw, raw: raw}
}

// GenerateStar generates a star: vertex 0 adjacent to all others (the
// maximum-skew degree distribution, a chunking stress test).
func GenerateStar(n uint32) *Graph {
	raw := gen.Star(n)
	return &Graph{adj: raw, raw: raw}
}

// GenerateChain generates a path graph (the maximum-diameter input, a
// frontier-overhead stress test).
func GenerateChain(n uint32) *Graph {
	raw := gen.Chain(n)
	return &Graph{adj: raw, raw: raw}
}

// WithUniformWeights returns a weighted copy with weights uniform in
// [1, log2 n), the paper's weighting (§5.1.3). Weighting requires the CSR
// representation; compressed graphs return ErrCompressed.
func (g *Graph) WithUniformWeights(seed uint64) (*Graph, error) {
	g.check()
	if g.raw == nil {
		return nil, errCompressedOp("weighting")
	}
	raw := gen.AddUniformWeights(g.raw, seed)
	return &Graph{adj: raw, raw: raw}, nil
}

// Compress returns the byte-compressed representation with the given
// compression block size (64/128/256; §4.2.1, Table 4). Weighted graphs
// interleave zigzag-varint weights per edge, as Ligra+ does.
func (g *Graph) Compress(blockSize int) *Graph {
	g.check()
	if g.raw == nil {
		return g
	}
	return &Graph{adj: compress.Compress(g.raw, blockSize)}
}

// Load reads a stored graph.
//
// Deprecated: use Open, which sniffs the format (including the legacy
// binary this function historically read) and memory-maps binary files.
func Load(path string) (*Graph, error) { return Open(path) }

// Save writes the graph in the v2 binary container.
//
// Deprecated: use Create, which also selects formats by extension.
func (g *Graph) Save(path string) error {
	return Create(path, g, As(FormatBinary))
}

// Raw exposes the underlying adjacency (for the experiment harness).
func (g *Graph) Raw() graph.Adj { g.check(); return g.adj }

// RawCSR exposes the CSR representation, or nil for compressed graphs.
func (g *Graph) RawCSR() *graph.Graph { g.check(); return g.raw }

// SetWorkers sets the global worker-pool size (T1..Tp sweeps, Figure 6).
func SetWorkers(n int) { parallel.SetWorkers(n) }

// Workers reports the current worker-pool size.
func Workers() int { return parallel.Workers() }

// LoadText reads a graph in the Ligra "AdjacencyGraph" /
// "WeightedAdjacencyGraph" text format used by the paper's code base.
//
// Deprecated: use Open with WithFormat(FormatAdj) (or rely on sniffing).
func LoadText(path string) (*Graph, error) {
	return Open(path, WithFormat(FormatAdj))
}

// SaveText writes the graph in the Ligra text format. Compressed graphs
// return ErrCompressed.
//
// Deprecated: use Create with As(FormatAdj).
func (g *Graph) SaveText(path string) error {
	return Create(path, g, As(FormatAdj))
}

// RelabelByDegree returns a copy of the graph renumbered hubs-first — the
// ordering knob whose effect on triangle counting Appendix D.1 studies.
// Relabeling requires the CSR representation; compressed graphs return
// ErrCompressed.
func (g *Graph) RelabelByDegree() (*Graph, error) {
	g.check()
	if g.raw == nil {
		return nil, errCompressedOp("relabeling")
	}
	raw := g.raw.Relabel(g.raw.DegreeOrder())
	return &Graph{adj: raw, raw: raw}, nil
}
