package sage_test

// Documentation link check, run by the CI docs job: every relative
// markdown link in README.md and docs/*.md must resolve to a file or
// directory in the repository, so the docs cannot silently rot as files
// move. External (scheme-ful) links and intra-page anchors are out of
// scope — the check must not depend on the network.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and captures the target. Images
// share the syntax (with a leading '!') and are checked the same way.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocLinks(t *testing.T) {
	pages := []string{"README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found; the documentation moved without updating this check")
	}

	checked := 0
	for _, page := range pages {
		body, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("%s: %v", page, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external; not checked offline
			case strings.HasPrefix(target, "#"):
				continue // intra-page anchor
			}
			target = strings.SplitN(target, "#", 2)[0] // drop cross-page anchors
			resolved := filepath.Join(filepath.Dir(page), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", page, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found at all; the matcher is likely broken")
	}
}
