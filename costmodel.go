package sage

import (
	"fmt"

	"sage/internal/algos"
	"sage/internal/costmodel"
)

// CostModel is a pluggable hardware cost profile: per-operation charge
// weights in DRAM-access units plus latency and energy constants, mapping
// PSAM-style operation counts to predicted cost, latency, and energy. An
// engine's model sets its simulator charging weights (so measured PSAM
// costs land on the model's scale), prices the Auto traversal strategy's
// per-call direction decisions, and backs PredictCost/CostOfStats —
// which the serving layer in turn uses for cost-based admission, overlay
// auto-compaction, and the X-Sage-Cost-* response headers.
type CostModel = costmodel.Profile

// CostModelOptane is the Optane NVRAM profile — today's PSAM defaults
// (§3.1): unit-charged reads, ω=12 writes. Engines built without
// WithModel use it, so selecting it explicitly changes nothing.
func CostModelOptane() CostModel { return costmodel.Optane() }

// CostModelDRAM is the symmetric DRAM-only profile.
func CostModelDRAM() CostModel { return costmodel.DRAMOnly() }

// CostModelReRAM is a GraphR-style ReRAM profile: near-DRAM reads,
// write latency and energy an order of magnitude above.
func CostModelReRAM() CostModel { return costmodel.ReRAM() }

// CostModelFlash is a flash/CSD profile with page-granular large-memory
// I/O (internal/semiext's page-cost framing): a scattered word read
// bills a whole device page.
func CostModelFlash() CostModel { return costmodel.FlashCSD() }

// CostModels returns the built-in profiles in registry order.
func CostModels() []CostModel { return costmodel.Models() }

// CostModelNames returns the built-in profile names ("optane", "dram",
// "reram", "flash") in registry order.
func CostModelNames() []string { return costmodel.Names() }

// LookupCostModel resolves a built-in profile by name.
func LookupCostModel(name string) (CostModel, bool) { return costmodel.Lookup(name) }

// Model reports the engine's hardware cost profile.
func (e *Engine) Model() CostModel { return e.cfg.model }

// CostEstimate is a priced operation-count vector: the predicted (or
// measured) cost in DRAM-access units under a named model, with the
// model's latency and energy projections.
type CostEstimate struct {
	// Model is the profile's registry name.
	Model string
	// Cost is the cost in DRAM-access units (the PSAM's currency).
	Cost int64
	// LatencyNS is the projected serial access latency in nanoseconds.
	LatencyNS float64
	// EnergyNJ is the projected access energy in nanojoules.
	EnergyNJ float64
}

// String formats the estimate compactly.
func (c CostEstimate) String() string {
	return fmt.Sprintf("model=%s cost=%d latency=%.0fns energy=%.0fnJ",
		c.Model, c.Cost, c.LatencyNS, c.EnergyNJ)
}

// estimateOf prices a count vector under the engine's model.
func (e *Engine) estimateOf(c costmodel.Counts) CostEstimate {
	p := &e.cfg.model
	return CostEstimate{
		Model:     p.Name(),
		Cost:      p.Cost(c),
		LatencyNS: p.LatencyNS(c),
		EnergyNJ:  p.EnergyNJ(c),
	}
}

// PredictCost estimates the cost of running the named registry algorithm
// on g before executing it, from the algorithm's cost class and the
// graph's (n, m) alone (costmodel.EstimateOps). The estimate is
// deliberately coarse — the right order of magnitude and the right
// profile sensitivity, not a per-algorithm fit; the serving layer sheds
// load on it and reports it in the X-Sage-Cost-Predicted header.
func (e *Engine) PredictCost(algo string, g *Graph) (CostEstimate, error) {
	spec, ok := algos.Lookup(algo)
	if !ok {
		return CostEstimate{}, fmt.Errorf("sage: unknown algorithm %q", algo)
	}
	ops := costmodel.EstimateOps(spec.CostClass, uint64(g.NumVertices()), g.NumEdges())
	return e.estimateOf(ops), nil
}

// CostOfStats prices a run's measured counters under the engine's model —
// the "actual" side of the predicted-vs-actual cost headers. For
// word-granular models CostOfStats(s).Cost equals s.PSAMCost; the
// latency and energy projections add the model's physical constants.
func (e *Engine) CostOfStats(s RunStats) CostEstimate {
	return e.estimateOf(costmodel.Counts{
		DRAMReads:   s.DRAMReads,
		DRAMWrites:  s.DRAMWrites,
		NVRAMReads:  s.NVRAMReads,
		NVRAMWrites: s.NVRAMWrites,
		CacheHits:   s.CacheHits,
		CacheMisses: s.CacheMisses,
	})
}
