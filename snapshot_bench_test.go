package sage_test

// Pins the empty-overlay fast path: an identity snapshot's Graph() IS the
// base handle (asserted in TestSnapshotEmptyOverlayFastPath), so the
// static/base and snapshot/empty timings below are the same code path —
// the PR 1 flat-iteration goldens apply to snapshots verbatim, with no
// regression possible by construction. snapshot/delta shows the merge
// cost updates actually pay, scoped to the touched vertices.

import (
	"testing"

	"sage"
)

func BenchmarkSnapshotBFS(b *testing.B) {
	g := sage.GenerateRMAT(16, 16, 1)
	snapEmpty := g.Snapshot()
	batch := make([]sage.EdgeOp, 0, 2048)
	n := g.NumVertices()
	for i := uint32(0); i < 2048; i++ {
		u, v := (i*2654435761)%n, (i*40503+17)%n
		if u != v {
			batch = append(batch, sage.EdgeOp{U: u, V: v})
		}
	}
	snapDelta, err := snapEmpty.ApplyBatch(batch)
	if err != nil {
		b.Fatal(err)
	}
	e := sage.NewEngine(sage.WithMode(sage.AppDirect))
	for _, tc := range []struct {
		name string
		g    *sage.Graph
	}{
		{"static/base", g},
		{"snapshot/empty", snapEmpty.Graph()},
		{"snapshot/delta", snapDelta.Graph()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.MustBFS(tc.g, 0)
			}
		})
	}
}
