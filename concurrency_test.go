package sage_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sage"
)

// TestConcurrentRunsAggregate drives one engine from many goroutines
// with a mix of algorithms (run under -race in CI): every call is its
// own Run with private counters, and on completion the engine aggregate
// must equal the sum of the per-run stats (max for the DRAM peak).
func TestConcurrentRunsAggregate(t *testing.T) {
	g := sage.GenerateRMAT(11, 8, 3)
	wg := weighted(t, g, 5)
	e := sage.NewEngine(sage.WithMode(sage.AppDirect))

	type result struct {
		stats sage.RunStats
		err   error
	}
	kinds := []func(r *sage.Run) error{
		func(r *sage.Run) error { _, err := r.BFS(context.Background(), g, 0); return err },
		func(r *sage.Run) error { _, err := r.Connectivity(context.Background(), g); return err },
		func(r *sage.Run) error { _, err := r.KCore(context.Background(), g); return err },
		func(r *sage.Run) error { _, _, err := r.PageRank(context.Background(), g, 1e-6, 20); return err },
		func(r *sage.Run) error { _, err := r.WBFS(context.Background(), wg, 1); return err },
		func(r *sage.Run) error { _, err := r.MIS(context.Background(), g); return err },
		func(r *sage.Run) error { _, err := r.TriangleCount(context.Background(), g); return err },
		func(r *sage.Run) error { _, err := r.Coloring(context.Background(), g); return err },
	}
	const perKind = 3
	results := make([]result, perKind*len(kinds))
	var wait sync.WaitGroup
	for i := range results {
		wait.Add(1)
		go func(i int) {
			defer wait.Done()
			r := e.NewRun()
			err := kinds[i%len(kinds)](r)
			results[i] = result{stats: r.Stats(), err: err}
		}(i)
	}
	wait.Wait()

	var sum sage.Stats
	var maxPeak int64
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("run %d: %v", i, res.err)
		}
		sum.NVRAMReads += res.stats.NVRAMReads
		sum.NVRAMWrites += res.stats.NVRAMWrites
		sum.DRAMReads += res.stats.DRAMReads
		sum.DRAMWrites += res.stats.DRAMWrites
		sum.CacheHits += res.stats.CacheHits
		sum.CacheMisses += res.stats.CacheMisses
		sum.PSAMCost += res.stats.PSAMCost
		if res.stats.PeakDRAMWords > maxPeak {
			maxPeak = res.stats.PeakDRAMWords
		}
	}
	agg := e.Stats()
	if agg.NVRAMReads != sum.NVRAMReads || agg.NVRAMWrites != sum.NVRAMWrites ||
		agg.DRAMReads != sum.DRAMReads || agg.DRAMWrites != sum.DRAMWrites ||
		agg.CacheHits != sum.CacheHits || agg.CacheMisses != sum.CacheMisses {
		t.Fatalf("aggregate counters != sum of per-run stats:\n agg %+v\n sum %+v", agg, sum)
	}
	if agg.PSAMCost != sum.PSAMCost {
		t.Fatalf("aggregate cost %d != sum of per-run costs %d", agg.PSAMCost, sum.PSAMCost)
	}
	if agg.PeakDRAMWords != maxPeak {
		t.Fatalf("aggregate peak %d != max per-run peak %d", agg.PeakDRAMWords, maxPeak)
	}
	if agg.NVRAMWrites != 0 {
		t.Fatalf("sage discipline violated under concurrency: %d NVRAM writes", agg.NVRAMWrites)
	}
}

// TestStatsSnapshotDuringRuns pins the contract documented on
// Engine.Stats: the aggregate may be snapshotted at any time, including
// while runs are in flight — the serving layer's /metrics endpoint does
// exactly that. Under -race this proves the absence of data races; the
// assertions prove the promised monotonicity (no merge ever observed
// half-applied as a decrease) and the final consistency with the
// completed runs.
func TestStatsSnapshotDuringRuns(t *testing.T) {
	g := sage.GenerateRMAT(11, 8, 41)
	e := sage.NewEngine(sage.WithMode(sage.AppDirect))

	stop := make(chan struct{})
	snapErr := make(chan error, 1)
	go func() {
		defer close(snapErr)
		var prev sage.Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := e.Stats()
			if s.PSAMCost < prev.PSAMCost || s.NVRAMReads < prev.NVRAMReads ||
				s.DRAMWrites < prev.DRAMWrites || s.PeakDRAMWords < prev.PeakDRAMWords {
				snapErr <- fmt.Errorf("aggregate went backwards: %+v then %+v", prev, s)
				return
			}
			prev = s
		}
	}()

	var wait sync.WaitGroup
	const runs = 12
	for i := 0; i < runs; i++ {
		wait.Add(1)
		go func(i int) {
			defer wait.Done()
			switch i % 3 {
			case 0:
				e.MustBFS(g, 0)
			case 1:
				e.MustConnectivity(g)
			case 2:
				e.MustKCore(g)
			}
		}(i)
	}
	wait.Wait()
	close(stop)
	if err, ok := <-snapErr; ok && err != nil {
		t.Fatal(err)
	}
	if got := e.Stats(); got.NVRAMReads == 0 || got.PSAMCost == 0 {
		t.Fatalf("aggregate after %d runs: %+v", runs, got)
	}
}

// TestConcurrentEnginesIsolated runs two engines concurrently and checks
// neither sees the other's accounting.
func TestConcurrentEnginesIsolated(t *testing.T) {
	g := sage.GenerateRMAT(10, 8, 9)
	e1 := sage.NewEngine(sage.WithMode(sage.AppDirect))
	e2 := sage.NewEngine(sage.WithMode(sage.DRAM))
	var wait sync.WaitGroup
	for i := 0; i < 4; i++ {
		wait.Add(2)
		go func() { defer wait.Done(); e1.MustConnectivity(g) }()
		go func() { defer wait.Done(); e2.MustConnectivity(g) }()
	}
	wait.Wait()
	if e1.Stats().DRAMReads == 0 || e2.Stats().DRAMReads == 0 {
		t.Fatal("engines recorded nothing")
	}
	if e2.Stats().NVRAMReads != 0 {
		t.Fatal("DRAM-mode engine charged NVRAM reads (cross-engine leak)")
	}
}

// TestCancellationPreCancelled: an already-cancelled context stops
// Connectivity at its first checkpoint and surfaces ctx.Err().
func TestCancellationPreCancelled(t *testing.T) {
	g := sage.GenerateRMAT(11, 8, 13)
	e := sage.NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	labels, err := e.Connectivity(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if labels != nil {
		t.Fatal("cancelled run returned a result")
	}
	// The engine remains usable after a cancelled run.
	if got := e.MustConnectivity(g); len(got) != int(g.NumVertices()) {
		t.Fatal("engine broken after cancellation")
	}
}

// TestCancellationMidRun cancels PageRank while it iterates (an
// effectively unreachable convergence threshold) and checks the run
// stops with ctx.Err() instead of running its million-iteration cap.
func TestCancellationMidRun(t *testing.T) {
	g := sage.GenerateRMAT(12, 16, 17)
	e := sage.NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	ranks, iters, err := e.PageRank(ctx, g, 1e-300, 1<<30)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (iters=%d), want context.Canceled", err, iters)
	}
	if ranks != nil {
		t.Fatal("cancelled PageRank returned ranks")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// Partial work of the cancelled run still reaches the aggregate.
	if e.Stats().NVRAMReads == 0 {
		t.Fatal("cancelled run merged no partial accounting")
	}
}

// TestCancellationDeadline covers the context.DeadlineExceeded path.
func TestCancellationDeadline(t *testing.T) {
	g := sage.GenerateRMAT(12, 16, 19)
	e := sage.NewEngine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := e.PageRank(ctx, g, 1e-300, 1<<30)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWithCacheOrderIndependent: WithCache must compose with WithMode in
// either order (the default cache is resolved after all options apply).
func TestWithCacheOrderIndependent(t *testing.T) {
	const words = 1 << 12
	a := sage.NewEngine(sage.WithMode(sage.MemoryMode), sage.WithCache(words))
	b := sage.NewEngine(sage.WithCache(words), sage.WithMode(sage.MemoryMode))
	if a.CacheWords() != words || b.CacheWords() != words {
		t.Fatalf("cache capacity depends on option order: %d vs %d (want %d)",
			a.CacheWords(), b.CacheWords(), words)
	}
	// Behavioural check: identical deterministic runs, identical stats.
	old := sage.Workers()
	defer sage.SetWorkers(old)
	sage.SetWorkers(1)
	g := sage.GenerateRMAT(10, 8, 23)
	sa := mustStats(t, a, g)
	sb := mustStats(t, b, g)
	if sa != sb {
		t.Fatalf("option order changed behaviour:\n a %+v\n b %+v", sa, sb)
	}
	if sa.CacheMisses == 0 {
		t.Fatal("MemoryMode run never missed")
	}
	// MemoryMode without WithCache still gets the default cache.
	c := sage.NewEngine(sage.WithMode(sage.MemoryMode))
	if c.CacheWords() != 1<<22 {
		t.Fatalf("default cache = %d words, want %d", c.CacheWords(), 1<<22)
	}
}

func mustStats(t *testing.T, e *sage.Engine, g *sage.Graph) sage.Stats {
	t.Helper()
	e.MustConnectivity(g)
	return e.Stats()
}

// TestRunSessionAccumulates: a Run reused for several calls reports the
// session total, and the engine aggregate matches it.
func TestRunSessionAccumulates(t *testing.T) {
	g := sage.GenerateRMAT(10, 8, 29)
	e := sage.NewEngine()
	r := e.NewRun()
	if _, err := r.BFS(context.Background(), g, 0); err != nil {
		t.Fatal(err)
	}
	afterBFS := r.Stats()
	if _, err := r.KCore(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	afterBoth := r.Stats()
	if afterBoth.NVRAMReads <= afterBFS.NVRAMReads {
		t.Fatal("session stats did not accumulate across calls")
	}
	agg := e.Stats()
	if agg.NVRAMReads != afterBoth.NVRAMReads || agg.DRAMWrites != afterBoth.DRAMWrites {
		t.Fatalf("aggregate %+v != session total %+v", agg, afterBoth)
	}
}

// TestAlgorithmRegistry exercises the enumerable registry surface: every
// entry is invokable by name through one engine, set cover demands its
// instance parameter, and unknown names report the known set.
func TestAlgorithmRegistry(t *testing.T) {
	list := sage.Algorithms()
	if len(list) < 24 {
		t.Fatalf("registry lists %d algorithms, want >= 24", len(list))
	}
	g := sage.GenerateRMAT(9, 8, 31)
	wg := weighted(t, g, 7)
	// A tiny bipartite set-cover instance: sets {0,1} cover elements
	// {2,3,4} (vertices >= numSets are elements).
	sc := sage.FromEdges(5, []sage.Edge{{U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}, {U: 1, V: 4}})
	e := sage.NewEngine()
	for _, a := range list {
		input := g
		args := sage.AlgoArgs{}
		if a.Weighted {
			input = wg
		}
		if a.SetCover {
			input = sc
			args.NumSets = 2
		}
		res, err := e.RunAlgorithm(context.Background(), a.Name, input, args)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Summary == "" || res.Value == nil {
			t.Fatalf("%s: empty result", a.Name)
		}
		if res.Stats.PSAMCost == 0 {
			t.Fatalf("%s: no per-run accounting", a.Name)
		}
	}
	if _, err := e.RunAlgorithm(context.Background(), "setcover", sc, sage.AlgoArgs{}); err == nil {
		t.Fatal("setcover without NumSets should error")
	}
	_, err := e.RunAlgorithm(context.Background(), "nope", g, sage.AlgoArgs{})
	if err == nil || !strings.Contains(err.Error(), "bfs") {
		t.Fatalf("unknown-algorithm error should list registry names, got: %v", err)
	}
	if _, err := e.RunAlgorithm(context.Background(), "bfs", g, sage.AlgoArgs{Src: g.NumVertices()}); err == nil {
		t.Fatal("out-of-range source should error")
	}
	if _, err := e.RunAlgorithm(context.Background(), "kclique", g, sage.AlgoArgs{K: 2}); err == nil {
		t.Fatal("kclique with k < 3 should error, not panic")
	}
}

// TestRegistryMatchesTypedAPI: the registry invoker and the typed method
// compute the same answer.
func TestRegistryMatchesTypedAPI(t *testing.T) {
	g := sage.GenerateRMAT(10, 8, 37)
	e := sage.NewEngine()
	res, err := e.RunAlgorithm(context.Background(), "bfs", g, sage.AlgoArgs{Src: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := e.MustBFS(g, 0)
	got, ok := res.Value.([]uint32)
	if !ok {
		t.Fatalf("bfs value has type %T", res.Value)
	}
	for v := range want {
		if (got[v] == ^uint32(0)) != (want[v] == ^uint32(0)) {
			t.Fatal("registry and typed BFS disagree on reachability")
		}
	}
}
