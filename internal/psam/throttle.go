package psam

import "sync/atomic"

// Throttle optionally converts simulated NVRAM cost into real elapsed time
// by busy-spinning in the charging worker, so that wall-clock benchmarks
// also exhibit the read/write asymmetry (not only the deterministic cost
// counters). A nil *Throttle is a no-op, which is the default: the
// experiment harness prefers the deterministic cost model and enables the
// throttle only for the wall-clock validation benches.
type Throttle struct {
	// ReadSpinPerWord and WriteSpinPerWord are loop iterations of busy
	// work injected per NVRAM word read/written. They stand in for the
	// extra latency of the medium; absolute calibration is irrelevant —
	// only the read:write ratio shapes the results.
	ReadSpinPerWord  int64
	WriteSpinPerWord int64
}

// NewThrottle returns a throttle with spin counts proportional to the cost
// configuration: reads spin (NVRAMRead-1)·scale, writes
// (NVRAMRead·Omega-1)·scale.
func NewThrottle(cfg Config, scale int64) *Throttle {
	return &Throttle{
		ReadSpinPerWord:  (cfg.NVRAMRead - 1) * scale,
		WriteSpinPerWord: (cfg.NVRAMRead*cfg.Omega - 1) * scale,
	}
}

// spinSink defeats dead-code elimination of the spin loops.
var spinSink atomic.Int64

func spin(iters int64) {
	var acc int64
	for i := int64(0); i < iters; i++ {
		acc += i ^ (acc << 1)
	}
	spinSink.Store(acc)
}

// NVRAMReadDelay injects the read-latency penalty for words NVRAM words.
func (t *Throttle) NVRAMReadDelay(words int64) {
	if t == nil || words <= 0 {
		return
	}
	spin(words * t.ReadSpinPerWord)
}

// NVRAMWriteDelay injects the write-latency penalty for words NVRAM words.
func (t *Throttle) NVRAMWriteDelay(words int64) {
	if t == nil || words <= 0 {
		return
	}
	spin(words * t.WriteSpinPerWord)
}
