package psam

import "sync/atomic"

// Space tracks the small-memory (DRAM) footprint of an algorithm in words,
// maintaining the current and peak residency. It backs the O(n) /
// O(n + m/log n) space claims of Table 1 and the memory-usage comparison of
// Table 5 (Appendix D.2). Alloc/Free are called by the traversal and
// filter layers at every temporary allocation.
type Space struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// NewSpace returns an empty space tracker.
func NewSpace() *Space { return &Space{} }

// Alloc records an allocation of words words and updates the peak.
func (s *Space) Alloc(words int64) {
	if s == nil {
		return
	}
	cur := s.cur.Add(words)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Free records the release of words words.
func (s *Space) Free(words int64) {
	if s == nil {
		return
	}
	s.cur.Add(-words)
}

// Current reports the currently tracked residency in words.
func (s *Space) Current() int64 {
	if s == nil {
		return 0
	}
	return s.cur.Load()
}

// Peak reports the maximum tracked residency in words.
func (s *Space) Peak() int64 {
	if s == nil {
		return 0
	}
	return s.peak.Load()
}

// Reset zeroes both counters.
func (s *Space) Reset() {
	if s == nil {
		return
	}
	s.cur.Store(0)
	s.peak.Store(0)
}
