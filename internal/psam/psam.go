// Package psam implements the Parallel Semi-Asymmetric Model from the Sage
// paper (§3): a two-level memory with a symmetric small-memory (DRAM) and
// an asymmetric large-memory (NVRAM) whose writes cost ω times its reads.
//
// Real Optane hardware is unavailable in this environment, so the package
// *simulates* the memory system: every graph or state access is charged to
// an account through sharded per-worker counters, and experiments report a
// deterministic simulated cost alongside wall-clock time. The relative
// costs follow the measurements the paper cites [50, 96]: NVRAM reads ~3x
// a DRAM access and NVRAM writes a further ~4x (12x total). A
// direct-mapped cache simulator models Intel Memory Mode, and an optional
// throttle injects proportional delays so the asymmetry is also visible in
// wall-clock measurements.
package psam

import "sage/internal/parallel"

// Config holds the relative access costs of the simulated memory system,
// in units of one DRAM word access.
type Config struct {
	// NVRAMRead is the charged cost of reading one word from NVRAM. The
	// PSAM charges reads unit cost (§3.2: although NVRAM reads are ~3x a
	// DRAM access, the gap is hidden by memory-level parallelism and the
	// model deliberately charges both 1); raise this for sensitivity
	// studies of the read gap.
	NVRAMRead int64
	// Omega is the multiplier of an NVRAM write over an NVRAM read. With
	// unit-charged reads, the paper's full write penalty — 4x an NVRAM
	// read, 12x a DRAM access [50, 96] — folds into Omega = 12, so one
	// write costs NVRAMRead*Omega = 12 DRAM accesses.
	Omega int64
	// MissCost is the cost per word of a Memory-Mode cache miss. Unlike
	// Sage's software-managed App-Direct reads, a Memory-Mode miss is a
	// hardware-managed 256-byte fill whose latency is not hidden — the
	// paper's observation that "the DRAM hit rate dominates memory
	// performance" in this mode (§5.1.2). Default 3, the raw NVRAM/DRAM
	// read gap.
	MissCost int64
	// RemotePenalty multiplies NVRAM costs for cross-socket accesses in
	// the NUMA experiments (§5.2 measures ~3.7x).
	RemotePenalty float64
}

// DefaultConfig is the PSAM of §3: unit-cost reads everywhere, NVRAM
// writes at the measured 12x-DRAM penalty.
func DefaultConfig() Config {
	return Config{NVRAMRead: 1, Omega: 12, MissCost: 3, RemotePenalty: 3.7}
}

// Counts is a snapshot of the access counters of one account.
type Counts struct {
	DRAMReads   int64
	DRAMWrites  int64
	NVRAMReads  int64
	NVRAMWrites int64
	// CacheHits/CacheMisses are populated only under Memory Mode.
	CacheHits   int64
	CacheMisses int64
}

// Add accumulates other into c.
func (c *Counts) Add(o Counts) {
	c.DRAMReads += o.DRAMReads
	c.DRAMWrites += o.DRAMWrites
	c.NVRAMReads += o.NVRAMReads
	c.NVRAMWrites += o.NVRAMWrites
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
}

// Cost returns the simulated PSAM cost of the counted accesses under cfg:
// DRAM accesses at unit cost, NVRAM reads and writes weighted per §3.1,
// and Memory-Mode miss fills at the unhidden read gap. A zero MissCost is
// treated as the default 3 so recosting with partial configs stays sane.
func (c Counts) Cost(cfg Config) int64 {
	miss := cfg.MissCost
	if miss == 0 {
		miss = 3
	}
	return c.DRAMReads + c.DRAMWrites +
		cfg.NVRAMRead*c.NVRAMReads +
		cfg.NVRAMRead*cfg.Omega*c.NVRAMWrites +
		miss*c.CacheMisses
}

// pad separates shards onto distinct cache lines to avoid false sharing.
type shard struct {
	c Counts
	_ [64 - (6*8)%64]byte
}

// Tracker accumulates access counts across workers without contention:
// each worker charges its own shard (indexed by the worker id that the
// parallel package exposes) and Totals folds the shards.
type Tracker struct {
	shards [parallel.MaxWorkers]shard
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// DRAMRead charges words DRAM reads on the given worker shard.
func (t *Tracker) DRAMRead(worker int, words int64) {
	t.shards[worker].c.DRAMReads += words
}

// DRAMWrite charges words DRAM writes.
func (t *Tracker) DRAMWrite(worker int, words int64) {
	t.shards[worker].c.DRAMWrites += words
}

// NVRAMRead charges words NVRAM reads.
func (t *Tracker) NVRAMRead(worker int, words int64) {
	t.shards[worker].c.NVRAMReads += words
}

// NVRAMWrite charges words NVRAM writes.
func (t *Tracker) NVRAMWrite(worker int, words int64) {
	t.shards[worker].c.NVRAMWrites += words
}

// CacheAccess charges a Memory-Mode access outcome in words: hits cost
// like DRAM; miss words accumulate in the CacheMisses counter, which
// Cost() weighs at the unhidden MissCost. Dirty evictions are charged
// separately as NVRAM writes by the caller.
func (t *Tracker) CacheAccess(worker int, hits, misses int64) {
	s := &t.shards[worker].c
	s.CacheHits += hits
	s.CacheMisses += misses
	s.DRAMReads += hits
}

// Reset zeroes all counters.
func (t *Tracker) Reset() {
	for i := range t.shards {
		t.shards[i].c = Counts{}
	}
}

// Totals folds all shards into one snapshot. It must not race with
// concurrent charging.
func (t *Tracker) Totals() Counts {
	var out Counts
	for i := range t.shards {
		out.Add(t.shards[i].c)
	}
	return out
}
