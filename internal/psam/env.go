package psam

import "context"

// Mode selects where the graph and the algorithm's temporary state live,
// matching the experimental configurations of §5.4 and §5.5.
type Mode int

const (
	// DRAMOnly stores graph and state in DRAM (the GBBS-DRAM and
	// Sage-DRAM configurations of Figure 7).
	DRAMOnly Mode = iota
	// AppDirect stores the graph in byte-addressable NVRAM and all state
	// in DRAM — the Sage configuration (§5.1.2).
	AppDirect
	// MemoryMode stores the graph in NVRAM behind a direct-mapped DRAM
	// cache — the GBBS-MemMode and Galois configurations (Figure 1).
	MemoryMode
	// NVRAMAll stores the graph and every temporary in NVRAM, emulating
	// unmodified DRAM code run under libvmmalloc (Figure 7, pink bars).
	NVRAMAll
)

// String returns the configuration name used in the paper's figures.
func (m Mode) String() string {
	switch m {
	case DRAMOnly:
		return "DRAM"
	case AppDirect:
		return "NVRAM(AppDirect)"
	case MemoryMode:
		return "NVRAM(MemoryMode)"
	case NVRAMAll:
		return "NVRAM(libvmmalloc)"
	}
	return "unknown"
}

// Env bundles the simulated memory system that every Sage operation runs
// against: the cost configuration, the access-count tracker, the
// small-memory space tracker, and (under MemoryMode) the cache simulator.
// A nil *Env is valid and disables all accounting, so the algorithms can
// run at full speed for pure wall-clock measurements.
type Env struct {
	Cfg      Config
	Mode     Mode
	Track    *Tracker
	Space    *Space
	Cache    *Cache
	Throttle *Throttle

	// Ctx, when non-nil, is the cancellation context of the run this
	// environment accounts for. Algorithms poll it through Checkpoint at
	// frontier/iteration boundaries; a cancelled context unwinds the run
	// with a Cancellation panic that the public API converts back into
	// ctx.Err(). Ctx is written only by the goroutine driving the run,
	// between algorithm calls — never by the parallel workers.
	Ctx context.Context
}

// Cancellation is the panic payload that unwinds an algorithm whose
// context was cancelled at a Checkpoint. The engine's Run wrapper
// recovers it and returns Err; any other panic value is re-raised.
type Cancellation struct{ Err error }

// Checkpoint polls the bound context and unwinds the run with a
// Cancellation panic if it is done. It is called at frontier and
// iteration boundaries, always from the goroutine driving the algorithm
// (never inside a parallel loop body, where a panic could not be
// recovered by the caller). A nil Env or unbound context is a no-op, so
// accounting-free runs and internal callers are unaffected.
func (e *Env) Checkpoint() {
	if e == nil || e.Ctx == nil {
		return
	}
	select {
	case <-e.Ctx.Done():
		panic(Cancellation{Err: e.Ctx.Err()})
	default:
	}
}

// NewEnv returns an accounting environment for the given mode with default
// costs. Under MemoryMode the cache must be attached separately via
// WithCache (its size depends on the experiment).
func NewEnv(mode Mode) *Env {
	return &Env{
		Cfg:   DefaultConfig(),
		Mode:  mode,
		Track: NewTracker(),
		Space: NewSpace(),
	}
}

// WithCache attaches a Memory-Mode cache with the given simulated DRAM
// capacity in words and returns e.
func (e *Env) WithCache(capacityWords int64) *Env {
	e.Cache = NewCache(capacityWords)
	return e
}

// Reset clears all counters (and the cache, if any) between measurements.
func (e *Env) Reset() {
	if e == nil {
		return
	}
	if e.Track != nil {
		e.Track.Reset()
	}
	if e.Space != nil {
		e.Space.Reset()
	}
	if e.Cache != nil {
		e.Cache.Reset()
	}
}

// Totals returns the accumulated access counts.
func (e *Env) Totals() Counts {
	if e == nil || e.Track == nil {
		return Counts{}
	}
	return e.Track.Totals()
}

// Cost returns the simulated PSAM cost accumulated so far.
func (e *Env) Cost() int64 {
	if e == nil || e.Track == nil {
		return 0
	}
	return e.Track.Totals().Cost(e.Cfg)
}

// GraphRead charges a read of words words of graph data starting at the
// simulated word address addr. Under MemoryMode the address determines
// cache behaviour; in the other modes only the word count matters.
func (e *Env) GraphRead(worker int, addr, words int64) {
	if e == nil || e.Track == nil || words == 0 {
		return
	}
	switch e.Mode {
	case DRAMOnly:
		e.Track.DRAMRead(worker, words)
	case AppDirect, NVRAMAll:
		e.Track.NVRAMRead(worker, words)
		e.Throttle.NVRAMReadDelay(words)
	case MemoryMode:
		hits, misses, wb := e.Cache.AccessRange(addr, words, false)
		e.Track.CacheAccess(worker, hits*CacheBlockWords, misses*CacheBlockWords)
		e.Track.NVRAMWrite(worker, wb*CacheBlockWords)
		e.Throttle.NVRAMReadDelay(misses * CacheBlockWords)
	}
}

// GraphWrite charges a write of words words of graph data at addr. Sage
// algorithms never call this (their discipline is a read-only graph); the
// GBBS mutation baselines do.
func (e *Env) GraphWrite(worker int, addr, words int64) {
	if e == nil || e.Track == nil || words == 0 {
		return
	}
	switch e.Mode {
	case DRAMOnly:
		e.Track.DRAMWrite(worker, words)
	case AppDirect, NVRAMAll:
		e.Track.NVRAMWrite(worker, words)
		e.Throttle.NVRAMWriteDelay(words)
	case MemoryMode:
		hits, misses, wb := e.Cache.AccessRange(addr, words, true)
		e.Track.CacheAccess(worker, hits*CacheBlockWords, misses*CacheBlockWords)
		e.Track.DRAMWrite(worker, words)
		e.Track.NVRAMWrite(worker, wb*CacheBlockWords)
		e.Throttle.NVRAMWriteDelay(wb * CacheBlockWords)
	}
}

// StateRead charges a read of algorithm state (frontiers, parents, filter
// bits, buckets). State lives in DRAM except under NVRAMAll.
func (e *Env) StateRead(worker int, words int64) {
	if e == nil || e.Track == nil || words == 0 {
		return
	}
	if e.Mode == NVRAMAll {
		e.Track.NVRAMRead(worker, words)
		e.Throttle.NVRAMReadDelay(words)
		return
	}
	e.Track.DRAMRead(worker, words)
}

// StateWrite charges a write of algorithm state.
func (e *Env) StateWrite(worker int, words int64) {
	if e == nil || e.Track == nil || words == 0 {
		return
	}
	if e.Mode == NVRAMAll {
		e.Track.NVRAMWrite(worker, words)
		e.Throttle.NVRAMWriteDelay(words)
		return
	}
	e.Track.DRAMWrite(worker, words)
}

// Alloc records a small-memory allocation of words words. Under NVRAMAll
// (the libvmmalloc emulation) the allocation itself is charged as NVRAM
// writes: libvmmalloc places every heap allocation in NVRAM, where the
// allocator's zeroing and the algorithm's first touch materialize the
// array on the device — the dominant cost that makes unmodified DRAM
// codes 6.69x slower than Sage in Figure 7.
func (e *Env) Alloc(words int64) {
	if e == nil {
		return
	}
	e.Space.Alloc(words)
	if e.Mode == NVRAMAll && e.Track != nil && words > 0 {
		e.Track.NVRAMWrite(0, words)
		e.Throttle.NVRAMWriteDelay(words)
	}
}

// Free records a small-memory release.
func (e *Env) Free(words int64) {
	if e == nil {
		return
	}
	e.Space.Free(words)
}
