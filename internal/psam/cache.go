package psam

import "sync/atomic"

// CacheBlockWords is the granularity of the Memory-Mode cache simulator:
// 32 words = 256 bytes, the effective access granularity the paper reports
// for Optane DIMMs [50].
const CacheBlockWords = 32

// Cache simulates Intel Memory Mode (§5.1.2): DRAM acting as a
// direct-mapped cache over NVRAM. Addresses are word indices into a flat
// simulated NVRAM address space (the graph regions). The tag array is
// shared across workers and updated with atomic operations; racing updates
// perturb the hit rate exactly as they would in shared hardware, without
// introducing Go data races.
type Cache struct {
	// tags[i] holds (blockID+1) << 1 | dirty; 0 means empty.
	tags  []uint64
	lines uint64
}

// NewCache returns a direct-mapped cache with capacityWords of simulated
// DRAM (rounded down to whole blocks, minimum one line).
func NewCache(capacityWords int64) *Cache {
	lines := capacityWords / CacheBlockWords
	if lines < 1 {
		lines = 1
	}
	return &Cache{tags: make([]uint64, lines), lines: uint64(lines)}
}

// Lines reports the number of cache lines.
func (c *Cache) Lines() int64 { return int64(c.lines) }

// Reset empties the cache.
func (c *Cache) Reset() {
	for i := range c.tags {
		atomic.StoreUint64(&c.tags[i], 0)
	}
}

// access touches one block and returns (hit, evictedDirty).
func (c *Cache) access(block uint64, write bool) (bool, bool) {
	line := block % c.lines
	want := (block + 1) << 1
	for {
		cur := atomic.LoadUint64(&c.tags[line])
		if cur>>1 == block+1 {
			if write && cur&1 == 0 {
				if !atomic.CompareAndSwapUint64(&c.tags[line], cur, cur|1) {
					continue
				}
			}
			return true, false
		}
		newTag := want
		if write {
			newTag |= 1
		}
		if atomic.CompareAndSwapUint64(&c.tags[line], cur, newTag) {
			return false, cur != 0 && cur&1 == 1
		}
	}
}

// AccessRange simulates an access to words [addr, addr+words) and returns
// the number of block hits, block misses, and dirty writebacks incurred.
func (c *Cache) AccessRange(addr, words int64, write bool) (hits, misses, writebacks int64) {
	if words <= 0 {
		return 0, 0, 0
	}
	first := uint64(addr) / CacheBlockWords
	last := uint64(addr+words-1) / CacheBlockWords
	for b := first; b <= last; b++ {
		hit, dirty := c.access(b, write)
		if hit {
			hits++
		} else {
			misses++
		}
		if dirty {
			writebacks++
		}
	}
	return hits, misses, writebacks
}
