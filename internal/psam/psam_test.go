package psam

import (
	"testing"

	"sage/internal/parallel"
)

func TestCountsCost(t *testing.T) {
	cfg := Config{NVRAMRead: 3, Omega: 4, MissCost: 3}
	c := Counts{DRAMReads: 10, DRAMWrites: 5, NVRAMReads: 2, NVRAMWrites: 1, CacheMisses: 4}
	// 10 + 5 + 3*2 + 3*4*1 + 3*4 = 45
	if got := c.Cost(cfg); got != 45 {
		t.Fatalf("cost=%d want 45", got)
	}
}

func TestTrackerShardedConcurrent(t *testing.T) {
	tr := NewTracker()
	parallel.ForWorker(100_000, 16, func(w, _ int) {
		tr.NVRAMRead(w, 1)
		tr.DRAMWrite(w, 2)
	})
	tot := tr.Totals()
	if tot.NVRAMReads != 100_000 || tot.DRAMWrites != 200_000 {
		t.Fatalf("totals %+v", tot)
	}
	tr.Reset()
	if tr.Totals() != (Counts{}) {
		t.Fatal("reset failed")
	}
}

func TestOmegaScalesWriteCostOnly(t *testing.T) {
	// The Sage claim: with zero NVRAM writes, cost is independent of ω.
	sage := Counts{DRAMReads: 100, NVRAMReads: 50}
	gbbs := Counts{DRAMReads: 100, NVRAMReads: 50, NVRAMWrites: 50}
	for _, omega := range []int64{1, 4, 8, 16} {
		cfg := Config{NVRAMRead: 3, Omega: omega}
		if sage.Cost(cfg) != 250 {
			t.Fatalf("sage cost varies with omega: %d", sage.Cost(cfg))
		}
		want := 250 + 3*omega*50
		if gbbs.Cost(cfg) != want {
			t.Fatalf("gbbs cost %d want %d", gbbs.Cost(cfg), want)
		}
	}
}

func TestCacheHitsAfterFill(t *testing.T) {
	c := NewCache(1 << 20) // plenty of lines
	h, m, wb := c.AccessRange(0, 1024, false)
	if h != 0 || m != 1024/CacheBlockWords || wb != 0 {
		t.Fatalf("cold: h=%d m=%d wb=%d", h, m, wb)
	}
	h, m, _ = c.AccessRange(0, 1024, false)
	if m != 0 || h != 1024/CacheBlockWords {
		t.Fatalf("warm: h=%d m=%d", h, m)
	}
}

func TestCacheConflictMisses(t *testing.T) {
	c := NewCache(CacheBlockWords) // exactly one line
	c.AccessRange(0, 1, false)
	// A different block mapping to the same line must evict.
	h, m, _ := c.AccessRange(int64(CacheBlockWords)*int64(c.Lines()), 1, false)
	if h != 0 || m != 1 {
		t.Fatalf("conflict: h=%d m=%d", h, m)
	}
	h, _, _ = c.AccessRange(0, 1, false)
	if h != 0 {
		t.Fatal("expected the original block to be evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache(CacheBlockWords) // one line
	c.AccessRange(0, 1, true)      // dirty fill
	_, _, wb := c.AccessRange(int64(CacheBlockWords)*int64(c.Lines()), 1, false)
	if wb != 1 {
		t.Fatalf("writebacks=%d want 1", wb)
	}
}

func TestCachePartialBlockCountsOnce(t *testing.T) {
	c := NewCache(1 << 16)
	// Words 5..10 live in one block.
	_, m, _ := c.AccessRange(5, 6, false)
	if m != 1 {
		t.Fatalf("misses=%d want 1", m)
	}
}

func TestEnvModes(t *testing.T) {
	for _, mode := range []Mode{DRAMOnly, AppDirect, NVRAMAll} {
		e := NewEnv(mode)
		e.GraphRead(0, 0, 100)
		e.StateWrite(0, 10)
		tot := e.Totals()
		switch mode {
		case DRAMOnly:
			if tot.DRAMReads != 100 || tot.NVRAMReads != 0 || tot.DRAMWrites != 10 {
				t.Fatalf("DRAMOnly: %+v", tot)
			}
		case AppDirect:
			if tot.NVRAMReads != 100 || tot.DRAMWrites != 10 || tot.NVRAMWrites != 0 {
				t.Fatalf("AppDirect: %+v", tot)
			}
		case NVRAMAll:
			if tot.NVRAMReads != 100 || tot.NVRAMWrites != 10 {
				t.Fatalf("NVRAMAll: %+v", tot)
			}
		}
	}
}

func TestEnvMemoryMode(t *testing.T) {
	e := NewEnv(MemoryMode).WithCache(1 << 20)
	e.GraphRead(0, 0, 1000)
	tot := e.Totals()
	if tot.CacheMisses == 0 {
		t.Fatal("no cold misses recorded")
	}
	e.GraphRead(0, 0, 1000)
	tot2 := e.Totals()
	if tot2.CacheHits <= tot.CacheHits {
		t.Fatal("no hits on re-read")
	}
}

func TestNilEnvSafe(t *testing.T) {
	var e *Env
	e.GraphRead(0, 0, 10)
	e.GraphWrite(0, 0, 10)
	e.StateRead(0, 10)
	e.StateWrite(0, 10)
	e.Alloc(5)
	e.Free(5)
	e.Reset()
	if e.Cost() != 0 {
		t.Fatal("nil env cost")
	}
}

func TestSpacePeak(t *testing.T) {
	s := NewSpace()
	s.Alloc(100)
	s.Alloc(50)
	s.Free(100)
	s.Alloc(20)
	if s.Peak() != 150 {
		t.Fatalf("peak=%d want 150", s.Peak())
	}
	if s.Current() != 70 {
		t.Fatalf("cur=%d want 70", s.Current())
	}
}

func TestSpaceConcurrentPeak(t *testing.T) {
	s := NewSpace()
	parallel.For(10_000, 16, func(int) {
		s.Alloc(3)
		s.Free(3)
	})
	if s.Current() != 0 {
		t.Fatalf("cur=%d want 0", s.Current())
	}
	if s.Peak() < 3 {
		t.Fatalf("peak=%d", s.Peak())
	}
}

func TestThrottleNilSafe(t *testing.T) {
	var th *Throttle
	th.NVRAMReadDelay(10)
	th.NVRAMWriteDelay(10)
	th2 := NewThrottle(DefaultConfig(), 2)
	if th2.ReadSpinPerWord != 0 || th2.WriteSpinPerWord != 22 {
		t.Fatalf("spin config %+v", th2)
	}
	th2.NVRAMReadDelay(1)
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		DRAMOnly:   "DRAM",
		AppDirect:  "NVRAM(AppDirect)",
		MemoryMode: "NVRAM(MemoryMode)",
		NVRAMAll:   "NVRAM(libvmmalloc)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d -> %s", m, m.String())
		}
	}
}
