package psam

import "sync/atomic"

// AtomicCounts is a lock-free aggregation target for per-run access
// counts: each completed (or cancelled) run merges its Env totals and
// small-memory peak here, so an engine shared by many goroutines can
// expose accumulated statistics without serializing the runs themselves.
// Counter fields accumulate by addition; the peak accumulates by maximum,
// since concurrent runs each track their own residency.
type AtomicCounts struct {
	dramReads, dramWrites   atomic.Int64
	nvramReads, nvramWrites atomic.Int64
	cacheHits, cacheMisses  atomic.Int64
	peak                    atomic.Int64
}

// Merge adds a run's counter totals into the aggregate.
func (a *AtomicCounts) Merge(c Counts) {
	if c.DRAMReads != 0 {
		a.dramReads.Add(c.DRAMReads)
	}
	if c.DRAMWrites != 0 {
		a.dramWrites.Add(c.DRAMWrites)
	}
	if c.NVRAMReads != 0 {
		a.nvramReads.Add(c.NVRAMReads)
	}
	if c.NVRAMWrites != 0 {
		a.nvramWrites.Add(c.NVRAMWrites)
	}
	if c.CacheHits != 0 {
		a.cacheHits.Add(c.CacheHits)
	}
	if c.CacheMisses != 0 {
		a.cacheMisses.Add(c.CacheMisses)
	}
}

// MergePeak raises the aggregate peak to p if it is larger.
func (a *AtomicCounts) MergePeak(p int64) {
	for {
		cur := a.peak.Load()
		if p <= cur || a.peak.CompareAndSwap(cur, p) {
			return
		}
	}
}

// Totals returns a snapshot of the aggregated counters.
func (a *AtomicCounts) Totals() Counts {
	return Counts{
		DRAMReads:   a.dramReads.Load(),
		DRAMWrites:  a.dramWrites.Load(),
		NVRAMReads:  a.nvramReads.Load(),
		NVRAMWrites: a.nvramWrites.Load(),
		CacheHits:   a.cacheHits.Load(),
		CacheMisses: a.cacheMisses.Load(),
	}
}

// Peak returns the aggregated small-memory peak.
func (a *AtomicCounts) Peak() int64 { return a.peak.Load() }

// Reset zeroes the aggregate. Runs still in flight merge their totals
// when they complete, after the reset.
func (a *AtomicCounts) Reset() {
	a.dramReads.Store(0)
	a.dramWrites.Store(0)
	a.nvramReads.Store(0)
	a.nvramWrites.Store(0)
	a.cacheHits.Store(0)
	a.cacheMisses.Store(0)
	a.peak.Store(0)
}
