//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package graph

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps [0, size) of f read-only and shared. The kernel pages the
// file in on demand, so opening a larger-than-DRAM graph costs no resident
// memory up front — the semi-external property the dataset layer is built
// around.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
