package graph

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func triangleGraph() *Graph {
	return FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}}, BuildOpts{Symmetrize: true})
}

func TestFromEdgesBasic(t *testing.T) {
	g := triangleGraph()
	if g.NumVertices() != 3 || g.NumEdges() != 6 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("deg(%d)=%d", v, g.Degree(v))
		}
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 1}, {1, 0}, {2, 2}, {1, 3}}, BuildOpts{Symmetrize: true})
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Edges: {0,1} and {1,3}; symmetric arcs = 4.
	if g.NumEdges() != 4 {
		t.Fatalf("m=%d want 4", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatal("self loop survived")
	}
}

func TestFromEdgesProperty(t *testing.T) {
	f := func(raw []uint16, nSeed uint8) bool {
		n := uint32(nSeed)%64 + 2
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: uint32(raw[i]) % n, V: uint32(raw[i+1]) % n})
		}
		g := FromEdges(n, edges, BuildOpts{Symmetrize: true})
		return g.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedBuild(t *testing.T) {
	g := FromWeightedEdges(3, []WEdge{{0, 1, 5}, {1, 2, 7}}, BuildOpts{Symmetrize: true})
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 5 {
		t.Fatalf("w(0,1)=%d ok=%v", w, ok)
	}
	w, ok = g.EdgeWeight(2, 1)
	if !ok || w != 7 {
		t.Fatalf("w(2,1)=%d ok=%v", w, ok)
	}
	if _, ok = g.EdgeWeight(0, 2); ok {
		t.Fatal("phantom edge")
	}
}

func TestIterRangeEarlyExit(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, BuildOpts{Symmetrize: true})
	var seen []uint32
	g.IterRange(0, 0, 4, func(_, ngh uint32, _ int32) bool {
		seen = append(seen, ngh)
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Fatalf("seen=%v", seen)
	}
	seen = nil
	g.IterRange(0, 1, 3, func(i, ngh uint32, _ int32) bool {
		if i < 1 || i >= 3 {
			t.Fatalf("position %d out of range", i)
		}
		seen = append(seen, ngh)
		return true
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 3 {
		t.Fatalf("range iter: %v", seen)
	}
}

func TestScanCostAndAddr(t *testing.T) {
	g := triangleGraph()
	if g.ScanCost(0, 0, 2) != 2 {
		t.Fatalf("cost %d", g.ScanCost(0, 0, 2))
	}
	// Offsets occupy [0, n+1): first edge address is n+1.
	if g.EdgeAddr(0) != int64(g.NumVertices())+1 {
		t.Fatalf("addr %d", g.EdgeAddr(0))
	}
}

func TestHasEdge(t *testing.T) {
	g := triangleGraph()
	if !g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 9))
	edges := make([]WEdge, 500)
	for i := range edges {
		edges[i] = WEdge{U: r.Uint32N(100), V: r.Uint32N(100), W: int32(r.IntN(50) + 1)}
	}
	g := FromWeightedEdges(100, edges, BuildOpts{Symmetrize: true})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("header mismatch")
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("deg mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge mismatch at %d[%d]", v, i)
			}
		}
		wa, wb := g.NeighborWeights(v), g2.NeighborWeights(v)
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("weight mismatch at %d[%d]", v, i)
			}
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected error")
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]uint32{{1, 2}, {0}, {0}})
	if g.NumEdges() != 4 || g.Degree(0) != 2 {
		t.Fatal("FromAdjacency wrong")
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestInducedDegrees(t *testing.T) {
	g := triangleGraph()
	deg := g.InducedDegrees(func(v uint32) bool { return v != 2 })
	if deg[0] != 1 || deg[1] != 1 || deg[2] != 0 {
		t.Fatalf("induced %v", deg)
	}
}

func TestAvgMaxDegree(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, BuildOpts{Symmetrize: true})
	if g.MaxDegree() != 4 {
		t.Fatalf("max %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1 {
		t.Fatalf("avg %d", g.AvgDegree())
	}
}

func TestDecodeRange(t *testing.T) {
	g := triangleGraph()
	got := DecodeRange(g, 0, 0, 2, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("decode %v", got)
	}
}
