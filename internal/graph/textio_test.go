package graph

import (
	"bytes"
	"strings"
	"testing"

	"sage/internal/parallel"
)

func TestTextRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}},
		BuildOpts{Symmetrize: true})
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "AdjacencyGraph\n") {
		t.Fatal("missing header")
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("shape mismatch")
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge mismatch at %d", v)
			}
		}
	}
}

func TestTextRoundTripWeighted(t *testing.T) {
	g := FromWeightedEdges(3, []WEdge{{U: 0, V: 1, W: 7}, {U: 1, V: 2, W: -3}},
		BuildOpts{Symmetrize: true})
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "WeightedAdjacencyGraph\n") {
		t.Fatal("missing weighted header")
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := g2.EdgeWeight(1, 2)
	if !ok || w != -3 {
		t.Fatalf("weight round trip: %d", w)
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"NotAGraph\n1\n0\n0\n",
		"AdjacencyGraph\n2\n1\n0\n0\n9\n", // edge target out of range
		"AdjacencyGraph\n2\n",             // truncated
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := FromEdges(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}},
		BuildOpts{Symmetrize: true})
	perm := []uint32{5, 4, 3, 2, 1, 0}
	h := g.Relabel(perm)
	if err := h.Validate(true); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if !h.HasEdge(perm[v], perm[u]) {
				t.Fatalf("edge (%d,%d) lost under relabeling", v, u)
			}
		}
	}
}

func TestRelabelWeighted(t *testing.T) {
	g := FromWeightedEdges(3, []WEdge{{U: 0, V: 1, W: 9}, {U: 1, V: 2, W: 4}},
		BuildOpts{Symmetrize: true})
	perm := []uint32{2, 0, 1}
	h := g.Relabel(perm)
	w, ok := h.EdgeWeight(perm[0], perm[1])
	if !ok || w != 9 {
		t.Fatalf("weight lost: %d", w)
	}
}

func TestDegreeOrderIsPermutation(t *testing.T) {
	g := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 3, V: 4}},
		BuildOpts{Symmetrize: true})
	perm := g.DegreeOrder()
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
	// Vertex 0 has the max degree: it must be renamed 0.
	if perm[0] != 0 {
		t.Fatalf("hub renamed to %d", perm[0])
	}
}

func TestRandomOrderDeterministicPermutation(t *testing.T) {
	g := FromEdges(64, nil, BuildOpts{})
	a := g.RandomOrder(5)
	b := g.RandomOrder(5)
	c := g.RandomOrder(6)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed differs")
	}
	if !diff {
		t.Fatal("different seeds agree everywhere")
	}
	count := parallel.Count(len(a), 0, func(i int) bool { return int(a[i]) < len(a) })
	if count != len(a) {
		t.Fatal("out of range")
	}
}
