package graph

// An Arena is a read-only byte region backing a stored graph. On platforms
// with mmap it is a page-aligned, read-only memory mapping of the file —
// the literal rendering of Sage's App-Direct configuration, where the graph
// is a read-only structure consumed in place on NVRAM (§2): the offsets,
// edges, and weights slices handed to the traversal layer alias the mapping
// directly and no byte of graph data is ever copied into the heap. Where
// mmap is unavailable (or the caller asks for a private copy) the arena is
// an 8-byte-aligned heap buffer filled by a single read.
//
// Arenas are immutable after creation; Close releases the mapping (or the
// buffer) exactly once. Any slice aliased out of a mapped arena becomes
// invalid at Close — the owning Dataset ties graph lifetime to arena
// lifetime for exactly this reason.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"unsafe"
)

// hostLittleEndian reports whether typed views can alias little-endian file
// bytes directly. On big-endian hosts every view decodes into a heap copy.
var hostLittleEndian = func() bool {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 1)
	return buf[0] == 1
}()

// Arena is a read-only byte region, either a memory mapping of a file or an
// aligned heap buffer. The zero value is not meaningful; use OpenArena or
// NewHeapArena.
type Arena struct {
	data   []byte
	mapped bool // data came from mmap and must be munmapped
	closed atomic.Bool
}

// OpenArena opens path as a read-only arena. When copy is false and the
// platform supports it, the file is memory-mapped; otherwise the contents
// are read into an 8-byte-aligned heap buffer.
func OpenArena(path string, copy bool) (*Arena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Arena{data: nil}, nil
	}
	if !copy && mmapSupported {
		data, err := mmapFile(f, size)
		if err == nil {
			return &Arena{data: data, mapped: true}, nil
		}
		// Fall through to the heap path on mapping failure (e.g. a
		// filesystem without mmap support).
	}
	data := alignedBytes(size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("graph: reading %s: %w", path, err)
	}
	return &Arena{data: data}, nil
}

// NewHeapArena wraps an in-memory buffer as an arena (used by tests and by
// readers that already hold the bytes). The buffer should be 8-byte aligned
// if typed views will be taken; misaligned views fall back to copying.
func NewHeapArena(data []byte) *Arena { return &Arena{data: data} }

// Bytes returns the full region. The slice is read-only: for mapped arenas
// the pages are mapped PROT_READ and writing through it faults.
//
//sage:arena-view
func (a *Arena) Bytes() []byte { return a.data }

// Mapped reports whether the arena is a live memory mapping (as opposed to
// a private heap copy).
func (a *Arena) Mapped() bool { return a.mapped }

// Close releases the mapping or buffer. Closing twice is an error; using
// slices aliased from a mapped arena after Close faults.
func (a *Arena) Close() error {
	if a.closed.Swap(true) {
		return fmt.Errorf("graph: arena already closed")
	}
	data := a.data
	a.data = nil
	if a.mapped {
		return munmap(data)
	}
	return nil
}

// alignedBytes allocates a byte slice of the given length whose base
// address is 8-byte aligned, so typed views can alias it like a mapping.
// (A plain make([]byte) only guarantees byte alignment.)
func alignedBytes(n int64) []byte {
	words := make([]uint64, (n+7)/8)
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// aligned8 reports whether b's base address permits 8-byte typed views.
func aligned8(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// Uint64sLE views b (little-endian uint64 data, len(b) = 8k) as a []uint64.
// On little-endian hosts with aligned input the view aliases b with no
// copy; otherwise it decodes into a fresh slice. forceCopy requests the
// decoded form regardless (the WithCopy open path).
//
//sage:arena-view
func Uint64sLE(b []byte, forceCopy bool) []uint64 {
	k := len(b) / 8
	if k == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) && !forceCopy {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), k)
	}
	out := make([]uint64, k)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// Uint32sLE views b (little-endian uint32 data) as a []uint32; see
// Uint64sLE for the aliasing rules.
//
//sage:arena-view
func Uint32sLE(b []byte, forceCopy bool) []uint32 {
	k := len(b) / 4
	if k == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) && !forceCopy {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), k)
	}
	out := make([]uint32, k)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// Int32sLE views b (little-endian int32 data) as a []int32; see Uint64sLE
// for the aliasing rules.
//
//sage:arena-view
func Int32sLE(b []byte, forceCopy bool) []int32 {
	k := len(b) / 4
	if k == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) && !forceCopy {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), k)
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
