package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Legacy (v1) binary serialization of CSR graphs: a little-endian header
// (magic, flags, n, m) followed by the offsets, edges, and (if weighted)
// weights arrays. New files are written in the v2 section container
// (format.go); this reader is kept so existing datasets keep loading, and
// the format registry sniffs its magic.

// MagicV1 identifies the legacy flat binary format ("SAGEGRPH").
const MagicV1 = uint64(0x5341474547525048)

const binaryMagic = MagicV1

const flagWeighted = uint64(1)

// WriteBinary serializes g to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint64
	if g.weights != nil {
		flags |= flagWeighted
	}
	hdr := [4]uint64{binaryMagic, flags, uint64(g.n), g.m}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := writeUint64s(bw, g.offsets); err != nil {
		return err
	}
	if err := writeUint32s(bw, g.edges); err != nil {
		return err
	}
	if g.weights != nil {
		if err := writeInt32s(bw, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary. Before any
// array allocation the declared n and m are validated against the number
// of input bytes actually remaining (discoverable for files and in-memory
// readers), so a corrupt or truncated header yields an error instead of a
// multi-gigabyte allocation attempt.
func ReadBinary(r io.Reader) (*Graph, error) {
	remaining, sized := remainingSize(r)
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("bad magic %#x", hdr[0])
	}
	if hdr[2] > math.MaxUint32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds uint32", hdr[2])
	}
	flags, n, m := hdr[1], uint32(hdr[2]), hdr[3]
	if flags&^flagWeighted != 0 {
		return nil, fmt.Errorf("graph: unknown flags %#x", flags)
	}
	// Payload size in bytes; every term is bounded (n < 2^32 so the
	// offsets term is < 2^36, and m < 2^59 caps the edge+weight terms at
	// 2^62) so the sum cannot overflow int64.
	if m > math.MaxInt64/16 {
		return nil, fmt.Errorf("graph: implausible edge count %d", m)
	}
	need := 8*(int64(n)+1) + 4*int64(m)
	if flags&flagWeighted != 0 {
		need += 4 * int64(m)
	}
	if sized && need > remaining-32 {
		return nil, fmt.Errorf("graph: header claims n=%d m=%d (%d payload bytes) but only %d bytes follow",
			n, m, need, remaining-32)
	}
	g := &Graph{n: n, m: m}
	g.offsets = make([]uint64, n+1)
	if err := readUint64s(br, g.offsets); err != nil {
		return nil, err
	}
	g.edges = make([]uint32, m)
	if err := readUint32s(br, g.edges); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		g.weights = make([]int32, m)
		if err := readInt32s(br, g.weights); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SaveFile writes the graph to path in the binary format.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a binary graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// remainingSize reports how many bytes remain in r when that is
// discoverable without consuming input: seekable readers (files) and
// in-memory readers exposing Len. Unknown sizes return sized=false and
// skip the pre-allocation check (truncation still surfaces as an
// io.ErrUnexpectedEOF from the array reads).
func remainingSize(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, false
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return 0, false
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return 0, false
		}
		return end - cur, true
	case interface{ Len() int }:
		return int64(v.Len()), true
	}
	return 0, false
}

const ioChunk = 1 << 16

func writeUint64s(w io.Writer, a []uint64) error {
	buf := make([]byte, 8*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], a[i])
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		a = a[k:]
	}
	return nil
}

func writeUint32s(w io.Writer, a []uint32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], a[i])
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		a = a[k:]
	}
	return nil
}

func writeInt32s(w io.Writer, a []int32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(a[i]))
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		a = a[k:]
	}
	return nil
}

func readUint64s(r io.Reader, a []uint64) error {
	buf := make([]byte, 8*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			a[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		a = a[k:]
	}
	return nil
}

func readUint32s(r io.Reader, a []uint32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			a[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		a = a[k:]
	}
	return nil
}

func readInt32s(r io.Reader, a []int32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			a[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		a = a[k:]
	}
	return nil
}
