package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary serialization of CSR graphs. The format is a little-endian header
// (magic, flags, n, m) followed by the offsets, edges, and (if weighted)
// weights arrays. It is the on-"NVRAM" storage format that cmd/sage-gen
// produces and cmd/sage-run and cmd/sage-bench consume.

const binaryMagic = uint64(0x5341474547525048) // "SAGEGRPH"

const flagWeighted = uint64(1)

// WriteBinary serializes g to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint64
	if g.weights != nil {
		flags |= flagWeighted
	}
	hdr := [4]uint64{binaryMagic, flags, uint64(g.n), g.m}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := writeUint64s(bw, g.offsets); err != nil {
		return err
	}
	if err := writeUint32s(bw, g.edges); err != nil {
		return err
	}
	if g.weights != nil {
		if err := writeInt32s(bw, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("bad magic %#x", hdr[0])
	}
	flags, n, m := hdr[1], uint32(hdr[2]), hdr[3]
	g := &Graph{n: n, m: m}
	g.offsets = make([]uint64, n+1)
	if err := readUint64s(br, g.offsets); err != nil {
		return nil, err
	}
	g.edges = make([]uint32, m)
	if err := readUint32s(br, g.edges); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		g.weights = make([]int32, m)
		if err := readInt32s(br, g.weights); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SaveFile writes the graph to path in the binary format.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a binary graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

const ioChunk = 1 << 16

func writeUint64s(w io.Writer, a []uint64) error {
	buf := make([]byte, 8*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], a[i])
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		a = a[k:]
	}
	return nil
}

func writeUint32s(w io.Writer, a []uint32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], a[i])
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		a = a[k:]
	}
	return nil
}

func writeInt32s(w io.Writer, a []int32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(a[i]))
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		a = a[k:]
	}
	return nil
}

func readUint64s(r io.Reader, a []uint64) error {
	buf := make([]byte, 8*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			a[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		a = a[k:]
	}
	return nil
}

func readUint32s(r io.Reader, a []uint32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			a[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		a = a[k:]
	}
	return nil
}

func readInt32s(r io.Reader, a []int32) error {
	buf := make([]byte, 4*ioChunk)
	for len(a) > 0 {
		k := min(len(a), ioChunk)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			a[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		a = a[k:]
	}
	return nil
}
