package graph

// Adj is the read-only adjacency interface shared by the uncompressed CSR
// representation (*Graph) and the byte-compressed representation
// (*compress.CGraph). The traversal layer, the graph filter, and the
// algorithms are generic over it, so every algorithm runs unchanged on
// either representation — mirroring how Sage inherits Ligra+'s compressed
// formats (§2, §4.2.1).
type Adj interface {
	// NumVertices returns n.
	NumVertices() uint32
	// NumEdges returns the number of stored arcs m.
	NumEdges() uint64
	// Degree returns deg(v).
	//sage:hotpath
	Degree(v uint32) uint32
	// AvgDegree returns max(1, m/n), the chunking group size davg.
	AvgDegree() uint32
	// EdgeAddr returns the simulated NVRAM word address of the start of
	// v's adjacency data (for the Memory-Mode cache simulator).
	EdgeAddr(v uint32) int64
	// ScanCost returns the simulated NVRAM words read when scanning
	// adjacency positions [lo, hi) of v. For compressed graphs this is
	// block-aligned: partial block reads cost the whole block.
	ScanCost(v uint32, lo, hi uint32) int64
	// IterRange iterates adjacency positions [lo, hi) of v in order,
	// stopping if fn returns false. Position indices i are in [0, deg(v)).
	// Unweighted graphs supply weight 1.
	IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool)
	// BlockSize returns the decode granularity: 0 for CSR (any), or the
	// compression block size.
	BlockSize() int
	// Weighted reports whether edges carry weights.
	Weighted() bool
}

// IterAll iterates the full adjacency list of v.
func IterAll(g Adj, v uint32, fn func(i, ngh uint32, w int32) bool) {
	g.IterRange(v, 0, g.Degree(v), fn)
}

// DecodeRange appends the neighbors at positions [lo, hi) of v to buf and
// returns the extended slice.
func DecodeRange(g Adj, v uint32, lo, hi uint32, buf []uint32) []uint32 {
	g.IterRange(v, lo, hi, func(_, ngh uint32, _ int32) bool {
		buf = append(buf, ngh)
		return true
	})
	return buf
}
