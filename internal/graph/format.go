package graph

// The v2 binary container: a section-table format that stores every graph
// representation — uncompressed CSR and the byte-compressed CGraph alike —
// as a set of independently addressable, 8-byte-aligned sections:
//
//	magic    uint64  "SAGEGRV2" (little-endian words throughout)
//	nsec     uint64
//	table    nsec × { kind uint64, offset uint64, length uint64 }
//	sections each starting at an 8-byte-aligned file offset, zero-padded
//
// Alignment is what makes the container mmap-friendly: a page-aligned
// mapping of the file yields 8-byte-aligned section bases, so the typed
// views in arena.go can alias the offsets/edges/weights arrays in place.
// The section table (rather than a fixed layout) is what lets compressed
// graphs persist: a CGraph simply stores different sections.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MagicV2 identifies the v2 container ("SAGEGRV2" as big-endian byte
// values of a little-endian word, matching the v1 convention).
const MagicV2 = uint64(0x5341474547525632)

// Section kinds. A file carries either the CSR sections (offsets, edges,
// optionally weights) or the compressed sections (cdegrees, cvtxoff,
// cdata), always alongside the header.
const (
	SecHeader   = uint64(1) // n, m, flags, blockSize (4 uint64 words)
	SecOffsets  = uint64(2) // CSR offsets, (n+1) × uint64
	SecEdges    = uint64(3) // CSR edges, m × uint32
	SecWeights  = uint64(4) // CSR weights, m × int32
	SecCDegrees = uint64(5) // CGraph degrees, n × uint32
	SecCVtxOff  = uint64(6) // CGraph per-vertex byte offsets, (n+1) × uint64
	SecCData    = uint64(7) // CGraph encoded blocks, raw bytes
)

// Header flag bits.
const (
	FlagWeighted   = uint64(1 << 0)
	FlagCompressed = uint64(1 << 1)
)

// Header is the decoded header section.
type Header struct {
	N         uint32
	M         uint64
	Flags     uint64
	BlockSize uint32
}

// Weighted reports the weighted flag.
func (h Header) Weighted() bool { return h.Flags&FlagWeighted != 0 }

// Compressed reports the compressed flag.
func (h Header) Compressed() bool { return h.Flags&FlagCompressed != 0 }

// Section is one container section to be written: a kind, a byte length,
// and a streaming writer that must produce exactly Len bytes. Sections are
// streamed (not materialized) so writing a multi-GB graph never doubles it
// in memory.
type Section struct {
	Kind    uint64
	Len     int64
	WriteTo func(w io.Writer) error
}

// HeaderSection builds the header section for the given shape.
func HeaderSection(h Header) Section {
	return Section{Kind: SecHeader, Len: 32, WriteTo: func(w io.Writer) error {
		var buf [32]byte
		binary.LittleEndian.PutUint64(buf[0:], uint64(h.N))
		binary.LittleEndian.PutUint64(buf[8:], h.M)
		binary.LittleEndian.PutUint64(buf[16:], h.Flags)
		binary.LittleEndian.PutUint64(buf[24:], uint64(h.BlockSize))
		_, err := w.Write(buf[:])
		return err
	}}
}

// Uint64Section builds a section serializing a as little-endian uint64s.
func Uint64Section(kind uint64, a []uint64) Section {
	return Section{Kind: kind, Len: 8 * int64(len(a)),
		WriteTo: func(w io.Writer) error { return writeUint64s(w, a) }}
}

// Uint32Section builds a section serializing a as little-endian uint32s.
func Uint32Section(kind uint64, a []uint32) Section {
	return Section{Kind: kind, Len: 4 * int64(len(a)),
		WriteTo: func(w io.Writer) error { return writeUint32s(w, a) }}
}

// Int32Section builds a section serializing a as little-endian int32s.
func Int32Section(kind uint64, a []int32) Section {
	return Section{Kind: kind, Len: 4 * int64(len(a)),
		WriteTo: func(w io.Writer) error { return writeInt32s(w, a) }}
}

// BytesSection builds a raw byte section.
func BytesSection(kind uint64, b []byte) Section {
	return Section{Kind: kind, Len: int64(len(b)),
		WriteTo: func(w io.Writer) error { _, err := w.Write(b); return err }}
}

// alignUp rounds x up to the next multiple of 8.
func alignUp(x int64) int64 { return (x + 7) &^ 7 }

// WriteContainer writes the v2 container with the given sections, in
// order, each at an 8-byte-aligned offset. The section layout is fully
// determined by the inputs, so identical sections produce byte-identical
// files (the round-trip guarantee the tests pin).
func WriteContainer(w io.Writer, secs []Section) error {
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint64(hdr, MagicV2)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(secs)))
	off := alignUp(int64(16 + 24*len(secs)))
	offs := make([]int64, len(secs))
	for i, s := range secs {
		offs[i] = off
		hdr = binary.LittleEndian.AppendUint64(hdr, s.Kind)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(off))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.Len))
		off = alignUp(off + s.Len)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var pad [8]byte
	pos := int64(len(hdr))
	for i, s := range secs {
		if offs[i] > pos {
			if _, err := w.Write(pad[:offs[i]-pos]); err != nil {
				return err
			}
			pos = offs[i]
		}
		if err := s.WriteTo(w); err != nil {
			return err
		}
		pos += s.Len
	}
	// Trailing pad so the file length is a multiple of 8 (keeps appended
	// containers alignable and makes truncation detectable).
	if end := alignUp(pos); end > pos {
		if _, err := w.Write(pad[:end-pos]); err != nil {
			return err
		}
	}
	return nil
}

// ParseContainer validates the container framing in b and returns the
// section byte regions keyed by kind. The regions alias b.
func ParseContainer(b []byte) (map[uint64][]byte, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("graph: container too short (%d bytes)", len(b))
	}
	if got := binary.LittleEndian.Uint64(b); got != MagicV2 {
		return nil, fmt.Errorf("graph: bad container magic %#x", got)
	}
	nsec := binary.LittleEndian.Uint64(b[8:])
	const maxSections = 64
	if nsec > maxSections {
		return nil, fmt.Errorf("graph: implausible section count %d", nsec)
	}
	tableEnd := 16 + 24*int64(nsec)
	if tableEnd > int64(len(b)) {
		return nil, fmt.Errorf("graph: truncated section table")
	}
	secs := make(map[uint64][]byte, nsec)
	for i := int64(0); i < int64(nsec); i++ {
		base := 16 + 24*i
		kind := binary.LittleEndian.Uint64(b[base:])
		off := binary.LittleEndian.Uint64(b[base+8:])
		length := binary.LittleEndian.Uint64(b[base+16:])
		if off%8 != 0 {
			return nil, fmt.Errorf("graph: section %d misaligned at %d", kind, off)
		}
		if off > uint64(len(b)) || length > uint64(len(b))-off {
			return nil, fmt.Errorf("graph: section %d [%d, +%d) outside file of %d bytes",
				kind, off, length, len(b))
		}
		if _, dup := secs[kind]; dup {
			return nil, fmt.Errorf("graph: duplicate section %d", kind)
		}
		secs[kind] = b[off : off+length]
	}
	return secs, nil
}

// ParseHeader decodes and validates the mandatory header section.
func ParseHeader(secs map[uint64][]byte) (Header, error) {
	hb, ok := secs[SecHeader]
	if !ok || len(hb) != 32 {
		return Header{}, fmt.Errorf("graph: missing or malformed header section")
	}
	n := binary.LittleEndian.Uint64(hb)
	if n > math.MaxUint32 {
		return Header{}, fmt.Errorf("graph: vertex count %d exceeds uint32", n)
	}
	bs := binary.LittleEndian.Uint64(hb[24:])
	if bs > math.MaxUint32 {
		return Header{}, fmt.Errorf("graph: block size %d exceeds uint32", bs)
	}
	return Header{
		N:         uint32(n),
		M:         binary.LittleEndian.Uint64(hb[8:]),
		Flags:     binary.LittleEndian.Uint64(hb[16:]),
		BlockSize: uint32(bs),
	}, nil
}

// Sections returns g's container sections (header, offsets, edges, and
// weights when present), streaming from the graph's own arrays.
func (g *Graph) Sections() []Section {
	h := Header{N: g.n, M: g.m}
	if g.weights != nil {
		h.Flags |= FlagWeighted
	}
	secs := []Section{
		HeaderSection(h),
		Uint64Section(SecOffsets, g.offsets),
		Uint32Section(SecEdges, g.edges),
	}
	if g.weights != nil {
		secs = append(secs, Int32Section(SecWeights, g.weights))
	}
	return secs
}

// CSRFromSections assembles a CSR graph from parsed container sections.
// With forceCopy false (and a little-endian host) the offsets, edges, and
// weights slices alias the section bytes — zero-copy over the arena.
func CSRFromSections(secs map[uint64][]byte, h Header, forceCopy bool) (*Graph, error) {
	ob, eb := secs[SecOffsets], secs[SecEdges]
	if uint64(len(ob)) != 8*(uint64(h.N)+1) {
		return nil, fmt.Errorf("graph: offsets section is %d bytes, want %d for n=%d",
			len(ob), 8*(uint64(h.N)+1), h.N)
	}
	if uint64(len(eb)) != 4*h.M {
		return nil, fmt.Errorf("graph: edges section is %d bytes, want %d for m=%d",
			len(eb), 4*h.M, h.M)
	}
	var weights []int32
	if h.Weighted() {
		wb, ok := secs[SecWeights]
		if !ok || uint64(len(wb)) != 4*h.M {
			return nil, fmt.Errorf("graph: weighted flag set but weights section is %d bytes, want %d",
				len(wb), 4*h.M)
		}
		weights = Int32sLE(wb, forceCopy)
	}
	return FromParts(h.N, h.M, Uint64sLE(ob, forceCopy), Uint32sLE(eb, forceCopy), weights)
}

// FromParts assembles a CSR graph from pre-built arrays (typically views
// over an arena) after validating the structural invariants that index
// computations rely on: slice lengths match n and m, and offsets are
// monotone with offsets[n] == m. Per-edge content (targets in range,
// sortedness) is not scanned here — that is Validate's job and would fault
// in every page of a lazily mapped file.
func FromParts(n uint32, m uint64, offsets []uint64, edges []uint32, weights []int32) (*Graph, error) {
	if uint64(len(offsets)) != uint64(n)+1 {
		return nil, fmt.Errorf("graph: %d offsets for n=%d", len(offsets), n)
	}
	if uint64(len(edges)) != m {
		return nil, fmt.Errorf("graph: %d edges for m=%d", len(edges), m)
	}
	if weights != nil && uint64(len(weights)) != m {
		return nil, fmt.Errorf("graph: %d weights for m=%d", len(weights), m)
	}
	if offsets[0] != 0 {
		// A nonzero base would make edges[0:offsets[0]] unreachable dead
		// payload and the degree sum disagree with m.
		return nil, fmt.Errorf("graph: offsets start at %d, want 0", offsets[0])
	}
	if offsets[n] != m {
		return nil, fmt.Errorf("graph: offsets end %d != m %d", offsets[n], m)
	}
	for v := uint32(0); v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	return &Graph{n: n, m: m, offsets: offsets, edges: edges, weights: weights}, nil
}
