package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Text serialization in the Ligra "AdjacencyGraph" format used by the
// paper's code base and most shared-memory graph frameworks:
//
//	AdjacencyGraph
//	<n>
//	<m>
//	<n offsets>
//	<m edges>
//
// The weighted variant ("WeightedAdjacencyGraph") appends m integer
// weights. Reading accepts both.

// WriteText serializes g in the Ligra adjacency-graph text format.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	header := "AdjacencyGraph"
	if g.weights != nil {
		header = "WeightedAdjacencyGraph"
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", header, g.n, g.m); err != nil {
		return err
	}
	for v := uint32(0); v < g.n; v++ {
		if _, err := fmt.Fprintln(bw, g.offsets[v]); err != nil {
			return err
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintln(bw, e); err != nil {
			return err
		}
	}
	for _, wt := range g.weights {
		if _, err := fmt.Fprintln(bw, wt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a Ligra adjacency-graph text stream. As in ReadBinary,
// the declared n and m are validated against the number of input bytes
// actually remaining (discoverable for files and in-memory readers)
// before any array allocation, so a corrupt header yields an error
// instead of a multi-gigabyte allocation attempt.
func ReadText(r io.Reader) (*Graph, error) {
	remaining, sized := remainingSize(r)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, error) {
		for sc.Scan() {
			tok := sc.Text()
			if tok != "" {
				return tok, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	sc.Split(bufio.ScanWords)

	header, err := next()
	if err != nil {
		return nil, err
	}
	weighted := false
	switch header {
	case "AdjacencyGraph":
	case "WeightedAdjacencyGraph":
		weighted = true
	default:
		return nil, fmt.Errorf("graph: unknown text header %q", header)
	}
	readUint := func() (uint64, error) {
		tok, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.ParseUint(tok, 10, 64)
	}
	nv, err := readUint()
	if err != nil {
		return nil, fmt.Errorf("graph: vertex count: %w", err)
	}
	m, err := readUint()
	if err != nil {
		return nil, fmt.Errorf("graph: edge count: %w", err)
	}
	if nv > math.MaxUint32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds uint32", nv)
	}
	// Every offset, edge, and weight needs at least two input bytes (a
	// digit and a separator), so a sized input bounds the plausible n+m.
	entries := nv + m
	if weighted {
		entries += m
	}
	if nv > math.MaxInt64/4 || m > math.MaxInt64/4 {
		return nil, fmt.Errorf("graph: implausible counts n=%d m=%d", nv, m)
	}
	if sized && int64(entries) > remaining/2+1 {
		return nil, fmt.Errorf("graph: header claims n=%d m=%d but only %d bytes follow",
			nv, m, remaining)
	}
	g := &Graph{n: uint32(nv), m: m}
	g.offsets = make([]uint64, nv+1)
	for v := uint64(0); v < nv; v++ {
		off, err := readUint()
		if err != nil {
			return nil, fmt.Errorf("graph: offset %d: %w", v, err)
		}
		g.offsets[v] = off
	}
	g.offsets[nv] = m
	if nv > 0 && g.offsets[0] != 0 {
		// A nonzero base would leave edges[0:offsets[0]] unreachable and
		// the degree sum short of m.
		return nil, fmt.Errorf("graph: offsets start at %d, want 0", g.offsets[0])
	}
	g.edges = make([]uint32, m)
	for i := uint64(0); i < m; i++ {
		e, err := readUint()
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		if e >= nv {
			return nil, fmt.Errorf("graph: edge target %d out of range", e)
		}
		g.edges[i] = uint32(e)
	}
	if weighted {
		g.weights = make([]int32, m)
		for i := uint64(0); i < m; i++ {
			tok, err := next()
			if err != nil {
				return nil, fmt.Errorf("graph: weight %d: %w", i, err)
			}
			wt, err := strconv.ParseInt(tok, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: weight %d: %w", i, err)
			}
			g.weights[i] = int32(wt)
		}
	}
	// Validate monotone offsets.
	for v := uint64(0); v < nv; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	return g, nil
}
