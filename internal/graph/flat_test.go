package graph

import (
	"testing"
)

// buildTestGraph returns a small weighted CSR graph.
func buildFlatTestGraph(weighted bool) *Graph {
	edges := []WEdge{
		{0, 1, 3}, {0, 2, 5}, {1, 2, 7}, {2, 3, 1}, {3, 4, 9}, {0, 4, 2},
	}
	if weighted {
		return FromWeightedEdges(5, edges, BuildOpts{Symmetrize: true})
	}
	plain := make([]Edge, len(edges))
	for i, e := range edges {
		plain[i] = Edge{U: e.U, V: e.V}
	}
	return FromEdges(5, plain, BuildOpts{Symmetrize: true})
}

// TestFlatSliceAndFull checks the flat access path against IterRange on
// the CSR representation: slices must alias storage (zero copy) and agree
// with the callback path for every subrange.
func TestFlatSliceAndFull(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := buildFlatTestGraph(weighted)
		f := NewFlat(g)
		if !f.ZeroCopy() {
			t.Fatal("CSR flat path should be zero-copy")
		}
		var s Scratch
		for v := uint32(0); v < g.NumVertices(); v++ {
			deg := g.Degree(v)
			for lo := uint32(0); lo <= deg; lo++ {
				for hi := lo; hi <= deg; hi++ {
					var wantN []uint32
					var wantW []int32
					g.IterRange(v, lo, hi, func(_, u uint32, w int32) bool {
						wantN = append(wantN, u)
						wantW = append(wantW, w)
						return true
					})
					nghs, ws := f.Slice(v, lo, hi, &s)
					checkFlat(t, "Slice", v, lo, hi, nghs, ws, wantN, wantW, weighted)
					// Full must agree with Slice over the whole adjacency.
					if lo == 0 && hi == deg {
						nghs, ws := f.Full(v, &s)
						checkFlat(t, "Full", v, lo, hi, nghs, ws, wantN, wantW, weighted)
					}
				}
			}
		}
	}
}

func checkFlat(t *testing.T, label string, v, lo, hi uint32, nghs []uint32, ws []int32, wantN []uint32, wantW []int32, wantWeights bool) {
	t.Helper()
	if len(nghs) != len(wantN) {
		t.Fatalf("%s v=%d [%d,%d): %d neighbors, want %d", label, v, lo, hi, len(nghs), len(wantN))
	}
	for i := range nghs {
		if nghs[i] != wantN[i] {
			t.Fatalf("%s v=%d [%d,%d): neighbor %d = %d, want %d", label, v, lo, hi, i, nghs[i], wantN[i])
		}
	}
	if ws == nil {
		return
	}
	if !wantWeights {
		t.Fatalf("%s: unexpected weights on unweighted graph", label)
	}
	for i := range ws {
		if ws[i] != wantW[i] {
			t.Fatalf("%s v=%d [%d,%d): weight %d = %d, want %d", label, v, lo, hi, i, ws[i], wantW[i])
		}
	}
}

// fallbackAdj wraps a Graph but hides its concrete type and FlatAdj
// implementation, forcing the generic IterRange materialization path.
type fallbackAdj struct{ g *Graph }

func (a fallbackAdj) NumVertices() uint32             { return a.g.NumVertices() }
func (a fallbackAdj) NumEdges() uint64                { return a.g.NumEdges() }
func (a fallbackAdj) Degree(v uint32) uint32          { return a.g.Degree(v) }
func (a fallbackAdj) AvgDegree() uint32               { return a.g.AvgDegree() }
func (a fallbackAdj) EdgeAddr(v uint32) int64         { return a.g.EdgeAddr(v) }
func (a fallbackAdj) ScanCost(v, lo, hi uint32) int64 { return a.g.ScanCost(v, lo, hi) }
func (a fallbackAdj) BlockSize() int                  { return a.g.BlockSize() }
func (a fallbackAdj) Weighted() bool                  { return a.g.Weighted() }
func (a fallbackAdj) IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool) {
	a.g.IterRange(v, lo, hi, fn)
}

// TestFlatFallback drives the generic materialization path used for
// foreign Adj implementations.
func TestFlatFallback(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := buildFlatTestGraph(weighted)
		f := NewFlat(fallbackAdj{g})
		if f.ZeroCopy() {
			t.Fatal("fallback path must not claim zero-copy")
		}
		var s Scratch
		for v := uint32(0); v < g.NumVertices(); v++ {
			deg := g.Degree(v)
			var wantN []uint32
			var wantW []int32
			g.IterRange(v, 0, deg, func(_, u uint32, w int32) bool {
				wantN = append(wantN, u)
				wantW = append(wantW, w)
				return true
			})
			nghs, ws := f.Slice(v, 0, deg, &s)
			checkFlat(t, "fallback", v, 0, deg, nghs, ws, wantN, wantW, weighted)
		}
	}
}
