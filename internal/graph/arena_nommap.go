//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package graph

import "os"

const mmapSupported = false

// mmapFile is never called when mmapSupported is false; OpenArena takes the
// aligned heap-copy path instead.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	panic("graph: mmap not supported on this platform")
}

func munmap(data []byte) error { return nil }
