package graph

// This file is the closure-free access path to adjacency data. The
// generic Adj.IterRange costs an interface dispatch plus a non-inlinable
// closure call per edge; at memory-bandwidth traversal rates (the Sage
// design point, §4.1) that overhead dominates the loop body. FlatAdj lets
// a representation hand the traversal layer flat slices instead — either
// aliases of its own storage (CSR) or ranges block-decoded into a
// caller-owned scratch buffer (byte-compressed formats), so the per-edge
// cost is a plain slice iteration and decode cost is amortized per block.

import "sage/internal/parallel"

// FlatAdj is the optional closure-free access path implemented by
// adjacency representations that can expose position ranges as flat
// slices. All in-repo representations implement it; the traversal layer
// falls back to IterRange for foreign Adj implementations.
type FlatAdj interface {
	// FlatRange returns slices aliasing the representation's own flat
	// storage for positions [lo, hi) of v, with ws nil for unweighted
	// graphs, and ok=false if the representation is not flat (compressed
	// or filtered) and the caller must use DecodeRange instead. Returned
	// slices are read-only.
	//sage:arena-view
	//sage:hotpath
	FlatRange(v, lo, hi uint32) (nghs []uint32, ws []int32, ok bool)
	// DecodeRange decodes the neighbors at positions [lo, hi) of v into
	// buf (reusing its capacity; contents are overwritten) and returns
	// the filled slice. hi is clamped to deg(v).
	//sage:hotpath
	DecodeRange(v, lo, hi uint32, buf []uint32) []uint32
	// DecodeRangeW additionally decodes the aligned weights into wbuf.
	// The returned ws is nil when the graph is unweighted (weights all 1).
	//sage:hotpath
	DecodeRangeW(v, lo, hi uint32, buf []uint32, wbuf []int32) ([]uint32, []int32)
}

// Scratch is a per-worker decode buffer for the flat access path. Workers
// own one Scratch each (indexed by the worker id the parallel package
// exposes) so decoding never allocates in steady state. The padding keeps
// neighboring workers' slice headers off one cache line.
type Scratch struct {
	Nghs []uint32
	Ws   []int32
	_    [16]byte
}

// ScratchPool is a full set of per-worker decode buffers owned by one
// logical run. Worker ids are unique at any instant (the persistent pool
// and the transient fallback both index [0, Workers())), but two
// *concurrent* runs each see the full id range — so buffers shared
// across runs would race. Each run therefore owns a ScratchPool; the
// zero value is ready to use.
type ScratchPool struct {
	ws [parallel.MaxWorkers]Scratch
}

// Get returns worker w's scratch buffer.
//
//sage:hotpath
func (p *ScratchPool) Get(w int) *Scratch { return &p.ws[w] }

// Flat resolves an Adj's fastest access path once, outside the hot loop.
// The zero value is not meaningful; use NewFlat.
type Flat struct {
	csr      *Graph  // non-nil: zero-copy slice access
	fa       FlatAdj // non-nil: flat or decode access
	g        Adj
	weighted bool
	zero     bool // FlatRange aliases storage (no decode work)
}

// NewFlat inspects g's concrete type and returns its flat access path.
func NewFlat(g Adj) Flat {
	f := Flat{g: g, weighted: g.Weighted()}
	if csr, ok := g.(*Graph); ok {
		f.csr = csr
		f.zero = true
		return f
	}
	if fa, ok := g.(FlatAdj); ok {
		f.fa = fa
		// Whether FlatRange aliases is a constant of the representation,
		// so an empty probe determines it.
		_, _, f.zero = fa.FlatRange(0, 0, 0)
	}
	return f
}

// ZeroCopy reports whether Slice aliases graph storage (no decode work,
// Scratch untouched).
func (f *Flat) ZeroCopy() bool { return f.zero }

// Slice returns the neighbors (and weights; nil means all 1) at positions
// [lo, hi) of v as flat slices, decoding into s if the representation is
// not already flat. It is meant for scans without early exit; early-
// exiting scans over non-zero-copy representations are better served by
// IterRange, which stops decoding at the exit point.
//
//sage:arena-view
//sage:hotpath
func (f *Flat) Slice(v, lo, hi uint32, s *Scratch) ([]uint32, []int32) {
	if f.csr != nil {
		base := f.csr.offsets[v]
		nghs := f.csr.edges[base+uint64(lo) : base+uint64(hi)]
		if f.csr.weights == nil {
			return nghs, nil
		}
		return nghs, f.csr.weights[base+uint64(lo) : base+uint64(hi)]
	}
	if f.fa != nil {
		if nghs, ws, ok := f.fa.FlatRange(v, lo, hi); ok {
			return nghs, ws
		}
		if f.weighted {
			s.Nghs, s.Ws = f.fa.DecodeRangeW(v, lo, hi, s.Nghs, s.Ws)
			return s.Nghs, s.Ws
		}
		s.Nghs = f.fa.DecodeRange(v, lo, hi, s.Nghs)
		return s.Nghs, nil
	}
	// The IterRange fallback builds closures; it only runs for foreign
	// Adj implementations, never for in-repo representations.
	return f.iterInto(v, lo, hi, s) //sage:allow hotalloc
}

// Full returns v's complete adjacency as flat slices. For CSR it is a
// pure slice expression — no interface dispatch, not even for the degree
// — making it the cheapest per-vertex entry into the hot loops.
//
//sage:arena-view
//sage:hotpath
func (f *Flat) Full(v uint32, s *Scratch) ([]uint32, []int32) {
	if f.csr != nil {
		lo, hi := f.csr.offsets[v], f.csr.offsets[v+1]
		nghs := f.csr.edges[lo:hi]
		if f.csr.weights == nil {
			return nghs, nil
		}
		return nghs, f.csr.weights[lo:hi]
	}
	return f.Slice(v, 0, f.g.Degree(v), s)
}

// iterInto materializes [lo, hi) through the generic IterRange fallback.
func (f *Flat) iterInto(v, lo, hi uint32, s *Scratch) ([]uint32, []int32) {
	s.Nghs = s.Nghs[:0]
	if f.weighted {
		s.Ws = s.Ws[:0]
		f.g.IterRange(v, lo, hi, func(_, u uint32, w int32) bool {
			s.Nghs = append(s.Nghs, u)
			s.Ws = append(s.Ws, w)
			return true
		})
		return s.Nghs, s.Ws
	}
	f.g.IterRange(v, lo, hi, func(_, u uint32, _ int32) bool {
		s.Nghs = append(s.Nghs, u)
		return true
	})
	return s.Nghs, nil
}

// FlatRange implements FlatAdj for the CSR representation: both arrays
// are already flat, so the slices alias the graph.
//
//sage:arena-view
//sage:hotpath
func (g *Graph) FlatRange(v, lo, hi uint32) ([]uint32, []int32, bool) {
	base := g.offsets[v]
	nghs := g.edges[base+uint64(lo) : base+uint64(hi)]
	if g.weights == nil {
		return nghs, nil, true
	}
	return nghs, g.weights[base+uint64(lo) : base+uint64(hi)], true
}

// DecodeRange implements FlatAdj (copying form; FlatRange is the fast
// path and callers prefer it).
//
//sage:hotpath
func (g *Graph) DecodeRange(v, lo, hi uint32, buf []uint32) []uint32 {
	if d := g.Degree(v); hi > d {
		hi = d
	}
	if hi <= lo {
		return buf[:0]
	}
	base := g.offsets[v]
	return append(buf[:0], g.edges[base+uint64(lo):base+uint64(hi)]...)
}

// DecodeRangeW implements FlatAdj.
//
//sage:hotpath
func (g *Graph) DecodeRangeW(v, lo, hi uint32, buf []uint32, wbuf []int32) ([]uint32, []int32) {
	if d := g.Degree(v); hi > d {
		hi = d
	}
	if hi <= lo {
		return buf[:0], nil
	}
	base := g.offsets[v]
	buf = append(buf[:0], g.edges[base+uint64(lo):base+uint64(hi)]...)
	if g.weights == nil {
		return buf, nil
	}
	return buf, append(wbuf[:0], g.weights[base+uint64(lo):base+uint64(hi)]...)
}
