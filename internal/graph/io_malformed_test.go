package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// validBinary serializes a small graph to bytes.
func validBinary(t *testing.T) []byte {
	t.Helper()
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, BuildOpts{Symmetrize: true})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBinaryRejectsOversizedHeader corrupts n and m to values far
// beyond the actual payload: the reader must fail before attempting the
// corresponding allocations.
func TestReadBinaryRejectsOversizedHeader(t *testing.T) {
	base := validBinary(t)
	cases := map[string]func(b []byte){
		// n at header word 2: claims 2^31 vertices in a 100-byte file.
		"huge-n": func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<31) },
		// m at header word 3: claims 2^40 edges.
		"huge-m": func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1<<40) },
		// n beyond uint32 entirely.
		"n-overflow": func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) },
		// m so large the byte-size computation would overflow int64.
		"m-overflow": func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1<<62) },
		// m sized so that only the weighted branch (8 bytes/edge) would
		// overflow the size computation — the guard must still hold.
		"m-weighted-overflow": func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:], 1) // weighted flag
			binary.LittleEndian.PutUint64(b[24:], (1<<63-1)/8)
		},
		// unknown flag bits must not be silently ignored.
		"bad-flags": func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 0xfe) },
	}
	for name, corrupt := range cases {
		b := append([]byte(nil), base...)
		corrupt(b)
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt header accepted", name)
		}
	}
}

// TestReadBinaryTruncated drops trailing bytes; both the sized check and
// the unsized io path must report an error.
func TestReadBinaryTruncated(t *testing.T) {
	base := validBinary(t)
	for _, cut := range []int{1, 8, len(base) / 2, len(base) - 33} {
		b := base[:len(base)-cut]
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("truncation by %d accepted", cut)
		}
		// And through a non-seekable reader (no size hint).
		if _, err := ReadBinary(onlyReader{bytes.NewReader(b)}); err == nil {
			t.Errorf("truncation by %d accepted via plain reader", cut)
		}
	}
}

// onlyReader hides Seek/Len so ReadBinary cannot discover the size.
type onlyReader struct{ r *bytes.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// TestContainerMalformed covers the v2 framing validation.
func TestContainerMalformed(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOpts{Symmetrize: true})
	var buf bytes.Buffer
	if err := WriteContainer(&buf, g.Sections()); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	if _, err := ParseContainer(base[:10]); err == nil {
		t.Error("short container accepted")
	}
	b := append([]byte(nil), base...)
	b[0] ^= 0xff
	if _, err := ParseContainer(b); err == nil {
		t.Error("bad magic accepted")
	}
	b = append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(b[8:], 1<<20) // implausible section count
	if _, err := ParseContainer(b); err == nil {
		t.Error("huge section count accepted")
	}
	b = append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(b[16+8:], uint64(len(b))) // first section offset at EOF
	if _, err := ParseContainer(b); err == nil || !strings.Contains(err.Error(), "outside file") {
		t.Errorf("out-of-bounds section: %v", err)
	}
	b = append([]byte(nil), base...)
	binary.LittleEndian.PutUint64(b[16+8:], 20) // misaligned offset
	if _, err := ParseContainer(b); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned section: %v", err)
	}

	// A header lying about m must be caught by the section-length check.
	secs, err := ParseContainer(base)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(secs)
	if err != nil {
		t.Fatal(err)
	}
	h.M += 100
	if _, err := CSRFromSections(secs, h, false); err == nil {
		t.Error("edge-count mismatch accepted")
	}
}

// TestFromPartsValidation pins the structural checks.
func TestFromPartsValidation(t *testing.T) {
	if _, err := FromParts(2, 2, []uint64{0, 1, 2}, []uint32{1, 0}, nil); err != nil {
		t.Fatalf("valid parts rejected: %v", err)
	}
	if _, err := FromParts(2, 2, []uint64{0, 2, 1}, []uint32{1, 0}, nil); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	if _, err := FromParts(2, 2, []uint64{0, 1}, []uint32{1, 0}, nil); err == nil {
		t.Error("short offsets accepted")
	}
	if _, err := FromParts(2, 3, []uint64{0, 1, 2}, []uint32{1, 0}, nil); err == nil {
		t.Error("m mismatch accepted")
	}
	if _, err := FromParts(2, 2, []uint64{0, 1, 2}, []uint32{1, 0}, []int32{7}); err == nil {
		t.Error("short weights accepted")
	}
}
