package graph

import (
	"sage/internal/parallel"
)

// BuildOpts controls edge-list preprocessing during construction.
type BuildOpts struct {
	// Symmetrize adds the reverse of every arc before building, producing
	// an undirected graph (the paper symmetrizes all inputs, §5.1.3).
	Symmetrize bool
	// KeepSelfLoops retains self loops (dropped by default per §2).
	KeepSelfLoops bool
	// KeepDuplicates retains parallel edges (deduplicated by default).
	KeepDuplicates bool
}

// FromEdges builds an unweighted CSR graph over n vertices from the given
// arcs. The input slice is not modified. Construction is parallel: sort by
// (U, V), filter self loops/duplicates, compute offsets by scan, and fill.
func FromEdges(n uint32, edges []Edge, opts BuildOpts) *Graph {
	work := make([]Edge, 0, len(edges)*boostFactor(opts))
	work = append(work, edges...)
	if opts.Symmetrize {
		rev := parallel.Map(edges, func(e Edge) Edge { return Edge{U: e.V, V: e.U} })
		work = append(work, rev...)
	}
	parallel.Sort(work, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	work = parallel.FilterIndex(work, func(i int, e Edge) bool {
		if !opts.KeepSelfLoops && e.U == e.V {
			return false
		}
		if !opts.KeepDuplicates && i > 0 && work[i-1] == e {
			return false
		}
		return true
	})
	return fromSortedEdges(n, work, nil)
}

// FromWeightedEdges builds a weighted CSR graph. For duplicate arcs the
// smallest weight is kept (they are adjacent after sorting).
func FromWeightedEdges(n uint32, edges []WEdge, opts BuildOpts) *Graph {
	work := make([]WEdge, 0, len(edges)*boostFactor(opts))
	work = append(work, edges...)
	if opts.Symmetrize {
		rev := parallel.Map(edges, func(e WEdge) WEdge { return WEdge{U: e.V, V: e.U, W: e.W} })
		work = append(work, rev...)
	}
	parallel.Sort(work, func(a, b WEdge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	work = parallel.FilterIndex(work, func(i int, e WEdge) bool {
		if !opts.KeepSelfLoops && e.U == e.V {
			return false
		}
		if !opts.KeepDuplicates && i > 0 &&
			work[i-1].U == e.U && work[i-1].V == e.V {
			return false
		}
		return true
	})
	plain := make([]Edge, len(work))
	weights := make([]int32, len(work))
	parallel.For(len(work), 0, func(i int) {
		plain[i] = Edge{U: work[i].U, V: work[i].V}
		weights[i] = work[i].W
	})
	return fromSortedEdges(n, plain, weights)
}

func boostFactor(opts BuildOpts) int {
	if opts.Symmetrize {
		return 2
	}
	return 1
}

// fromSortedEdges assumes edges are sorted by (U, V) and already filtered.
func fromSortedEdges(n uint32, edges []Edge, weights []int32) *Graph {
	m := uint64(len(edges))
	counts := make([]uint64, n+1)
	parallel.For(len(edges), 0, func(i int) {
		// Count degree via run boundaries: position i belongs to edges[i].U.
		// Using atomic-free counting: each run start writes the run length.
		if i == 0 || edges[i-1].U != edges[i].U {
			j := i + 1
			for j < len(edges) && edges[j].U == edges[i].U {
				j++
			}
			counts[edges[i].U] = uint64(j - i)
		}
	})
	parallel.Scan(counts)
	flat := make([]uint32, m)
	parallel.For(len(edges), 0, func(i int) { flat[i] = edges[i].V })
	g := &Graph{n: n, m: m, offsets: counts, edges: flat, weights: weights}
	return g
}

// FromAdjacency builds a graph directly from per-vertex sorted adjacency
// lists. Used by tests and by contraction when the lists are already
// deduplicated.
func FromAdjacency(adj [][]uint32) *Graph {
	n := uint32(len(adj))
	offsets := make([]uint64, n+1)
	for v := uint32(0); v < n; v++ {
		offsets[v+1] = offsets[v] + uint64(len(adj[v]))
	}
	m := offsets[n]
	edges := make([]uint32, m)
	parallel.For(int(n), 16, func(i int) {
		copy(edges[offsets[i]:], adj[i])
	})
	return &Graph{n: n, m: m, offsets: offsets, edges: edges}
}

// InducedDegrees computes, for every vertex, its degree restricted to
// neighbors accepted by keep. Used by tests as an oracle.
func (g *Graph) InducedDegrees(keep func(uint32) bool) []uint32 {
	deg := make([]uint32, g.n)
	parallel.For(int(g.n), 64, func(i int) {
		v := uint32(i)
		if !keep(v) {
			return
		}
		var d uint32
		for _, u := range g.Neighbors(v) {
			if keep(u) {
				d++
			}
		}
		deg[v] = d
	})
	return deg
}
