package graph

import (
	"sage/internal/parallel"
)

// Relabel returns a copy of g with vertex v renamed to perm[v]; perm must
// be a permutation of [0, n). Adjacency lists are rebuilt sorted.
func (g *Graph) Relabel(perm []uint32) *Graph {
	n := g.n
	edges := make([]Edge, g.m)
	var weights []int32
	if g.weights != nil {
		weights = make([]int32, g.m)
	}
	parallel.For(int(n), 16, func(i int) {
		v := uint32(i)
		base := g.offsets[v]
		for k, u := range g.Neighbors(v) {
			edges[base+uint64(k)] = Edge{U: perm[v], V: perm[u]}
			if weights != nil {
				weights[base+uint64(k)] = g.weights[base+uint64(k)]
			}
		}
	})
	if weights == nil {
		return FromEdges(n, edges, BuildOpts{})
	}
	wedges := make([]WEdge, g.m)
	parallel.For(int(g.m), 0, func(i int) {
		wedges[i] = WEdge{U: edges[i].U, V: edges[i].V, W: weights[i]}
	})
	return FromWeightedEdges(n, wedges, BuildOpts{})
}

// DegreeOrder returns the permutation renaming vertices in decreasing
// degree order (hubs first). Appendix D.1 attributes triangle-counting
// performance differences to the input ordering; renumbering by degree
// concentrates the high-degree vertices' filter blocks, changing the
// decode-work profile.
func (g *Graph) DegreeOrder() []uint32 {
	n := int(g.n)
	byDeg := parallel.Tabulate(n, func(i int) uint32 { return uint32(i) })
	parallel.Sort(byDeg, func(a, b uint32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	perm := make([]uint32, n)
	parallel.For(n, 0, func(rank int) { perm[byDeg[rank]] = uint32(rank) })
	return perm
}

// RandomOrder returns a pseudo-random permutation (hash-ranked),
// deterministic in the seed — the adversarial ordering for cache and
// compression locality.
func (g *Graph) RandomOrder(seed uint64) []uint32 {
	n := int(g.n)
	byHash := parallel.Tabulate(n, func(i int) uint32 { return uint32(i) })
	parallel.Sort(byHash, func(a, b uint32) bool {
		ha := mixRelabel(uint64(a), seed)
		hb := mixRelabel(uint64(b), seed)
		if ha != hb {
			return ha < hb
		}
		return a < b
	})
	perm := make([]uint32, n)
	parallel.For(n, 0, func(rank int) { perm[byHash[rank]] = uint32(rank) })
	return perm
}

func mixRelabel(x, seed uint64) uint64 {
	x ^= seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
