// Package graph provides the immutable compressed-sparse-row (CSR) graph
// representation that Sage stores in NVRAM (§2, §4.2.1), a parallel
// builder from edge lists, and the adjacency-access interface shared by
// the uncompressed and byte-compressed representations.
//
// Vertices are indexed 0..n-1 as uint32; graphs are undirected and stored
// symmetrized (each undirected edge appears in both adjacency lists), with
// sorted adjacency lists, no self-edges, and no duplicate edges — the
// paper's preliminaries (§2).
package graph

import (
	"fmt"

	"sage/internal/parallel"
)

// Edge is one directed arc of an edge list.
type Edge struct{ U, V uint32 }

// WEdge is a weighted arc.
type WEdge struct {
	U, V uint32
	W    int32
}

// Graph is an immutable unweighted or integer-weighted CSR graph. In the
// PSAM it models the read-only structure residing in the asymmetric
// large-memory: the offsets and edges arrays are assigned simulated NVRAM
// word addresses (offsets at [0, n+1), edges at [n+1, n+1+m), weights
// following) used by the Memory-Mode cache simulator.
type Graph struct {
	n uint32
	m uint64
	//sage:arena
	offsets []uint64 // len n+1, offsets[v]..offsets[v+1] index edges
	//sage:arena
	edges []uint32 // len m, sorted within each vertex
	//sage:arena
	weights []int32 // len m or nil
}

// NumVertices returns n.
func (g *Graph) NumVertices() uint32 { return g.n }

// NumEdges returns m, the number of directed arcs stored (twice the number
// of undirected edges for symmetric graphs).
func (g *Graph) NumEdges() uint64 { return g.m }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns deg(v).
//
//sage:hotpath
func (g *Graph) Degree(v uint32) uint32 {
	return uint32(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency slice of v. The slice aliases the
// graph and must be treated as read-only.
//
//sage:arena-view
//sage:hotpath
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// NeighborWeights returns the weights aligned with Neighbors(v), or nil
// for unweighted graphs.
//
//sage:arena-view
//sage:hotpath
func (g *Graph) NeighborWeights(v uint32) []int32 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// Offsets exposes the offsets array (read-only).
//
//sage:arena-view
func (g *Graph) Offsets() []uint64 { return g.offsets }

// Edges exposes the flat edge array (read-only).
//
//sage:arena-view
func (g *Graph) Edges() []uint32 { return g.edges }

// EdgeAddr returns the simulated NVRAM word address of edge position
// offsets[v]+i. The offsets region occupies addresses [0, n+1) and the
// edge region starts at n+1.
func (g *Graph) EdgeAddr(v uint32) int64 {
	return int64(g.n) + 1 + int64(g.offsets[v])
}

// ScanCost returns the number of NVRAM words read when scanning adjacency
// positions [lo, hi) of vertex v: one word per edge for CSR (plus weights
// when present).
func (g *Graph) ScanCost(v uint32, lo, hi uint32) int64 {
	c := int64(hi - lo)
	if g.weights != nil {
		c *= 2
	}
	return c
}

// IterRange calls fn(i, ngh, w) for each adjacency position i in [lo, hi)
// of vertex v, stopping early if fn returns false. Unweighted graphs pass
// w = 1.
//
//sage:hotpath
func (g *Graph) IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool) {
	base := g.offsets[v]
	nghs := g.edges[base+uint64(lo) : base+uint64(hi)]
	if g.weights == nil {
		for i, u := range nghs {
			if !fn(lo+uint32(i), u, 1) {
				return
			}
		}
		return
	}
	ws := g.weights[base+uint64(lo) : base+uint64(hi)]
	for i, u := range nghs {
		if !fn(lo+uint32(i), u, ws[i]) {
			return
		}
	}
}

// BlockSize reports the natural decode granularity; CSR graphs support
// arbitrary granularity, reported as 0.
func (g *Graph) BlockSize() int { return 0 }

// AvgDegree returns max(1, m/n), the group-size parameter davg that
// edgeMapChunked uses (Algorithm 1).
func (g *Graph) AvgDegree() uint32 {
	if g.n == 0 {
		return 1
	}
	d := uint32(g.m / uint64(g.n))
	if d < 1 {
		d = 1
	}
	return d
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() uint32 {
	return parallel.ReduceMax(int(g.n), 0, uint32(0), func(i int) uint32 {
		return g.Degree(uint32(i))
	})
}

// SizeWords returns the simulated NVRAM footprint in words.
func (g *Graph) SizeWords() int64 {
	w := int64(g.n) + 1 + int64(g.m)
	if g.weights != nil {
		w += int64(g.m)
	}
	return w
}

// Validate checks the CSR invariants (sorted adjacency, no self loops, no
// duplicates, offsets monotone, symmetric if sym is true). It is used by
// the test suite.
func (g *Graph) Validate(sym bool) error {
	if len(g.offsets) != int(g.n)+1 {
		return fmt.Errorf("offsets length %d != n+1 (%d)", len(g.offsets), g.n+1)
	}
	if g.offsets[g.n] != g.m || uint64(len(g.edges)) != g.m {
		return fmt.Errorf("edge count mismatch: offsets end %d, m %d, len(edges) %d",
			g.offsets[g.n], g.m, len(g.edges))
	}
	for v := uint32(0); v < g.n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("offsets not monotone at %d", v)
		}
		nghs := g.Neighbors(v)
		for i, u := range nghs {
			if u >= g.n {
				return fmt.Errorf("edge target %d out of range at vertex %d", u, v)
			}
			if u == v {
				return fmt.Errorf("self loop at %d", v)
			}
			if i > 0 && nghs[i-1] >= u {
				return fmt.Errorf("adjacency of %d not strictly sorted", v)
			}
		}
	}
	if sym {
		for v := uint32(0); v < g.n; v++ {
			for _, u := range g.Neighbors(v) {
				if !g.HasEdge(u, v) {
					return fmt.Errorf("asymmetric edge (%d,%d)", v, u)
				}
			}
		}
	}
	return nil
}

// HasEdge reports whether (u, v) is present, by binary search.
func (g *Graph) HasEdge(u, v uint32) bool {
	nghs := g.Neighbors(u)
	lo, hi := 0, len(nghs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nghs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nghs) && nghs[lo] == v
}

// EdgeWeight returns the weight of edge (u, v), or (0, false) if absent.
func (g *Graph) EdgeWeight(u, v uint32) (int32, bool) {
	nghs := g.Neighbors(u)
	lo, hi := 0, len(nghs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nghs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(nghs) || nghs[lo] != v {
		return 0, false
	}
	if g.weights == nil {
		return 1, true
	}
	return g.weights[g.offsets[u]+uint64(lo)], true
}
