// Package cluster is the scale-out serving tier: a consistent-hash ring
// assigning datasets to replicas, a membership/health layer over the
// replicas' /readyz endpoints, and a router front-end that proxies the
// sage-serve HTTP API (/v1/run, /v1/update, /v1/datasets, ...) to the
// replica owning each dataset.
//
// The tier acts on the paper's §5.2 placement result, which
// internal/numa models: replicating the graph per socket beats one
// shared copy by 1.6× because all NVRAM traffic stays local. Scaled out
// of the box, "socket" becomes "replica process": each dataset lives on
// a small set of replicas (the ring's owners), every replica serves its
// shard from its own local mmap arena, and the router keeps requests on
// owners — no replica ever pulls graph data across the wire. Everything
// the tier needs already existed in-process (immutable mmap datasets,
// stateless run requests, generation-keyed result caches, WAL-durable
// updates); this package only adds placement, health, and proxying.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping dataset names to replica names
// with virtual nodes. Each replica contributes vnodes points on a 64-bit
// hash circle; a dataset is owned by the replicas owning the first
// distinct points at or clockwise from the dataset's hash. Adding or
// removing a replica therefore moves only the keys adjacent to its own
// points (~1/n of the keyspace), never reshuffles the rest — the
// property that keeps replica caches and WAL shards warm across
// membership changes.
//
// Ownership is a pure function of the sorted member set: two rings built
// from the same replicas in any insertion order agree on every key, so a
// router and an offline tool can compute placement independently.
//
// A Ring is immutable under concurrent readers; Add and Remove rebuild
// the point table and must not race with lookups.
type Ring struct {
	vnodes int
	nodes  []string // sorted member names
	points []ringPoint
}

// ringPoint is one virtual node: its position and owning member index.
type ringPoint struct {
	hash uint64
	node int32
}

// DefaultVNodes balances within a few percent for realistic member
// counts while keeping the point table small; the ±25% balance bound is
// property-tested at this setting.
const DefaultVNodes = 128

// NewRing builds a ring with vnodes virtual nodes per member (<= 0
// selects DefaultVNodes). Duplicate member names are an error.
func NewRing(vnodes int, members ...string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	seen := map[string]bool{}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: member %q added twice", m)
		}
		seen[m] = true
		r.nodes = append(r.nodes, m)
	}
	r.rebuild()
	return r, nil
}

// rebuild recomputes the point table from the member set.
func (r *Ring) rebuild() {
	sort.Strings(r.nodes)
	r.points = r.points[:0]
	for i, node := range r.nodes {
		for v := 0; v < r.vnodes; v++ {
			h := hashString(node + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (vanishingly rare at 64 bits) resolve by member order so
		// ownership stays a pure function of the member set.
		return r.points[a].node < r.points[b].node
	})
}

// Members returns the sorted member names.
func (r *Ring) Members() []string { return append([]string(nil), r.nodes...) }

// Add inserts a member, reporting whether it was new.
func (r *Ring) Add(member string) bool {
	for _, n := range r.nodes {
		if n == member {
			return false
		}
	}
	r.nodes = append(r.nodes, member)
	r.rebuild()
	return true
}

// Remove deletes a member, reporting whether it was present.
func (r *Ring) Remove(member string) bool {
	for i, n := range r.nodes {
		if n == member {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			r.rebuild()
			return true
		}
	}
	return false
}

// Owner returns the member owning key ("" on an empty ring): the first
// point at or clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns key's replica preference list: up to n distinct members
// in clockwise point order starting at the key's hash. The first entry
// is the primary (the write leader); the rest are the read replicas a
// router fails over to. n beyond the member count is truncated.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	taken := make(map[int32]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			owners = append(owners, r.nodes[p.node])
		}
	}
	return owners
}

// hashString is FNV-1a 64 strengthened with the murmur3 finalizer: FNV
// alone clusters badly on short sequential labels ("web-1", "web-2"),
// and ring balance is only as good as the avalanche of the point hash.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
