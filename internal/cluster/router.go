package cluster

// The router front-end. One process speaks the whole sage-serve HTTP API
// while the data lives sharded across replicas: the router hashes the
// {dataset} path segment on the ring, proxies the request to an owning
// replica, and relays the response verbatim — bodies byte-for-byte,
// X-Sage-* headers included — so a client cannot tell a routed answer
// from a direct one (the property the cluster differential suite pins).
//
// Reads (/v1/run) retry around failure: a transport error marks the
// replica down (quarantined for the retry backoff) and the request moves
// to the next owner in the dataset's preference list, so a dead replica
// costs reads one failover, not an outage, as long as any owner is up.
// Writes (/v1/update) never failover: the batch goes to the primary
// owner, then fans out to the remaining owners with the primary's
// resulting generation attached (X-Sage-Sync-Generation), which each
// secondary adopts as a floor — after a fan-out every owner reports the
// same generation, so generation-keyed caches (the replicas' and the
// router's own) stay coherent without invalidation traffic. A fan-out
// that cannot reach every owner answers 502 with the documented
// machine-readable reason; update batches are idempotent (re-inserting a
// present edge and deleting an absent one are no-ops), so the client
// retries the same batch once the replica is back and the owners
// converge.
//
// Admission stays where the capacity is: each replica enforces its own
// three-gate 429 contract (concurrency, DRAM words, predicted cost), and
// the router relays those 429s — Retry-After and all — untouched.

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sage/internal/numa"
	"sage/internal/server"
)

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Peers are the replicas behind this router. Required.
	Peers []Peer
	// VNodes is the ring's virtual nodes per replica (<= 0:
	// DefaultVNodes).
	VNodes int
	// Replication is how many replicas own each dataset (reads fail over
	// across them; writes fan out to all of them). <= 0 selects the NUMA
	// model's recommendation — one replica per socket, the paper's §5.2
	// replicated placement — clamped to the peer count.
	Replication int
	// Client issues proxied requests; nil builds one with no overall
	// timeout (runs may be long; cancellation rides the request context).
	Client *http.Client
	// ProbeInterval is the background health-probe period (0: default 2s;
	// < 0: disabled, passive failure detection only).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (0: default 2s).
	ProbeTimeout time.Duration
	// RetryBackoff is the pause between read failover attempts and the
	// quarantine window after a transport failure (0: default 100ms).
	RetryBackoff time.Duration
	// CacheEntries sizes the router's own result cache (0: disabled).
	// Entries are keyed by (dataset, algorithm, query, body) and served
	// only at the dataset's latest known generation, so an update routed
	// through this router can never be answered with a pre-update result.
	CacheEntries int
	// CacheBytes caps the summed body bytes of cached responses (0 with
	// CacheEntries > 0: 64 MiB).
	CacheBytes int64
}

// Router is the cluster front-end HTTP handler. Create with NewRouter,
// optionally Start background health probing, and Close when done.
type Router struct {
	ring        *Ring
	peers       *membership
	client      *http.Client
	replication int
	backoff     time.Duration
	probeEvery  time.Duration
	cache       *routerCache
	gens        genTable
	mux         *http.ServeMux
	started     time.Time
	draining    atomic.Bool

	runsProxied       atomic.Int64
	updatesProxied    atomic.Int64
	listingsProxied   atomic.Int64
	readFailovers     atomic.Int64
	writeFanoutErrors atomic.Int64
	noReplicaErrors   atomic.Int64
}

// NewRouter builds a router over the configured peers. The ring is fixed
// at construction: membership changes are a restart (placement must be
// agreed on by every router, so it follows configuration, not health).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one peer")
	}
	names := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		names[i] = p.Name
	}
	ring, err := NewRing(cfg.VNodes, names...)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: runtime.GOMAXPROCS(0) * 4,
		}}
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	probeClient := &http.Client{Timeout: probeTimeout, Transport: client.Transport}
	peers, err := newMembership(cfg.Peers, probeClient, backoff)
	if err != nil {
		return nil, err
	}
	replication := cfg.Replication
	if replication <= 0 {
		replication = numa.DefaultModel().RecommendedReplicas()
	}
	if replication > len(cfg.Peers) {
		replication = len(cfg.Peers)
	}
	probeEvery := cfg.ProbeInterval
	if probeEvery == 0 {
		probeEvery = 2 * time.Second
	}
	rt := &Router{
		ring:        ring,
		peers:       peers,
		client:      client,
		replication: replication,
		backoff:     backoff,
		probeEvery:  probeEvery,
		cache:       newRouterCache(cfg.CacheEntries, cfg.CacheBytes),
		gens:        genTable{m: map[string]uint64{}},
		mux:         http.NewServeMux(),
		started:     time.Now(),
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("GET /v1/datasets", rt.handleDatasets)
	rt.mux.HandleFunc("GET /v1/algorithms", rt.handleAlgorithms)
	rt.mux.HandleFunc("POST /v1/run/{dataset}/{algo}", rt.handleRun)
	rt.mux.HandleFunc("POST /v1/update/{dataset}", rt.handleUpdate)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// Start launches background health probing (no-op when disabled).
func (rt *Router) Start() { rt.peers.start(rt.probeEvery) }

// ProbeNow synchronously probes every peer's /readyz once — the same
// sweep the background prober runs. Tests (and operators' init scripts)
// use it to settle health state deterministically.
func (rt *Router) ProbeNow() { rt.peers.probeAll() }

// BeginDrain flips /readyz to 503 so load balancers stop routing to this
// router while in-flight proxies finish.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Close stops background probing.
func (rt *Router) Close() { rt.peers.close() }

// ServeHTTP dispatches to the router endpoints.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Owners returns dataset's replica preference list under this router's
// ring and replication factor (primary first).
func (rt *Router) Owners(dataset string) []string {
	return rt.ring.Owners(dataset, rt.replication)
}

// --------------------------------------------------------------------
// Generation tracking (router-cache coherence).
// --------------------------------------------------------------------

// genTable tracks the latest generation observed per dataset — from
// update fan-outs and from proxied run responses — the freshness bar a
// router-cached entry must meet to be served.
type genTable struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (g *genTable) observe(ds string, gen uint64) {
	if gen == 0 {
		return
	}
	g.mu.Lock()
	if gen > g.m[ds] {
		g.m[ds] = gen
	}
	g.mu.Unlock()
}

func (g *genTable) current(ds string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m[ds]
}

func (g *genTable) size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// --------------------------------------------------------------------
// Proxy plumbing.
// --------------------------------------------------------------------

// hopByHop are the connection-scoped headers a proxy must not relay.
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

// RoutedToHeader names the replica that served a proxied request — the
// one response header the router adds; everything else is relayed
// verbatim.
const RoutedToHeader = "X-Sage-Routed-To"

// doPeer issues one proxied request to ps. body may be resent (it is a
// byte slice, not the original stream). extra headers are added after
// the base ones. A returned error is a transport failure (the peer is
// unreachable or cut the connection); HTTP-level errors come back as
// responses.
func (rt *Router) doPeer(ctx context.Context, ps *peerState, method, pathAndQuery string, body []byte, extra http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, ps.url+pathAndQuery, bytesReader(body))
	if err != nil {
		return nil, err
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	return rt.client.Do(req)
}

// bytesReader avoids importing bytes just for one constructor while
// keeping a nil body truly empty.
func bytesReader(b []byte) io.Reader {
	if len(b) == 0 {
		return http.NoBody
	}
	return io.LimitReader(readerOf(b), int64(len(b)))
}

type byteSliceReader struct {
	b []byte
	i int
}

func readerOf(b []byte) *byteSliceReader { return &byteSliceReader{b: b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// relay copies resp to w verbatim — status, headers (minus hop-by-hop),
// body — stamped with the serving replica's name. With capture set the
// body is buffered and returned so the caller can cache it.
func relay(w http.ResponseWriter, resp *http.Response, peer string, capture bool) ([]byte, error) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop[k] {
			continue
		}
		h[k] = vs
	}
	h.Set(RoutedToHeader, peer)
	w.WriteHeader(resp.StatusCode)
	if capture {
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		_, err = w.Write(body)
		return body, err
	}
	_, err := io.Copy(w, resp.Body)
	return nil, err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"response not serializable"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

// readOrder returns owners with every currently-healthy peer ahead of
// the unhealthy ones, preference order preserved within each class: the
// likely-up replica is tried first, but a quarantined one is still tried
// last — that attempt is how a recovered replica rejoins between probes.
func (rt *Router) readOrder(owners []string) []*peerState {
	out := make([]*peerState, 0, len(owners))
	for _, name := range owners {
		if ps := rt.peers.peer(name); ps != nil && ps.healthy.Load() {
			out = append(out, ps)
		}
	}
	for _, name := range owners {
		if ps := rt.peers.peer(name); ps != nil && !ps.healthy.Load() {
			out = append(out, ps)
		}
	}
	return out
}

// retryAfterSeconds is the Retry-After a router-originated 502/503
// carries: one quarantine window, rounded up — when it elapses the
// router will try the dead replica again, so that is the soonest a
// retry can see different routing.
func (rt *Router) retryAfterSeconds() int {
	s := int((rt.backoff + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// --------------------------------------------------------------------
// Handlers.
// --------------------------------------------------------------------

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"role":     "router",
		"uptime_s": time.Since(rt.started).Seconds(),
	})
}

// handleReadyz reports routability: a router with no healthy replica
// cannot serve anything, and a draining router must stop receiving.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case rt.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "draining", "reason": "draining"})
	case rt.peers.healthyCount() == 0:
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "no_replicas", "reason": "no_replicas"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

// handleCluster reports the routing topology; ?dataset=name adds that
// dataset's owner preference list.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"role":        "router",
		"vnodes":      rt.ring.vnodes,
		"replication": rt.replication,
		"members":     rt.ring.Members(),
		"peers":       rt.peers.info(),
	}
	if ds := r.URL.Query().Get("dataset"); ds != "" {
		resp["dataset"] = ds
		resp["owners"] = rt.Owners(ds)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDatasets fans out to every reachable replica and merges the
// catalogs: each dataset is reported once, from the highest-ranked owner
// that listed it, annotated with which replica answered and the full
// owner list.
func (rt *Router) handleDatasets(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		Datasets []map[string]any `json:"datasets"`
	}
	best := map[string]int{} // dataset -> rank of the replica its entry came from
	merged := map[string]map[string]any{}
	reached := 0
	for _, ps := range rt.readOrder(rt.ring.Members()) {
		resp, err := rt.doPeer(r.Context(), ps, http.MethodGet, "/v1/datasets", nil, nil)
		if err != nil {
			rt.peers.markDown(ps)
			continue
		}
		var l listing
		err = json.NewDecoder(resp.Body).Decode(&l)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		rt.peers.markUp(ps)
		reached++
		for _, entry := range l.Datasets {
			name, _ := entry["name"].(string)
			if name == "" {
				continue
			}
			owners := rt.Owners(name)
			rank := len(owners) + 1 // non-owners sort after every owner
			for i, o := range owners {
				if o == ps.name {
					rank = i
					break
				}
			}
			if prev, seen := best[name]; seen && prev <= rank {
				continue
			}
			entry["served_by"] = ps.name
			entry["replicas"] = owners
			best[name], merged[name] = rank, entry
		}
	}
	if reached == 0 {
		rt.noReplicaErrors.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfterSeconds()))
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": "no replica reachable", "reason": "no_replica"})
		return
	}
	rt.listingsProxied.Add(1)
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]map[string]any, len(names))
	for i, name := range names {
		out[i] = merged[name]
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// handleAlgorithms proxies the registry listing from any reachable
// replica (it is identical everywhere: one binary, one registry).
func (rt *Router) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	for _, ps := range rt.readOrder(rt.ring.Members()) {
		resp, err := rt.doPeer(r.Context(), ps, http.MethodGet, "/v1/algorithms", nil, nil)
		if err != nil {
			rt.peers.markDown(ps)
			continue
		}
		rt.peers.markUp(ps)
		rt.listingsProxied.Add(1)
		_, _ = relay(w, resp, ps.name, false)
		return
	}
	rt.noReplicaErrors.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfterSeconds()))
	writeJSON(w, http.StatusBadGateway,
		map[string]string{"error": "no replica reachable", "reason": "no_replica"})
}

// handleRun routes a read to the dataset's owners, failing over on
// transport errors. Replica responses — success or HTTP-level error
// (404, 400, 429 with its Retry-After, ...) — are relayed verbatim.
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	ds := r.PathValue("dataset")
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading body: " + err.Error()})
		return
	}
	owners := rt.Owners(ds)
	if len(owners) == 0 {
		rt.noReplicaErrors.Add(1)
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": "no replicas configured", "reason": "no_replica"})
		return
	}
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}

	key := ds + "\x00" + pathAndQuery + "\x00" + string(body)
	if e, ok := rt.cache.get(key, rt.gens.current(ds)); ok {
		// A router-cache hit mirrors a replica-cache hit: same body bytes
		// the replica produced, model and prediction headers, no actuals
		// (nothing executed).
		h := w.Header()
		h.Set("Content-Type", e.contentType)
		if e.costModel != "" {
			h.Set("X-Sage-Cost-Model", e.costModel)
		}
		if e.costPredicted != "" {
			h.Set("X-Sage-Cost-Predicted", e.costPredicted)
		}
		h.Set(server.GenerationHeader, strconv.FormatUint(e.gen, 10))
		h.Set("X-Sage-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(e.body)
		return
	}

	for i, ps := range rt.readOrder(owners) {
		if i > 0 {
			rt.readFailovers.Add(1)
			select {
			case <-time.After(rt.backoff):
			case <-r.Context().Done():
				return
			}
		}
		resp, err := rt.doPeer(r.Context(), ps, http.MethodPost, pathAndQuery, body, nil)
		if err != nil {
			if r.Context().Err() != nil {
				return // the client is gone, not the replica
			}
			rt.peers.markDown(ps)
			continue
		}
		rt.peers.markUp(ps)
		rt.runsProxied.Add(1)
		capture := rt.cache != nil && resp.StatusCode == http.StatusOK
		respBody, _ := relay(w, resp, ps.name, capture)
		if capture && respBody != nil {
			if gen, err := strconv.ParseUint(resp.Header.Get(server.GenerationHeader), 10, 64); err == nil {
				rt.gens.observe(ds, gen)
				rt.cache.put(key, &routerEntry{
					gen:           gen,
					body:          respBody,
					contentType:   resp.Header.Get("Content-Type"),
					costModel:     resp.Header.Get("X-Sage-Cost-Model"),
					costPredicted: resp.Header.Get("X-Sage-Cost-Predicted"),
				})
			}
		}
		return
	}
	rt.noReplicaErrors.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfterSeconds()))
	writeJSON(w, http.StatusBadGateway, map[string]any{
		"error":  fmt.Sprintf("no live replica for dataset %q (owners: %v)", ds, owners),
		"reason": "no_replica",
	})
}

// handleUpdate routes a write to the dataset's primary owner, then fans
// it out to the remaining owners with the primary's generation attached,
// so every owner publishes the batch at the same generation. Writes
// never fail over: a transport failure answers 502 with a
// machine-readable reason (batches are idempotent — retry the same body
// once the replica is back and the owners converge).
func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	ds := r.PathValue("dataset")
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 8<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading body: " + err.Error()})
		return
	}
	owners := rt.Owners(ds)
	if len(owners) == 0 {
		rt.noReplicaErrors.Add(1)
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": "no replicas configured", "reason": "no_replica"})
		return
	}
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}

	primary := rt.peers.peer(owners[0])
	resp, err := rt.doPeer(r.Context(), primary, http.MethodPost, pathAndQuery, body, nil)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		rt.peers.markDown(primary)
		rt.writeFanoutErrors.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfterSeconds()))
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":   fmt.Sprintf("primary owner %q unreachable for dataset %q", primary.name, ds),
			"reason":  "replica_down",
			"replica": primary.name,
		})
		return
	}
	rt.peers.markUp(primary)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		// The primary rejected the batch (400/404/503 read_only/507/...):
		// nothing was applied anywhere; relay its verdict verbatim.
		rt.updatesProxied.Add(1)
		_, _ = relay(w, resp, primary.name, false)
		return
	}
	primBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rt.writeFanoutErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":   fmt.Sprintf("reading primary response from %q: %v", primary.name, err),
			"reason":  "replica_down",
			"replica": primary.name,
		})
		return
	}
	gen, _ := strconv.ParseUint(resp.Header.Get(server.GenerationHeader), 10, 64)
	// Record the new generation before anything can fail: even a broken
	// fan-out must keep the router cache from serving pre-update results.
	rt.gens.observe(ds, gen)

	appliedTo := []string{primary.name}
	var sync http.Header
	if gen > 0 {
		sync = http.Header{server.SyncGenerationHeader: []string{strconv.FormatUint(gen, 10)}}
	}
	for _, name := range owners[1:] {
		sec := rt.peers.peer(name)
		sresp, err := rt.doPeer(r.Context(), sec, http.MethodPost, pathAndQuery, body, sync)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			rt.peers.markDown(sec)
			rt.writeFanoutErrors.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfterSeconds()))
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("owner %q unreachable for dataset %q: batch applied to %v; retry the same batch once every owner is reachable (batches are idempotent)",
					name, ds, appliedTo),
				"reason":     "replica_down",
				"replica":    name,
				"applied_to": appliedTo,
			})
			return
		}
		rt.peers.markUp(sec)
		if sresp.StatusCode < 200 || sresp.StatusCode >= 300 {
			detail, _ := io.ReadAll(io.LimitReader(sresp.Body, 512))
			sresp.Body.Close()
			rt.writeFanoutErrors.Add(1)
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error": fmt.Sprintf("owner %q rejected the fan-out for dataset %q (status %d): %s; batch applied to %v",
					name, ds, sresp.StatusCode, string(detail), appliedTo),
				"reason":     "fanout_failed",
				"replica":    name,
				"status":     sresp.StatusCode,
				"applied_to": appliedTo,
			})
			return
		}
		io.Copy(io.Discard, sresp.Body)
		sresp.Body.Close()
		appliedTo = append(appliedTo, name)
	}
	rt.updatesProxied.Add(1)

	// Every owner accepted: relay the primary's response verbatim.
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop[k] || k == "Content-Length" {
			continue
		}
		h[k] = vs
	}
	h.Set(RoutedToHeader, primary.name)
	w.WriteHeader(resp.StatusCode)
	w.Write(primBody)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"role":     "router",
		"uptime_s": time.Since(rt.started).Seconds(),
		"ring": map[string]any{
			"vnodes":      rt.ring.vnodes,
			"replication": rt.replication,
			"members":     len(rt.ring.nodes),
		},
		"proxied": map[string]int64{
			"runs":     rt.runsProxied.Load(),
			"updates":  rt.updatesProxied.Load(),
			"listings": rt.listingsProxied.Load(),
		},
		"read_failovers":      rt.readFailovers.Load(),
		"write_fanout_errors": rt.writeFanoutErrors.Load(),
		"no_replica_errors":   rt.noReplicaErrors.Load(),
		"router_cache":        rt.cache.snapshot(),
		"generations_tracked": rt.gens.size(),
		"peers":               rt.peers.info(),
	})
}

// --------------------------------------------------------------------
// Router result cache.
// --------------------------------------------------------------------

// routerEntry is one cached run response: the replica-produced body and
// the headers a cache hit re-serves, valid only while gen is still the
// dataset's latest known generation.
type routerEntry struct {
	key           string
	gen           uint64
	body          []byte
	contentType   string
	costModel     string
	costPredicted string
}

func (e *routerEntry) size() int64 { return int64(len(e.body) + len(e.key)) }

// routerCache is an LRU of proxied run responses, bounded by entries and
// bytes, mirroring the replica-side result cache's shape. A nil cache is
// valid and always misses.
type routerCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	ll       *list.List
	byKey    map[string]*list.Element
	hits     atomic.Int64
	misses   atomic.Int64
	stale    atomic.Int64
}

func newRouterCache(max int, maxBytes int64) *routerCache {
	if max <= 0 {
		return nil
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &routerCache{max: max, maxBytes: maxBytes, ll: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the entry for key if it exists at generation floor
// (entries behind the dataset's latest known generation are stale and
// dropped on sight).
func (c *routerCache) get(key string, floor uint64) (*routerEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.byKey[key]
	if !found {
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*routerEntry)
	if e.gen < floor {
		c.stale.Add(1)
		c.misses.Add(1)
		c.removeLocked(el)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return e, true
}

func (c *routerCache) put(key string, e *routerEntry) {
	if c == nil {
		return
	}
	e.key = key
	if e.size() > c.maxBytes/4 {
		return // one giant answer must not wipe the cache
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, dup := c.byKey[key]; dup {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(e)
	c.byKey[key] = el
	c.bytes += e.size()
	for c.ll.Len() > c.max || c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
	}
}

func (c *routerCache) removeLocked(el *list.Element) {
	e := el.Value.(*routerEntry)
	c.ll.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.size()
}

// snapshot reports cache counters for /metrics (nil when disabled).
func (c *routerCache) snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	entries, bytes := int64(c.ll.Len()), c.bytes
	c.mu.Unlock()
	return map[string]int64{
		"entries": entries,
		"bytes":   bytes,
		"hits":    c.hits.Load(),
		"misses":  c.misses.Load(),
		"stale":   c.stale.Load(),
	}
}
