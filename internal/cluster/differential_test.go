package cluster_test

// The cluster differential suite: every registry algorithm, run through
// the router against a 3-replica fixture, must answer exactly what a
// direct single-process server answers — byte-identical bodies and
// identical X-Sage-* cost headers — across mmap and copy openings, and
// again after an update fan-out bumps generations (which also proves the
// router's result cache never serves a pre-update answer).
//
// Byte identity needs determinism: several algorithms break ties by CAS
// races (BFS parents, components hooks), so the whole suite pins the
// global worker count to 1 — every server in the fixture is in-process,
// so one knob covers the direct server, the router, and all replicas.
// The one legitimately nondeterministic response field, elapsed_ms, is
// normalized away before comparison.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"sage"
	"sage/internal/cluster/clustertest"
	"sage/internal/parallel"
)

// elapsedRE matches the wall-clock field, the only response bytes two
// identical runs legitimately disagree on.
var elapsedRE = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

func normalize(body []byte) []byte {
	return elapsedRE.ReplaceAll(body, []byte(`"elapsed_ms":0`))
}

// costHeaders are the headers the differential contract compares; a
// header absent on both sides also matches (cache hits carry no
// actuals).
var costHeaders = []string{
	"X-Sage-Cost-Model",
	"X-Sage-Cost-Predicted",
	"X-Sage-Cost-Actual",
	"X-Sage-Cost-Energy-NJ",
	"X-Sage-Generation",
	"X-Sage-Cache",
	"Content-Type",
}

// post issues one POST and returns status, raw body, and headers.
func post(t *testing.T, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, b, resp.Header
}

// setCoverInstance mirrors the harness's bipartite derivation: every
// vertex is a set covering its neighborhood.
func setCoverInstance(g *sage.Graph) (*sage.Graph, uint32) {
	raw := g.RawCSR()
	n := raw.NumVertices()
	edges := make([]sage.Edge, 0, raw.NumEdges())
	for v := uint32(0); v < n; v++ {
		for _, u := range raw.Neighbors(v) {
			edges = append(edges, sage.Edge{U: v, V: n + u})
		}
	}
	return sage.FromEdges(2*n, edges), n
}

// datasetFor maps a registry algorithm to the fixture dataset and args
// it runs on.
func datasetFor(a sage.Algorithm, numSets uint32) (string, sage.AlgoArgs) {
	switch {
	case a.SetCover:
		return "sc", sage.AlgoArgs{NumSets: numSets}
	case a.Weighted:
		return "wg", sage.AlgoArgs{}
	default:
		return "g", sage.AlgoArgs{}
	}
}

// compareRun runs one algorithm through both fronts and asserts the
// differential contract.
func compareRun(t *testing.T, directURL, routedURL, ds, algo string, args sage.AlgoArgs) {
	t.Helper()
	body, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	path := fmt.Sprintf("/v1/run/%s/%s", ds, algo)
	dStatus, dBody, dHdr := post(t, directURL+path, body)
	rStatus, rBody, rHdr := post(t, routedURL+path, body)
	if dStatus != http.StatusOK {
		t.Fatalf("direct %s: status %d: %s", path, dStatus, dBody)
	}
	if rStatus != http.StatusOK {
		t.Fatalf("routed %s: status %d: %s", path, rStatus, rBody)
	}
	if !bytes.Equal(normalize(dBody), normalize(rBody)) {
		t.Fatalf("routed body differs from direct for %s:\ndirect: %s\nrouted: %s",
			path, normalize(dBody), normalize(rBody))
	}
	for _, h := range costHeaders {
		if d, r := dHdr.Get(h), rHdr.Get(h); d != r {
			t.Fatalf("%s: header %s differs: direct %q, routed %q", path, h, d, r)
		}
	}
}

// absentPairs finds k vertex pairs with no edge in either direction —
// update ops guaranteed to change the graph on every server.
func absentPairs(t *testing.T, g *sage.Graph, k int) [][2]uint32 {
	t.Helper()
	raw := g.RawCSR()
	n := g.NumVertices()
	var out [][2]uint32
	for d := uint32(1); d < n && len(out) < k; d++ {
		u, v := d/2, n-1-d/2
		if u == v || raw.HasEdge(u, v) || raw.HasEdge(v, u) {
			continue
		}
		out = append(out, [2]uint32{u, v})
	}
	if len(out) < k {
		t.Fatalf("could not find %d absent vertex pairs", k)
	}
	return out
}

// applyUpdate posts the same batch to both fronts and asserts the
// responses agree (generation included).
func applyUpdate(t *testing.T, directURL, routedURL, ds string, ops []sage.EdgeOp) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		t.Fatal(err)
	}
	path := "/v1/update/" + ds
	dStatus, dBody, dHdr := post(t, directURL+path, body)
	rStatus, rBody, rHdr := post(t, routedURL+path, body)
	if dStatus != http.StatusOK || rStatus != http.StatusOK {
		t.Fatalf("update %s: direct %d (%s), routed %d (%s)", ds, dStatus, dBody, rStatus, rBody)
	}
	if !bytes.Equal(normalize(dBody), normalize(rBody)) {
		t.Fatalf("update %s: routed response differs:\ndirect: %s\nrouted: %s",
			ds, normalize(dBody), normalize(rBody))
	}
	if d, r := dHdr.Get("X-Sage-Generation"), rHdr.Get("X-Sage-Generation"); d != r || d == "" {
		t.Fatalf("update %s: generation headers direct %q vs routed %q", ds, d, r)
	}
}

func TestClusterDifferential(t *testing.T) {
	// One worker end to end: see the file comment. Restore for the rest
	// of the package's tests.
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(prev) })

	g := sage.GenerateRMAT(8, 8, 0xd1f)
	wg, err := g.WithUniformWeights(0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	sc, numSets := setCoverInstance(g)
	datasets := map[string]*sage.Graph{"g": g, "wg": wg, "sc": sc}

	algos := sage.Algorithms()
	if len(algos) < 24 {
		t.Fatalf("registry has %d algorithms, expected at least 24", len(algos))
	}

	for _, opening := range []struct {
		name string
		copy bool
	}{
		{"mmap", false},
		{"copy", true},
	} {
		t.Run(opening.name, func(t *testing.T) {
			c := clustertest.New(t, clustertest.Options{
				Replicas:           3,
				Replication:        2,
				Datasets:           datasets,
				Copy:               opening.copy,
				RouterCacheEntries: 128,
			})
			direct := c.Direct(t)

			// Phase 1: every registry algorithm, fresh generation.
			for _, a := range algos {
				ds, args := datasetFor(a, numSets)
				compareRun(t, direct.URL, c.URL(), ds, a.Name, args)
			}

			// Phase 2: the same update batch through both fronts — the
			// router fans it out to every owner with the primary's
			// generation attached.
			pairs := absentPairs(t, g, 4)
			var ops, wops []sage.EdgeOp
			for _, p := range pairs[:2] {
				ops = append(ops,
					sage.EdgeOp{U: p[0], V: p[1]}, sage.EdgeOp{U: p[1], V: p[0]})
				wops = append(wops,
					sage.EdgeOp{U: p[0], V: p[1], W: 3}, sage.EdgeOp{U: p[1], V: p[0], W: 3})
			}
			// Also delete one edge present in the base, so the overlay
			// exercises both op kinds.
			del := pairs[2]
			ops = append(ops, sage.EdgeOp{U: del[0], V: del[1]}) // add...
			applyUpdate(t, direct.URL, c.URL(), "g", ops)
			applyUpdate(t, direct.URL, c.URL(), "wg", wops)
			applyUpdate(t, direct.URL, c.URL(), "g",
				[]sage.EdgeOp{{U: del[0], V: del[1], Del: true}}) // ...then delete
			for _, r := range c.Owners("g") {
				t.Logf("owner of g: %s", r.Name)
			}

			// Phase 3: every algorithm again at the bumped generations.
			// Any stale answer — a router-cache hit keyed at the old
			// generation, a replica that missed the fan-out — diverges
			// from the direct server here.
			for _, a := range algos {
				ds, args := datasetFor(a, numSets)
				compareRun(t, direct.URL, c.URL(), ds, a.Name, args)
			}

			// The router cache must have been exercised without ever
			// serving a stale generation (phase 3 re-posts phase 1's
			// bodies; on updated datasets those entries are stale and the
			// comparison above proves they were not served).
			assertRouterCacheUsed(t, c.URL())
		})
	}
}

// assertRouterCacheUsed asserts the router-side cache saw traffic.
func assertRouterCacheUsed(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		RouterCache map[string]int64 `json:"router_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.RouterCache == nil {
		t.Fatal("router cache disabled in metrics despite CacheEntries > 0")
	}
	if m.RouterCache["misses"] == 0 {
		t.Error("router cache saw no lookups")
	}
}

// TestClusterRoutedCacheHit pins the router-cache hit contract: a
// repeated identical request is answered by the router itself with the
// same (normalized) body and a hit marker, and a subsequent update makes
// the entry stale rather than serving it.
func TestClusterRoutedCacheHit(t *testing.T) {
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(prev) })

	g := sage.GenerateRMAT(7, 8, 0x51)
	c := clustertest.New(t, clustertest.Options{
		Datasets:           map[string]*sage.Graph{"g": g},
		RouterCacheEntries: 16,
	})
	body := []byte(`{}`)
	s1, first, h1 := post(t, c.URL()+"/v1/run/g/cc", body)
	if s1 != http.StatusOK || h1.Get("X-Sage-Cache") != "miss" {
		t.Fatalf("first run: X-Sage-Cache=%q, want miss", h1.Get("X-Sage-Cache"))
	}
	s2, second, h2 := post(t, c.URL()+"/v1/run/g/cc", body)
	if s2 != http.StatusOK || h2.Get("X-Sage-Cache") != "hit" {
		t.Fatalf("second run: X-Sage-Cache=%q, want hit", h2.Get("X-Sage-Cache"))
	}
	if h2.Get("X-Sage-Routed-To") != "" {
		t.Fatal("router-cache hit claims a replica served it")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit body differs:\nfirst:  %s\nsecond: %s", first, second)
	}

	// Update through the router: the cached entry is now stale.
	pairs := absentPairs(t, g, 1)
	ops, _ := json.Marshal(map[string]any{"ops": []sage.EdgeOp{
		{U: pairs[0][0], V: pairs[0][1]}, {U: pairs[0][1], V: pairs[0][0]}}})
	if status, b, _ := post(t, c.URL()+"/v1/update/g", ops); status != http.StatusOK {
		t.Fatalf("update: %d: %s", status, b)
	}
	s3, third, h3 := post(t, c.URL()+"/v1/run/g/cc", body)
	if s3 != http.StatusOK || h3.Get("X-Sage-Cache") != "miss" {
		t.Fatalf("post-update run: X-Sage-Cache=%q, want miss (stale entry served?)",
			h3.Get("X-Sage-Cache"))
	}
	if gen := h3.Get("X-Sage-Generation"); gen != "2" {
		t.Fatalf("post-update generation %q, want 2", gen)
	}
	if strings.Contains(string(third), `"generation":1`) {
		t.Fatal("post-update response still reports generation 1")
	}
}
