package cluster

// Property tests for the consistent-hash ring: the two guarantees the
// serving tier leans on are balance (no replica owns a pathological
// share of the keyspace) and minimal movement (a membership change only
// moves the keys touching the changed replica — everything else keeps
// its owner, so replica caches and WAL shards stay warm).

import (
	"fmt"
	"testing"
)

// keys generates n synthetic dataset names.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dataset-%d", i)
	}
	return out
}

// TestRingBalance checks the advertised bound: at DefaultVNodes every
// member's share of a large keyspace is within ±25% of fair, across
// several member counts.
func TestRingBalance(t *testing.T) {
	const n = 20000
	for _, members := range []int{2, 3, 5, 8, 16} {
		names := make([]string, members)
		for i := range names {
			names[i] = fmt.Sprintf("replica-%d", i)
		}
		r, err := NewRing(DefaultVNodes, names...)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, k := range keys(n) {
			counts[r.Owner(k)]++
		}
		fair := float64(n) / float64(members)
		for _, name := range names {
			share := float64(counts[name]) / fair
			if share < 0.75 || share > 1.25 {
				t.Errorf("%d members: %s owns %.0f%% of fair share (%d keys)",
					members, name, share*100, counts[name])
			}
		}
	}
}

// TestRingMinimalMovementOnRemove checks that removing a member moves
// only that member's keys: every key it did not own keeps its owner.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	r, err := NewRing(DefaultVNodes, "a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(5000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	if !r.Remove("c") {
		t.Fatal("remove c: not a member?")
	}
	moved := 0
	for _, k := range ks {
		after := r.Owner(k)
		if before[k] == "c" {
			if after == "c" {
				t.Fatalf("key %s still owned by removed member", k)
			}
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s moved %s -> %s though %s is still a member",
				k, before[k], after, before[k])
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys at all")
	}
}

// TestRingMinimalMovementOnAdd checks the converse: a new member only
// takes keys, and only for itself — no key moves between old members.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	r, err := NewRing(DefaultVNodes, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(5000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	if !r.Add("d") {
		t.Fatal("add d: already a member?")
	}
	taken := 0
	for _, k := range ks {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "d" {
			t.Fatalf("key %s moved %s -> %s on adding d", k, before[k], after)
		}
		taken++
	}
	if taken == 0 {
		t.Fatal("new member took no keys at all")
	}
	// And ~1/4 of the keyspace should land on the newcomer (±25% again).
	if share := float64(taken) / (float64(len(ks)) / 4); share < 0.75 || share > 1.25 {
		t.Errorf("new member took %.0f%% of its fair share", share*100)
	}
}

// TestRingInsertionOrderIrrelevant checks that ownership is a pure
// function of the member set, not of construction history.
func TestRingInsertionOrderIrrelevant(t *testing.T) {
	r1, err := NewRing(64, "a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(64, "d", "b", "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	// A third ring arrives at the same set by mutation.
	r3, err := NewRing(64, "a", "x", "c")
	if err != nil {
		t.Fatal(err)
	}
	r3.Remove("x")
	r3.Add("d")
	r3.Add("b")
	for _, k := range keys(2000) {
		o1, o2, o3 := r1.Owner(k), r2.Owner(k), r3.Owner(k)
		if o1 != o2 || o1 != o3 {
			t.Fatalf("key %s: owners diverge (%s / %s / %s)", k, o1, o2, o3)
		}
	}
}

// TestRingOwners checks the preference-list contract: distinct members,
// primary first, truncated at the member count, stable for a given key.
func TestRingOwners(t *testing.T) {
	r, err := NewRing(DefaultVNodes, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("key %s: %d owners, want 2", k, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %s: duplicate owner %s", k, owners[0])
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %s: Owners[0]=%s but Owner=%s", k, owners[0], r.Owner(k))
		}
	}
	if got := r.Owners("any", 99); len(got) != 3 {
		t.Fatalf("over-asking yields %d owners, want all 3", len(got))
	}
	if got := r.Owners("any", 0); got != nil {
		t.Fatalf("n=0 yields %v, want nil", got)
	}
}

// TestRingErrors covers the constructor's rejection paths and the empty
// ring's behavior.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(8, "a", "a"); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing(8, ""); err == nil {
		t.Fatal("empty member name accepted")
	}
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if r.Add("a"); r.Owner("k") != "a" {
		t.Fatal("single-member ring must own everything")
	}
	if r.Remove("missing") {
		t.Fatal("removed a member that was never added")
	}
}

// TestParsePeers covers the -peers flag syntax.
func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("r0=http://a:1, r1=http://b:2/,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].Name != "r0" || peers[1].URL != "http://b:2" {
		t.Fatalf("parsed %+v", peers)
	}
	for _, bad := range []string{"", "r0", "r0=", "=http://a", "r0=not a url", "r0=/relative"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}
