package cluster_test

// Fault-injection suite: a killed replica must cost reads one failover
// and writes a documented, machine-readable 502 — and when the replica
// comes back, its WAL replay must put it exactly where its peers are, so
// a retried batch converges every owner onto one generation.

import (
	"encoding/json"
	"net/http"
	"testing"

	"sage"
	"sage/internal/cluster/clustertest"
	"sage/internal/parallel"
)

// errorBody decodes the router's JSON error contract.
type errorBody struct {
	Error     string   `json:"error"`
	Reason    string   `json:"reason"`
	Replica   string   `json:"replica"`
	AppliedTo []string `json:"applied_to"`
}

// updateOps builds the wire body for one two-op (symmetric edge) batch.
func updateOps(t *testing.T, u, v uint32) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"ops": []sage.EdgeOp{
		{U: u, V: v}, {U: v, V: u}}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// genOf runs cc on the replica (or router) directly and returns the
// generation the response reports plus its normalized body.
func genOf(t *testing.T, base string) (string, []byte) {
	t.Helper()
	status, body, hdr := post(t, base+"/v1/run/g/cc", []byte(`{}`))
	if status != http.StatusOK {
		t.Fatalf("run on %s: status %d: %s", base, status, body)
	}
	return hdr.Get("X-Sage-Generation"), normalize(body)
}

func TestClusterReplicaKillAndRecover(t *testing.T) {
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(prev) })

	g := sage.GenerateRMAT(7, 8, 0x99)
	c := clustertest.New(t, clustertest.Options{
		Replicas:    3,
		Replication: 2,
		Datasets:    map[string]*sage.Graph{"g": g},
	})
	owners := c.Owners("g")
	primary, secondary := owners[0], owners[1]
	pairs := absentPairs(t, g, 4)

	// Baseline: a run and a durable update through the router.
	if status, body, _ := post(t, c.URL()+"/v1/run/g/cc", []byte(`{}`)); status != http.StatusOK {
		t.Fatalf("baseline run: %d: %s", status, body)
	}
	if status, body, hdr := post(t, c.URL()+"/v1/update/g",
		updateOps(t, pairs[0][0], pairs[0][1])); status != http.StatusOK {
		t.Fatalf("baseline update: %d: %s", status, body)
	} else if gen := hdr.Get("X-Sage-Generation"); gen != "2" {
		t.Fatalf("baseline update generation %q, want 2", gen)
	}

	// Kill the primary owner. Reads must route around it.
	primary.Kill()
	status, body, hdr := post(t, c.URL()+"/v1/run/g/cc", []byte(`{}`))
	if status != http.StatusOK {
		t.Fatalf("read with primary down: %d: %s", status, body)
	}
	if got := hdr.Get("X-Sage-Routed-To"); got != secondary.Name {
		t.Fatalf("read served by %q, want failover to %q", got, secondary.Name)
	}

	// Writes must not: the documented 502 with the primary named.
	status, body, hdr = post(t, c.URL()+"/v1/update/g", updateOps(t, pairs[1][0], pairs[1][1]))
	if status != http.StatusBadGateway {
		t.Fatalf("write with primary down: %d: %s", status, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	if e.Reason != "replica_down" || e.Replica != primary.Name {
		t.Fatalf("error contract: got reason=%q replica=%q, want replica_down/%s: %s",
			e.Reason, e.Replica, primary.Name, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("write rejection carries no Retry-After")
	}
	if len(e.AppliedTo) != 0 {
		t.Fatalf("primary-down failure claims the batch applied to %v", e.AppliedTo)
	}

	// Restart: the WAL must replay the baseline batch, after which the
	// failed write retries cleanly and every owner reports the same
	// generation and the same answer.
	if replayed := primary.Restart(t); replayed < 1 {
		t.Fatalf("restart replayed %d batches, want >= 1", replayed)
	}
	status, body, hdr = post(t, c.URL()+"/v1/update/g", updateOps(t, pairs[1][0], pairs[1][1]))
	if status != http.StatusOK {
		t.Fatalf("write after restart: %d: %s", status, body)
	}
	if gen := hdr.Get("X-Sage-Generation"); gen != "3" {
		t.Fatalf("post-restart update generation %q, want 3", gen)
	}
	pGen, pBody := genOf(t, primary.URL())
	sGen, sBody := genOf(t, secondary.URL())
	if pGen != "3" || sGen != "3" {
		t.Fatalf("owners diverged: primary gen %s, secondary gen %s", pGen, sGen)
	}
	if string(pBody) != string(sBody) {
		t.Fatalf("owners answer differently after recovery:\nprimary:   %s\nsecondary: %s", pBody, sBody)
	}
}

func TestClusterSecondaryKillFanout(t *testing.T) {
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	t.Cleanup(func() { parallel.SetWorkers(prev) })

	g := sage.GenerateRMAT(7, 8, 0x7a)
	c := clustertest.New(t, clustertest.Options{
		Replicas:    3,
		Replication: 2,
		Datasets:    map[string]*sage.Graph{"g": g},
	})
	owners := c.Owners("g")
	primary, secondary := owners[0], owners[1]
	pairs := absentPairs(t, g, 2)

	// Kill the secondary: the primary applies, the fan-out fails, and the
	// error must say exactly that — including where the batch landed.
	secondary.Kill()
	status, body, _ := post(t, c.URL()+"/v1/update/g", updateOps(t, pairs[0][0], pairs[0][1]))
	if status != http.StatusBadGateway {
		t.Fatalf("update with secondary down: %d: %s", status, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	if e.Reason != "replica_down" || e.Replica != secondary.Name {
		t.Fatalf("error contract: reason=%q replica=%q, want replica_down/%s",
			e.Reason, e.Replica, secondary.Name)
	}
	if len(e.AppliedTo) != 1 || e.AppliedTo[0] != primary.Name {
		t.Fatalf("applied_to = %v, want [%s]", e.AppliedTo, primary.Name)
	}

	// Reads still serve (from the primary).
	if status, body, _ := post(t, c.URL()+"/v1/run/g/cc", []byte(`{}`)); status != http.StatusOK {
		t.Fatalf("read with secondary down: %d: %s", status, body)
	}

	// Restart the secondary and retry the SAME batch — idempotent on the
	// primary, applied for real on the secondary, converging both onto
	// the primary's generation via the sync floor.
	secondary.Restart(t)
	status, body, hdr := post(t, c.URL()+"/v1/update/g", updateOps(t, pairs[0][0], pairs[0][1]))
	if status != http.StatusOK {
		t.Fatalf("retried update: %d: %s", status, body)
	}
	gen := hdr.Get("X-Sage-Generation")
	pGen, pBody := genOf(t, primary.URL())
	sGen, sBody := genOf(t, secondary.URL())
	if pGen != gen || sGen != gen {
		t.Fatalf("owners did not converge: update says gen %s, primary %s, secondary %s",
			gen, pGen, sGen)
	}
	if string(pBody) != string(sBody) {
		t.Fatalf("owners answer differently after convergence:\nprimary:   %s\nsecondary: %s", pBody, sBody)
	}
}

func TestClusterAllOwnersDown(t *testing.T) {
	g := sage.GenerateRMAT(7, 8, 0x31)
	c := clustertest.New(t, clustertest.Options{
		Replicas:    3,
		Replication: 2,
		Datasets:    map[string]*sage.Graph{"g": g},
	})
	for _, r := range c.Owners("g") {
		r.Kill()
	}
	status, body, hdr := post(t, c.URL()+"/v1/run/g/cc", []byte(`{}`))
	if status != http.StatusBadGateway {
		t.Fatalf("read with every owner down: %d: %s", status, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Reason != "no_replica" {
		t.Fatalf("error contract: %s (err %v)", body, err)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("no_replica rejection carries no Retry-After")
	}

	// With every replica down and a probe sweep done, the router itself
	// reports not-ready — a load balancer should stop sending to it.
	for _, r := range c.Replicas {
		r.Kill()
	}
	c.ProbeAll()
	resp, err := http.Get(c.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router /readyz with all replicas down: %d, want 503", resp.StatusCode)
	}

	// Recovery: restart one replica, probe, and readiness returns.
	c.Replicas[0].Restart(t)
	c.ProbeAll()
	resp, err = http.Get(c.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz after one replica rejoined: %d, want 200", resp.StatusCode)
	}
}

// TestClusterMetricsAfterFaults sanity-checks the router's fault
// counters end to end.
func TestClusterMetricsAfterFaults(t *testing.T) {
	g := sage.GenerateRMAT(7, 8, 0x11)
	c := clustertest.New(t, clustertest.Options{
		Replicas:    2,
		Replication: 2,
		Datasets:    map[string]*sage.Graph{"g": g},
	})
	owners := c.Owners("g")
	owners[0].Kill()
	post(t, c.URL()+"/v1/run/g/cc", []byte(`{}`))       // failover read
	post(t, c.URL()+"/v1/update/g", updateOps(t, 1, 2)) // failed write

	resp, err := http.Get(c.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		ReadFailovers     int64 `json:"read_failovers"`
		WriteFanoutErrors int64 `json:"write_fanout_errors"`
		Peers             []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.ReadFailovers < 1 {
		t.Errorf("read_failovers = %d, want >= 1", m.ReadFailovers)
	}
	if m.WriteFanoutErrors < 1 {
		t.Errorf("write_fanout_errors = %d, want >= 1", m.WriteFanoutErrors)
	}
	sawDown := false
	for _, p := range m.Peers {
		if p.Name == owners[0].Name && !p.Healthy {
			sawDown = true
		}
	}
	if !sawDown {
		t.Errorf("metrics do not report %s unhealthy: %+v", owners[0].Name, m.Peers)
	}
}
