// Package clustertest is the in-process cluster fixture behind the
// cluster test suites: N replica server.Servers, each with its own data
// directory (private dataset files and WAL segments, the per-replica
// arena the §5.2 placement argument wants), all fronted by one
// cluster.Router — every tier wrapped in an httptest.Server so the full
// HTTP proxy path runs with no processes to spawn. The differential,
// fault, and rebalance suites all share this fixture.
//
// Fault injection is first-class: Kill makes a replica's listener abort
// every connection mid-request (the client sees a transport error, as it
// would from a SIGKILLed process — the handler panics with
// http.ErrAbortHandler), while the replica's files stay on disk exactly
// as the crash left them; Restart builds a fresh server.Server over
// those files and replays its WAL, the in-process equivalent of
// restarting the process.
package clustertest

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"sage"
	"sage/internal/cluster"
	"sage/internal/server"
)

// Options configures New. The zero value builds 3 replicas, replication
// 2, durable WALs, and a router with passive health detection only.
type Options struct {
	// Replicas is the replica count (0: 3).
	Replicas int
	// Replication is how many replicas own each dataset (0: 2).
	Replication int
	// VNodes is the ring's virtual-node count (0: cluster.DefaultVNodes).
	VNodes int
	// Datasets maps dataset names to the graphs every replica serves;
	// each replica (and each Direct server) persists its own copy.
	Datasets map[string]*sage.Graph
	// Copy opens datasets heap-copied instead of memory-mapped.
	Copy bool
	// NoWAL disables per-replica durability (the default is a WAL under
	// the always-fsync policy, so a Kill loses nothing acknowledged).
	NoWAL bool
	// RouterCacheEntries enables the router's result cache (0: disabled).
	RouterCacheEntries int
	// RetryBackoff is the router's failover pause / quarantine window
	// (0: 10ms — short, so fault tests spend no real time waiting).
	RetryBackoff time.Duration
	// ProbeInterval enables background health probing (0: disabled —
	// passive detection keeps tests deterministic; fault tests that want
	// a probe call Cluster.ProbeAll themselves).
	ProbeInterval time.Duration
}

// Replica is one replica server and its private data directory.
type Replica struct {
	// Name is the replica's ring identity ("r0", "r1", ...).
	Name string
	// Dir holds this replica's dataset files and WAL segments.
	Dir string

	paths map[string]string // dataset name -> file path in Dir
	cfg   server.Config
	srv   atomic.Pointer[server.Server]
	down  atomic.Bool
	hs    *httptest.Server
}

// ServeHTTP aborts every connection while the replica is killed and
// delegates to the current server.Server otherwise.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r.down.Load() {
		panic(http.ErrAbortHandler)
	}
	r.srv.Load().ServeHTTP(w, req)
}

// URL is the replica's base URL.
func (r *Replica) URL() string { return r.hs.URL }

// Server is the replica's current server.Server (swapped by Restart).
func (r *Replica) Server() *server.Server { return r.srv.Load() }

// Path returns the replica-local file backing dataset name.
func (r *Replica) Path(dataset string) string { return r.paths[dataset] }

// Kill simulates a crash: from now every connection to this replica
// aborts mid-request. The crashed server is abandoned un-closed — its
// disk state is whatever the WAL policy made durable.
func (r *Replica) Kill() { r.down.Store(true) }

// Restart simulates the crashed process coming back: a fresh
// server.Server over the same files, WAL replayed, then the listener
// accepts again. It reports how many batches the replay recovered.
func (r *Replica) Restart(t testing.TB) int {
	t.Helper()
	if old := r.srv.Load(); old != nil {
		// The in-process stand-in for process death: release the crashed
		// server's file handles so the restarted one owns the WAL alone.
		// Under the always policy the flush-on-close writes nothing new,
		// so the disk state is still the crash state.
		_ = old.Close()
	}
	s := newServer(t, r.cfg, r.paths)
	replayed, _ := s.Recover()
	r.srv.Store(s)
	r.down.Store(false)
	return replayed
}

// Cluster is the assembled fixture: replicas, router, and both wrapped
// in running httptest servers.
type Cluster struct {
	// Replicas in ring-name order ("r0", "r1", ...).
	Replicas []*Replica
	// Router is the in-process router (for Owners and metrics).
	Router *cluster.Router
	// Front is the router's HTTP listener; Front.URL is the cluster's
	// client-facing base URL.
	Front *httptest.Server

	opts Options
}

// newServer builds one replica (or direct) server over the given
// dataset files.
func newServer(t testing.TB, cfg server.Config, paths map[string]string) *server.Server {
	t.Helper()
	s := server.New(cfg)
	for name, path := range paths {
		if err := s.AddDataset(name, path); err != nil {
			t.Fatalf("clustertest: add dataset %q: %v", name, err)
		}
	}
	return s
}

// persist writes each dataset graph into dir, returning name -> path.
func persist(t testing.TB, dir string, datasets map[string]*sage.Graph) map[string]string {
	t.Helper()
	paths := make(map[string]string, len(datasets))
	for name, g := range datasets {
		p := filepath.Join(dir, name+".sg")
		if err := sage.Create(p, g); err != nil {
			t.Fatalf("clustertest: create %q: %v", name, err)
		}
		paths[name] = p
	}
	return paths
}

func (o *Options) serverConfig() server.Config {
	cfg := server.Config{CopyDatasets: o.Copy}
	if !o.NoWAL {
		cfg.Durability = server.Durability{Enabled: true} // wal.SyncAlways
	}
	return cfg
}

// New assembles the cluster and registers cleanup on t.
func New(t testing.TB, opts Options) *Cluster {
	t.Helper()
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Replication <= 0 {
		opts.Replication = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 10 * time.Millisecond
	}
	c := &Cluster{opts: opts}
	peers := make([]cluster.Peer, opts.Replicas)
	for i := 0; i < opts.Replicas; i++ {
		r := &Replica{
			Name: "r" + strconv.Itoa(i),
			Dir:  t.TempDir(),
			cfg:  opts.serverConfig(),
		}
		r.paths = persist(t, r.Dir, opts.Datasets)
		s := newServer(t, r.cfg, r.paths)
		if _, degraded := s.Recover(); len(degraded) != 0 {
			t.Fatalf("clustertest: replica %s degraded at startup: %v", r.Name, degraded)
		}
		r.srv.Store(s)
		r.hs = httptest.NewServer(r)
		t.Cleanup(func() {
			r.hs.Close()
			if !r.down.Load() {
				_ = r.srv.Load().Close()
			}
		})
		peers[i] = cluster.Peer{Name: r.Name, URL: r.hs.URL}
		c.Replicas = append(c.Replicas, r)
	}

	probe := opts.ProbeInterval
	if probe == 0 {
		probe = -1 // fixture default: passive only
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:         peers,
		VNodes:        opts.VNodes,
		Replication:   opts.Replication,
		ProbeInterval: probe,
		RetryBackoff:  opts.RetryBackoff,
		CacheEntries:  opts.RouterCacheEntries,
	})
	if err != nil {
		t.Fatalf("clustertest: router: %v", err)
	}
	rt.Start()
	c.Router = rt
	c.Front = httptest.NewServer(rt)
	t.Cleanup(func() {
		c.Front.Close()
		rt.Close()
	})
	return c
}

// URL is the router's client-facing base URL.
func (c *Cluster) URL() string { return c.Front.URL }

// ProbeAll runs one synchronous health sweep over every replica.
func (c *Cluster) ProbeAll() { c.Router.ProbeNow() }

// Replica returns the named replica.
func (c *Cluster) Replica(name string) *Replica {
	for _, r := range c.Replicas {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Owners is dataset's replica preference list under the fixture's ring
// (primary first).
func (c *Cluster) Owners(dataset string) []*Replica {
	names := c.Router.Owners(dataset)
	out := make([]*Replica, len(names))
	for i, n := range names {
		out[i] = c.Replica(n)
	}
	return out
}

// Direct builds a fresh single-process server over its own copies of
// the fixture's datasets — the reference the differential suite
// compares routed responses against. Same server configuration, no
// router in the path.
func (c *Cluster) Direct(t testing.TB) *httptest.Server {
	t.Helper()
	paths := persist(t, t.TempDir(), c.opts.Datasets)
	s := newServer(t, c.opts.serverConfig(), paths)
	if _, degraded := s.Recover(); len(degraded) != 0 {
		t.Fatalf("clustertest: direct server degraded at startup: %v", degraded)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		_ = s.Close()
	})
	return hs
}
