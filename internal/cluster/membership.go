package cluster

// Replica membership and health. The router's routing decisions need one
// bit per peer — route to it or around it — refreshed two ways: passively
// (a transport failure while proxying marks the peer down and starts a
// quarantine window) and actively (a background prober GETs each peer's
// /readyz, so a replica that drains, crashes, or rejoins flips state even
// when no request happens to touch it). A quarantined peer is retried
// once its window elapses, so a restarted replica rejoins without any
// registration step: the first successful probe or proxied request marks
// it healthy again.

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Peer names one replica endpoint.
type Peer struct {
	// Name is the replica's ring identity; placement follows it, so keep
	// it stable across restarts (a renamed replica is a membership change
	// that moves keys).
	Name string
	// URL is the replica's base URL ("http://10.0.0.7:8080").
	URL string
}

// ParsePeers parses the -peers flag syntax: comma-separated name=url.
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok || name == "" || rawURL == "" {
			return nil, fmt.Errorf("cluster: peer %q: want name=url", part)
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: %q is not an absolute URL", name, rawURL)
		}
		peers = append(peers, Peer{Name: name, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers given")
	}
	return peers, nil
}

// peerState is one replica's live routing state.
type peerState struct {
	name string
	url  string

	// healthy is the routing bit. Peers start healthy (optimistically:
	// the first failed request or probe corrects it) so a router can come
	// up before its replicas finish binding.
	healthy atomic.Bool
	// quarantinedUntil (unix nanos) holds the end of the backoff window
	// after a failure; until then the peer is skipped when any healthy
	// alternative exists, after it the peer is eligible again (and the
	// next contact re-decides its state).
	quarantinedUntil atomic.Int64

	failures   atomic.Int64 // transport failures observed (metrics)
	probes     atomic.Int64 // health probes issued (metrics)
	probeFails atomic.Int64 // probes that found the peer not ready
}

// membership tracks every configured peer's health.
type membership struct {
	peers   map[string]*peerState
	order   []string // configured order, for stable listings
	client  *http.Client
	backoff time.Duration // quarantine window after a failure

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newMembership(peers []Peer, client *http.Client, backoff time.Duration) (*membership, error) {
	m := &membership{
		peers:   make(map[string]*peerState, len(peers)),
		client:  client,
		backoff: backoff,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, p := range peers {
		if _, dup := m.peers[p.Name]; dup {
			return nil, fmt.Errorf("cluster: peer %q configured twice", p.Name)
		}
		ps := &peerState{name: p.Name, url: p.URL}
		ps.healthy.Store(true)
		m.peers[p.Name] = ps
		m.order = append(m.order, p.Name)
	}
	return m, nil
}

// peer resolves a ring member name to its state.
func (m *membership) peer(name string) *peerState { return m.peers[name] }

// healthyCount reports how many peers are currently marked healthy.
func (m *membership) healthyCount() int {
	n := 0
	for _, ps := range m.peers {
		if ps.healthy.Load() {
			n++
		}
	}
	return n
}

// markDown records a failed contact: the peer is unhealthy and
// quarantined for the backoff window.
func (m *membership) markDown(ps *peerState) {
	ps.failures.Add(1)
	ps.healthy.Store(false)
	ps.quarantinedUntil.Store(time.Now().Add(m.backoff).UnixNano())
}

// markUp records a successful contact.
func (m *membership) markUp(ps *peerState) { ps.healthy.Store(true) }

// eligible reports whether the peer should be tried: healthy, or
// unhealthy with its quarantine window elapsed (the retry that lets a
// recovered replica rejoin).
func (m *membership) eligible(ps *peerState) bool {
	return ps.healthy.Load() || time.Now().UnixNano() >= ps.quarantinedUntil.Load()
}

// probe GETs the peer's /readyz and updates its state: only a 200 counts
// as routable (a draining or WAL-replaying replica answers 503 and must
// not receive new work).
func (m *membership) probe(ps *peerState) bool {
	ps.probes.Add(1)
	resp, err := m.client.Get(ps.url + "/readyz")
	if err != nil {
		ps.probeFails.Add(1)
		m.markDown(ps)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ps.probeFails.Add(1)
		m.markDown(ps)
		return false
	}
	m.markUp(ps)
	return true
}

// probeAll probes every peer once (startup and the background loop).
func (m *membership) probeAll() {
	for _, name := range m.order {
		m.probe(m.peers[name])
	}
}

// start launches the background prober at the given interval; a
// non-positive interval disables it (passive health only).
func (m *membership) start(interval time.Duration) {
	if interval <= 0 {
		close(m.done)
		return
	}
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.probeAll()
			}
		}
	}()
}

// close stops the background prober and waits for it to exit.
func (m *membership) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// peerInfo is one peer's /metrics and /v1/cluster rendering.
type peerInfo struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Failures   int64  `json:"failures,omitempty"`
	Probes     int64  `json:"probes,omitempty"`
	ProbeFails int64  `json:"probe_fails,omitempty"`
}

// info lists every peer's state in configured order.
func (m *membership) info() []peerInfo {
	out := make([]peerInfo, 0, len(m.order))
	for _, name := range m.order {
		ps := m.peers[name]
		out = append(out, peerInfo{
			Name:       ps.name,
			URL:        ps.url,
			Healthy:    ps.healthy.Load(),
			Failures:   ps.failures.Load(),
			Probes:     ps.probes.Load(),
			ProbeFails: ps.probeFails.Load(),
		})
	}
	return out
}
