package store

// Whitespace edge-list text: one "u v" (or "u v w") arc per line with '#'
// comment lines — the interchange format of SNAP and most graph corpora.
// Graphs in this repo are symmetric, so the encoder emits each undirected
// edge once (u < v) and the decoder symmetrizes, deduplicates, and drops
// self loops while building. A leading "# sage-edgelist n=<n>" comment
// (written by the encoder, optional on read) pins the vertex count so
// graphs with trailing isolated vertices round-trip; without it n is
// inferred as max endpoint + 1.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sage/internal/graph"
)

// sniffEdgeList accepts files whose first non-blank character is a digit
// or a '#' comment — loose on purpose, which is why it is registered last.
func sniffEdgeList(prefix []byte) bool {
	for _, c := range prefix {
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			continue
		case c == '#' || (c >= '0' && c <= '9'):
			return true
		default:
			return false
		}
	}
	return false
}

func decodeEdgeList(a *graph.Arena) (*Dataset, bool, error) {
	b := a.Bytes()
	g, err := readEdgeList(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		return nil, false, err
	}
	return &Dataset{csr: g}, false, nil
}

func encodeEdgeList(w io.Writer, d *Dataset) error {
	if d.csr == nil {
		return fmt.Errorf("%w: the edge-list format stores only CSR graphs (use %q)",
			ErrCompressed, FormatBinary)
	}
	g := d.csr
	n := g.NumVertices()
	weighted := g.Weighted()
	wflag := 0
	if weighted {
		wflag = 1
	}
	if _, err := fmt.Fprintf(w, "# sage-edgelist n=%d weighted=%d\n", n, wflag); err != nil {
		return err
	}
	for v := uint32(0); v < n; v++ {
		nghs := g.Neighbors(v)
		ws := g.NeighborWeights(v)
		for i, u := range nghs {
			if u < v {
				continue // the (u, v) direction already emitted this edge
			}
			var err error
			if weighted {
				_, err = fmt.Fprintf(w, "%d %d %d\n", v, u, ws[i])
			} else {
				_, err = fmt.Fprintf(w, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// maxPlausibleVertices bounds the vertex count a headerless edge list
// may imply relative to its size in bytes: up to 4M vertices are
// accepted unconditionally, beyond that the file must carry edge text
// roughly proportional to n. Without the bound a 12-byte hostile input
// naming vertex 4e9 would force a multi-gigabyte CSR allocation before
// any edge is read. A "# sage-edgelist n=" header is exempt — it is how
// the encoder round-trips sparse graphs whose vertex count legitimately
// dwarfs their edge text, so declared counts are honored up to uint32
// (the graph then genuinely needs O(n) memory, as it would from any
// format).
func maxPlausibleVertices(size int64) uint64 {
	const floor = 1 << 22
	if size < 0 {
		return math.MaxUint32 // unsized reader: no basis for a bound
	}
	if bound := 4 * uint64(size); bound > floor {
		return bound
	}
	return floor
}

// readEdgeList parses the edge-list text into a symmetrized CSR graph.
// size is the input length in bytes (the plausibility bound's basis), or
// negative when unknown.
func readEdgeList(r io.Reader, size int64) (*graph.Graph, error) {
	maxN := maxPlausibleVertices(size)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		edges    []graph.WEdge
		weighted = -1 // -1 unknown, 0 plain, 1 weighted
		declared = int64(-1)
		maxV     uint32
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			parseEdgeListHeader(line, &declared, &weighted)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("edgelist line %d: %d fields, want 2 or 3", lineNo, len(fields))
		}
		hasW := len(fields) == 3
		switch weighted {
		case -1:
			weighted = 0
			if hasW {
				weighted = 1
			}
		case 0:
			if hasW {
				return nil, fmt.Errorf("edgelist line %d: weight on an unweighted list", lineNo)
			}
		case 1:
			if !hasW {
				return nil, fmt.Errorf("edgelist line %d: missing weight", lineNo)
			}
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %w", lineNo, err)
		}
		var wt int64 = 1
		if hasW {
			if wt, err = strconv.ParseInt(fields[2], 10, 32); err != nil {
				return nil, fmt.Errorf("edgelist line %d: %w", lineNo, err)
			}
		}
		maxV = max(maxV, max(uint32(u), uint32(v)))
		edges = append(edges, graph.WEdge{U: uint32(u), V: uint32(v), W: int32(wt)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var n uint32
	if declared >= 0 {
		if declared > math.MaxUint32 {
			return nil, fmt.Errorf("edgelist: declared n=%d exceeds uint32", declared)
		}
		n = uint32(declared)
		if len(edges) > 0 && uint64(maxV) >= uint64(n) {
			return nil, fmt.Errorf("edgelist: endpoint %d out of range for declared n=%d", maxV, n)
		}
	} else if len(edges) > 0 {
		if maxV == math.MaxUint32 {
			// n = maxV+1 would wrap to 0 and the builder would index out
			// of range; the id space is one too small for this endpoint.
			return nil, fmt.Errorf("edgelist: endpoint %d needs a vertex count beyond uint32", maxV)
		}
		if uint64(maxV)+1 > maxN {
			return nil, fmt.Errorf("edgelist: endpoint %d implies an implausible vertex count for the input size (declare n with a '# sage-edgelist n=' header)", maxV)
		}
		n = maxV + 1
	}
	if weighted == 1 {
		return graph.FromWeightedEdges(n, edges, graph.BuildOpts{Symmetrize: true}), nil
	}
	plain := make([]graph.Edge, len(edges))
	for i, e := range edges {
		plain[i] = graph.Edge{U: e.U, V: e.V}
	}
	return graph.FromEdges(n, plain, graph.BuildOpts{Symmetrize: true}), nil
}

// parseEdgeListHeader extracts n= and weighted= from the sage-edgelist
// comment; other comments are ignored.
func parseEdgeListHeader(line string, declared *int64, weighted *int) {
	if !strings.HasPrefix(line, "# sage-edgelist") {
		return
	}
	for _, tok := range strings.Fields(line[len("# sage-edgelist"):]) {
		if v, ok := strings.CutPrefix(tok, "n="); ok {
			if x, err := strconv.ParseInt(v, 10, 64); err == nil && x >= 0 {
				*declared = x
			}
		}
		if v, ok := strings.CutPrefix(tok, "weighted="); ok {
			switch v {
			case "1":
				*weighted = 1
			case "0":
				*weighted = 0
			}
		}
	}
}
