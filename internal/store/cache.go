package store

// A shared cache of opened datasets. Long-lived consumers — the serving
// layer's dataset catalog, the benchmark harness's workload cache — want
// the same thing: open a stored graph once, share the (usually mmap-backed)
// dataset across many concurrent users, and close it only when nobody
// holds it and the configured budget forces it out. The cache provides
// exactly that: refcounted acquisition keyed by path, LRU eviction of idle
// entries under a simulated-word budget, and a per-path generation counter
// so higher layers can tell a reopened file from the mapping they cached
// results against.

import (
	"sync"
)

// Cache is a refcounted, budgeted cache of opened datasets keyed by path.
// All methods are safe for concurrent use.
type Cache struct {
	mu sync.Mutex
	// budgetWords caps the summed SizeWords of cached datasets; 0 means
	// unlimited. The budget is enforced against idle entries only: a
	// dataset some handle still references is never closed, so a burst of
	// concurrent acquisitions may overshoot until handles are released.
	budgetWords int64
	seq         uint64
	entries     map[string]*cacheEntry
	// gens survives eviction so a path reopened later gets a new
	// generation, invalidating anything keyed against the old mapping.
	gens      map[string]uint64
	openWords int64
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	path    string
	ds      *Dataset
	gen     uint64
	words   int64
	refs    int
	lastUse uint64
	// detached entries have been removed from the map by Invalidate while
	// some handle still referenced them: the dataset closes when the last
	// handle releases, never under a reader.
	detached bool
}

// Handle is one acquisition of a cached dataset. The dataset stays open —
// and its mmap valid — at least until Release. The generation is captured
// at acquisition: a later Bump or reopen does not change what this handle
// reports, so results computed against it stay keyed to the state it saw.
type Handle struct {
	c        *Cache
	e        *cacheEntry
	gen      uint64
	released bool
	// peek handles (AcquireCached) do not count as uses: neither the
	// acquisition nor its Release stamps recency, so monitoring reads
	// cannot perturb the LRU order real queries establish.
	peek bool
}

// NewCache returns an empty cache evicting idle datasets beyond
// budgetWords summed SizeWords (0 = never evict).
func NewCache(budgetWords int64) *Cache {
	return &Cache{
		budgetWords: budgetWords,
		entries:     map[string]*cacheEntry{},
		gens:        map[string]uint64{},
	}
}

// Acquire returns a handle on the dataset stored at path, opening it on
// first use (opts apply only to that first open; later hits share the
// original dataset regardless of opts).
func (c *Cache) Acquire(path string, opts OpenOptions) (*Handle, error) {
	c.mu.Lock()
	if e, ok := c.entries[path]; ok {
		c.hits++
		h := c.handle(e) // refs++ under the lock: eviction must not win
		c.mu.Unlock()
		return h, nil
	}
	c.misses++
	c.mu.Unlock()

	// Open outside the lock: parsing a large text graph or faulting a
	// container header must not serialize unrelated acquisitions.
	ds, err := Open(path, opts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if e, ok := c.entries[path]; ok {
		// Lost an open race; keep the incumbent and drop ours.
		h := c.handle(e)
		c.mu.Unlock()
		_ = ds.Close() // lost the insert race; the cached copy wins
		return h, nil
	}
	c.gens[path]++
	e := &cacheEntry{path: path, ds: ds, gen: c.gens[path], words: ds.SizeWords()}
	c.entries[path] = e
	c.openWords += e.words
	h := c.handle(e)
	c.evictLocked()
	c.mu.Unlock()
	return h, nil
}

// AcquireCached returns a handle only when path is already open in the
// cache; it never opens the file itself. Listings use it to report open
// datasets without forcing lazy opens. The peek does not count as a use
// for LRU purposes.
func (c *Cache) AcquireCached(path string) (*Handle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[path]
	if !ok {
		return nil, false
	}
	e.refs++
	return &Handle{c: c, e: e, gen: e.gen, peek: true}, true
}

// handle refs e and stamps its recency. Callers hold c.mu.
func (c *Cache) handle(e *cacheEntry) *Handle {
	e.refs++
	c.seq++
	e.lastUse = c.seq
	return &Handle{c: c, e: e, gen: e.gen}
}

// evictLocked closes idle LRU entries until the budget holds (or only
// referenced entries remain). Callers hold c.mu.
func (c *Cache) evictLocked() {
	for c.budgetWords > 0 && c.openWords > c.budgetWords {
		var victim *cacheEntry
		for _, e := range c.entries {
			if e.refs == 0 && (victim == nil || e.lastUse < victim.lastUse) {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.path)
		c.openWords -= victim.words
		c.evictions++
		_ = victim.ds.Close()
	}
}

// Dataset returns the cached dataset. Valid until Release.
func (h *Handle) Dataset() *Dataset { return h.e.ds }

// Generation returns the generation the handle was acquired at: 1 for
// the first open of a path, bumped every time the path is reopened after
// eviction or invalidation, and every time Bump marks the open dataset's
// derivations stale. Anything derived from the dataset (cached results,
// decoded views) keyed by (path, generation) is therefore automatically
// invalidated by a reopen or a bump, while handles acquired before the
// change keep reporting — and stay correctly keyed to — the generation
// they actually saw.
func (h *Handle) Generation() uint64 { return h.gen }

// Release returns the handle. The dataset may be evicted (and its mapping
// unmapped) any time afterwards, so the handle's graph must not be used
// again. Releasing twice panics: it would undercount some other holder's
// reference.
func (h *Handle) Release() {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if h.released {
		panic("store: dataset handle released twice")
	}
	h.released = true
	h.e.refs--
	if h.e.detached && h.e.refs == 0 {
		_ = h.e.ds.Close() // the invalidated dataset's last reader is gone
		return
	}
	if !h.peek {
		c.seq++
		h.e.lastUse = c.seq
	}
	c.evictLocked()
}

// Bump advances the generation of path without reopening it: the open
// dataset (if any) stays shared and every outstanding handle keeps its
// acquired generation, but new acquisitions see the bumped value, so
// anything keyed by (path, generation) — result caches, decoded views —
// is invalidated. Update layers call it when they change what the stored
// path logically serves (a new delta overlay generation) while the
// underlying file is untouched. It returns the new generation.
//
//sage:publish
func (c *Cache) Bump(path string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[path]++
	if e, ok := c.entries[path]; ok {
		e.gen = c.gens[path]
	}
	return c.gens[path]
}

// BumpTo raises path's generation to at least gen, returning the
// resulting generation (unchanged when already at or past gen). Like
// Bump, the open dataset stays shared and outstanding handles keep
// their acquired generation; only new acquisitions see the raise.
// Replicated update layers use it to adopt a peer's generation as a
// floor, so every replica publishes the same batch at the same
// generation and cross-replica (generation, algo, args) cache keys
// stay coherent.
//
//sage:publish
func (c *Cache) BumpTo(path string, gen uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.gens[path] {
		c.gens[path] = gen
		if e, ok := c.entries[path]; ok {
			e.gen = gen
		}
	}
	return c.gens[path]
}

// Invalidate detaches the cached dataset for path, reporting whether an
// entry was present: future Acquires reopen the file (at a bumped
// generation), while the detached dataset stays open — and every
// outstanding handle readable — until its last handle releases. Callers
// that rewrite a stored graph in place (compaction) use it so new
// requests map the new file while in-flight runs finish on the old one.
func (c *Cache) Invalidate(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[path]
	if !ok {
		return false
	}
	delete(c.entries, path)
	c.openWords -= e.words
	c.evictions++
	if e.refs == 0 {
		_ = e.ds.Close()
	} else {
		e.detached = true
	}
	return true
}

// Evict closes the idle cached dataset for path, reporting whether an
// entry was removed (false when absent or still referenced). Callers
// about to rewrite a stored graph use it to drop the stale mapping.
func (c *Cache) Evict(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[path]
	if !ok || e.refs > 0 {
		return false
	}
	delete(c.entries, path)
	c.openWords -= e.words
	c.evictions++
	_ = e.ds.Close()
	return true
}

// Clear closes every idle cached dataset (entries some handle still
// references are left open) and returns the first close error.
func (c *Cache) Clear() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for path, e := range c.entries {
		if e.refs > 0 {
			continue
		}
		delete(c.entries, path)
		c.openWords -= e.words
		if err := e.ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CacheInfo is a counters snapshot for monitoring endpoints (the JSON
// names are the wire format of sage-serve's /metrics).
type CacheInfo struct {
	// Open counts datasets currently open; OpenWords sums their
	// SizeWords.
	Open      int   `json:"open"`
	OpenWords int64 `json:"open_words"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Info returns current cache counters.
func (c *Cache) Info() CacheInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheInfo{
		Open:      len(c.entries),
		OpenWords: c.openWords,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
