package store

// Native fuzz targets for the three parsers that consume untrusted
// bytes: the edge-list text decoder, the Ligra adjacency text decoder,
// and the v2 container section table. Each target asserts the parser's
// contract — reject with an error or return a structurally sound graph,
// never panic or over-allocate — and, where an encoder exists, that an
// accepted input round-trips. The seed corpus reproduces the handcrafted
// malformed cases of io_malformed_test.go plus valid encodings of every
// representation. CI runs each target briefly (-fuzztime smoke) on every
// push; `go test -fuzz` digs deeper locally.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"sage/internal/compress"
	"sage/internal/graph"
)

// walkAdj touches every vertex's degree and full adjacency, failing on
// out-of-range endpoints — the invariant that makes a parsed graph safe
// to hand to the traversal layer.
func walkAdj(t *testing.T, a graph.Adj) {
	n := a.NumVertices()
	var arcs uint64
	for v := uint32(0); v < n; v++ {
		deg := a.Degree(v)
		arcs += uint64(deg)
		a.IterRange(v, 0, deg, func(_, ngh uint32, _ int32) bool {
			if ngh >= n {
				t.Fatalf("vertex %d has out-of-range neighbor %d (n=%d)", v, ngh, n)
			}
			return true
		})
	}
	if arcs != a.NumEdges() {
		t.Fatalf("degree sum %d != m %d", arcs, a.NumEdges())
	}
}

func FuzzEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# sage-edgelist n=6 weighted=1\n0 1 4\n1 2 -7\n"))
	f.Add([]byte("# sage-edgelist n=2\n\n  \n0 1\n"))
	f.Add([]byte("0 1\n1 2 9\n"))                       // weight appears late
	f.Add([]byte("# sage-edgelist n=1\n5 6\n"))         // endpoint out of declared range
	f.Add([]byte("# sage-edgelist n=99999999999999\n")) // n beyond uint32
	f.Add([]byte("4294967295 0\n"))                     // max endpoint
	f.Add([]byte("0 1 2 3\n"))                          // too many fields
	f.Add([]byte("a b\n"))                              // non-numeric
	f.Fuzz(func(t *testing.T, data []byte) {
		// A declared "# sage-edgelist n=" header is honored up to uint32
		// by design (it is how the encoder round-trips sparse graphs),
		// so a fuzzed giant declaration would legitimately allocate O(n)
		// — skip those inputs instead of timing out on the allocation.
		declared, weighted := int64(-1), -1
		for _, line := range strings.Split(string(data), "\n") {
			parseEdgeListHeader(strings.TrimSpace(line), &declared, &weighted)
		}
		if declared > 1<<22 {
			return
		}
		g, err := readEdgeList(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		walkAdj(t, g)
		// Accepted inputs round-trip: encode and re-parse to an
		// identical shape (the encoder writes the pinning header, so n
		// survives even with trailing isolated vertices).
		var buf bytes.Buffer
		if err := encodeEdgeList(&buf, NewDataset(g, nil)); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		g2, err := readEdgeList(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("re-parse of encoded graph failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: n %d->%d m %d->%d",
				g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
		}
	})
}

func FuzzAdjText(f *testing.F) {
	valid := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
		graph.BuildOpts{Symmetrize: true})
	var buf bytes.Buffer
	if err := valid.WriteText(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("AdjacencyGraph\n3\n4\n0\n2\n3\n1\n2\n0\n0\n"))
	f.Add([]byte("AdjacencyGraph\n1000000000\n1\n0\n0\n")) // huge n, tiny payload
	f.Add([]byte("WeightedAdjacencyGraph\n2\n2\n0\n1\n1\n0\n5\n5\n"))
	f.Add([]byte("AdjacencyGraph\n2\n2\n0\n1\n9\n9\n")) // out-of-range targets
	f.Add([]byte("AdjacencyGraph"))                     // header only
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		walkAdj(t, g)
	})
}

// containerSeeds builds valid v2 containers for both representations
// plus the corrupted variants of TestContainerMalformed.
func containerSeeds(f *testing.F) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}},
		graph.BuildOpts{Symmetrize: true})
	var csr bytes.Buffer
	if err := graph.WriteContainer(&csr, g.Sections()); err != nil {
		f.Fatal(err)
	}
	f.Add(csr.Bytes())

	var cg bytes.Buffer
	if err := graph.WriteContainer(&cg, compress.Compress(g, 64).Sections()); err != nil {
		f.Fatal(err)
	}
	f.Add(cg.Bytes())

	base := csr.Bytes()
	mutations := []func(b []byte){
		func(b []byte) { b[0] ^= 0xff },                                            // bad magic
		func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 1<<20) },             // huge section count
		func(b []byte) { binary.LittleEndian.PutUint64(b[16+8:], uint64(len(b))) }, // offset at EOF
		func(b []byte) { binary.LittleEndian.PutUint64(b[16+8:], 20) },             // misaligned offset
	}
	for _, corrupt := range mutations {
		b := append([]byte(nil), base...)
		corrupt(b)
		f.Add(b)
	}
	f.Add(base[:10]) // truncated
}

func FuzzContainer(f *testing.F) {
	containerSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		secs, err := graph.ParseContainer(data)
		if err != nil {
			return
		}
		h, err := graph.ParseHeader(secs)
		if err != nil {
			return
		}
		// Decode without forcing a copy — the zero-copy alias path is
		// exactly what a corrupt mmap-opened file exercises. The decode
		// contract covers framing and all vertex-proportional metadata
		// (section lengths, offset monotonicity and base, degree sums);
		// the edge payload itself is deliberately NOT scanned — doing so
		// would fault in every page of a lazily mapped file — so this
		// target asserts the metadata invariants and does not walk the
		// adjacency. (The text parsers validate edge content fully and
		// their targets do walk it.)
		var adj graph.Adj
		if h.Compressed() {
			cg, err := compress.CGraphFromSections(secs, h, false)
			if err != nil {
				return
			}
			adj = cg
		} else {
			csr, err := graph.CSRFromSections(secs, h, false)
			if err != nil {
				return
			}
			adj = csr
		}
		if adj.NumVertices() != h.N || adj.NumEdges() != h.M {
			t.Fatalf("decoded shape n=%d m=%d disagrees with header n=%d m=%d",
				adj.NumVertices(), adj.NumEdges(), h.N, h.M)
		}
		var degSum uint64
		for v := uint32(0); v < adj.NumVertices(); v++ {
			degSum += uint64(adj.Degree(v))
		}
		if degSum != adj.NumEdges() {
			t.Fatalf("degree sum %d != m %d", degSum, adj.NumEdges())
		}
	})
}
