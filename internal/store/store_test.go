package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"sage/internal/compress"
	"sage/internal/graph"
)

// testGraphs builds the CSR corpus the round-trip tests cover: the
// degenerate shapes (empty, single vertex) plus small weighted and
// unweighted symmetric graphs.
func testGraphs() map[string]*graph.Graph {
	tri := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}
	wtri := []graph.WEdge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 9}, {U: 2, V: 3, W: 1}}
	return map[string]*graph.Graph{
		"empty":      graph.FromEdges(0, nil, graph.BuildOpts{Symmetrize: true}),
		"singleton":  graph.FromEdges(1, nil, graph.BuildOpts{Symmetrize: true}),
		"unweighted": graph.FromEdges(5, tri, graph.BuildOpts{Symmetrize: true}),
		"weighted":   graph.FromWeightedEdges(5, wtri, graph.BuildOpts{Symmetrize: true}),
	}
}

// csrEqual compares two CSR graphs field by field.
func csrEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got n=%d m=%d, want n=%d m=%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	if got.Weighted() != want.Weighted() {
		t.Fatalf("weighted: got %v want %v", got.Weighted(), want.Weighted())
	}
	for v := uint32(0); v < want.NumVertices(); v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("vertex %d: degree %d want %d", v, len(gn), len(wn))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("vertex %d neighbor %d: %d want %d", v, i, gn[i], wn[i])
			}
		}
		gw, ww := got.NeighborWeights(v), want.NeighborWeights(v)
		for i := range ww {
			if gw[i] != ww[i] {
				t.Fatalf("vertex %d weight %d: %d want %d", v, i, gw[i], ww[i])
			}
		}
	}
}

// TestCSRRoundTripAllFormats writes every test graph in every writable
// format and reads it back, in both the mmap and copy modes.
func TestCSRRoundTripAllFormats(t *testing.T) {
	dir := t.TempDir()
	for gname, g := range testGraphs() {
		for _, fname := range Names() {
			for _, copyMode := range []bool{false, true} {
				path := filepath.Join(dir, gname+"-"+fname+".x")
				if err := Create(path, NewDataset(g, nil), fname); err != nil {
					t.Fatalf("%s as %s: create: %v", gname, fname, err)
				}
				ds, err := Open(path, OpenOptions{Format: fname, Copy: copyMode})
				if err != nil {
					t.Fatalf("%s as %s (copy=%v): open: %v", gname, fname, copyMode, err)
				}
				if ds.CSR() == nil {
					t.Fatalf("%s as %s: decoded as compressed", gname, fname)
				}
				csrEqual(t, ds.CSR(), g)
				if copyMode && ds.Mapped() {
					t.Fatalf("%s as %s: copy mode produced a mapping", gname, fname)
				}
				if err := ds.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
			}
		}
	}
}

// TestCompressedRoundTrip round-trips compressed graphs (weighted and
// not) through the v2 container and checks byte identity of a re-encode.
func TestCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, gname := range []string{"empty", "singleton", "unweighted", "weighted"} {
		g := testGraphs()[gname]
		cg := compress.Compress(g, 2) // tiny blocks exercise multi-block vertices
		path := filepath.Join(dir, gname+".sg")
		if err := Create(path, NewDataset(nil, cg), FormatBinary); err != nil {
			t.Fatalf("%s: create: %v", gname, err)
		}
		ds, err := Open(path, OpenOptions{})
		if err != nil {
			t.Fatalf("%s: open: %v", gname, err)
		}
		got := ds.CG()
		if got == nil {
			t.Fatalf("%s: decoded as CSR", gname)
		}
		if got.NumVertices() != cg.NumVertices() || got.NumEdges() != cg.NumEdges() ||
			got.BlockSize() != cg.BlockSize() || got.Weighted() != cg.Weighted() ||
			!bytes.Equal(got.Data(), cg.Data()) {
			t.Fatalf("%s: compressed payload drifted", gname)
		}
		// Re-encoding the reopened graph must reproduce the file byte for
		// byte: nothing is re-encoded along the way.
		path2 := filepath.Join(dir, gname+"-2.sg")
		if err := Create(path2, NewDataset(nil, got), FormatBinary); err != nil {
			t.Fatalf("%s: re-create: %v", gname, err)
		}
		b1, _ := os.ReadFile(path)
		b2, _ := os.ReadFile(path2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: round trip not byte-identical (%d vs %d bytes)", gname, len(b1), len(b2))
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompressedTextFormatsRejected verifies the CSR-only encoders fail
// with the shared ErrCompressed sentinel.
func TestCompressedTextFormatsRejected(t *testing.T) {
	cg := compress.Compress(testGraphs()["unweighted"], 64)
	dir := t.TempDir()
	for _, fname := range []string{FormatBinaryV1, FormatAdj, FormatEdgeList} {
		err := Create(filepath.Join(dir, "c.x"), NewDataset(nil, cg), fname)
		if !errors.Is(err, ErrCompressed) {
			t.Fatalf("%s: err = %v, want ErrCompressed", fname, err)
		}
	}
}

// TestSniffing opens every format without a format hint and with a
// non-committal extension, so only the content sniffers can pick it.
func TestSniffing(t *testing.T) {
	g := testGraphs()["weighted"]
	dir := t.TempDir()
	for _, fname := range Names() {
		path := filepath.Join(dir, "sniff-"+fname+".dat")
		if err := Create(path, NewDataset(g, nil), fname); err != nil {
			t.Fatal(err)
		}
		ds, err := Open(path, OpenOptions{})
		if err != nil {
			t.Fatalf("sniffing %s: %v", fname, err)
		}
		csrEqual(t, ds.CSR(), g)
		_ = ds.Close()
	}
}

// TestExtensionFallback covers files whose content no sniffer claims...
// there are none (every built-in format sniffs), so instead verify that
// Create with no explicit format follows the extension.
func TestExtensionFallback(t *testing.T) {
	g := testGraphs()["unweighted"]
	dir := t.TempDir()
	cases := map[string]string{
		"g.sg": FormatBinary, "g.adj": FormatAdj, "g.el": FormatEdgeList,
		"g.sg1": FormatBinaryV1, "g.noext": FormatBinary,
	}
	for file, wantFormat := range cases {
		path := filepath.Join(dir, file)
		if err := Create(path, NewDataset(g, nil), ""); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Detect(b[:min(len(b), 64)], path)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if f.Name != wantFormat {
			t.Fatalf("%s: wrote %s, want %s", file, f.Name, wantFormat)
		}
	}
}

// TestZeroCopyAliasing pins the zero-copy claim: the opened CSR's offsets
// and edges arrays must point inside the arena's mapping, not at heap
// copies — and in copy mode they must NOT alias the arena.
func TestZeroCopyAliasing(t *testing.T) {
	g := testGraphs()["weighted"]
	path := filepath.Join(t.TempDir(), "alias.sg")
	if err := Create(path, NewDataset(g, nil), FormatBinary); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.arena == nil {
		t.Fatal("binary open did not retain the arena")
	}
	inArena := func(p unsafe.Pointer) bool {
		b := ds.arena.Bytes()
		lo := uintptr(unsafe.Pointer(&b[0]))
		return uintptr(p) >= lo && uintptr(p) < lo+uintptr(len(b))
	}
	csr := ds.CSR()
	if !inArena(unsafe.Pointer(&csr.Offsets()[0])) {
		t.Error("offsets do not alias the arena")
	}
	if !inArena(unsafe.Pointer(&csr.Edges()[0])) {
		t.Error("edges do not alias the arena")
	}

	// Compressed graphs alias too: degrees, vertex offsets, and data.
	cpath := filepath.Join(t.TempDir(), "alias-c.sg")
	cg := compress.Compress(g, 2)
	if err := Create(cpath, NewDataset(nil, cg), FormatBinary); err != nil {
		t.Fatal(err)
	}
	cds, err := Open(cpath, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cds.Close()
	cb := cds.arena.Bytes()
	cin := func(p unsafe.Pointer) bool {
		lo := uintptr(unsafe.Pointer(&cb[0]))
		return uintptr(p) >= lo && uintptr(p) < lo+uintptr(len(cb))
	}
	ccg := cds.CG()
	if !cin(unsafe.Pointer(&ccg.Degrees()[0])) || !cin(unsafe.Pointer(&ccg.VtxOff()[0])) ||
		!cin(unsafe.Pointer(&ccg.Data()[0])) {
		t.Error("compressed arrays do not alias the arena")
	}

	// Copy mode: an independent heap graph.
	hds, err := Open(path, OpenOptions{Copy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer hds.Close()
	if hds.Mapped() {
		t.Error("copy mode reported a mapping")
	}
	if inArena(unsafe.Pointer(&hds.CSR().Edges()[0])) {
		t.Error("copy-mode edges alias the other dataset's arena")
	}
}

// TestDatasetCloseTwice verifies the ErrClosed lifecycle.
func TestDatasetCloseTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.sg")
	if err := Create(path, NewDataset(testGraphs()["unweighted"], nil), ""); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := ds.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: %v, want ErrClosed", err)
	}
}

// TestDetectGarbage rejects unrecognizable content with a helpful error.
func TestDetectGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.blob")
	if err := os.WriteFile(path, []byte("\x7fELF not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{}); err == nil {
		t.Fatal("garbage opened without error")
	}
}

// TestEdgeListForeign parses an unannotated SNAP-style list (no sage
// header): n is inferred and the graph symmetrized.
func TestEdgeListForeign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.txt")
	content := "# Directed graph: toy\n# Nodes: 4 Edges: 3\n0\t1\n1\t2\n3\t1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	g := ds.CSR()
	if g.NumVertices() != 4 || g.NumEdges() != 6 {
		t.Fatalf("n=%d m=%d, want n=4 m=6", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeListMixedWeightsRejected enforces column consistency.
func TestEdgeListMixedWeightsRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.el")
	if err := os.WriteFile(path, []byte("0 1\n1 2 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{}); err == nil {
		t.Fatal("mixed weighted/unweighted lines accepted")
	}
}

// TestUnknownFormatName covers the registry error paths.
func TestUnknownFormatName(t *testing.T) {
	if _, err := ByName("tarball"); err == nil {
		t.Fatal("unknown name resolved")
	}
	path := filepath.Join(t.TempDir(), "g.sg")
	if err := Create(path, NewDataset(testGraphs()["unweighted"], nil), "tarball"); err == nil {
		t.Fatal("create with unknown format succeeded")
	}
	if _, err := Open(path, OpenOptions{Format: "tarball"}); err == nil {
		t.Fatal("open with unknown format succeeded")
	}
}
