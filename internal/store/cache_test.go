package store_test

import (
	"path/filepath"
	"sync"
	"testing"

	"sage/internal/graph"
	"sage/internal/store"
)

// writeGraph persists a small CSR graph and returns its path and size.
func writeGraph(t *testing.T, dir, name string, n uint32) (string, int64) {
	t.Helper()
	edges := make([]graph.Edge, 0, n)
	for v := uint32(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	g := graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
	path := filepath.Join(dir, name+".sg")
	if err := store.Create(path, store.NewDataset(g, nil), store.FormatBinary); err != nil {
		t.Fatal(err)
	}
	return path, g.SizeWords()
}

func TestCacheHitSharesDataset(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGraph(t, dir, "a", 64)
	c := store.NewCache(0)
	defer c.Clear()

	h1, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Dataset() != h2.Dataset() {
		t.Fatal("second acquisition opened a second dataset")
	}
	if h1.Generation() != 1 || h2.Generation() != 1 {
		t.Fatalf("generations %d/%d, want 1/1", h1.Generation(), h2.Generation())
	}
	info := c.Info()
	if info.Open != 1 || info.Hits != 1 || info.Misses != 1 {
		t.Fatalf("info after hit: %+v", info)
	}
	h1.Release()
	h2.Release()
}

func TestCacheBudgetEvictsIdleLRU(t *testing.T) {
	dir := t.TempDir()
	pathA, wordsA := writeGraph(t, dir, "a", 64)
	pathB, _ := writeGraph(t, dir, "b", 64)
	// Budget fits one graph: opening the second evicts the idle first.
	c := store.NewCache(wordsA + 1)
	defer c.Clear()

	ha, err := c.Acquire(pathA, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ha.Release()
	hb, err := c.Acquire(pathB, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Release()
	info := c.Info()
	if info.Evictions != 1 || info.Open != 1 {
		t.Fatalf("after over-budget open: %+v", info)
	}

	// Reopening the evicted path bumps its generation.
	ha2, err := c.Acquire(pathA, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ha2.Release()
	if ha2.Generation() != 2 {
		t.Fatalf("generation after reopen = %d, want 2", ha2.Generation())
	}
}

func TestCacheNeverEvictsReferenced(t *testing.T) {
	dir := t.TempDir()
	pathA, wordsA := writeGraph(t, dir, "a", 64)
	pathB, _ := writeGraph(t, dir, "b", 64)
	c := store.NewCache(wordsA + 1)
	defer c.Clear()

	ha, err := c.Acquire(pathA, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := c.Acquire(pathB, store.OpenOptions{}) // over budget, but A is referenced
	if err != nil {
		t.Fatal(err)
	}
	if ha.Dataset().Closed() {
		t.Fatal("referenced dataset was closed by eviction")
	}
	// A's graph must still be usable while the handle is held.
	if n := ha.Dataset().Adj().NumVertices(); n != 64 {
		t.Fatalf("held dataset corrupted: n=%d", n)
	}
	hb.Release()
	ha.Release() // now idle; the deferred eviction applies
	if info := c.Info(); info.Evictions == 0 {
		t.Fatalf("no eviction after release: %+v", info)
	}
}

func TestCacheEvictAndClear(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGraph(t, dir, "a", 64)
	c := store.NewCache(0)

	h, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Evict(path) {
		t.Fatal("evicted a referenced dataset")
	}
	h.Release()
	if !c.Evict(path) {
		t.Fatal("idle dataset not evicted")
	}
	if c.Evict(path) {
		t.Fatal("evicted an absent entry")
	}

	h, err = c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds := h.Dataset()
	h.Release()
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if !ds.Closed() {
		t.Fatal("Clear left an idle dataset open")
	}
}

// TestEdgeListSparseRoundTrip pins that the encoder's compact header
// form — a huge vertex count over few edge lines — reopens through the
// decoder: the headerless plausibility bound must not apply to files
// that declare n explicitly.
func TestEdgeListSparseRoundTrip(t *testing.T) {
	const n = 5_000_000 // far beyond the headerless 4M floor
	g := graph.FromEdges(n, []graph.Edge{{U: 0, V: n - 1}, {U: 1, V: 2}},
		graph.BuildOpts{Symmetrize: true})
	path := filepath.Join(t.TempDir(), "sparse.el")
	if err := store.Create(path, store.NewDataset(g, nil), store.FormatEdgeList); err != nil {
		t.Fatal(err)
	}
	ds, err := store.Open(path, store.OpenOptions{})
	if err != nil {
		t.Fatalf("encoder output unreadable by its own decoder: %v", err)
	}
	defer ds.Close()
	if got := ds.Adj().NumVertices(); got != n {
		t.Fatalf("round trip changed n: %d, want %d", got, n)
	}
	if got := ds.Adj().NumEdges(); got != g.NumEdges() {
		t.Fatalf("round trip changed m: %d, want %d", got, g.NumEdges())
	}
}

// TestCacheConcurrentAcquire hammers one path from many goroutines (run
// under -race in CI): every handle must see the same open dataset and
// generation, and the refcounting must never close it mid-use.
func TestCacheConcurrentAcquire(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGraph(t, dir, "a", 256)
	c := store.NewCache(0)
	defer c.Clear()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				h, err := c.Acquire(path, store.OpenOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				if h.Generation() != 1 {
					t.Errorf("generation %d", h.Generation())
				}
				if h.Dataset().Adj().NumVertices() != 256 {
					t.Error("dataset corrupted under concurrency")
				}
				h.Release()
			}
		}()
	}
	wg.Wait()
	if info := c.Info(); info.Open != 1 {
		t.Fatalf("concurrent acquire left %d datasets open", info.Open)
	}
}

// TestCacheBumpKeepsHandleGenerations pins the Bump contract that the
// serving layer's update endpoint depends on: a bump invalidates the
// (path, generation) key for NEW acquisitions while handles acquired
// before the bump keep reporting the generation they actually saw — and
// their dataset stays readable.
func TestCacheBumpKeepsHandleGenerations(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGraph(t, dir, "a", 64)
	c := store.NewCache(0)
	defer c.Clear()

	h1, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Bump(path); got != 2 {
		t.Fatalf("bump returned %d, want 2", got)
	}
	h2, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Generation() != 1 || h2.Generation() != 2 {
		t.Fatalf("generations %d/%d, want 1/2", h1.Generation(), h2.Generation())
	}
	if h1.Dataset() != h2.Dataset() {
		t.Fatal("bump reopened the dataset")
	}
	if h1.Dataset().Adj().NumVertices() != 64 {
		t.Fatal("pre-bump handle unreadable")
	}
	h1.Release()
	h2.Release()

	// A later reopen continues the sequence past the bumped value.
	if !c.Evict(path) {
		t.Fatal("idle entry not evicted")
	}
	h3, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Release()
	if h3.Generation() != 3 {
		t.Fatalf("generation after bump+reopen = %d, want 3", h3.Generation())
	}
}

// TestCacheInvalidateDefersClose pins the compaction contract: after
// Invalidate, new acquisitions reopen the file at a fresh generation
// while the detached dataset stays open until its last pre-existing
// handle releases.
func TestCacheInvalidateDefersClose(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGraph(t, dir, "a", 64)
	c := store.NewCache(0)
	defer c.Clear()

	h1, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	old := h1.Dataset()
	if !c.Invalidate(path) {
		t.Fatal("invalidate found no entry")
	}
	if c.Invalidate(path) {
		t.Fatal("second invalidate found an entry")
	}
	if old.Closed() {
		t.Fatal("invalidate closed a referenced dataset")
	}

	h2, err := c.Acquire(path, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h2.Dataset() == old {
		t.Fatal("acquire after invalidate returned the detached dataset")
	}
	if h2.Generation() != 2 {
		t.Fatalf("generation after invalidate = %d, want 2", h2.Generation())
	}
	if old.Closed() {
		t.Fatal("detached dataset closed while still referenced")
	}
	if old.Adj().NumVertices() != 64 {
		t.Fatal("detached dataset unreadable")
	}
	h1.Release()
	if !old.Closed() {
		t.Fatal("detached dataset not closed by its last release")
	}
}

// TestCacheBumpRacesPinning drives generation bumps and invalidations
// against concurrent acquire/read/release cycles (run under -race in CI):
// a pinned snapshot's dataset must stay readable until released, and a
// handle's generation must never exceed one acquired after it.
func TestCacheBumpRacesPinning(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGraph(t, dir, "a", 128)
	c := store.NewCache(0)
	defer c.Clear()

	stop := make(chan struct{})
	var updater sync.WaitGroup
	var wg sync.WaitGroup
	updater.Add(1)
	go func() { // the update/compact path
		defer updater.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%5 == 4 {
				c.Invalidate(path)
			} else {
				c.Bump(path)
			}
		}
	}()
	for w := 0; w < 8; w++ { // the request path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h, err := c.Acquire(path, store.OpenOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				g1 := h.Generation()
				if h.Dataset().Closed() {
					t.Error("acquired dataset already closed")
				}
				if h.Dataset().Adj().NumVertices() != 128 {
					t.Error("pinned dataset unreadable")
				}
				h2, err := c.Acquire(path, store.OpenOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				if h2.Generation() < g1 {
					t.Errorf("generation went backwards: %d then %d", g1, h2.Generation())
				}
				if h.Dataset().Closed() || h2.Dataset().Closed() {
					t.Error("dataset closed under a live handle")
				}
				h2.Release()
				h.Release()
			}
		}()
	}
	wg.Wait()
	close(stop)
	updater.Wait()
}
