package store

// The built-in formats, registered in sniffing order (most specific magic
// first, the loose edge-list heuristic last).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"sage/internal/compress"
	"sage/internal/graph"
)

// Registry names of the built-in formats.
const (
	FormatBinary   = "bin"      // v2 section container (CSR or compressed)
	FormatBinaryV1 = "bin-v1"   // legacy flat binary (CSR only)
	FormatAdj      = "adj"      // Ligra AdjacencyGraph text
	FormatEdgeList = "edgelist" // whitespace edge-list text
)

func init() {
	Register(&Format{
		Name:       FormatBinary,
		Doc:        "Sage v2 binary container: mmap-able CSR or byte-compressed sections",
		Extensions: []string{".sg", ".bin"},
		Sniff:      sniffMagic(graph.MagicV2),
		Decode:     decodeBinary,
		Encode:     encodeBinary,
	})
	Register(&Format{
		Name:       FormatBinaryV1,
		Doc:        "legacy flat binary (CSR only)",
		Extensions: []string{".sg1"},
		Sniff:      sniffMagic(graph.MagicV1),
		Decode:     decodeBinaryV1,
		Encode:     encodeBinaryV1,
	})
	Register(&Format{
		Name:       FormatAdj,
		Doc:        "Ligra AdjacencyGraph / WeightedAdjacencyGraph text",
		Extensions: []string{".adj", ".ligra"},
		Sniff: func(prefix []byte) bool {
			return bytes.HasPrefix(prefix, []byte("AdjacencyGraph")) ||
				bytes.HasPrefix(prefix, []byte("WeightedAdjacencyGraph"))
		},
		Decode: decodeAdj,
		Encode: encodeAdj,
	})
	Register(&Format{
		Name:       FormatEdgeList,
		Doc:        "whitespace edge list (u v [w] per line, # comments)",
		Extensions: []string{".el", ".edges", ".txt"},
		Sniff:      sniffEdgeList,
		Decode:     decodeEdgeList,
		Encode:     encodeEdgeList,
	})
}

// sniffMagic matches a little-endian uint64 magic at offset 0.
func sniffMagic(magic uint64) func([]byte) bool {
	return func(prefix []byte) bool {
		return len(prefix) >= 8 && binary.LittleEndian.Uint64(prefix) == magic
	}
}

// decodeBinary decodes the v2 container; the dataset's arrays alias the
// arena (zero-copy on little-endian hosts).
func decodeBinary(a *graph.Arena) (*Dataset, bool, error) {
	secs, err := graph.ParseContainer(a.Bytes())
	if err != nil {
		return nil, false, err
	}
	h, err := graph.ParseHeader(secs)
	if err != nil {
		return nil, false, err
	}
	if h.Compressed() {
		cg, err := compress.CGraphFromSections(secs, h, false)
		if err != nil {
			return nil, false, err
		}
		return &Dataset{cg: cg}, true, nil
	}
	csr, err := graph.CSRFromSections(secs, h, false)
	if err != nil {
		return nil, false, err
	}
	return &Dataset{csr: csr}, true, nil
}

// encodeBinary writes the v2 container for either representation — the
// first format in which compressed graphs persist at all.
func encodeBinary(w io.Writer, d *Dataset) error {
	if d.csr != nil {
		return graph.WriteContainer(w, d.csr.Sections())
	}
	return graph.WriteContainer(w, d.cg.Sections())
}

// decodeBinaryV1 reads the legacy flat binary through the hardened
// ReadBinary; the arrays are heap-built, so the arena is released.
func decodeBinaryV1(a *graph.Arena) (*Dataset, bool, error) {
	g, err := graph.ReadBinary(bytes.NewReader(a.Bytes()))
	if err != nil {
		return nil, false, err
	}
	return &Dataset{csr: g}, false, nil
}

func encodeBinaryV1(w io.Writer, d *Dataset) error {
	if d.csr == nil {
		return fmt.Errorf("%w: the v1 binary format stores only CSR graphs (use %q)",
			ErrCompressed, FormatBinary)
	}
	return d.csr.WriteBinary(w)
}

func decodeAdj(a *graph.Arena) (*Dataset, bool, error) {
	g, err := graph.ReadText(bytes.NewReader(a.Bytes()))
	if err != nil {
		return nil, false, err
	}
	return &Dataset{csr: g}, false, nil
}

func encodeAdj(w io.Writer, d *Dataset) error {
	if d.csr == nil {
		return fmt.Errorf("%w: the Ligra text format stores only CSR graphs (use %q)",
			ErrCompressed, FormatBinary)
	}
	return d.csr.WriteText(w)
}
