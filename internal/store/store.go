// Package store is the storage-aware dataset layer behind sage.Open and
// sage.Create: a registry of on-disk graph formats (the v2 section
// container for CSR and byte-compressed graphs, the legacy v1 flat binary,
// Ligra adjacency text, and whitespace edge lists) with magic-byte and
// extension sniffing, and a Dataset lifecycle that ties a decoded graph to
// the read-only arena backing it.
//
// For the binary container the decoded graph's offsets/edges/weights (or
// degrees/vtxoff/data) slices alias the arena's memory mapping directly —
// the App-Direct "graph lives on NVRAM, consumed in place" configuration
// made literal — so Close must outlive every use of the graph.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"sage/internal/compress"
	"sage/internal/graph"
)

// ErrCompressed is the shared sentinel for operations that require the
// uncompressed CSR representation (text encoders, relabeling, weighting).
var ErrCompressed = errors.New("graph is byte-compressed")

// ErrClosed reports use of a dataset after Close.
var ErrClosed = errors.New("dataset is closed")

// Dataset is an opened graph plus the storage backing it. Exactly one of
// CSR and CG is non-nil.
type Dataset struct {
	csr    *graph.Graph
	cg     *compress.CGraph
	arena  *graph.Arena // non-nil when the graph's arrays may alias it
	closed atomic.Bool
}

// NewDataset wraps an in-memory graph (no backing arena) as a dataset,
// for encoding. Exactly one of csr and cg must be non-nil.
func NewDataset(csr *graph.Graph, cg *compress.CGraph) *Dataset {
	return &Dataset{csr: csr, cg: cg}
}

// CSR returns the uncompressed representation, or nil.
func (d *Dataset) CSR() *graph.Graph { return d.csr }

// CG returns the byte-compressed representation, or nil.
func (d *Dataset) CG() *compress.CGraph { return d.cg }

// Adj returns the graph under the shared adjacency interface.
func (d *Dataset) Adj() graph.Adj {
	if d.csr != nil {
		return d.csr
	}
	return d.cg
}

// SizeWords returns the simulated NVRAM footprint of the stored graph —
// the unit the dataset cache budgets in.
func (d *Dataset) SizeWords() int64 {
	if d.csr != nil {
		return d.csr.SizeWords()
	}
	return d.cg.SizeWords()
}

// Mapped reports whether the dataset's arrays alias a live memory mapping
// of the source file.
func (d *Dataset) Mapped() bool { return d.arena != nil && d.arena.Mapped() }

// Closed reports whether Close has been called.
func (d *Dataset) Closed() bool { return d.closed.Load() }

// Close releases the backing arena. After Close, a mapped dataset's graph
// slices are invalid and must not be touched. Closing twice returns
// ErrClosed.
func (d *Dataset) Close() error {
	if d.closed.Swap(true) {
		return ErrClosed
	}
	if d.arena != nil {
		return d.arena.Close()
	}
	return nil
}

// Format describes one registered on-disk graph format.
type Format struct {
	// Name is the registry key (the -format CLI value).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Extensions are the file extensions (with dot) the format claims when
	// writing and as a sniffing tie-break when reading.
	Extensions []string
	// Sniff reports whether the leading bytes of a file are this format.
	// Sniffers are tried in registration order, most specific first.
	Sniff func(prefix []byte) bool
	// Decode builds a dataset from an opened arena. keepArena reports
	// whether the dataset's arrays may alias the arena (binary formats);
	// when false the caller closes the arena immediately after decoding.
	Decode func(a *graph.Arena) (ds *Dataset, keepArena bool, err error)
	// Encode writes the dataset, or is nil for read-only formats.
	Encode func(w io.Writer, d *Dataset) error
}

// formats is the ordered registry (sniffing order).
var formats []*Format

// Register appends a format to the registry. Duplicate names panic (a
// program-wiring bug, not an input error).
func Register(f *Format) {
	for _, g := range formats {
		if g.Name == f.Name {
			panic("store: duplicate format " + f.Name)
		}
	}
	formats = append(formats, f)
}

// ByName returns the named format.
func ByName(name string) (*Format, error) {
	for _, f := range formats {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("store: unknown format %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names returns the registered format names in sniffing order.
func Names() []string {
	out := make([]string, len(formats))
	for i, f := range formats {
		out[i] = f.Name
	}
	return out
}

// Describe returns "name\tdoc" lines for CLI listings.
func Describe() []string {
	out := make([]string, len(formats))
	for i, f := range formats {
		exts := strings.Join(f.Extensions, ",")
		out[i] = fmt.Sprintf("%-10s %s (%s)", f.Name, f.Doc, exts)
	}
	return out
}

// byExtension returns the format claiming path's extension, or nil.
func byExtension(path string) *Format {
	ext := strings.ToLower(filepath.Ext(path))
	if ext == "" {
		return nil
	}
	for _, f := range formats {
		for _, e := range f.Extensions {
			if e == ext {
				return f
			}
		}
	}
	return nil
}

// Detect picks the format for a file from its leading bytes, falling back
// to the path extension when no sniffer claims it.
func Detect(prefix []byte, path string) (*Format, error) {
	for _, f := range formats {
		if f.Sniff != nil && f.Sniff(prefix) {
			return f, nil
		}
	}
	if f := byExtension(path); f != nil {
		return f, nil
	}
	return nil, fmt.Errorf("store: cannot determine the format of %s (known formats: %s)",
		path, strings.Join(Names(), ", "))
}

// OpenOptions configures Open.
type OpenOptions struct {
	// Format overrides sniffing with an explicit registry name.
	Format string
	// Copy forces the heap-resident path: the file is read (not mapped)
	// into an aligned private buffer.
	Copy bool
}

// Open opens the graph stored at path. Binary formats are memory-mapped
// (unless opts.Copy or the platform lacks mmap) with the graph arrays
// aliasing the mapping; text formats are parsed into heap arrays.
func Open(path string, opts OpenOptions) (*Dataset, error) {
	a, err := graph.OpenArena(path, opts.Copy)
	if err != nil {
		return nil, err
	}
	var f *Format
	if opts.Format != "" {
		f, err = ByName(opts.Format)
	} else {
		b := a.Bytes()
		f, err = Detect(b[:min(len(b), 64)], path)
	}
	if err != nil {
		_ = a.Close()
		return nil, err
	}
	ds, keep, err := f.Decode(a)
	if err != nil {
		_ = a.Close()
		return nil, fmt.Errorf("store: %s as %s: %w", path, f.Name, err)
	}
	if keep {
		ds.arena = a
	} else {
		if cerr := a.Close(); cerr != nil {
			_ = ds.Close()
			return nil, cerr
		}
	}
	return ds, nil
}

// Create writes d to path. The format is chosen by explicit name, then by
// the path extension, then defaults to the v2 binary container.
func Create(path string, d *Dataset, formatName string) error {
	var f *Format
	var err error
	switch {
	case formatName != "":
		f, err = ByName(formatName)
		if err != nil {
			return err
		}
	default:
		if f = byExtension(path); f == nil {
			f, err = ByName(FormatBinary)
			if err != nil {
				return err
			}
		}
	}
	if f.Encode == nil {
		return fmt.Errorf("store: format %s is read-only", f.Name)
	}
	// Encode into a temp file and rename into place: a failed encode (an
	// ErrCompressed misuse, a full disk) must never destroy an existing
	// file at path, and readers never observe a half-written graph.
	w, err := os.CreateTemp(filepath.Dir(path), ".sage-create-*")
	if err != nil {
		return err
	}
	tmp := w.Name()
	fail := func(err error) error {
		_ = w.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := f.Encode(bw, d); err != nil {
		return fail(fmt.Errorf("store: encoding %s as %s: %w", path, f.Name, err))
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := faultPoint("write", path); err != nil {
		return fail(err)
	}
	// Fsync before the rename: the rename is only atomic on disk if the
	// bytes it points at are durable first. Without this, a crash shortly
	// after Create could leave path referring to a hole.
	if err := w.Sync(); err != nil {
		return fail(err)
	}
	if err := faultPoint("sync", path); err != nil {
		return fail(err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil { // CreateTemp defaults to 0600
		os.Remove(tmp)
		return err
	}
	if err := faultPoint("before-rename", path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faultPoint("after-rename", path); err != nil {
		// The rename landed: path is the new container. The temp name is
		// gone, so there is nothing to clean up and nothing to roll back.
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir makes the rename durable by flushing the directory entry.
// Best-effort: some filesystems cannot fsync a directory handle, and the
// rename is still atomic there.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// CreateFaultFunc is a test hook observing Create's commit protocol. It
// is called at four stages — "write" (encoded, not yet synced), "sync"
// (synced, not yet renamed), "before-rename", and "after-rename" — and a
// non-nil return aborts Create with that error, simulating a crash or
// I/O failure at that exact point. See SetCreateFault.
type CreateFaultFunc func(stage, path string) error

var createFault atomic.Pointer[CreateFaultFunc]

// SetCreateFault installs (or, with nil, removes) the fault hook for
// Create. Tests use it to verify that a compaction dying at any stage
// leaves the previous container generation and its write-ahead log
// intact.
func SetCreateFault(f CreateFaultFunc) {
	if f == nil {
		createFault.Store(nil)
		return
	}
	createFault.Store(&f)
}

func faultPoint(stage, path string) error {
	if f := createFault.Load(); f != nil {
		return (*f)(stage, path)
	}
	return nil
}
