package gen

import (
	"testing"
)

func TestRMATValidAndDeterministic(t *testing.T) {
	g1 := RMAT(10, 8, 42)
	g2 := RMAT(10, 8, 42)
	if err := g1.Validate(true); err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT not deterministic")
	}
	for v := uint32(0); v < g1.NumVertices(); v++ {
		if g1.Degree(v) != g2.Degree(v) {
			t.Fatal("RMAT degree sequence not deterministic")
		}
	}
	if g1.NumVertices() != 1024 {
		t.Fatalf("n=%d", g1.NumVertices())
	}
}

func TestRMATSkewed(t *testing.T) {
	g := RMAT(12, 16, 1)
	if g.MaxDegree() < 4*g.AvgDegree() {
		t.Fatalf("R-MAT not skewed: max %d avg %d", g.MaxDegree(), g.AvgDegree())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 7)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 8000 { // ~2*5000 minus dedup losses
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestPowerLawTail(t *testing.T) {
	g := PowerLaw(5000, 5, 3)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 8*g.AvgDegree() {
		t.Fatalf("power law not heavy-tailed: max %d avg %d", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(10, 10, false)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Interior degree 4, corner degree 2.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(11) != 4 {
		t.Fatalf("interior degree %d", g.Degree(11))
	}
	// 2*10*9*2 arcs.
	if g.NumEdges() != 360 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	torus := Grid2D(10, 10, true)
	for v := uint32(0); v < 100; v++ {
		if torus.Degree(v) != 4 {
			t.Fatalf("torus degree %d at %d", torus.Degree(v), v)
		}
	}
}

func TestStarChainCycle(t *testing.T) {
	s := Star(100)
	if s.Degree(0) != 99 || s.Degree(5) != 1 {
		t.Fatal("star degrees")
	}
	c := Chain(50)
	if c.Degree(0) != 1 || c.Degree(25) != 2 || c.NumEdges() != 98 {
		t.Fatal("chain shape")
	}
	cy := Cycle(50)
	for v := uint32(0); v < 50; v++ {
		if cy.Degree(v) != 2 {
			t.Fatal("cycle degree")
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.NumVertices() != 7 || g.NumEdges() != 24 {
		t.Fatalf("K3,4: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 4 || g.Degree(3) != 3 {
		t.Fatal("K3,4 degrees")
	}
}

func TestAddUniformWeights(t *testing.T) {
	g := RMAT(8, 8, 5)
	wg := AddUniformWeights(g, 11)
	if !wg.Weighted() {
		t.Fatal("not weighted")
	}
	if wg.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", wg.NumEdges(), g.NumEdges())
	}
	// Weights must be symmetric and in [1, log2 n).
	maxW := int32(8)
	for v := uint32(0); v < wg.NumVertices(); v++ {
		nghs := wg.Neighbors(v)
		ws := wg.NeighborWeights(v)
		for i, u := range nghs {
			if ws[i] < 1 || ws[i] >= maxW {
				t.Fatalf("weight %d out of [1,%d)", ws[i], maxW)
			}
			back, ok := wg.EdgeWeight(u, v)
			if !ok || back != ws[i] {
				t.Fatalf("asymmetric weight (%d,%d): %d vs %d", v, u, ws[i], back)
			}
		}
	}
}

func TestFig2CorpusEnvelope(t *testing.T) {
	entries := Fig2Corpus(42)
	if len(entries) != 42 {
		t.Fatalf("corpus size %d", len(entries))
	}
	dense := 0
	for _, e := range entries {
		if e.AvgDegree >= 10 {
			dense++
		}
		if e.N < 1<<14 || e.N > 1<<20 {
			t.Fatalf("entry n=%d out of range", e.N)
		}
	}
	// The paper's claim: over 90% of graphs have average degree >= 10.
	if frac := float64(dense) / float64(len(entries)); frac < 0.9 {
		t.Fatalf("only %.0f%% of corpus at davg>=10", 100*frac)
	}
}

func TestBuildEntrySmall(t *testing.T) {
	e := CorpusEntry{Name: "t", Kind: "social", N: 1 << 10, AvgDegree: 12}
	g, d := BuildEntry(e, 3)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if d < 4 {
		t.Fatalf("realized avg degree %.1f too small", d)
	}
}
