// Package gen provides deterministic synthetic graph generators standing
// in for the paper's datasets (Table 2). Real inputs (Hyperlink2012,
// ClueWeb, Twitter, …) are hundreds of gigabytes and unavailable here;
// the generators reproduce the structural properties the evaluation
// depends on — skewed (power-law) degree distributions for the social/web
// graphs, low diameter, average degrees in the 10–80 range (Figure 2) —
// at laptop scale. All generators are deterministic in their seed.
package gen

import (
	"math"
	"math/rand/v2"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// rng returns a deterministic PCG stream for (seed, stream).
func rng(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}

// RMAT generates a symmetrized R-MAT graph with 2^logN vertices and
// approximately avgDeg·2^logN arcs, using the Graph500 parameters
// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) with per-level noise. R-MAT
// matches the skewed degree distributions of the paper's social and web
// graphs.
func RMAT(logN int, avgDeg int, seed uint64) *graph.Graph {
	n := uint32(1) << logN
	mDirected := int(uint64(n) * uint64(avgDeg) / 2)
	edges := make([]graph.Edge, mDirected)
	parallel.ForBlocks(mDirected, 1<<14, func(_, lo, hi int) {
		r := rng(seed, uint64(lo))
		for i := lo; i < hi; i++ {
			edges[i] = rmatEdge(r, logN)
		}
	})
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

func rmatEdge(r *rand.Rand, logN int) graph.Edge {
	const a, b, c = 0.57, 0.19, 0.19
	var u, v uint32
	for bit := 0; bit < logN; bit++ {
		// Add ±10% noise per level so degrees smooth out.
		noise := 0.9 + 0.2*r.Float64()
		ab := (a + b) * noise
		aa := a * noise
		cc := aa + c*noise
		p := r.Float64() * (noise)
		u <<= 1
		v <<= 1
		switch {
		case p < aa:
			// quadrant (0,0)
		case p < ab:
			v |= 1
		case p < cc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return graph.Edge{U: u, V: v}
}

// ErdosRenyi generates a symmetrized G(n, m) graph with m target arcs
// before deduplication.
func ErdosRenyi(n uint32, m int, seed uint64) *graph.Graph {
	edges := make([]graph.Edge, m)
	parallel.ForBlocks(m, 1<<14, func(_, lo, hi int) {
		r := rng(seed, uint64(lo))
		for i := lo; i < hi; i++ {
			edges[i] = graph.Edge{U: r.Uint32N(n), V: r.Uint32N(n)}
		}
	})
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// PowerLaw generates a preferential-attachment ("copying model") graph:
// vertex v attaches d edges, each to a uniform earlier vertex with
// probability q or to the endpoint of a uniform earlier edge otherwise
// (which samples proportionally to degree). The result has a power-law
// tail like the paper's social networks.
func PowerLaw(n uint32, d int, seed uint64) *graph.Graph {
	if n < 2 {
		n = 2
	}
	r := rng(seed, 0)
	targets := make([]uint32, 0, int(n)*d)
	edges := make([]graph.Edge, 0, int(n)*d)
	const q = 0.25
	for v := uint32(1); v < n; v++ {
		for j := 0; j < d; j++ {
			var t uint32
			if len(targets) == 0 || r.Float64() < q {
				t = r.Uint32N(v)
			} else {
				t = targets[r.IntN(len(targets))]
			}
			edges = append(edges, graph.Edge{U: v, V: t})
			targets = append(targets, t, v)
		}
	}
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// Grid2D generates a rows×cols lattice (4-neighborhood); if torus is true
// the boundary wraps. Grids model the high-diameter road-network-like
// inputs used to stress frontier-based algorithms.
func Grid2D(rows, cols uint32, torus bool) *graph.Graph {
	n := rows * cols
	edges := make([]graph.Edge, 0, 2*int(n))
	id := func(r, c uint32) uint32 { return r*cols + c }
	for r := uint32(0); r < rows; r++ {
		for c := uint32(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			} else if torus && cols > 2 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, 0)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			} else if torus && rows > 2 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(0, c)})
			}
		}
	}
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// Star generates a star with center 0 and n-1 leaves: the extreme skew
// case for load balancing.
func Star(n uint32) *graph.Graph {
	edges := make([]graph.Edge, 0, int(n)-1)
	for v := uint32(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// Chain generates a path on n vertices: the extreme diameter case.
func Chain(n uint32) *graph.Graph {
	edges := make([]graph.Edge, 0, int(n)-1)
	for v := uint32(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// Cycle generates a cycle on n vertices.
func Cycle(n uint32) *graph.Graph {
	edges := make([]graph.Edge, 0, int(n))
	for v := uint32(0); v < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: (v + 1) % n})
	}
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// CompleteBipartite generates K_{a,b} (set-cover-style bipartite
// structure).
func CompleteBipartite(a, b uint32) *graph.Graph {
	edges := make([]graph.Edge, 0, int(a)*int(b))
	for u := uint32(0); u < a; u++ {
		for v := uint32(0); v < b; v++ {
			edges = append(edges, graph.Edge{U: u, V: a + v})
		}
	}
	return graph.FromEdges(a+b, edges, graph.BuildOpts{Symmetrize: true})
}

// AddUniformWeights returns a weighted copy of g with integer weights
// drawn uniformly from [1, log2 n), the paper's weighting scheme (§5.1.3).
// Both directions of an undirected edge receive the same weight (derived
// from a symmetric hash of the endpoints).
func AddUniformWeights(g *graph.Graph, seed uint64) *graph.Graph {
	n := g.NumVertices()
	maxW := int32(math.Log2(float64(n)))
	if maxW < 2 {
		maxW = 2
	}
	edges := make([]graph.WEdge, 0, g.NumEdges())
	for v := uint32(0); v < n; v++ {
		for _, u := range g.Neighbors(v) {
			lo, hi := min(u, v), max(u, v)
			h := hashPair(uint64(lo)<<32|uint64(hi), seed)
			w := 1 + int32(h%uint64(maxW-1))
			edges = append(edges, graph.WEdge{U: v, V: u, W: w})
		}
	}
	return graph.FromWeightedEdges(n, edges, graph.BuildOpts{})
}

func hashPair(x, seed uint64) uint64 {
	x ^= seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
