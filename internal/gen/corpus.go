package gen

import (
	"math/rand/v2"

	"sage/internal/graph"
)

// CorpusEntry describes one graph of the Figure 2 corpus: the paper plots
// 42 real-world SNAP/LAW graphs with n > 10^6 by vertex count and average
// degree and observes that over 90% have m/n >= 10.
type CorpusEntry struct {
	Name      string
	Kind      string // "social", "web", or "citation"
	N         uint32
	AvgDegree float64
}

// Fig2Corpus synthesizes a 42-graph corpus whose (n, m/n) envelope matches
// Figure 2: vertex counts log-uniform over [2^14, 2^20] (scaled down from
// the paper's [10^6, 10^10]), average degrees drawn per graph-type from the
// same ranges as the SNAP/LAW datasets, with ~7% of entries below the
// m/n = 10 line. The entries are deterministic in the seed.
func Fig2Corpus(seed uint64) []CorpusEntry {
	r := rand.New(rand.NewPCG(seed, 42))
	kinds := []string{"social", "web", "citation"}
	entries := make([]CorpusEntry, 0, 42)
	for i := 0; i < 42; i++ {
		kind := kinds[r.IntN(len(kinds))]
		logn := 14 + r.Float64()*6
		n := uint32(1) << int(logn)
		var d float64
		switch {
		case i%14 == 13:
			// ~7% sparse outliers (below the m/n = 10 dashed line).
			d = 2 + r.Float64()*7
		case kind == "web":
			d = 20 + r.Float64()*60
		case kind == "social":
			d = 10 + r.Float64()*70
		default:
			d = 10 + r.Float64()*20
		}
		entries = append(entries, CorpusEntry{
			Name:      kind + string(rune('A'+i%26)),
			Kind:      kind,
			N:         n,
			AvgDegree: d,
		})
	}
	return entries
}

// BuildEntry materializes one corpus entry as a graph (power-law for
// social/web, Erdős–Rényi for citation-like) and returns it with its
// realized average degree.
func BuildEntry(e CorpusEntry, seed uint64) (*graph.Graph, float64) {
	var g *graph.Graph
	switch e.Kind {
	case "citation":
		g = ErdosRenyi(e.N, int(float64(e.N)*e.AvgDegree/2), seed)
	default:
		d := int(e.AvgDegree / 2)
		if d < 1 {
			d = 1
		}
		g = PowerLaw(e.N, d, seed)
	}
	return g, float64(g.NumEdges()) / float64(g.NumVertices())
}
