// Package gfilter implements Sage's semi-asymmetric graph filter (§4.2):
// a bit-packed, DRAM-resident overlay over the read-only NVRAM graph that
// supports batch edge deletions without writing to the graph itself. Each
// vertex's adjacency is divided into blocks of FB edges; the filter keeps
// one bit per edge, plus two words of metadata per block (the original
// block id and the count of active edges in preceding blocks), the
// per-vertex degree/extent, and per-vertex dirty bits. Empty blocks are
// physically compacted once a constant fraction of a vertex's blocks die,
// which keeps iteration work-efficient. Total space is O(n + m/64) words
// — the relaxed PSAM budget.
//
// The filter itself implements graph.Adj, so every traversal and algorithm
// in this repository runs unchanged over a filtered graph; this is how
// biconnectivity "optimizes a call to connectivity on the input graph with
// a large subset of the edges removed" (§4.3.2).
package gfilter

import (
	"math/bits"
	"sync/atomic"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// blockMeta is the two words of per-block metadata (§4.2.1).
type blockMeta struct {
	orig   uint32 // original block id within the vertex's adjacency
	offset uint32 // number of active edges in preceding blocks of the vertex
}

// vtxMeta is the per-vertex filter state.
type vtxMeta struct {
	start     uint64 // first arena slot of the vertex's blocks
	numBlocks uint32 // live blocks (may shrink below the initial count)
	deg       uint32 // active edges
}

// Filter is a mutable edge-subset view of an immutable graph.
type Filter struct {
	g     graph.Adj
	fad   graph.FlatAdj // non-nil: closure-free decode of the base graph
	fzero bool          // FlatRange aliases the base graph's storage
	env   *psam.Env
	fb    uint32 // filter block size in edges (multiple of 64)
	wpb   uint32 // words per block = fb/64
	bits  []uint64
	meta  []blockMeta
	vtx   []vtxMeta
	dirty *parallel.Bitset
	live  atomic.Int64 // maintained active-edge count (updated in packs)

	scratch [parallel.MaxWorkers]workerScratch
}

type workerScratch struct {
	nghs   []uint32 // decoded block neighbors
	counts []uint32 // per-block live counts during a pack
	_      [16]byte
}

// packThresholdNum/Den: blocks are physically compacted when live blocks
// fall below 3/4 of the current count ("a constant fraction", §4.2.2).
const packThresholdNum, packThresholdDen = 3, 4

// New builds a filter over g with all edges active. fb is rounded up to a
// multiple of 64 bits; for compressed graphs it must equal the compression
// block size (§4.2.1), which New enforces.
func New(g graph.Adj, fb int, env *psam.Env) *Filter {
	if cbs := g.BlockSize(); cbs != 0 {
		if fb != 0 && fb != cbs {
			panic("gfilter: filter block size must equal the compression block size")
		}
		fb = cbs
	}
	if fb <= 0 {
		fb = 64
	}
	fb = (fb + 63) / 64 * 64
	n := g.NumVertices()
	f := &Filter{g: g, env: env, fb: uint32(fb), wpb: uint32(fb / 64)}
	if fad, ok := g.(graph.FlatAdj); ok {
		f.fad = fad
		_, _, f.fzero = fad.FlatRange(0, 0, 0)
	}

	nb := make([]uint64, n+1)
	parallel.For(int(n), 0, func(i int) {
		nb[i] = uint64((g.Degree(uint32(i)) + f.fb - 1) / f.fb)
	})
	totalBlocks := parallel.Scan(nb)
	f.bits = make([]uint64, totalBlocks*uint64(f.wpb))
	f.meta = make([]blockMeta, totalBlocks)
	f.vtx = make([]vtxMeta, n)
	f.dirty = parallel.NewBitset(int(n))
	env.Alloc(int64(len(f.bits)) + 2*int64(totalBlocks) + 3*int64(n) + int64(f.dirty.Words())/2)

	parallel.For(int(n), 16, func(i int) {
		v := uint32(i)
		deg := g.Degree(v)
		numB := uint32(nb[uint32(i)+1] - nb[i])
		f.vtx[i] = vtxMeta{start: nb[i], numBlocks: numB, deg: deg}
		for b := uint32(0); b < numB; b++ {
			f.meta[nb[i]+uint64(b)] = blockMeta{orig: b, offset: b * f.fb}
			w := f.blockWords(nb[i] + uint64(b))
			edgesInBlock := min(f.fb, deg-b*f.fb)
			for k := uint32(0); k < f.wpb; k++ {
				inWord := int32(edgesInBlock) - int32(k*64)
				switch {
				case inWord >= 64:
					w[k] = ^uint64(0)
				case inWord > 0:
					w[k] = (uint64(1) << inWord) - 1
				default:
					w[k] = 0
				}
			}
		}
	})
	f.live.Store(int64(g.NumEdges()))
	return f
}

// blockWords returns the bit words of arena slot s.
func (f *Filter) blockWords(s uint64) []uint64 {
	return f.bits[s*uint64(f.wpb) : (s+1)*uint64(f.wpb)]
}

// FB returns the filter block size in edges.
func (f *Filter) FB() int { return int(f.fb) }

// ActiveEdges returns the maintained count of active edges.
func (f *Filter) ActiveEdges() int64 { return f.live.Load() }

// Dirty exposes the per-vertex dirty bits: vertex u is marked when an edge
// (v, u) was deleted during a pack of v, so u's adjacency may reference
// edges its own filter side has not yet dropped.
func (f *Filter) Dirty() *parallel.Bitset { return f.dirty }

// SizeWords reports the filter's DRAM footprint in words (for the §4.2.3
// memory-usage comparison: 4.6–8.1x smaller than the uncompressed graph).
func (f *Filter) SizeWords() int64 {
	return int64(len(f.bits)) + 2*int64(len(f.meta)) + 3*int64(len(f.vtx)) + int64(f.dirty.Words())/2
}

// decodeSlot loads the underlying neighbors behind filter slot s of v
// into the worker's scratch buffer, indexed by within-block position, and
// charges the NVRAM read. For compressed graphs the whole block is
// decoded even if few bits are live (§4.2.3) — the "total work" Table 4
// measures. For uncompressed (CSR) graphs only the active positions are
// fetched, mirroring the word-by-word intrinsic loop of §4.2.3 that
// random-accesses just the edges whose bits are set; inactive slots of
// the returned buffer are then stale and must not be read.
func (f *Filter) decodeSlot(worker int, v uint32, s uint64, deg0 uint32) []uint32 {
	b := f.meta[s].orig
	lo := b * f.fb
	hi := min(lo+f.fb, deg0)
	sc := &f.scratch[worker]
	if cap(sc.nghs) < int(f.fb) {
		sc.nghs = make([]uint32, 0, f.fb)
	}
	if f.g.BlockSize() == 0 {
		// CSR fast path: only the active positions are fetched (and
		// charged); with a flat base graph the block is an alias of the
		// edge array, so the fetch loop reduces to counting the bits.
		words := f.blockWords(s)
		var fetched int64
		if f.fzero {
			for k, w := range words {
				for w != 0 {
					idx := bits.TrailingZeros64(w)
					w &= w - 1
					if lo+uint32(k*64+idx) < hi {
						fetched++
					}
				}
			}
			f.env.GraphRead(worker, f.g.EdgeAddr(v)+int64(lo), fetched)
			nghs, _, _ := f.fad.FlatRange(v, lo, hi)
			return nghs
		}
		sc.nghs = sc.nghs[:hi-lo]
		for k, w := range words {
			for w != 0 {
				idx := bits.TrailingZeros64(w)
				w &= w - 1
				pos := uint32(k*64 + idx)
				if lo+pos >= hi {
					continue
				}
				f.g.IterRange(v, lo+pos, lo+pos+1, func(_, ngh uint32, _ int32) bool {
					sc.nghs[pos] = ngh
					return false
				})
				fetched++
			}
		}
		f.env.GraphRead(worker, f.g.EdgeAddr(v)+int64(lo), fetched)
		return sc.nghs
	}
	f.env.GraphRead(worker, f.g.EdgeAddr(v)+int64(lo), f.g.ScanCost(v, lo, hi))
	if f.fad != nil {
		sc.nghs = f.fad.DecodeRange(v, lo, hi, sc.nghs)
		return sc.nghs
	}
	sc.nghs = sc.nghs[:0]
	f.g.IterRange(v, lo, hi, func(_, ngh uint32, _ int32) bool {
		sc.nghs = append(sc.nghs, ngh)
		return true
	})
	return sc.nghs
}

// IterActive calls fn for every active neighbor of v in adjacency order,
// stopping early if fn returns false. Charges reads for every decoded
// block.
func (f *Filter) IterActive(worker int, v uint32, fn func(ngh uint32) bool) {
	vm := &f.vtx[v]
	deg0 := f.g.Degree(v)
	for s := vm.start; s < vm.start+uint64(vm.numBlocks); s++ {
		if !f.iterBlock(worker, v, s, deg0, fn) {
			return
		}
	}
}

// iterBlock visits the active edges of arena slot s using the
// tzcnt/blsr-style word loop of §4.2.3.
func (f *Filter) iterBlock(worker int, v uint32, s uint64, deg0 uint32, fn func(ngh uint32) bool) bool {
	words := f.blockWords(s)
	empty := true
	for _, w := range words {
		if w != 0 {
			empty = false
			break
		}
	}
	if empty {
		return true
	}
	nghs := f.decodeSlot(worker, v, s, deg0)
	f.env.StateRead(worker, int64(f.wpb))
	for k, w := range words {
		for w != 0 {
			idx := bits.TrailingZeros64(w)
			w &= w - 1
			pos := k*64 + idx
			if pos < len(nghs) && !fn(nghs[pos]) {
				return false
			}
		}
	}
	return true
}

// PackVertex removes the active edges of v for which pred(v, ngh) is
// false (§4.2.2): it rescans live blocks, clears failing bits, marks the
// removed neighbors dirty, recomputes per-block offsets, compacts blocks
// when enough die, and updates the degree. It returns the new active
// degree and the number of edges removed. PackVertex for distinct
// vertices may run concurrently.
func (f *Filter) PackVertex(worker int, v uint32, pred func(u, ngh uint32) bool) (uint32, int64) {
	vm := &f.vtx[v]
	if vm.numBlocks == 0 {
		return 0, 0
	}
	deg0 := f.g.Degree(v)
	sc := &f.scratch[worker]
	if cap(sc.counts) < int(vm.numBlocks) {
		sc.counts = make([]uint32, vm.numBlocks)
	}
	counts := sc.counts[:vm.numBlocks]

	var removed int64
	liveBlocks := uint32(0)
	for bi := uint32(0); bi < vm.numBlocks; bi++ {
		s := vm.start + uint64(bi)
		words := f.blockWords(s)
		cnt := uint32(0)
		hasBits := false
		for _, w := range words {
			if w != 0 {
				hasBits = true
				break
			}
		}
		if hasBits {
			nghs := f.decodeSlot(worker, v, s, deg0)
			for k := range words {
				w := words[k]
				for w != 0 {
					idx := bits.TrailingZeros64(w)
					w &= w - 1
					pos := k*64 + idx
					if pos >= len(nghs) {
						continue
					}
					if pred(v, nghs[pos]) {
						cnt++
					} else {
						words[k] &^= uint64(1) << idx
						f.dirty.AtomicSet(nghs[pos])
						removed++
					}
				}
			}
			f.env.StateWrite(worker, int64(f.wpb))
		}
		counts[bi] = cnt
		if cnt > 0 {
			liveBlocks++
		}
	}

	// Compact dead blocks when a constant fraction died (§4.2.2).
	if liveBlocks < vm.numBlocks*packThresholdNum/packThresholdDen || liveBlocks == 0 {
		wr := uint32(0)
		for bi := uint32(0); bi < vm.numBlocks; bi++ {
			if counts[bi] == 0 {
				continue
			}
			if wr != bi {
				src := vm.start + uint64(bi)
				dst := vm.start + uint64(wr)
				copy(f.blockWords(dst), f.blockWords(src))
				f.meta[dst] = f.meta[src]
				counts[wr] = counts[bi]
			}
			wr++
		}
		vm.numBlocks = wr
		f.env.StateWrite(worker, int64(wr)*int64(f.wpb+2))
	}

	// Recompute offsets (prefix sum over live counts) and the degree.
	total := uint32(0)
	for bi := uint32(0); bi < vm.numBlocks; bi++ {
		f.meta[vm.start+uint64(bi)].offset = total
		total += counts[bi]
	}
	vm.deg = total
	if removed > 0 {
		f.live.Add(-removed)
	}
	f.env.StateWrite(worker, int64(vm.numBlocks))
	return total, removed
}

// EdgeMapPack packs every vertex in vs in parallel (§4.2.2) and returns a
// subset over the same vertices augmented with their new degrees (aligned
// with the returned id slice).
func (f *Filter) EdgeMapPack(vs *frontier.VertexSubset, pred func(u, ngh uint32) bool) (*frontier.VertexSubset, []uint32) {
	sp := vs.Sparse()
	degs := make([]uint32, len(sp))
	parallel.ForWorker(len(sp), 1, func(w, i int) {
		nd, _ := f.PackVertex(w, sp[i], pred)
		degs[i] = nd
	})
	return frontier.FromSparse(vs.N(), sp), degs
}

// FilterEdges packs all vertices (§4.2.2) and returns the number of
// active edges remaining.
func (f *Filter) FilterEdges(pred func(u, ngh uint32) bool) int64 {
	n := f.g.NumVertices()
	parallel.ForWorker(int(n), 1, func(w, i int) {
		f.PackVertex(w, uint32(i), pred)
	})
	return f.live.Load()
}
