package gfilter

import (
	"math/bits"
	"sort"
)

// The methods below make *Filter implement graph.Adj over its *active*
// edges, so the traversal layer and whole algorithms (notably the
// connectivity call inside biconnectivity, §4.3.2) run directly on a
// filtered graph. Positions are active-edge indices in [0, ActiveDegree);
// the per-block offset metadata (§4.2.1) locates the block containing a
// given active position by binary search.

// NumVertices implements graph.Adj.
func (f *Filter) NumVertices() uint32 { return f.g.NumVertices() }

// NumEdges implements graph.Adj: the current number of active edges.
func (f *Filter) NumEdges() uint64 { return uint64(f.live.Load()) }

// Degree implements graph.Adj: the active degree.
func (f *Filter) Degree(v uint32) uint32 { return f.vtx[v].deg }

// AvgDegree implements graph.Adj.
func (f *Filter) AvgDegree() uint32 {
	n := f.g.NumVertices()
	if n == 0 {
		return 1
	}
	d := uint32(uint64(f.live.Load()) / uint64(n))
	if d < 1 {
		d = 1
	}
	return d
}

// Weighted implements graph.Adj: filters are used by the unweighted
// algorithms (biconnectivity, set cover, triangle counting, matching).
func (f *Filter) Weighted() bool { return false }

// BlockSize implements graph.Adj. Traversals over a filter chunk at the
// filter block granularity.
func (f *Filter) BlockSize() int { return int(f.fb) }

// EdgeAddr implements graph.Adj, delegating to the underlying graph.
func (f *Filter) EdgeAddr(v uint32) int64 { return f.g.EdgeAddr(v) }

// ScanCost implements graph.Adj: scanning active positions [lo, hi)
// decodes the underlying blocks that contain them (whole blocks, §4.2.3)
// and reads the filter bits; the bit words are DRAM so only the underlying
// decode counts as NVRAM words.
func (f *Filter) ScanCost(v uint32, lo, hi uint32) int64 {
	vm := &f.vtx[v]
	if hi > vm.deg {
		hi = vm.deg
	}
	if hi <= lo || vm.numBlocks == 0 {
		return 0
	}
	b0 := f.findBlock(vm, lo)
	b1 := f.findBlock(vm, hi-1)
	if f.g.BlockSize() == 0 {
		// CSR: only the active positions are fetched (see decodeSlot),
		// plus one touch per block examined.
		return int64(hi-lo) + int64(b1-b0+1)
	}
	var cost int64
	deg0 := f.g.Degree(v)
	for b := b0; b <= b1; b++ {
		orig := f.meta[vm.start+uint64(b)].orig
		oLo := orig * f.fb
		oHi := min(oLo+f.fb, deg0)
		cost += f.g.ScanCost(v, oLo, oHi)
	}
	return cost
}

// findBlock returns the index (within v's live blocks) of the block
// containing active position pos.
func (f *Filter) findBlock(vm *vtxMeta, pos uint32) uint32 {
	nb := int(vm.numBlocks)
	// Last block whose offset <= pos.
	i := sort.Search(nb, func(b int) bool {
		return f.meta[vm.start+uint64(b)].offset > pos
	})
	return uint32(i - 1)
}

// IterRange implements graph.Adj over active positions.
func (f *Filter) IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool) {
	vm := &f.vtx[v]
	if hi > vm.deg {
		hi = vm.deg
	}
	if hi <= lo || vm.numBlocks == 0 {
		return
	}
	deg0 := f.g.Degree(v)
	var buf [512]uint32
	var nghs []uint32
	for b := f.findBlock(vm, lo); b < vm.numBlocks; b++ {
		s := vm.start + uint64(b)
		idx := f.meta[s].offset
		if idx >= hi {
			return
		}
		words := f.blockWords(s)
		nghs = f.decodeBlockLocal(v, f.meta[s].orig, deg0, buf[:0], &nghs)
		for k, w := range words {
			for w != 0 {
				t := bits.TrailingZeros64(w)
				w &= w - 1
				pos := k*64 + t
				if pos >= len(nghs) {
					continue
				}
				if idx >= lo {
					if idx >= hi || !fn(idx, nghs[pos], 1) {
						return
					}
				}
				idx++
			}
		}
	}
}

// decodeBlockLocal decodes original block b of v into stack (or spill)
// storage without touching the per-worker scratch, so it is safe from any
// goroutine. Flat base graphs alias their storage (no copy at all);
// compressed ones block-decode without per-edge callbacks.
func (f *Filter) decodeBlockLocal(v, b, deg0 uint32, stack []uint32, spill *[]uint32) []uint32 {
	lo := b * f.fb
	hi := min(lo+f.fb, deg0)
	if f.fzero {
		nghs, _, _ := f.fad.FlatRange(v, lo, hi)
		return nghs
	}
	var out []uint32
	if int(f.fb) <= cap(stack) {
		out = stack[:0]
	} else {
		if cap(*spill) < int(f.fb) {
			*spill = make([]uint32, 0, f.fb)
		}
		out = (*spill)[:0]
	}
	if f.fad != nil {
		return f.fad.DecodeRange(v, lo, hi, out)
	}
	f.g.IterRange(v, lo, hi, func(_, ngh uint32, _ int32) bool {
		out = append(out, ngh)
		return true
	})
	return out
}

// IntersectStats accumulates the two work measures of Table 4 /
// Appendix D.1: MergeSteps is the "intersection work" (directed wedge
// checks actually performed) and DecodedEdges is the "total work" (edges
// physically decoded from blocks, including inactive ones).
type IntersectStats struct {
	MergeSteps   int64
	DecodedEdges int64
}

// ActiveList materializes the active neighbors of v into dst (reused
// across calls), counting decode work: every block with at least one
// active bit decodes fully.
func (f *Filter) ActiveList(worker int, v uint32, dst []uint32, stats *IntersectStats) []uint32 {
	dst = dst[:0]
	vm := &f.vtx[v]
	deg0 := f.g.Degree(v)
	for bi := uint32(0); bi < vm.numBlocks; bi++ {
		s := vm.start + uint64(bi)
		words := f.blockWords(s)
		empty := true
		for _, w := range words {
			if w != 0 {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		nghs := f.decodeSlot(worker, v, s, deg0)
		if stats != nil {
			if f.g.BlockSize() == 0 {
				// CSR fast path fetches only active edges.
				for _, w := range words {
					stats.DecodedEdges += int64(bits.OnesCount64(w))
				}
			} else {
				stats.DecodedEdges += int64(len(nghs))
			}
		}
		for k, w := range words {
			for w != 0 {
				t := bits.TrailingZeros64(w)
				w &= w - 1
				pos := k*64 + t
				if pos < len(nghs) {
					dst = append(dst, nghs[pos])
				}
			}
		}
	}
	return dst
}

// IntersectSorted counts the common elements of two sorted lists,
// charging one merge step per comparison.
func IntersectSorted(a, b []uint32, stats *IntersectStats) int64 {
	var count, steps int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	if stats != nil {
		stats.MergeSteps += steps
	}
	return count
}
