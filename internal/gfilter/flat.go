package gfilter

import "math/bits"

// graph.FlatAdj implementation over the filter's active edges: active
// positions [lo, hi) are materialized into the caller's buffer one filter
// block at a time, so the traversal layer's inner loops run over a flat
// slice. Decode cost matches IterRange exactly (whole underlying blocks,
// §4.2.3); only the per-edge callback is gone.

// FlatRange implements graph.FlatAdj: filtered adjacency is never flat.
func (f *Filter) FlatRange(_, _, _ uint32) ([]uint32, []int32, bool) {
	return nil, nil, false
}

// DecodeRange implements graph.FlatAdj, materializing the active
// neighbors at active positions [lo, hi) of v into buf.
func (f *Filter) DecodeRange(v, lo, hi uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	vm := &f.vtx[v]
	if hi > vm.deg {
		hi = vm.deg
	}
	if hi <= lo || vm.numBlocks == 0 {
		return buf
	}
	deg0 := f.g.Degree(v)
	var stack [512]uint32
	var spill []uint32
	for b := f.findBlock(vm, lo); b < vm.numBlocks; b++ {
		s := vm.start + uint64(b)
		idx := f.meta[s].offset
		if idx >= hi {
			return buf
		}
		words := f.blockWords(s)
		nghs := f.decodeBlockLocal(v, f.meta[s].orig, deg0, stack[:0], &spill)
		for k, w := range words {
			for w != 0 {
				t := bits.TrailingZeros64(w)
				w &= w - 1
				pos := k*64 + t
				if pos >= len(nghs) {
					continue
				}
				if idx >= lo {
					if idx >= hi {
						return buf
					}
					buf = append(buf, nghs[pos])
				}
				idx++
			}
		}
	}
	return buf
}

// DecodeRangeW implements graph.FlatAdj; filters are unweighted.
func (f *Filter) DecodeRangeW(v, lo, hi uint32, buf []uint32, _ []int32) ([]uint32, []int32) {
	return f.DecodeRange(v, lo, hi, buf), nil
}
