package gfilter

import (
	"math/rand/v2"
	"sort"
	"testing"

	"sage/internal/compress"
	"sage/internal/frontier"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// activeOf materializes the active adjacency of v via IterActive.
func activeOf(f *Filter, v uint32) []uint32 {
	var out []uint32
	f.IterActive(0, v, func(ngh uint32) bool {
		out = append(out, ngh)
		return true
	})
	return out
}

// refFilter maintains a per-vertex map of surviving neighbors as oracle.
type refFilter struct {
	adj []map[uint32]bool
}

func newRef(g *graph.Graph) *refFilter {
	r := &refFilter{adj: make([]map[uint32]bool, g.NumVertices())}
	for v := uint32(0); v < g.NumVertices(); v++ {
		r.adj[v] = map[uint32]bool{}
		for _, u := range g.Neighbors(v) {
			r.adj[v][u] = true
		}
	}
	return r
}

func (r *refFilter) pack(v uint32, pred func(u, ngh uint32) bool) {
	for u := range r.adj[v] {
		if !pred(v, u) {
			delete(r.adj[v], u)
		}
	}
}

func (r *refFilter) check(t *testing.T, f *Filter, where string) {
	t.Helper()
	var total int64
	for v := uint32(0); v < f.NumVertices(); v++ {
		got := activeOf(f, v)
		if len(got) != len(r.adj[v]) {
			t.Fatalf("%s: vertex %d degree %d want %d", where, v, len(got), len(r.adj[v]))
		}
		if uint32(len(got)) != f.Degree(v) {
			t.Fatalf("%s: vertex %d Degree() %d but iterated %d", where, v, f.Degree(v), len(got))
		}
		for i, u := range got {
			if !r.adj[v][u] {
				t.Fatalf("%s: vertex %d has phantom neighbor %d", where, v, u)
			}
			if i > 0 && got[i-1] >= u {
				t.Fatalf("%s: vertex %d active list not sorted", where, v)
			}
		}
		total += int64(len(got))
	}
	if total != f.ActiveEdges() {
		t.Fatalf("%s: ActiveEdges %d but iterated %d", where, f.ActiveEdges(), total)
	}
}

func TestFilterInitialAllActive(t *testing.T) {
	for _, fb := range []int{64, 128, 256} {
		g := gen.RMAT(9, 8, 1)
		f := New(g, fb, nil)
		newRef(g).check(t, f, "init")
		if f.ActiveEdges() != int64(g.NumEdges()) {
			t.Fatalf("live=%d m=%d", f.ActiveEdges(), g.NumEdges())
		}
	}
}

func TestFilterRandomDeletionsVsReference(t *testing.T) {
	g := gen.RMAT(9, 12, 5)
	for _, fb := range []int{64, 128} {
		f := New(g, fb, nil)
		ref := newRef(g)
		r := rand.New(rand.NewPCG(11, uint64(fb)))
		for round := 0; round < 5; round++ {
			// Random symmetric predicate: drop edges whose hash is small.
			cut := uint64(1) << (62 - round*2)
			pred := func(u, ngh uint32) bool {
				lo, hi := min(u, ngh), max(u, ngh)
				h := (uint64(lo)<<32 | uint64(hi)) * 0x9e3779b97f4a7c15
				return h > cut
			}
			// Pack a random subset of vertices (asymmetrically) — both
			// sides eventually pack because the predicate is symmetric.
			var ids []uint32
			for v := uint32(0); v < g.NumVertices(); v++ {
				if r.IntN(2) == 0 {
					ids = append(ids, v)
				}
			}
			f.EdgeMapPack(frontier.FromSparse(g.NumVertices(), ids), pred)
			for _, v := range ids {
				ref.pack(v, pred)
			}
			ref.check(t, f, "round")
		}
	}
}

func TestFilterEdgesAll(t *testing.T) {
	g := gen.Grid2D(20, 20, false)
	f := New(g, 64, nil)
	ref := newRef(g)
	pred := func(u, ngh uint32) bool { return u < ngh } // orient upward
	remaining := f.FilterEdges(pred)
	for v := uint32(0); v < g.NumVertices(); v++ {
		ref.pack(v, pred)
	}
	ref.check(t, f, "orient")
	if remaining != int64(g.NumEdges())/2 {
		t.Fatalf("oriented remaining %d want %d", remaining, g.NumEdges()/2)
	}
}

func TestFilterToEmpty(t *testing.T) {
	g := gen.RMAT(8, 8, 2)
	f := New(g, 64, nil)
	if f.FilterEdges(func(_, _ uint32) bool { return false }) != 0 {
		t.Fatal("not empty after dropping all")
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		if f.Degree(v) != 0 {
			t.Fatalf("vertex %d still has degree %d", v, f.Degree(v))
		}
	}
}

func TestFilterDirtyBits(t *testing.T) {
	g := gen.Star(10)
	f := New(g, 64, nil)
	// Pack only the center, dropping the edge to leaf 3.
	f.PackVertex(0, 0, func(_, ngh uint32) bool { return ngh != 3 })
	if !f.Dirty().Get(3) {
		t.Fatal("leaf 3 not marked dirty")
	}
	if f.Dirty().Get(2) {
		t.Fatal("leaf 2 spuriously dirty")
	}
}

func TestFilterAdjIterRange(t *testing.T) {
	g := gen.RMAT(9, 16, 7)
	f := New(g, 64, nil)
	pred := func(u, ngh uint32) bool { return (u+ngh)%3 != 0 }
	f.FilterEdges(pred)
	for v := uint32(0); v < g.NumVertices(); v++ {
		want := activeOf(f, v)
		var got []uint32
		f.IterRange(v, 0, f.Degree(v), func(i, ngh uint32, _ int32) bool {
			if int(i) != len(got) {
				t.Fatalf("v=%d: position %d, expected %d", v, i, len(got))
			}
			got = append(got, ngh)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("v=%d IterRange %d vs IterActive %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v=%d[%d]: %d vs %d", v, i, got[i], want[i])
			}
		}
		// Sub-ranges too.
		if len(want) >= 4 {
			lo, hi := uint32(1), uint32(len(want)-1)
			var sub []uint32
			f.IterRange(v, lo, hi, func(_, ngh uint32, _ int32) bool {
				sub = append(sub, ngh)
				return true
			})
			if len(sub) != int(hi-lo) {
				t.Fatalf("v=%d subrange len %d want %d", v, len(sub), hi-lo)
			}
			for i := range sub {
				if sub[i] != want[int(lo)+i] {
					t.Fatalf("v=%d subrange mismatch", v)
				}
			}
		}
	}
}

func TestFilterOverCompressed(t *testing.T) {
	base := gen.RMAT(9, 12, 3)
	cg := compress.Compress(base, 64)
	f := New(cg, 0, nil) // block size must lock to compression block size
	if f.FB() != 64 {
		t.Fatalf("FB=%d", f.FB())
	}
	ref := newRef(base)
	pred := func(u, ngh uint32) bool { return (u^ngh)%5 != 0 }
	f.FilterEdges(pred)
	for v := uint32(0); v < base.NumVertices(); v++ {
		ref.pack(v, pred)
	}
	ref.check(t, f, "compressed")
}

func TestFilterBlockSizeMismatchPanics(t *testing.T) {
	base := gen.RMAT(6, 8, 3)
	cg := compress.Compress(base, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on FB != compression block size")
		}
	}()
	New(cg, 128, nil)
}

func TestActiveListAndIntersect(t *testing.T) {
	g := gen.RMAT(9, 16, 13)
	f := New(g, 64, nil)
	rankLess := func(a, b uint32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	f.FilterEdges(func(u, v uint32) bool { return rankLess(u, v) })
	var stats IntersectStats
	var buf []uint32
	for v := uint32(0); v < g.NumVertices(); v++ {
		buf = f.ActiveList(0, v, buf, &stats)
		if uint32(len(buf)) != f.Degree(v) {
			t.Fatalf("ActiveList len %d != degree %d", len(buf), f.Degree(v))
		}
		if !sort.SliceIsSorted(buf, func(i, j int) bool { return buf[i] < buf[j] }) {
			t.Fatalf("ActiveList not sorted at %d", v)
		}
	}
	if stats.DecodedEdges == 0 {
		t.Fatal("no decode work recorded")
	}
	a := []uint32{1, 3, 5, 7}
	b := []uint32{2, 3, 7, 9}
	if IntersectSorted(a, b, &stats) != 2 {
		t.Fatal("intersect count")
	}
}

func TestFilterSpaceIsRelaxedPSAM(t *testing.T) {
	g := gen.RMAT(12, 32, 17)
	f := New(g, 64, nil)
	n := int64(g.NumVertices())
	m := int64(g.NumEdges())
	// §4.2.3: O(n + m/64)-ish words; assert well under the raw edges.
	if f.SizeWords() >= m/2 {
		t.Fatalf("filter %d words vs m=%d", f.SizeWords(), m)
	}
	if f.SizeWords() < n {
		t.Fatalf("filter suspiciously small: %d words", f.SizeWords())
	}
	// Paper §4.2.3: 4.6-8.1x smaller than the uncompressed graph.
	ratio := float64(g.SizeWords()) / float64(f.SizeWords())
	if ratio < 2 {
		t.Fatalf("filter only %.1fx smaller than graph", ratio)
	}
}

func TestPackVertexParallelDisjoint(t *testing.T) {
	g := gen.RMAT(10, 16, 23)
	f := New(g, 64, nil)
	ref := newRef(g)
	pred := func(u, ngh uint32) bool { return ngh%2 == 0 }
	parallel.ForWorker(int(g.NumVertices()), 1, func(w, i int) {
		f.PackVertex(w, uint32(i), pred)
	})
	for v := uint32(0); v < g.NumVertices(); v++ {
		ref.pack(v, pred)
	}
	ref.check(t, f, "parallel pack")
}
