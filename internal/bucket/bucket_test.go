package bucket

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func prios(vals ...uint32) []uint32 { return vals }

func TestIncreasingOrder(t *testing.T) {
	b := New(prios(3, 1, 4, 1, 5, 9, 2, 6), Increasing)
	var seen []uint32
	for {
		p, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		for range vs {
			seen = append(seen, p)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("extracted %d", len(seen))
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
		t.Fatalf("not increasing: %v", seen)
	}
}

func TestDecreasingOrder(t *testing.T) {
	b := New(prios(3, 1, 4, 1, 5), Decreasing)
	var seen []uint32
	for {
		p, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		for range vs {
			seen = append(seen, p)
		}
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] > seen[j] }) {
		t.Fatalf("not decreasing: %v", seen)
	}
}

func TestNullAbsent(t *testing.T) {
	b := New(prios(1, Null, 2), Increasing)
	if b.Live() != 2 {
		t.Fatalf("live=%d", b.Live())
	}
	count := 0
	for {
		_, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		count += len(vs)
	}
	if count != 2 {
		t.Fatalf("extracted %d", count)
	}
}

func TestUpdateMovesVertex(t *testing.T) {
	b := New(prios(10, 20, 30), Increasing)
	b.Update(2, 15) // vertex 2 moves between 10 and 20
	p, vs, ok := b.NextBucket()
	if !ok || p != 10 || len(vs) != 1 || vs[0] != 0 {
		t.Fatalf("first pop p=%d vs=%v", p, vs)
	}
	p, vs, ok = b.NextBucket()
	if !ok || p != 15 || len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("second pop p=%d vs=%v", p, vs)
	}
}

func TestUpdateBehindWindowClamps(t *testing.T) {
	// Priorities behind the processing frontier clamp into the current
	// bucket (the k-core floor rule): the vertex is processed promptly and
	// extraction order never regresses.
	b := New(prios(10, 20, 30), Increasing)
	p, _, _ := b.NextBucket() // pops priority 10
	if p != 10 {
		t.Fatalf("first pop %d", p)
	}
	b.Update(1, 3) // behind the window; clamps to the current bucket
	last := p
	for {
		q, _, ok := b.NextBucket()
		if !ok {
			break
		}
		if q < last {
			t.Fatalf("extraction regressed: %d after %d", q, last)
		}
		last = q
	}
}

func TestUpdateBatchAndOverflow(t *testing.T) {
	// Priorities far apart force the overflow path and rebasing.
	n := 1000
	init := make([]uint32, n)
	for i := range init {
		init[i] = uint32(i * 37) // spans many windows
	}
	b := New(append([]uint32(nil), init...), Increasing)
	var got []uint32
	for {
		p, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		for range vs {
			got = append(got, p)
		}
	}
	if len(got) != n {
		t.Fatalf("extracted %d of %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("overflow rebasing broke ordering")
	}
}

func TestReinsertionAfterFinalize(t *testing.T) {
	// Set-cover semantics: a popped (finalized) vertex re-enters.
	b := New(prios(5, 7), Increasing)
	p, vs, _ := b.NextBucket()
	if p != 5 || len(vs) != 1 {
		t.Fatalf("pop p=%d %v", p, vs)
	}
	b.UpdateBatch([]uint32{vs[0]}, []uint32{9})
	var seen int
	for {
		_, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		seen += len(vs)
	}
	if seen != 2 {
		t.Fatalf("reinserted vertex lost: %d", seen)
	}
}

func TestKCoreLikePeeling(t *testing.T) {
	// Simulated peeling: priorities only decrease (clamped at current k);
	// NextBucket order must remain non-decreasing.
	r := rand.New(rand.NewPCG(5, 6))
	n := 2000
	deg := make([]uint32, n)
	for i := range deg {
		deg[i] = uint32(r.IntN(300))
	}
	b := New(append([]uint32(nil), deg...), Increasing)
	lastK := uint32(0)
	extracted := 0
	for {
		k, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		if k < lastK {
			t.Fatalf("bucket order regressed: %d after %d", k, lastK)
		}
		lastK = k
		extracted += len(vs)
		// Decrease some random survivors' priorities (clamped at k).
		var ids, ps []uint32
		seen := map[uint32]bool{}
		for j := 0; j < 50; j++ {
			v := uint32(r.IntN(n))
			if seen[v] || b.Priority(v) == Null {
				continue
			}
			seen[v] = true
			np := b.Priority(v)
			if np > 0 {
				np--
			}
			if np < k {
				np = k
			}
			ids = append(ids, v)
			ps = append(ps, np)
		}
		b.UpdateBatch(ids, ps)
	}
	if extracted != n {
		t.Fatalf("extracted %d of %d", extracted, n)
	}
}

func TestSemiEagerPacking(t *testing.T) {
	// Repeatedly move vertices between two buckets; the structure's
	// footprint must stay O(n), not O(#updates).
	n := 256
	init := make([]uint32, n)
	b := New(init, Increasing)
	for round := 0; round < 200; round++ {
		ids := make([]uint32, n/2)
		ps := make([]uint32, n/2)
		for i := range ids {
			ids[i] = uint32(i)
			ps[i] = uint32(round%3 + 1)
		}
		b.UpdateBatch(ids, ps)
	}
	if sz := b.SizeWords(); sz > int64(16*n) {
		t.Fatalf("bucket structure grew to %d words for n=%d", sz, n)
	}
}

func TestLiveCountExact(t *testing.T) {
	b := New(prios(1, 2, 3, Null), Increasing)
	if b.Live() != 3 {
		t.Fatalf("live=%d", b.Live())
	}
	b.Update(0, Null) // finalize one
	if b.Live() != 2 {
		t.Fatalf("live=%d after delete", b.Live())
	}
	b.Update(3, 7) // resurrect the absent one
	if b.Live() != 3 {
		t.Fatalf("live=%d after resurrect", b.Live())
	}
	seen := 0
	for {
		_, vs, ok := b.NextBucket()
		if !ok {
			break
		}
		seen += len(vs)
	}
	if seen != 3 {
		t.Fatalf("extracted %d", seen)
	}
}
