// Package bucket implements the Julienne bucketing structure in its
// semi-asymmetric form (Appendix B): a dynamic mapping from vertices to
// integer priorities supporting bulk priority updates and extraction of
// the next non-empty bucket. Following Julienne's practical variant, a
// constant number (127) of "open" buckets covering the priorities nearest
// the processing frontier are materialized, with all other vertices parked
// in an overflow bucket that is re-bucketed when the window is exhausted.
//
// Deletion is semi-eager (Appendix B): moved vertices stay in their old
// bucket's array as stale entries, each bucket tracks its dead count, and
// a bucket is physically packed once dead entries outnumber live ones —
// this bounds the structure's small-memory footprint by O(n) words, where
// the fully lazy variant would need O(#updates) = O(m).
package bucket

import (
	"sync/atomic"

	"sage/internal/parallel"
)

// Order selects whether NextBucket yields smallest or largest priorities
// first (wBFS and k-core peel increasing, set cover decreasing).
type Order int

const (
	Increasing Order = iota
	Decreasing
)

// Null is the priority marking a vertex as finalized or absent.
const Null = ^uint32(0)

// numOpen is the number of materialized open buckets (Julienne uses 127
// plus one overflow bucket).
const numOpen = 127

// Buckets maps vertices to integer priorities organized into buckets.
type Buckets struct {
	order Order
	prio  []uint32 // authoritative priority per vertex; Null = finalized
	base  uint32   // priority represented by open slot 0
	open  [numOpen][]uint32
	dead  [numOpen]atomic.Int64
	over  []uint32 // vertices whose priority lies outside the window
	cur   int      // next open slot to inspect
	live  int64    // non-finalized vertices
}

// New builds buckets over the vertices with initial priorities prio
// (ownership is taken). Vertices with priority Null are absent.
func New(prio []uint32, order Order) *Buckets {
	b := &Buckets{order: order, prio: prio}
	b.live = int64(parallel.Count(len(prio), 0, func(i int) bool { return prio[i] != Null }))
	b.rebase()
	return b
}

// Live returns the number of non-finalized vertices.
func (b *Buckets) Live() int { return int(b.live) }

// Priority returns the current priority of v (Null if finalized).
func (b *Buckets) Priority(v uint32) uint32 { return b.prio[v] }

// openIndex maps priority p to its open slot, or -1 for overflow.
// Priorities behind the window (possible only via clamping races) map to
// the current slot.
func (b *Buckets) openIndex(p uint32) int {
	if b.order == Increasing {
		switch {
		case p < b.base:
			return b.cur
		case p-b.base < numOpen:
			return int(p - b.base)
		default:
			return -1
		}
	}
	switch {
	case p > b.base:
		return b.cur
	case b.base-p < numOpen:
		return int(b.base - p)
	default:
		return -1
	}
}

// slotPriority is the priority represented by open slot i.
func (b *Buckets) slotPriority(i int) uint32 {
	if b.order == Increasing {
		return b.base + uint32(i)
	}
	return b.base - uint32(i)
}

// rebase rebuilds the open window around the extreme live priority and
// redistributes every live vertex.
func (b *Buckets) rebase() {
	for i := range b.open {
		b.open[i] = b.open[i][:0]
		b.dead[i].Store(0)
	}
	b.over = b.over[:0]
	b.cur = 0
	if b.live == 0 {
		return
	}
	if b.order == Increasing {
		b.base = parallel.Reduce(len(b.prio), 0, Null, func(i int) uint32 {
			return b.prio[i]
		}, func(x, y uint32) uint32 { return min(x, y) })
	} else {
		b.base = parallel.Reduce(len(b.prio), 0, uint32(0), func(i int) uint32 {
			if b.prio[i] == Null {
				return 0
			}
			return b.prio[i]
		}, func(x, y uint32) uint32 { return max(x, y) })
	}
	for v, p := range b.prio {
		if p == Null {
			continue
		}
		if i := b.openIndex(p); i >= 0 {
			b.open[i] = append(b.open[i], uint32(v))
		} else {
			b.over = append(b.over, uint32(v))
		}
	}
}

// NextBucket extracts the next non-empty bucket in priority order,
// finalizing its vertices (their priority becomes Null). It returns the
// bucket's priority and its live vertices; ok is false when nothing
// remains.
func (b *Buckets) NextBucket() (prio uint32, vertices []uint32, ok bool) {
	for b.live > 0 {
		for b.cur < numOpen {
			i := b.cur
			want := b.slotPriority(i)
			arr := b.open[i]
			if len(arr) == 0 {
				b.cur++
				continue
			}
			out := parallel.Filter(arr, func(v uint32) bool { return b.prio[v] == want })
			b.open[i] = arr[:0]
			b.dead[i].Store(0)
			if len(out) == 0 {
				b.cur++
				continue
			}
			parallel.For(len(out), 0, func(j int) { b.prio[out[j]] = Null })
			b.live -= int64(len(out))
			return want, out, true
		}
		b.rebase()
	}
	return 0, nil, false
}

// Update changes the priority of v to p (serial variant).
func (b *Buckets) Update(v, p uint32) {
	old := b.prio[v]
	if old == p {
		return
	}
	if old == Null {
		b.live++
	} else if i := b.openIndex(old); i >= 0 {
		b.dead[i].Add(1)
	}
	if p == Null {
		b.prio[v] = Null
		b.live--
		b.packStale()
		return
	}
	i := b.openIndex(p)
	if i < 0 {
		b.prio[v] = p
		b.over = append(b.over, v)
		b.packStale()
		return
	}
	b.prio[v] = b.slotPriority(i)
	b.open[i] = append(b.open[i], v)
	b.packStale()
}

// UpdateBatch applies priority updates ids[i] -> prios[i] in bulk. The
// ids must be distinct within one batch (the algorithms produce them from
// histograms or deduplicated frontiers). Updates are grouped by
// destination slot with a parallel sort so per-slot appends are
// race-free.
func (b *Buckets) UpdateBatch(ids, prios []uint32) {
	if len(ids) == 0 {
		return
	}
	if len(ids) != len(prios) {
		panic("bucket: ids/prios length mismatch")
	}
	const overSlot = numOpen
	type upd struct{ slot, v, p uint32 }
	ups := make([]upd, 0, len(ids))
	var liveDelta int64
	// Classify and account (serial transition counting is exact because
	// ids are distinct; the loop is cheap relative to the sort below).
	for k, v := range ids {
		p := prios[k]
		old := b.prio[v]
		if old == p {
			continue
		}
		if old == Null {
			liveDelta++
		} else if i := b.openIndex(old); i >= 0 {
			b.dead[i].Add(1)
		}
		if p == Null {
			b.prio[v] = Null
			liveDelta--
			continue
		}
		slot := uint32(overSlot)
		if i := b.openIndex(p); i >= 0 {
			slot = uint32(i)
			b.prio[v] = b.slotPriority(i)
		} else {
			b.prio[v] = p
		}
		ups = append(ups, upd{slot: slot, v: v, p: p})
	}
	b.live += liveDelta
	parallel.Sort(ups, func(x, y upd) bool { return x.slot < y.slot })
	starts := parallel.PackIndex(len(ups), func(i int) bool {
		return i == 0 || ups[i].slot != ups[i-1].slot
	})
	parallel.For(len(starts), 1, func(si int) {
		lo := int(starts[si])
		hi := len(ups)
		if si+1 < len(starts) {
			hi = int(starts[si+1])
		}
		slot := ups[lo].slot
		if slot == overSlot {
			return // appended serially below
		}
		arr := b.open[slot]
		for k := lo; k < hi; k++ {
			arr = append(arr, ups[k].v)
		}
		b.open[slot] = arr
	})
	if len(starts) > 0 {
		last := int(starts[len(starts)-1])
		if ups[last].slot == overSlot {
			for k := last; k < len(ups); k++ {
				b.over = append(b.over, ups[k].v)
			}
		}
	}
	b.packStale()
}

// packStale physically filters buckets whose dead entries outnumber the
// live ones (the semi-eager rule of Appendix B).
func (b *Buckets) packStale() {
	for i := 0; i < numOpen; i++ {
		d := b.dead[i].Load()
		if d == 0 || d*2 <= int64(len(b.open[i])) {
			continue
		}
		want := b.slotPriority(i)
		b.open[i] = parallel.Filter(b.open[i], func(v uint32) bool { return b.prio[v] == want })
		b.dead[i].Store(0)
	}
}

// SizeWords reports the current footprint in words (priorities plus
// bucket arrays), used by the O(n)-space assertions in the tests.
func (b *Buckets) SizeWords() int64 {
	s := int64(len(b.prio))/2 + int64(len(b.over))/2
	for i := range b.open {
		s += int64(cap(b.open[i])) / 2
	}
	return s
}
