package wal

// Group-commit coverage: the AppendBuffer/Commit barrier shares one
// leader fsync across a window of writers; a failed group flush rolls
// every buffered batch back together (and poisons chained appends with
// ErrStaleChain); Close resolves in-flight tickets; and the multi-writer
// crash enumeration proves every acknowledged batch survives any crash
// point while the survivors stay a clean sequence prefix.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestGroupCommitSharedFsync(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	ffs := NewFaultFS(nil)

	l, _, err := Open(base+".wal", fp, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p1, err := l.AppendBuffer([]Op{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.AppendBuffer([]Op{{U: 1, V: 2}}, p1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Seq() != 1 || p2.Seq() != 2 {
		t.Fatalf("seqs %d, %d", p1.Seq(), p2.Seq())
	}

	// Committing the later batch makes the earlier one durable too: one
	// leader fsync covers the whole buffered window, so the second
	// Commit must resolve without touching the disk again.
	before := ffs.Steps()
	if err := l.Commit(p2); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(p1); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Steps() - before; got != 1 {
		t.Fatalf("%d disk steps for two commits, want 1 shared fsync", got)
	}
	if st := l.Stats(); st.GroupSyncs != 1 || st.GroupBatches != 2 {
		t.Fatalf("group counters: %+v", st)
	}
}

func TestGroupCommitRollbackFailsWindow(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"
	ffs := NewFaultFS(nil)

	l, _, err := Open(walPath, fp, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Op{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}

	// Two buffered batches, then the disk stops fsyncing: the group
	// flush fails and BOTH roll back — the disk cannot say which of the
	// window's records it kept, so neither may be acknowledged.
	p2, err := l.AppendBuffer([]Op{{U: 1, V: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := l.AppendBuffer([]Op{{U: 2, V: 3}}, p2)
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetSyncError(true)
	if err := l.Commit(p2); !IsInjectedSync(err) {
		t.Fatalf("commit under sync failure: %v", err)
	}
	if err := l.Commit(p3); !IsInjectedSync(err) {
		t.Fatalf("chained commit after rollback: %v", err)
	}
	// A batch staged on top of the rolled-back window is stale: the
	// overlay state it extended never became durable.
	if _, err := l.AppendBuffer([]Op{{U: 3, V: 4}}, p3); !errors.Is(err, ErrStaleChain) {
		t.Fatalf("append on rolled-back chain: %v", err)
	}

	// The disk heals: the sequence counter rewound with the rollback, so
	// the next batch reuses seq 2, and replay sees exactly the two
	// successful batches.
	ffs.SetSyncError(false)
	if seq, err := l.Append([]Op{{U: 5, V: 6}}); err != nil || seq != 2 {
		t.Fatalf("append after heal: seq %d err %v", seq, err)
	}
	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 2 ||
		!opsEqual(rec.Batches[0].Ops, []Op{{U: 0, V: 1}}) ||
		!opsEqual(rec.Batches[1].Ops, []Op{{U: 5, V: 6}}) {
		t.Fatalf("recovered %+v", rec.Batches)
	}
}

func TestGroupCommitCloseResolvesTickets(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.AppendBuffer([]Op{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Close flushes the buffered window; the ticket resolves durable and
	// a late Commit on the closed log reports that, not ErrClosed.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(p); err != nil {
		t.Fatalf("commit after close-flush: %v", err)
	}
	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 1 {
		t.Fatalf("recovered %d batches", len(rec.Batches))
	}
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]Op{{U: uint32(w), V: uint32(i)}}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	st := l.Stats()
	if st.GroupBatches != writers*perWriter {
		t.Fatalf("group batches %d, want %d", st.GroupBatches, writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != writers*perWriter {
		t.Fatalf("recovered %d of %d batches", len(rec.Batches), writers*perWriter)
	}
	// Every writer's batches replay in its submission order (each writer
	// serialized itself), with none lost and none duplicated.
	next := make([]uint32, writers)
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) || len(b.Ops) != 1 {
			t.Fatalf("batch %d: seq %d, %d ops", i, b.Seq, len(b.Ops))
		}
		op := b.Ops[0]
		if op.V != next[op.U] {
			t.Fatalf("writer %d: batch %d replayed out of order", op.U, op.V)
		}
		next[op.U]++
	}
}

// crashWorkload drives several concurrent writers through one log on fs
// until the armed crash kills it, returning each writer's acknowledged
// count. rotate adds the segment cap so crash points land on rotation
// boundaries too.
func crashWorkload(dir string, fs *FaultFS, writers, perWriter int, rotate bool) (acked []int, openErr error) {
	base := filepath.Join(dir, "g.sg")
	fp, err := FingerprintFile(nil, base)
	if err != nil {
		return nil, err
	}
	opts := Options{FS: fs}
	if rotate {
		opts.SegmentBytes = 96
	}
	l, _, err := Open(base+".wal", fp, opts)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	acked = make([]int, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]Op{{U: uint32(w), V: uint32(i)}}); err != nil {
					return
				}
				acked[w]++
			}
		}(w)
	}
	wg.Wait()
	return acked, nil
}

func TestGroupCommitCrashEveryStep(t *testing.T) {
	// N concurrent writers, crash at every mutation step (so the crash
	// lands mid-group-commit — between buffering and the leader's fsync —
	// as often as anywhere else), with and without rotation. Invariants:
	// every acknowledged batch survives recovery; the survivors are a
	// contiguous sequence prefix; and per writer the surviving batches
	// are a prefix of its submission order, at most one past its acks
	// (the single batch it had in flight).
	const writers, perWriter = 4, 5
	for _, rotate := range []bool{false, true} {
		name := "flat"
		if rotate {
			name = "rotating"
		}
		t.Run(name, func(t *testing.T) {
			dryDir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dryDir, "g.sg"), []byte("base"), 0o644); err != nil {
				t.Fatal(err)
			}
			dry := NewFaultFS(nil)
			if _, err := crashWorkload(dryDir, dry, writers, perWriter, rotate); err != nil {
				t.Fatalf("dry run: %v", err)
			}
			steps := dry.Steps()
			if steps < 3+writers*perWriter {
				t.Fatalf("only %d steps in the dry run", steps)
			}

			for n := 1; n <= steps; n++ {
				for _, tear := range []int{0, 7} {
					t.Run(fmt.Sprintf("step%d/tear%d", n, tear), func(t *testing.T) {
						dir := t.TempDir()
						if err := os.WriteFile(filepath.Join(dir, "g.sg"), []byte("base"), 0o644); err != nil {
							t.Fatal(err)
						}
						ffs := NewFaultFS(nil)
						ffs.CrashAt(n, tear)
						acked, _ := crashWorkload(dir, ffs, writers, perWriter, rotate)
						if acked == nil { // crashed inside Open: nothing acked
							acked = make([]int, writers)
						}

						base := filepath.Join(dir, "g.sg")
						fp, err := FingerprintFile(nil, base)
						if err != nil {
							t.Fatal(err)
						}
						l, rec, err := Open(base+".wal", fp, Options{})
						if err != nil {
							t.Fatalf("recovery open: %v", err)
						}
						defer l.Close()

						totalAcked := 0
						for _, a := range acked {
							totalAcked += a
						}
						if rec.Discarded && totalAcked > 0 {
							t.Fatalf("chain with %d acked batches discarded", totalAcked)
						}
						// Survivors are a contiguous sequence prefix of real
						// submissions — no phantom, reordered, or corrupt batch.
						perW := make([]uint32, writers)
						for i, b := range rec.Batches {
							if b.Seq != uint64(i+1) || len(b.Ops) != 1 {
								t.Fatalf("batch %d: seq %d, %d ops", i, b.Seq, len(b.Ops))
							}
							op := b.Ops[0]
							if int(op.U) >= writers || op.V != perW[op.U] || op.W != 0 || op.Del {
								t.Fatalf("batch %d: phantom or out-of-order op %+v", i, op)
							}
							perW[op.U]++
						}
						// Acked batches all survived; at most the one batch each
						// writer had in flight may appear beyond its acks.
						for w := 0; w < writers; w++ {
							if got := int(perW[w]); got < acked[w] || got > acked[w]+1 {
								t.Fatalf("writer %d: acked %d, recovered %d", w, acked[w], got)
							}
						}
						// The recovered chain accepts new appends.
						if seq, err := l.Append([]Op{{U: 9, V: 9}}); err != nil || seq != uint64(len(rec.Batches)+1) {
							t.Fatalf("append after recovery: seq %d err %v", seq, err)
						}
					})
				}
			}
		})
	}
}
