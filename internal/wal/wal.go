// Package wal is the durable half of the batch-dynamic write path: a
// per-dataset write-ahead log of update batches. The semi-asymmetric
// design keeps the authoritative graph in a read-only container file and
// every mutation in a DRAM-resident overlay, which means a crash loses
// the overlay — unless the batches that built it were made durable
// first. The WAL records exactly that: each applied batch is encoded as
// a length-prefixed, CRC-checksummed record and (per a configurable
// fsync policy) flushed to storage before the overlay becomes visible,
// so a restarted server can replay surviving records onto the last
// durable container generation.
//
// # Segment layout
//
// One log file per dataset, conventionally at <dataset path> + ".wal":
//
//	header (32 B): magic "SAGEWAL1" | version u32 | flags u32 |
//	               base size u64 | base crc u32 | reserved u32
//	record*:       payload len u32 | payload crc32c u32 |
//	               payload (seq u64 | nops u32 | ops...)
//	op (13 B):     u u32 | v u32 | w i32 | flags u8 (bit0 = del)
//
// All integers are little-endian. The header's base fingerprint ties the
// segment to the container generation its records apply onto: a
// compaction writes a new container and retires the segment, and if the
// process dies between those two steps the stale segment's fingerprint
// no longer matches the (new) container, so replay discards it instead
// of applying already-folded batches twice. Replay is idempotent either
// way around the crash point.
//
// # Recovery
//
// Open scans the segment sequentially and stops at the first record that
// is short, oversized, or fails its checksum — a torn tail from a crash
// mid-append — truncating the file there. Everything before the torn
// record is intact (records are written in order and fsynced per
// policy), so recovery always yields a prefix of the appended batches:
// the state either before or after any given batch, never a hybrid.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	magic        = "SAGEWAL1"
	walVersion   = 1
	headerSize   = 32
	recHeader    = 8        // payload length u32 + crc32c u32
	opSize       = 13       // u u32 + v u32 + w i32 + flags u8
	maxRecordLen = 64 << 20 // sanity bound on one record's payload
	// fingerprintSpan bounds how much of the container file the base
	// fingerprint hashes (a prefix and a suffix): enough to distinguish
	// container generations without re-reading a multi-GB graph at open.
	fingerprintSpan = 256 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log is closed")

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before it returns: a batch is
	// durable before its overlay becomes visible. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every Interval:
	// bounded data loss (at most one interval of batches) for much
	// cheaper appends.
	SyncInterval
	// SyncNever leaves flushing to the operating system entirely.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the flag spelling ("always", "interval", "never").
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configures Open.
type Options struct {
	// FS is the filesystem the log lives on; nil means the real one.
	FS FS
	// Policy selects when appends are fsynced (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background flush period under SyncInterval
	// (default 100ms).
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Fingerprint identifies one container generation: the file's size plus
// a CRC of its leading and trailing bytes. Compaction rewrites the
// container, changing the fingerprint, which is how replay tells records
// meant for the previous generation from live ones.
type Fingerprint struct {
	Size uint64
	CRC  uint32
}

// FingerprintFile fingerprints the container at path through fsys.
func FingerprintFile(fsys FS, path string) (Fingerprint, error) {
	if fsys == nil {
		fsys = OS
	}
	info, err := fsys.Stat(path)
	if err != nil {
		return Fingerprint{}, err
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return Fingerprint{}, err
	}
	defer f.Close()
	size := info.Size()
	span := int64(fingerprintSpan)
	crc := crc32.New(castagnoli)
	if size <= 2*span {
		if _, err := io.Copy(crc, f); err != nil {
			return Fingerprint{}, err
		}
	} else {
		if _, err := io.CopyN(crc, f, span); err != nil {
			return Fingerprint{}, err
		}
		if _, err := f.Seek(size-span, io.SeekStart); err != nil {
			return Fingerprint{}, err
		}
		if _, err := io.Copy(crc, f); err != nil {
			return Fingerprint{}, err
		}
	}
	return Fingerprint{Size: uint64(size), CRC: crc.Sum32()}, nil
}

// Op is one undirected edge mutation, mirroring the overlay's op type.
type Op struct {
	U, V uint32
	W    int32
	Del  bool
}

// Batch is one replayed record: the ops of one update batch, its
// sequence number within the segment, and the file offset its record
// ends at (for surgical truncation when a batch fails to re-apply).
type Batch struct {
	Seq    uint64
	Ops    []Op
	EndOff int64
}

// Recovery reports what Open found in an existing segment.
type Recovery struct {
	// Batches are the surviving records in append order.
	Batches []Batch
	// Discarded reports that a whole stale segment was dropped: its
	// header was corrupt or its base fingerprint did not match the
	// container (a compaction retired the base after these records were
	// folded in).
	Discarded bool
	// TornBytes counts trailing bytes truncated at the first short,
	// oversized, or checksum-failing record.
	TornBytes int64
}

// Log is one dataset's write-ahead segment. All methods are safe for
// concurrent use, though the serving layer serializes appends per
// dataset anyway.
type Log struct {
	fs   FS
	path string
	opts Options

	mu      sync.Mutex
	f       File
	goodOff int64 // end of the last fully appended record
	curOff  int64 // bytes physically written (>= goodOff after a failed append)
	seq     uint64
	dirty   bool  // appended records not yet fsynced
	syncErr error // sticky background-flush failure; cleared by a later success
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if absent) the segment at path for the container
// generation identified by base, replaying surviving records. A segment
// whose header is corrupt or whose fingerprint does not match base is
// discarded and reinitialized; a torn or corrupt tail is truncated at
// the first bad record. The returned log appends after the last good
// record, continuing its sequence numbering.
func Open(path string, base Fingerprint, opts Options) (*Log, Recovery, error) {
	opts = opts.withDefaults()
	var rec Recovery
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, rec, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	l := &Log{fs: opts.FS, path: path, opts: opts, f: f}

	fresh := len(data) == 0
	if !fresh && !headerMatches(data, base) {
		rec.Discarded = true
		fresh = true
	}
	if fresh {
		if err := l.initSegment(base, len(data) > 0); err != nil {
			_ = f.Close()
			return nil, rec, err
		}
	} else {
		off := int64(headerSize)
		for int64(len(data)) > off {
			n, batch, ok := decodeRecord(data, off)
			if !ok {
				break
			}
			batch.EndOff = off + n
			rec.Batches = append(rec.Batches, batch)
			l.seq = batch.Seq
			off += n
		}
		if torn := int64(len(data)) - off; torn > 0 {
			rec.TornBytes = torn
			if err := f.Truncate(off); err != nil {
				_ = f.Close()
				return nil, rec, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, rec, err
		}
		l.goodOff, l.curOff = off, off
	}

	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, rec, nil
}

// headerMatches validates the segment header against the expected base.
func headerMatches(data []byte, base Fingerprint) bool {
	if len(data) < headerSize || string(data[:8]) != magic {
		return false
	}
	le := binary.LittleEndian
	return le.Uint32(data[8:]) == walVersion &&
		le.Uint64(data[16:]) == base.Size &&
		le.Uint32(data[24:]) == base.CRC
}

// initSegment (re)writes a fresh header for base. The header is synced
// immediately regardless of policy — it is written once per generation
// and a lost header would discard every later record.
func (l *Log) initSegment(base Fingerprint, truncate bool) error {
	if truncate {
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: resetting stale segment %s: %w", l.path, err)
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], walVersion)
	le.PutUint64(hdr[16:], base.Size)
	le.PutUint32(hdr[24:], base.CRC)
	if _, err := l.f.Write(hdr); err != nil {
		return fmt.Errorf("wal: writing header of %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing header of %s: %w", l.path, err)
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	l.goodOff, l.curOff = headerSize, headerSize
	return nil
}

// decodeRecord decodes the record at off, returning its total length.
// ok is false for a short, oversized, or checksum-failing record — the
// torn-tail signal.
func decodeRecord(data []byte, off int64) (n int64, batch Batch, ok bool) {
	le := binary.LittleEndian
	rest := data[off:]
	if len(rest) < recHeader {
		return 0, batch, false
	}
	plen := le.Uint32(rest)
	if plen > maxRecordLen || int64(len(rest)) < recHeader+int64(plen) {
		return 0, batch, false
	}
	payload := rest[recHeader : recHeader+int(plen)]
	if crc32.Checksum(payload, castagnoli) != le.Uint32(rest[4:]) {
		return 0, batch, false
	}
	if len(payload) < 12 {
		return 0, batch, false
	}
	batch.Seq = le.Uint64(payload)
	nops := le.Uint32(payload[8:])
	if int(nops)*opSize != len(payload)-12 {
		return 0, batch, false
	}
	batch.Ops = make([]Op, nops)
	for i := range batch.Ops {
		p := payload[12+i*opSize:]
		batch.Ops[i] = Op{
			U:   le.Uint32(p),
			V:   le.Uint32(p[4:]),
			W:   int32(le.Uint32(p[8:])),
			Del: p[12]&1 != 0,
		}
	}
	return recHeader + int64(plen), batch, true
}

// encodeRecord builds the on-disk form of one batch.
func encodeRecord(seq uint64, ops []Op) []byte {
	le := binary.LittleEndian
	plen := 12 + len(ops)*opSize
	buf := make([]byte, recHeader+plen)
	payload := buf[recHeader:]
	le.PutUint64(payload, seq)
	le.PutUint32(payload[8:], uint32(len(ops)))
	for i, op := range ops {
		p := payload[12+i*opSize:]
		le.PutUint32(p, op.U)
		le.PutUint32(p[4:], op.V)
		le.PutUint32(p[8:], uint32(op.W))
		if op.Del {
			p[12] = 1
		}
	}
	le.PutUint32(buf, uint32(plen))
	le.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// Append logs one batch, fsyncing per the configured policy before
// returning. On any error the batch is NOT durable and must not become
// visible; the log cleans the partial record off the tail (now, or on
// the next Append if the disk refuses even the truncate). Under
// SyncInterval a sticky background-flush failure is surfaced here — the
// append probes the disk first, so recovery is automatic once the log
// becomes writable again.
//
//sage:durable
//sage:durable-append
func (l *Log) Append(ops []Op) (seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	// Clear damage left by a previous failed append or background flush:
	// a torn record on the tail would truncate every later record at
	// replay, so it must be gone before anything new is written.
	if l.curOff != l.goodOff {
		if err := l.truncateToGoodLocked(); err != nil {
			return 0, fmt.Errorf("wal: clearing torn tail: %w", err)
		}
	}
	if l.syncErr != nil {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: flush still failing: %w", err)
		}
		l.syncErr = nil
		l.dirty = false
	}

	rec := encodeRecord(l.seq+1, ops)
	n, werr := l.f.Write(rec)
	l.curOff += int64(n)
	if werr == nil && n < len(rec) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		// Best-effort cleanup; Append retries it next time if this fails.
		l.truncateToGoodLocked()
		return 0, fmt.Errorf("wal: appending batch: %w", werr)
	}
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			// The record may or may not have reached storage; cut it off
			// so a crash cannot resurrect a batch the caller rejected.
			l.truncateToGoodLocked()
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
	default:
		l.dirty = true
	}
	l.seq++
	l.goodOff = l.curOff
	return l.seq, nil
}

// truncateToGoodLocked cuts the file back to the last good record.
func (l *Log) truncateToGoodLocked() error {
	if err := l.f.Truncate(l.goodOff); err != nil {
		return err
	}
	if _, err := l.f.Seek(l.goodOff, io.SeekStart); err != nil {
		return err
	}
	l.curOff = l.goodOff
	return nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				if err := l.f.Sync(); err != nil {
					l.syncErr = err
				} else {
					l.dirty = false
					l.syncErr = nil
				}
			}
			l.mu.Unlock()
		}
	}
}

// Sync flushes appended records now, regardless of policy.
//
//sage:durable
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	l.dirty, l.syncErr = false, nil
	return nil
}

// Err returns the sticky background-flush failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// Seq returns the sequence number of the last appended record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the segment's logical size (through the last good record).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.goodOff
}

// Path returns the segment's file path.
func (l *Log) Path() string { return l.path }

// TruncateTo cuts the segment back to off — the EndOff of the last batch
// that should survive (or the header size for none). Recovery uses it
// when a logged batch fails to re-apply, treating everything from that
// record on like a corrupt tail.
//
//sage:durable
func (l *Log) TruncateTo(off int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if off < headerSize || off > l.goodOff {
		return fmt.Errorf("wal: TruncateTo(%d) outside [%d, %d]", off, headerSize, l.goodOff)
	}
	if err := l.f.Truncate(off); err != nil {
		return err
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	l.goodOff, l.curOff = off, off
	return l.f.Sync()
}

// HeaderSize returns the offset of the first record — the TruncateTo
// argument that drops every batch.
func HeaderSize() int64 { return headerSize }

// Close flushes (unless SyncNever) and closes the segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	stop, done := l.stop, l.done
	var first error
	if l.dirty && l.opts.Policy != SyncNever {
		first = l.f.Sync()
	}
	if err := l.f.Close(); first == nil {
		first = err
	}
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return first
}

// CloseAndRemove retires the segment: close, delete the file, and sync
// the directory. Compaction calls it after the new container generation
// is durably in place — from then on replaying these records would
// double-apply them (and their fingerprint no longer matches, so even a
// crash between the container rename and this removal is safe).
//
//sage:durable
func (l *Log) CloseAndRemove() error {
	err := l.Close()
	if err != nil && !errors.Is(err, ErrClosed) {
		// Close-flush failure does not matter for a file being deleted.
		err = nil
	}
	if rerr := l.fs.Remove(l.path); rerr != nil && !os.IsNotExist(rerr) {
		return rerr
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	return err
}
