// Package wal is the durable half of the batch-dynamic write path: a
// per-dataset write-ahead log of update batches. The semi-asymmetric
// design keeps the authoritative graph in a read-only container file and
// every mutation in a DRAM-resident overlay, which means a crash loses
// the overlay — unless the batches that built it were made durable
// first. The WAL records exactly that: each applied batch is encoded as
// a length-prefixed, CRC-checksummed record and (per a configurable
// fsync policy) flushed to storage before the overlay becomes visible,
// so a restarted server can replay surviving records onto the last
// durable container generation.
//
// # Group commit
//
// Appending and flushing are split so concurrent writers share fsyncs:
// AppendBuffer assigns the batch its sequence number and writes the
// record under the log's lock, returning a Pending ticket; Commit is the
// group-commit barrier — the first committer becomes the leader and
// fsyncs once for every record buffered before the flush began, then
// resolves all of their tickets. Under SyncAlways a batch is durable
// exactly when its Commit returns nil. Because fsync makes the whole
// file durable (a prefix, never a subset), a failed group flush cannot
// leave holes: the log truncates back to the last durable offset and
// fails every unresolved ticket, so callers re-stage from published
// state (AppendBuffer reports ErrStaleChain when asked to extend a
// rolled-back ticket).
//
// # Segment layout and rotation
//
// One log chain per dataset. The active segment lives at
// <dataset path> + ".wal"; when Options.SegmentBytes caps its size, a
// full segment is sealed by renaming it to <path>.1, <path>.2, … and a
// fresh active segment continues the chain. Each segment:
//
//	header (48 B): magic "SAGEWAL2" | version u32 | segment index u32 |
//	               base size u64 | base crc u32 | reserved u32 |
//	               prev last seq u64 | prev segment length u64
//	record*:       payload len u32 | payload crc32c u32 |
//	               payload (seq u64 | nops u32 | ops...)
//	op (13 B):     u u32 | v u32 | w i32 | flags u8 (bit0 = del)
//
// All integers are little-endian. The header's base fingerprint ties the
// segment to the container generation its records apply onto: a
// compaction writes a new container and retires the chain, and if the
// process dies between those two steps the stale segments' fingerprints
// no longer match the (new) container, so replay discards them instead
// of applying already-folded batches twice. The prev fields link each
// segment to its predecessor (last sequence number and byte length), so
// recovery can verify the chain is whole before trusting it. Segment
// indices are 1-based and the active segment's index always equals the
// sealed count plus one.
//
// # Recovery
//
// Open enumerates the sealed chain (a consecutive <path>.1..K prefix by
// construction), verifies every header and link, and replays records in
// chain order, enforcing sequence continuity across boundaries. The
// first short, oversized, or checksum-failing record — a torn tail from
// a crash mid-append — cuts the chain there: in the active segment the
// tail is truncated; inside a sealed segment the later segments are
// removed and the cut segment, truncated to its last good record,
// becomes the active segment again. Everything before the cut is intact,
// so recovery always yields a prefix of the appended batches: the state
// either before or after any given batch, never a hybrid. A crash
// between rotation steps (sealed chain present, active missing or its
// header torn) is also just a prefix: the header is fsynced before any
// record lands in a segment, so a torn active header proves the segment
// held nothing acknowledged.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	magic        = "SAGEWAL2"
	walVersion   = 2
	headerSize   = 48
	recHeader    = 8        // payload length u32 + crc32c u32
	opSize       = 13       // u u32 + v u32 + w i32 + flags u8
	maxRecordLen = 64 << 20 // sanity bound on one record's payload
	// fingerprintSpan bounds how much of the container file the base
	// fingerprint hashes (a prefix and a suffix): enough to distinguish
	// container generations without re-reading a multi-GB graph at open.
	fingerprintSpan = 256 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log is closed")

// ErrStaleChain reports an AppendBuffer whose `after` ticket was rolled
// back: the batch the caller staged on top of never became durable, so
// the caller must re-apply from published state before logging.
var ErrStaleChain = errors.New("wal: chained batch was rolled back")

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every batch's group-commit barrier before its
	// Commit returns: a batch is durable before its overlay becomes
	// visible. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every Interval:
	// bounded data loss (at most one interval of batches) for much
	// cheaper appends.
	SyncInterval
	// SyncNever leaves flushing to the operating system entirely.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the flag spelling ("always", "interval", "never").
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configures Open.
type Options struct {
	// FS is the filesystem the log lives on; nil means the real one.
	FS FS
	// Policy selects when appends are fsynced (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background flush period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes caps the active segment: an append that would push it
	// past the cap first seals it into the numbered chain and starts a
	// fresh segment. 0 disables rotation. A single record larger than
	// the cap still fits — it gets a segment of its own.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Fingerprint identifies one container generation: the file's size plus
// a CRC of its leading and trailing bytes. Compaction rewrites the
// container, changing the fingerprint, which is how replay tells records
// meant for the previous generation from live ones.
type Fingerprint struct {
	Size uint64
	CRC  uint32
}

// FingerprintFile fingerprints the container at path through fsys.
func FingerprintFile(fsys FS, path string) (Fingerprint, error) {
	if fsys == nil {
		fsys = OS
	}
	info, err := fsys.Stat(path)
	if err != nil {
		return Fingerprint{}, err
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return Fingerprint{}, err
	}
	defer f.Close()
	size := info.Size()
	span := int64(fingerprintSpan)
	crc := crc32.New(castagnoli)
	if size <= 2*span {
		if _, err := io.Copy(crc, f); err != nil {
			return Fingerprint{}, err
		}
	} else {
		if _, err := io.CopyN(crc, f, span); err != nil {
			return Fingerprint{}, err
		}
		if _, err := f.Seek(size-span, io.SeekStart); err != nil {
			return Fingerprint{}, err
		}
		if _, err := io.Copy(crc, f); err != nil {
			return Fingerprint{}, err
		}
	}
	return Fingerprint{Size: uint64(size), CRC: crc.Sum32()}, nil
}

// Op is one undirected edge mutation, mirroring the overlay's op type.
type Op struct {
	U, V uint32
	W    int32
	Del  bool
}

// Batch is one replayed record: the ops of one update batch, its
// sequence number within the chain, the segment it lives in, and the
// offset its record ends at within that segment (for surgical truncation
// when a batch fails to re-apply).
type Batch struct {
	Seq    uint64
	Ops    []Op
	Seg    int
	EndOff int64
}

// Recovery reports what Open found in an existing chain.
type Recovery struct {
	// Batches are the surviving records in append order.
	Batches []Batch
	// Discarded reports that a whole stale chain was dropped: a header
	// was corrupt, a link was broken, or the base fingerprint did not
	// match the container (a compaction retired the base after these
	// records were folded in).
	Discarded bool
	// TornBytes counts record bytes dropped at the chain cut — the torn
	// tail of the active segment, or everything from the first bad
	// record on when the cut lands inside a sealed segment.
	TornBytes int64
}

// SegmentPath names the j-th sealed segment of the chain rooted at the
// active path: <path>.1, <path>.2, ...
func SegmentPath(path string, j int) string {
	return fmt.Sprintf("%s.%d", path, j)
}

// Pending is one buffered batch's commit ticket: AppendBuffer issues it,
// Commit resolves it at the group-commit barrier. A ticket belongs to
// the Log that issued it.
type Pending struct {
	seq  uint64
	done bool  // guarded by the issuing Log's mu
	err  error // guarded by the issuing Log's mu
}

// Seq returns the chain sequence number AppendBuffer assigned the batch.
func (p *Pending) Seq() uint64 { return p.seq }

// Log is one dataset's write-ahead chain. All methods are safe for
// concurrent use; AppendBuffer/Commit are designed for it.
type Log struct {
	fs   FS
	path string
	base Fingerprint
	opts Options

	mu         sync.Mutex
	cond       *sync.Cond // broadcast when a flush resolves or state repairs
	f          File       // the active segment (nil only after dieLocked)
	segIdx     uint32     // active segment's header index == sealed count + 1
	goodOff    int64      // end of the last fully appended record (active segment)
	curOff     int64      // bytes physically written (>= goodOff after a failed append)
	seq        uint64     // last assigned sequence number (chain-global)
	durableOff int64      // prefix of the active segment known flushed
	durableSeq uint64     // last sequence number known flushed
	syncing    bool       // a group-commit leader's fsync is in flight (mu released)
	pending    []*Pending // buffered but unresolved tickets, in seq order
	dirty      bool       // appended records not yet fsynced (interval/never policies)
	syncErr    error      // sticky flush failure; cleared by a later success
	closed     bool

	rotations    int64
	groupSyncs   int64
	groupBatches int64

	stop chan struct{}
	done chan struct{}
}

// Stats is a point-in-time snapshot of a log's chain shape and
// group-commit activity.
type Stats struct {
	Segments     int   // files in the chain: sealed segments plus the active one
	Rotations    int64 // segments sealed since this log opened
	GroupSyncs   int64 // leader fsyncs taken on the commit barrier
	GroupBatches int64 // batches those fsyncs made durable
}

// Stats reports the log's chain shape and group-commit counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:     int(l.segIdx),
		Rotations:    l.rotations,
		GroupSyncs:   l.groupSyncs,
		GroupBatches: l.groupBatches,
	}
}

// header is the decoded form of a segment header.
type header struct {
	index   uint32
	prevSeq uint64
	prevLen uint64
}

// parseHeader decodes and validates data's header against base. ok is
// false when the header is unreadable (short, wrong magic or version);
// stale is true when it parses but names another container generation.
func parseHeader(data []byte, base Fingerprint) (h header, ok, stale bool) {
	if len(data) < headerSize || string(data[:8]) != magic {
		return h, false, false
	}
	le := binary.LittleEndian
	if le.Uint32(data[8:]) != walVersion {
		return h, false, false
	}
	h.index = le.Uint32(data[12:])
	h.prevSeq = le.Uint64(data[32:])
	h.prevLen = le.Uint64(data[40:])
	if le.Uint64(data[16:]) != base.Size || le.Uint32(data[24:]) != base.CRC {
		return h, true, true
	}
	return h, true, false
}

// Open opens (creating if absent) the chain rooted at path for the
// container generation identified by base, replaying surviving records
// in chain order. A chain whose headers are corrupt, whose links are
// broken, or whose fingerprints do not match base is discarded and
// reinitialized; a torn or corrupt tail cuts the chain at the first bad
// record. The returned log appends after the last good record,
// continuing its sequence numbering.
func Open(path string, base Fingerprint, opts Options) (*Log, Recovery, error) {
	opts = opts.withDefaults()
	var rec Recovery
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	active, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, rec, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	// The sealed chain is a consecutive 1..K prefix by construction:
	// sealing appends at the top, retirement removes from the top.
	var sealed [][]byte
	for {
		sp := SegmentPath(path, len(sealed)+1)
		if _, err := opts.FS.Stat(sp); err != nil {
			break
		}
		sf, err := opts.FS.OpenFile(sp, os.O_RDONLY, 0)
		if err != nil {
			_ = f.Close()
			return nil, rec, fmt.Errorf("wal: opening %s: %w", sp, err)
		}
		data, rerr := io.ReadAll(sf)
		if cerr := sf.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			_ = f.Close()
			return nil, rec, fmt.Errorf("wal: reading %s: %w", sp, rerr)
		}
		sealed = append(sealed, data)
	}

	l := &Log{fs: opts.FS, path: path, base: base, opts: opts, f: f, segIdx: 1}
	l.cond = sync.NewCond(&l.mu)
	if err := l.recoverChain(sealed, active, &rec); err != nil {
		if l.f != nil {
			_ = l.f.Close()
		}
		return nil, rec, err
	}
	l.durableOff, l.durableSeq = l.goodOff, l.seq
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, rec, nil
}

// recoverChain validates headers and links, replays records in chain
// order, and repairs whatever a crash (or corruption) left behind. On
// return l.f is the open active segment positioned at l.goodOff.
func (l *Log) recoverChain(sealed [][]byte, active []byte, rec *Recovery) error {
	// Headers first: the chain's fate is decided as a whole. A sealed
	// segment is written and fsynced in full before it joins the chain,
	// so an unreadable or foreign header there means the entire chain
	// predates the current container generation.
	heads := make([]header, len(sealed))
	for i, data := range sealed {
		h, ok, stale := parseHeader(data, l.base)
		if !ok || stale || h.index != uint32(i+1) {
			rec.Discarded = true
			return l.resetChainLocked(len(sealed))
		}
		heads[i] = h
	}
	activeIdx := len(sealed) + 1
	var ah header
	haveActive := false
	if len(active) > 0 {
		h, ok, stale := parseHeader(active, l.base)
		switch {
		case stale:
			rec.Discarded = true
			return l.resetChainLocked(len(sealed))
		case !ok && len(sealed) == 0:
			// Garbage where the only segment's header should be.
			rec.Discarded = true
			return l.resetChainLocked(0)
		case !ok:
			// Torn active header from a crash mid-rotation: the header
			// is fsynced before any record lands, so nothing
			// acknowledged lives here. Recreate it below; the sealed
			// records still count.
		case int(h.index) <= len(sealed):
			// A crash mid-retirement left sealed segments at or above
			// the active's index: the active header is the authority —
			// those files were condemned before it was (re)written.
			for j := len(sealed); j >= int(h.index); j-- {
				if err := l.removeSeg(j); err != nil {
					return err
				}
			}
			l.fs.SyncDir(filepath.Dir(l.path))
			sealed = sealed[:h.index-1]
			heads = heads[:h.index-1]
			activeIdx = int(h.index)
			ah, haveActive = h, true
		case int(h.index) == len(sealed)+1:
			ah, haveActive = h, true
		default:
			// index > sealed count + 1: a sealed segment vanished, so
			// the surviving records have a sequence gap. Nothing here
			// can be trusted.
			rec.Discarded = true
			return l.resetChainLocked(len(sealed))
		}
	}

	// Replay in chain order, enforcing link and sequence continuity at
	// every boundary.
	expSeq := uint64(0)
	prevLen := uint64(0)
	for i, data := range sealed {
		if heads[i].prevSeq != expSeq || heads[i].prevLen != prevLen {
			rec.Discarded = true
			rec.Batches = nil
			return l.resetChainLocked(len(sealed))
		}
		off := int64(headerSize)
		for int64(len(data)) > off {
			n, batch, ok := decodeRecord(data, off)
			if !ok || batch.Seq != expSeq+1 {
				break
			}
			batch.Seg, batch.EndOff = i+1, off+n
			rec.Batches = append(rec.Batches, batch)
			expSeq++
			off += n
		}
		if off < int64(len(data)) {
			// Corruption inside a sealed segment: the rest of the chain
			// is unreachable (sequence gap). Cut here — this segment,
			// truncated to its last good record, becomes the active
			// segment again.
			rec.TornBytes = chainBytesAfter(sealed[i:], active, off)
			return l.cutChainLocked(i+1, off, expSeq, len(sealed))
		}
		prevLen = uint64(len(data))
	}

	if !haveActive {
		// Fresh log, or a crash between sealing a segment and creating
		// its successor (or a torn active header). Start the next
		// segment of the chain; the sealed prefix survives as-is.
		l.segIdx = uint32(activeIdx)
		l.seq = expSeq
		return l.initActiveLocked(uint32(activeIdx), expSeq, prevLen, len(active) > 0)
	}
	if ah.prevSeq != expSeq || ah.prevLen != prevLen {
		rec.Discarded = true
		rec.Batches = nil
		return l.resetChainLocked(len(sealed))
	}
	off := int64(headerSize)
	for int64(len(active)) > off {
		n, batch, ok := decodeRecord(active, off)
		if !ok || batch.Seq != expSeq+1 {
			break
		}
		batch.Seg, batch.EndOff = activeIdx, off+n
		rec.Batches = append(rec.Batches, batch)
		expSeq++
		off += n
	}
	if torn := int64(len(active)) - off; torn > 0 {
		rec.TornBytes = torn
		if err := l.f.Truncate(off); err != nil {
			return fmt.Errorf("wal: truncating torn tail of %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	l.segIdx = uint32(activeIdx)
	l.seq = expSeq
	l.goodOff, l.curOff = off, off
	return nil
}

// chainBytesAfter totals the record bytes a chain cut drops: the rest of
// the cut segment (segs[0], from off), every later sealed segment's
// records, and the active segment's records.
func chainBytesAfter(segs [][]byte, active []byte, off int64) int64 {
	total := int64(len(segs[0])) - off
	for _, data := range segs[1:] {
		if n := int64(len(data)) - headerSize; n > 0 {
			total += n
		}
	}
	if n := int64(len(active)) - headerSize; n > 0 {
		total += n
	}
	return total
}

// resetChainLocked discards the whole chain: the active segment is
// rewritten as a fresh index-1 header for the current base, then the
// sealed files are removed from the top down. Ordering matters for
// crash safety — once the active header is durable it is the authority,
// so a crash mid-removal leaves orphans above its index that the next
// recovery deletes without replaying.
func (l *Log) resetChainLocked(sealedCount int) error {
	if err := l.initActiveLocked(1, 0, 0, true); err != nil {
		return err
	}
	for j := sealedCount; j >= 1; j-- {
		if err := l.removeSeg(j); err != nil {
			return err
		}
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	l.segIdx = 1
	l.seq, l.durableSeq = 0, 0
	l.durableOff = headerSize
	return nil
}

// cutChainLocked truncates the chain after the record ending at endOff
// in sealed segment seg: later sealed segments and the active segment
// are removed, and the cut segment becomes the active one. The active
// file is removed first so every crash point leaves a state recovery
// already handles (a sealed prefix with no active resumes from the
// prefix and re-finds this same cut).
func (l *Log) cutChainLocked(seg int, endOff int64, lastSeq uint64, sealedCount int) error {
	dir := filepath.Dir(l.path)
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing active segment during chain cut: %w", err)
	}
	l.f = nil
	if err := l.fs.Remove(l.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	for j := sealedCount; j > seg; j-- {
		if err := l.removeSeg(j); err != nil {
			return err
		}
	}
	l.fs.SyncDir(dir)
	sp := SegmentPath(l.path, seg)
	sf, err := l.fs.OpenFile(sp, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := sf.Truncate(endOff); err != nil {
		_ = sf.Close()
		return err
	}
	if err := sf.Sync(); err != nil {
		_ = sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(sp, l.path); err != nil {
		return err
	}
	l.fs.SyncDir(dir)
	f, err := l.fs.OpenFile(l.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if _, err := f.Seek(endOff, io.SeekStart); err != nil {
		_ = f.Close()
		return err
	}
	l.f = f
	l.segIdx = uint32(seg)
	l.seq = lastSeq
	l.goodOff, l.curOff = endOff, endOff
	l.durableOff, l.durableSeq = endOff, lastSeq
	return nil
}

// removeSeg deletes sealed segment j, tolerating its absence.
func (l *Log) removeSeg(j int) error {
	if err := l.fs.Remove(SegmentPath(l.path, j)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// initActiveLocked (re)writes the active segment's header: index, the
// link to its predecessor, and the base fingerprint. The header is
// synced immediately regardless of policy — it is written once per
// segment and a lost header would orphan every later record.
func (l *Log) initActiveLocked(index uint32, prevSeq, prevLen uint64, truncate bool) error {
	if truncate {
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: resetting segment %s: %w", l.path, err)
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], walVersion)
	le.PutUint32(hdr[12:], index)
	le.PutUint64(hdr[16:], l.base.Size)
	le.PutUint32(hdr[24:], l.base.CRC)
	le.PutUint64(hdr[32:], prevSeq)
	le.PutUint64(hdr[40:], prevLen)
	if _, err := l.f.Write(hdr); err != nil {
		return fmt.Errorf("wal: writing header of %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing header of %s: %w", l.path, err)
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	l.goodOff, l.curOff = headerSize, headerSize
	return nil
}

// decodeRecord decodes the record at off, returning its total length.
// ok is false for a short, oversized, or checksum-failing record — the
// torn-tail signal.
func decodeRecord(data []byte, off int64) (n int64, batch Batch, ok bool) {
	le := binary.LittleEndian
	rest := data[off:]
	if len(rest) < recHeader {
		return 0, batch, false
	}
	plen := le.Uint32(rest)
	if plen > maxRecordLen || int64(len(rest)) < recHeader+int64(plen) {
		return 0, batch, false
	}
	payload := rest[recHeader : recHeader+int(plen)]
	if crc32.Checksum(payload, castagnoli) != le.Uint32(rest[4:]) {
		return 0, batch, false
	}
	if len(payload) < 12 {
		return 0, batch, false
	}
	batch.Seq = le.Uint64(payload)
	nops := le.Uint32(payload[8:])
	if int(nops)*opSize != len(payload)-12 {
		return 0, batch, false
	}
	batch.Ops = make([]Op, nops)
	for i := range batch.Ops {
		p := payload[12+i*opSize:]
		batch.Ops[i] = Op{
			U:   le.Uint32(p),
			V:   le.Uint32(p[4:]),
			W:   int32(le.Uint32(p[8:])),
			Del: p[12]&1 != 0,
		}
	}
	return recHeader + int64(plen), batch, true
}

// encodeRecord builds the on-disk form of one batch.
func encodeRecord(seq uint64, ops []Op) []byte {
	le := binary.LittleEndian
	plen := 12 + len(ops)*opSize
	buf := make([]byte, recHeader+plen)
	payload := buf[recHeader:]
	le.PutUint64(payload, seq)
	le.PutUint32(payload[8:], uint32(len(ops)))
	for i, op := range ops {
		p := payload[12+i*opSize:]
		le.PutUint32(p, op.U)
		le.PutUint32(p[4:], op.V)
		le.PutUint32(p[8:], uint32(op.W))
		if op.Del {
			p[12] = 1
		}
	}
	le.PutUint32(buf, uint32(plen))
	le.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// recordLen is the on-disk size of a batch of len(ops) ops.
func recordLen(ops []Op) int64 {
	return int64(recHeader + 12 + len(ops)*opSize)
}

// AppendBuffer writes one batch's record into the active segment,
// assigning it the next sequence number, and returns its commit ticket.
// The batch is NOT durable until Commit(ticket) returns nil (except
// under the interval/never policies, where the ticket resolves
// immediately and durability is the flusher's business). after, if
// non-nil, declares that the batch was applied on top of the overlay
// state staged by that earlier ticket: if that ticket has already been
// rolled back, AppendBuffer reports ErrStaleChain and writes nothing —
// the caller must re-apply its ops onto published state and try again.
//
// On any other error nothing was buffered; the log cleans any partial
// record off the tail (now, or on the next append if the disk refuses
// even the truncate).
//
//sage:durable
func (l *Log) AppendBuffer(ops []Op, after *Pending) (*Pending, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return nil, ErrClosed
		}
		if after != nil && after.done && after.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStaleChain, after.err)
		}
		needRotate := l.opts.SegmentBytes > 0 && l.goodOff > headerSize &&
			l.goodOff+recordLen(ops) > l.opts.SegmentBytes
		needRepair := l.curOff != l.goodOff || l.syncErr != nil
		if (needRotate || needRepair) && l.syncing {
			// Repair and rotation need exclusive use of the file; wait
			// out the in-flight group fsync and re-validate.
			l.cond.Wait()
			continue
		}
		// Clear damage left by a failed append or flush: a torn record
		// on the tail would truncate every later record at replay, so it
		// must be gone before anything new is written.
		if l.curOff != l.goodOff {
			if err := l.truncateToGoodLocked(); err != nil {
				return nil, fmt.Errorf("wal: clearing torn tail: %w", err)
			}
		}
		if l.syncErr != nil {
			// Probe the disk before accepting more work; a success here
			// makes everything already written durable (fsync flushes
			// the whole file), so resolve any tickets still waiting.
			if err := l.f.Sync(); err != nil {
				return nil, fmt.Errorf("wal: flush still failing: %w", err)
			}
			l.syncErr = nil
			l.dirty = false
			l.durableOff, l.durableSeq = l.goodOff, l.seq
			l.groupBatches += int64(l.resolveLocked(l.seq, nil))
			l.cond.Broadcast()
		}
		if needRotate {
			if err := l.rotateLocked(); err != nil {
				return nil, err
			}
			continue // the rotation flush may have moved any of the state above
		}
		break
	}

	p := &Pending{seq: l.seq + 1}
	rec := encodeRecord(p.seq, ops)
	n, werr := l.f.Write(rec)
	l.curOff += int64(n)
	if werr == nil && n < len(rec) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		// Best-effort cleanup; the next append retries it if this fails.
		l.truncateToGoodLocked()
		return nil, fmt.Errorf("wal: appending batch: %w", werr)
	}
	l.seq = p.seq
	l.goodOff = l.curOff
	if l.opts.Policy == SyncAlways {
		l.pending = append(l.pending, p)
	} else {
		l.dirty = true
		p.done = true
	}
	return p, nil
}

// Commit is the group-commit barrier: it returns once the batch behind p
// is durable (nil) or the batch was rolled back (the rollback's error).
// The first committer to arrive while no flush is running becomes the
// leader: it fsyncs once for every record buffered before the flush
// began and resolves all of their tickets. On a failed flush the log
// truncates back to its durable prefix and fails every unresolved
// ticket — the disk cannot say which of the window's records it kept, so
// none of them may become visible.
//
//sage:durable
func (l *Log) Commit(p *Pending) error {
	if p == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if p.done {
			return p.err
		}
		if l.closed {
			return ErrClosed
		}
		if !l.syncing {
			l.syncing = true
			targetOff, targetSeq := l.goodOff, l.seq
			l.groupSyncs++
			l.mu.Unlock()
			err := l.f.Sync()
			l.mu.Lock()
			l.syncing = false
			if err != nil {
				l.rollbackLocked(err)
			} else {
				if targetOff > l.durableOff {
					l.durableOff = targetOff
				}
				if targetSeq > l.durableSeq {
					l.durableSeq = targetSeq
				}
				l.syncErr = nil
				l.groupBatches += int64(l.resolveLocked(targetSeq, nil))
			}
			l.cond.Broadcast()
			continue
		}
		l.cond.Wait()
	}
}

// Append logs one batch and awaits its group-commit barrier: the v1
// single-writer interface, kept for callers without concurrency.
//
//sage:durable
//sage:durable-append
func (l *Log) Append(ops []Op) (seq uint64, err error) {
	p, err := l.AppendBuffer(ops, nil)
	if err != nil {
		return 0, err
	}
	if err := l.Commit(p); err != nil {
		return 0, err
	}
	return p.seq, nil
}

// resolveLocked resolves every ticket with seq <= upto, returning how
// many it settled.
func (l *Log) resolveLocked(upto uint64, err error) int {
	n := 0
	rest := l.pending[:0]
	for _, p := range l.pending {
		if p.seq <= upto {
			p.done, p.err = true, err
			n++
		} else {
			rest = append(rest, p)
		}
	}
	l.pending = rest
	return n
}

// rollbackLocked handles a failed group flush: the file is cut back to
// its durable prefix, the sequence counter rewinds with it, and every
// unresolved ticket fails — buffered records between the durable prefix
// and the failure cannot be told apart, so all of them are withdrawn.
func (l *Log) rollbackLocked(cause error) {
	werr := fmt.Errorf("wal: fsync: %w", cause)
	for _, p := range l.pending {
		p.done, p.err = true, werr
	}
	l.pending = l.pending[:0]
	if l.f.Truncate(l.durableOff) == nil {
		if _, err := l.f.Seek(l.durableOff, io.SeekStart); err == nil {
			l.curOff = l.durableOff
		}
	}
	// If the truncate failed, curOff stays ahead of goodOff and the next
	// append clears the tail before writing.
	l.goodOff = l.durableOff
	l.seq = l.durableSeq
	l.syncErr = cause
}

// rotateLocked seals the active segment into the numbered chain and
// starts its successor. The seal fsync doubles as a group-commit flush
// for every batch waiting on the barrier.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		l.rollbackLocked(err)
		l.cond.Broadcast()
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.durableOff, l.durableSeq = l.goodOff, l.seq
	l.syncErr = nil
	l.groupBatches += int64(l.resolveLocked(l.seq, nil))
	l.cond.Broadcast()
	sealedLen := uint64(l.goodOff)
	prevSeq := l.seq
	if err := l.f.Close(); err != nil {
		l.dieLocked(err)
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.f = nil
	sp := SegmentPath(l.path, int(l.segIdx))
	if err := l.fs.Rename(l.path, sp); err != nil {
		// The rename never happened; reattach to the still-named active
		// segment and report the rotation failed. The log stays usable.
		f, oerr := l.fs.OpenFile(l.path, os.O_RDWR, 0)
		if oerr != nil {
			l.dieLocked(oerr)
			return fmt.Errorf("wal: rotating segment: %w", err)
		}
		if _, serr := f.Seek(l.goodOff, io.SeekStart); serr != nil {
			_ = f.Close()
			l.dieLocked(serr)
			return fmt.Errorf("wal: rotating segment: %w", err)
		}
		l.f = f
		return fmt.Errorf("wal: rotating segment: %w", err)
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	f, err := l.fs.OpenFile(l.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		l.dieLocked(err)
		return fmt.Errorf("wal: rotating segment: %w", err)
	}
	l.f = f
	l.segIdx++
	if err := l.initActiveLocked(l.segIdx, prevSeq, sealedLen, false); err != nil {
		l.dieLocked(err)
		return err
	}
	l.durableOff, l.durableSeq = headerSize, prevSeq
	l.rotations++
	return nil
}

// dieLocked marks the log unusable after a rotation left the file
// detached (closed, or renamed with no replacement). Pending batches
// fail; the on-disk chain stays fully recoverable — callers reopen from
// disk via Open.
func (l *Log) dieLocked(cause error) {
	l.closed = true
	werr := fmt.Errorf("wal: log failed: %w", cause)
	for _, p := range l.pending {
		p.done, p.err = true, werr
	}
	l.pending = nil
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
	if l.stop != nil {
		close(l.stop)
		l.stop = nil
	}
	l.cond.Broadcast()
}

// truncateToGoodLocked cuts the active segment back to the last good record.
func (l *Log) truncateToGoodLocked() error {
	if err := l.f.Truncate(l.goodOff); err != nil {
		return err
	}
	if _, err := l.f.Seek(l.goodOff, io.SeekStart); err != nil {
		return err
	}
	l.curOff = l.goodOff
	return nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				if err := l.f.Sync(); err != nil {
					l.syncErr = err
				} else {
					l.dirty = false
					l.syncErr = nil
					l.durableOff, l.durableSeq = l.goodOff, l.seq
				}
			}
			l.mu.Unlock()
		}
	}
}

// Sync flushes appended records now, regardless of policy.
//
//sage:durable
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	l.dirty, l.syncErr = false, nil
	l.durableOff, l.durableSeq = l.goodOff, l.seq
	l.groupBatches += int64(l.resolveLocked(l.seq, nil))
	l.cond.Broadcast()
	return nil
}

// Err returns the sticky flush failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// Seq returns the sequence number of the last buffered record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the active segment's logical size (through the last good
// record).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.goodOff
}

// Path returns the active segment's file path.
func (l *Log) Path() string { return l.path }

// TruncateTo cuts the chain back to b — the last batch that should
// survive (the zero Batch for none). Recovery uses it when a logged
// batch fails to re-apply, treating everything from that record on like
// a corrupt tail: a cut inside a sealed segment removes the later
// segments and reinstates the cut one as active. TruncateTo requires a
// quiet log (no commits in flight).
//
//sage:durable
func (l *Log) TruncateTo(b Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncing || len(l.pending) > 0 {
		return errors.New("wal: TruncateTo with commits in flight")
	}
	switch {
	case b.Seq == 0:
		return l.resetChainLocked(int(l.segIdx) - 1)
	case b.Seg == int(l.segIdx):
		if b.EndOff < headerSize || b.EndOff > l.goodOff {
			return fmt.Errorf("wal: TruncateTo(%d) outside [%d, %d]", b.EndOff, headerSize, l.goodOff)
		}
		if err := l.f.Truncate(b.EndOff); err != nil {
			return err
		}
		if _, err := l.f.Seek(b.EndOff, io.SeekStart); err != nil {
			return err
		}
		l.goodOff, l.curOff = b.EndOff, b.EndOff
		l.seq = b.Seq
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.durableOff, l.durableSeq = b.EndOff, b.Seq
		return nil
	case b.Seg >= 1 && b.Seg < int(l.segIdx):
		return l.cutChainLocked(b.Seg, b.EndOff, b.Seq, int(l.segIdx)-1)
	}
	return fmt.Errorf("wal: TruncateTo batch in unknown segment %d of %d", b.Seg, l.segIdx)
}

// HeaderSize returns the offset of the first record in any segment.
func HeaderSize() int64 { return headerSize }

// Close waits out any in-flight group flush, flushes buffered records
// (unless SyncNever), resolves their tickets, and closes the active
// segment. Tickets that could not be flushed fail.
func (l *Log) Close() error {
	l.mu.Lock()
	for l.syncing && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	stop, done := l.stop, l.done
	var first error
	if (l.dirty || len(l.pending) > 0) && l.opts.Policy != SyncNever {
		first = l.f.Sync()
		if first == nil {
			l.durableOff, l.durableSeq = l.goodOff, l.seq
			l.groupBatches += int64(l.resolveLocked(l.seq, nil))
		}
	}
	if len(l.pending) > 0 {
		cause := first
		if cause == nil {
			cause = ErrClosed
		}
		werr := fmt.Errorf("wal: closed before commit: %w", cause)
		for _, p := range l.pending {
			p.done, p.err = true, werr
		}
		l.pending = nil
	}
	if err := l.f.Close(); first == nil {
		first = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return first
}

// CloseAndRemove retires the chain: close, delete every segment, and
// sync the directory. Compaction calls it after the new container
// generation is durably in place — from then on replaying these records
// would double-apply them (and their fingerprints no longer match, so
// even a crash between the container rename and this removal is safe).
// The active file goes first, then the sealed segments from the top
// down, so a crash mid-removal leaves a consecutive prefix with no
// orphans.
//
//sage:durable
func (l *Log) CloseAndRemove() error {
	l.mu.Lock()
	sealedCount := int(l.segIdx) - 1
	l.mu.Unlock()
	err := l.Close()
	if err != nil && !errors.Is(err, ErrClosed) {
		// Close-flush failure does not matter for files being deleted.
		err = nil
	}
	if rerr := l.fs.Remove(l.path); rerr != nil && !os.IsNotExist(rerr) {
		return rerr
	}
	for j := sealedCount; j >= 1; j-- {
		if rerr := l.fs.Remove(SegmentPath(l.path, j)); rerr != nil && !os.IsNotExist(rerr) {
			return rerr
		}
	}
	l.fs.SyncDir(filepath.Dir(l.path))
	return err
}
