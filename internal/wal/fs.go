package wal

// The filesystem seam. Every byte the WAL reads or writes goes through
// the FS interface, so tests can substitute a fault-injecting
// implementation (FaultFS) that simulates short writes, fsync errors,
// full disks, and crashes at arbitrary points of the write path — the
// failure modes a durability layer exists to survive, none of which a
// healthy CI disk produces on its own.

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the slice of filesystem behavior the WAL depends on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (os.FileInfo, error)
	// SyncDir flushes the directory entry metadata of dir, making
	// renames and creates within it durable.
	SyncDir(dir string) error
}

// File is the slice of *os.File behavior the WAL uses.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	// Sync flushes written data to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Some filesystems cannot fsync a directory handle (EINVAL); the
	// rename itself is still atomic there, so directory-sync failure is
	// not propagated as a durability error.
	_ = d.Sync()
	return d.Close()
}
