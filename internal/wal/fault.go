package wal

// FaultFS: the crash simulator behind the durability tests. It wraps a
// real filesystem and counts every mutation (write, sync, truncate,
// rename, remove, directory sync) as one step; a test arms a crash at
// step N and replays a workload, and when the counter hits N the
// filesystem "loses power": the in-flight operation takes partial
// effect, every open file is cut back to its last fsynced length (plus
// an optional torn fragment of unsynced bytes), and all further
// operations fail with ErrCrashed. Enumerating N over Steps() from a
// dry run visits every crash point of the write path exactly once.
//
// It also injects the two non-fatal failure modes a durability layer
// must degrade under: sticky fsync errors (SetSyncError) and short
// writes (SetWriteLimit, the ENOSPC shape — the first write that would
// exceed the budget lands partially and errors).

import (
	"errors"
	"io"
	"os"
	"sync"
)

// ErrCrashed is returned by every operation after the armed crash point
// has fired — the process-is-dead phase of a simulated power loss.
var ErrCrashed = errors.New("wal: simulated crash")

// errInjectedSync is the sticky failure installed by SetSyncError.
var errInjectedSync = errors.New("wal: injected fsync error")

// errNoSpace is the injected short-write failure (the ENOSPC shape).
var errNoSpace = errors.New("wal: injected disk full")

// FaultFS is a fault-injecting FS for tests. The zero value is not
// usable; construct with NewFaultFS.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	steps     int // mutation operations performed so far
	crashAt   int // crash when steps reaches this (0 = disarmed)
	tearBytes int // unsynced bytes that survive the crash, per file
	crashed   bool
	syncErr   bool  // injected fsync failure (sticky until cleared)
	budget    int64 // remaining write bytes; -1 = unlimited
	files     map[*faultFile]struct{}
}

// NewFaultFS wraps inner (nil for the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, budget: -1, files: map[*faultFile]struct{}{}}
}

// Steps returns the number of mutation operations performed so far. A
// dry run's final count enumerates the workload's crash points.
func (fs *FaultFS) Steps() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.steps
}

// CrashAt arms a crash at the n-th mutation (1-based): that operation
// takes partial effect and everything after it fails with ErrCrashed.
// Pass tear > 0 to let up to that many unsynced bytes survive on each
// open file — the torn-tail case.
func (fs *FaultFS) CrashAt(n, tear int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt, fs.tearBytes = n, tear
}

// Crashed reports whether the armed crash has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// SetSyncError makes every Sync (file and directory) fail until cleared
// — the sticky-EIO disk. Writes keep succeeding; only durability fails.
func (fs *FaultFS) SetSyncError(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncErr = on
}

// SetWriteLimit bounds the bytes all future writes may add (-1 for
// unlimited). The write that would exceed the budget lands partially
// and returns a disk-full error — the ENOSPC short-write shape.
func (fs *FaultFS) SetWriteLimit(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.budget = n
}

// step advances the mutation counter and fires the armed crash,
// reporting (crashNow, alreadyDead). The operation that trips the
// counter sees crashNow and applies its partial effect; later calls see
// alreadyDead.
func (fs *FaultFS) step() (crashNow, dead bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return false, true
	}
	fs.steps++
	if fs.crashAt > 0 && fs.steps >= fs.crashAt {
		fs.crashed = true
		return true, false
	}
	return false, false
}

// loseUnsynced tears every open file down to its durable prefix (plus
// the configured torn fragment) — the power-loss moment.
func (fs *FaultFS) loseUnsynced() {
	fs.mu.Lock()
	files := make([]*faultFile, 0, len(fs.files))
	for f := range fs.files {
		files = append(files, f)
	}
	tear := fs.tearBytes
	fs.mu.Unlock()
	for _, f := range files {
		f.tearTo(tear)
	}
}

// OpenFile opens name; opening is a read of the namespace, not a step.
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return nil, ErrCrashed
	}
	fs.mu.Unlock()
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if info, err := fs.inner.Stat(name); err == nil {
		size = info.Size()
	}
	ff := &faultFile{fs: fs, f: f, name: name, durable: size, size: size}
	fs.mu.Lock()
	fs.files[ff] = struct{}{}
	fs.mu.Unlock()
	return ff, nil
}

// Rename counts as one step; on a crash at this step the rename does
// not happen (the old name survives — rename is atomic, so partial
// effect is all-or-nothing and the crash models "not yet").
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	crash, dead := fs.step()
	if dead {
		return ErrCrashed
	}
	if crash {
		fs.loseUnsynced()
		return ErrCrashed
	}
	return fs.inner.Rename(oldpath, newpath)
}

// Remove counts as one step; a crash at this step leaves the file.
func (fs *FaultFS) Remove(name string) error {
	crash, dead := fs.step()
	if dead {
		return ErrCrashed
	}
	if crash {
		fs.loseUnsynced()
		return ErrCrashed
	}
	return fs.inner.Remove(name)
}

// Stat is a pure read — never a step, but dead after a crash.
func (fs *FaultFS) Stat(name string) (os.FileInfo, error) {
	fs.mu.Lock()
	if fs.crashed {
		fs.mu.Unlock()
		return nil, ErrCrashed
	}
	fs.mu.Unlock()
	return fs.inner.Stat(name)
}

// SyncDir counts as one step and honors the injected sync error.
func (fs *FaultFS) SyncDir(dir string) error {
	crash, dead := fs.step()
	if dead {
		return ErrCrashed
	}
	if crash {
		fs.loseUnsynced()
		return ErrCrashed
	}
	fs.mu.Lock()
	bad := fs.syncErr
	fs.mu.Unlock()
	if bad {
		return errInjectedSync
	}
	return fs.inner.SyncDir(dir)
}

// faultFile tracks, alongside the real file, how much of it is durable
// (fsynced) versus merely written, so a simulated crash can discard
// exactly the unsynced suffix.
type faultFile struct {
	fs   *FaultFS
	name string

	mu      sync.Mutex
	f       File
	durable int64 // fsynced length
	size    int64 // written length
	off     int64 // current file offset
	closed  bool
}

func (f *faultFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead() {
		return 0, ErrCrashed
	}
	n, err := f.f.Read(p)
	f.off += int64(n)
	return n, err
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead() {
		return 0, ErrCrashed
	}
	pos, err := f.f.Seek(offset, whence)
	if err == nil {
		f.off = pos
	}
	return pos, err
}

// Write is one step. At the crash step the write lands in full before
// power dies (the kernel had the page; tearTo decides how much survives
// the lost cache). Under a write budget, the portion that fits lands
// and the rest returns disk-full.
func (f *faultFile) Write(p []byte) (int, error) {
	crash, dead := f.fs.step()
	if dead {
		return 0, ErrCrashed
	}

	f.fs.mu.Lock()
	budget := f.fs.budget
	f.fs.mu.Unlock()
	short := false
	if budget >= 0 {
		if int64(len(p)) > budget {
			p, short = p[:budget], true
		}
		f.fs.mu.Lock()
		f.fs.budget -= int64(len(p))
		f.fs.mu.Unlock()
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, os.ErrClosed
	}
	n, err := f.f.Write(p)
	f.off += int64(n)
	if f.off > f.size {
		f.size = f.off
	}
	f.mu.Unlock()

	if crash {
		f.fs.loseUnsynced()
		return n, ErrCrashed
	}
	if err == nil && short {
		err = errNoSpace
	}
	return n, err
}

// Sync is one step: on success everything written so far is durable.
func (f *faultFile) Sync() error {
	crash, dead := f.fs.step()
	if dead {
		return ErrCrashed
	}
	if crash {
		// Power died during the fsync: nothing new promoted to durable.
		f.fs.loseUnsynced()
		return ErrCrashed
	}
	f.fs.mu.Lock()
	bad := f.fs.syncErr
	f.fs.mu.Unlock()
	if bad {
		return errInjectedSync
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.durable = f.size
	return nil
}

// Truncate is one step; at the crash step it does not take effect.
func (f *faultFile) Truncate(size int64) error {
	crash, dead := f.fs.step()
	if dead {
		return ErrCrashed
	}
	if crash {
		f.fs.loseUnsynced()
		return ErrCrashed
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.size = size
	if f.durable > size {
		f.durable = size
	}
	return nil
}

// Close is a read-side operation (no step); it does NOT promote written
// bytes to durable — close-without-sync loses data in this model, as on
// a real disk with volatile write cache.
func (f *faultFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return os.ErrClosed
	}
	f.closed = true
	err := f.f.Close()
	f.mu.Unlock()
	f.fs.mu.Lock()
	delete(f.fs.files, f)
	f.fs.mu.Unlock()
	return err
}

// dead reports whether the filesystem has crashed (caller holds f.mu;
// fs.mu ordering is fs before file, so take it briefly without f.mu —
// a bool read under the fs lock).
func (f *faultFile) dead() bool {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.crashed
}

// tearTo applies the crash to this file: cut it back to the durable
// prefix plus at most tear unsynced bytes. The underlying file is
// manipulated directly — the wrapper is already "dead" to its user.
func (f *faultFile) tearTo(tear int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		// The bytes are in the real file; tear them there too.
		keep := f.durable + int64(tear)
		if keep < f.size {
			if g, err := f.fs.inner.OpenFile(f.name, os.O_RDWR, 0); err == nil {
				g.Truncate(keep)
				_ = g.Close()
			}
		}
		return
	}
	keep := f.durable + int64(tear)
	if keep > f.size {
		keep = f.size
	}
	f.f.Truncate(keep)
	f.size = keep
	f.f.Seek(keep, io.SeekStart)
}

// IsNoSpace reports whether err is the injected disk-full failure.
func IsNoSpace(err error) bool { return errors.Is(err, errNoSpace) }

// IsInjectedSync reports whether err is the injected fsync failure.
func IsInjectedSync(err error) bool { return errors.Is(err, errInjectedSync) }
