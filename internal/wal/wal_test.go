package wal

// Unit coverage of the segment format and lifecycle: append/replay round
// trips, torn-tail truncation, fingerprint-based stale-segment discard,
// surgical truncation, and the degraded-disk paths (sticky fsync errors,
// short writes) that the read-only serving mode leans on.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// newBase writes a fake container file and fingerprints it.
func newBase(t *testing.T, dir string, contents []byte) (string, Fingerprint) {
	t.Helper()
	path := filepath.Join(dir, "g.sg")
	if err := os.WriteFile(path, contents, 0o644); err != nil {
		t.Fatal(err)
	}
	fp, err := FingerprintFile(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	return path, fp
}

// sampleBatches is a fixed workload exercising every op field.
func sampleBatches() [][]Op {
	return [][]Op{
		{{U: 0, V: 1}, {U: 2, V: 3, W: 7}},
		{{U: 1, V: 2, Del: true}},
		{{U: 4, V: 5, W: -3}, {U: 0, V: 1, Del: true}, {U: 6, V: 7}},
	}
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container-v1"))
	walPath := base + ".wal"

	l, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 0 || rec.Discarded || rec.TornBytes != 0 {
		t.Fatalf("fresh segment recovered %+v", rec)
	}
	batches := sampleBatches()
	for i, b := range batches {
		seq, err := l.Append(b)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Batches) != len(batches) {
		t.Fatalf("recovered %d batches, want %d", len(rec.Batches), len(batches))
	}
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) || !opsEqual(b.Ops, batches[i]) {
			t.Fatalf("batch %d: got seq %d ops %v, want %v", i, b.Seq, b.Ops, batches[i])
		}
		if b.EndOff <= HeaderSize() {
			t.Fatalf("batch %d: EndOff %d", i, b.EndOff)
		}
	}
	// Sequence numbering continues after recovery.
	if seq, err := l2.Append([]Op{{U: 8, V: 9}}); err != nil || seq != uint64(len(batches)+1) {
		t.Fatalf("post-recovery append: seq %d err %v", seq, err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := sampleBatches()
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := l.Size()
	_ = l.Close()

	// A crash mid-append leaves a torn fragment on the tail.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}) // claims 9 payload bytes, has 0
	_ = f.Close()

	l2, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != len(batches) || rec.TornBytes != 6 {
		t.Fatalf("torn recovery: %d batches, %d torn bytes", len(rec.Batches), rec.TornBytes)
	}
	if l2.Size() != goodSize {
		t.Fatalf("torn tail not truncated: size %d want %d", l2.Size(), goodSize)
	}
	_ = l2.Close()
	if info, _ := os.Stat(walPath); info.Size() != goodSize {
		t.Fatalf("file still torn on disk: %d", info.Size())
	}
}

func TestCorruptMiddleRecordTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, _ := Open(walPath, fp, Options{})
	batches := sampleBatches()
	var ends []int64
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	_ = l.Close()

	// Flip a payload byte of the second record: it and everything after it
	// must be cut off, the first record must survive.
	data, _ := os.ReadFile(walPath)
	data[ends[0]+recHeader+2] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Batches) != 1 || !opsEqual(rec.Batches[0].Ops, batches[0]) {
		t.Fatalf("recovered %d batches", len(rec.Batches))
	}
	if l2.Size() != ends[0] {
		t.Fatalf("size %d, want truncation at %d", l2.Size(), ends[0])
	}
}

func TestFingerprintMismatchDiscardsSegment(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("generation-1"))
	walPath := base + ".wal"

	l, _, _ := Open(walPath, fp, Options{})
	for _, b := range sampleBatches() {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	_ = l.Close()

	// "Compaction" rewrites the container; the stale segment's records
	// must not replay onto the new generation.
	if err := os.WriteFile(base, []byte("generation-2: compacted"), 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, err := FingerprintFile(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp {
		t.Fatal("fingerprint did not change with the container")
	}
	l2, rec, err := Open(walPath, fp2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !rec.Discarded || len(rec.Batches) != 0 {
		t.Fatalf("stale segment not discarded: %+v", rec)
	}
	if l2.Size() != HeaderSize() {
		t.Fatalf("discarded segment not reset: size %d", l2.Size())
	}
	// The fresh segment serves the new generation.
	if seq, err := l2.Append([]Op{{U: 0, V: 1}}); err != nil || seq != 1 {
		t.Fatalf("append after discard: seq %d err %v", seq, err)
	}
}

func TestCorruptHeaderDiscardsSegment(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"
	if err := os.WriteFile(walPath, []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !rec.Discarded || len(rec.Batches) != 0 {
		t.Fatalf("corrupt header not discarded: %+v", rec)
	}
}

func TestTruncateToDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, _ := Open(walPath, fp, Options{})
	batches := sampleBatches()
	var ends []int64
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	if err := l.TruncateTo(Batch{Seq: 1, Seg: 1, EndOff: ends[0]}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(Batch{Seq: 2, Seg: 1, EndOff: ends[1]}); err == nil {
		t.Fatal("TruncateTo past the end accepted")
	}
	_ = l.Close()

	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 1 {
		t.Fatalf("recovered %d batches after TruncateTo", len(rec.Batches))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Fatalf("String() = %q, want %q", p.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestStickySyncErrorDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"
	ffs := NewFaultFS(nil)

	l, _, err := Open(walPath, fp, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Op{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}

	// The disk stops fsyncing: appends must fail (the batch cannot be
	// promised durable) and must not leave torn records behind.
	ffs.SetSyncError(true)
	if _, err := l.Append([]Op{{U: 1, V: 2}}); !IsInjectedSync(err) {
		t.Fatalf("append under sync failure: %v", err)
	}
	if _, err := l.Append([]Op{{U: 2, V: 3}}); !IsInjectedSync(err) {
		t.Fatalf("second append under sync failure: %v", err)
	}

	// The disk heals: the next append succeeds without reopening anything.
	ffs.SetSyncError(false)
	if seq, err := l.Append([]Op{{U: 3, V: 4}}); err != nil || seq != 2 {
		t.Fatalf("append after heal: seq %d err %v", seq, err)
	}

	// Replay sees exactly the two successful batches.
	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 2 ||
		!opsEqual(rec.Batches[0].Ops, []Op{{U: 0, V: 1}}) ||
		!opsEqual(rec.Batches[1].Ops, []Op{{U: 3, V: 4}}) {
		t.Fatalf("recovered %+v", rec.Batches)
	}
}

func TestDiskFullShortWriteDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"
	ffs := NewFaultFS(nil)

	l, _, err := Open(walPath, fp, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Op{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	good := l.Size()

	// The disk fills: the record lands partially and the append fails.
	ffs.SetWriteLimit(5)
	if _, err := l.Append([]Op{{U: 1, V: 2}}); !IsNoSpace(err) {
		t.Fatalf("append on full disk: %v", err)
	}
	// Space frees: the torn record is cleaned off and the append lands.
	ffs.SetWriteLimit(-1)
	if seq, err := l.Append([]Op{{U: 2, V: 3}}); err != nil || seq != 2 {
		t.Fatalf("append after space freed: seq %d err %v", seq, err)
	}
	if l.Size() <= good {
		t.Fatal("second record not appended")
	}

	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 2 || rec.TornBytes != 0 {
		t.Fatalf("recovered %d batches, %d torn", len(rec.Batches), rec.TornBytes)
	}
}

func TestIntervalPolicyBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	ffs := NewFaultFS(nil)

	l, _, err := Open(base+".wal", fp, Options{FS: ffs, Policy: SyncInterval, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	before := ffs.Steps()
	if _, err := l.Append([]Op{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	// The append itself must not sync (that is the policy's point); the
	// background flusher does within a few intervals.
	deadline := time.Now().Add(2 * time.Second)
	for ffs.Steps() < before+2 { // +1 write, +1 background sync
		if time.Now().After(deadline) {
			t.Fatal("background flush never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseAndRemoveRetiresSegment(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, _ := Open(walPath, fp, Options{})
	if _, err := l.Append([]Op{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseAndRemove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Fatalf("segment survives retirement: %v", err)
	}
	// A fresh open after retirement starts an empty generation.
	_, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 0 || rec.Discarded {
		t.Fatalf("retired segment recovered %+v", rec)
	}
}

func TestFingerprintDistinguishesLargeFiles(t *testing.T) {
	// Files bigger than twice the fingerprint span hash only a prefix and
	// suffix; a middle-only change is intentionally not caught (compaction
	// rewrites change the size or the CSR header/edge tail in practice),
	// but prefix, suffix, and size changes must be.
	dir := t.TempDir()
	big := bytes.Repeat([]byte{0xab}, 3*fingerprintSpan)
	path, fp := newBase(t, dir, big)

	big[0] ^= 1
	if err := os.WriteFile(path, big, 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, _ := FingerprintFile(nil, path)
	if fp2 == fp {
		t.Fatal("prefix change not detected")
	}
	big[0] ^= 1
	big[len(big)-1] ^= 1
	os.WriteFile(path, big, 0o644)
	fp3, _ := FingerprintFile(nil, path)
	if fp3 == fp {
		t.Fatal("suffix change not detected")
	}
	big[len(big)-1] ^= 1
	os.WriteFile(path, append(big, 0), 0o644)
	fp4, _ := FingerprintFile(nil, path)
	if fp4 == fp {
		t.Fatal("size change not detected")
	}
}
