package wal

// Segment-rotation coverage: chains build under a SegmentBytes cap and
// replay in order across segment boundaries; recovery cuts a corrupt
// chain at the first bad record even when that lands inside a sealed
// segment; a stale chain (compacted container) is discarded whole; and
// TruncateTo reaches back through the chain. The crash-at-every-step
// enumeration re-runs the single-writer workload with rotation on, so
// every mutation of the seal/rename/reinit dance is a visited crash
// point.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// smallCap fits the 48-byte header plus one single-op record (33 bytes),
// so every batch in the rotation tests gets a segment of its own.
const smallCap = 64

// singleOpBatches is n one-op batches with recognizable fields.
func singleOpBatches(n int) [][]Op {
	batches := make([][]Op, n)
	for i := range batches {
		batches[i] = []Op{{U: uint32(i), V: uint32(i + 1)}}
	}
	return batches
}

func TestRotationChainAppendReplay(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{SegmentBytes: smallCap})
	if err != nil {
		t.Fatal(err)
	}
	batches := singleOpBatches(10)
	for i, b := range batches {
		seq, err := l.Append(b)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	st := l.Stats()
	if st.Segments != 10 || st.Rotations != 9 {
		t.Fatalf("chain shape: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 9; j++ {
		if _, err := os.Stat(SegmentPath(walPath, j)); err != nil {
			t.Fatalf("sealed segment %d: %v", j, err)
		}
	}
	if _, err := os.Stat(SegmentPath(walPath, 10)); !os.IsNotExist(err) {
		t.Fatal("active segment leaked into the sealed chain")
	}

	// Replay crosses every boundary in chain order; rotation config is
	// not needed to read a chain back.
	l2, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Discarded || len(rec.Batches) != len(batches) {
		t.Fatalf("chain recovery: %+v", rec)
	}
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) || b.Seg != i+1 || !opsEqual(b.Ops, batches[i]) {
			t.Fatalf("batch %d: seq %d seg %d ops %v", i, b.Seq, b.Seg, b.Ops)
		}
	}
	// Sequence numbering continues across the whole chain.
	if seq, err := l2.Append([]Op{{U: 99, V: 100}}); err != nil || seq != 11 {
		t.Fatalf("post-recovery append: seq %d err %v", seq, err)
	}
}

func TestRotationRecoveryCutInSealedSegment(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{SegmentBytes: smallCap})
	if err != nil {
		t.Fatal(err)
	}
	batches := singleOpBatches(5)
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of segment 2's record: everything from that
	// record on — segments 2 through 5 — is unreachable; segment 1 must
	// survive and the truncated segment 2 becomes the active again.
	sp := SegmentPath(walPath, 2)
	data, err := os.ReadFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	data[HeaderSize()+recHeader+2] ^= 0xff
	if err := os.WriteFile(sp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Discarded || rec.TornBytes == 0 {
		t.Fatalf("cut recovery: %+v", rec)
	}
	if len(rec.Batches) != 1 || !opsEqual(rec.Batches[0].Ops, batches[0]) {
		t.Fatalf("recovered %d batches past the cut", len(rec.Batches))
	}
	for j := 2; j <= 4; j++ {
		if _, err := os.Stat(SegmentPath(walPath, j)); !os.IsNotExist(err) {
			t.Fatalf("segment %d survived the cut: %v", j, err)
		}
	}
	if st := l2.Stats(); st.Segments != 2 {
		t.Fatalf("chain shape after cut: %+v", st)
	}
	// The reinstated active continues right after the cut.
	if seq, err := l2.Append([]Op{{U: 7, V: 8}}); err != nil || seq != 2 {
		t.Fatalf("append after cut: seq %d err %v", seq, err)
	}
}

func TestRotationStaleChainDiscarded(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("generation-1"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{SegmentBytes: smallCap})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range singleOpBatches(4) {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Compaction" rewrites the container: no segment of the old chain
	// may replay onto the new generation.
	if err := os.WriteFile(base, []byte("generation-2: compacted"), 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, err := FingerprintFile(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(walPath, fp2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !rec.Discarded || len(rec.Batches) != 0 {
		t.Fatalf("stale chain not discarded: %+v", rec)
	}
	for j := 1; j <= 3; j++ {
		if _, err := os.Stat(SegmentPath(walPath, j)); !os.IsNotExist(err) {
			t.Fatalf("stale sealed segment %d survived: %v", j, err)
		}
	}
	if l2.Size() != HeaderSize() {
		t.Fatalf("discarded chain not reset: size %d", l2.Size())
	}
	if seq, err := l2.Append([]Op{{U: 0, V: 1}}); err != nil || seq != 1 {
		t.Fatalf("append after discard: seq %d err %v", seq, err)
	}
}

func TestTruncateToReachesThroughChain(t *testing.T) {
	dir := t.TempDir()
	base, fp := newBase(t, dir, []byte("container"))
	walPath := base + ".wal"

	l, _, err := Open(walPath, fp, Options{SegmentBytes: smallCap})
	if err != nil {
		t.Fatal(err)
	}
	batches := singleOpBatches(5)
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Keep only the first two batches: a cut inside sealed segment 2.
	l2, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.TruncateTo(rec.Batches[1]); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 2 || rec.Discarded {
		t.Fatalf("after chain cut: %+v", rec)
	}

	// The zero Batch drops everything: back to a single fresh segment.
	if err := l3.TruncateTo(Batch{}); err != nil {
		t.Fatal(err)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	l4, rec, err := Open(walPath, fp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Close()
	if len(rec.Batches) != 0 || rec.Discarded {
		t.Fatalf("after full reset: %+v", rec)
	}
	if _, err := os.Stat(SegmentPath(walPath, 1)); !os.IsNotExist(err) {
		t.Fatal("sealed segment survived the full reset")
	}
	if seq, err := l4.Append([]Op{{U: 0, V: 1}}); err != nil || seq != 1 {
		t.Fatalf("append after reset: seq %d err %v", seq, err)
	}
}

func TestRotationCrashEveryStep(t *testing.T) {
	// The single-writer crash enumeration with rotation on: every
	// mutation of the seal → rename → reinit dance is a visited crash
	// point, and recovery must still yield an exact acknowledged prefix.
	batches := singleOpBatches(6)

	dryDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dryDir, "g.sg"), []byte("base"), 0o644); err != nil {
		t.Fatal(err)
	}
	dry := NewFaultFS(nil)
	if acked, err := runRotatingWorkload(dryDir, dry, batches); err != nil || acked != len(batches) {
		t.Fatalf("dry run: acked %d err %v", acked, err)
	}
	steps := dry.Steps()
	if steps < 3+2*len(batches)+5 {
		t.Fatalf("only %d steps — rotation never happened in the dry run", steps)
	}

	trials := 0
	for n := 1; n <= steps; n++ {
		for _, tear := range []int{0, 7, 1 << 20} {
			trials++
			t.Run(fmt.Sprintf("step%d/tear%d", n, tear), func(t *testing.T) {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, "g.sg"), []byte("base"), 0o644); err != nil {
					t.Fatal(err)
				}
				ffs := NewFaultFS(nil)
				ffs.CrashAt(n, tear)
				acked, _ := runRotatingWorkload(dir, ffs, batches)
				if !ffs.Crashed() {
					t.Fatalf("crash at step %d never fired", n)
				}
				if acked == len(batches) {
					t.Fatalf("all batches acked despite crash at step %d", n)
				}

				base := filepath.Join(dir, "g.sg")
				fp, err := FingerprintFile(nil, base)
				if err != nil {
					t.Fatal(err)
				}
				l, rec, err := Open(base+".wal", fp, Options{SegmentBytes: smallCap})
				if err != nil {
					t.Fatalf("recovery open: %v", err)
				}
				defer l.Close()
				if rec.Discarded && acked > 0 {
					t.Fatalf("chain with %d acked batches discarded", acked)
				}
				got := len(rec.Batches)
				if got < acked || got > acked+1 {
					t.Fatalf("acked %d, recovered %d", acked, got)
				}
				for i, b := range rec.Batches {
					if b.Seq != uint64(i+1) || !opsEqual(b.Ops, batches[i]) {
						t.Fatalf("batch %d: seq %d ops %v", i, b.Seq, b.Ops)
					}
				}
				if seq, err := l.Append([]Op{{U: 1, V: 2}}); err != nil || seq != uint64(got+1) {
					t.Fatalf("append after recovery: seq %d err %v", seq, err)
				}
			})
		}
	}
	t.Logf("rotation crash trials: %d", trials)
}

// runRotatingWorkload is runWorkload with the rotation cap on.
func runRotatingWorkload(dir string, fs *FaultFS, batches [][]Op) (acked int, openErr error) {
	base := filepath.Join(dir, "g.sg")
	fp, err := FingerprintFile(nil, base)
	if err != nil {
		return 0, err
	}
	l, _, err := Open(base+".wal", fp, Options{FS: fs, SegmentBytes: smallCap})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			break
		}
		acked++
	}
	return acked, nil
}
