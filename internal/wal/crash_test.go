package wal

// Randomized crash-recovery: for several seeded workloads, enumerate
// every mutation step of the append path, kill the filesystem at each
// one (with and without a torn unsynced fragment surviving), and verify
// that recovery with a healthy filesystem always yields an exact prefix
// of the acknowledged history — never a reordered, corrupted, or
// phantom batch. Acknowledged batches must all survive (SyncAlways
// acks only after fsync); at most the one in-flight batch may appear
// beyond them (crash after the bytes reached the platter but before
// the ack was returned).

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randBatches derives a deterministic workload from seed.
func randBatches(seed int64) [][]Op {
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]Op, 2+rng.Intn(4))
	for i := range batches {
		ops := make([]Op, 1+rng.Intn(5))
		for j := range ops {
			ops[j] = Op{
				U:   rng.Uint32() % 64,
				V:   rng.Uint32() % 64,
				W:   int32(rng.Intn(100) - 50),
				Del: rng.Intn(4) == 0,
			}
		}
		batches[i] = ops
	}
	return batches
}

// runWorkload opens a fresh segment on fs and appends batches until one
// fails, returning how many were acknowledged. openErr distinguishes a
// crash during Open itself.
func runWorkload(dir string, fs *FaultFS, batches [][]Op) (acked int, openErr error) {
	base := filepath.Join(dir, "g.sg")
	fp, err := FingerprintFile(nil, base)
	if err != nil {
		return 0, err
	}
	l, _, err := Open(base+".wal", fp, Options{FS: fs})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			break
		}
		acked++
	}
	return acked, nil
}

func TestCrashRecoveryEveryStep(t *testing.T) {
	trials := 0
	for seed := int64(1); seed <= 6; seed++ {
		batches := randBatches(seed)

		// Dry run: count the mutation steps of the full workload.
		dryDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dryDir, "g.sg"), []byte("base"), 0o644); err != nil {
			t.Fatal(err)
		}
		dry := NewFaultFS(nil)
		if acked, err := runWorkload(dryDir, dry, batches); err != nil || acked != len(batches) {
			t.Fatalf("seed %d dry run: acked %d err %v", seed, acked, err)
		}
		steps := dry.Steps()
		if steps < 3+2*len(batches) {
			t.Fatalf("seed %d: only %d steps for %d batches", seed, steps, len(batches))
		}

		for n := 1; n <= steps; n++ {
			for _, tear := range []int{0, 7, 1 << 20} {
				trials++
				t.Run(fmt.Sprintf("seed%d/step%d/tear%d", seed, n, tear), func(t *testing.T) {
					dir := t.TempDir()
					if err := os.WriteFile(filepath.Join(dir, "g.sg"), []byte("base"), 0o644); err != nil {
						t.Fatal(err)
					}
					ffs := NewFaultFS(nil)
					ffs.CrashAt(n, tear)
					acked, _ := runWorkload(dir, ffs, batches)
					if !ffs.Crashed() {
						t.Fatalf("crash at step %d never fired", n)
					}
					if acked == len(batches) {
						t.Fatalf("all %d batches acked despite crash at step %d", acked, n)
					}

					// "Reboot": recover the segment on a healthy filesystem.
					base := filepath.Join(dir, "g.sg")
					fp, err := FingerprintFile(nil, base)
					if err != nil {
						t.Fatal(err)
					}
					l, rec, err := Open(base+".wal", fp, Options{})
					if err != nil {
						t.Fatalf("recovery open: %v", err)
					}
					defer l.Close()
					// A torn header (crash before the first batch was ever
					// acked) may leave the segment unreadable; discarding it
					// is then correct — no durability promise existed yet.
					if rec.Discarded && acked > 0 {
						t.Fatalf("segment with %d acked batches discarded", acked)
					}
					got := len(rec.Batches)
					if got < acked || got > acked+1 {
						t.Fatalf("acked %d, recovered %d", acked, got)
					}
					for i, b := range rec.Batches {
						if b.Seq != uint64(i+1) {
							t.Fatalf("batch %d: seq %d", i, b.Seq)
						}
						if !opsEqual(b.Ops, batches[i]) {
							t.Fatalf("batch %d: got %v want %v", i, b.Ops, batches[i])
						}
					}

					// The recovered segment must be immediately writable,
					// continuing the sequence after the survivors.
					if seq, err := l.Append([]Op{{U: 1, V: 2}}); err != nil || seq != uint64(got+1) {
						t.Fatalf("append after recovery: seq %d err %v", seq, err)
					}
				})
			}
		}
	}
	if trials < 100 {
		t.Fatalf("only %d crash trials; the acceptance floor is 100", trials)
	}
	t.Logf("crash trials: %d", trials)
}
