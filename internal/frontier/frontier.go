// Package frontier provides the vertexSubset abstraction of Ligra (§2):
// a subset of vertices with dual sparse (id list) and dense (boolean
// array) representations, converted lazily as the traversal layer switches
// between push- and pull-based edgeMaps.
package frontier

import (
	"sage/internal/parallel"
)

// VertexSubset is a subset of the vertices [0, n). It is either sparse
// (an unordered id list) or dense (a boolean array); conversions cache
// nothing and are performed by the traversal layer when switching
// directions.
type VertexSubset struct {
	n      uint32
	sparse []uint32
	dense  []bool
	size   int
	dFlag  bool
}

// Empty returns an empty subset over n vertices.
func Empty(n uint32) *VertexSubset {
	return &VertexSubset{n: n, sparse: []uint32{}}
}

// Single returns the subset {v}.
func Single(n, v uint32) *VertexSubset {
	return &VertexSubset{n: n, sparse: []uint32{v}, size: 1}
}

// FromSparse wraps an id list (takes ownership of ids).
func FromSparse(n uint32, ids []uint32) *VertexSubset {
	return &VertexSubset{n: n, sparse: ids, size: len(ids)}
}

// FromDense wraps a boolean array of length n (takes ownership). If size
// is negative it is computed with a parallel count.
func FromDense(n uint32, flags []bool, size int) *VertexSubset {
	if size < 0 {
		size = parallel.Count(int(n), 0, func(i int) bool { return flags[i] })
	}
	return &VertexSubset{n: n, dense: flags, size: size, dFlag: true}
}

// All returns the subset containing every vertex.
func All(n uint32) *VertexSubset {
	flags := make([]bool, n)
	parallel.Fill(flags, true)
	return FromDense(n, flags, int(n))
}

// N returns the universe size.
func (s *VertexSubset) N() uint32 { return s.n }

// Size returns |S|.
func (s *VertexSubset) Size() int { return s.size }

// IsEmpty reports whether the subset is empty.
func (s *VertexSubset) IsEmpty() bool { return s.size == 0 }

// IsDense reports the current representation.
func (s *VertexSubset) IsDense() bool { return s.dFlag }

// Sparse returns the id list, converting from dense if necessary (the
// conversion is a parallel pack). The result must be treated as read-only.
func (s *VertexSubset) Sparse() []uint32 {
	if !s.dFlag {
		return s.sparse
	}
	if s.sparse == nil {
		s.sparse = parallel.PackIndex(int(s.n), func(i int) bool { return s.dense[i] })
	}
	return s.sparse
}

// Dense returns the boolean array, converting from sparse if necessary.
func (s *VertexSubset) Dense() []bool {
	if s.dFlag {
		return s.dense
	}
	if s.dense == nil {
		flags := make([]bool, s.n)
		parallel.For(len(s.sparse), 0, func(i int) { flags[s.sparse[i]] = true })
		s.dense = flags
	}
	return s.dense
}

// ForEach calls fn for every member, in parallel.
func (s *VertexSubset) ForEach(fn func(v uint32)) {
	if s.dFlag {
		parallel.For(int(s.n), 0, func(i int) {
			if s.dense[i] {
				fn(uint32(i))
			}
		})
		return
	}
	parallel.For(len(s.sparse), 0, func(i int) { fn(s.sparse[i]) })
}

// Contains reports membership (converts to dense if sparse; intended for
// tests, not hot paths).
func (s *VertexSubset) Contains(v uint32) bool {
	if s.dFlag {
		return s.dense[v]
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}
