package frontier

import (
	"sort"
	"sync/atomic"
	"testing"
)

func TestEmptyAndSingle(t *testing.T) {
	e := Empty(10)
	if !e.IsEmpty() || e.Size() != 0 {
		t.Fatal("empty not empty")
	}
	s := Single(10, 3)
	if s.Size() != 1 || !s.Contains(3) || s.Contains(4) {
		t.Fatal("single wrong")
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	ids := []uint32{2, 5, 7}
	s := FromSparse(10, append([]uint32(nil), ids...))
	d := s.Dense()
	for i := uint32(0); i < 10; i++ {
		want := i == 2 || i == 5 || i == 7
		if d[i] != want {
			t.Fatalf("dense[%d]=%v", i, d[i])
		}
	}
	// And back.
	d2 := FromDense(10, d, -1)
	if d2.Size() != 3 {
		t.Fatalf("size %d", d2.Size())
	}
	sp := d2.Sparse()
	sort.Slice(sp, func(i, j int) bool { return sp[i] < sp[j] })
	for i := range ids {
		if sp[i] != ids[i] {
			t.Fatalf("sparse %v", sp)
		}
	}
}

func TestFromDenseCountsSize(t *testing.T) {
	flags := make([]bool, 1000)
	for i := 0; i < 1000; i += 3 {
		flags[i] = true
	}
	s := FromDense(1000, flags, -1)
	if s.Size() != 334 {
		t.Fatalf("size %d", s.Size())
	}
}

func TestAll(t *testing.T) {
	a := All(100)
	if a.Size() != 100 {
		t.Fatalf("size %d", a.Size())
	}
}

func TestForEach(t *testing.T) {
	s := FromSparse(100, []uint32{1, 2, 3})
	var sum atomic.Int64
	s.ForEach(func(v uint32) { sum.Add(int64(v)) })
	if sum.Load() != 6 {
		t.Fatalf("sum %d", sum.Load())
	}
	d := FromDense(4, []bool{true, false, true, false}, -1)
	sum.Store(0)
	d.ForEach(func(v uint32) { sum.Add(int64(v)) })
	if sum.Load() != 2 {
		t.Fatalf("dense sum %d", sum.Load())
	}
}
