// Package delta implements the batch-dynamic update overlay of the
// semi-asymmetric design: the large graph stays a read-only structure in
// NVRAM (an mmap-backed CSR or byte-compressed container, never written),
// and every mutation lives in a small DRAM-resident per-vertex delta —
// insert and delete sets with degree adjustments — exactly the base+delta
// split that "Algorithmic Building Blocks for Asymmetric Memories"
// prescribes for write-expensive memories, and the structure Aspen-style
// batch-dynamic systems use at scale.
//
// An Overlay is an immutable value: Apply never mutates its receiver, it
// returns a new Overlay sharing every unchanged per-vertex delta (and the
// base graph, zero-copy) with the old one. Snapshots taken before a batch
// therefore stay valid for in-flight traversals; readers never lock.
//
// The Overlay implements graph.Adj — merged iteration over (base \ dels)
// ∪ adds, sorted, with weights — and graph.FlatAdj in its decode form, so
// every traversal strategy and every registry algorithm runs on it
// unmodified. Vertices without a delta delegate to the base directly, and
// the empty overlay is never handed to the traversal layer at all (the
// sage.Snapshot wrapper exposes the base graph itself, keeping the flat
// zero-copy fast path byte-identical to the static case).
//
// PSAM accounting: delta memory is DRAM-resident and reported by Words so
// serving layers can budget it; merged scans of a delta vertex charge the
// base's full scan cost (the merge must examine the base list to apply
// deletions). Inserted edges are DRAM-resident but charged at the base
// rate by position-counting traversals — a conservative upper bound on
// NVRAM reads; splitting the charge exactly is a ROADMAP open item.
package delta

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"sage/internal/graph"
)

// ErrBadOp marks a rejected batch: an out-of-range endpoint, a
// self-loop, or a weight on an unweighted base. Test with errors.Is;
// serving layers map it to a client error.
var ErrBadOp = errors.New("invalid edge op")

// Op is one undirected edge mutation. Del deletes edge {U, V} if present
// (a no-op otherwise); otherwise the op inserts {U, V} (idempotent), with
// weight W on weighted bases — inserting an edge that already exists with
// a different weight re-weights it. Ops within a batch apply in order.
type Op struct {
	U, V uint32
	W    int32
	Del  bool
}

// vdelta is one vertex's DRAM-resident delta: neighbors inserted (sorted,
// with aligned weights on weighted bases) and base neighbors deleted
// (sorted). A re-weighted base edge appears in both sets — deleted from
// the base view, re-inserted at the new weight. Invariants: adds and the
// live base view are disjoint; dels is a subset of base neighbors.
type vdelta struct {
	adds []uint32
	addW []int32 // aligned with adds; nil on unweighted bases
	dels []uint32
}

// words returns the DRAM-word footprint charged for the delta: one word
// per id, one per weight, plus a constant for the headers and map slot.
func (d *vdelta) words() int64 {
	return 4 + int64(len(d.adds)) + int64(len(d.addW)) + int64(len(d.dels))
}

// empty reports whether the delta no longer changes the vertex.
func (d *vdelta) empty() bool { return len(d.adds) == 0 && len(d.dels) == 0 }

// equal reports whether d changes the vertex exactly as other does; a
// nil other stands for "no delta", equal to any empty d.
func (d *vdelta) equal(other *vdelta) bool {
	if other == nil {
		return d.empty()
	}
	return slices.Equal(d.adds, other.adds) &&
		slices.Equal(d.dels, other.dels) &&
		slices.Equal(d.addW, other.addW)
}

// clone deep-copies the delta so Apply can mutate it privately. addW's
// non-nilness is the weighted-base discriminator, so an empty weight
// slice must stay non-nil through the copy.
func (d *vdelta) clone() *vdelta {
	c := &vdelta{
		adds: append([]uint32(nil), d.adds...),
		dels: append([]uint32(nil), d.dels...),
	}
	if d.addW != nil {
		c.addW = make([]int32, len(d.addW))
		copy(c.addW, d.addW)
	}
	return c
}

// Overlay is an immutable batch-dynamic view of a read-only base graph:
// the base plus per-vertex DRAM deltas. It is safe for any number of
// concurrent readers; Apply builds a new Overlay without touching the
// receiver.
type Overlay struct {
	base     graph.Adj
	n        uint32
	m        uint64 // merged arc count
	weighted bool
	verts    map[uint32]*vdelta
	words    int64  // summed vdelta words
	arcsAdd  uint64 // arcs inserted (Σ len(adds))
	arcsDel  uint64 // base arcs deleted (Σ len(dels))
}

// New returns the empty overlay over base: the identity view.
func New(base graph.Adj) *Overlay {
	return &Overlay{
		base:     base,
		n:        base.NumVertices(),
		m:        base.NumEdges(),
		weighted: base.Weighted(),
		verts:    map[uint32]*vdelta{},
	}
}

// Base returns the read-only base graph the overlay composes with.
func (o *Overlay) Base() graph.Adj { return o.base }

// Empty reports whether the overlay changes nothing (the identity view).
func (o *Overlay) Empty() bool { return len(o.verts) == 0 }

// Words returns the overlay's DRAM-resident footprint in simulated words
// — the quantity PSAM small-memory budgets are charged with.
func (o *Overlay) Words() int64 { return o.words }

// DeltaArcs returns the directed arc counts of the delta: arcs inserted
// and base arcs deleted (each undirected edge op contributes two arcs).
// A re-weighted edge counts in both.
func (o *Overlay) DeltaArcs() (added, deleted uint64) { return o.arcsAdd, o.arcsDel }

// baseNeighbors materializes v's base adjacency into buf (ids and, on
// weighted bases, aligned weights).
func (o *Overlay) baseNeighbors(v uint32, buf []uint32, wbuf []int32) ([]uint32, []int32) {
	buf, wbuf = buf[:0], wbuf[:0]
	o.base.IterRange(v, 0, o.base.Degree(v), func(_, u uint32, w int32) bool {
		buf = append(buf, u)
		wbuf = append(wbuf, w)
		return true
	})
	return buf, wbuf
}

// find locates x in the sorted slice s.
func find(s []uint32, x uint32) (int, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i, i < len(s) && s[i] == x
}

// insertAt inserts x into the sorted slice s at position i.
func insertAt(s []uint32, i int, x uint32) []uint32 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// removeAt removes position i from s.
func removeAt(s []uint32, i int) []uint32 {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func insertAtW(s []int32, i int, x int32) []int32 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeAtW(s []int32, i int) []int32 {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// applyArc applies one directed half of an op to v's delta. base/baseW is
// v's materialized base adjacency. It returns the arc-count change.
func (o *Overlay) applyArc(d *vdelta, base []uint32, baseW []int32, ngh uint32, w int32, del bool) int {
	bi, inBase := find(base, ngh)
	di, inDels := find(d.dels, ngh)
	ai, inAdds := find(d.adds, ngh)
	switch {
	case del:
		delta := 0
		if inAdds {
			d.adds = removeAt(d.adds, ai)
			if d.addW != nil {
				d.addW = removeAtW(d.addW, ai)
			}
			delta--
		}
		if inBase && !inDels {
			d.dels = insertAt(d.dels, di, ngh)
			delta--
		}
		return delta
	case inBase && !inDels:
		// Present in the live base view. Unweighted (or same weight):
		// idempotent no-op. Weighted with a new weight: delete the base
		// arc and re-insert at w.
		if !o.weighted || baseW[bi] == w {
			return 0
		}
		d.dels = insertAt(d.dels, di, ngh)
		d.adds = insertAt(d.adds, ai, ngh)
		d.addW = insertAtW(d.addW, ai, w)
		return 0
	case inBase && inDels:
		// Deleted base edge being re-inserted. At the original weight the
		// deletion is simply undone; otherwise it becomes a re-weight.
		if inAdds {
			if d.addW != nil {
				d.addW[ai] = w
			}
			return 0
		}
		if !o.weighted || baseW[bi] == w {
			d.dels = removeAt(d.dels, di)
			return 1
		}
		d.adds = insertAt(d.adds, ai, ngh)
		d.addW = insertAtW(d.addW, ai, w)
		return 1
	case inAdds:
		if d.addW != nil {
			d.addW[ai] = w
		}
		return 0
	default:
		d.adds = insertAt(d.adds, ai, ngh)
		if d.addW != nil {
			d.addW = insertAtW(d.addW, ai, w)
		}
		return 1
	}
}

// Apply returns a new Overlay with ops applied in order, sharing the base
// and every unchanged per-vertex delta with the receiver. The receiver is
// not modified; snapshots holding it stay valid. Self-loops and
// out-of-range endpoints reject the whole batch (it applies atomically or
// not at all); weights on an unweighted base are likewise rejected.
func (o *Overlay) Apply(ops []Op) (*Overlay, error) {
	for i, op := range ops {
		if op.U >= o.n || op.V >= o.n {
			return nil, fmt.Errorf("delta: op %d: %w: edge (%d,%d) out of range (n=%d)", i, ErrBadOp, op.U, op.V, o.n)
		}
		if op.U == op.V {
			return nil, fmt.Errorf("delta: op %d: %w: self-loop at %d (graphs are simple)", i, ErrBadOp, op.U)
		}
		if !o.weighted && !op.Del && op.W != 0 && op.W != 1 {
			return nil, fmt.Errorf("delta: op %d: %w: weight %d on an unweighted graph", i, ErrBadOp, op.W)
		}
	}
	nv := &Overlay{
		base: o.base, n: o.n, m: o.m, weighted: o.weighted,
		verts: make(map[uint32]*vdelta, len(o.verts)+len(ops)),
		words: o.words, arcsAdd: o.arcsAdd, arcsDel: o.arcsDel,
	}
	for v, d := range o.verts {
		nv.verts[v] = d
	}
	// Copy-on-write: the first touch of a vertex in this batch clones its
	// delta; later ops in the same batch mutate the clone in place. The
	// vertex's base adjacency is materialized once per batch alongside it
	// (the base is immutable for the batch, and re-decoding a hub's list
	// per op would make a B-op batch cost O(B·deg) base decodes).
	cloned := map[uint32]*vdelta{}
	baseN := map[uint32][]uint32{}
	baseW := map[uint32][]int32{}
	touch := func(v uint32) *vdelta {
		if d, ok := cloned[v]; ok {
			return d
		}
		var d *vdelta
		if old, ok := nv.verts[v]; ok {
			d = old.clone()
		} else {
			d = &vdelta{}
			if nv.weighted {
				d.addW = []int32{}
			}
		}
		nv.words -= dWords(nv.verts[v])
		cloned[v], nv.verts[v] = d, d
		return d
	}
	for _, op := range ops {
		w := op.W
		if nv.weighted && !op.Del && w == 0 {
			w = 1 // the documented default insert weight
		}
		for _, dir := range [2][2]uint32{{op.U, op.V}, {op.V, op.U}} {
			d := touch(dir[0])
			if _, ok := baseN[dir[0]]; !ok {
				baseN[dir[0]], baseW[dir[0]] = nv.baseNeighbors(dir[0], nil, nil)
			}
			delta := nv.applyArc(d, baseN[dir[0]], baseW[dir[0]], dir[1], w, op.Del)
			nv.m = uint64(int64(nv.m) + int64(delta))
		}
	}
	// Settle accounting and drop deltas the batch cancelled out. Track
	// whether any touched vertex actually changed: a batch of pure
	// no-ops (re-inserting present edges, deleting absent ones) returns
	// the receiver itself, so callers can detect "nothing changed" by
	// pointer equality and skip republishing.
	changed := false
	for v := range cloned {
		d := nv.verts[v]
		if !d.equal(o.verts[v]) {
			changed = true
		}
		if d.empty() {
			delete(nv.verts, v)
			continue
		}
		nv.words += d.words()
	}
	if !changed {
		return o, nil
	}
	nv.arcsAdd, nv.arcsDel = 0, 0
	for _, d := range nv.verts {
		nv.arcsAdd += uint64(len(d.adds))
		nv.arcsDel += uint64(len(d.dels))
	}
	return nv, nil
}

// dWords is words() tolerating nil.
func dWords(d *vdelta) int64 {
	if d == nil {
		return 0
	}
	return d.words()
}

// --------------------------------------------------------------------
// graph.Adj: the merged adjacency view.
// --------------------------------------------------------------------

// NumVertices returns n.
func (o *Overlay) NumVertices() uint32 { return o.n }

// NumEdges returns the merged arc count: base arcs minus deletions plus
// insertions.
func (o *Overlay) NumEdges() uint64 { return o.m }

// Weighted reports whether the base carries edge weights.
func (o *Overlay) Weighted() bool { return o.weighted }

// Degree returns the merged degree of v.
//
//sage:hotpath
func (o *Overlay) Degree(v uint32) uint32 {
	d, ok := o.verts[v]
	if !ok {
		return o.base.Degree(v)
	}
	return o.base.Degree(v) + uint32(len(d.adds)) - uint32(len(d.dels))
}

// AvgDegree returns max(1, m/n) over the merged view.
func (o *Overlay) AvgDegree() uint32 {
	if o.n == 0 {
		return 1
	}
	if d := uint32(o.m / uint64(o.n)); d > 1 {
		return d
	}
	return 1
}

// EdgeAddr returns the simulated NVRAM address of v's base adjacency —
// inserted edges live in DRAM and have no NVRAM address of their own.
func (o *Overlay) EdgeAddr(v uint32) int64 { return o.base.EdgeAddr(v) }

// BlockSize reports 0: the merged view supports arbitrary decode
// granularity regardless of the base's block structure (DecodeRange
// re-merges per call).
func (o *Overlay) BlockSize() int { return 0 }

// ScanCost returns the simulated NVRAM words read when scanning merged
// positions [lo, hi) of v. Vertices without a delta delegate to the base;
// a delta vertex charges its full base scan — applying deletions forces
// the merge to examine the base list — which upper-bounds the true cost.
func (o *Overlay) ScanCost(v uint32, lo, hi uint32) int64 {
	if _, ok := o.verts[v]; !ok {
		return o.base.ScanCost(v, lo, hi)
	}
	if hi <= lo {
		return 0
	}
	return o.base.ScanCost(v, 0, o.base.Degree(v))
}

// IterRange iterates merged adjacency positions [lo, hi) of v in sorted
// order, stopping early if fn returns false. Base neighbors absent from
// the delete set appear with their base weights; inserted neighbors
// (including re-weighted base edges) with their delta weights.
func (o *Overlay) IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool) {
	d, ok := o.verts[v]
	if !ok {
		o.base.IterRange(v, lo, hi, fn)
		return
	}
	if deg := o.Degree(v); hi > deg {
		hi = deg
	}
	if hi <= lo {
		return
	}
	pos := uint32(0)
	ai, di := 0, 0
	stopped := false
	emit := func(ngh uint32, w int32) bool { // returns false to stop the walk
		if pos >= hi {
			return false
		}
		if pos >= lo && !fn(pos, ngh, w) {
			pos++
			return false
		}
		pos++
		return true
	}
	addW := func(i int) int32 {
		if d.addW == nil {
			return 1
		}
		return d.addW[i]
	}
	o.base.IterRange(v, 0, o.base.Degree(v), func(_, u uint32, w int32) bool {
		// Flush inserted neighbors ordered before u.
		for ai < len(d.adds) && d.adds[ai] < u {
			if !emit(d.adds[ai], addW(ai)) {
				stopped = true
				return false
			}
			ai++
		}
		for di < len(d.dels) && d.dels[di] < u {
			di++
		}
		if di < len(d.dels) && d.dels[di] == u {
			// Deleted base arc; a same-id insert is a re-weight.
			di++
			if ai < len(d.adds) && d.adds[ai] == u {
				ok := emit(u, addW(ai))
				ai++
				if !ok {
					stopped = true
					return false
				}
			}
			return true
		}
		if !emit(u, w) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for ai < len(d.adds) {
		if !emit(d.adds[ai], addW(ai)) {
			return
		}
		ai++
	}
}

// --------------------------------------------------------------------
// graph.FlatAdj: the decode form of the closure-free access path. The
// merged view is never flat (FlatRange always declines), so traversals
// block-decode it into their per-worker scratch like a compressed graph.
// --------------------------------------------------------------------

// FlatRange implements graph.FlatAdj: merged adjacency is never flat.
//
//sage:hotpath
func (o *Overlay) FlatRange(v, lo, hi uint32) ([]uint32, []int32, bool) {
	return nil, nil, false
}

// DecodeRange implements graph.FlatAdj, materializing merged positions
// [lo, hi) of v into buf. Vertices without a delta delegate to the base's
// own decoder when it has one.
func (o *Overlay) DecodeRange(v, lo, hi uint32, buf []uint32) []uint32 {
	if _, ok := o.verts[v]; !ok {
		if fad, ok := o.base.(graph.FlatAdj); ok {
			return fad.DecodeRange(v, lo, hi, buf)
		}
	}
	if deg := o.Degree(v); hi > deg {
		hi = deg
	}
	buf = buf[:0]
	if hi <= lo {
		return buf
	}
	o.IterRange(v, lo, hi, func(_, u uint32, _ int32) bool {
		buf = append(buf, u)
		return true
	})
	return buf
}

// DecodeRangeW implements graph.FlatAdj, additionally materializing the
// aligned weights (ws is nil on unweighted bases).
func (o *Overlay) DecodeRangeW(v, lo, hi uint32, buf []uint32, wbuf []int32) ([]uint32, []int32) {
	if _, ok := o.verts[v]; !ok {
		if fad, ok := o.base.(graph.FlatAdj); ok {
			return fad.DecodeRangeW(v, lo, hi, buf, wbuf)
		}
	}
	if deg := o.Degree(v); hi > deg {
		hi = deg
	}
	buf = buf[:0]
	if !o.weighted {
		if hi > lo {
			o.IterRange(v, lo, hi, func(_, u uint32, _ int32) bool {
				buf = append(buf, u)
				return true
			})
		}
		return buf, nil
	}
	wbuf = wbuf[:0]
	if hi > lo {
		o.IterRange(v, lo, hi, func(_, u uint32, w int32) bool {
			buf = append(buf, u)
			wbuf = append(wbuf, w)
			return true
		})
	}
	return buf, wbuf
}

// SizeWords returns the simulated NVRAM footprint of the view — the
// base's; the delta is DRAM-resident and reported by Words instead.
func (o *Overlay) SizeWords() int64 {
	if s, ok := o.base.(interface{ SizeWords() int64 }); ok {
		return s.SizeWords()
	}
	w := int64(o.base.NumVertices()) + 1 + int64(o.base.NumEdges())
	if o.base.Weighted() {
		w += int64(o.base.NumEdges())
	}
	return w
}
