package delta

import (
	"math/rand"
	"testing"

	"sage/internal/graph"
)

// model is the obviously-correct reference: a map-of-maps adjacency the
// tests mutate alongside the overlay.
type model struct {
	n        uint32
	weighted bool
	adj      map[uint32]map[uint32]int32
}

func newModel(g *graph.Graph) *model {
	m := &model{n: g.NumVertices(), weighted: g.Weighted(), adj: map[uint32]map[uint32]int32{}}
	for v := uint32(0); v < m.n; v++ {
		ws := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			w := int32(1)
			if ws != nil {
				w = ws[i]
			}
			m.set(v, u, w)
		}
	}
	return m
}

func (m *model) set(u, v uint32, w int32) {
	if m.adj[u] == nil {
		m.adj[u] = map[uint32]int32{}
	}
	m.adj[u][v] = w
}

func (m *model) apply(op Op) {
	w := op.W
	if m.weighted && !op.Del && w == 0 {
		w = 1
	}
	if !m.weighted {
		w = 1
	}
	if op.Del {
		delete(m.adj[op.U], op.V)
		delete(m.adj[op.V], op.U)
		return
	}
	m.set(op.U, op.V, w)
	m.set(op.V, op.U, w)
}

func (m *model) arcs() uint64 {
	var total uint64
	for _, nghs := range m.adj {
		total += uint64(len(nghs))
	}
	return total
}

// checkEquiv asserts the overlay's merged view equals the model via every
// access path: Degree, NumEdges, IterRange (full and partial), and the
// FlatAdj decoders.
func checkEquiv(t *testing.T, o *Overlay, m *model) {
	t.Helper()
	if o.NumEdges() != m.arcs() {
		t.Fatalf("NumEdges=%d want %d", o.NumEdges(), m.arcs())
	}
	for v := uint32(0); v < m.n; v++ {
		var want []uint32
		var wantW []int32
		for u := uint32(0); u < m.n; u++ {
			if w, ok := m.adj[v][u]; ok {
				want = append(want, u)
				wantW = append(wantW, w)
			}
		}
		if got := o.Degree(v); got != uint32(len(want)) {
			t.Fatalf("Degree(%d)=%d want %d", v, got, len(want))
		}
		var got []uint32
		var gotW []int32
		var gotPos []uint32
		o.IterRange(v, 0, o.Degree(v), func(i, u uint32, w int32) bool {
			gotPos = append(gotPos, i)
			got = append(got, u)
			gotW = append(gotW, w)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("IterRange(%d) yields %d nghs, want %d", v, len(got), len(want))
		}
		for i := range want {
			if gotPos[i] != uint32(i) {
				t.Fatalf("IterRange(%d) position %d reported as %d", v, i, gotPos[i])
			}
			if got[i] != want[i] || gotW[i] != wantW[i] {
				t.Fatalf("IterRange(%d)[%d] = (%d,%d) want (%d,%d)", v, i, got[i], gotW[i], want[i], wantW[i])
			}
		}
		// Partial ranges and early exit.
		deg := uint32(len(want))
		if deg >= 2 {
			lo, hi := deg/3, deg-1
			var part []uint32
			o.IterRange(v, lo, hi, func(i, u uint32, _ int32) bool {
				part = append(part, u)
				return true
			})
			if len(part) != int(hi-lo) {
				t.Fatalf("partial IterRange(%d,%d,%d) yields %d", v, lo, hi, len(part))
			}
			for i := range part {
				if part[i] != want[lo+uint32(i)] {
					t.Fatalf("partial IterRange(%d) mismatch at %d", v, i)
				}
			}
			stops := 0
			o.IterRange(v, 0, deg, func(_, _ uint32, _ int32) bool { stops++; return stops < 2 })
			if stops != 2 {
				t.Fatalf("early exit scanned %d positions, want 2", stops)
			}
		}
		// FlatAdj decode paths (clamped hi included).
		buf := o.DecodeRange(v, 0, deg+7, nil)
		if len(buf) != len(want) {
			t.Fatalf("DecodeRange(%d) len %d want %d", v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("DecodeRange(%d)[%d]=%d want %d", v, i, buf[i], want[i])
			}
		}
		buf, ws := o.DecodeRangeW(v, 0, deg, buf, nil)
		if o.Weighted() {
			for i := range want {
				if ws[i] != wantW[i] {
					t.Fatalf("DecodeRangeW(%d)[%d]=%d want %d", v, i, ws[i], wantW[i])
				}
			}
		} else if ws != nil {
			t.Fatalf("DecodeRangeW on unweighted base returned weights")
		}
		_ = buf
	}
}

func buildBase(t *testing.T, n uint32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

func TestEmptyOverlayIsIdentity(t *testing.T) {
	g := buildBase(t, 6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 5}})
	o := New(g)
	if !o.Empty() || o.Words() != 0 {
		t.Fatalf("fresh overlay not empty (words=%d)", o.Words())
	}
	checkEquiv(t, o, newModel(g))
	if o.ScanCost(1, 0, 2) != g.ScanCost(1, 0, 2) {
		t.Fatal("identity overlay changes scan cost")
	}
}

func TestApplyInsertDelete(t *testing.T) {
	g := buildBase(t, 8, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
	m := newModel(g)
	o := New(g)
	batch := []Op{
		{U: 0, V: 5},            // brand-new edge
		{U: 1, V: 2, Del: true}, // delete a base edge
		{U: 6, V: 7},            // edge between isolated vertices
		{U: 0, V: 1, Del: true},
		{U: 0, V: 1}, // delete then re-insert: net no-op
	}
	o2, err := o.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range batch {
		m.apply(op)
	}
	checkEquiv(t, o2, m)
	// The original overlay (and the base) are untouched.
	checkEquiv(t, o, newModel(g))
	if o2.Words() <= 0 {
		t.Fatal("non-empty overlay reports zero DRAM words")
	}
	add, del := o2.DeltaArcs()
	if add != 4 || del != 2 { // {0,5} and {6,7} inserted; {1,2} deleted
		t.Fatalf("DeltaArcs = (%d,%d), want (4,2)", add, del)
	}
}

func TestApplyIdempotence(t *testing.T) {
	g := buildBase(t, 4, []graph.Edge{{U: 0, V: 1}})
	o := New(g)
	o2, err := o.Apply([]Op{{U: 0, V: 1}, {U: 2, V: 3}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if o2.NumEdges() != g.NumEdges()+2 {
		t.Fatalf("m=%d want %d", o2.NumEdges(), g.NumEdges()+2)
	}
	o3, err := o2.Apply([]Op{{U: 0, V: 3, Del: true}}) // absent: no-op
	if err != nil {
		t.Fatal(err)
	}
	if o3.NumEdges() != o2.NumEdges() {
		t.Fatal("deleting an absent edge changed m")
	}
}

func TestApplyCancellationDropsDelta(t *testing.T) {
	g := buildBase(t, 4, []graph.Edge{{U: 0, V: 1}})
	o, err := New(g).Apply([]Op{{U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := o.Apply([]Op{{U: 2, V: 3, Del: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !o2.Empty() || o2.Words() != 0 {
		t.Fatalf("cancelled delta retained: empty=%v words=%d", o2.Empty(), o2.Words())
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	g := buildBase(t, 4, []graph.Edge{{U: 0, V: 1}})
	o := New(g)
	for _, bad := range [][]Op{
		{{U: 0, V: 9}},               // out of range
		{{U: 2, V: 2}},               // self-loop
		{{U: 0, V: 2, W: 7}},         // weight on unweighted base
		{{U: 0, V: 2}, {U: 5, V: 6}}, // second op invalid: whole batch rejected
	} {
		if _, err := o.Apply(bad); err == nil {
			t.Fatalf("batch %v accepted", bad)
		}
	}
	if !o.Empty() {
		t.Fatal("rejected batch mutated the overlay")
	}
}

func TestWeightedReweight(t *testing.T) {
	g := graph.FromWeightedEdges(4, []graph.WEdge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 9}},
		graph.BuildOpts{Symmetrize: true})
	m := newModel(g)
	o := New(g)
	batch := []Op{
		{U: 0, V: 1, W: 7}, // re-weight an existing edge
		{U: 0, V: 3, W: 2}, // weighted insert
		{U: 2, V: 3},       // insert at the default weight 1
		{U: 1, V: 2, W: 9}, // same weight: no-op
	}
	o2, err := o.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range batch {
		m.apply(op)
	}
	checkEquiv(t, o2, m)
	if o2.NumEdges() != g.NumEdges()+4 {
		t.Fatalf("re-weighting changed the edge count: m=%d", o2.NumEdges())
	}
	// Deleting a re-weighted edge removes it entirely.
	o3, err := o2.Apply([]Op{{U: 0, V: 1, Del: true}})
	if err != nil {
		t.Fatal(err)
	}
	m.apply(Op{U: 0, V: 1, Del: true})
	checkEquiv(t, o3, m)
}

// TestRandomizedAgainstModel drives random batches against the reference
// model over both unweighted and weighted bases, checking full merged-view
// equivalence after every batch and that elder snapshots stay intact.
func TestRandomizedAgainstModel(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		name := "unweighted"
		if weighted {
			name = "weighted"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xdeadbee))
			const n = 40
			var edges []graph.WEdge
			for i := 0; i < 80; i++ {
				u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				if u != v {
					edges = append(edges, graph.WEdge{U: u, V: v, W: int32(1 + rng.Intn(9))})
				}
			}
			var g *graph.Graph
			if weighted {
				g = graph.FromWeightedEdges(n, edges, graph.BuildOpts{Symmetrize: true})
			} else {
				plain := make([]graph.Edge, len(edges))
				for i, e := range edges {
					plain[i] = graph.Edge{U: e.U, V: e.V}
				}
				g = graph.FromEdges(n, plain, graph.BuildOpts{Symmetrize: true})
			}
			m := newModel(g)
			o := New(g)
			prev := o
			prevModelArcs := m.arcs()
			for round := 0; round < 12; round++ {
				var batch []Op
				for i := 0; i < 25; i++ {
					u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
					if u == v {
						continue
					}
					op := Op{U: u, V: v, Del: rng.Intn(3) == 0}
					if weighted && !op.Del {
						op.W = int32(rng.Intn(5)) // 0 selects the default
					}
					batch = append(batch, op)
				}
				next, err := o.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range batch {
					m.apply(op)
				}
				checkEquiv(t, next, m)
				if prev.NumEdges() != prevModelArcs {
					t.Fatal("elder snapshot mutated by a later batch")
				}
				prev, prevModelArcs = next, m.arcs()
				o = next
			}
		})
	}
}

// TestWeightedInsertAfterDeleteOnlyDelta pins the clone regression: a
// vertex whose delta holds only deletions (empty-but-weighted adds) must
// keep its weighted discriminator through the copy-on-write of a later
// batch — the follow-up insert must record its weight, and a subsequent
// re-weight must not misalign adds/addW.
func TestWeightedInsertAfterDeleteOnlyDelta(t *testing.T) {
	g := graph.FromWeightedEdges(5, []graph.WEdge{{U: 0, V: 1, W: 5}, {U: 0, V: 2, W: 6}},
		graph.BuildOpts{Symmetrize: true})
	m := newModel(g)

	o1, err := New(g).Apply([]Op{{U: 0, V: 1, Del: true}}) // delete-only delta at 0
	if err != nil {
		t.Fatal(err)
	}
	m.apply(Op{U: 0, V: 1, Del: true})

	o2, err := o1.Apply([]Op{{U: 0, V: 3, W: 7}}) // weighted insert after the clone
	if err != nil {
		t.Fatal(err)
	}
	m.apply(Op{U: 0, V: 3, W: 7})
	checkEquiv(t, o2, m)

	o3, err := o2.Apply([]Op{{U: 0, V: 2, W: 9}}) // re-weight a base edge of 0
	if err != nil {
		t.Fatal(err)
	}
	m.apply(Op{U: 0, V: 2, W: 9})
	checkEquiv(t, o3, m)
}
