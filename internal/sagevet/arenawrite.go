package sagevet

import (
	"go/ast"
	"go/types"

	"sage/internal/sagevet/analysis"
)

// ArenaWrite enforces the zero-copy read-only contract on mmap arenas:
// a slice obtained from an //sage:arena-view accessor or an //sage:arena
// struct field aliases NVRAM-resident graph data and must never be
// stored through. Element assignment, copy-into, and append-onto such a
// slice are flagged. Copying *out* (copy(dst, arena)) and cloning
// (append(fresh, arena...), append(arena[:0:0], ...)) are legal — the
// clone owns its backing array.
var ArenaWrite = &analysis.Analyzer{
	Name: "arenawrite",
	Doc: "flag writes through slices that alias an mmap arena " +
		"(//sage:arena-view accessors, //sage:arena fields)",
	Run: runArenaWrite,
}

func runArenaWrite(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkArenaFunc runs the intra-function taint pass over one body.
// Taint is flow-insensitive: a variable ever assigned an arena-aliasing
// value is treated as aliasing for the whole function. That is the
// conservative direction — arena views are cheap accessors callers do
// not recycle into scratch buffers.
func checkArenaFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	t := &taint{pass: pass, vars: map[*types.Var]bool{}, fresh: collectFreshFields(pass, body)}

	// Fixpoint over assignments: taint flows var-to-var through
	// chains like v := g.Neighbors(u); w := v[1:].
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs != nil && t.tainted(rhs) && t.addVar(lhs) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && t.tainted(n.Values[i]) && t.addVar(name) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				// for _, row := range arenaMatrix — row aliases.
				if n.Value != nil && t.tainted(n.X) && isSliceType(pass.TypesInfo, n.Value) && t.addVar(n.Value) {
					changed = true
				}
			}
			return true
		})
	}

	// Report the writes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && t.tainted(ix.X) {
					pass.Reportf(lhs.Pos(), "write through arena-backed slice %s: mmap graph data is read-only", exprString(ix.X))
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && t.tainted(ix.X) {
				pass.Reportf(n.Pos(), "write through arena-backed slice %s: mmap graph data is read-only", exprString(ix.X))
			}
		case *ast.CallExpr:
			if isBuiltin(pass.TypesInfo, n, "copy") && len(n.Args) == 2 && t.tainted(n.Args[0]) {
				pass.Reportf(n.Pos(), "copy into arena-backed slice %s: mmap graph data is read-only", exprString(n.Args[0]))
			}
			if isBuiltin(pass.TypesInfo, n, "append") && len(n.Args) > 0 && t.tainted(n.Args[0]) {
				pass.Reportf(n.Pos(), "append onto arena-backed slice %s may write its backing array; clone with append(dst[:0:0], ...) first", exprString(n.Args[0]))
			}
		}
		return true
	})
}

type taint struct {
	pass *analysis.Pass
	vars map[*types.Var]bool
	// fresh holds arena fields this function provisions itself
	// (g.offsets = make(...)): a loader filling a graph it is building
	// writes heap memory, not the mmap view a loaded graph carries.
	fresh map[*types.Var]bool
}

// collectFreshFields returns the arena-marked fields the body assigns
// from a freshly-allocated value (make or a composite literal).
func collectFreshFields(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			switch rhs := ast.Unparen(assign.Rhs[i]).(type) {
			case *ast.CallExpr:
				if !isBuiltin(pass.TypesInfo, rhs, "make") {
					continue
				}
			case *ast.CompositeLit:
			default:
				continue
			}
			if v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
				fresh[v] = true
			}
		}
		return true
	})
	return fresh
}

// addVar taints the variable behind an identifier expression, reporting
// whether the set grew.
func (t *taint) addVar(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || t.vars[v] {
		return false
	}
	t.vars[v] = true
	return true
}

// tainted reports whether e evaluates to an arena-aliasing slice.
func (t *taint) tainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := t.pass.TypesInfo.ObjectOf(e).(*types.Var)
		return ok && t.vars[v]
	case *ast.CallExpr:
		return calleeMarked(t.pass, e, "arena-view")
	case *ast.SelectorExpr:
		// g.edges where the field is marked //sage:arena — unless this
		// function allocated the field itself (a loader building the graph).
		obj := t.pass.TypesInfo.ObjectOf(e.Sel)
		if v, ok := obj.(*types.Var); ok && v.IsField() && t.pass.HasMark(v, "arena") && !t.fresh[v] {
			return true
		}
		return false
	case *ast.SliceExpr:
		// A three-index slice (s[:n:n]) caps capacity; the standard
		// clone idiom append(s[:0:0], s...) must stay writable.
		return e.Max == nil && t.tainted(e.X)
	case *ast.IndexExpr:
		// Row of an arena-backed [][]T still aliases.
		return t.tainted(e.X) && isSliceType(t.pass.TypesInfo, e)
	default:
		return false
	}
}

func isSliceType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// exprString renders a small expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
