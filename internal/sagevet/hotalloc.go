package sagevet

import (
	"go/ast"
	"go/token"
	"go/types"

	"sage/internal/sagevet/analysis"
)

// HotAlloc keeps //sage:hotpath functions allocation- and closure-free:
// the flat-slice inner loops whose 2.2× wins came precisely from removing
// per-edge allocations. Inside a hotpath function it flags
//
//   - make/new, slice/map composite literals, &T{}
//   - string concatenation and string⇄[]byte conversions
//   - growing appends (only the reuse form append(buf[:0], ...) is allowed)
//   - closures that capture variables, defer, go, channel operations
//   - boxing a concrete value into an interface (assignment or call argument)
//   - static calls to functions not themselves marked //sage:hotpath
//     (the sync/atomic and math/bits leaf packages are allowed)
//
// Dynamic calls through function values (traverse.Ops.Update and friends)
// are allowed: invoking a pre-built func value does not allocate — building
// one per edge did, and the capture rule catches that.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocations, captures, boxing, and non-hotpath calls inside //sage:hotpath functions",
	Run:  runHotAlloc,
}

// hotAllowedPkgs are leaf packages hotpath code may call freely: their
// exported functions compile to allocation-free intrinsics.
var hotAllowedPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"math":        true,
	"unsafe":      true,
}

// hotAllowedBuiltins never allocate (append is handled separately; make,
// new, and conversions are, elsewhere in this file).
var hotAllowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "min": true, "max": true,
	"delete": true, "panic": true, "print": true, "println": true,
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil || !pass.HasMark(obj, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	selfAppends := collectSelfAppends(pass, fd.Body)
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			reportCaptures(pass, fd, n)
			return true // still check the body's own allocations
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path allocates a defer record")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in hot path")
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				pass.Reportf(n.Pos(), "channel receive in hot path")
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&T{} allocates in hot path")
				}
			}
		case *ast.CompositeLit:
			if t, ok := info.Types[n]; ok && t.Type != nil {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "composite literal allocates in hot path")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n.X) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
			}
			checkBoxingAssign(pass, n)
		case *ast.CallExpr:
			checkHotCall(pass, n, selfAppends)
		}
		return true
	}
	ast.Inspect(fd.Body, inspect)
}

// collectSelfAppends records append calls in the reuse-by-assignment
// form x = append(x, ...): the result lands back in the slice it grew,
// so capacity is reused in steady state — the repo's scratch-buffer
// idiom (buf = buf[:0] up top, buf = append(buf, v) per element).
func collectSelfAppends(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) == 0 || len(assign.Rhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltin(pass.TypesInfo, call, "append") || len(call.Args) == 0 {
			return true
		}
		if sameRef(pass.TypesInfo, assign.Lhs[0], call.Args[0]) {
			out[call] = true
		}
		return true
	})
	return out
}

// sameRef reports whether two expressions name the same variable or the
// same field chain (s.Nghs and s.Nghs).
func sameRef(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(a) != nil && info.ObjectOf(a) == info.ObjectOf(bi)
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && info.ObjectOf(a.Sel) == info.ObjectOf(bs.Sel) && sameRef(info, a.X, bs.X)
	}
	return false
}

// reportCaptures flags identifiers inside a FuncLit that resolve to
// variables declared outside it: each captured variable forces the
// closure (and often the variable) onto the heap. A capture-free FuncLit
// compiles to a static function value and is allowed.
func reportCaptures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared outside the literal but inside the enclosing function?
		if v.Pos() < lit.Pos() && v.Pos() > fd.Pos() {
			seen[v] = true
			pass.Reportf(id.Pos(), "closure captures %s in hot path; hoist the closure or pass the value explicitly", v.Name())
		}
		return true
	})
}

// checkHotCall applies the call rules: builtins by allowlist, append only
// in the reuse form, conversions only between non-string types, static
// callees only when hotpath-marked or in an allowed leaf package, and
// interface-boxing of arguments.
func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	info := pass.TypesInfo

	if isBuiltin(info, call, "append") {
		if !isReuseAppend(call) && !selfAppends[call] {
			pass.Reportf(call.Pos(), "append may grow and allocate in hot path; reuse a scratch buffer (append(buf[:0], ...) or buf = append(buf, ...))")
		}
		return
	}
	if isBuiltin(info, call, "make") || isBuiltin(info, call, "new") {
		pass.Reportf(call.Pos(), "%s allocates in hot path", ast.Unparen(call.Fun).(*ast.Ident).Name)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if !hotAllowedBuiltins[b.Name()] {
				pass.Reportf(call.Pos(), "builtin %s is not allowed in hot path", b.Name())
			}
			return
		}
	}
	if isConversion(info, call) {
		if len(call.Args) == 1 && (isStringConv(info, call) || isByteSliceConv(info, call)) {
			pass.Reportf(call.Pos(), "string/[]byte conversion allocates in hot path")
		}
		return
	}

	fn := staticCallee(info, call)
	if fn == nil {
		// Dynamic call through a func value (ops.Update, loop bodies):
		// calling it is free; building it was checked at its literal.
		return
	}
	if calleeMarked(pass, call, "hotpath") || hotAllowedPkgs[pkgPathOf(fn)] {
		checkBoxingArgs(pass, call, fn)
		return
	}
	pass.Reportf(call.Pos(), "call to %s, which is not marked //sage:hotpath", fn.Name())
}

// isReuseAppend reports the allowed append shape: first argument is a
// slice expression truncated to zero length (buf[:0]), which reuses the
// buffer's existing capacity.
func isReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || se.Low != nil || se.High == nil {
		return false
	}
	lit, ok := ast.Unparen(se.High).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// checkBoxingAssign flags assignments that box a concrete value into an
// interface-typed destination.
func checkBoxingAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := info.TypeOf(lhs)
		rt := info.TypeOf(n.Rhs[i])
		if boxes(lt, rt) {
			pass.Reportf(n.Rhs[i].Pos(), "assignment boxes %s into interface in hot path", rt.String())
		}
	}
}

// checkBoxingArgs flags arguments that box into interface parameters of
// an allowed call.
func checkBoxingArgs(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == token.NoPos:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pt, pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface in hot path", pass.TypesInfo.TypeOf(arg).String())
		}
	}
}

// boxes reports whether assigning a value of type from to a destination
// of type to converts a concrete value into a non-empty-method interface
// — an allocation unless the value is pointer-shaped.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, fromIface := from.Underlying().(*types.Interface); fromIface {
		return false // interface-to-interface is a pointer copy
	}
	if _, isPtr := from.Underlying().(*types.Pointer); isPtr {
		return false // pointers box without copying the pointee
	}
	switch from.Underlying().(type) {
	case *types.Basic, *types.Struct, *types.Slice, *types.Array, *types.Map:
		return true
	}
	return false
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringConv reports a conversion whose result is a string from a
// non-constant, non-string operand ([]byte, []rune, ...).
func isStringConv(info *types.Info, call *ast.CallExpr) bool {
	tv := info.Types[call.Fun]
	if tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	return !isStringExpr(info, call.Args[0])
}

// isByteSliceConv reports a []byte(s) / []rune(s) conversion from a string.
func isByteSliceConv(info *types.Info, call *ast.CallExpr) bool {
	tv := info.Types[call.Fun]
	if tv.Type == nil {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Slice); !ok {
		return false
	}
	return isStringExpr(info, call.Args[0])
}
