package sagevet_test

import (
	"testing"

	"sage/internal/sagevet/vettest"
)

func TestArenaWrite(t *testing.T) {
	vettest.Run(t, "testdata/src", "arenatest", "arenawrite")
}

func TestHotAlloc(t *testing.T) {
	vettest.Run(t, "testdata/src", "hottest", "hotalloc")
}

func TestCtxCheckpoint(t *testing.T) {
	vettest.Run(t, "testdata/src", "ctxtest", "ctxcheckpoint")
}

func TestSyncErr(t *testing.T) {
	vettest.Run(t, "testdata/src", "synctest", "syncerr")
}

func TestWalOrder(t *testing.T) {
	vettest.Run(t, "testdata/src", "waltest", "walorder")
}
