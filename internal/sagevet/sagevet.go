// Package sagevet implements the repository's own vet suite: five
// analyzers that enforce the invariants Sage's correctness and
// performance rest on but the compiler cannot see.
//
//   - arenawrite: slices aliasing an mmap arena (the NVRAM-resident
//     graph) are never written through — the paper's semi-asymmetric
//     contract (Dhulipala et al., VLDB 2020) and PR 3's zero-copy one.
//   - hotalloc: functions marked //sage:hotpath stay allocation- and
//     closure-free — the PR 1 flat-slice wins.
//   - ctxcheckpoint: every registered algorithm's round loop reaches a
//     context checkpoint — the PR 2 cancellation contract.
//   - syncerr: Sync/Close/WAL-append error results are consumed, and
//     fsync errors inside retry loops are sticky — the PR 6 rules.
//   - walorder: an overlay publish is dominated by a durable WAL append
//     in the same function — the PR 6 append→fsync→publish barrier.
//
// The suite runs standalone via cmd/sage-vet under
// "go vet -vettool=$(which sage-vet) ./...". Conventions and the
// annotation grammar are documented in docs/STATIC_ANALYSIS.md.
package sagevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sage/internal/sagevet/analysis"
)

// Analyzers returns the suite in its fixed run order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{ArenaWrite, HotAlloc, CtxCheckpoint, SyncErr, WalOrder}
}

// A Unit bundles one type-checked package for RunPackage. Marks must
// already hold the imported packages' tables (from fact files under go
// vet, or in-process in tests).
type Unit struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Module string
	Marks  *analysis.MarkSet
}

// RunPackage scans annotations, runs every analyzer enabled selects
// (nil = all), drops //sage:allow-suppressed findings, and returns the
// rest sorted by position. Marks for the unit's package — annotations
// plus analyzer-derived ones — are left in u.Marks for export.
func RunPackage(u Unit, enabled func(name string) bool) ([]analysis.Diagnostic, error) {
	u.Marks.SetCurrent(u.Pkg)
	analysis.ScanAnnotations(u.Fset, u.Files, u.Info, u.Marks)
	supp := analysis.ScanSuppressions(u.Fset, u.Files)

	var diags []analysis.Diagnostic
	for _, a := range Analyzers() {
		if enabled != nil && !enabled(a.Name) {
			continue
		}
		pass := analysis.NewPass(a, u.Fset, u.Files, u.Pkg, u.Info, u.Module, u.Marks, func(d analysis.Diagnostic) {
			if !supp.Allows(u.Fset, d.Pos, d.Analyzer) {
				diags = append(diags, d)
			}
		})
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// staticCallee resolves a call to the package-level function or method
// it invokes, or nil for builtins, conversions, and dynamic calls
// through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeMarked reports whether the call's static callee carries mark m,
// following both the callee object and — for interface methods — the
// "m:<Interface>.<Method>" key of the receiver's named interface type.
func calleeMarked(pass *analysis.Pass, call *ast.CallExpr, m string) bool {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if pass.HasMark(fn, m) {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	named := namedOf(selection.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	key := "m:" + named.Obj().Name() + "." + fn.Name()
	return pass.Marks().HasByKey(named.Obj().Pkg().Path(), key, m)
}

// namedOf unwraps pointers to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// pkgPathOf returns the package path of an object, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isContextType reports whether t is context.Context (possibly through a
// named alias or embedding is not followed — the literal interface).
func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasSuffixPath reports whether pkg path equals suffix or ends in
// "/"+suffix — used to scope analyzers to specific packages while
// remaining testable from testdata paths.
func hasSuffixPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
