// Package unit implements the `go vet -vettool` wire protocol for the
// sagevet suite, on the standard library alone. The protocol (defined by
// cmd/go and x/tools' unitchecker, re-implemented here because this
// module carries no external dependencies):
//
//   - `tool -V=full` prints an identity line cmd/go hashes for caching;
//   - `tool -flags` prints a JSON description of the tool's flags;
//   - `tool <pkg>.cfg` analyzes one package: the cfg JSON carries the
//     file set, the import map, the paths of compiled export data for
//     every dependency, and the paths of dependencies' fact (.vetx)
//     files; the tool must always write its own fact file and must stay
//     silent when VetxOnly is set (a dependency visited only for facts).
//
// Facts are the sagevet mark tables (see internal/sagevet/analysis),
// gob-encoded. Diagnostics go to stderr in the standard
// file:line:col: message form (or JSON with -json), exit status 2.
package unit

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"sage/internal/sagevet"
	"sage/internal/sagevet/analysis"
)

// Config mirrors the JSON cmd/go writes for each vetted package.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	Standard                  map[string]bool // import path -> in standard library
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/sage-vet.
func Main() {
	progname := "sage-vet"
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printFlags := fs.Bool("flags", false, "print flags in JSON")
	jsonOut := fs.Bool("json", false, "emit JSON diagnostics")
	version := fs.String("V", "", "print version and exit (cmd/go passes -V=full)")
	enabled := map[string]*bool{}
	for _, a := range sagevet.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] package.cfg\n\nAnalyzers:\n", progname)
		for _, a := range sagevet.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nRun via: go vet -vettool=$(which %s) ./...\n", progname)
	}
	_ = fs.Parse(os.Args[1:])

	if *version != "" {
		// cmd/go content-hashes this line for its action cache; include
		// a digest of the binary so edits invalidate cached results.
		printVersion(progname)
		return
	}
	if *printFlags {
		printFlagDefs(fs)
		return
	}
	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	diags, fset, err := runConfig(fs.Arg(0), func(name string) bool {
		b, ok := enabled[name]
		return !ok || *b
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) == 0 {
		return
	}
	if *jsonOut {
		printJSONDiags(fset, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
	}
	os.Exit(2)
}

func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// printFlagDefs emits the -flags JSON cmd/go uses to validate pass-through
// vet flags.
func printFlagDefs(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, jsonFlag{f.Name, isBool && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

type jsonDiag struct {
	Category string `json:"category"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

func printJSONDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Category: d.Analyzer,
			Posn:     fset.Position(d.Pos).String(),
			Message:  d.Message,
		})
	}
	out, _ := json.MarshalIndent(map[string]map[string][]jsonDiag{"sage-vet": byAnalyzer}, "", "\t")
	os.Stdout.Write(out)
	fmt.Println()
}

// runConfig analyzes the one package a .cfg describes and writes its
// fact file. It returns diagnostics only for presentation packages
// (VetxOnly unset).
func runConfig(cfgFile string, enabled func(string) bool) ([]analysis.Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// Standard-library packages carry no sage annotations and export no
	// marks; skip the parse entirely and write an empty fact file.
	if cfg.Standard[cfg.ImportPath] {
		return nil, nil, writeVetx(cfg.VetxOutput, map[string]map[string][]string{})
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, writeVetx(cfg.VetxOutput, map[string]map[string][]string{})
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, exportLookup(&cfg)),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, writeVetx(cfg.VetxOutput, map[string]map[string][]string{})
		}
		return nil, nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	marks := analysis.NewMarkSet()
	for path, vetx := range cfg.PackageVetx {
		if err := readVetx(vetx, marks); err != nil {
			return nil, nil, fmt.Errorf("reading facts for %s: %v", path, err)
		}
	}

	diags, err := sagevet.RunPackage(sagevet.Unit{
		Fset:   fset,
		Files:  files,
		Pkg:    pkg,
		Info:   info,
		Module: cfg.ModulePath,
		Marks:  marks,
	}, enabled)
	if err != nil {
		return nil, nil, err
	}
	if err := writeVetx(cfg.VetxOutput, marks.Export(pkg)); err != nil {
		return nil, nil, err
	}
	if cfg.VetxOnly {
		return nil, fset, nil
	}
	return diags, fset, nil
}

// exportLookup resolves an import path to the compiled export data cmd/go
// recorded in the cfg, applying the vendor/test-variant import map first.
func exportLookup(cfg *Config) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Fact files: a gob of package path -> object key -> sorted marks.
func writeVetx(path string, table map[string]map[string][]string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(table); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func readVetx(path string, marks *analysis.MarkSet) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var table map[string]map[string][]string
	if err := gob.NewDecoder(f).Decode(&table); err != nil {
		if err == io.EOF {
			return nil // empty fact file (zero-byte placeholder)
		}
		return err
	}
	paths := make([]string, 0, len(table))
	for p := range table {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		marks.AddImported(p, table[p])
	}
	return nil
}
