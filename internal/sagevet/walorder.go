package sagevet

import (
	"go/ast"
	"go/token"

	"sage/internal/sagevet/analysis"
)

// WalOrder enforces the append→fsync→publish barrier: a call that
// publishes an overlay (//sage:publish — store.Cache.Bump, which bumps
// the generation readers see) must be lexically preceded, in the same
// function, by a durable WAL append (//sage:durable-append). Publishing
// first would let a reader observe an update that a crash could then
// lose.
//
// The check is lexical rather than flow-sensitive — on the update path
// the append and the publish sit in the same function body (PR 6's
// apply), and a lexically-preceding append is exactly the reviewable
// property. Replay paths that publish already-durable records suppress
// the finding with //sage:allow walorder. Test files are skipped.
var WalOrder = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "flag overlay publishes (//sage:publish) not preceded by a durable WAL append (//sage:durable-append) in the same function",
	Run:  runWalOrder,
}

func runWalOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.TestFile(fd.Pos()) {
				continue
			}
			checkWalOrderFunc(pass, fd)
		}
	}
	return nil
}

func checkWalOrderFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	type found struct {
		call *ast.CallExpr
	}
	var publishes []found
	appendPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeMarked(pass, call, "durable-append") {
			if appendPos == token.NoPos || call.Pos() < appendPos {
				appendPos = call.Pos()
			}
		}
		if calleeMarked(pass, call, "publish") {
			publishes = append(publishes, found{call})
		}
		return true
	})
	for _, p := range publishes {
		if appendPos == token.NoPos || p.call.Pos() < appendPos {
			pass.Reportf(p.call.Pos(), "overlay publish without a preceding durable WAL append in %s: a crash after publish would lose an acknowledged update", fd.Name.Name)
		}
	}
}
