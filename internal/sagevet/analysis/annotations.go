package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation directives understood by sage-vet. Each is a //sage:<name>
// directive comment (no space after //, like //go:noinline) on the
// declaration it describes:
//
//	//sage:hotpath        func or interface method: allocation-free hot path
//	//sage:arena-view     func or method returning a slice aliasing an mmap arena
//	//sage:arena          struct field holding an arena-aliasing slice
//	//sage:durable        func or method whose error result must be handled
//	//sage:durable-append durable WAL append (walorder barrier source)
//	//sage:publish        overlay publish / generation bump (walorder barrier sink)
//	//sage:allow <names>  on or above a line: suppress the named analyzers there
//
// ScanAnnotations records every directive except allow as a mark on the
// declared object; allow is handled separately by ScanSuppressions.
func ScanAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info, marks *MarkSet) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				for _, m := range directives(d.Doc) {
					if obj := info.Defs[d.Name]; obj != nil {
						marks.Add(obj, m)
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					switch t := ts.Type.(type) {
					case *ast.InterfaceType:
						scanInterface(ts.Name.Name, t, info, marks)
					case *ast.StructType:
						scanStruct(t, info, marks)
					}
				}
			}
		}
	}
}

// scanInterface records directives on interface methods. Interface-method
// objects have no stable ObjKey (their receiver prints as the interface
// literal), so marks are also recorded under the explicit key
// "m:<InterfaceName>.<Method>", which consumers reconstruct from the
// receiver of a method selection.
func scanInterface(ifaceName string, t *ast.InterfaceType, info *types.Info, marks *MarkSet) {
	for _, meth := range t.Methods.List {
		ms := append(directives(meth.Doc), directives(meth.Comment)...)
		if len(ms) == 0 {
			continue
		}
		for _, name := range meth.Names {
			for _, m := range ms {
				if obj := info.Defs[name]; obj != nil {
					marks.Add(obj, m)
				}
				marks.AddKeyed("m:"+ifaceName+"."+name.Name, m)
			}
		}
	}
}

// scanStruct records directives on struct fields (//sage:arena). Field
// marks are only consulted within the declaring package — arena-backed
// fields are unexported — so local object identity suffices.
func scanStruct(t *ast.StructType, info *types.Info, marks *MarkSet) {
	for _, field := range t.Fields.List {
		ms := append(directives(field.Doc), directives(field.Comment)...)
		if len(ms) == 0 {
			continue
		}
		for _, name := range field.Names {
			for _, m := range ms {
				if obj := info.Defs[name]; obj != nil {
					marks.Add(obj, m)
				}
			}
		}
	}
}

// directives extracts the //sage:<name> directive names from a comment
// group, excluding allow (a line suppression, not a declaration mark).
func directives(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//sage:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		name = strings.TrimSpace(name)
		if name != "" && name != "allow" {
			out = append(out, name)
		}
	}
	return out
}

// Suppressions indexes //sage:allow comments: file and line to the set of
// analyzer names waived there. An allow on a line suppresses findings on
// that line and the next one (so it can sit on its own line above the
// flagged statement).
type Suppressions struct {
	allow map[string]map[int][]string
}

// ScanSuppressions collects every //sage:allow comment in files.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{allow: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//sage:allow")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				names := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == '\t' || r == ','
				})
				if len(names) == 0 {
					names = []string{"*"}
				}
				pos := fset.Position(c.Pos())
				lines := s.allow[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s.allow[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return s
}

// Allows reports whether a finding by analyzer at pos is waived by an
// allow comment on the same line or the line above.
func (s *Suppressions) Allows(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range s.allow[p.Filename][line] {
			if n == "*" || n == analyzer {
				return true
			}
		}
	}
	return false
}
