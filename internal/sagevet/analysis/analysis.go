// Package analysis is the small, dependency-free core of sage-vet: the
// repository's own static-analysis framework. It mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer runs over one type-checked
// package at a time and reports position-anchored diagnostics — but is
// built entirely on the standard library's go/ast and go/types, because
// this module carries no external dependencies.
//
// Cross-package knowledge travels as *marks*: small string tags attached
// to package-level functions and methods ("hotpath", "arena-view",
// "checkpoints", "durable", "publish", ...). Marks come from two sources:
//
//   - Annotations: //sage:<name> directive comments on declarations,
//     scanned by the driver before any analyzer runs (see annotations.go).
//   - Derivation: analyzers may add marks they compute (for example,
//     ctxcheckpoint marks every function that transitively polls its
//     context as "checkpoints").
//
// When sage-vet runs under "go vet -vettool", the driver serializes the
// current package's marks into the .vetx fact file go vet maintains per
// package, and re-reads dependencies' marks from theirs — so an analyzer
// looking at a call into another package sees the marks computed when
// that package was analyzed, exactly like go/analysis facts.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one sage-vet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable flags
	// (-<name>=false), and //sage:allow suppressions.
	Name string
	// Doc is the one-paragraph description printed by `sage-vet help`.
	Doc string
	// Run performs the check on one package. Diagnostics go through
	// pass.Reportf; derived marks through pass.Mark.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the module path of the tree under analysis ("sage"); a
	// package is "in-module" when its path is Module or below it.
	Module string
	// TestFile reports whether the file containing pos is a _test.go file.
	TestFile func(pos token.Pos) bool

	marks  *MarkSet
	report func(Diagnostic)
}

// NewPass assembles a Pass for one analyzer over one package.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module string, marks *MarkSet, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Module:    module,
		TestFile: func(pos token.Pos) bool {
			return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
		},
		marks:  marks,
		report: report,
	}
}

// Marks exposes the pass's mark set for keyed lookups.
func (p *Pass) Marks() *MarkSet { return p.marks }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Mark attaches mark m to obj, which must belong to the package under
// analysis. The mark is visible to later analyzers in this run and is
// exported for packages that import this one.
func (p *Pass) Mark(obj types.Object, m string) { p.marks.Add(obj, m) }

// HasMark reports whether obj — from this package or any imported one —
// carries mark m.
func (p *Pass) HasMark(obj types.Object, m string) bool { return p.marks.Has(obj, m) }

// InModule reports whether pkg belongs to the module under analysis.
// With an unknown module path (source-mode tests), any package whose path
// has no dot in its first element (i.e. not a domain-qualified import) is
// considered in-module, which covers both "sage/..." and testdata paths.
func (p *Pass) InModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if p.Module != "" {
		return path == p.Module || strings.HasPrefix(path, p.Module+"/")
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

// MarkSet holds marks for the current package (keyed by object identity)
// and for imported packages (keyed by package path and stable object key).
type MarkSet struct {
	current  *types.Package
	local    map[types.Object]map[string]bool
	keyed    map[string]map[string]bool            // current package, by explicit key
	imported map[string]map[string]map[string]bool // pkg path -> obj key -> marks
}

// NewMarkSet returns an empty mark set.
func NewMarkSet() *MarkSet {
	return &MarkSet{
		local:    map[types.Object]map[string]bool{},
		keyed:    map[string]map[string]bool{},
		imported: map[string]map[string]map[string]bool{},
	}
}

// Add attaches mark m to obj (an object of the package under analysis).
func (s *MarkSet) Add(obj types.Object, m string) {
	set := s.local[obj]
	if set == nil {
		set = map[string]bool{}
		s.local[obj] = set
	}
	set[m] = true
}

// AddKeyed attaches mark m under an explicit key of the current package.
// The annotation scanner uses it for interface methods, whose receiver
// representation is not stable enough for ObjKey.
func (s *MarkSet) AddKeyed(key, m string) {
	set := s.keyed[key]
	if set == nil {
		set = map[string]bool{}
		s.keyed[key] = set
	}
	set[m] = true
}

// Has reports whether obj carries mark m, consulting the local set for
// objects of the current package and the imported tables otherwise.
func (s *MarkSet) Has(obj types.Object, m string) bool {
	if obj == nil {
		return false
	}
	if s.local[obj][m] {
		return true
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == s.current {
		return s.keyed[ObjKey(obj)][m]
	}
	return s.imported[pkg.Path()][ObjKey(obj)][m]
}

// HasByKey reports whether the object identified by (pkgPath, key)
// carries mark m. Callers use it when they can name an object more
// reliably than ObjKey can (interface methods via their named interface).
func (s *MarkSet) HasByKey(pkgPath, key, m string) bool {
	if s.current != nil && pkgPath == s.current.Path() && s.keyed[key][m] {
		return true
	}
	return s.imported[pkgPath][key][m]
}

// SetCurrent records the package under analysis, so keyed lookups can
// distinguish it from imports.
func (s *MarkSet) SetCurrent(pkg *types.Package) { s.current = pkg }

// AddImported merges one package's exported mark table (from a fact file
// or an in-process test run).
func (s *MarkSet) AddImported(pkgPath string, table map[string][]string) {
	dst := s.imported[pkgPath]
	if dst == nil {
		dst = map[string]map[string]bool{}
		s.imported[pkgPath] = dst
	}
	for key, marks := range table {
		set := dst[key]
		if set == nil {
			set = map[string]bool{}
			dst[key] = set
		}
		for _, m := range marks {
			set[m] = true
		}
	}
}

// Export renders every package's marks — the current package's plus all
// imported ones — as path -> object key -> sorted marks, the form fact
// files carry. Re-exporting imported marks lets a consumer see marks from
// transitive dependencies even though go vet hands it only direct ones.
func (s *MarkSet) Export(current *types.Package) map[string]map[string][]string {
	out := map[string]map[string][]string{}
	for path, tbl := range s.imported {
		m := map[string][]string{}
		for key, set := range tbl {
			m[key] = setToList(set)
		}
		out[path] = m
	}
	cur := out[current.Path()]
	if cur == nil {
		cur = map[string][]string{}
		out[current.Path()] = cur
	}
	add := func(key string, set map[string]bool) {
		merged := map[string]bool{}
		for _, m := range cur[key] {
			merged[m] = true
		}
		for m := range set {
			merged[m] = true
		}
		cur[key] = setToList(merged)
	}
	for obj, set := range s.local {
		if obj.Pkg() != current {
			continue
		}
		add(ObjKey(obj), set)
	}
	for key, set := range s.keyed {
		add(key, set)
	}
	return out
}

func setToList(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	// Deterministic fact files: order the marks.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ObjKey returns a stable, position-independent key for a package-level
// function, method, or interface method — the only objects marks are
// exported for. Methods are keyed by their receiver's type name so that
// the producing and consuming runs (separate processes under go vet)
// agree.
func ObjKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return "o:" + obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "f:" + fn.Name()
	}
	return "m:" + recvName(sig.Recv().Type()) + "." + fn.Name()
}

// recvName names a receiver type without package qualification.
func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return types.TypeString(t, func(*types.Package) string { return "" })
}
