package sagevet

import (
	"go/ast"
	"go/types"

	"sage/internal/sagevet/analysis"
)

// CtxCheckpoint enforces the cancellation contract: every registered
// algorithm's round loop must reach a context checkpoint, so a
// long-running traversal can be cancelled between rounds.
//
// Mechanically, the analyzer derives two marks for every package it
// visits and exports them for importers:
//
//   - "checkpoints": the function polls its context — it contains
//     <-ctx.Done() or a ctx.Err() call (psam's Env.Checkpoint is the
//     canonical seed), or it statically calls a checkpoints function.
//   - "trivial": the function contains no loops and calls only trivial
//     functions — a bounded accessor whose presence in a loop does not
//     make the loop long-running.
//
// Round loops are found through the algorithm registry: a composite
// literal of a struct type named Spec with a Run field roots the search,
// and every in-package function reachable from that Run value is
// checked. A for/range loop whose body makes a non-trivial call but can
// never reach a checkpoints function is flagged. Loops inside nested
// function literals are skipped — those are per-chunk worker bodies that
// run under an already-checkpointed traversal.
var CtxCheckpoint = &analysis.Analyzer{
	Name: "ctxcheckpoint",
	Doc:  "flag registered-algorithm round loops that can never reach a context checkpoint",
	Run:  runCtxCheckpoint,
}

func runCtxCheckpoint(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Collect every function declaration with its object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Seed and propagate "checkpoints" to a fixpoint; derive "trivial".
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if !pass.HasMark(fn, "checkpoints") && reachesCheckpoint(pass, fd.Body) {
				pass.Mark(fn, "checkpoints")
				changed = true
			}
			if !pass.HasMark(fn, "trivial") && isTrivialFunc(pass, fd.Body) {
				pass.Mark(fn, "trivial")
				changed = true
			}
		}
	}

	// Roots: functions reachable from algorithm registrations.
	roots := map[*types.Func]bool{}
	var rootLits []*ast.FuncLit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			named := namedOf(info.TypeOf(lit))
			if named == nil || named.Obj().Name() != "Spec" {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Run" {
					continue
				}
				switch v := ast.Unparen(kv.Value).(type) {
				case *ast.FuncLit:
					rootLits = append(rootLits, v)
					addCalleeRoots(pass, v.Body, decls, roots)
				default:
					if fn, ok := info.Uses[rootIdent(kv.Value)].(*types.Func); ok {
						roots[fn] = true
					}
				}
			}
			return true
		})
	}
	// Close the root set over in-package static calls, so helpers like
	// BFSLevels (called by Betweenness) have their loops checked too.
	for changed := true; changed; {
		changed = false
		for fn := range roots {
			fd := decls[fn]
			if fd == nil {
				continue
			}
			before := len(roots)
			addCalleeRoots(pass, fd.Body, decls, roots)
			if len(roots) != before {
				changed = true
			}
		}
	}

	for _, lit := range rootLits {
		checkRoundLoops(pass, lit.Body)
	}
	for fn := range roots {
		if fd := decls[fn]; fd != nil {
			checkRoundLoops(pass, fd.Body)
		}
	}
	return nil
}

// rootIdent digs the identifier out of a Run value like BFSRun or
// pkg.BFSRun.
func rootIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// addCalleeRoots adds every in-package function statically called from
// body to roots.
func addCalleeRoots(pass *analysis.Pass, body ast.Node, decls map[*types.Func]*ast.FuncDecl, roots map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pass.TypesInfo, call); fn != nil {
			if _, inPkg := decls[fn]; inPkg {
				roots[fn] = true
			}
		}
		return true
	})
}

// reachesCheckpoint reports whether the body polls its context directly
// or calls a checkpoints-marked function.
func reachesCheckpoint(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// <-ctx.Done()
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isCtxMethod(pass.TypesInfo, call, "Done") {
				found = true
			}
		case *ast.CallExpr:
			if isCtxMethod(pass.TypesInfo, n, "Err") {
				found = true
			} else if calleeMarked(pass, n, "checkpoints") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCtxMethod reports a call of the named method on a context.Context.
func isCtxMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// isTrivialFunc reports a body with no loops, no selects, and only
// trivial or builtin calls — cheap accessors safe inside a round loop.
func isTrivialFunc(pass *analysis.Pass, body ast.Node) bool {
	trivial := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !trivial {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.GoStmt:
			trivial = false
		case *ast.CallExpr:
			if isBuiltinCall(pass.TypesInfo, n) || isConversion(pass.TypesInfo, n) {
				return true
			}
			if fn := staticCallee(pass.TypesInfo, n); fn != nil && pass.HasMark(fn, "trivial") {
				return true
			}
			trivial = false
		}
		return trivial
	})
	return trivial
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// checkRoundLoops flags for/range loops in body (outside nested func
// literals) that make a non-trivial call yet can never reach a
// checkpoint.
func checkRoundLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // worker bodies run under a checkpointed traversal
		}
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		}
		if loopBody == nil {
			return true
		}
		if loopIsLongRunning(pass, loopBody) && !reachesCheckpoint(pass, loopBody) {
			pass.Reportf(n.Pos(), "round loop never reaches a context checkpoint; call Env.Checkpoint (or poll ctx) once per round")
			return false // inner loops are covered by the outer report
		}
		return true
	}
	ast.Inspect(body, walk)
}

// loopIsLongRunning reports whether the loop body (outside nested func
// literals) makes at least one non-trivial call — the signal that an
// iteration does real work and the loop needs a checkpoint. Only static
// calls into this module count: a CAS retry spinning on sync/atomic or a
// merge loop invoking a caller-supplied func value is not a round loop —
// the checkpoint obligation sits with whoever drives the iteration.
func loopIsLongRunning(pass *analysis.Pass, body *ast.BlockStmt) bool {
	long := false
	ast.Inspect(body, func(n ast.Node) bool {
		if long {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !pass.InModule(fn.Pkg()) {
			return true
		}
		if pass.HasMark(fn, "trivial") {
			return true
		}
		long = true
		return false
	})
	return long
}
