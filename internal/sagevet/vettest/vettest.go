// Package vettest runs the sagevet analyzers over golden packages under
// testdata/src and checks their diagnostics against expectations written
// in the source itself:
//
//	e[0] = 1 // want "write through arena-backed slice"
//
// The string is a regular expression matched against diagnostics reported
// on that line; every want must be hit and every diagnostic must be
// wanted. Testdata packages may import each other by bare path (the
// loader resolves siblings under the same root first, then the standard
// library from source), which exercises the cross-package fact flow the
// go-vet driver performs with .vetx files.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sage/internal/sagevet"
	"sage/internal/sagevet/analysis"
)

// Run loads root/path (and, recursively, its testdata siblings), runs the
// named analyzers over every loaded package, and reports mismatches
// between diagnostics and want comments on t.
func Run(t *testing.T, root, path string, analyzers ...string) {
	t.Helper()
	enabled := func(name string) bool {
		for _, a := range analyzers {
			if a == name {
				return true
			}
		}
		return false
	}
	l := &loader{
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*types.Package{},
		exports: map[string]map[string]map[string][]string{},
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
		enabled: enabled,
	}
	if _, err := l.load(path); err != nil {
		t.Fatal(err)
	}
	checkExpectations(t, l)
}

type loader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*types.Package
	exports map[string]map[string]map[string][]string // path -> fact table
	std     types.Importer
	enabled func(string) bool

	files []*ast.File
	diags []analysis.Diagnostic
}

// Import implements types.Importer: testdata siblings first, then the
// standard library compiled from source.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		return l.load(path)
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*types.Package, error) {
	dir := filepath.Join(l.root, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vettest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	l.pkgs[path] = pkg

	// Deps finished loading during Check; hand their facts over exactly
	// as the vet driver would via .vetx files.
	marks := analysis.NewMarkSet()
	depPaths := make([]string, 0, len(l.exports))
	for p := range l.exports {
		depPaths = append(depPaths, p)
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		for pkgPath, objs := range l.exports[p] {
			marks.AddImported(pkgPath, objs)
		}
	}
	diags, err := sagevet.RunPackage(sagevet.Unit{
		Fset:  l.fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		// Each golden package stands for its own module: sibling imports
		// model external deps, whose facts still flow via the mark table.
		Module: path,
		Marks:  marks,
	}, l.enabled)
	if err != nil {
		return nil, err
	}
	l.exports[path] = marks.Export(pkg)
	l.files = append(l.files, files...)
	l.diags = append(l.diags, diags...)
	return pkg, nil
}

var wantRe = regexp.MustCompile(`//\s*want\s+(".*"|` + "`[^`]*`" + `)\s*$`)

// checkExpectations matches the collected diagnostics against the want
// comments in every loaded file.
func checkExpectations(t *testing.T, l *loader) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	matched := map[key][]bool{}
	for _, f := range l.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want string %s", l.fset.Position(c.Pos()), m[1])
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", l.fset.Position(c.Pos()), err)
				}
				p := l.fset.Position(c.Pos())
				k := key{p.Filename, p.Line}
				wants[k] = append(wants[k], rx)
				matched[k] = append(matched[k], false)
			}
		}
	}
	for _, d := range l.diags {
		p := l.fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		hit := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched[k][i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s: unexpected diagnostic: %s: %s", p, d.Analyzer, d.Message)
		}
	}
	for k, rxs := range wants {
		for i, rx := range rxs {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matched want %q", relPath(k.file), k.line, rx)
			}
		}
	}
}

func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return p
}
