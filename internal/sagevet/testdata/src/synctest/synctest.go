// Package synctest is the golden suite for the syncerr analyzer:
// Sync/Close/durable errors must be consumed, and fsync errors inside
// loops must be sticky.
package synctest

import (
	"io"
	"os"
)

type F struct{ err error }

func (f *F) Sync() error  { return f.err }
func (f *F) Close() error { return f.err }

//sage:durable
func durableOp() error { return nil }

func discards(f *F, osf *os.File) {
	f.Sync()        // want "result of Sync is discarded"
	f.Close()       // want "result of Close is discarded"
	osf.Close()     // want "result of Close is discarded"
	durableOp()     // want `result of durableOp \(//sage:durable\) is discarded`
	_ = durableOp() // want "error from //sage:durable durableOp is discarded with _"
}

func consumed(f *F, c io.Closer) {
	// Explicit waiver is accepted for plain Close/Sync...
	_ = f.Close()
	// ...deferred cleanup is idiomatic...
	defer f.Close()
	// ...foreign Closers are not this analyzer's business...
	c.Close()
	// ...and handling the error is of course fine.
	if err := f.Sync(); err != nil {
		panic(err)
	}
}

func nonSticky(f *F) {
	for i := 0; i < 3; i++ {
		if err := f.Sync(); err != nil { // want "fsync error is not sticky"
			continue
		}
	}
}

type state struct{ err error }

func sticky(f *F, s *state) error {
	for i := 0; i < 3; i++ {
		if err := f.Sync(); err != nil {
			return err // escapes the loop
		}
	}
	for i := 0; i < 3; i++ {
		err := f.Sync()
		if err != nil {
			s.err = err // recorded where it outlives the iteration
		}
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); err != nil {
			record(s, err) // handed to a recorder
		}
	}
	return nil
}

func record(s *state, err error) { s.err = err }

func waived(f *F) {
	f.Sync() //sage:allow syncerr
}
