// Package ctxtest is the golden suite for the ctxcheckpoint analyzer:
// round loops in functions reachable from a Spec registration must reach
// a context checkpoint.
package ctxtest

import (
	"context"
	"sync/atomic"
)

type Spec struct {
	Name string
	Run  func(ctx context.Context) int
}

var registry = []Spec{
	{Name: "bad", Run: badRun},
	{Name: "good", Run: goodRun},
	{Name: "inline", Run: func(ctx context.Context) int {
		total := 0
		for i := 0; i < 64; i++ { // want "round loop never reaches a context checkpoint"
			total += work(i)
		}
		return total
	}},
}

// work is non-trivial (it loops), so loops calling it are round loops.
func work(n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += i
	}
	return acc
}

// degree is trivial: a loop calling only it is not long-running.
func degree(n int) int { return n + 1 }

// checkpoint polls the context; callers inherit the checkpoints mark.
func checkpoint(ctx context.Context) {
	if ctx.Err() != nil {
		panic(ctx.Err())
	}
}

func badRun(ctx context.Context) int {
	total := 0
	for round := 0; round < 10; round++ { // want "round loop never reaches a context checkpoint"
		total += work(round)
	}
	return total
}

func goodRun(ctx context.Context) int {
	total := 0
	for round := 0; round < 10; round++ {
		checkpoint(ctx)
		total += work(round)
	}
	// Direct polls also count.
	for round := 0; round < 10; round++ {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += work(round)
	}
	// Trivial-only loops and CAS spins on sync/atomic need no checkpoint.
	var v int64
	for i := 0; i < 10; i++ {
		total += degree(i)
	}
	for {
		old := atomic.LoadInt64(&v)
		if atomic.CompareAndSwapInt64(&v, old, old+1) {
			break
		}
	}
	return total
}

// unreachable has a checkpoint-free loop but is not reachable from any
// Spec, so it is not checked.
func unreachable() int {
	total := 0
	for i := 0; i < 10; i++ {
		total += work(i)
	}
	return total
}
