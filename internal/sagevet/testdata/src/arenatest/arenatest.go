// Package arenatest is the golden suite for the arenawrite analyzer:
// writes through arena-aliasing slices are flagged; clones and
// construction-time fills are not.
package arenatest

type G struct {
	//sage:arena
	edges []uint32
	n     int
}

//sage:arena-view
func (g *G) Edges() []uint32 { return g.edges }

// View is the interface-method form of the annotation: callers flagged
// through the keyed mark even when the callee is dynamic.
type View interface {
	//sage:arena-view
	Edges() []uint32
}

func writes(g *G) {
	e := g.Edges()
	e[0] = 1       // want "write through arena-backed slice e"
	g.edges[1] = 2 // want "write through arena-backed slice g.edges"
	sub := e[1:]
	sub[0]++         // want "write through arena-backed slice sub"
	copy(e, sub)     // want "copy into arena-backed slice e"
	_ = append(e, 3) // want "append onto arena-backed slice e"
}

func ifaceWrites(v View) {
	e := v.Edges()
	e[0] = 1 // want "write through arena-backed slice e"
}

// clones own their backing arrays: writing them is legal.
func clones(g *G) {
	e := g.Edges()
	c1 := append([]uint32(nil), e...)
	c1[0] = 1
	c2 := append(e[:0:0], e...)
	c2[0] = 2
	dst := make([]uint32, len(e))
	copy(dst, e)
	dst[0] = 3
}

// build fills a graph it allocates itself: the fields are fresh heap
// memory, not an mmap view, so the loader writes are clean.
func build(n int) *G {
	g := &G{n: n}
	g.edges = make([]uint32, n)
	for i := range g.edges {
		g.edges[i] = uint32(i)
	}
	return g
}

// waived is a deliberate exception, silenced in place.
func waived(g *G) {
	e := g.Edges()
	e[0] = 9 //sage:allow arenawrite
}
