// Test files are exempt from walorder: harnesses republish snapshots
// without appending.
package waltest

func testPublish() {
	publish() // no finding: _test.go files are skipped
}
