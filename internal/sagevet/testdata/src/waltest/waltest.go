// Package waltest is the golden suite for the walorder analyzer: an
// overlay publish must be preceded, in the same function, by a durable
// WAL append.
package waltest

import "walfacts"

//sage:durable
//sage:durable-append
func walAppend() error { return nil }

//sage:publish
func publish() {}

func goodApply() error {
	if err := walAppend(); err != nil {
		return err
	}
	publish()
	return nil
}

func badApply() {
	publish() // want "overlay publish without a preceding durable WAL append in badApply"
	if err := walAppend(); err != nil {
		return
	}
}

func noAppend() {
	publish() // want "overlay publish without a preceding durable WAL append in noAppend"
}

// replay republishes records that are already durable.
func replay() {
	publish() //sage:allow walorder
}

// Cross-package: the marks on walfacts flow in through its fact table.
func crossBad() {
	walfacts.Publish() // want "overlay publish without a preceding durable WAL append in crossBad"
}

func crossGood() error {
	if err := walfacts.Append(); err != nil {
		return err
	}
	walfacts.Publish()
	return nil
}
