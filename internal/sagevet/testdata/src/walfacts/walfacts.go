// Package walfacts exports annotated functions for waltest: the marks
// must survive the package boundary through the fact table.
package walfacts

//sage:durable
//sage:durable-append
func Append() error { return nil }

//sage:publish
func Publish() {}
