// Package hottest is the golden suite for the hotalloc analyzer:
// //sage:hotpath functions must not allocate, capture, box, or call into
// unmarked code.
package hottest

import "sync/atomic"

//sage:hotpath
func leaf(x int) int { return x + 1 }

func unmarked(x int) int { return x * 2 }

type sink struct {
	vals  []int
	iface interface{}
}

//sage:hotpath
func allocs(n int, s *sink) {
	buf := make([]int, n) // want "make allocates in hot path"
	_ = buf
	m := map[int]int{} // want "composite literal allocates in hot path"
	_ = m
	p := &sink{} // want `&T\{\} allocates in hot path`
	_ = p
	defer leaf(n) // want "defer in hot path allocates a defer record"
}

//sage:hotpath
func strs(a, b string, bs []byte) {
	_ = a + b      // want "string concatenation allocates in hot path"
	_ = []byte(a)  // want `string/\[\]byte conversion allocates in hot path`
	_ = string(bs) // want `string/\[\]byte conversion allocates in hot path`
}

//sage:hotpath
func calls(x int) {
	_ = leaf(x)
	_ = atomic.AddInt64(new(int64), 1) // want "new allocates in hot path"
	_ = unmarked(x)                    // want "call to unmarked, which is not marked //sage:hotpath"
}

//sage:hotpath
func boxes(x int, s *sink) {
	s.iface = x // want "assignment boxes int into interface in hot path"
}

//sage:hotpath
func captures(xs []int) func() int {
	total := 0
	return func() int { // closure over total below
		total++ // want "closure captures total in hot path"
		return total
	}
}

//sage:hotpath
func appends(buf []int, x int) []int {
	buf = append(buf[:0], x) // scratch reuse: allowed
	buf = append(buf, x)     // self-append: allowed
	other := append(buf, x)  // want "append may grow and allocate in hot path"
	_ = other
	return buf
}

//sage:hotpath
func waived(n int) []int {
	return make([]int, n) //sage:allow hotalloc
}
