package sagevet

import (
	"go/ast"
	"go/token"
	"go/types"

	"sage/internal/sagevet/analysis"
)

// SyncErr is a targeted errcheck for the durability paths. It flags:
//
//   - a discarded result of Sync() on any receiver, Close() on an
//     in-module receiver or *os.File, or any //sage:durable call
//     (an expression statement that drops the error on the floor);
//   - `_ =` discards of //sage:durable calls — the explicit waiver is
//     accepted for plain Close/Sync, never for the WAL write path;
//   - non-sticky fsync retries: inside a loop, an error from Sync or a
//     durable call must escape the loop (return, break, panic) or be
//     recorded (assigned to a field or outer variable) — retrying Sync
//     after a failure silently loses the first error, because the kernel
//     clears the dirty state on the failed fsync.
//
// Deferred calls are exempt: `defer f.Close()` on a read path is idiomatic.
var SyncErr = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  "flag discarded Sync/Close/durable errors and non-sticky fsync retries",
	Run:  runSyncErr,
}

func runSyncErr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSyncErrFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkSyncErrFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind := errCallKind(pass, call); kind != "" {
				pass.Reportf(call.Pos(), "result of %s is discarded; handle the error (durability depends on it)", kind)
			}
			return true
		case *ast.AssignStmt:
			checkBlankDiscard(pass, n)
		case *ast.ForStmt:
			checkStickyLoop(pass, n.Body)
		case *ast.RangeStmt:
			checkStickyLoop(pass, n.Body)
		}
		return true
	})
}

// errCallKind classifies a call whose error result must be consumed,
// returning a human label or "".
func errCallKind(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if !returnsError(fn) {
		return ""
	}
	if calleeMarked(pass, call, "durable") {
		return fn.Name() + " (//sage:durable)"
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	switch fn.Name() {
	case "Sync":
		return "Sync"
	case "Close":
		recv := namedOf(sig.Recv().Type())
		if recv == nil {
			return ""
		}
		pkg := recv.Obj().Pkg()
		if pkg == nil {
			return ""
		}
		if pkg.Path() == "os" && recv.Obj().Name() == "File" {
			return "Close"
		}
		if pass.InModule(pkg) {
			return "Close"
		}
	}
	return ""
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	n := namedOf(last)
	return n != nil && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// checkBlankDiscard flags `_ = durableCall()`: the waiver that is fine
// for a best-effort Close is not fine for the WAL write path.
func checkBlankDiscard(pass *analysis.Pass, n *ast.AssignStmt) {
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok || !calleeMarked(pass, call, "durable") {
		return
	}
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return // some result is kept
		}
	}
	fn := staticCallee(pass.TypesInfo, call)
	pass.Reportf(call.Pos(), "error from //sage:durable %s is discarded with _; durable errors must be handled", fn.Name())
}

// checkStickyLoop enforces the sticky-error rule for Sync and durable
// calls whose error is bound inside a loop body: the error's handling
// branch must leave the loop or record the failure. Two shapes are
// recognized:
//
//	if err := x.Sync(); err != nil { ... }
//	err := x.Sync(); if err != nil { ... }
func checkStickyLoop(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		var call *ast.CallExpr
		if init, ok := ifs.Init.(*ast.AssignStmt); ok {
			call = syncishCall(pass, init)
		}
		if call == nil {
			return true
		}
		errName := condErrName(ifs.Cond)
		if errName == "" {
			return true
		}
		if !branchEscapesOrRecords(pass, ifs.Body, errName) {
			pass.Reportf(call.Pos(), "fsync error is not sticky: the failure branch neither leaves the loop nor records the error; a retried Sync silently drops it")
		}
		return true
	})

	// err := x.Sync() followed by if err != nil { ... } as the next statement.
	for i := 0; i+1 < len(body.List); i++ {
		assign, ok := body.List[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		call := syncishCall(pass, assign)
		if call == nil {
			continue
		}
		ifs, ok := body.List[i+1].(*ast.IfStmt)
		if !ok || ifs.Init != nil {
			continue
		}
		errName := condErrName(ifs.Cond)
		if errName == "" {
			continue
		}
		if !branchEscapesOrRecords(pass, ifs.Body, errName) {
			pass.Reportf(call.Pos(), "fsync error is not sticky: the failure branch neither leaves the loop nor records the error; a retried Sync silently drops it")
		}
	}
}

// syncishCall returns the Sync/durable call on the assignment's RHS, if
// its error lands in a simple variable.
func syncishCall(pass *analysis.Pass, assign *ast.AssignStmt) *ast.CallExpr {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil || !returnsError(fn) {
		return nil
	}
	if fn.Name() == "Sync" || calleeMarked(pass, call, "durable") {
		return call
	}
	return nil
}

// condErrName matches `err != nil` and returns the error identifier's
// name ("" when the condition has another shape).
func condErrName(cond ast.Expr) string {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return ""
	}
	x, xOk := ast.Unparen(be.X).(*ast.Ident)
	nilY, yOk := ast.Unparen(be.Y).(*ast.Ident)
	if !xOk || !yOk || nilY.Name != "nil" {
		return ""
	}
	return x.Name
}

// branchEscapesOrRecords reports whether the failure branch leaves the
// loop (return, break, goto, panic) or records the error somewhere that
// outlives the iteration — an assignment to a selector, or passing the
// error variable to a call (a health setter, a logger).
func branchEscapesOrRecords(pass *analysis.Pass, block *ast.BlockStmt, errName string) bool {
	ok := false
	ast.Inspect(block, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			ok = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				ok = true
			}
		case *ast.CallExpr:
			if id, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent && id.Name == "panic" {
				ok = true
			}
			// t.Fatal / t.Fatalf / t.FailNow and friends stop the
			// goroutine (runtime.Goexit), as do os.Exit / log.Fatal*.
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
				switch sel.Sel.Name {
				case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow", "Exit", "Goexit", "Fatalln":
					ok = true
				}
			}
			// Handing the error to any function records it.
			for _, arg := range n.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, isID := a.(*ast.Ident); isID && id.Name == errName {
						ok = true
					}
					return !ok
				})
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
						ok = true // sticky store like l.syncErr = err
					}
				}
			}
		}
		return !ok
	})
	return ok
}
