package refalgo

import (
	"testing"

	"sage/internal/gen"
	"sage/internal/graph"
)

// The oracles cross-check each other and a few closed-form cases, so a
// bug in a reference cannot silently validate a matching bug in the
// parallel implementations.

func k(n uint32) *graph.Graph {
	var edges []graph.Edge
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

func TestDijkstraAgreesWithBellmanFord(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 8, 3), 5)
	d1 := Dijkstra(g, 0)
	d2 := BellmanFord(g, 0)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("refs disagree at %d: %d vs %d", v, d1[v], d2[v])
		}
	}
}

func TestDijkstraUnweightedEqualsBFSHops(t *testing.T) {
	g := gen.RMAT(8, 8, 7)
	hops := BFSDistances(g, 0)
	d := Dijkstra(g, 0)
	for v := range hops {
		if hops[v] == ^uint32(0) {
			continue
		}
		if int64(hops[v]) != d[v] {
			t.Fatalf("hop/weight mismatch at %d", v)
		}
	}
}

func TestTrianglesClosedForm(t *testing.T) {
	// K_n has C(n,3) triangles.
	if got := Triangles(k(4)); got != 4 {
		t.Fatalf("K4: %d", got)
	}
	if got := Triangles(k(6)); got != 20 {
		t.Fatalf("K6: %d", got)
	}
	if got := Triangles(gen.Chain(50)); got != 0 {
		t.Fatalf("chain: %d", got)
	}
}

func TestCorenessClosedForm(t *testing.T) {
	core := Coreness(k(5))
	for v, c := range core {
		if c != 4 {
			t.Fatalf("K5 vertex %d coreness %d", v, c)
		}
	}
	core = Coreness(gen.Star(10))
	if core[0] != 1 {
		t.Fatalf("star center coreness %d", core[0])
	}
}

func TestKCliquesClosedForm(t *testing.T) {
	// C(6,4) = 15 four-cliques in K6.
	if got := KCliques(k(6), 4); got != 15 {
		t.Fatalf("K6 4-cliques: %d", got)
	}
	if got := KCliques(k(6), 3); got != Triangles(k(6)) {
		t.Fatal("3-cliques != triangles")
	}
}

func TestTrussnessClosedForm(t *testing.T) {
	truss := Trussness(k(5))
	for e, v := range truss {
		if v != 5 {
			t.Fatalf("K5 edge %v trussness %d", e, v)
		}
	}
}

func TestBiconnectedBridge(t *testing.T) {
	// Path a-b-c: both edges are bridges (distinct components).
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOpts{Symmetrize: true})
	labels := Biconnected(g)
	if len(labels) != 2 {
		t.Fatalf("expected 2 labeled edges, got %d", len(labels))
	}
	if labels[[2]uint32{0, 1}] == labels[[2]uint32{1, 2}] {
		t.Fatal("bridges must be distinct biconnected components")
	}
	// A cycle is one biconnected component.
	cy := gen.Cycle(6)
	labels = Biconnected(cy)
	first := -1
	for _, l := range labels {
		if first == -1 {
			first = l
		} else if l != first {
			t.Fatal("cycle should be one biconnected component")
		}
	}
}

func TestGreedySetCoverCoversEverything(t *testing.T) {
	sets := [][]uint32{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	var edges []graph.Edge
	for s, elems := range sets {
		for _, e := range elems {
			edges = append(edges, graph.Edge{U: uint32(s), V: 4 + e})
		}
	}
	g := graph.FromEdges(8, edges, graph.BuildOpts{Symmetrize: true})
	cover := GreedySetCover(g, 4)
	covered := map[uint32]bool{}
	for _, s := range cover {
		for _, e := range sets[s] {
			covered[e] = true
		}
	}
	for e := uint32(0); e < 4; e++ {
		if !covered[e] {
			t.Fatalf("element %d uncovered", e)
		}
	}
}

func TestMaxDensityBounds(t *testing.T) {
	// K6 has exact density (6-1)/2 = 2.5.
	if d := MaxDensity(k(6)); d != 2.5 {
		t.Fatalf("K6 density %.2f", d)
	}
	if d := MaxDensity(gen.Chain(10)); d <= 0 || d > 1 {
		t.Fatalf("chain density %.2f", d)
	}
}

func TestPageRankMassConserved(t *testing.T) {
	g := gen.RMAT(8, 8, 9)
	pr := PageRank(g, 1e-10, 100)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if sum <= 0 || sum > 1.001 {
		t.Fatalf("mass %v", sum)
	}
}

func TestSameComponentsDetectsMismatch(t *testing.T) {
	if !SameComponents([]uint32{0, 0, 2}, []uint32{5, 5, 9}) {
		t.Fatal("isomorphic labelings rejected")
	}
	if SameComponents([]uint32{0, 0, 2}, []uint32{5, 6, 9}) {
		t.Fatal("split not detected")
	}
	if SameComponents([]uint32{0, 1, 2}, []uint32{5, 5, 9}) {
		t.Fatal("merge not detected")
	}
}
