// Package refalgo provides simple, obviously-correct sequential
// implementations of every problem in the suite. The test packages use
// them as oracles for the parallel Sage algorithms; none of them is
// performance-tuned and none charges the PSAM environment.
package refalgo

import (
	"container/heap"
	"math"
	"sort"

	"sage/internal/graph"
)

// BFSDistances returns hop distances from src (^uint32(0) if unreachable).
func BFSDistances(g *graph.Graph, src uint32) []uint32 {
	n := g.NumVertices()
	const inf = ^uint32(0)
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == inf {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// pqItem is a priority-queue entry for Dijkstra-style searches.
type pqItem struct {
	v    uint32
	prio int64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].prio < q[j].prio }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns weighted shortest-path distances from src
// (math.MaxInt64 if unreachable). Weights must be non-negative.
func Dijkstra(g *graph.Graph, src uint32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	q := &pq{{v: src, prio: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.prio > dist[it.v] {
			continue
		}
		nghs := g.Neighbors(it.v)
		ws := g.NeighborWeights(it.v)
		for i, u := range nghs {
			w := int64(1)
			if ws != nil {
				w = int64(ws[i])
			}
			if nd := it.prio + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(q, pqItem{v: u, prio: nd})
			}
		}
	}
	return dist
}

// BellmanFord returns shortest-path distances allowing negative weights;
// vertices affected by reachable negative cycles get math.MinInt64.
func BellmanFord(g *graph.Graph, src uint32) []int64 {
	n := int(g.NumVertices())
	const inf = math.MaxInt64
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	relax := func() bool {
		changed := false
		for v := uint32(0); v < uint32(n); v++ {
			if dist[v] == inf {
				continue
			}
			nghs := g.Neighbors(v)
			ws := g.NeighborWeights(v)
			for i, u := range nghs {
				w := int64(1)
				if ws != nil {
					w = int64(ws[i])
				}
				if dist[v]+w < dist[u] {
					dist[u] = dist[v] + w
					changed = true
				}
			}
		}
		return changed
	}
	for i := 0; i < n-1; i++ {
		if !relax() {
			return dist
		}
	}
	if relax() {
		// Mark negative-cycle-affected vertices: anything that still
		// improves, and everything reachable from it.
		affected := make([]bool, n)
		for pass := 0; pass < n; pass++ {
			changed := false
			for v := uint32(0); v < uint32(n); v++ {
				if dist[v] == inf {
					continue
				}
				nghs := g.Neighbors(v)
				ws := g.NeighborWeights(v)
				for i, u := range nghs {
					w := int64(1)
					if ws != nil {
						w = int64(ws[i])
					}
					if affected[v] || dist[v]+w < dist[u] {
						if !affected[u] {
							affected[u] = true
							changed = true
						}
					}
				}
			}
			if !changed {
				break
			}
		}
		for v := range affected {
			if affected[v] {
				dist[v] = math.MinInt64
			}
		}
	}
	return dist
}

// WidestPath returns the max-min path width from src (MinInt64 if
// unreachable, MaxInt64 for src itself).
func WidestPath(g *graph.Graph, src uint32) []int64 {
	n := g.NumVertices()
	width := make([]int64, n)
	for i := range width {
		width[i] = math.MinInt64
	}
	width[src] = math.MaxInt64
	q := &pq{{v: src, prio: -math.MaxInt64}} // max-heap via negation
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		w := -it.prio
		if w < width[it.v] {
			continue
		}
		nghs := g.Neighbors(it.v)
		ws := g.NeighborWeights(it.v)
		for i, u := range nghs {
			ew := int64(1)
			if ws != nil {
				ew = int64(ws[i])
			}
			nw := min(width[it.v], ew)
			if nw > width[u] {
				width[u] = nw
				heap.Push(q, pqItem{v: u, prio: -nw})
			}
		}
	}
	return width
}

// Betweenness returns single-source Brandes dependencies from src.
func Betweenness(g *graph.Graph, src uint32) []float64 {
	n := g.NumVertices()
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	var order []uint32
	sigma[src] = 1
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
			if dist[u] == dist[v]+1 {
				sigma[u] += sigma[v]
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, u := range g.Neighbors(v) {
			if dist[u] == dist[v]+1 {
				delta[v] += sigma[v] / sigma[u] * (1 + delta[u])
			}
		}
	}
	delta[src] = 0
	return delta
}

// Components returns connected-component labels normalized to the minimum
// member vertex.
func Components(g *graph.Graph, _ uint64) []uint32 {
	n := g.NumVertices()
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := uint32(0); v < n; v++ {
		for _, u := range g.Neighbors(v) {
			a, b := find(v), find(u)
			if a != b {
				if a < b {
					parent[b] = a
				} else {
					parent[a] = b
				}
			}
		}
	}
	labels := make([]uint32, n)
	for v := uint32(0); v < n; v++ {
		labels[v] = find(v)
	}
	return labels
}

// SameComponents reports whether two labelings induce the same partition.
func SameComponents(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[uint32]uint32{}
	rev := map[uint32]uint32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// Triangles counts triangles by oriented merge intersection.
func Triangles(g *graph.Graph) int64 {
	n := g.NumVertices()
	rankLess := func(a, b uint32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	out := make([][]uint32, n)
	for v := uint32(0); v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if rankLess(v, u) {
				out[v] = append(out[v], u)
			}
		}
		sort.Slice(out[v], func(i, j int) bool { return out[v][i] < out[v][j] })
	}
	var count int64
	for v := uint32(0); v < n; v++ {
		for _, u := range out[v] {
			count += intersectCount(out[v], out[u])
		}
	}
	return count
}

func intersectCount(a, b []uint32) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// Coreness returns exact coreness values by sequential peeling.
func Coreness(g *graph.Graph) []uint32 {
	n := int(g.NumVertices())
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = int(g.Degree(uint32(v)))
	}
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool { return deg[order[i]] < deg[order[j]] })
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	core := make([]uint32, n)
	k := 0
	removed := make([]bool, n)
	for i := 0; i < n; i++ {
		// Re-sort lazily: find the min-degree unremoved vertex.
		best, bestDeg := -1, math.MaxInt
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		v := uint32(best)
		if bestDeg > k {
			k = bestDeg
		}
		core[v] = uint32(k)
		removed[best] = true
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	_ = pos
	return core
}

// PageRank runs sequential power iteration (pull form) to convergence.
func PageRank(g *graph.Graph, eps float64, maxIters int) []float64 {
	n := int(g.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	for i := range prev {
		prev[i] = 1 / float64(n)
	}
	const d = 0.85
	for it := 0; it < maxIters; it++ {
		var diff float64
		for v := 0; v < n; v++ {
			var acc float64
			for _, u := range g.Neighbors(uint32(v)) {
				acc += prev[u] / float64(g.Degree(u))
			}
			next[v] = (1-d)/float64(n) + d*acc
			diff += math.Abs(next[v] - prev[v])
		}
		prev, next = next, prev
		if diff < eps {
			break
		}
	}
	return prev
}

// GreedySetCover returns the classic greedy cover for the bipartite
// instance (sets [0, numSets), elements above).
func GreedySetCover(g *graph.Graph, numSets uint32) []uint32 {
	n := g.NumVertices()
	covered := make([]bool, n)
	used := make([]bool, numSets)
	var cover []uint32
	for {
		best, bestGain := uint32(0), 0
		for s := uint32(0); s < numSets; s++ {
			if used[s] {
				continue
			}
			gain := 0
			for _, e := range g.Neighbors(s) {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = s, gain
			}
		}
		if bestGain == 0 {
			return cover
		}
		used[best] = true
		cover = append(cover, best)
		for _, e := range g.Neighbors(best) {
			covered[e] = true
		}
	}
}

// MaxDensity returns the best density over the exact sequential peeling
// order (Charikar's 2-approximation certificate): the density of the best
// suffix when repeatedly removing a minimum-degree vertex.
func MaxDensity(g *graph.Graph) float64 {
	n := int(g.NumVertices())
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(g.Degree(uint32(v)))
	}
	removed := make([]bool, n)
	liveArcs := int64(g.NumEdges())
	liveN := int64(n)
	best := 0.0
	for liveN > 0 {
		best = math.Max(best, float64(liveArcs)/2/float64(liveN))
		minV, minD := -1, int64(math.MaxInt64)
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < minD {
				minV, minD = v, deg[v]
			}
		}
		removed[minV] = true
		for _, u := range g.Neighbors(uint32(minV)) {
			if !removed[u] {
				deg[u]--
				liveArcs -= 2
			}
		}
		liveN--
	}
	return best
}
