package refalgo

import (
	"math"
	"sort"

	"sage/internal/graph"
)

// KCliques counts k-cliques by brute-force extension over the ordered
// DAG (exponential in k; use on small graphs only).
func KCliques(g *graph.Graph, k int) int64 {
	n := g.NumVertices()
	rankLess := func(a, b uint32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	out := make([][]uint32, n)
	for v := uint32(0); v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if rankLess(v, u) {
				out[v] = append(out[v], u)
			}
		}
		sort.Slice(out[v], func(i, j int) bool { return out[v][i] < out[v][j] })
	}
	var count int64
	var extend func(cands []uint32, remaining int)
	extend = func(cands []uint32, remaining int) {
		if remaining == 0 {
			count++
			return
		}
		if len(cands) < remaining {
			return
		}
		for _, u := range cands {
			extend(intersectSorted(cands, out[u]), remaining-1)
		}
	}
	for v := uint32(0); v < n; v++ {
		extend(out[v], k-1)
	}
	return count
}

func intersectSorted(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// PersonalizedPageRank runs sequential power iteration with restart.
func PersonalizedPageRank(g *graph.Graph, src uint32, damping, eps float64, maxIters int) []float64 {
	n := int(g.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	prev[src] = 1
	for it := 0; it < maxIters; it++ {
		var diff float64
		for v := 0; v < n; v++ {
			var acc float64
			for _, u := range g.Neighbors(uint32(v)) {
				acc += prev[u] / float64(g.Degree(u))
			}
			nv := damping * acc
			if uint32(v) == src {
				nv += 1 - damping
			}
			diff += math.Abs(nv - prev[v])
			next[v] = nv
		}
		prev, next = next, prev
		if diff < eps {
			break
		}
	}
	return prev
}

// Trussness computes edge trussness by sequential min-support peeling
// (trussness = 2 + the peeling level at removal).
func Trussness(g *graph.Graph) map[[2]uint32]uint32 {
	type edge struct{ u, v uint32 }
	support := map[edge]int{}
	canon := func(a, b uint32) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	var edges []edge
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				edges = append(edges, edge{v, u})
			}
		}
	}
	common := func(u, v uint32) []uint32 {
		return intersectSorted(g.Neighbors(u), g.Neighbors(v))
	}
	for _, e := range edges {
		support[e] = len(common(e.u, e.v))
	}
	removed := map[edge]bool{}
	truss := map[[2]uint32]uint32{}
	remaining := len(edges)
	level := 0
	for remaining > 0 {
		// Minimum current support.
		minS := math.MaxInt
		for _, e := range edges {
			if !removed[e] && support[e] < minS {
				minS = support[e]
			}
		}
		if minS > level {
			level = minS
		}
		// Peel every edge at or below the level (cascading).
		for {
			var peel []edge
			for _, e := range edges {
				if !removed[e] && support[e] <= level {
					peel = append(peel, e)
				}
			}
			if len(peel) == 0 {
				break
			}
			for _, e := range peel {
				if removed[e] {
					continue
				}
				removed[e] = true
				remaining--
				truss[[2]uint32{e.u, e.v}] = uint32(level) + 2
				for _, w := range common(e.u, e.v) {
					e1 := canon(e.u, w)
					e2 := canon(e.v, w)
					if removed[e1] || removed[e2] {
						continue
					}
					if support[e1] > level {
						support[e1]--
					}
					if support[e2] > level {
						support[e2]--
					}
				}
			}
		}
	}
	return truss
}
