package refalgo

import (
	"sage/internal/graph"
)

// Biconnected returns, for every undirected edge {u, v} with u < v, a
// canonical biconnected-component id, computed with the classic iterative
// Hopcroft–Tarjan edge-stack algorithm. The ids are arbitrary but
// consistent: edges share an id iff they share a biconnected component.
func Biconnected(g *graph.Graph) map[[2]uint32]int {
	n := int(g.NumVertices())
	num := make([]int, n) // DFS discovery order, 0 = unvisited
	low := make([]int, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	labels := make(map[[2]uint32]int)
	var stack [][2]uint32
	counter := 0
	comp := 0

	canon := func(a, b uint32) [2]uint32 {
		if a > b {
			a, b = b, a
		}
		return [2]uint32{a, b}
	}

	type frame struct {
		v  uint32
		ei int
	}
	for s := 0; s < n; s++ {
		if num[s] != 0 {
			continue
		}
		counter++
		num[s] = counter
		low[s] = counter
		st := []frame{{v: uint32(s)}}
		for len(st) > 0 {
			f := &st[len(st)-1]
			v := f.v
			nghs := g.Neighbors(v)
			if f.ei < len(nghs) {
				u := nghs[f.ei]
				f.ei++
				if num[u] == 0 {
					parent[u] = int32(v)
					stack = append(stack, canon(v, u))
					counter++
					num[u] = counter
					low[u] = counter
					st = append(st, frame{v: u})
				} else if int32(u) != parent[v] && num[u] < num[v] {
					stack = append(stack, canon(v, u))
					if num[u] < low[v] {
						low[v] = num[u]
					}
				}
				continue
			}
			// Post-visit: pop and propagate low to the parent; emit a
			// component if v's subtree cannot reach above parent.
			st = st[:len(st)-1]
			if len(st) == 0 {
				continue
			}
			p := st[len(st)-1].v
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= num[p] {
				// New biconnected component: pop edges down to (p, v).
				comp++
				target := canon(p, v)
				for len(stack) > 0 {
					e := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					labels[e] = comp
					if e == target {
						break
					}
				}
			}
		}
	}
	return labels
}

// SamePartition reports whether two edge labelings induce the same
// partition over the same edge set.
func SamePartition(a map[[2]uint32]int, b map[[2]uint32]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]uint32{}
	rev := map[uint32]int{}
	for e, la := range a {
		lb, ok := b[e]
		if !ok {
			return false
		}
		if x, seen := fwd[la]; seen && x != lb {
			return false
		}
		if x, seen := rev[lb]; seen && x != la {
			return false
		}
		fwd[la] = lb
		rev[lb] = la
	}
	return true
}
