package traverse

// The Auto strategy picks direction and push implementation per EdgeMap
// from a hardware cost model. Its choices may differ between models —
// that is the point — but its *output* must match the fixed strategies
// on pure ops, and without a model it must degrade to Chunked.

import (
	"fmt"
	"testing"

	"sage/internal/compress"
	"sage/internal/costmodel"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/psam"
)

func TestAutoStrategyEquivalence(t *testing.T) {
	rmat := gen.RMAT(10, 8, 3)
	cases := []struct {
		name string
		g    graph.Adj
	}{
		{"rmat", rmat},
		{"rmat-byte64", compress.Compress(rmat, 64)},
	}
	ops := Ops{Update: acceptEdge, UpdateAtomic: acceptEdge, Cond: CondTrue}
	models := []costmodel.Profile{
		costmodel.Optane(), costmodel.DRAMOnly(), costmodel.ReRAM(), costmodel.FlashCSD(),
	}
	for _, tc := range cases {
		// Frontier sizes spanning the sparse->dense transition.
		for trial := 0; trial < 4; trial++ {
			vs := randomFrontier(tc.g.NumVertices(), 0.05*float64(trial*trial+1), uint64(trial)+11)
			env := psam.NewEnv(psam.AppDirect)
			ref := runSorted(tc.g, env, vs, ops, Options{Strategy: Chunked, Dedup: true})
			for i := range models {
				name := fmt.Sprintf("%s/trial%d/%s", tc.name, trial, models[i].ModelName)
				got := runSorted(tc.g, env, vs, ops, Options{Strategy: Auto, Dedup: true, Model: &models[i]})
				if !equalU32(ref, got) {
					t.Fatalf("%s: auto disagrees with chunked: %d vs %d targets", name, len(got), len(ref))
				}
			}
			// Without a model Auto must behave exactly like Chunked.
			got := runSorted(tc.g, env, vs, ops, Options{Strategy: Auto, Dedup: true})
			if !equalU32(ref, got) {
				t.Fatalf("%s/trial%d: model-less auto disagrees with chunked", tc.name, trial)
			}
		}
	}
}

// TestPredictDenseModelSensitivity pins the reason Auto exists: a
// page-granular device makes scattered sparse pushes so expensive that
// the dense crossover arrives at a smaller frontier than on symmetric
// DRAM.
func TestPredictDenseModelSensitivity(t *testing.T) {
	dram, flash := costmodel.DRAMOnly(), costmodel.FlashCSD()
	const n, m, den = 1 << 16, 1 << 20, 20
	// A mid-size frontier touching a fraction of the edges: cheap to push
	// sparsely word-at-a-time, expensive page-at-a-time.
	const fsize, outDeg = n / 16, m / 64
	if predictDense(&dram, n, m, fsize, outDeg, den) {
		t.Fatalf("dram model went dense at frontier %d / outDeg %d", fsize, outDeg)
	}
	if !predictDense(&flash, n, m, fsize, outDeg, den) {
		t.Fatalf("flash model stayed sparse at frontier %d / outDeg %d", fsize, outDeg)
	}
}
