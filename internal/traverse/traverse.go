// Package traverse implements the edgeMap family of graph-traversal
// primitives (§2, §4.1): the pull-based dense traversal, the push-based
// sparse traversal with its O(Σ deg) intermediate memory, the blocked
// variant used by GBBS, and Sage's memory-efficient edgeMapChunked
// (Algorithm 1), together with Beamer-style direction optimization.
//
// Every variant charges its graph accesses to the PSAM environment, and
// its temporary allocations to the small-memory space tracker, so the
// Table 5 memory comparison and the Figure 1/7 cost comparisons come
// directly out of the same code paths that compute results.
//
// The inner loops are closure-free: each traversal resolves the graph's
// flat access path once (graph.Flat) and iterates plain neighbor slices —
// aliases of the CSR arrays for uncompressed graphs, or block decodes
// into per-worker scratch buffers for compressed ones, amortizing decode
// cost per block instead of per edge. The PSAM accounting is identical to
// the callback path; only the per-edge dispatch is gone. Small per-round
// loops launch on the parallel package's persistent worker pool, so a
// frontier algorithm's thousands of rounds do not spawn goroutines.
package traverse

import (
	"sage/internal/costmodel"
	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// Ops bundles the user functions of edgeMap (§2): Update is applied
// non-atomically by the dense (pull) traversal, UpdateAtomic by the
// push-based traversals (multiple sources may race on one target), and
// Cond gates targets. Update functions return true iff the target should
// join the output subset; Cond returning false both skips the target and
// lets the dense traversal break out of its scan early.
type Ops struct {
	Update       func(s, d uint32, w int32) bool
	UpdateAtomic func(s, d uint32, w int32) bool
	Cond         func(d uint32) bool
}

// CondTrue is the always-true condition.
func CondTrue(uint32) bool { return true }

// Strategy selects the push-side implementation.
type Strategy int

const (
	// Chunked is Sage's edgeMapChunked (§4.1.2): O(n) intermediate words.
	Chunked Strategy = iota
	// Blocked is GBBS's edgeMapBlocked: cache-friendly but O(Σ deg)
	// intermediate memory.
	Blocked
	// Sparse is Ligra's original push traversal: O(Σ deg) memory and
	// sentinel-filtered output.
	Sparse
	// Auto selects the direction and the push implementation per EdgeMap
	// call from the cost model's predicted costs (Options.Model) instead
	// of the measured-count Ligra heuristic. Without a model it behaves
	// like Chunked.
	Auto
)

// String names the strategy as in Appendix D.2's Table 5.
func (s Strategy) String() string {
	switch s {
	case Chunked:
		return "edgeMapChunked"
	case Blocked:
		return "edgeMapBlocked"
	case Sparse:
		return "edgeMapSparse"
	case Auto:
		return "edgeMapAuto"
	}
	return "unknown"
}

// Options configures a traversal.
type Options struct {
	// Strategy is the push-side implementation (default Chunked).
	Strategy Strategy
	// DenseThresholdDen is the direction-optimization denominator: the
	// traversal runs dense when |U| + Σ_{u∈U} deg(u) > m/Den. Zero means
	// the Ligra default of 20.
	DenseThresholdDen int
	// ForceSparse disables switching to the dense traversal (the
	// "sparse-only" configuration of Appendix D.2).
	ForceSparse bool
	// ForceDense always runs the dense traversal.
	ForceDense bool
	// NoOutput skips building the output subset (for edgeMaps used only
	// for their side effects).
	NoOutput bool
	// Dedup removes duplicate targets from sparse outputs (needed when
	// UpdateAtomic can return true more than once per target).
	Dedup bool
	// Pools is the per-run scratch set (decode buffers + chunk free
	// lists). Nil selects a shared fallback, which is only safe when
	// top-level traversals are not issued concurrently.
	Pools *Pools
	// Model is the hardware cost profile consulted by the Auto strategy
	// to price traversal directions and push implementations before each
	// EdgeMap call. Ignored by the fixed strategies, so setting it never
	// perturbs their traversal order or PSAM counts.
	Model *costmodel.Profile
}

// EdgeMap applies ops over the edges out of vs and returns the subset of
// targets for which an update succeeded (Theorem 4.1: O(Σ deg) work,
// O(log n) depth, O(n) small-memory words with the Chunked strategy).
func EdgeMap(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset, ops Ops, opt Options) *frontier.VertexSubset {
	env.Checkpoint() // frontier boundary: a cancelled run unwinds here
	n := g.NumVertices()
	if vs.Size() == 0 {
		return frontier.Empty(n)
	}
	if opt.DenseThresholdDen == 0 {
		opt.DenseThresholdDen = 20
	}
	outDeg := frontierDegree(g, env, vs)
	var dense bool
	if opt.Strategy == Auto && opt.Model != nil {
		dense = opt.ForceDense || (!opt.ForceSparse &&
			predictDense(opt.Model, int64(n), int64(g.NumEdges()), int64(vs.Size()), outDeg, int64(opt.DenseThresholdDen)))
	} else {
		threshold := int64(g.NumEdges()) / int64(opt.DenseThresholdDen)
		dense = opt.ForceDense || (!opt.ForceSparse && outDeg+int64(vs.Size()) > threshold)
	}
	if dense {
		return edgeMapDense(g, env, vs, ops, opt)
	}
	switch opt.Strategy {
	case Blocked:
		return edgeMapBlocked(g, env, vs, ops, opt, outDeg)
	case Sparse:
		return edgeMapSparse(g, env, vs, ops, opt, outDeg)
	case Auto:
		if opt.Model != nil && predictBlocked(outDeg, int64(n)) {
			return edgeMapBlocked(g, env, vs, ops, opt, outDeg)
		}
		return EdgeMapChunked(g, env, vs, ops, opt)
	default:
		return EdgeMapChunked(g, env, vs, ops, opt)
	}
}

// predictDense prices both traversal directions under the cost model and
// returns true when the pull-based scan is predicted cheaper — direction
// optimization driven by predicted rather than measured cost. The push
// side issues one scattered neighbor-list fetch per frontier vertex, a
// streamed read of the frontier's out-edges, and two small-memory
// operations per edge. The pull side streams the scan positions the
// early exit is expected to leave standing — the break-even fraction
// m/den of Ligra's measured heuristic — plus one degree probe per
// vertex. On word-granular profiles the comparison lands near the
// classic |U| + Σdeg > m/den rule; on page-granular profiles the
// scattered fetches bill whole pages and the dense direction wins much
// earlier, which is the point.
//
//sage:hotpath
func predictDense(p *costmodel.Profile, n, m, frontier, outDeg, den int64) bool {
	sparse := p.RandReadCost(frontier) + p.SeqReadCost(outDeg) + 2*outDeg
	dense := p.SeqReadCost(m/den+n) + n
	return dense < sparse
}

// predictBlocked returns true when Blocked's O(Σ deg) intermediate
// buffering is predicted cheaper than Chunked's O(n) chunk table. The
// intermediate memory is small-memory in every profile — unit-charged —
// so the comparison reduces to the two allocation sizes, with Blocked's
// per-edge writes counted double (write + filter read).
//
//sage:hotpath
func predictBlocked(outDeg, n int64) bool {
	return 2*outDeg < n
}

// frontierDegree computes Σ_{u∈U} deg(u), charging the offset reads.
func frontierDegree(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset) int64 {
	if vs.IsDense() {
		d := vs.Dense()
		total := parallel.ReduceSum(int(g.NumVertices()), 0, func(i int) int64 {
			if d[i] {
				return int64(g.Degree(uint32(i)))
			}
			return 0
		})
		env.GraphRead(0, 0, int64(g.NumVertices())) // offset reads (one degree per vertex)
		return total
	}
	sp := vs.Sparse()
	total := parallel.ReduceSum(len(sp), 0, func(i int) int64 {
		return int64(g.Degree(sp[i]))
	})
	env.GraphRead(0, 0, int64(len(sp))) // offset reads
	return total
}

// edgeMapDense is the pull-based traversal: every vertex satisfying Cond
// scans its in-edges (equal to out-edges on symmetric graphs) for frontier
// members, stopping as soon as Cond(d) turns false. Zero-copy
// representations (CSR, the GBBS mutable image) scan flat aliased slices
// with no per-edge callback; compressed and filtered representations keep
// the callback decode, because the dense scan's early exit typically
// fires within a few edges and decoding a whole block to scan two of its
// entries costs more than the dispatch it saves.
func edgeMapDense(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset, ops Ops, opt Options) *frontier.VertexSubset {
	n := g.NumVertices()
	from := vs.Dense()
	var out []bool
	if !opt.NoOutput {
		out = make([]bool, n)
		env.Alloc(int64(n+7) / 8)
	}
	flat := graph.NewFlat(g)
	pools := poolsOf(opt)
	var outCounts [parallel.MaxWorkers]struct {
		c int64
		_ [56]byte
	}
	zeroCopy := flat.ZeroCopy()
	parallel.ForBlocks(int(n), 256, func(w, lo, hi int) {
		sc := pools.Scratch(w)
		var scanned, produced int64
		for i := lo; i < hi; i++ {
			d := uint32(i)
			if !ops.Cond(d) {
				continue
			}
			if zeroCopy {
				nghs, ws := flat.Full(d, sc)
				n, _ := densePiece(ops, from, out, d, nghs, ws, &produced)
				scanned += n
				continue
			}
			g.IterRange(d, 0, g.Degree(d), func(_, s uint32, wt int32) bool {
				scanned++
				if from[s] && ops.Update(s, d, wt) {
					if out != nil && !out[d] {
						out[d] = true
						produced++
					}
				}
				return ops.Cond(d)
			})
		}
		env.GraphRead(w, 0, scanned)
		env.StateRead(w, scanned)
		env.StateWrite(w, produced)
		outCounts[w].c += produced
	})
	if opt.NoOutput {
		return frontier.Empty(n)
	}
	var total int64
	for i := range outCounts {
		total += outCounts[i].c
	}
	return frontier.FromDense(n, out, int(total))
}

// densePiece runs the pull scan over one flat piece of d's in-edges,
// returning the number of positions scanned and whether the scan stopped
// early. Cond(d) is a function of d's state, which only Update(·, d)
// mutates, and one worker owns d for the whole scan — so the early-exit
// check is needed only after an Update invocation, not on every edge; the
// stop position (and hence the charged scan count) is identical to the
// per-edge check.
//
//sage:hotpath
func densePiece(ops Ops, from, out []bool, d uint32, nghs []uint32, ws []int32, produced *int64) (int64, bool) {
	if ws == nil {
		for j, s := range nghs {
			if from[s] {
				if ops.Update(s, d, 1) && out != nil && !out[d] {
					out[d] = true
					*produced++
				}
				if !ops.Cond(d) {
					return int64(j) + 1, true
				}
			}
		}
	} else {
		for j, s := range nghs {
			if from[s] {
				if ops.Update(s, d, ws[j]) && out != nil && !out[d] {
					out[d] = true
					*produced++
				}
				if !ops.Cond(d) {
					return int64(j) + 1, true
				}
			}
		}
	}
	return int64(len(nghs)), false
}

// edgeMapSparse is Ligra's push traversal: it allocates an output array
// proportional to the frontier's out-degree, writes winners (or a
// sentinel), and filters. Its O(Σ deg) allocation is the PSAM violation
// that motivates edgeMapChunked (§4.1.1).
func edgeMapSparse(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset, ops Ops, opt Options, outDeg int64) *frontier.VertexSubset {
	n := g.NumVertices()
	sp := vs.Sparse()
	const sentinel = ^uint32(0)
	offs := make([]int64, len(sp)+1)
	parallel.For(len(sp), 0, func(i int) { offs[i] = int64(g.Degree(sp[i])) })
	parallel.Scan(offs)
	out := make([]uint32, outDeg)
	env.Alloc(outDeg + int64(len(sp)))
	defer env.Free(outDeg + int64(len(sp)))
	flat := graph.NewFlat(g)
	pools := poolsOf(opt)
	parallel.ForWorker(len(sp), 16, func(w, i int) {
		u := sp[i]
		deg := g.Degree(u)
		base := offs[i]
		env.GraphRead(w, g.EdgeAddr(u), g.ScanCost(u, 0, deg))
		nghs, ws := flat.Slice(u, 0, deg, pools.Scratch(w))
		if ws == nil {
			for j, d := range nghs {
				if ops.Cond(d) && ops.UpdateAtomic(u, d, 1) {
					out[base+int64(j)] = d
				} else {
					out[base+int64(j)] = sentinel
				}
			}
		} else {
			for j, d := range nghs {
				if ops.Cond(d) && ops.UpdateAtomic(u, d, ws[j]) {
					out[base+int64(j)] = d
				} else {
					out[base+int64(j)] = sentinel
				}
			}
		}
		env.StateRead(w, int64(deg))
		env.StateWrite(w, int64(deg)) // sentinel or winner written per edge
	})
	if opt.NoOutput {
		return frontier.Empty(n)
	}
	res := parallel.Filter(out, func(v uint32) bool { return v != sentinel })
	if opt.Dedup {
		res = dedup(n, env, res)
	}
	env.Alloc(int64(len(res)))
	return frontier.FromSparse(n, res)
}

// dedup removes duplicate ids with a shared bitset.
func dedup(n uint32, env *psam.Env, ids []uint32) []uint32 {
	seen := parallel.NewBitset(int(n))
	env.Alloc(int64(seen.Words()) / 2)
	defer env.Free(int64(seen.Words()) / 2)
	keep := make([]bool, len(ids))
	parallel.ForWorker(len(ids), 0, func(w, i int) {
		keep[i] = seen.TestAndSet(ids[i])
		env.StateWrite(w, 1)
	})
	return parallel.FilterIndex(ids, func(i int, _ uint32) bool { return keep[i] })
}
