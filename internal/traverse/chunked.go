package traverse

import (
	"sort"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// minChunkSize plays the role of the 4096 constant in Algorithm 1: chunk
// and group sizes are max(minChunkSize, davg). The paper's 4096 is tuned
// for billion-edge graphs where 8P·4096 words is negligible against n; at
// this repository's laptop scale a smaller constant keeps the pool's
// footprint well under n while preserving the amortization (a chunk always
// holds at least one full block, since minChunkSize >= davg is enforced by
// the max).
const minChunkSize = 512

// chunkPool recycles output chunks across edgeMapChunked calls with
// per-worker free lists (the "pool-based thread-local allocator" of
// Algorithm 1, line 3). The pool bounds live chunk memory by O(n) words.
// One chunkPool belongs to one run's Pools; concurrent runs never share
// free lists.
type chunkPool struct {
	lists [parallel.MaxWorkers]struct {
		free [][]uint32
		_    [40]byte
	}
}

// get returns an empty chunk with at least capacity cap.
func (p *chunkPool) get(worker, capacity int) []uint32 {
	l := &p.lists[worker]
	for i := len(l.free) - 1; i >= 0; i-- {
		c := l.free[i]
		if cap(c) >= capacity {
			l.free[i] = l.free[len(l.free)-1]
			l.free = l.free[:len(l.free)-1]
			return c[:0]
		}
	}
	return make([]uint32, 0, capacity)
}

// put returns a chunk to the pool.
func (p *chunkPool) put(worker int, c []uint32) {
	l := &p.lists[worker]
	if len(l.free) < 64 {
		l.free = append(l.free, c)
	}
}

// EdgeMapChunked is Sage's memory-efficient sparse traversal (§4.1.2,
// Algorithm 1). The frontier's edges are cut into blocks of the graph's
// underlying block size (davg for CSR, the compression block size for
// compressed graphs), blocks are assigned to ~8P groups, each group
// processes its blocks sequentially appending successful targets into
// pool-allocated chunks, and a final scan+copy aggregates the chunks into
// a flat output. Work O(Σ_{u∈U} deg(u)), depth O(log n), and — the point —
// at most O(n) words of small-memory (Theorem 4.1).
func EdgeMapChunked(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset, ops Ops, opt Options) *frontier.VertexSubset {
	n := g.NumVertices()
	sp := vs.Sparse()
	if len(sp) == 0 {
		return frontier.Empty(n)
	}
	gbSize := g.BlockSize() // compression block size, or 0 for CSR
	if gbSize == 0 {
		gbSize = int(g.AvgDegree())
	}
	chunkSize := max(minChunkSize, int(g.AvgDegree()))

	// Per-vertex block counts and the block table (Algorithm 1, line 12).
	nb := make([]int64, len(sp)+1)
	parallel.For(len(sp), 0, func(i int) {
		nb[i] = int64(int(g.Degree(sp[i]))+gbSize-1) / int64(gbSize)
	})
	totalBlocks := parallel.Scan(nb)
	nb[len(sp)] = totalBlocks
	if totalBlocks == 0 {
		return frontier.Empty(n)
	}
	blockVtx := make([]uint32, totalBlocks) // index into sp
	blockLo := make([]uint32, totalBlocks)  // start position within vertex
	blockDegs := make([]int64, totalBlocks+1)
	env.Alloc(3 * totalBlocks)
	defer env.Free(3 * totalBlocks)
	parallel.For(len(sp), 16, func(i int) {
		deg := int(g.Degree(sp[i]))
		base := nb[i]
		for b := 0; int64(b) < nb[i+1]-base; b++ {
			lo := b * gbSize
			blockVtx[base+int64(b)] = uint32(i)
			blockLo[base+int64(b)] = uint32(lo)
			blockDegs[base+int64(b)] = int64(min(gbSize, deg-lo))
		}
	})
	dU := parallel.Scan(blockDegs)
	blockDegs[totalBlocks] = dU

	// Group assignment (lines 14–18): static load balancing over ~8P
	// virtual threads, but never groups smaller than minGroupSize edges.
	p := parallel.Workers()
	groupSize := max(dU/int64(8*p)+1, int64(max(minChunkSize, int(g.AvgDegree()))))
	numGroups := int((dU + groupSize - 1) / groupSize)
	groupStart := make([]int64, numGroups+1)
	parallel.For(numGroups, 64, func(gi int) {
		target := int64(gi) * groupSize
		groupStart[gi] = int64(sort.Search(int(totalBlocks), func(b int) bool {
			return blockDegs[b+1] > target
		}))
	})
	groupStart[numGroups] = totalBlocks

	// Process groups (lines 20–23): each group is sequential; chunks are
	// fetched from the per-worker pool and stored in the group's vector.
	// Blocks align with the graph's decode granularity, so each Slice call
	// below decodes exactly one compression block into the worker scratch
	// (or aliases the CSR edge array with no copy at all).
	groupChunks := make([][][]uint32, numGroups)
	flat := graph.NewFlat(g)
	pools := poolsOf(opt)
	parallel.ForWorker(numGroups, 1, func(w, gi int) {
		var vec [][]uint32
		var cur []uint32
		var scanned int64
		for b := groupStart[gi]; b < groupStart[gi+1]; b++ {
			bDeg := int(blockDegs[b+1] - blockDegs[b])
			if cur == nil || len(cur)+bDeg > cap(cur) {
				if cur != nil {
					vec = append(vec, cur)
				}
				cur = pools.chunks.get(w, chunkSize)
				env.Alloc(int64(cap(cur)))
			}
			u := sp[blockVtx[b]]
			lo := blockLo[b]
			hi := lo + uint32(bDeg)
			env.GraphRead(w, g.EdgeAddr(u)+int64(lo), g.ScanCost(u, lo, hi))
			nghs, ws := flat.Slice(u, lo, hi, pools.Scratch(w))
			if ws == nil {
				for _, d := range nghs {
					if ops.Cond(d) && ops.UpdateAtomic(u, d, 1) {
						cur = append(cur, d)
					}
				}
			} else {
				for j, d := range nghs {
					if ops.Cond(d) && ops.UpdateAtomic(u, d, ws[j]) {
						cur = append(cur, d)
					}
				}
			}
			scanned += int64(bDeg)
		}
		if cur != nil {
			vec = append(vec, cur)
		}
		env.StateRead(w, scanned)
		groupChunks[gi] = vec
	})

	// Aggregate (lines 24–30): flatten all chunks with a scan + parallel
	// copy, then release the chunks.
	var all [][]uint32
	for _, vec := range groupChunks {
		all = append(all, vec...)
	}
	var res []uint32
	if !opt.NoOutput {
		res = parallel.FlattenUint32(all)
		env.StateWrite(0, int64(len(res)))
	}
	parallel.ForWorker(len(all), 4, func(w, i int) {
		env.Free(int64(cap(all[i])))
		pools.chunks.put(w, all[i])
	})
	if opt.NoOutput {
		return frontier.Empty(n)
	}
	if opt.Dedup {
		res = dedup(n, env, res)
	}
	env.Alloc(int64(len(res)))
	return frontier.FromSparse(n, res)
}
