package traverse

import "sage/internal/graph"

// Pools owns the per-worker mutable scratch of one logical run: the
// decode buffers for the closure-free edge iteration (graph.Flat) and
// the chunked traversal's chunk free lists. Buffers grow to the largest
// range decoded and are reused across every edgeMap call of the run, so
// steady-state traversal does not allocate for decoding.
//
// Worker indices come from the parallel package's [0, Workers())
// contract and are unique at any instant — but two concurrent top-level
// runs each use the full index range, so scratch shared across runs
// would race. Each run therefore threads its own Pools through
// Options.Pools; callers that leave it nil (single-run tools, tests)
// share the package-level fallback and must not traverse concurrently.
type Pools struct {
	decode graph.ScratchPool
	chunks chunkPool
}

// NewPools returns an empty per-run scratch set.
func NewPools() *Pools { return &Pools{} }

// Scratch returns worker w's decode buffer.
func (p *Pools) Scratch(w int) *graph.Scratch { return p.decode.Get(w) }

// sharedPools backs traversals that do not thread per-run pools.
var sharedPools Pools

// poolsOf resolves an Options' pools, falling back to the shared set.
func poolsOf(opt Options) *Pools {
	if opt.Pools != nil {
		return opt.Pools
	}
	return &sharedPools
}
