package traverse

import (
	"sage/internal/graph"
	"sage/internal/parallel"
)

// flatScratch holds one decode buffer per worker for the closure-free
// edge iteration (graph.Flat). Buffers grow to the largest range decoded
// and are reused across every edgeMap call, so steady-state traversal
// does not allocate for decoding. Worker indices come from the parallel
// package's [0, Workers()) contract; like the chunk pool, the scratch
// assumes top-level traversals do not run concurrently with each other.
var flatScratch [parallel.MaxWorkers]graph.Scratch
