package traverse

// Overlay-aware traversal equivalence: every edgeMap strategy over a
// base+delta overlay (internal/delta) must produce exactly the frontier
// it produces over the eagerly rebuilt static graph. This is what lets a
// snapshot run every registry algorithm unmodified — the traversal layer
// sees the overlay through the same Adj/FlatAdj contract as any graph,
// decoding merged adjacency into per-worker scratch like a compressed
// representation.

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"sage/internal/compress"
	"sage/internal/delta"
	"sage/internal/frontier"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// mergedCSR eagerly rebuilds the overlay's merged view as a plain CSR.
func mergedCSR(o *delta.Overlay) *graph.Graph {
	n := o.NumVertices()
	var edges []graph.WEdge
	for v := uint32(0); v < n; v++ {
		o.IterRange(v, 0, o.Degree(v), func(_, u uint32, w int32) bool {
			if v < u {
				edges = append(edges, graph.WEdge{U: v, V: u, W: w})
			}
			return true
		})
	}
	if !o.Weighted() {
		plain := make([]graph.Edge, len(edges))
		for i, e := range edges {
			plain[i] = graph.Edge{U: e.U, V: e.V}
		}
		return graph.FromEdges(n, plain, graph.BuildOpts{Symmetrize: true})
	}
	return graph.FromWeightedEdges(n, edges, graph.BuildOpts{Symmetrize: true})
}

// randomOps builds a deterministic mixed insert/delete batch over an
// n-vertex graph.
func randomOps(n uint32, count int, seed uint64) []delta.Op {
	r := rand.New(rand.NewPCG(seed, 0xde17a))
	var ops []delta.Op
	for len(ops) < count {
		u, v := uint32(r.IntN(int(n))), uint32(r.IntN(int(n)))
		if u == v {
			continue
		}
		ops = append(ops, delta.Op{U: u, V: v, Del: r.IntN(3) == 0})
	}
	return ops
}

// TestOverlayStrategyEquivalence runs the cross-strategy net of
// equivalence_test.go with the graph behind a delta overlay: for random
// update batches over uncompressed and byte-compressed bases, every
// strategy on the overlay must match the Chunked reference on the eagerly
// rebuilt merged graph.
func TestOverlayStrategyEquivalence(t *testing.T) {
	rmat := gen.RMAT(9, 8, 11)
	pl := gen.PowerLaw(900, 5, 13)
	bases := []struct {
		name string
		g    graph.Adj
	}{
		{"rmat", rmat},
		{"rmat-byte64", compress.Compress(rmat, 64)},
		{"powerlaw", pl},
	}
	ops := Ops{Update: acceptEdge, UpdateAtomic: acceptEdge, Cond: CondTrue}
	variants := []struct {
		name string
		opt  Options
	}{
		{"chunked", Options{Strategy: Chunked, ForceSparse: true, Dedup: true}},
		{"blocked", Options{Strategy: Blocked, ForceSparse: true, Dedup: true}},
		{"sparse", Options{Strategy: Sparse, ForceSparse: true, Dedup: true}},
		{"dense", Options{ForceDense: true}},
	}
	oldWorkers := parallel.Workers()
	defer parallel.SetWorkers(oldWorkers)
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, b := range bases {
			ov := delta.New(b.g)
			for batch := 0; batch < 3; batch++ {
				next, err := ov.Apply(randomOps(b.g.NumVertices(), 60, uint64(batch)*31+7))
				if err != nil {
					t.Fatal(err)
				}
				ov = next
				merged := mergedCSR(ov)
				if merged.NumEdges() != ov.NumEdges() {
					t.Fatalf("%s/batch%d: overlay m=%d, merged m=%d",
						b.name, batch, ov.NumEdges(), merged.NumEdges())
				}
				for trial := 0; trial < 2; trial++ {
					name := fmt.Sprintf("p%d/%s/batch%d/trial%d", workers, b.name, batch, trial)
					vs := randomFrontier(b.g.NumVertices(), 0.05*float64(trial+1), uint64(trial)*3+1)
					env := psam.NewEnv(psam.AppDirect)
					ref := runSorted(merged, env, vs, ops, variants[0].opt)
					for _, v := range variants {
						got := runSorted(ov, env, cloneSubset(vs), ops, v.opt)
						if !equalU32(ref, got) {
							t.Fatalf("%s: overlay %s disagrees with merged reference: %d vs %d targets",
								name, v.name, len(got), len(ref))
						}
					}
				}
			}
		}
	}
}

// cloneSubset guards against edgeMap variants consuming the input subset.
func cloneSubset(vs *frontier.VertexSubset) *frontier.VertexSubset {
	ids := append([]uint32(nil), vs.Sparse()...)
	return frontier.FromSparse(vs.N(), ids)
}
