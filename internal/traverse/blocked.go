package traverse

import (
	"sort"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// blockedBlockSize is the edge-block granularity of edgeMapBlocked.
const blockedBlockSize = 4096

// edgeMapBlocked is the GBBS traversal (§4.1.1): the frontier's edge space
// is cut into fixed-size blocks processed independently; each block writes
// its successes compactly at its own offset of an intermediate array of
// size Σ deg, so the number of cache lines written is proportional to the
// output, but the *allocation* is still O(Σ deg) — the memory inefficiency
// Table 5 measures.
func edgeMapBlocked(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset, ops Ops, opt Options, outDeg int64) *frontier.VertexSubset {
	n := g.NumVertices()
	sp := vs.Sparse()
	offs := make([]int64, len(sp)+1)
	parallel.For(len(sp), 0, func(i int) { offs[i] = int64(g.Degree(sp[i])) })
	parallel.Scan(offs)
	offs[len(sp)] = outDeg

	out := make([]uint32, outDeg)
	env.Alloc(outDeg + int64(len(sp)))
	defer env.Free(outDeg + int64(len(sp)))

	nBlocks := int((outDeg + blockedBlockSize - 1) / blockedBlockSize)
	if nBlocks == 0 {
		return frontier.Empty(n)
	}
	counts := make([]int, nBlocks)
	flat := graph.NewFlat(g)
	pools := poolsOf(opt)
	parallel.ForWorker(nBlocks, 1, func(w, b int) {
		lo := int64(b) * blockedBlockSize
		hi := min(lo+blockedBlockSize, outDeg)
		// First vertex whose edge range intersects [lo, hi).
		vi := sort.Search(len(sp), func(i int) bool { return offs[i+1] > lo })
		wr := lo
		var scanned int64
		for e := lo; e < hi && vi < len(sp); {
			u := sp[vi]
			vLo := uint32(e - offs[vi])
			vHi := uint32(min(offs[vi+1], hi) - offs[vi])
			env.GraphRead(w, g.EdgeAddr(u)+int64(vLo), g.ScanCost(u, vLo, vHi))
			nghs, ws := flat.Slice(u, vLo, vHi, pools.Scratch(w))
			if ws == nil {
				for _, d := range nghs {
					if ops.Cond(d) && ops.UpdateAtomic(u, d, 1) {
						out[wr] = d
						wr++
					}
				}
			} else {
				for j, d := range nghs {
					if ops.Cond(d) && ops.UpdateAtomic(u, d, ws[j]) {
						out[wr] = d
						wr++
					}
				}
			}
			scanned += int64(vHi - vLo)
			e = offs[vi] + int64(vHi)
			if e >= offs[vi+1] {
				vi++
			}
		}
		env.StateRead(w, scanned)
		env.StateWrite(w, wr-lo)
		counts[b] = int(wr - lo)
	})
	if opt.NoOutput {
		return frontier.Empty(n)
	}
	total := parallel.Scan(counts)
	res := make([]uint32, total)
	parallel.For(nBlocks, 1, func(b int) {
		lo := int64(b) * blockedBlockSize
		k := 0
		if b+1 < nBlocks {
			k = counts[b+1] - counts[b]
		} else {
			k = total - counts[b]
		}
		copy(res[counts[b]:counts[b]+k], out[lo:lo+int64(k)])
	})
	if opt.Dedup {
		res = dedup(n, env, res)
	}
	env.Alloc(int64(len(res)))
	return frontier.FromSparse(n, res)
}
