package traverse

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"sage/internal/compress"
	"sage/internal/frontier"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// acceptEdge is a pure pseudo-random predicate over (source, target,
// weight): the "random ops" of the cross-strategy equivalence test. Being
// pure makes the edgeMap output a function of the frontier alone, so every
// strategy must produce the same target set.
func acceptEdge(s, d uint32, w int32) bool {
	x := uint64(s)<<32 | uint64(d)
	x ^= uint64(uint32(w)) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x&3 != 0
}

// randomFrontier returns a deterministic pseudo-random vertex subset with
// inclusion probability p.
func randomFrontier(n uint32, p float64, seed uint64) *frontier.VertexSubset {
	r := rand.New(rand.NewPCG(seed, 0x5eed))
	var ids []uint32
	for v := uint32(0); v < n; v++ {
		if r.Float64() < p {
			ids = append(ids, v)
		}
	}
	return frontier.FromSparse(n, ids)
}

// TestCrossStrategyEquivalence is the safety net for the inner-loop
// rewrite: the same traversal (pure random ops over random R-MAT and
// power-law inputs, weighted and unweighted, compressed and uncompressed)
// must produce identical output frontiers under Chunked, Blocked, Sparse,
// and forced-Dense execution.
func TestCrossStrategyEquivalence(t *testing.T) {
	rmat := gen.RMAT(10, 8, 3)
	pl := gen.PowerLaw(1500, 6, 5)
	wrmat := gen.AddUniformWeights(rmat, 9)
	cases := []struct {
		name string
		g    graph.Adj
	}{
		{"rmat", rmat},
		{"rmat-byte64", compress.Compress(rmat, 64)},
		{"powerlaw", pl},
		{"powerlaw-byte32", compress.Compress(pl, 32)},
		{"wrmat", wrmat},
		{"wrmat-byte64", compress.Compress(wrmat, 64)},
	}
	ops := Ops{
		Update:       acceptEdge,
		UpdateAtomic: acceptEdge,
		Cond:         CondTrue,
	}
	variants := []struct {
		name string
		opt  Options
	}{
		{"chunked", Options{Strategy: Chunked, ForceSparse: true, Dedup: true}},
		{"blocked", Options{Strategy: Blocked, ForceSparse: true, Dedup: true}},
		{"sparse", Options{Strategy: Sparse, ForceSparse: true, Dedup: true}},
		{"dense", Options{ForceDense: true}},
	}
	oldWorkers := parallel.Workers()
	defer parallel.SetWorkers(oldWorkers)
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, tc := range cases {
			for trial := 0; trial < 3; trial++ {
				name := fmt.Sprintf("p%d/%s/trial%d", workers, tc.name, trial)
				vs := randomFrontier(tc.g.NumVertices(), 0.03*float64(trial+1), uint64(trial)*7+1)
				env := psam.NewEnv(psam.AppDirect)
				ref := runSorted(tc.g, env, vs, ops, variants[0].opt)
				for _, v := range variants[1:] {
					got := runSorted(tc.g, env, vs, ops, v.opt)
					if !equalU32(ref, got) {
						t.Fatalf("%s: %s disagrees with %s: %d vs %d targets",
							name, v.name, variants[0].name, len(got), len(ref))
					}
				}
			}
		}
	}
}

// runSorted executes one EdgeMap and returns the sorted output target set.
func runSorted(g graph.Adj, env *psam.Env, vs *frontier.VertexSubset, ops Ops, opt Options) []uint32 {
	out := EdgeMap(g, env, vs, ops, opt)
	ids := append([]uint32(nil), out.Sparse()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
