package traverse

import (
	"sort"
	"sync/atomic"
	"testing"

	"sage/internal/compress"
	"sage/internal/frontier"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
)

// bfsWith runs a full BFS with the given traversal options and returns the
// parent array (the canonical workload exercising every strategy).
func bfsWith(g graph.Adj, env *psam.Env, src uint32, opt Options) []uint32 {
	n := g.NumVertices()
	parents := make([]uint32, n)
	parallel.Fill(parents, ^uint32(0))
	parents[src] = src
	fr := frontier.Single(n, src)
	ops := Ops{
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == ^uint32(0) {
				parents[d] = s
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return parallel.CASUint32(&parents[d], ^uint32(0), s)
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&parents[d]) == ^uint32(0) },
	}
	for !fr.IsEmpty() {
		fr = EdgeMap(g, env, fr, ops, opt)
	}
	return parents
}

// reachSet converts a parent array into a reachable set.
func reachSet(parents []uint32) map[uint32]bool {
	set := map[uint32]bool{}
	for v, p := range parents {
		if p != ^uint32(0) {
			set[uint32(v)] = true
		}
	}
	return set
}

func TestStrategiesAgreeOnReachability(t *testing.T) {
	graphs := map[string]graph.Adj{
		"rmat": gen.RMAT(10, 8, 1),
		"grid": gen.Grid2D(30, 30, false),
		"star": gen.Star(500),
	}
	graphs["compressed"] = compress.Compress(gen.RMAT(10, 8, 1), 64)
	for name, g := range graphs {
		var ref map[uint32]bool
		for _, strat := range []Strategy{Chunked, Blocked, Sparse} {
			for _, force := range []string{"auto", "sparse", "dense"} {
				opt := Options{Strategy: strat}
				switch force {
				case "sparse":
					opt.ForceSparse = true
				case "dense":
					opt.ForceDense = true
				}
				got := reachSet(bfsWith(g, nil, 0, opt))
				if ref == nil {
					ref = got
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("%s/%v/%s: reach %d vs %d", name, strat, force, len(got), len(ref))
				}
				for v := range ref {
					if !got[v] {
						t.Fatalf("%s/%v/%s: missing %d", name, strat, force, v)
					}
				}
			}
		}
	}
}

func TestBFSTreeValid(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	parents := bfsWith(g, nil, 0, Options{Strategy: Chunked})
	cg := g
	for v := uint32(0); v < g.NumVertices(); v++ {
		p := parents[v]
		if p == ^uint32(0) || v == 0 {
			continue
		}
		if !cg.HasEdge(p, v) {
			t.Fatalf("parent edge (%d,%d) not in graph", p, v)
		}
	}
}

func TestEmptyFrontier(t *testing.T) {
	g := gen.Chain(10)
	out := EdgeMap(g, nil, frontier.Empty(10), Ops{Cond: CondTrue}, Options{})
	if !out.IsEmpty() {
		t.Fatal("nonempty output from empty frontier")
	}
}

func TestNoOutput(t *testing.T) {
	g := gen.Chain(100)
	touched := make([]uint32, 100)
	ops := Ops{
		Update: func(_, d uint32, _ int32) bool {
			atomic.AddUint32(&touched[d], 1)
			return true
		},
		UpdateAtomic: func(_, d uint32, _ int32) bool {
			atomic.AddUint32(&touched[d], 1)
			return true
		},
		Cond: CondTrue,
	}
	out := EdgeMap(g, nil, frontier.Single(100, 50), ops, Options{NoOutput: true})
	if out.Size() != 0 {
		t.Fatal("NoOutput returned a subset")
	}
	if touched[49] != 1 || touched[51] != 1 {
		t.Fatal("side effects missing")
	}
}

func TestDedup(t *testing.T) {
	// Star center's leaves all point at the center: mapping from all
	// leaves at once would emit the center many times without Dedup.
	g := gen.Star(100)
	leaves := make([]uint32, 99)
	for i := range leaves {
		leaves[i] = uint32(i + 1)
	}
	ops := Ops{
		Update:       func(_, _ uint32, _ int32) bool { return true },
		UpdateAtomic: func(_, _ uint32, _ int32) bool { return true },
		Cond:         CondTrue,
	}
	out := EdgeMap(g, nil, frontier.FromSparse(100, leaves), ops,
		Options{ForceSparse: true, Dedup: true})
	if out.Size() != 1 {
		t.Fatalf("dedup output %d, want 1", out.Size())
	}
}

func TestWeightsReachUpdate(t *testing.T) {
	wg := gen.AddUniformWeights(gen.RMAT(8, 8, 2), 5)
	var sawWeight atomic.Bool
	ops := Ops{
		Update: func(_, _ uint32, w int32) bool {
			if w >= 1 {
				sawWeight.Store(true)
			}
			return false
		},
		UpdateAtomic: func(_, _ uint32, w int32) bool {
			if w >= 1 {
				sawWeight.Store(true)
			}
			return false
		},
		Cond: CondTrue,
	}
	EdgeMap(wg, nil, frontier.Single(wg.NumVertices(), 0), ops, Options{})
	if !sawWeight.Load() {
		t.Fatal("weights not passed through")
	}
}

func TestChunkedMemoryO_n(t *testing.T) {
	// Table 5's claim: chunked uses O(n) words; sparse uses O(Σ deg).
	// A dense graph makes Σ deg of the widest frontier dwarf n.
	g := gen.RMAT(13, 64, 9)
	n := int64(g.NumVertices())

	// Force sparse-only traversals (the Appendix D.2 experiment): with
	// direction optimization on, large frontiers would run dense and hide
	// the sparse path's allocations.
	peak := func(strategy Strategy) int64 {
		env := psam.NewEnv(psam.AppDirect)
		bfsWith(g, env, 0, Options{Strategy: strategy, ForceSparse: true})
		return env.Space.Peak()
	}
	chunked := peak(Chunked)
	sparse := peak(Sparse)
	blocked := peak(Blocked)
	if chunked >= sparse {
		t.Fatalf("chunked peak %d >= sparse peak %d", chunked, sparse)
	}
	if chunked >= blocked {
		t.Fatalf("chunked peak %d >= blocked peak %d", chunked, blocked)
	}
	// Chunked should be within a small multiple of n (the pool holds
	// ~8P chunks of ~4096 words each, still O(n) at this scale).
	if chunked > 16*n {
		t.Fatalf("chunked peak %d words not O(n) (n=%d)", chunked, n)
	}
}

func TestDenseSwitchHappens(t *testing.T) {
	// On a dense-ish graph the big middle frontier must trigger the dense
	// path; verify by comparing charged reads between forced modes.
	g := gen.RMAT(10, 32, 4)
	envAuto := psam.NewEnv(psam.AppDirect)
	bfsWith(g, envAuto, 0, Options{Strategy: Chunked})
	envSparse := psam.NewEnv(psam.AppDirect)
	bfsWith(g, envSparse, 0, Options{Strategy: Chunked, ForceSparse: true})
	// Both complete correctly; this is primarily a smoke check that the
	// two paths both run and charge NVRAM reads.
	if envAuto.Totals().NVRAMReads == 0 || envSparse.Totals().NVRAMReads == 0 {
		t.Fatal("no NVRAM reads charged")
	}
}

func TestCostChargedMatchesEdgesScanned(t *testing.T) {
	// One sparse round from a single vertex scans exactly deg(src) edges.
	g := gen.Star(1000)
	env := psam.NewEnv(psam.AppDirect)
	ops := Ops{
		Update:       func(_, _ uint32, _ int32) bool { return false },
		UpdateAtomic: func(_, _ uint32, _ int32) bool { return false },
		Cond:         CondTrue,
	}
	EdgeMap(g, env, frontier.Single(1000, 0), ops, Options{ForceSparse: true})
	reads := env.Totals().NVRAMReads
	if reads < 999 || reads > 999+10 {
		t.Fatalf("charged %d NVRAM reads for 999 edges", reads)
	}
}

func TestStrategyString(t *testing.T) {
	if Chunked.String() != "edgeMapChunked" || Blocked.String() != "edgeMapBlocked" ||
		Sparse.String() != "edgeMapSparse" {
		t.Fatal("strategy names")
	}
}

func TestSparseOutputsSorted(t *testing.T) {
	// Not required by the API, but Filter-based packing must preserve
	// determinism: same input -> same output set.
	g := gen.RMAT(9, 8, 8)
	a := bfsWith(g, nil, 0, Options{Strategy: Chunked})
	b := bfsWith(g, nil, 0, Options{Strategy: Chunked})
	ra, rb := reachSet(a), reachSet(b)
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic reachability")
	}
	keys := make([]int, 0, len(ra))
	for k := range ra {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		if !rb[uint32(k)] {
			t.Fatal("set mismatch")
		}
	}
}
