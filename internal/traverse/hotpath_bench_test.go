package traverse

import (
	"fmt"
	"testing"

	"sage/internal/compress"
	"sage/internal/frontier"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// benchOps are deliberately cheap pure ops so the measured cost is the
// edge iteration itself, not the user function.
var benchOps = Ops{
	Update:       func(s, d uint32, _ int32) bool { return (s+d)&7 == 0 },
	UpdateAtomic: func(s, d uint32, _ int32) bool { return (s+d)&7 == 0 },
	Cond:         CondTrue,
}

// BenchmarkEdgeMapStrategies measures raw traversal throughput (edges/sec,
// accounting disabled) of every strategy over CSR and byte-compressed
// inputs, at one worker (the pure per-edge cost) and at four workers (the
// scheduled cost; the container may expose a single CPU, in which case
// the p4 numbers include oversubscription overhead). BENCH_hotpath.json
// records the pre-refactor baseline.
func BenchmarkEdgeMapStrategies(b *testing.B) {
	defer parallel.SetWorkers(parallel.Workers())
	csr := gen.RMAT(15, 16, 1)
	cg := compress.Compress(csr, 64)
	graphs := []struct {
		name string
		g    graph.Adj
	}{
		{"csr", csr},
		{"byte64", cg},
	}
	variants := []struct {
		name string
		opt  Options
	}{
		{"chunked", Options{Strategy: Chunked, ForceSparse: true}},
		{"blocked", Options{Strategy: Blocked, ForceSparse: true}},
		{"sparse", Options{Strategy: Sparse, ForceSparse: true}},
		{"dense", Options{ForceDense: true}},
	}
	for _, p := range []int{1, 4} {
		for _, gr := range graphs {
			n := gr.g.NumVertices()
			ids := make([]uint32, 0, n/8)
			for v := uint32(0); v < n; v += 8 {
				ids = append(ids, v)
			}
			vs := frontier.FromSparse(n, ids)
			var outDeg int64
			for _, v := range ids {
				outDeg += int64(gr.g.Degree(v))
			}
			for _, variant := range variants {
				edges := outDeg
				if variant.opt.ForceDense {
					// The dense pull scans every vertex's full adjacency.
					edges = int64(gr.g.NumEdges())
				}
				b.Run(fmt.Sprintf("p%d/%s/%s", p, gr.name, variant.name), func(b *testing.B) {
					parallel.SetWorkers(p)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						EdgeMap(gr.g, nil, vs, benchOps, variant.opt)
					}
					b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
				})
			}
		}
	}
}

// BenchmarkEdgeMapBFS measures a full BFS (the paper's canonical
// traversal workload) end to end, direction optimization enabled.
func BenchmarkEdgeMapBFS(b *testing.B) {
	defer parallel.SetWorkers(parallel.Workers())
	csr := gen.RMAT(15, 16, 1)
	cg := compress.Compress(csr, 64)
	graphs := []struct {
		name string
		g    graph.Adj
	}{
		{"csr", csr},
		{"byte64", cg},
	}
	for _, p := range []int{1, 4} {
		for _, gr := range graphs {
			b.Run(fmt.Sprintf("p%d/%s", p, gr.name), func(b *testing.B) {
				parallel.SetWorkers(p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bfsWith(gr.g, nil, 0, Options{Strategy: Chunked})
				}
				b.ReportMetric(float64(gr.g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
			})
		}
	}
}
