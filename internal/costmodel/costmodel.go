// Package costmodel generalizes the PSAM's single hardcoded hardware
// point — Optane's read/write asymmetry — into pluggable cost profiles.
// A Model maps PSAM-style operation counts (DRAM/NVRAM reads and writes,
// cache hits and misses, page I/O) to a predicted cost in DRAM-access
// units, a predicted latency, and a predicted energy, the way GraphR
// models hardware as explicit per-operation latency and energy constants.
//
// The concrete profiles cover the hardware families the paper's §5
// discussion and the related work span:
//
//   - Optane: today's PSAM defaults (§3.1) — unit-charged reads, ω=12
//     writes. Selecting it reproduces the historical engine behaviour
//     bit-for-bit.
//   - DRAM-only: symmetric memory, the in-memory baseline.
//   - ReRAM: GraphR-style constants — reads near DRAM, writes an order
//     of magnitude more expensive in both time and energy.
//   - Flash/CSD: page-granular I/O reusing internal/semiext's page-cost
//     framing — a word read costs a whole device page, which is what
//     makes scattered access catastrophic on these systems.
//
// Serving layers act on the predictions: cost-based admission, overlay
// auto-compaction, and predicted-cost traversal direction selection all
// price their alternatives through the same profile.
package costmodel

import (
	"sage/internal/psam"
	"sage/internal/semiext"
)

// Counts is the operation-count vector a model prices: the PSAM counter
// classes plus explicit page-granular I/O for flash/CSD profiles.
type Counts struct {
	DRAMReads   int64
	DRAMWrites  int64
	NVRAMReads  int64
	NVRAMWrites int64
	CacheHits   int64
	CacheMisses int64
	// PageReads counts explicit page-granular device reads (semi-external
	// execution). Word-level NVRAM counts are converted to pages by the
	// page-granular profiles themselves.
	PageReads int64
}

// FromPSAM lifts a PSAM counter snapshot into a priceable count vector.
func FromPSAM(c psam.Counts) Counts {
	return Counts{
		DRAMReads:   c.DRAMReads,
		DRAMWrites:  c.DRAMWrites,
		NVRAMReads:  c.NVRAMReads,
		NVRAMWrites: c.NVRAMWrites,
		CacheHits:   c.CacheHits,
		CacheMisses: c.CacheMisses,
	}
}

// Model maps operation counts to predicted cost, latency, and energy, and
// projects itself onto the PSAM simulator's charging weights.
type Model interface {
	// Name is the registry key ("optane", "dram", "reram", "flash").
	Name() string
	// Cost is the predicted cost in DRAM-access units — the PSAM's
	// currency, comparable across profiles and directly against
	// psam.Counts.Cost for the word-granular ones.
	Cost(c Counts) int64
	// LatencyNS is the predicted serial access latency in nanoseconds.
	LatencyNS(c Counts) float64
	// EnergyNJ is the predicted access energy in nanojoules.
	EnergyNJ(c Counts) float64
	// PSAM returns the charging weights the simulator should run with so
	// measured PSAM costs and model predictions share one scale.
	PSAM() psam.Config
}

// Profile is the concrete Model: per-operation charge weights in
// DRAM-access units plus per-operation latency and energy constants. The
// zero value is unusable; start from a built-in (Optane, DRAMOnly, ReRAM,
// FlashCSD) or Custom and override fields.
type Profile struct {
	// ModelName is the registry key reported by Name().
	ModelName string
	// NVRAMRead is the charge per NVRAM word read, in DRAM-access units.
	NVRAMRead int64
	// Omega is the multiplier of a large-memory write over a read (§3.1).
	Omega int64
	// MissCost is the charge per word of a Memory-Mode cache miss fill.
	MissCost int64
	// PageGranular marks device families (flash/CSD) whose large memory
	// moves whole pages: word-level NVRAM counts are charged as
	// ceil(words/semiext.PageWords) page transfers instead of per word.
	PageGranular bool
	// PageCost is the charge per device page transfer, in DRAM-access
	// units (see semiext.DefaultPageCost for the framing).
	PageCost int64
	// WordNS converts one DRAM-access unit of cost into nanoseconds of
	// predicted serial latency.
	WordNS float64
	// Energy constants, picojoules: per word for the memory classes, per
	// page transfer for EPage.
	EDRAMRead   float64
	EDRAMWrite  float64
	ENVRAMRead  float64
	ENVRAMWrite float64
	EMiss       float64
	EPage       float64
	// RemotePenalty multiplies NVRAM costs for cross-socket accesses in
	// the NUMA experiments (§5.2).
	RemotePenalty float64
}

var _ Model = (*Profile)(nil)

// Name returns the registry key.
func (p *Profile) Name() string { return p.ModelName }

// pages converts a word count to device-page transfers (round up).
//
//sage:hotpath
func pages(words int64) int64 {
	return (words + semiext.PageWords - 1) / semiext.PageWords
}

// Cost prices c under the profile in DRAM-access units. Word-granular
// profiles charge NVRAM accesses per word (matching psam.Counts.Cost
// under the same weights); page-granular profiles convert them to page
// transfers first.
//
//sage:hotpath
func (p *Profile) Cost(c Counts) int64 {
	// Cache hits are DRAM-speed and uncharged, exactly as in
	// psam.Counts.Cost — only the miss fill costs extra.
	cost := c.DRAMReads + c.DRAMWrites +
		p.MissCost*c.CacheMisses + p.PageCost*c.PageReads
	if p.PageGranular {
		cost += p.PageCost * pages(c.NVRAMReads)
		cost += p.PageCost * p.Omega * pages(c.NVRAMWrites)
	} else {
		cost += p.NVRAMRead * c.NVRAMReads
		cost += p.NVRAMRead * p.Omega * c.NVRAMWrites
	}
	return cost
}

// LatencyNS converts the predicted cost into nanoseconds of serial
// access latency.
//
//sage:hotpath
func (p *Profile) LatencyNS(c Counts) float64 {
	return float64(p.Cost(c)) * p.WordNS
}

// EnergyNJ prices c's accesses with the profile's per-operation energy
// constants, in nanojoules.
//
//sage:hotpath
func (p *Profile) EnergyNJ(c Counts) float64 {
	pj := float64(c.DRAMReads)*p.EDRAMRead +
		float64(c.DRAMWrites)*p.EDRAMWrite +
		float64(c.CacheHits)*p.EDRAMRead +
		float64(c.CacheMisses)*p.EMiss +
		float64(c.PageReads)*p.EPage
	if p.PageGranular {
		pj += float64(pages(c.NVRAMReads)) * p.EPage
		pj += float64(pages(c.NVRAMWrites)) * p.EPage * float64(p.Omega)
	} else {
		pj += float64(c.NVRAMReads) * p.ENVRAMRead
		pj += float64(c.NVRAMWrites) * p.ENVRAMWrite
	}
	return pj / 1000
}

// SeqReadCost is the predicted cost of reading words contiguous
// large-memory words (one streamed range: page-granular devices amortize
// the page cost over the whole range).
//
//sage:hotpath
func (p *Profile) SeqReadCost(words int64) int64 {
	if words <= 0 {
		return 0
	}
	if p.PageGranular {
		return p.PageCost * pages(words)
	}
	return p.NVRAMRead * words
}

// RandReadCost is the predicted cost of n independent scattered
// large-memory reads: each lands on its own page on page-granular
// devices, which is exactly why sparse traversal collapses there.
//
//sage:hotpath
func (p *Profile) RandReadCost(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if p.PageGranular {
		return p.PageCost * n
	}
	return p.NVRAMRead * n
}

// PSAM projects the profile onto the simulator's charging weights.
// Page-granular profiles approximate per-word weights by amortizing the
// page cost over a full page, so measured costs stay on the model's
// scale even though the simulator counts words.
func (p *Profile) PSAM() psam.Config {
	cfg := psam.Config{
		NVRAMRead:     p.NVRAMRead,
		Omega:         p.Omega,
		MissCost:      p.MissCost,
		RemotePenalty: p.RemotePenalty,
	}
	if p.PageGranular {
		cfg.NVRAMRead = p.PageCost / semiext.PageWords
		if cfg.NVRAMRead < 1 {
			cfg.NVRAMRead = 1
		}
	}
	return cfg
}

// Optane is the PSAM of §3 — today's engine defaults. Reads are charged
// unit cost (the ~3x device gap is hidden by memory-level parallelism,
// §3.2), writes the measured 12x-DRAM penalty [50, 96]. Energy constants
// follow the same shape: reads a few times DRAM, writes an order of
// magnitude above.
func Optane() Profile {
	return Profile{
		ModelName: "optane",
		NVRAMRead: 1, Omega: 12, MissCost: 3,
		WordNS:    5,
		EDRAMRead: 25, EDRAMWrite: 25,
		ENVRAMRead: 60, ENVRAMWrite: 250,
		EMiss:         180, // a 256B hardware fill's energy, amortized per word
		RemotePenalty: 3.7,
	}
}

// DRAMOnly is symmetric memory: the in-memory baseline where the
// semi-asymmetric discipline buys nothing and algorithm choice should
// revert to write-liberal variants.
func DRAMOnly() Profile {
	return Profile{
		ModelName: "dram",
		NVRAMRead: 1, Omega: 1, MissCost: 1,
		WordNS:    5,
		EDRAMRead: 25, EDRAMWrite: 25,
		ENVRAMRead: 25, ENVRAMWrite: 25,
		EMiss:         25,
		RemotePenalty: 2,
	}
}

// ReRAM uses GraphR-style constants: reads near DRAM speed, writes an
// order of magnitude more expensive in latency and dominated by cell
// programming energy — a steeper asymmetry than Optane on the write
// side, with cheap reads.
func ReRAM() Profile {
	return Profile{
		ModelName: "reram",
		NVRAMRead: 2, Omega: 8, MissCost: 2,
		WordNS:    5,
		EDRAMRead: 25, EDRAMWrite: 25,
		ENVRAMRead: 40, ENVRAMWrite: 600,
		EMiss:         120,
		RemotePenalty: 3,
	}
}

// FlashCSD models flash or computational-storage devices with the
// page-cost framing of internal/semiext: the device moves 4KB pages
// (semiext.PageWords words) at semiext.DefaultPageCost DRAM-access units
// each, and writes pay a program/erase multiplier. Scattered word reads
// each bill a full page — the structural cost Table 3 measures the
// semi-external systems against.
func FlashCSD() Profile {
	return Profile{
		ModelName:    "flash",
		PageGranular: true,
		PageCost:     semiext.DefaultPageCost,
		Omega:        4, MissCost: 3,
		WordNS:    5,
		EDRAMRead: 25, EDRAMWrite: 25,
		EMiss:         180,
		EPage:         25000, // ~25 nJ per 4KB page transfer
		RemotePenalty: 1,
	}
}

// Custom is the deprecated two-scalar cost model as a profile: the
// Optane baseline with the read charge and write multiplier overridden —
// exactly what sage.WithCostModel(nvramRead, omega) historically set.
func Custom(nvramRead, omega int64) Profile {
	p := Optane()
	p.ModelName = "custom"
	p.NVRAMRead = nvramRead
	p.Omega = omega
	return p
}

// Models enumerates the built-in profiles in registry order.
func Models() []Profile {
	return []Profile{Optane(), DRAMOnly(), ReRAM(), FlashCSD()}
}

// Lookup resolves a built-in profile by name.
func Lookup(name string) (Profile, bool) {
	for _, p := range Models() {
		if p.ModelName == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the built-in profile names in registry order.
func Names() []string {
	models := Models()
	out := make([]string, len(models))
	for i := range models {
		out[i] = models[i].ModelName
	}
	return out
}
