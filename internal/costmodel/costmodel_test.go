package costmodel

import (
	"testing"

	"sage/internal/psam"
	"sage/internal/semiext"
)

// The Optane profile must be today's PSAM defaults exactly: selecting it
// reproduces the historical engine behaviour bit-for-bit.
func TestOptaneMatchesPSAMDefaults(t *testing.T) {
	p := Optane()
	if got, want := p.PSAM(), psam.DefaultConfig(); got != want {
		t.Fatalf("Optane().PSAM() = %+v, want psam.DefaultConfig() = %+v", got, want)
	}
}

// Word-granular profiles must price a count vector identically to
// psam.Counts.Cost under the projected config — one scale, two codepaths.
func TestWordGranularCostMatchesPSAM(t *testing.T) {
	c := Counts{
		DRAMReads: 1000, DRAMWrites: 500,
		NVRAMReads: 9000, NVRAMWrites: 70,
		CacheHits: 11, CacheMisses: 13,
	}
	pc := psam.Counts{
		DRAMReads: 1000, DRAMWrites: 500,
		NVRAMReads: 9000, NVRAMWrites: 70,
		CacheHits: 11, CacheMisses: 13,
	}
	if got := FromPSAM(pc); got != c {
		t.Fatalf("FromPSAM = %+v, want %+v", got, c)
	}
	for _, p := range []Profile{Optane(), DRAMOnly(), ReRAM(), Custom(3, 4)} {
		if got, want := p.Cost(c), pc.Cost(p.PSAM()); got != want {
			t.Errorf("%s: Cost = %d, psam Cost = %d", p.ModelName, got, want)
		}
	}
}

// Page-granular pricing: a single scattered word read bills a whole page;
// a contiguous range amortizes; writes pay the program multiplier.
func TestFlashPageGranularCost(t *testing.T) {
	p := FlashCSD()
	if got, want := p.Cost(Counts{NVRAMReads: 1}), p.PageCost; got != want {
		t.Fatalf("1-word read = %d, want one page (%d)", got, want)
	}
	if got, want := p.Cost(Counts{NVRAMReads: semiext.PageWords}), p.PageCost; got != want {
		t.Fatalf("page-sized read = %d, want one page (%d)", got, want)
	}
	if got, want := p.Cost(Counts{NVRAMReads: semiext.PageWords + 1}), 2*p.PageCost; got != want {
		t.Fatalf("page+1 read = %d, want two pages (%d)", got, want)
	}
	if got, want := p.Cost(Counts{NVRAMWrites: 1}), p.Omega*p.PageCost; got != want {
		t.Fatalf("1-word write = %d, want omega pages (%d)", got, want)
	}
	// Scattered reads bill one page each; a sequential range of the same
	// size amortizes — the structural flash penalty.
	if rand, seq := p.RandReadCost(100), p.SeqReadCost(100); rand <= seq {
		t.Fatalf("RandReadCost(100)=%d should exceed SeqReadCost(100)=%d", rand, seq)
	}
	// Word-granular profiles do not distinguish the two.
	o := Optane()
	if rand, seq := o.RandReadCost(100), o.SeqReadCost(100); rand != seq {
		t.Fatalf("optane RandReadCost(100)=%d != SeqReadCost(100)=%d", rand, seq)
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if len(names) != len(Models()) {
		t.Fatalf("Names/Models length mismatch")
	}
	for _, name := range names {
		p, ok := Lookup(name)
		if !ok || p.ModelName != name {
			t.Fatalf("Lookup(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := Lookup("tape"); ok {
		t.Fatal("Lookup of unknown model succeeded")
	}
}

// Custom(nvramRead, omega) is the Optane baseline with the two scalars
// overridden — what the deprecated WithCostModel historically set.
func TestCustomOverridesOptane(t *testing.T) {
	p := Custom(3, 4)
	want := Optane()
	want.ModelName = "custom"
	want.NVRAMRead = 3
	want.Omega = 4
	if p != want {
		t.Fatalf("Custom(3,4) = %+v, want %+v", p, want)
	}
	if got, want := p.PSAM(), (psam.Config{NVRAMRead: 3, Omega: 4, MissCost: 3, RemotePenalty: 3.7}); got != want {
		t.Fatalf("Custom(3,4).PSAM() = %+v, want %+v", got, want)
	}
}

// Energy ordering sanity: on a write-heavy workload ReRAM burns the most,
// DRAM the least; on pure reads NVRAM profiles exceed DRAM.
func TestEnergyOrdering(t *testing.T) {
	reram, optane, dram := ReRAM(), Optane(), DRAMOnly()
	writes := Counts{NVRAMWrites: 1000}
	if r, o := reram.EnergyNJ(writes), optane.EnergyNJ(writes); r <= o {
		t.Fatalf("ReRAM write energy %f should exceed Optane %f", r, o)
	}
	reads := Counts{NVRAMReads: 1000}
	if o, d := optane.EnergyNJ(reads), dram.EnergyNJ(reads); o <= d {
		t.Fatalf("Optane read energy %f should exceed DRAM %f", o, d)
	}
}

// EstimateOps shape: more edges cost more in every class, and the
// asymmetric profiles order classes sensibly (edge-state heaviest).
func TestEstimateOpsShape(t *testing.T) {
	p := Optane()
	for _, cl := range []Class{Traversal, Iterative, EdgeState, Local} {
		small := p.Cost(EstimateOps(cl, 1<<10, 1<<13))
		big := p.Cost(EstimateOps(cl, 1<<12, 1<<15))
		if small <= 0 || big <= small {
			t.Fatalf("%v: cost not increasing (small=%d big=%d)", cl, small, big)
		}
	}
	n, m := uint64(1<<12), uint64(1<<15)
	tr := p.Cost(EstimateOps(Traversal, n, m))
	it := p.Cost(EstimateOps(Iterative, n, m))
	es := p.Cost(EstimateOps(EdgeState, n, m))
	lo := p.Cost(EstimateOps(Local, n, m))
	if !(lo < tr && tr < it && tr < es) {
		t.Fatalf("class ordering local=%d < traversal=%d < {iterative=%d, edge-state=%d} violated", lo, tr, it, es)
	}
}

func TestOverlayOverhead(t *testing.T) {
	p := Optane()
	if got := OverlayOverhead(&p, 0, 0, 0); got != 0 {
		t.Fatalf("empty overlay overhead = %d, want 0", got)
	}
	one := OverlayOverhead(&p, 100, 10, 10)
	two := OverlayOverhead(&p, 200, 20, 20)
	if one <= 0 || two <= one {
		t.Fatalf("overhead not increasing: %d, %d", one, two)
	}
	// Deleted arcs are large-memory scans: flash prices them per page,
	// far above the word-granular profiles.
	f := FlashCSD()
	if fo, oo := OverlayOverhead(&f, 0, 0, 50), OverlayOverhead(&p, 0, 0, 50); fo <= oo {
		t.Fatalf("flash overhead %d should exceed optane %d", fo, oo)
	}
}

func TestClassString(t *testing.T) {
	for cl, want := range map[Class]string{
		Traversal: "traversal", Iterative: "iterative",
		EdgeState: "edge-state", Local: "local", Class(99): "unknown",
	} {
		if got := cl.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", cl, got, want)
		}
	}
}
