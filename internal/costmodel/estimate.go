package costmodel

// Class buckets the registry's algorithms by the shape of their memory
// traffic, so a run's operation counts can be estimated from (n, m) alone
// before it executes. The buckets follow the paper's Table 1 work bounds:
// the constants are deliberately coarse — admission control needs the
// right order of magnitude and the right profile sensitivity (scan-heavy
// vs scatter-heavy, read-heavy vs write-heavy), not a per-algorithm fit.
type Class int

const (
	// Traversal is the default: O(m) frontier algorithms that stream the
	// edge set roughly once (BFS, spanners, MIS, matching, ...).
	Traversal Class = iota
	// Iterative covers fixpoint algorithms that stream the edge set a
	// handful of times before converging or peeling out (PageRank,
	// connectivity, k-core, coloring, densest subgraph).
	Iterative
	// EdgeState covers the intersection-heavy problems with
	// edge-proportional state (triangle counting, k-clique, k-truss):
	// scattered reads dominate and the output writes scale with m.
	EdgeState
	// Local covers the §3.2 local problems (PPR, local clustering) that
	// touch a neighborhood, not the whole edge set.
	Local
)

// String names the class for listings and headers.
func (c Class) String() string {
	switch c {
	case Traversal:
		return "traversal"
	case Iterative:
		return "iterative"
	case EdgeState:
		return "edge-state"
	case Local:
		return "local"
	}
	return "unknown"
}

// iterativePasses is the assumed number of edge-set passes before an
// Iterative algorithm converges or peels out.
const iterativePasses = 8

// EstimateOps predicts the operation counts of one run of a class-cl
// algorithm on an n-vertex, m-arc graph. Large-memory reads carry the
// graph stream, small-memory traffic carries the frontier/state probes,
// and writes stay vertex-proportional — the semi-asymmetric discipline
// every registry algorithm observes, so no class predicts NVRAM writes.
func EstimateOps(cl Class, n, m uint64) Counts {
	nn, mm := int64(n), int64(m)
	switch cl {
	case Iterative:
		return Counts{
			NVRAMReads: iterativePasses*mm + 2*nn,
			DRAMReads:  iterativePasses * mm,
			DRAMWrites: 2 * iterativePasses * nn,
		}
	case EdgeState:
		return Counts{
			NVRAMReads: 4 * mm,
			DRAMReads:  4 * mm,
			DRAMWrites: mm + 4*nn,
		}
	case Local:
		return Counts{
			NVRAMReads: mm/16 + nn,
			DRAMReads:  mm/16 + 2*nn,
			DRAMWrites: 2 * nn,
		}
	default: // Traversal
		return Counts{
			NVRAMReads: mm + 2*nn,
			DRAMReads:  mm,
			DRAMWrites: 4 * nn,
		}
	}
}

// OverlayOverhead predicts the extra cost one full-edge traversal pays
// because a dataset's updates still live in its delta overlay instead of
// the compacted base container: every traversal re-reads the DRAM-resident
// delta (deltaWords), merges the added arcs outside the zero-copy flat
// path (arcsAdded extra small-memory reads), and still scans the deleted
// arcs in the base before filtering them (arcsDeleted large-memory reads).
// The server's auto-compaction hysteresis tracks this quantity per
// dataset and fires when it crosses the configured band.
func OverlayOverhead(p *Profile, deltaWords int64, arcsAdded, arcsDeleted uint64) int64 {
	return p.Cost(Counts{
		DRAMReads:  deltaWords + int64(arcsAdded),
		NVRAMReads: int64(arcsDeleted),
	})
}
