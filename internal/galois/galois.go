// Package galois implements a vertex-centric Memory-Mode baseline
// standing in for the Galois NVRAM codes of Gill et al. [43], which the
// paper compares against in Figure 1 and §5.5. The real Galois system is
// closed over a large C++ runtime; what the comparison exercises is its
// *configuration* — an uncompressed vertex-centric engine whose graph
// accesses run through Memory Mode's DRAM cache rather than through
// semi-asymmetric App-Direct discipline. This package reproduces that
// configuration: push-based frontier processing with O(frontier-edge)
// scratch, no compression, no chunked traversal, and all graph accesses
// charged through the Memory-Mode cache simulator.
//
// It covers the problems [43] evaluates: BFS, SSSP (Bellman-Ford),
// betweenness, connectivity (label propagation), PageRank, and single-k
// k-core.
package galois

import (
	"math"
	"sync/atomic"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
	"sage/internal/traverse"
)

// Engine runs the vertex-centric baseline over a graph in Memory Mode.
type Engine struct {
	G   *graph.Graph
	Env *psam.Env
}

// New builds an engine; cacheWords is the simulated DRAM cache capacity
// (the machine's DRAM in Memory Mode).
func New(g *graph.Graph, cacheWords int64) *Engine {
	return &Engine{G: g, Env: psam.NewEnv(psam.MemoryMode).WithCache(cacheWords)}
}

// opts is the fixed vertex-centric configuration: plain sparse push with
// direction optimization (Galois' pull/push scheduling), no chunking.
func (e *Engine) opts() traverse.Options {
	return traverse.Options{Strategy: traverse.Sparse}
}

// BFS returns BFS parents from src.
func (e *Engine) BFS(src uint32) []uint32 {
	n := e.G.NumVertices()
	const inf = ^uint32(0)
	parents := make([]uint32, n)
	parallel.Fill(parents, inf)
	parents[src] = src
	fr := frontier.Single(n, src)
	ops := traverse.Ops{
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == inf {
				parents[d] = s
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return parallel.CASUint32(&parents[d], inf, s)
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&parents[d]) == inf },
	}
	for !fr.IsEmpty() {
		fr = traverse.EdgeMap(e.G, e.Env, fr, ops, e.opts())
	}
	return parents
}

// SSSP returns Bellman-Ford distances from src.
func (e *Engine) SSSP(src uint32) []int64 {
	n := e.G.NumVertices()
	const inf = int64(math.MaxInt64 / 2)
	dist := make([]int64, n)
	parallel.Fill(dist, inf)
	dist[src] = 0
	fr := frontier.Single(n, src)
	relax := func(s, v uint32, w int32) bool {
		return parallel.WriteMinInt64(&dist[v], atomic.LoadInt64(&dist[s])+int64(w))
	}
	ops := traverse.Ops{Update: relax, UpdateAtomic: relax, Cond: traverse.CondTrue}
	for rounds := uint32(0); !fr.IsEmpty() && rounds < n; rounds++ {
		opt := e.opts()
		opt.Dedup = true
		fr = traverse.EdgeMap(e.G, e.Env, fr, ops, opt)
	}
	return dist
}

// Connectivity runs label propagation to a fixpoint — the classic
// vertex-centric formulation (GridGraph/FlashGraph use the same), which
// performs O(m·d) work in the worst case versus Sage's O(m).
func (e *Engine) Connectivity() []uint32 {
	n := e.G.NumVertices()
	labels := make([]uint32, n)
	parallel.For(int(n), 0, func(i int) { labels[i] = uint32(i) })
	fr := frontier.All(n)
	relax := func(s, d uint32, _ int32) bool {
		return parallel.WriteMinUint32(&labels[d], atomic.LoadUint32(&labels[s]))
	}
	ops := traverse.Ops{Update: relax, UpdateAtomic: relax, Cond: traverse.CondTrue}
	for !fr.IsEmpty() {
		opt := e.opts()
		opt.Dedup = true
		fr = traverse.EdgeMap(e.G, e.Env, fr, ops, opt)
	}
	return labels
}

// PageRank runs iters pull-based iterations and returns the ranks.
func (e *Engine) PageRank(iters int) []float64 {
	n := int(e.G.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	parallel.Fill(prev, 1/float64(n))
	const d = 0.85
	for it := 0; it < iters; it++ {
		contrib := make([]float64, n)
		parallel.For(n, 0, func(i int) {
			if deg := e.G.Degree(uint32(i)); deg > 0 {
				contrib[i] = prev[i] / float64(deg)
			}
		})
		parallel.ForBlocks(n, 64, func(w, lo, hi int) {
			var scanned int64
			for i := lo; i < hi; i++ {
				v := uint32(i)
				var acc float64
				for _, u := range e.G.Neighbors(v) {
					acc += contrib[u]
				}
				scanned += int64(e.G.Degree(v))
				next[i] = (1-d)/float64(n) + d*acc
			}
			e.Env.GraphRead(w, 0, scanned)
			e.Env.StateRead(w, scanned)
		})
		prev, next = next, prev
	}
	return prev
}

// KCoreSingleK finds the k-core for one given k (what [43] implements:
// "an implementation of k-core that computes a single k-core, for a given
// value of k"), by repeatedly removing vertices of degree < k.
func (e *Engine) KCoreSingleK(k uint32) []bool {
	n := int(e.G.NumVertices())
	deg := make([]uint32, n)
	parallel.For(n, 0, func(i int) { deg[i] = e.G.Degree(uint32(i)) })
	alive := make([]bool, n)
	parallel.Fill(alive, true)
	for {
		peel := parallel.PackIndex(n, func(i int) bool { return alive[i] && deg[i] < k })
		if len(peel) == 0 {
			break
		}
		parallel.For(len(peel), 0, func(i int) { alive[peel[i]] = false })
		parallel.ForWorker(len(peel), 4, func(w, i int) {
			v := peel[i]
			dv := e.G.Degree(v)
			e.Env.GraphRead(w, e.G.EdgeAddr(v), int64(dv))
			for _, u := range e.G.Neighbors(v) {
				if alive[u] {
					// Benign decrement race is avoided with an atomic.
					for {
						old := atomic.LoadUint32(&deg[u])
						if old == 0 || atomic.CompareAndSwapUint32(&deg[u], old, old-1) {
							break
						}
					}
				}
			}
		})
	}
	return alive
}

// Betweenness runs single-source Brandes dependencies from src (the BC
// workload of Figure 1), reusing the frontier rounds like the Sage code
// but under the vertex-centric configuration.
func (e *Engine) Betweenness(src uint32) []float64 {
	n := e.G.NumVertices()
	sigma := make([]uint64, n)
	level := make([]uint32, n)
	visited := make([]bool, n)
	parallel.Fill(level, ^uint32(0))
	parallel.StoreFloat64(&sigma[src], 1)
	visited[src] = true
	level[src] = 0
	fwd := traverse.Ops{
		Update: func(s, d uint32, _ int32) bool {
			old := parallel.LoadFloat64(&sigma[d])
			parallel.StoreFloat64(&sigma[d], old+parallel.LoadFloat64(&sigma[s]))
			return old == 0
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			for {
				old := atomic.LoadUint64(&sigma[d])
				of := math.Float64frombits(old)
				nf := of + parallel.LoadFloat64(&sigma[s])
				if atomic.CompareAndSwapUint64(&sigma[d], old, math.Float64bits(nf)) {
					return of == 0
				}
			}
		},
		Cond: func(d uint32) bool { return !visited[d] },
	}
	var rounds [][]uint32
	fr := frontier.Single(n, src)
	round := uint32(0)
	for !fr.IsEmpty() {
		rounds = append(rounds, append([]uint32(nil), fr.Sparse()...))
		fr = traverse.EdgeMap(e.G, e.Env, fr, fwd, e.opts())
		round++
		fr.ForEach(func(v uint32) {
			visited[v] = true
			level[v] = round
		})
	}
	delta := make([]float64, n)
	for l := len(rounds) - 2; l >= 0; l-- {
		ids := rounds[l]
		lvl := uint32(l)
		parallel.ForWorker(len(ids), 8, func(w, i int) {
			v := ids[i]
			e.Env.GraphRead(w, e.G.EdgeAddr(v), int64(e.G.Degree(v)))
			sv := parallel.LoadFloat64(&sigma[v])
			var acc float64
			for _, u := range e.G.Neighbors(v) {
				if level[u] == lvl+1 {
					acc += sv / parallel.LoadFloat64(&sigma[u]) * (1 + delta[u])
				}
			}
			delta[v] = acc
		})
	}
	delta[src] = 0
	return delta
}
