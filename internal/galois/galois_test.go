package galois

import (
	"math"
	"testing"

	"sage/internal/gen"
	"sage/internal/refalgo"
)

func engine(t *testing.T) (*Engine, func() int64) {
	g := gen.AddUniformWeights(gen.RMAT(9, 8, 3), 5)
	e := New(g, int64(g.SizeWords()/8)) // cache 1/8 of the graph
	return e, func() int64 { return e.Env.Totals().CacheMisses }
}

func TestEngineBFS(t *testing.T) {
	e, misses := engine(t)
	parents := e.BFS(0)
	want := refalgo.BFSDistances(e.G, 0)
	for v := range want {
		if (parents[v] == ^uint32(0)) != (want[v] == ^uint32(0)) {
			t.Fatalf("reachability mismatch at %d", v)
		}
	}
	if misses() == 0 {
		t.Fatal("memory mode cache never missed")
	}
}

func TestEngineSSSP(t *testing.T) {
	e, _ := engine(t)
	got := e.SSSP(0)
	want := refalgo.Dijkstra(e.G, 0)
	for v := range want {
		if want[v] == math.MaxInt64 {
			continue
		}
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestEngineConnectivity(t *testing.T) {
	e, _ := engine(t)
	got := e.Connectivity()
	want := refalgo.Components(e.G, 0)
	if !refalgo.SameComponents(want, got) {
		t.Fatal("connectivity differs")
	}
}

func TestEnginePageRank(t *testing.T) {
	e, _ := engine(t)
	got := e.PageRank(10)
	want := refalgo.PageRank(e.G, 0, 10)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("pr[%d] %v want %v", v, got[v], want[v])
		}
	}
}

func TestEngineBetweenness(t *testing.T) {
	e, _ := engine(t)
	got := e.Betweenness(0)
	want := refalgo.Betweenness(e.G, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("bc[%d]=%v want %v", v, got[v], want[v])
		}
	}
}

func TestEngineKCoreSingleK(t *testing.T) {
	e, _ := engine(t)
	core := refalgo.Coreness(e.G)
	for _, k := range []uint32{2, 4, 8} {
		alive := e.KCoreSingleK(k)
		for v := range alive {
			if alive[v] != (core[v] >= k) {
				t.Fatalf("k=%d: vertex %d alive=%v coreness=%d", k, v, alive[v], core[v])
			}
		}
	}
}
