package parallel

import (
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 100_000} {
		hits := make([]int32, n)
		For(n, 13, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForBlocksPartition(t *testing.T) {
	n := 10_000
	var total atomic.Int64
	ForBlocks(n, 77, func(_, lo, hi int) {
		if lo >= hi || hi > n {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("blocks cover %d of %d", total.Load(), n)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	var bad atomic.Int32
	ForWorker(50_000, 10, func(w, _ int) {
		if w < 0 || w >= Workers() {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestSetWorkersClamps(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("got %d, want 1", Workers())
	}
	SetWorkers(MaxWorkers + 5)
	if Workers() != MaxWorkers {
		t.Fatalf("got %d, want %d", Workers(), MaxWorkers)
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all thunks")
	}
}

func TestScanMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1023, 1024, 1025, 50_000} {
		a := make([]int64, n)
		want := make([]int64, n)
		var acc int64
		for i := range a {
			a[i] = int64(i%17 - 5)
			want[i] = acc
			acc += a[i]
		}
		total := Scan(a)
		if total != acc {
			t.Fatalf("n=%d total %d want %d", n, total, acc)
		}
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d scan[%d]=%d want %d", n, i, a[i], want[i])
			}
		}
	}
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{0, 1, 3000, 50_000} {
		a := make([]int64, n)
		want := make([]int64, n)
		var acc int64
		for i := range a {
			a[i] = int64(i % 7)
			acc += a[i]
			want[i] = acc
		}
		total := ScanInclusive(a)
		if total != acc {
			t.Fatalf("n=%d total %d want %d", n, total, acc)
		}
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d inc[%d]=%d want %d", n, i, a[i], want[i])
			}
		}
	}
}

func TestScanProperty(t *testing.T) {
	f := func(vals []int32) bool {
		a := make([]int64, len(vals))
		ref := make([]int64, len(vals))
		var acc int64
		for i, v := range vals {
			a[i] = int64(v)
			ref[i] = acc
			acc += int64(v)
		}
		if Scan(a) != acc {
			return false
		}
		for i := range a {
			if a[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduce(t *testing.T) {
	n := 123_456
	got := ReduceSum(n, 100, func(i int) int64 { return int64(i) })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("sum=%d want %d", got, want)
	}
	m := ReduceMax(n, 0, int64(-1), func(i int) int64 { return int64(i % 1000) })
	if m != 999 {
		t.Fatalf("max=%d want 999", m)
	}
	if ReduceSum(0, 0, func(int) int64 { return 1 }) != 0 {
		t.Fatal("empty reduce not identity")
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	n := 40_000
	a := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i)
	}
	got := Filter(a, func(v uint32) bool { return v%3 == 0 })
	for i, v := range got {
		if v != uint32(i*3) {
			t.Fatalf("got[%d]=%d want %d", i, v, i*3)
		}
	}
}

func TestFilterProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		pred := func(v uint32) bool { return v%2 == 0 }
		got := Filter(vals, pred)
		var want []uint32
		for _, v := range vals {
			if pred(v) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackIndex(t *testing.T) {
	got := PackIndex(10_000, func(i int) bool { return i%7 == 0 })
	for i, v := range got {
		if v != uint32(i*7) {
			t.Fatalf("got[%d]=%d", i, v)
		}
	}
}

func TestPackInto(t *testing.T) {
	a := []int{5, 2, 9, 4, 7, 6}
	dst := make([]int, len(a))
	k := PackInto(dst, a, func(v int) bool { return v > 4 })
	want := []int{5, 9, 7, 6}
	if k != len(want) {
		t.Fatalf("k=%d", k)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst=%v", dst[:k])
		}
	}
}

func TestSortRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{0, 1, 2, 100, 5000, 200_000} {
		a := make([]uint32, n)
		for i := range a {
			a[i] = r.Uint32()
		}
		SortUint32(a)
		if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
			t.Fatalf("n=%d not sorted", n)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		a := append([]uint64(nil), vals...)
		SortUint64(a)
		ref := append([]uint64(nil), vals...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range a {
			if a[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeInto(t *testing.T) {
	x := []uint32{1, 3, 5, 7, 9}
	y := []uint32{2, 3, 4, 10}
	out := make([]uint32, len(x)+len(y))
	MergeInto(out, x, y, func(a, b uint32) bool { return a < b })
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatalf("merge not sorted: %v", out)
	}
	if len(out) != len(x)+len(y) {
		t.Fatalf("merge lost elements: %v", out)
	}
}

func TestHistogram(t *testing.T) {
	keys := []uint32{5, 1, 5, 5, 2, 1, 9}
	h := Histogram(keys)
	want := map[uint32]uint32{1: 2, 2: 1, 5: 3, 9: 1}
	if len(h) != len(want) {
		t.Fatalf("h=%v", h)
	}
	for _, kc := range h {
		if want[kc.Key] != kc.Count {
			t.Fatalf("key %d count %d want %d", kc.Key, kc.Count, want[kc.Key])
		}
	}
	for i := 1; i < len(h); i++ {
		if h[i-1].Key >= h[i].Key {
			t.Fatal("histogram keys not sorted")
		}
	}
}

func TestHistogramProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		want := map[uint32]uint32{}
		for _, k := range keys {
			want[k]++
		}
		h := Histogram(keys)
		if len(h) != len(want) {
			return false
		}
		for _, kc := range h {
			if want[kc.Key] != kc.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetConcurrent(t *testing.T) {
	n := 10_000
	b := NewBitset(n)
	var wins atomic.Int64
	For(8*n, 16, func(i int) {
		if b.TestAndSet(uint32(i % n)) {
			wins.Add(1)
		}
	})
	if wins.Load() != int64(n) {
		t.Fatalf("wins=%d want %d", wins.Load(), n)
	}
	for i := 0; i < n; i++ {
		if !b.Get(uint32(i)) {
			t.Fatalf("bit %d not set", i)
		}
	}
}

func TestHashSet64Concurrent(t *testing.T) {
	n := 50_000
	h := NewHashSet64(n)
	var newKeys atomic.Int64
	For(3*n, 64, func(i int) {
		if h.Insert(uint64(i%n) + 1) {
			newKeys.Add(1)
		}
	})
	if newKeys.Load() != int64(n) {
		t.Fatalf("inserted %d distinct, want %d", newKeys.Load(), n)
	}
	if h.Size() != n {
		t.Fatalf("size %d want %d", h.Size(), n)
	}
	if len(h.Elements()) != n {
		t.Fatalf("elements %d", len(h.Elements()))
	}
	for i := 1; i <= n; i++ {
		if !h.Contains(uint64(i)) {
			t.Fatalf("missing %d", i)
		}
	}
	if h.Contains(uint64(n + 1)) {
		t.Fatal("phantom key")
	}
}

func TestHashMap64InsertMin(t *testing.T) {
	h := NewHashMap64(1000)
	For(10_000, 64, func(i int) {
		key := uint64(i%100) + 1
		h.InsertMin(key, uint64(i)+1)
	})
	for k := uint64(1); k <= 100; k++ {
		v, ok := h.Get(k)
		if !ok {
			t.Fatalf("missing key %d", k)
		}
		if v != k {
			// Min value inserted for key k is i=k-1 -> value k.
			t.Fatalf("key %d value %d want %d", k, v, k)
		}
	}
}

func TestWriteMinMax(t *testing.T) {
	var x uint32 = 100
	if !WriteMinUint32(&x, 50) || x != 50 {
		t.Fatal("WriteMin failed")
	}
	if WriteMinUint32(&x, 60) {
		t.Fatal("WriteMin should not raise")
	}
	var y int64 = 5
	if !WriteMaxInt64(&y, 10) || y != 10 {
		t.Fatal("WriteMax failed")
	}
}

func TestAddFloat64Concurrent(t *testing.T) {
	var bits uint64
	n := 100_000
	For(n, 64, func(int) { AddFloat64(&bits, 1.0) })
	if got := LoadFloat64(&bits); got != float64(n) {
		t.Fatalf("got %v want %d", got, n)
	}
}

func TestFlattenUint32(t *testing.T) {
	chunks := [][]uint32{{1, 2}, nil, {3}, {4, 5, 6}}
	got := FlattenUint32(chunks)
	want := []uint32{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSingleWorkerParity(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	a := make([]int64, 9999)
	for i := range a {
		a[i] = int64(i % 13)
	}
	b := append([]int64(nil), a...)
	SetWorkers(1)
	t1 := Scan(a)
	SetWorkers(old)
	tp := Scan(b)
	_ = tp
	SetWorkers(1)
	// After one scan each, both should be identical.
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("serial/parallel divergence at %d", i)
		}
	}
	if t1 != tp {
		t.Fatalf("totals differ: %d vs %d", t1, tp)
	}
}
