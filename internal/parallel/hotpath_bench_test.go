package parallel

import (
	"testing"
)

// BenchmarkForBlocksOverhead measures the launch latency of a small
// parallel loop — the cost every BFS/wBFS/KCore round pays once per
// edgeMap and once per auxiliary loop. The work per block is trivial so
// the measurement is dominated by scheduling. BENCH_hotpath.json records
// the pre-refactor (goroutine-per-call) baseline.
func BenchmarkForBlocksOverhead(b *testing.B) {
	defer SetWorkers(Workers())
	if Workers() < 4 {
		// Single-CPU container: oversubscribe so the scheduling path is
		// exercised rather than the serial fast path.
		SetWorkers(4)
	}
	var sink [MaxWorkers]struct {
		v int64
		_ [56]byte
	}
	cases := []struct {
		name     string
		n, grain int
	}{
		{"n=4096,grain=256", 4096, 256},     // 16 blocks: a small frontier round
		{"n=65536,grain=1024", 65536, 1024}, // 64 blocks: a mid-size loop
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForBlocks(tc.n, tc.grain, func(w, lo, hi int) {
					sink[w].v += int64(hi - lo)
				})
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "launches/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/launch")
		})
	}
}

// BenchmarkDoOverhead measures the fork-join cost of a two-task Do, the
// primitive behind the recursive sorts.
func BenchmarkDoOverhead(b *testing.B) {
	defer SetWorkers(Workers())
	if Workers() < 4 {
		SetWorkers(4)
	}
	var a, c int64
	for i := 0; i < b.N; i++ {
		Do(func() { a++ }, func() { c++ })
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "launches/sec")
}
