package parallel

// KeyCount is one output row of a histogram: a key and the number of times
// it occurred in the input multiset.
type KeyCount struct {
	Key   uint32
	Count uint32
}

// Histogram computes, for a multiset of uint32 keys, the distinct keys and
// their multiplicities. It is the sparse histogram primitive used by the
// k-core and densest-subgraph peeling algorithms (§4.3.4): the returned
// pairs are in ascending key order. The implementation sorts the keys in
// parallel (a stand-in for the semisort used by GBBS) and then reduces the
// runs, so the work is O(k log k) for k keys and the intermediate space is
// O(k) — proportional to the frontier's edge count, never to m.
func Histogram(keys []uint32) []KeyCount {
	k := len(keys)
	if k == 0 {
		return nil
	}
	sorted := make([]uint32, k)
	Copy(sorted, keys)
	SortUint32(sorted)
	return countRuns(sorted)
}

// HistogramInPlace is Histogram but permutes the caller's slice instead of
// copying it.
func HistogramInPlace(keys []uint32) []KeyCount {
	if len(keys) == 0 {
		return nil
	}
	SortUint32(keys)
	return countRuns(keys)
}

// countRuns converts a sorted key slice into (key, count) pairs.
func countRuns(sorted []uint32) []KeyCount {
	k := len(sorted)
	// A position starts a run if it is 0 or differs from its predecessor.
	starts := PackIndex(k, func(i int) bool {
		return i == 0 || sorted[i] != sorted[i-1]
	})
	out := make([]KeyCount, len(starts))
	For(len(starts), 0, func(i int) {
		lo := int(starts[i])
		hi := k
		if i+1 < len(starts) {
			hi = int(starts[i+1])
		}
		out[i] = KeyCount{Key: sorted[lo], Count: uint32(hi - lo)}
	})
	return out
}
