package parallel

import "sort"

// Sort sorts a in place using a parallel merge sort: the input is divided
// into runs that are sorted independently with the standard library's
// sort, then merged pairwise with parallel merges. Less must be a strict
// weak ordering. The sort is not stable.
func Sort[T any](a []T, less func(x, y T) bool) {
	n := len(a)
	p := Workers()
	if n < 4096 || p == 1 {
		sort.Slice(a, func(i, j int) bool { return less(a[i], a[j]) })
		return
	}
	// Number of initial runs: a power of two near 4p for load balance.
	runs := 1
	for runs < 4*p && runs < n/2048 {
		runs *= 2
	}
	runLen := ceilDiv(n, runs)
	For(runs, 1, func(r int) {
		lo := r * runLen
		hi := min(lo+runLen, n)
		if lo < hi {
			s := a[lo:hi]
			sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		}
	})
	buf := make([]T, n)
	src, dst := a, buf
	for width := runLen; width < n; width *= 2 {
		nPairs := ceilDiv(n, 2*width)
		For(nPairs, 1, func(pr int) {
			lo := pr * 2 * width
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			MergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
		})
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		Copy(a, src)
	}
}

// SortUint32 sorts a slice of uint32 keys in parallel.
func SortUint32(a []uint32) {
	Sort(a, func(x, y uint32) bool { return x < y })
}

// SortUint64 sorts a slice of uint64 keys in parallel.
func SortUint64(a []uint64) {
	Sort(a, func(x, y uint64) bool { return x < y })
}

// MergeInto merges the sorted slices x and y into out, which must have
// length len(x)+len(y). Large merges are split recursively by a median
// pick so the merge itself runs in parallel.
func MergeInto[T any](out, x, y []T, less func(a, b T) bool) {
	const serialMerge = 8192
	if len(x)+len(y) <= serialMerge || Workers() == 1 {
		serialMergeInto(out, x, y, less)
		return
	}
	// Split the larger input at its midpoint and binary-search the split
	// point in the other input.
	if len(x) < len(y) {
		// Keep x as the larger side; the merge is symmetric.
		mergeSwapped(out, y, x, less)
		return
	}
	mid := len(x) / 2
	pivot := x[mid]
	// Find the first y index not less than pivot.
	j := sort.Search(len(y), func(i int) bool { return !less(y[i], pivot) })
	Do(
		func() { MergeInto(out[:mid+j], x[:mid], y[:j], less) },
		func() { MergeInto(out[mid+j:], x[mid:], y[j:], less) },
	)
}

// mergeSwapped merges with x the larger side but y logically first: it must
// preserve merge semantics for equal elements irrespective of argument
// order, which holds because MergeInto is not stable.
func mergeSwapped[T any](out, x, y []T, less func(a, b T) bool) {
	mid := len(x) / 2
	pivot := x[mid]
	j := sort.Search(len(y), func(i int) bool { return less(pivot, y[i]) })
	Do(
		func() { MergeInto(out[:mid+j], x[:mid], y[:j], less) },
		func() { MergeInto(out[mid+j:], x[mid:], y[j:], less) },
	)
}

func serialMergeInto[T any](out, x, y []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if less(y[j], x[i]) {
			out[k] = y[j]
			j++
		} else {
			out[k] = x[i]
			i++
		}
		k++
	}
	copy(out[k:], x[i:])
	copy(out[k+len(x)-i:], y[j:])
}
