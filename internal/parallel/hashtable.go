package parallel

import (
	"sync/atomic"
)

// HashSet64 is a fixed-capacity concurrent set of uint64 keys built on
// open addressing with linear probing and CAS insertion. It is used to
// deduplicate inter-cluster edges during graph contraction and to
// aggregate candidate edges in maximal matching (§5.3, "using a parallel
// hash table to aggregate edges"). The zero key is reserved as the empty
// slot marker; callers must offset their keys so 0 never appears.
type HashSet64 struct {
	slots []uint64
	mask  uint64
	size  atomic.Int64
}

// NewHashSet64 returns a set able to hold at least capacity keys with load
// factor <= 0.5.
func NewHashSet64(capacity int) *HashSet64 {
	sz := 16
	for sz < 2*capacity {
		sz *= 2
	}
	return &HashSet64{slots: make([]uint64, sz), mask: uint64(sz - 1)}
}

// hash64 is a Murmur-style finalizer giving a well-mixed 64-bit hash.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Insert adds key (which must be non-zero) and reports whether the key was
// newly inserted. Insert panics if the table is full.
func (h *HashSet64) Insert(key uint64) bool {
	i := hash64(key) & h.mask
	for probes := uint64(0); probes <= h.mask; probes++ {
		cur := atomic.LoadUint64(&h.slots[i])
		if cur == key {
			return false
		}
		if cur == 0 {
			if atomic.CompareAndSwapUint64(&h.slots[i], 0, key) {
				h.size.Add(1)
				return true
			}
			// Lost the race: re-examine this slot.
			if atomic.LoadUint64(&h.slots[i]) == key {
				return false
			}
		}
		i = (i + 1) & h.mask
	}
	panic("parallel: HashSet64 full")
}

// Contains reports whether key is present.
func (h *HashSet64) Contains(key uint64) bool {
	i := hash64(key) & h.mask
	for probes := uint64(0); probes <= h.mask; probes++ {
		cur := atomic.LoadUint64(&h.slots[i])
		if cur == key {
			return true
		}
		if cur == 0 {
			return false
		}
		i = (i + 1) & h.mask
	}
	return false
}

// Size reports the number of distinct keys inserted.
func (h *HashSet64) Size() int { return int(h.size.Load()) }

// Elements returns the stored keys in unspecified order.
func (h *HashSet64) Elements() []uint64 {
	return Filter(h.slots, func(v uint64) bool { return v != 0 })
}

// HashMap64 is a fixed-capacity concurrent map from non-zero uint64 keys
// to uint64 values with CAS-based insert-or-min semantics.
type HashMap64 struct {
	keys []uint64
	vals []uint64
	mask uint64
	size atomic.Int64
}

// NewHashMap64 returns a map able to hold at least capacity entries.
func NewHashMap64(capacity int) *HashMap64 {
	sz := 16
	for sz < 2*capacity {
		sz *= 2
	}
	return &HashMap64{keys: make([]uint64, sz), vals: make([]uint64, sz), mask: uint64(sz - 1)}
}

// InsertMin inserts (key, val) keeping the minimum value for duplicate
// keys. It reports whether the key was newly inserted.
func (h *HashMap64) InsertMin(key, val uint64) bool {
	i := hash64(key) & h.mask
	for probes := uint64(0); probes <= h.mask; probes++ {
		cur := atomic.LoadUint64(&h.keys[i])
		if cur == key {
			writeMinUint64(&h.vals[i], val)
			return false
		}
		if cur == 0 {
			// Claim the slot value-first so a concurrent reader that sees
			// the key also sees a value no larger than ours.
			if atomic.CompareAndSwapUint64(&h.keys[i], 0, key) {
				writeMinUint64orInit(&h.vals[i], val)
				h.size.Add(1)
				return true
			}
			if atomic.LoadUint64(&h.keys[i]) == key {
				writeMinUint64(&h.vals[i], val)
				return false
			}
		}
		i = (i + 1) & h.mask
	}
	panic("parallel: HashMap64 full")
}

// Get returns the value for key and whether it is present. Get is safe to
// call concurrently with InsertMin, but a racing Get may observe a value
// larger than the final minimum; call it only after insertion quiesces for
// exact results.
func (h *HashMap64) Get(key uint64) (uint64, bool) {
	i := hash64(key) & h.mask
	for probes := uint64(0); probes <= h.mask; probes++ {
		cur := atomic.LoadUint64(&h.keys[i])
		if cur == key {
			return atomic.LoadUint64(&h.vals[i]), true
		}
		if cur == 0 {
			return 0, false
		}
		i = (i + 1) & h.mask
	}
	return 0, false
}

// Size reports the number of distinct keys.
func (h *HashMap64) Size() int { return int(h.size.Load()) }

// ForEach calls fn for every (key, value) pair. It must not run
// concurrently with writers.
func (h *HashMap64) ForEach(fn func(key, val uint64)) {
	for i, k := range h.keys {
		if k != 0 {
			fn(k, h.vals[i])
		}
	}
}

// vals slots start at zero, which would incorrectly win every min; new
// slots are initialized by the inserting writer with a CAS from 0. A zero
// *value* therefore cannot be stored; callers offset values by 1 when zero
// is meaningful.
func writeMinUint64orInit(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old != 0 && old <= v {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}

func writeMinUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old != 0 && old <= v {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}
