package parallel

import (
	"math"
	"sync/atomic"
)

// CASUint32 performs a compare-and-swap on p.
func CASUint32(p *uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(p, old, new)
}

// WriteMinUint32 atomically sets *p = min(*p, v), returning true iff the
// write strictly lowered the stored value. It is the priority-write used by
// shortest-path relaxations.
func WriteMinUint32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// WriteMinInt64 atomically sets *p = min(*p, v).
func WriteMinInt64(p *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(p, old, v) {
			return true
		}
	}
}

// WriteMaxUint32 atomically sets *p = max(*p, v).
func WriteMaxUint32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// WriteMaxInt64 atomically sets *p = max(*p, v).
func WriteMaxInt64(p *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(p)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt64(p, old, v) {
			return true
		}
	}
}

// AddFloat64 atomically adds delta to the float64 stored as bits in *p.
// Betweenness centrality accumulates fractional dependencies with it.
func AddFloat64(p *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(p)
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(p, old, new) {
			return
		}
	}
}

// LoadFloat64 reads the float64 stored as bits in *p.
func LoadFloat64(p *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(p))
}

// StoreFloat64 writes v as bits into *p.
func StoreFloat64(p *uint64, v float64) {
	atomic.StoreUint64(p, math.Float64bits(v))
}

// FetchAddInt32 atomically adds delta to *p and returns the new value.
func FetchAddInt32(p *int32, delta int32) int32 {
	return atomic.AddInt32(p, delta)
}

// TestAndSetByte attempts to flip a 0 byte at p to 1 without requiring
// byte-granular atomics: it is implemented with a CAS on the containing
// 32-bit word of a []uint32 bitset. See Bitset.
type Bitset struct {
	words []uint32
	n     int
}

// NewBitset returns a bitset over n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint32, (n+31)/32), n: n}
}

// Len reports the number of bits.
func (b *Bitset) Len() int { return b.n }

// TestAndSet atomically sets bit i, returning true iff this call changed it
// from 0 to 1.
func (b *Bitset) TestAndSet(i uint32) bool {
	w := &b.words[i/32]
	mask := uint32(1) << (i % 32)
	for {
		old := atomic.LoadUint32(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(w, old, old|mask) {
			return true
		}
	}
}

// Set sets bit i (non-atomic fast path for single-writer phases).
func (b *Bitset) Set(i uint32) { b.words[i/32] |= uint32(1) << (i % 32) }

// AtomicSet atomically sets bit i without reporting whether it changed.
func (b *Bitset) AtomicSet(i uint32) {
	w := &b.words[i/32]
	mask := uint32(1) << (i % 32)
	for {
		old := atomic.LoadUint32(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint32(w, old, old|mask) {
			return
		}
	}
}

// Get reports bit i. It uses an atomic load so it is safe to call
// concurrently with TestAndSet.
func (b *Bitset) Get(i uint32) bool {
	return atomic.LoadUint32(&b.words[i/32])&(uint32(1)<<(i%32)) != 0
}

// Clear resets all bits.
func (b *Bitset) Clear() {
	Fill(b.words, 0)
}

// Words exposes the underlying words (for size accounting).
func (b *Bitset) Words() int { return len(b.words) }
