// Package parallel provides the fork-join substrate used by every other
// package in this repository. It is the Go analogue of the binary-forking
// (T-RAM) model that the Sage paper assumes (§3.1): a fixed pool of P
// workers executes loop iterations in dynamically scheduled, grain-sized
// blocks, which gives the same asymptotic guarantees as a work-stealing
// scheduler for the data-parallel loops used by the algorithms.
//
// All primitives are deterministic with respect to their results (though
// not with respect to scheduling), allocate O(P) control state, and expose
// the worker index so that callers can maintain per-worker counters and
// scratch without atomic contention.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers is the hard upper bound on the worker pool size, used to size
// statically sharded data structures such as cost-model counters.
const MaxWorkers = 256

var numWorkers atomic.Int32

func init() {
	n := runtime.GOMAXPROCS(0)
	if n > MaxWorkers {
		n = MaxWorkers
	}
	numWorkers.Store(int32(n))
}

// SetWorkers sets the number of workers used by subsequent parallel
// operations. It is used by the scalability experiments (Figure 6) to sweep
// T1..Tp. Values are clamped to [1, MaxWorkers].
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	numWorkers.Store(int32(n))
}

// Workers reports the current worker pool size.
func Workers() int { return int(numWorkers.Load()) }

// DefaultGrain is the default number of loop iterations executed as one
// sequential unit. It balances scheduling overhead against load balance.
const DefaultGrain = 1024

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ForBlocks runs body(worker, lo, hi) over disjoint half-open blocks
// [lo, hi) covering [0, n), each of size at most grain. Blocks are claimed
// dynamically by an atomic counter so skewed blocks load-balance. If grain
// is <= 0 the DefaultGrain is used. The worker argument is in [0, Workers())
// and is stable for the duration of one body call, allowing per-worker
// accumulation.
func ForBlocks(n, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Workers()
	nBlocks := ceilDiv(n, grain)
	if p == 1 || nBlocks == 1 {
		for b := 0; b < nBlocks; b++ {
			lo := b * grain
			hi := min(lo+grain, n)
			body(0, lo, hi)
		}
		return
	}
	if p > nBlocks {
		p = nBlocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * grain
				hi := min(lo+grain, n)
				body(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// For runs body(i) for every i in [0, n) in parallel with the given grain.
func For(n, grain int, body func(i int)) {
	ForBlocks(n, grain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForWorker runs body(worker, i) for every i in [0, n) in parallel,
// exposing the executing worker's index.
func ForWorker(n, grain int, body func(worker, i int)) {
	ForBlocks(n, grain, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(w, i)
		}
	})
}

// Do runs the given thunks concurrently and waits for all of them. It is
// the binary-fork analogue for a small constant number of tasks.
func Do(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	if len(thunks) == 1 || Workers() == 1 {
		for _, t := range thunks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, t := range thunks[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(t)
	}
	thunks[0]()
	wg.Wait()
}
