// Package parallel provides the fork-join substrate used by every other
// package in this repository. It is the Go analogue of the binary-forking
// (T-RAM) model that the Sage paper assumes (§3.1): a fixed pool of P
// workers executes loop iterations in dynamically scheduled, grain-sized
// blocks, which gives the same asymptotic guarantees as a work-stealing
// scheduler for the data-parallel loops used by the algorithms.
//
// All primitives are deterministic with respect to their results (though
// not with respect to scheduling), allocate O(P) control state, and expose
// the worker index so that callers can maintain per-worker counters and
// scratch without atomic contention.
//
// Loops are executed by a lazily-started persistent worker pool: the
// workers park on per-worker channels between loops and are handed a work
// descriptor (an atomic block counter) per top-level call, so the
// thousands of small rounds a frontier algorithm launches do not pay a
// goroutine spawn per loop. The submitting goroutine participates as
// worker 0. Nested or concurrent loops (the pool is busy) fall back to
// transient goroutines with the same [0, Workers()) index contract —
// which also means per-worker state such as the PSAM counter shards and
// traversal scratch assumes top-level operations are not issued from
// multiple user goroutines at once.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers is the hard upper bound on the worker pool size, used to size
// statically sharded data structures such as cost-model counters.
const MaxWorkers = 256

var numWorkers atomic.Int32

func init() {
	n := runtime.GOMAXPROCS(0)
	if n > MaxWorkers {
		n = MaxWorkers
	}
	numWorkers.Store(int32(n))
}

// SetWorkers sets the number of workers used by subsequent parallel
// operations. It is used by the scalability experiments (Figure 6) to sweep
// T1..Tp. Values are clamped to [1, MaxWorkers].
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	numWorkers.Store(int32(n))
}

// Workers reports the current worker pool size.
func Workers() int { return int(numWorkers.Load()) }

// DefaultGrain is the default number of loop iterations executed as one
// sequential unit. It balances scheduling overhead against load balance.
const DefaultGrain = 1024

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// loopDesc describes one parallel loop to the persistent workers: blocks
// are claimed from the atomic counter until exhausted. Wake-up is a
// chain: the submitter wakes worker 1, and each woken worker forwards the
// wake to its successor only while unclaimed blocks remain — so wake-up
// latency overlaps with useful work, and a loop the submitter drains by
// itself wakes a single worker instead of p-1.
type loopDesc struct {
	next    atomic.Int64
	nBlocks int
	grain   int
	n       int
	body    func(worker, lo, hi int)
	wake    []chan *loopDesc // snapshot of the pool's wake channels
	p       int              // workers [0, p) participate this loop
	wg      sync.WaitGroup   // woken participants (grown along the chain)
}

// run drains blocks as the given worker.
//
//sage:hotpath
func (d *loopDesc) run(worker int) {
	for {
		b := int(d.next.Add(1)) - 1
		if b >= d.nBlocks {
			return
		}
		lo := b * d.grain
		hi := min(lo+d.grain, d.n)
		d.body(worker, lo, hi)
	}
}

// workerPool is the lazily-started persistent pool. Worker w (1-based;
// the submitter is worker 0) parks on wake[w-1] between loops. mu is held
// for the duration of one top-level loop; nested and concurrent loops
// fail the TryLock and fall back to transient goroutines. The descriptor
// is owned by the pool and reused, so a loop launch allocates nothing.
type workerPool struct {
	mu   sync.Mutex
	wake []chan *loopDesc
	desc loopDesc
}

var workers workerPool

// ensure starts persistent workers until k are available. Caller holds mu.
func (p *workerPool) ensure(k int) {
	for len(p.wake) < k {
		ch := make(chan *loopDesc, 1)
		p.wake = append(p.wake, ch)
		id := len(p.wake) // worker ids are 1-based; the submitter is 0
		go func() {
			for d := range ch {
				if id+1 < d.p && int(d.next.Load()) < d.nBlocks {
					// Forward the wake before working. Each channel gets
					// at most one send per loop, so this never blocks;
					// the Add happens while the counter is still held
					// above zero by this worker's pending Done.
					d.wg.Add(1)
					d.wake[id] <- d
				}
				d.run(id)
				d.wg.Done()
			}
		}()
	}
}

// ForBlocks runs body(worker, lo, hi) over disjoint half-open blocks
// [lo, hi) covering [0, n), each of size at most grain. Blocks are claimed
// dynamically by an atomic counter so skewed blocks load-balance. If grain
// is <= 0 the DefaultGrain is used. The worker argument is in [0, Workers())
// and is stable for the duration of one body call, allowing per-worker
// accumulation.
func ForBlocks(n, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Workers()
	nBlocks := ceilDiv(n, grain)
	if p == 1 || nBlocks == 1 {
		for b := 0; b < nBlocks; b++ {
			lo := b * grain
			hi := min(lo+grain, n)
			body(0, lo, hi)
		}
		return
	}
	if p > nBlocks {
		p = nBlocks
	}
	if workers.mu.TryLock() {
		// Top-level loop: start the wake chain and participate as
		// worker 0. All prior participants finished before the pool was
		// re-locked, so reusing the descriptor cannot race.
		workers.ensure(p - 1)
		d := &workers.desc
		d.next.Store(0)
		d.nBlocks, d.grain, d.n, d.body = nBlocks, grain, n, body
		d.wake, d.p = workers.wake, p
		d.wg.Add(1) // the first woken worker
		workers.wake[0] <- d
		d.run(0)
		d.wg.Wait()
		d.body = nil // release the closure
		workers.mu.Unlock()
		return
	}
	// Nested (or concurrent) loop: the pool's workers may be the very
	// callers awaiting this loop, so spawn transient goroutines instead of
	// queueing behind them.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * grain
				hi := min(lo+grain, n)
				body(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// For runs body(i) for every i in [0, n) in parallel with the given grain.
func For(n, grain int, body func(i int)) {
	ForBlocks(n, grain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForWorker runs body(worker, i) for every i in [0, n) in parallel,
// exposing the executing worker's index.
func ForWorker(n, grain int, body func(worker, i int)) {
	ForBlocks(n, grain, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(w, i)
		}
	})
}

// Do runs the given thunks and waits for all of them. It is the
// binary-fork analogue for a small constant number of tasks, executed on
// the persistent pool when it is free (recursive forks, whose callers
// occupy the pool, spawn transient goroutines as before). Every thunk
// gets its own executor, so thunks may synchronize with each other —
// except when Workers() is 1, where they run serially (as they always
// have).
func Do(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	if len(thunks) == 1 || Workers() == 1 {
		for _, t := range thunks {
			t()
		}
		return
	}
	if len(thunks) <= Workers() {
		// One block per thunk and at least as many participants as
		// blocks: each thunk gets a dedicated executor.
		ForBlocks(len(thunks), 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				thunks[i]()
			}
		})
		return
	}
	// More thunks than workers: spawn one goroutine per thunk so that
	// mutually-synchronizing thunks cannot deadlock behind a shared
	// executor.
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, t := range thunks[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(t)
	}
	thunks[0]()
	wg.Wait()
}
