package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolWorkerIndexContract checks that the persistent pool keeps the
// [0, Workers()) worker-index contract across many back-to-back loops
// (the per-worker PSAM counter shards and decode scratch rely on it).
func TestPoolWorkerIndexContract(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(4)
	for round := 0; round < 200; round++ {
		var covered [64]atomic.Int64
		var bad atomic.Int64
		ForBlocks(64, 1, func(w, lo, hi int) {
			if w < 0 || w >= 4 {
				bad.Add(1)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Fatalf("round %d: worker index out of [0, 4)", round)
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("round %d: block %d executed %d times", round, i, covered[i].Load())
			}
		}
	}
}

// TestPoolResize grows and shrinks the worker count between loops.
func TestPoolResize(t *testing.T) {
	defer SetWorkers(Workers())
	for _, p := range []int{2, 6, 3, 8, 1, 5} {
		SetWorkers(p)
		var sum atomic.Int64
		var badW atomic.Int64
		ForBlocks(1000, 16, func(w, lo, hi int) {
			if w < 0 || w >= p {
				badW.Add(1)
			}
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		if badW.Load() != 0 {
			t.Fatalf("p=%d: worker index out of range", p)
		}
		if want := int64(999 * 1000 / 2); sum.Load() != want {
			t.Fatalf("p=%d: sum %d, want %d", p, sum.Load(), want)
		}
	}
}

// TestNestedLoops runs parallel loops from inside pool workers — the
// pattern PageRank's high-degree aggregation uses. The inner loops must
// complete (transient-goroutine fallback) without deadlocking the pool.
func TestNestedLoops(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(4)
	var total atomic.Int64
	ForBlocks(16, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			For(100, 10, func(j int) {
				total.Add(1)
			})
		}
	})
	if total.Load() != 1600 {
		t.Fatalf("nested loops executed %d iterations, want 1600", total.Load())
	}
}

// TestConcurrentTopLevelLoops issues loops from several user goroutines
// at once: one wins the pool, the rest take the fallback path, and every
// block of every loop must still run exactly once.
func TestConcurrentTopLevelLoops(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				var covered [32]atomic.Int64
				ForBlocks(32, 1, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						covered[i].Add(1)
					}
				})
				for i := range covered {
					if covered[i].Load() != 1 {
						t.Errorf("block %d executed %d times", i, covered[i].Load())
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestDoRecursive exercises deep recursive forks (the sort pattern):
// the outermost Do holds the pool, inner forks must still progress.
func TestDoRecursive(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(4)
	var count atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			count.Add(1)
			return
		}
		Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(10)
	if count.Load() != 1024 {
		t.Fatalf("recursive Do reached %d leaves, want 1024", count.Load())
	}
}
