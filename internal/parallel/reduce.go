package parallel

// Number constrains the numeric element types used by Scan and the numeric
// reductions.
type Number interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// Reduce computes the reduction of f(i) for i in [0, n) under the
// associative operator op with identity id. Each worker reduces its blocks
// locally; the per-block partials are combined sequentially (there are at
// most n/grain of them).
func Reduce[T any](n, grain int, id T, f func(i int) T, op func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	nBlocks := ceilDiv(n, grain)
	partial := make([]T, nBlocks)
	ForBlocks(n, grain, func(_, lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		partial[lo/grain] = acc
	})
	acc := id
	for _, p := range partial {
		acc = op(acc, p)
	}
	return acc
}

// ReduceSum computes sum(f(i)) for i in [0, n).
func ReduceSum[T Number](n, grain int, f func(i int) T) T {
	var zero T
	return Reduce(n, grain, zero, f, func(a, b T) T { return a + b })
}

// ReduceMax computes the maximum of f(i) over [0, n), returning id for an
// empty range.
func ReduceMax[T Number](n, grain int, id T, f func(i int) T) T {
	return Reduce(n, grain, id, f, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// Scan replaces a with its exclusive prefix sum and returns the total.
// It is the PSAM scan primitive: O(n) work, O(log n) depth (§2).
func Scan[T Number](a []T) T {
	n := len(a)
	if n == 0 {
		var zero T
		return zero
	}
	grain := DefaultGrain
	if n <= 2*grain || Workers() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			v := a[i]
			a[i] = acc
			acc += v
		}
		return acc
	}
	nBlocks := ceilDiv(n, grain)
	sums := make([]T, nBlocks)
	ForBlocks(n, grain, func(_, lo, hi int) {
		var acc T
		for i := lo; i < hi; i++ {
			acc += a[i]
		}
		sums[lo/grain] = acc
	})
	var total T
	for b := 0; b < nBlocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ForBlocks(n, grain, func(_, lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			v := a[i]
			a[i] = acc
			acc += v
		}
	})
	return total
}

// ScanInclusive replaces a with its inclusive prefix sum and returns the
// total.
func ScanInclusive[T Number](a []T) T {
	n := len(a)
	if n == 0 {
		var zero T
		return zero
	}
	grain := DefaultGrain
	if n <= 2*grain || Workers() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			acc += a[i]
			a[i] = acc
		}
		return acc
	}
	nBlocks := ceilDiv(n, grain)
	sums := make([]T, nBlocks)
	ForBlocks(n, grain, func(_, lo, hi int) {
		var acc T
		for i := lo; i < hi; i++ {
			acc += a[i]
		}
		sums[lo/grain] = acc
	})
	var total T
	for b := 0; b < nBlocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ForBlocks(n, grain, func(_, lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			acc += a[i]
			a[i] = acc
		}
	})
	return total
}

// Count returns the number of i in [0, n) for which pred(i) is true.
func Count(n, grain int, pred func(i int) bool) int {
	return ReduceSum(n, grain, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Fill sets every element of a to v in parallel.
func Fill[T any](a []T, v T) {
	ForBlocks(len(a), 4*DefaultGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = v
		}
	})
}

// Tabulate builds a slice of length n with a[i] = f(i) computed in parallel.
func Tabulate[T any](n int, f func(i int) T) []T {
	a := make([]T, n)
	For(n, 0, func(i int) { a[i] = f(i) })
	return a
}

// Copy copies src into dst in parallel. The slices must have equal length.
func Copy[T any](dst, src []T) {
	ForBlocks(len(src), 4*DefaultGrain, func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
