package parallel

// Filter returns the elements a[i] for which pred(a[i]) is true, preserving
// their relative order. It is the PSAM filter primitive: O(n) work,
// O(log n) depth (§2). The implementation counts per block, scans the
// counts, and copies — pred is therefore evaluated TWICE per element and
// must be pure (side-effecting predicates such as CAS claims must run in
// a separate pass first).
func Filter[T any](a []T, pred func(T) bool) []T {
	return FilterIndex(a, func(_ int, v T) bool { return pred(v) })
}

// FilterIndex is Filter with the element index also supplied to the
// predicate.
func FilterIndex[T any](a []T, pred func(i int, v T) bool) []T {
	n := len(a)
	if n == 0 {
		return nil
	}
	grain := DefaultGrain
	nBlocks := ceilDiv(n, grain)
	counts := make([]int, nBlocks)
	ForBlocks(n, grain, func(_, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i, a[i]) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := Scan(counts)
	out := make([]T, total)
	ForBlocks(n, grain, func(_, lo, hi int) {
		o := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if pred(i, a[i]) {
				out[o] = a[i]
				o++
			}
		}
	})
	return out
}

// PackIndex returns the indices i in [0, n) for which pred(i) is true, in
// increasing order. It is used to convert dense boolean frontiers to sparse
// ones.
func PackIndex(n int, pred func(i int) bool) []uint32 {
	if n == 0 {
		return nil
	}
	grain := DefaultGrain
	nBlocks := ceilDiv(n, grain)
	counts := make([]int, nBlocks)
	ForBlocks(n, grain, func(_, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := Scan(counts)
	out := make([]uint32, total)
	ForBlocks(n, grain, func(_, lo, hi int) {
		o := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[o] = uint32(i)
				o++
			}
		}
	})
	return out
}

// PackInto writes the elements satisfying pred into dst (which must be
// large enough) and returns the number written. It avoids allocation for
// callers that reuse buffers.
func PackInto[T any](dst, a []T, pred func(T) bool) int {
	n := len(a)
	if n == 0 {
		return 0
	}
	grain := DefaultGrain
	nBlocks := ceilDiv(n, grain)
	counts := make([]int, nBlocks)
	ForBlocks(n, grain, func(_, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := Scan(counts)
	ForBlocks(n, grain, func(_, lo, hi int) {
		o := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				dst[o] = a[i]
				o++
			}
		}
	})
	return total
}

// Map applies f to every element of a in parallel, returning a new slice.
func Map[T, U any](a []T, f func(T) U) []U {
	out := make([]U, len(a))
	For(len(a), 0, func(i int) { out[i] = f(a[i]) })
	return out
}

// FlattenUint32 concatenates the given chunks into one contiguous slice
// using a scan over the chunk lengths and a parallel copy. It is the
// aggregation step of edgeMapChunked (Algorithm 1, lines 24–30).
func FlattenUint32(chunks [][]uint32) []uint32 {
	k := len(chunks)
	if k == 0 {
		return nil
	}
	offs := make([]int, k)
	For(k, 64, func(i int) { offs[i] = len(chunks[i]) })
	total := Scan(offs)
	out := make([]uint32, total)
	For(k, 1, func(i int) {
		copy(out[offs[i]:], chunks[i])
	})
	return out
}
