package semiext

import (
	"math"
	"testing"

	"sage/internal/gen"
	"sage/internal/refalgo"
)

func TestGridBFSMatchesSerial(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	grid := NewGrid(g, 4)
	got := grid.BFS(0)
	want := refalgo.BFSDistances(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
	if grid.Dev.PagesRead() == 0 {
		t.Fatal("no page I/O charged")
	}
}

func TestGridSSSPMatchesDijkstra(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 8, 5), 7)
	grid := NewGrid(g, 4)
	got := grid.SSSP(0, func(u, v uint32) int32 {
		w, _ := g.EdgeWeight(u, v)
		return w
	})
	want := refalgo.Dijkstra(g, 0)
	for v := range want {
		if want[v] == math.MaxInt64 {
			continue
		}
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestGridConnectivity(t *testing.T) {
	g := gen.Grid2D(15, 15, false)
	grid := NewGrid(g, 4)
	got := grid.Connectivity()
	want := refalgo.Components(g, 0)
	if !refalgo.SameComponents(want, got) {
		t.Fatal("grid connectivity differs")
	}
}

func TestGridPageRankMatchesSerial(t *testing.T) {
	g := gen.RMAT(8, 8, 9)
	grid := NewGrid(g, 4)
	got := grid.PageRank(10)
	want := refalgo.PageRank(g, 0, 10) // exactly 10 iterations
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("pr[%d]=%v want %v", v, got[v], want[v])
		}
	}
}

func TestPageAccountingGranularity(t *testing.T) {
	// A 2-word cell still costs one full page.
	g := gen.Chain(4)
	grid := NewGrid(g, 2)
	grid.BFS(0)
	if grid.Dev.PagesRead() < 1 {
		t.Fatal("partial page not charged")
	}
	if grid.Dev.Cost() != grid.Dev.PagesRead()*DefaultPageCost {
		t.Fatal("cost arithmetic")
	}
}

func TestHighDiameterPaysPerRound(t *testing.T) {
	// The structural weakness Table 3 exposes: a chain costs pages every
	// round.
	g := gen.Chain(512)
	grid := NewGrid(g, 4)
	grid.BFS(0)
	// 511 rounds, at least one page each.
	if grid.Dev.PagesRead() < 500 {
		t.Fatalf("pages %d, expected per-round I/O", grid.Dev.PagesRead())
	}
}
