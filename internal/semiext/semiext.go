// Package semiext implements a semi-external-memory graph engine in the
// style of GridGraph [Table 3]: vertex state lives in memory while edges
// are streamed from a simulated block device in a 2-D grid layout. It
// stands in for the SSD-based systems the paper compares against
// (FlashGraph, Mosaic, GridGraph), whose structural cost — page-granular
// I/O over every edge per pass, with no direction optimization — is what
// Table 3 measures Sage against.
package semiext

import (
	"math"
	"sync/atomic"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// PageWords is the simulated device page: 4 KB = 512 words.
const PageWords = 512

// DefaultPageCost is the simulated cost of one page I/O in DRAM-word
// units. A 4 KB read from a fast SSD (~50 µs) against ~5 ns DRAM words
// would be ~10⁴; we use a conservative 2048 (NVMe-class striped arrays)
// so the comparison is generous to the semi-external systems.
const DefaultPageCost = 2048

// Device counts simulated page I/O.
type Device struct {
	pagesRead atomic.Int64
	PageCost  int64
}

// ReadPages charges n page reads.
func (d *Device) ReadPages(n int64) { d.pagesRead.Add(n) }

// PagesRead reports the total pages read.
func (d *Device) PagesRead() int64 { return d.pagesRead.Load() }

// Cost reports the simulated I/O cost in DRAM-word units.
func (d *Device) Cost() int64 { return d.pagesRead.Load() * d.PageCost }

// Grid is the 2-D partitioned edge layout: vertices are divided into Q
// intervals; cell (i, j) stores the arcs from interval i to interval j.
type Grid struct {
	N        uint32
	Q        uint32
	interval uint32
	cells    [][]graph.Edge // Q*Q cells, row-major
	Dev      *Device
}

// NewGrid partitions g into a Q×Q grid over a fresh device.
func NewGrid(g *graph.Graph, q uint32) *Grid {
	n := g.NumVertices()
	if q == 0 {
		q = 4
	}
	gr := &Grid{N: n, Q: q, interval: (n + q - 1) / q, Dev: &Device{PageCost: DefaultPageCost}}
	gr.cells = make([][]graph.Edge, q*q)
	for u := uint32(0); u < n; u++ {
		iu := u / gr.interval
		for _, v := range g.Neighbors(u) {
			iv := v / gr.interval
			c := iu*q + iv
			gr.cells[c] = append(gr.cells[c], graph.Edge{U: u, V: v})
		}
	}
	return gr
}

// cellPages returns the page count of one cell (two words per edge).
func (g *Grid) cellPages(c uint32) int64 {
	words := int64(len(g.cells[c])) * 2
	return (words + PageWords - 1) / PageWords
}

// streamCells applies fn to every edge of the cells whose source interval
// is marked active (GridGraph's selective scheduling), charging page
// reads for each streamed cell. Cells stream in parallel; fn must be
// thread-safe.
func (g *Grid) streamCells(activeInterval func(i uint32) bool, fn func(u, v uint32)) {
	var work []uint32
	for i := uint32(0); i < g.Q; i++ {
		if !activeInterval(i) {
			continue
		}
		for j := uint32(0); j < g.Q; j++ {
			c := i*g.Q + j
			if len(g.cells[c]) > 0 {
				work = append(work, c)
			}
		}
	}
	parallel.For(len(work), 1, func(k int) {
		c := work[k]
		g.Dev.ReadPages(g.cellPages(c))
		for _, e := range g.cells[c] {
			fn(e.U, e.V)
		}
	})
}

// BFS runs a semi-external BFS from src, returning hop distances. Every
// round streams all cells whose source interval contains an active
// vertex — the page-granular cost that dooms high-diameter graphs on
// these systems.
func (g *Grid) BFS(src uint32) []uint32 {
	const inf = ^uint32(0)
	dist := make([]uint32, g.N)
	parallel.Fill(dist, inf)
	dist[src] = 0
	activeFlag := make([]bool, g.Q)
	activeFlag[src/g.interval] = true
	round := uint32(0)
	for {
		nextActive := make([]int32, g.Q)
		var updates atomic.Int64
		g.streamCells(func(i uint32) bool { return activeFlag[i] },
			func(u, v uint32) {
				if atomic.LoadUint32(&dist[u]) == round &&
					parallel.CASUint32(&dist[v], inf, round+1) {
					atomic.StoreInt32(&nextActive[v/g.interval], 1)
					updates.Add(1)
				}
			})
		if updates.Load() == 0 {
			return dist
		}
		for i := range activeFlag {
			activeFlag[i] = nextActive[i] != 0
		}
		round++
	}
}

// SSSP runs semi-external Bellman-Ford, returning distances.
func (g *Grid) SSSP(src uint32, weight func(u, v uint32) int32) []int64 {
	const inf = int64(math.MaxInt64 / 2)
	dist := make([]int64, g.N)
	parallel.Fill(dist, inf)
	dist[src] = 0
	for round := uint32(0); round < g.N; round++ {
		var updates atomic.Int64
		g.streamCells(func(uint32) bool { return true }, func(u, v uint32) {
			du := atomic.LoadInt64(&dist[u])
			if du < inf && parallel.WriteMinInt64(&dist[v], du+int64(weight(u, v))) {
				updates.Add(1)
			}
		})
		if updates.Load() == 0 {
			break
		}
	}
	return dist
}

// Connectivity runs label propagation over the grid to a fixpoint.
func (g *Grid) Connectivity() []uint32 {
	labels := make([]uint32, g.N)
	parallel.For(int(g.N), 0, func(i int) { labels[i] = uint32(i) })
	for {
		var updates atomic.Int64
		g.streamCells(func(uint32) bool { return true }, func(u, v uint32) {
			if parallel.WriteMinUint32(&labels[v], atomic.LoadUint32(&labels[u])) {
				updates.Add(1)
			}
		})
		if updates.Load() == 0 {
			return labels
		}
	}
}

// PageRank runs iters edge-streaming iterations.
func (g *Grid) PageRank(iters int) []float64 {
	n := int(g.N)
	rank := make([]float64, n)
	deg := make([]uint32, n)
	parallel.Fill(rank, 1/float64(n))
	g.streamCells(func(uint32) bool { return true }, func(u, _ uint32) {
		atomic.AddUint32(&deg[u], 1)
	})
	const d = 0.85
	for it := 0; it < iters; it++ {
		acc := make([]uint64, n) // float64 bits
		g.streamCells(func(uint32) bool { return true }, func(u, v uint32) {
			parallel.AddFloat64(&acc[v], rank[u]/float64(deg[u]))
		})
		parallel.For(n, 0, func(i int) {
			rank[i] = (1-d)/float64(n) + d*parallel.LoadFloat64(&acc[i])
		})
	}
	return rank
}
