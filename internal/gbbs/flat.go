package gbbs

// graph.FlatAdj implementation: the mutable image stores each vertex's
// live edges packed flat at the front of its CSR segment, so the hot
// traversal loops can iterate it without per-edge callbacks.

// FlatRange implements graph.FlatAdj, aliasing the packed live prefix.
// (The v >= n guard keeps graph.NewFlat's empty probe safe on empty
// graphs; flatness is a property of the representation, so ok is true.)
func (f *MutFilter) FlatRange(v, lo, hi uint32) ([]uint32, []int32, bool) {
	if v >= f.n {
		return nil, nil, true
	}
	if hi > f.degs[v] {
		hi = f.degs[v]
	}
	if hi < lo {
		hi = lo
	}
	base := f.offsets[v]
	return f.edges[base+uint64(lo) : base+uint64(hi)], nil, true
}

// DecodeRange implements graph.FlatAdj (copying form).
func (f *MutFilter) DecodeRange(v, lo, hi uint32, buf []uint32) []uint32 {
	nghs, _, _ := f.FlatRange(v, lo, hi)
	return append(buf[:0], nghs...)
}

// DecodeRangeW implements graph.FlatAdj; the baselines are unweighted.
func (f *MutFilter) DecodeRangeW(v, lo, hi uint32, buf []uint32, _ []int32) ([]uint32, []int32) {
	return f.DecodeRange(v, lo, hi, buf), nil
}
