package gbbs

import (
	"testing"

	"sage/internal/algos"
	"sage/internal/gen"
	"sage/internal/psam"
	"sage/internal/refalgo"
)

func TestMutFilterEquivalentResults(t *testing.T) {
	g := gen.RMAT(9, 10, 3)

	// Triangle counting: Sage filter vs GBBS mutation must agree.
	want := refalgo.Triangles(g)
	o := Options(psam.NewEnv(psam.AppDirect))
	res := algos.TriangleCount(g, o)
	if res.Count != want {
		t.Fatalf("gbbs triangle count %d want %d", res.Count, want)
	}

	// Maximal matching validity under the mutation filter.
	o = Options(psam.NewEnv(psam.AppDirect))
	match := algos.MaximalMatching(g, o)
	used := make([]bool, g.NumVertices())
	for _, e := range match {
		if used[e.U] || used[e.V] {
			t.Fatal("vertex reused")
		}
		used[e.U], used[e.V] = true, true
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if !used[v] && !used[u] {
				t.Fatalf("edge (%d,%d) free", v, u)
			}
		}
	}

	// Biconnectivity agrees with the serial oracle under mutation too.
	o = Options(psam.NewEnv(psam.AppDirect))
	bic := algos.Biconnectivity(g, o)
	ref := refalgo.Biconnected(g)
	got := map[[2]uint32]uint32{}
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				got[[2]uint32{v, u}] = bic.EdgeLabel(v, u)
			}
		}
	}
	if !refalgo.SamePartition(ref, got) {
		t.Fatal("gbbs biconnectivity partition differs")
	}
}

func TestMutationChargesNVRAMWrites(t *testing.T) {
	// The headline asymmetry: on NVRAM, GBBS-style packing writes to the
	// graph; Sage's filter does not.
	g := gen.RMAT(10, 16, 7)

	gbbsEnv := psam.NewEnv(psam.AppDirect)
	algos.TriangleCount(g, Options(gbbsEnv))
	if gbbsEnv.Totals().NVRAMWrites == 0 {
		t.Fatal("gbbs orientation pack charged no NVRAM writes")
	}

	sageEnv := psam.NewEnv(psam.AppDirect)
	algos.TriangleCount(g, algos.Defaults().WithEnv(sageEnv))
	if sageEnv.Totals().NVRAMWrites != 0 {
		t.Fatal("sage wrote to NVRAM")
	}

	// And the cost gap grows with omega (Table 1: GBBS Θ(ωW) vs Sage W).
	cfgLow := psam.Config{NVRAMRead: 3, Omega: 1}
	cfgHigh := psam.Config{NVRAMRead: 3, Omega: 16}
	gbbsGrowth := float64(gbbsEnv.Totals().Cost(cfgHigh)) / float64(gbbsEnv.Totals().Cost(cfgLow))
	sageGrowth := float64(sageEnv.Totals().Cost(cfgHigh)) / float64(sageEnv.Totals().Cost(cfgLow))
	if sageGrowth != 1.0 {
		t.Fatalf("sage cost grew %.2fx with omega", sageGrowth)
	}
	if gbbsGrowth <= 1.0 {
		t.Fatalf("gbbs cost did not grow with omega (%.2fx)", gbbsGrowth)
	}
}

func TestMutFilterPackSemantics(t *testing.T) {
	g := gen.Star(50)
	f := NewMutFilter(g, 0, psam.NewEnv(psam.DRAMOnly)).(*MutFilter)
	nd, removed := f.PackVertex(0, 0, func(_, ngh uint32) bool { return ngh%2 == 0 })
	if int(nd)+int(removed) != 49 {
		t.Fatalf("nd=%d removed=%d", nd, removed)
	}
	var seen []uint32
	f.IterActive(0, 0, func(ngh uint32) bool {
		if ngh%2 != 0 {
			t.Fatalf("neighbor %d should be gone", ngh)
		}
		seen = append(seen, ngh)
		return true
	})
	if uint32(len(seen)) != nd {
		t.Fatalf("iterated %d, degree %d", len(seen), nd)
	}
}
