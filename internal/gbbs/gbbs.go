// Package gbbs implements the GBBS-style baselines the paper compares
// against (Figures 1 and 7): the same graph algorithms, but with the
// shared-memory design decisions of Dhulipala et al. [37] that predate the
// semi-asymmetric discipline — in particular, batch edge deletions are
// realized by *mutating* the graph's adjacency arrays in place. On DRAM
// that is fine; on NVRAM every pack becomes expensive ω-weighted writes,
// which is exactly the effect Table 1's "GBBS Work" column formalizes as
// Θ(ωW).
//
// The baseline plugs into the algos package through the EdgeFilter
// interface: MutFilter implements the same packing operations as the Sage
// graph filter but charges its writes to the *graph* account, so the
// identical algorithm code runs under both designs and the measured cost
// difference isolates the design choice.
package gbbs

import (
	"sync/atomic"

	"sage/internal/algos"
	"sage/internal/frontier"
	"sage/internal/gfilter"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
	"sage/internal/traverse"
)

// MutFilter is a mutable copy of a CSR graph's adjacency arrays that
// supports in-place packing. It implements algos.EdgeFilter. All reads
// and writes of the edge data are charged to the PSAM graph account —
// under AppDirect or libvmmalloc configurations these are NVRAM accesses.
type MutFilter struct {
	env     *psam.Env
	n       uint32
	offsets []uint64
	edges   []uint32 // mutable: each vertex's live edges packed to the front
	degs    []uint32
	live    atomic.Int64
	base    graph.Adj // for addresses
}

// NewMutFilter copies g's adjacency into a mutable image. The copy
// itself models GBBS operating on its in-memory graph, so it is not
// charged (the graph was already resident); only subsequent mutations are.
// Compressed graphs are decompressed into CSR form first — GBBS cannot
// pack a compressed graph in place without re-compression, which is one of
// the costs the Sage design eliminates (§1).
func NewMutFilter(g graph.Adj, _ int, env *psam.Env) algos.EdgeFilter {
	n := g.NumVertices()
	f := &MutFilter{env: env, n: n, base: g}
	f.offsets = make([]uint64, n+1)
	f.degs = make([]uint32, n)
	parallel.For(int(n), 0, func(i int) {
		f.degs[i] = g.Degree(uint32(i))
		f.offsets[i] = uint64(f.degs[i])
	})
	total := parallel.Scan(f.offsets[:n+1])
	f.offsets[n] = total
	f.edges = make([]uint32, total)
	parallel.For(int(n), 16, func(i int) {
		v := uint32(i)
		wr := f.offsets[v]
		g.IterRange(v, 0, f.degs[i], func(_, ngh uint32, _ int32) bool {
			f.edges[wr] = ngh
			wr++
			return true
		})
	})
	f.live.Store(int64(total))
	return f
}

// NumVertices implements graph.Adj.
func (f *MutFilter) NumVertices() uint32 { return f.n }

// NumEdges implements graph.Adj.
func (f *MutFilter) NumEdges() uint64 { return uint64(f.live.Load()) }

// Degree implements graph.Adj.
func (f *MutFilter) Degree(v uint32) uint32 { return f.degs[v] }

// AvgDegree implements graph.Adj.
func (f *MutFilter) AvgDegree() uint32 {
	if f.n == 0 {
		return 1
	}
	d := uint32(uint64(f.live.Load()) / uint64(f.n))
	if d < 1 {
		d = 1
	}
	return d
}

// Weighted implements graph.Adj.
func (f *MutFilter) Weighted() bool { return false }

// BlockSize implements graph.Adj.
func (f *MutFilter) BlockSize() int { return 0 }

// EdgeAddr implements graph.Adj: the mutable image occupies the same
// simulated graph region as the original.
func (f *MutFilter) EdgeAddr(v uint32) int64 { return f.base.EdgeAddr(v) }

// ScanCost implements graph.Adj.
func (f *MutFilter) ScanCost(_ uint32, lo, hi uint32) int64 { return int64(hi - lo) }

// IterRange implements graph.Adj over the packed live prefix.
func (f *MutFilter) IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool) {
	if hi > f.degs[v] {
		hi = f.degs[v]
	}
	base := f.offsets[v]
	for i := lo; i < hi; i++ {
		if !fn(i, f.edges[base+uint64(i)], 1) {
			return
		}
	}
}

// ActiveEdges implements algos.EdgeFilter.
func (f *MutFilter) ActiveEdges() int64 { return f.live.Load() }

// IterActive implements algos.EdgeFilter, charging the read.
func (f *MutFilter) IterActive(worker int, v uint32, fn func(ngh uint32) bool) {
	deg := f.degs[v]
	f.env.GraphRead(worker, f.EdgeAddr(v), int64(deg))
	base := f.offsets[v]
	for i := uint32(0); i < deg; i++ {
		if !fn(f.edges[base+uint64(i)]) {
			return
		}
	}
}

// ActiveList implements algos.EdgeFilter. The live prefix is already
// materialized, so decode work equals the live degree.
func (f *MutFilter) ActiveList(worker int, v uint32, dst []uint32, stats *gfilter.IntersectStats) []uint32 {
	deg := f.degs[v]
	f.env.GraphRead(worker, f.EdgeAddr(v), int64(deg))
	if stats != nil {
		stats.DecodedEdges += int64(deg)
	}
	base := f.offsets[v]
	dst = append(dst[:0], f.edges[base:base+uint64(deg)]...)
	return dst
}

// PackVertex implements algos.EdgeFilter by compacting v's adjacency in
// place — the GBBS approach whose writes the PSAM charges at ω (§4.2:
// "In prior work ... deleted edges are handled by actually removing them
// from the adjacency lists in the graph").
func (f *MutFilter) PackVertex(worker int, v uint32, pred func(u, ngh uint32) bool) (uint32, int64) {
	deg := f.degs[v]
	if deg == 0 {
		return 0, 0
	}
	base := f.offsets[v]
	f.env.GraphRead(worker, f.EdgeAddr(v), int64(deg))
	wr := uint32(0)
	for i := uint32(0); i < deg; i++ {
		ngh := f.edges[base+uint64(i)]
		if pred(v, ngh) {
			f.edges[base+uint64(wr)] = ngh
			wr++
		}
	}
	removed := int64(deg - wr)
	if removed > 0 {
		// The compaction writes the surviving prefix back into the graph.
		f.env.GraphWrite(worker, f.EdgeAddr(v), int64(wr))
		f.degs[v] = wr
		f.live.Add(-removed)
	}
	return wr, removed
}

// EdgeMapPack implements algos.EdgeFilter.
func (f *MutFilter) EdgeMapPack(vs *frontier.VertexSubset, pred func(u, ngh uint32) bool) (*frontier.VertexSubset, []uint32) {
	sp := vs.Sparse()
	degs := make([]uint32, len(sp))
	parallel.ForWorker(len(sp), 1, func(w, i int) {
		nd, _ := f.PackVertex(w, sp[i], pred)
		degs[i] = nd
	})
	return frontier.FromSparse(vs.N(), sp), degs
}

// FilterEdges implements algos.EdgeFilter.
func (f *MutFilter) FilterEdges(pred func(u, ngh uint32) bool) int64 {
	parallel.ForWorker(int(f.n), 1, func(w, i int) {
		f.PackVertex(w, uint32(i), pred)
	})
	return f.live.Load()
}

// Options returns the GBBS baseline configuration of the algorithm suite:
// blocked traversal (edgeMapBlocked, §4.1.1) and mutation-based packing.
func Options(env *psam.Env) *algos.Options {
	o := algos.Defaults().WithEnv(env)
	o.Traverse.Strategy = traverse.Blocked
	o.NewFilter = NewMutFilter
	return o
}
