package algos

import (
	"sort"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// LocalClusterResult is a low-conductance community around a seed.
type LocalClusterResult struct {
	// Members of the cluster.
	Members []uint32
	// Conductance of the returned cut: cut(S) / min(vol(S), vol(V\S)).
	Conductance float64
}

// LocalCluster finds a low-conductance cluster around the seed with the
// classic PPR sweep: compute the personalized PageRank vector, sort
// vertices by degree-normalized rank, and return the prefix minimizing
// conductance. The paper lists local clustering among the problems that
// "naturally fit in the regular PSAM model" (§3.2): the state is the two
// O(n) PPR vectors plus the sweep's O(n) order — the graph is only read.
// maxSize bounds the sweep prefix (0 means n).
func LocalCluster(g graph.Adj, o *Options, seed uint32, damping float64, maxSize int) *LocalClusterResult {
	o.Checkpoint()
	n := int(g.NumVertices())
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	pr, _ := PersonalizedPageRank(g, o, seed, damping, 1e-10, 100)

	// Sweep order: degree-normalized rank, positive entries only.
	order := parallel.PackIndex(n, func(i int) bool {
		return pr[i] > 0 && g.Degree(uint32(i)) > 0
	})
	sort.Slice(order, func(a, b int) bool {
		va := pr[order[a]] / float64(g.Degree(order[a]))
		vb := pr[order[b]] / float64(g.Degree(order[b]))
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	if len(order) > maxSize {
		order = order[:maxSize]
	}
	if len(order) == 0 {
		return &LocalClusterResult{Members: []uint32{seed}, Conductance: 1}
	}

	totalVol := int64(g.NumEdges())
	inS := make([]bool, n)
	o.Env.Alloc(int64(n))
	defer o.Env.Free(int64(n))
	var vol, cut int64
	bestIdx, bestCond := 0, 2.0
	for i, v := range order {
		o.Checkpoint()
		deg := int64(g.Degree(v))
		// Adding v: edges to current members stop being cut; the rest
		// start.
		var toS int64
		g.IterRange(v, 0, g.Degree(v), func(_, u uint32, _ int32) bool {
			if inS[u] {
				toS++
			}
			return true
		})
		o.Env.GraphRead(0, g.EdgeAddr(v), g.ScanCost(v, 0, g.Degree(v)))
		inS[v] = true
		vol += deg
		cut += deg - 2*toS
		denom := min(vol, totalVol-vol)
		if denom <= 0 {
			continue
		}
		cond := float64(cut) / float64(denom)
		if cond < bestCond {
			bestCond = cond
			bestIdx = i
		}
	}
	return &LocalClusterResult{
		Members:     append([]uint32(nil), order[:bestIdx+1]...),
		Conductance: bestCond,
	}
}
