// Package algos implements the 18 Sage graph algorithms of Table 1 on top
// of the semi-asymmetric primitives: edgeMapChunked traversals
// (internal/traverse), graph filters (internal/gfilter), and semi-eager
// bucketing (internal/bucket). Every algorithm follows the Sage
// discipline: the graph is read-only (no NVRAM writes), and mutable state
// is O(n) words of DRAM — O(n + m/64) for the four filter-based
// algorithms (biconnectivity, approximate set cover, triangle counting,
// maximal matching).
//
// All entry points take a *Options carrying the PSAM environment and the
// traversal strategy, so the same code runs as Sage (Chunked strategy,
// AppDirect mode) or as the GBBS baseline (Blocked strategy, any mode) —
// which is how the paper's Figure 1/7 configurations are realized.
package algos

import (
	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/psam"
	"sage/internal/traverse"
)

// Infinity marks unreached vertices in distance/parent arrays.
const Infinity = ^uint32(0)

// fallbackScratch backs the algorithm inner loops of callers that do not
// thread per-run pools (o.Traverse.Pools == nil): single-run tools and
// tests that never traverse concurrently. Runs issued through the public
// engine always carry their own pools.
var fallbackScratch graph.ScratchPool

// Options configures an algorithm run.
type Options struct {
	// Env is the PSAM accounting environment (nil disables accounting).
	Env *psam.Env
	// Traverse selects the edgeMap strategy and direction optimization.
	Traverse traverse.Options
	// FB is the graph filter block size in edges (default 64; must match
	// the compression block size on compressed inputs).
	FB int
	// Seed drives all randomized algorithms deterministically.
	Seed uint64
	// Eps is the approximation parameter for set cover and densest
	// subgraph (default 0.05) and the PageRank convergence threshold
	// scale.
	Eps float64
	// LDDBeta is the low-diameter decomposition parameter (default 0.2,
	// the practical setting of §5.3).
	LDDBeta float64
	// KCoreFetchAdd selects the fetch-and-add k-core variant instead of
	// the histogram variant (the ablation of §4.3.4).
	KCoreFetchAdd bool
	// NewFilter overrides the batch-deletion structure used by the four
	// filtering algorithms; nil selects Sage's graph filter (§4.2). The
	// GBBS baselines install their mutation-based packer here.
	NewFilter FilterFactory
	// DenseThreshold numerator for histogram density switching is fixed
	// at m/20 as in the traversal layer.
}

// Defaults returns options with the paper's default parameters and no
// accounting environment.
func Defaults() *Options {
	return &Options{
		Traverse: traverse.Options{Strategy: traverse.Chunked},
		FB:       64,
		Seed:     1,
		Eps:      0.05,
		LDDBeta:  0.2,
	}
}

// WithEnv returns a copy of o bound to env.
func (o *Options) WithEnv(env *psam.Env) *Options {
	c := *o
	c.Env = env
	return &c
}

// edgeMap runs the configured traversal.
func (o *Options) edgeMap(g graph.Adj, vs *frontier.VertexSubset, ops traverse.Ops, tweak func(*traverse.Options)) *frontier.VertexSubset {
	opt := o.Traverse
	if tweak != nil {
		tweak(&opt)
	}
	return traverse.EdgeMap(g, o.Env, vs, ops, opt)
}

// scratch returns worker w's decode buffer from the run's pools (or the
// shared fallback for callers that do not thread pools). The ownership
// discipline matches the traversal layer: indexed by the parallel worker
// id, never shared across nesting levels or across concurrent runs.
func (o *Options) scratch(w int) *graph.Scratch {
	if p := o.Traverse.Pools; p != nil {
		return p.Scratch(w)
	}
	return fallbackScratch.Get(w)
}

// Checkpoint polls the run's cancellation context (iteration boundary).
// It must be called from the goroutine driving the algorithm, never from
// inside a parallel loop body.
func (o *Options) Checkpoint() { o.Env.Checkpoint() }

// hash64 mixes x with the seed (shared by the randomized algorithms).
func hash64(x, seed uint64) uint64 {
	x ^= seed + 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// edgeKey canonically encodes the undirected edge {u, v} as a non-zero
// uint64 key.
func edgeKey(u, v uint32) uint64 {
	lo, hi := min(u, v), max(u, v)
	return (uint64(lo)<<32 | uint64(hi)) + 1
}

// decodeEdgeKey inverts edgeKey.
func decodeEdgeKey(k uint64) (uint32, uint32) {
	k--
	return uint32(k >> 32), uint32(k)
}

// sumDegrees computes Σ deg(v) over a sparse id list.
func sumDegrees(g graph.Adj, ids []uint32) int64 {
	return parallel.ReduceSum(len(ids), 0, func(i int) int64 {
		return int64(g.Degree(ids[i]))
	})
}

// neighborCounts returns, for the sparse removal set S, how many edges
// each remaining vertex loses: the histogram primitive of §4.3.4 with the
// dense optimization — when Σ_{v∈S} deg(v) exceeds m/20, it switches to a
// dense pass reading every vertex's adjacency against a membership bitmap
// (O(m) work but O(n) memory); otherwise it gathers the neighbor multiset
// and runs a sort-based histogram (work proportional to the frontier).
// The keep predicate restricts counting to live vertices.
func neighborCounts(g graph.Adj, o *Options, s []uint32, keep func(uint32) bool) []parallel.KeyCount {
	env := o.Env
	n := int(g.NumVertices())
	sumDeg := sumDegrees(g, s)
	flat := graph.NewFlat(g)
	if sumDeg+int64(len(s)) > int64(g.NumEdges())/20 {
		// Dense variant.
		inS := make([]bool, n)
		parallel.For(len(s), 0, func(i int) { inS[s[i]] = true })
		counts := make([]uint32, n)
		parallel.ForBlocks(n, 64, func(w, lo, hi int) {
			sc := o.scratch(w)
			var scanned int64
			for i := lo; i < hi; i++ {
				v := uint32(i)
				if inS[i] || !keep(v) {
					continue
				}
				var c uint32
				deg := g.Degree(v)
				nghs, _ := flat.Slice(v, 0, deg, sc)
				for _, ngh := range nghs {
					if inS[ngh] {
						c++
					}
				}
				scanned += int64(deg)
				counts[i] = c
			}
			env.GraphRead(w, 0, scanned)
			env.StateRead(w, scanned)
		})
		ids := parallel.PackIndex(n, func(i int) bool { return counts[i] > 0 })
		out := make([]parallel.KeyCount, len(ids))
		parallel.For(len(ids), 0, func(i int) {
			out[i] = parallel.KeyCount{Key: ids[i], Count: counts[ids[i]]}
		})
		return out
	}
	// Sparse variant: gather the neighbor multiset, then histogram.
	offs := make([]int64, len(s)+1)
	parallel.For(len(s), 0, func(i int) { offs[i] = int64(g.Degree(s[i])) })
	parallel.Scan(offs)
	offs[len(s)] = sumDeg
	keys := make([]uint32, sumDeg)
	const drop = ^uint32(0)
	parallel.ForWorker(len(s), 8, func(w, i int) {
		v := s[i]
		deg := g.Degree(v)
		env.GraphRead(w, g.EdgeAddr(v), g.ScanCost(v, 0, deg))
		wr := offs[i]
		nghs, _ := flat.Slice(v, 0, deg, o.scratch(w))
		for _, ngh := range nghs {
			if keep(ngh) {
				keys[wr] = ngh
			} else {
				keys[wr] = drop
			}
			wr++
		}
		env.StateWrite(w, int64(deg))
	})
	kept := parallel.Filter(keys, func(k uint32) bool { return k != drop })
	return parallel.HistogramInPlace(kept)
}
