package algos

import (
	"sort"
	"sync/atomic"

	"sage/internal/bucket"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// KTruss computes the trussness of every undirected edge: the largest k
// such that the edge belongs to the k-truss (the maximal subgraph where
// every edge closes at least k-2 triangles). The paper's model discussion
// (§3.2) flags k-truss as a problem that does NOT fit the PSAM: the
// output alone is Θ(m) words, so Θ(m) small-memory (or Θ(ωm) NVRAM
// writes) is unavoidable. This implementation is included to demonstrate
// that boundary — it keeps the graph read-only but allocates Θ(m) DRAM
// words of support/trussness state, which the space tracker exposes
// (contrast with the O(n + m/64) footprints of the Table 1 algorithms).
//
// The result maps each edge {u, v} with u < v, identified by its
// EdgeID, to its trussness (2 for triangle-free edges).
type KTrussResult struct {
	// UpOffsets[u] is the index of u's first up-edge (u < v) in the edge
	// id space; up-edges of u are ordered by neighbor id.
	UpOffsets []uint64
	// Trussness per edge id.
	Trussness []uint32
	g         graph.Adj
}

// EdgeID returns the id of edge {u, v} (any order); ok is false if the
// edge is absent.
func (r *KTrussResult) EdgeID(u, v uint32) (uint32, bool) {
	if u > v {
		u, v = v, u
	}
	// Up-edges of u are its neighbors greater than u, in adjacency order.
	var id uint32
	found := false
	idx := r.UpOffsets[u]
	r.g.IterRange(u, 0, r.g.Degree(u), func(_, ngh uint32, _ int32) bool {
		if ngh <= u {
			return true
		}
		if ngh == v {
			id = uint32(idx)
			found = true
			return false
		}
		idx++
		return true
	})
	return id, found
}

// EdgeTrussness returns the trussness of edge {u, v}.
func (r *KTrussResult) EdgeTrussness(u, v uint32) (uint32, bool) {
	id, ok := r.EdgeID(u, v)
	if !ok {
		return 0, false
	}
	return r.Trussness[id], true
}

// KTruss peels edges by triangle support with the same bucketing
// structure as k-core, but over the edge set.
func KTruss(g graph.Adj, o *Options) *KTrussResult {
	n := int(g.NumVertices())
	// Edge id space: up-edges (u < v), offset per vertex.
	upOff := make([]uint64, n+1)
	parallel.For(n, 0, func(i int) {
		v := uint32(i)
		var c uint64
		g.IterRange(v, 0, g.Degree(v), func(_, ngh uint32, _ int32) bool {
			if ngh > v {
				c++
			}
			return true
		})
		upOff[i] = c
	})
	mUp := parallel.Scan(upOff)
	upOff[n] = mUp
	o.Env.Alloc(int64(n) + 3*int64(mUp)) // the Θ(m) state §3.2 predicts
	defer o.Env.Free(int64(n) + 3*int64(mUp))

	// Materialize the up-edge endpoints for direct indexing.
	eu := make([]uint32, mUp)
	ev := make([]uint32, mUp)
	parallel.For(n, 16, func(i int) {
		v := uint32(i)
		wr := upOff[i]
		g.IterRange(v, 0, g.Degree(v), func(_, ngh uint32, _ int32) bool {
			if ngh > v {
				eu[wr] = v
				ev[wr] = ngh
				wr++
			}
			return true
		})
	})
	res := &KTrussResult{UpOffsets: upOff[:n+1], Trussness: make([]uint32, mUp), g: g}

	// eid looks up the id of up-edge (u, v), u < v, by binary search over
	// ev within u's up-range.
	eid := func(u, v uint32) (uint32, bool) {
		lo, hi := upOff[u], upOff[u+1]
		i := uint64(sort.Search(int(hi-lo), func(k int) bool {
			return ev[lo+uint64(k)] >= v
		})) + lo
		if i < hi && ev[i] == v {
			return uint32(i), true
		}
		return 0, false
	}

	// Support counting: enumerate each triangle u < v < w once from its
	// lowest vertex, incrementing all three edges atomically.
	support := make([]uint32, mUp)
	parallel.ForWorker(int(mUp), 8, func(w, e int) {
		u, v := eu[e], ev[e]
		// Intersect the up-neighbors of u beyond v with the up-neighbors
		// of v; count triangles u < v < w.
		iterCommonHigher(g, o, w, u, v, func(x uint32) {
			if euv, ok := eid(u, x); ok {
				if evw, ok2 := eid(v, x); ok2 {
					atomic.AddUint32(&support[e], 1)
					atomic.AddUint32(&support[euv], 1)
					atomic.AddUint32(&support[evw], 1)
				}
			}
		})
	})

	// Peel edges by support; trussness = final support bucket + 2.
	// removalRound[e] = the round e was peeled in (-1 while live); it
	// disambiguates triangles losing several edges in one round: the
	// minimum-id peeled edge of the triangle is its representative and
	// issues the (single) decrement for each surviving edge.
	prio := make([]uint32, mUp)
	parallel.Copy(prio, support)
	b := bucket.New(prio, bucket.Increasing)
	removalRound := make([]int32, mUp)
	parallel.Fill(removalRound, -1)
	round := int32(0)
	for {
		o.Checkpoint()
		s, peeled, ok := b.NextBucket()
		if !ok {
			break
		}
		cur := round
		parallel.For(len(peeled), 0, func(i int) {
			res.Trussness[peeled[i]] = s + 2
			removalRound[peeled[i]] = cur
		})
		// Gather one decrement per dying triangle per surviving edge.
		lists := make([][]uint32, parallel.Workers())
		parallel.ForWorker(len(peeled), 2, func(w, i int) {
			e := peeled[i]
			u, v := eu[e], ev[e]
			iterCommonAll(g, o, w, u, v, func(x uint32) {
				e1, ok1 := eidAny(eid, u, x)
				e2, ok2 := eidAny(eid, v, x)
				if !ok1 || !ok2 {
					return
				}
				r1, r2 := removalRound[e1], removalRound[e2]
				if (r1 >= 0 && r1 < cur) || (r2 >= 0 && r2 < cur) {
					return // triangle already dead before this round
				}
				// Representative: minimum id among the edges of this
				// triangle peeled in this round.
				rep := e
				if r1 == cur && e1 < rep {
					rep = e1
				}
				if r2 == cur && e2 < rep {
					rep = e2
				}
				if rep != e {
					return
				}
				if r1 < 0 {
					lists[w] = append(lists[w], e1)
				}
				if r2 < 0 {
					lists[w] = append(lists[w], e2)
				}
			})
		})
		round++
		flat := parallel.FlattenUint32(lists)
		if len(flat) == 0 {
			continue
		}
		counts := parallel.HistogramInPlace(flat)
		ids := make([]uint32, 0, len(counts))
		prios := make([]uint32, 0, len(counts))
		for _, kc := range counts {
			e := kc.Key
			if removalRound[e] >= 0 {
				continue
			}
			ns := support[e]
			if kc.Count >= ns-s {
				ns = s
			} else {
				ns -= kc.Count
			}
			support[e] = ns
			ids = append(ids, e)
			prios = append(prios, ns)
		}
		b.UpdateBatch(ids, prios)
	}
	return res
}

// eidAny looks up the edge id of {a, b} in either order.
func eidAny(eid func(u, v uint32) (uint32, bool), a, b uint32) (uint32, bool) {
	if a < b {
		return eid(a, b)
	}
	return eid(b, a)
}

// iterCommonHigher calls fn for each common neighbor x of u and v with
// x > v (triangle apexes above both endpoints).
func iterCommonHigher(g graph.Adj, o *Options, worker int, u, v uint32, fn func(x uint32)) {
	iterCommon(g, o, worker, u, v, func(x uint32) {
		if x > v {
			fn(x)
		}
	})
}

// iterCommonAll calls fn for every common neighbor of u and v.
func iterCommonAll(g graph.Adj, o *Options, worker int, u, v uint32, fn func(x uint32)) {
	iterCommon(g, o, worker, u, v, fn)
}

// iterCommon merge-intersects the sorted adjacencies of u and v.
func iterCommon(g graph.Adj, o *Options, worker int, u, v uint32, fn func(x uint32)) {
	du, dv := g.Degree(u), g.Degree(v)
	o.Env.GraphRead(worker, g.EdgeAddr(u), g.ScanCost(u, 0, du))
	o.Env.GraphRead(worker, g.EdgeAddr(v), g.ScanCost(v, 0, dv))
	var bufU, bufV [512]uint32
	nu := graph.DecodeRange(g, u, 0, du, bufU[:0])
	nv := graph.DecodeRange(g, v, 0, dv, bufV[:0])
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] < nv[j]:
			i++
		case nu[i] > nv[j]:
			j++
		default:
			fn(nu[i])
			i++
			j++
		}
	}
}
