package algos

import (
	"sync/atomic"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// maxLDDRestarts bounds the Appendix C.2 restart loop: an LDD whose
// inter-cluster edge count exceeds the O(n) small-memory budget is re-run
// with a fresh seed (it succeeds with constant probability).
const maxLDDRestarts = 8

// interClusterBudgetFactor is the c in the "at most c·n inter-cluster
// edges" restart rule.
const interClusterBudgetFactor = 4

// Connectivity computes connected-component labels with the work-efficient
// LDD-contraction algorithm (§4.3.2, Theorem C.2): decompose with β = 0.2,
// build the (deduplicated) inter-cluster graph in small-memory, recurse on
// it, and map the labels back down. O(m) expected work, O(log³ n) depth
// whp, O(n) words of small-memory (with restarts per Appendix C.2).
func Connectivity(g graph.Adj, o *Options) []uint32 {
	return connectivityRec(g, o, o.Seed, 0)
}

func connectivityRec(g graph.Adj, o *Options, seed uint64, depth int) []uint32 {
	o.Checkpoint() // contraction-level boundary
	n := g.NumVertices()
	if g.NumEdges() == 0 {
		return parallel.Tabulate(int(n), func(i int) uint32 { return uint32(i) })
	}
	ldd, inter := lddWithBudget(g, o, seed)
	cluster := ldd.Cluster
	if inter == 0 {
		return cluster
	}
	// Contract: relabel cluster centers densely, collect deduplicated
	// inter-cluster edges into small-memory, and recurse.
	cg, centerOf, denseID := contract(g, o, cluster, inter, nil)
	sub := connectivityRec(cg, o, seed+0x1000193, depth+1)
	// Map down: label of v = center whose dense id's component label is
	// sub[...]; translate back to an original-vertex label.
	labels := make([]uint32, n)
	parallel.For(int(n), 0, func(i int) {
		labels[i] = centerOf[sub[denseID[cluster[i]]]]
	})
	return labels
}

// lddWithBudget runs LDD, restarting until the inter-cluster edge count
// fits the O(n) budget (Appendix C.2).
func lddWithBudget(g graph.Adj, o *Options, seed uint64) (*LDDResult, int64) {
	n := int64(g.NumVertices())
	budget := interClusterBudgetFactor * n
	var ldd *LDDResult
	var inter int64
	for attempt := 0; attempt < maxLDDRestarts; attempt++ {
		ldd = LDD(g, o, o.LDDBeta, seed+uint64(attempt)*0x9e3779b9)
		inter = CountInterCluster(g, o, ldd.Cluster)
		if inter <= budget {
			return ldd, inter
		}
	}
	// All restarts exceeded the budget (adversarially dense decompositions
	// are possible but vanishingly rare); proceed with the last one.
	return ldd, inter
}

// contract builds the graph over cluster centers. It returns the
// contracted graph, the mapping dense id -> center vertex, and center
// vertex -> dense id. If witness is non-nil, it records for every
// contracted undirected edge {cu, cv} one original arc (u, v) inducing it
// (used by spanning forest and the spanner).
func contract(g graph.Adj, o *Options, cluster []uint32, inter int64, witness *parallel.HashMap64) (*graph.Graph, []uint32, []uint32) {
	n := int(g.NumVertices())
	// Dense ids for centers. Marking is idempotent but concurrent —
	// many vertices share a center — so the flag writes must be atomic
	// for the Go memory model (the loop join orders the plain reads
	// after them); a load-first spares the cache line when already set.
	isCenter := make([]uint32, n)
	parallel.For(n, 0, func(i int) {
		p := &isCenter[cluster[i]]
		if atomic.LoadUint32(p) == 0 {
			atomic.StoreUint32(p, 1)
		}
	})
	centers := parallel.PackIndex(n, func(i int) bool { return isCenter[i] != 0 })
	denseID := make([]uint32, n)
	parallel.For(len(centers), 0, func(i int) { denseID[centers[i]] = uint32(i) })

	// Deduplicate inter-cluster edges with a concurrent hash set sized by
	// the counted arcs; collect canonical pairs.
	set := parallel.NewHashSet64(int(inter) + 1)
	o.Env.Alloc(2 * (inter + 1))
	defer o.Env.Free(2 * (inter + 1))
	flat := graph.NewFlat(g)
	parallel.ForBlocks(n, 64, func(w, lo, hi int) {
		sc := o.scratch(w)
		for i := lo; i < hi; i++ {
			v := uint32(i)
			cv := cluster[v]
			nghs, _ := flat.Slice(v, 0, g.Degree(v), sc)
			for _, u := range nghs {
				cu := cluster[u]
				if cu != cv {
					key := edgeKey(denseID[cu], denseID[cv])
					if set.Insert(key) && witness != nil {
						witness.InsertMin(key, edgeKey(v, u))
					}
					o.Env.StateWrite(w, 1)
				}
			}
		}
	})
	keys := set.Elements()
	edges := make([]graph.Edge, len(keys))
	parallel.For(len(keys), 0, func(i int) {
		a, b := decodeEdgeKey(keys[i])
		edges[i] = graph.Edge{U: a, V: b}
	})
	cg := graph.FromEdges(uint32(len(centers)), edges, graph.BuildOpts{Symmetrize: true})
	o.Env.Alloc(cg.SizeWords())
	return cg, centers, denseID
}

// SpanningForest returns the edges of a spanning forest (§4.3.2,
// Corollary C.3): the LDD growth trees plus, recursively, a forest of the
// contracted inter-cluster graph whose edges are mapped back to witness
// arcs of the original graph.
func SpanningForest(g graph.Adj, o *Options) []graph.Edge {
	return spanningForestRec(g, o, o.Seed)
}

func spanningForestRec(g graph.Adj, o *Options, seed uint64) []graph.Edge {
	o.Checkpoint() // contraction-level boundary
	if g.NumEdges() == 0 {
		return nil
	}
	ldd, inter := lddWithBudget(g, o, seed)
	n := int(g.NumVertices())
	// Tree edges of the LDD growth: (parent[v], v) for non-center v.
	treeIdx := parallel.PackIndex(n, func(i int) bool {
		p := ldd.Parent[i]
		return p != Infinity && p != uint32(i)
	})
	forest := make([]graph.Edge, len(treeIdx), len(treeIdx)+64)
	parallel.For(len(treeIdx), 0, func(i int) {
		v := treeIdx[i]
		forest[i] = graph.Edge{U: ldd.Parent[v], V: v}
	})
	if inter == 0 {
		return forest
	}
	witness := parallel.NewHashMap64(int(inter) + 1)
	cg, _, _ := contract(g, o, ldd.Cluster, inter, witness)
	subForest := spanningForestRec(cg, o, seed+0x1000193)
	for _, e := range subForest {
		o.Checkpoint()
		// Translate the contracted edge back through its witness arc
		// (edgeKey is canonical in the endpoint order).
		if w, okW := witness.Get(edgeKey(e.U, e.V)); okW {
			u, v := decodeEdgeKey(w)
			forest = append(forest, graph.Edge{U: u, V: v})
		}
	}
	return forest
}
