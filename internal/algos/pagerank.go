package algos

import (
	"math"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// pagerankDamping is the paper's damping factor (§5.3).
const pagerankDamping = 0.85

// prParallelDegree is the degree above which a vertex's neighbor
// aggregation runs as a parallel reduction — the Sage optimization over
// Ligra's sequential per-vertex aggregation (§4.3.5), which bounds the
// per-iteration depth by O(log n).
const prParallelDegree = 8192

// PageRankIter performs one dense pull-based PageRank iteration from
// prev, writing into next (both length n), and returns the L1 change.
// O(m) work, O(log n) depth, O(n) words of small-memory per iteration.
func PageRankIter(g graph.Adj, o *Options, prev, next []float64) float64 {
	o.Checkpoint() // one iteration is the cancellation granularity
	n := int(g.NumVertices())
	// Pre-divide by degree so the pull only sums contributions.
	contrib := make([]float64, n)
	o.Env.Alloc(int64(n))
	defer o.Env.Free(int64(n))
	parallel.For(n, 0, func(i int) {
		if d := g.Degree(uint32(i)); d > 0 {
			contrib[i] = prev[i] / float64(d)
		}
	})
	base := (1 - pagerankDamping) / float64(n)
	flat := graph.NewFlat(g)
	var diffs [parallel.MaxWorkers]struct {
		d float64
		_ [56]byte
	}
	parallel.ForBlocks(n, 64, func(w, lo, hi int) {
		sc := o.scratch(w)
		var scanned int64
		var l1 float64
		for i := lo; i < hi; i++ {
			v := uint32(i)
			deg := g.Degree(v)
			var acc float64
			if deg > prParallelDegree {
				acc = aggregateParallel(g, v, deg, contrib)
			} else {
				nghs, _ := flat.Slice(v, 0, deg, sc)
				for _, u := range nghs {
					acc += contrib[u]
				}
			}
			scanned += int64(deg)
			nv := base + pagerankDamping*acc
			l1 += math.Abs(nv - prev[i])
			next[i] = nv
		}
		o.Env.GraphRead(w, 0, scanned)
		o.Env.StateRead(w, scanned)
		o.Env.StateWrite(w, int64(hi-lo))
		diffs[w].d += l1
	})
	var total float64
	for i := range diffs {
		total += diffs[i].d
	}
	return total
}

// aggregateParallel reduces a high-degree vertex's neighbor contributions
// with a parallel block reduction. It runs nested inside a worker's loop
// body, so it cannot use the per-worker scratch; each inner block decodes
// into its own local buffer (free for zero-copy CSR, one allocation per
// prParallelDegree edges otherwise).
func aggregateParallel(g graph.Adj, v, deg uint32, contrib []float64) float64 {
	flat := graph.NewFlat(g)
	nBlocks := (int(deg) + prParallelDegree - 1) / prParallelDegree
	partial := make([]float64, nBlocks)
	parallel.For(nBlocks, 1, func(b int) {
		lo := uint32(b * prParallelDegree)
		hi := min(lo+prParallelDegree, deg)
		var sc graph.Scratch
		nghs, _ := flat.Slice(v, lo, hi, &sc)
		var acc float64
		for _, u := range nghs {
			acc += contrib[u]
		}
		partial[b] = acc
	})
	var acc float64
	for _, p := range partial {
		acc += p
	}
	return acc
}

// PageRank iterates PageRankIter until the L1 change drops below eps
// (default 1e-6, the paper's setting) or maxIters passes. It returns the
// rank vector and the number of iterations run.
func PageRank(g graph.Adj, o *Options, eps float64, maxIters int) ([]float64, int) {
	n := int(g.NumVertices())
	if eps <= 0 {
		eps = 1e-6
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	prev := make([]float64, n)
	next := make([]float64, n)
	o.Env.Alloc(2 * int64(n))
	defer o.Env.Free(2 * int64(n))
	parallel.Fill(prev, 1/float64(n))
	iters := 0
	for iters < maxIters {
		diff := PageRankIter(g, o, prev, next)
		prev, next = next, prev
		iters++
		if diff < eps {
			break
		}
	}
	return prev, iters
}
