package algos

import (
	"sync/atomic"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// Vertex decision states of the rootset algorithms (MIS, coloring).
const (
	stateUndecided uint32 = iota
	stateIn
	stateOut
)

// MIS computes a maximal independent set with the rootset-based greedy
// algorithm (§4.3.3, after Blelloch–Fineman–Shun): vertices carry random
// priorities; a vertex joins the MIS when every higher-priority neighbor
// has been decided and none of them joined. The result equals the serial
// greedy MIS over the priority order, which makes it deterministic in the
// seed. O(m) expected work, O(log² n) depth whp, O(n) words.
func MIS(g graph.Adj, o *Options) []bool {
	n := g.NumVertices()
	prio := parallel.Tabulate(int(n), func(i int) uint64 {
		return hash64(uint64(i), o.Seed)<<20 | uint64(i)
	})
	earlier := func(a, b uint32) bool { return prio[a] < prio[b] }

	state := make([]uint32, n)
	count := make([]int32, n) // undecided higher-priority neighbors
	o.Env.Alloc(4 * int64(n))
	defer o.Env.Free(4 * int64(n))

	parallel.ForBlocks(int(n), 64, func(w, lo, hi int) {
		var scanned int64
		for i := lo; i < hi; i++ {
			v := uint32(i)
			var c int32
			deg := g.Degree(v)
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if earlier(u, v) {
					c++
				}
				return true
			})
			scanned += int64(deg)
			count[i] = c
		}
		o.Env.GraphRead(w, 0, scanned)
		o.Env.StateWrite(w, int64(hi-lo))
	})

	// Initial rootset: undecided vertices with no earlier neighbors.
	roots := parallel.PackIndex(int(n), func(i int) bool { return count[i] == 0 })
	for len(roots) > 0 {
		o.Checkpoint()
		// Roots join the MIS; their neighbors leave. Two roots cannot be
		// adjacent: a root has no earlier undecided neighbor, and of two
		// adjacent roots one would be the other's earlier undecided
		// neighbor — so the In-CAS below cannot race with another In.
		newlyOut := make([][]uint32, parallel.Workers())
		joined := make([]bool, len(roots))
		parallel.ForWorker(len(roots), 4, func(w, i int) {
			v := roots[i]
			if !parallel.CASUint32(&state[v], stateUndecided, stateIn) {
				return // already decided in an earlier round (stale candidate)
			}
			joined[i] = true
			deg := g.Degree(v)
			o.Env.GraphRead(w, g.EdgeAddr(v), g.ScanCost(v, 0, deg))
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if parallel.CASUint32(&state[u], stateUndecided, stateOut) {
					newlyOut[w] = append(newlyOut[w], u)
				}
				return true
			})
		})
		decided := parallel.FlattenUint32(newlyOut)
		decided = append(decided, parallel.FilterIndex(roots, func(i int, _ uint32) bool {
			return joined[i]
		})...)
		// Decided vertices release their later neighbors.
		nextCand := make([][]uint32, parallel.Workers())
		parallel.ForWorker(len(decided), 4, func(w, i int) {
			v := decided[i]
			deg := g.Degree(v)
			o.Env.GraphRead(w, g.EdgeAddr(v), g.ScanCost(v, 0, deg))
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if earlier(v, u) {
					if parallel.FetchAddInt32(&count[u], -1) == 0 &&
						atomic.LoadUint32(&state[u]) == stateUndecided {
						nextCand[w] = append(nextCand[w], u)
					}
				}
				return true
			})
		})
		roots = parallel.Filter(parallel.FlattenUint32(nextCand), func(v uint32) bool {
			return atomic.LoadUint32(&state[v]) == stateUndecided
		})
	}
	return parallel.Tabulate(int(n), func(i int) bool { return state[i] == stateIn })
}
