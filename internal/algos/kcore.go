package algos

import (
	"sync/atomic"

	"sage/internal/bucket"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// KCore computes the coreness of every vertex with the Julienne peeling
// algorithm (§4.3.4): vertices are bucketed by remaining degree; popping
// the minimum bucket k finalizes its vertices with coreness k, and the
// degree losses of their neighbors are aggregated — with the histogram
// primitive (including its dense variant past the m/20 threshold) by
// default, or with fetch-and-add when o.KCoreFetchAdd is set (the
// theoretically clean variant that suffers contention in practice,
// §4.3.4). O(m) expected work, O(ρ log n) depth whp, O(n) words.
func KCore(g graph.Adj, o *Options) []uint32 {
	n := g.NumVertices()
	coreness := make([]uint32, n)
	deg := parallel.Tabulate(int(n), func(i int) uint32 { return g.Degree(uint32(i)) })
	o.Env.Alloc(3 * int64(n))
	defer o.Env.Free(3 * int64(n))

	prio := make([]uint32, n)
	parallel.Copy(prio, deg)
	b := bucket.New(prio, bucket.Increasing)

	for {
		o.Checkpoint()
		k, peeled, ok := b.NextBucket()
		if !ok {
			break
		}
		parallel.For(len(peeled), 0, func(i int) { coreness[peeled[i]] = k })
		if o.KCoreFetchAdd {
			kcoreFetchAdd(g, o, b, peeled, deg, k)
			continue
		}
		counts := neighborCounts(g, o, peeled, func(v uint32) bool {
			return b.Priority(v) != bucket.Null
		})
		if len(counts) == 0 {
			continue
		}
		ids := make([]uint32, len(counts))
		prios := make([]uint32, len(counts))
		parallel.For(len(counts), 0, func(i int) {
			v := counts[i].Key
			nd := deg[v]
			if counts[i].Count >= nd-k {
				nd = k
			} else {
				nd -= counts[i].Count
			}
			deg[v] = nd
			ids[i] = v
			prios[i] = nd
		})
		b.UpdateBatch(ids, prios)
	}
	return coreness
}

// kcoreFetchAdd is the fetch-and-add peeling round: each peeled vertex
// atomically decrements its live neighbors' degrees; vertices whose
// degree changed are collected for a bulk bucket update.
func kcoreFetchAdd(g graph.Adj, o *Options, b *bucket.Buckets, peeled []uint32, deg []uint32, k uint32) {
	touched := make([][]uint32, parallel.Workers())
	fa := graph.NewFlat(g)
	parallel.ForWorker(len(peeled), 4, func(w, i int) {
		v := peeled[i]
		dv := g.Degree(v)
		o.Env.GraphRead(w, g.EdgeAddr(v), g.ScanCost(v, 0, dv))
		nghs, _ := fa.Slice(v, 0, dv, o.scratch(w))
		for _, u := range nghs {
			if b.Priority(u) == bucket.Null {
				continue
			}
			// Decrement with a floor of k.
			for {
				old := atomic.LoadUint32(&deg[u])
				if old <= k {
					break
				}
				if atomic.CompareAndSwapUint32(&deg[u], old, old-1) {
					touched[w] = append(touched[w], u)
					break
				}
			}
			o.Env.StateWrite(w, 1)
		}
	})
	flat := parallel.FlattenUint32(touched)
	// Deduplicate before the bulk bucket move (UpdateBatch requires
	// distinct ids).
	if len(flat) == 0 {
		return
	}
	hist := parallel.HistogramInPlace(flat)
	ids := make([]uint32, len(hist))
	prios := make([]uint32, len(hist))
	parallel.For(len(hist), 0, func(i int) {
		v := hist[i].Key
		ids[i] = v
		nd := atomic.LoadUint32(&deg[v])
		if nd < k {
			nd = k
		}
		prios[i] = nd
	})
	b.UpdateBatch(ids, prios)
}

// MaxCore returns the largest k with a non-empty k-core, i.e. the maximum
// coreness (the paper reports kmax = 10565 on Hyperlink2012).
func MaxCore(coreness []uint32) uint32 {
	return parallel.ReduceMax(len(coreness), 0, uint32(0), func(i int) uint32 {
		return coreness[i]
	})
}
