package algos

import (
	"math"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// PersonalizedPageRank computes the personalized PageRank vector of a
// source vertex by power iteration with restart: ranks teleport back to
// src with probability 1-damping. The paper's applicability discussion
// (§3.2) lists personalized PageRank among the local problems that
// "naturally fit in the regular PSAM model": the iteration state is two
// O(n) DRAM vectors and the graph is only read. Returns the rank vector
// and the number of iterations until the L1 change fell below eps.
func PersonalizedPageRank(g graph.Adj, o *Options, src uint32, damping, eps float64, maxIters int) ([]float64, int) {
	n := int(g.NumVertices())
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if eps <= 0 {
		eps = 1e-8
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	prev := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	o.Env.Alloc(3 * int64(n))
	defer o.Env.Free(3 * int64(n))
	prev[src] = 1

	iters := 0
	for iters < maxIters {
		o.Checkpoint()
		parallel.For(n, 0, func(i int) {
			if d := g.Degree(uint32(i)); d > 0 {
				contrib[i] = prev[i] / float64(d)
			} else {
				contrib[i] = 0
			}
		})
		var diffs [parallel.MaxWorkers]struct {
			d float64
			_ [56]byte
		}
		parallel.ForBlocks(n, 64, func(w, lo, hi int) {
			var scanned int64
			var l1 float64
			for i := lo; i < hi; i++ {
				v := uint32(i)
				deg := g.Degree(v)
				var acc float64
				g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
					acc += contrib[u]
					return true
				})
				scanned += int64(deg)
				nv := damping * acc
				if v == src {
					nv += 1 - damping
				}
				l1 += math.Abs(nv - prev[i])
				next[i] = nv
			}
			o.Env.GraphRead(w, 0, scanned)
			o.Env.StateRead(w, scanned)
			o.Env.StateWrite(w, int64(hi-lo))
			diffs[w].d += l1
		})
		prev, next = next, prev
		iters++
		var total float64
		for i := range diffs {
			total += diffs[i].d
		}
		if total < eps {
			break
		}
	}
	return prev, iters
}
