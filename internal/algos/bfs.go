package algos

import (
	"sync/atomic"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/traverse"
)

// BFS computes a breadth-first-search tree from src, returning the parent
// array P: P[src] = src, P[v] = the BFS parent for reached v, and
// Infinity for unreachable vertices. It is the algorithm of Figure 4:
// O(m) work, O(dG log n) depth, O(n) words of small-memory (Theorem 4.2).
func BFS(g graph.Adj, o *Options, src uint32) []uint32 {
	n := g.NumVertices()
	parents := make([]uint32, n)
	parallel.Fill(parents, Infinity)
	parents[src] = src
	o.Env.Alloc(int64(n))
	defer o.Env.Free(int64(n))
	fr := frontier.Single(n, src)
	ops := traverse.Ops{
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == Infinity {
				parents[d] = s
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return parallel.CASUint32(&parents[d], Infinity, s)
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&parents[d]) == Infinity },
	}
	for !fr.IsEmpty() {
		fr = o.edgeMap(g, fr, ops, nil)
	}
	return parents
}

// BFSLevels runs BFS from src and returns (levels, roundFrontiers): the
// level of every reached vertex (Infinity if unreachable) and the ordered
// per-round frontiers. Betweenness centrality and the biconnectivity tree
// computations consume the round structure.
func BFSLevels(g graph.Adj, o *Options, srcs []uint32) ([]uint32, [][]uint32) {
	n := g.NumVertices()
	levels := make([]uint32, n)
	parallel.Fill(levels, Infinity)
	o.Env.Alloc(int64(n))
	defer o.Env.Free(int64(n))
	for _, s := range srcs {
		levels[s] = 0
	}
	fr := frontier.FromSparse(n, append([]uint32(nil), srcs...))
	var rounds [][]uint32
	round := uint32(0)
	ops := traverse.Ops{
		Update: func(_, d uint32, _ int32) bool {
			if levels[d] == Infinity {
				levels[d] = round + 1
				return true
			}
			return false
		},
		UpdateAtomic: func(_, d uint32, _ int32) bool {
			return parallel.CASUint32(&levels[d], Infinity, round+1)
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&levels[d]) == Infinity },
	}
	for !fr.IsEmpty() {
		rounds = append(rounds, append([]uint32(nil), fr.Sparse()...))
		fr = o.edgeMap(g, fr, ops, nil)
		round++
	}
	return levels, rounds
}

// BFSTree runs a (possibly multi-source) BFS recording parents and
// levels. Used by biconnectivity's spanning-tree phase.
func BFSTree(g graph.Adj, o *Options, srcs []uint32) (parents, levels []uint32, rounds int) {
	n := g.NumVertices()
	parents = make([]uint32, n)
	levels = make([]uint32, n)
	parallel.Fill(parents, Infinity)
	parallel.Fill(levels, Infinity)
	o.Env.Alloc(2 * int64(n))
	defer o.Env.Free(2 * int64(n))
	for _, s := range srcs {
		parents[s] = s
		levels[s] = 0
	}
	fr := frontier.FromSparse(n, append([]uint32(nil), srcs...))
	round := uint32(0)
	ops := traverse.Ops{
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == Infinity {
				parents[d] = s
				levels[d] = round + 1
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			if parallel.CASUint32(&parents[d], Infinity, s) {
				levels[d] = round + 1
				return true
			}
			return false
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&parents[d]) == Infinity },
	}
	for !fr.IsEmpty() {
		fr = o.edgeMap(g, fr, ops, nil)
		round++
	}
	return parents, levels, int(round)
}
