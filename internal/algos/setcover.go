package algos

import (
	"math"
	"sync/atomic"

	"sage/internal/bucket"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// BipartiteFromSets builds the set-cover instance graph: sets are
// vertices [0, len(sets)) and elements are vertices [len(sets),
// len(sets)+numElements); each set is adjacent to its elements.
func BipartiteFromSets(sets [][]uint32, numElements uint32) *graph.Graph {
	ns := uint32(len(sets))
	var edges []graph.Edge
	for s, elems := range sets {
		for _, e := range elems {
			edges = append(edges, graph.Edge{U: uint32(s), V: ns + e})
		}
	}
	return graph.FromEdges(ns+numElements, edges, graph.BuildOpts{Symmetrize: true})
}

// ApproxSetCover computes an O(log n)-approximate set cover with the
// bucketing-based MaNIS algorithm of Julienne/GBBS (§4.3.3): sets are
// bucketed by ⌊log_{1+ε} degree⌋ in decreasing order; popping the top
// bucket lazily re-packs each set's uncovered elements through the graph
// filter; sets still in the degree class compete for their elements with
// priority-writes, and a set enters the cover when it wins at least a
// 1/(1+ε) fraction of its class threshold. The filter replaces GBBS's
// in-place adjacency packing, so the NVRAM graph is never written.
// O(m) expected work, O(log³ n) depth whp, O(n + m/64) words.
//
// The graph must be the bipartite layout of BipartiteFromSets; numSets
// is the number of set vertices. The result lists the chosen sets.
func ApproxSetCover(g graph.Adj, o *Options, numSets uint32) []uint32 {
	n := g.NumVertices()
	eps := o.Eps
	if eps <= 0 {
		eps = 0.05
	}
	logBase := math.Log(1 + eps)
	bucketOf := func(d uint32) uint32 {
		if d == 0 {
			return bucket.Null
		}
		return uint32(math.Log(float64(d)) / logBase)
	}
	classFloor := func(t uint32) int64 {
		return int64(math.Ceil(math.Pow(1+eps, float64(t))))
	}

	covered := make([]bool, n) // indexed by element vertex id
	owner := make([]uint64, n)
	o.Env.Alloc(2 * int64(n))
	defer o.Env.Free(2 * int64(n))

	f := o.newFilter(g)

	prio := make([]uint32, n)
	parallel.For(int(n), 0, func(i int) {
		if uint32(i) < numSets {
			prio[i] = bucketOf(g.Degree(uint32(i)))
		} else {
			prio[i] = bucket.Null
		}
	})
	b := bucket.New(prio, bucket.Decreasing)

	var cover []uint32
	for {
		o.Checkpoint()
		t, sets, ok := b.NextBucket()
		if !ok {
			break
		}
		// Lazy degree maintenance: pack away covered elements.
		newDeg := make([]uint32, len(sets))
		parallel.ForWorker(len(sets), 1, func(w, i int) {
			d, _ := f.PackVertex(w, sets[i], func(_, e uint32) bool { return !covered[e] })
			newDeg[i] = d
		})
		floor := classFloor(t)
		competing := parallel.FilterIndex(sets, func(i int, _ uint32) bool {
			return int64(newDeg[i]) >= floor
		})
		// Degraded sets re-enter at their true bucket.
		degraded := parallel.FilterIndex(sets, func(i int, _ uint32) bool {
			return int64(newDeg[i]) < floor && newDeg[i] > 0
		})
		if len(degraded) > 0 {
			prios := make([]uint32, len(degraded))
			parallel.For(len(degraded), 0, func(i int) {
				prios[i] = bucketOf(f.Degree(degraded[i]))
			})
			b.UpdateBatch(degraded, prios)
		}
		if len(competing) == 0 {
			continue
		}
		// Competition: priority-writes on elements. The minimum-priority
		// competing set always wins all its elements, so every round makes
		// progress.
		parallel.ForWorker(len(competing), 1, func(w, i int) {
			s := competing[i]
			p := hash64(uint64(s), o.Seed) | 1
			f.IterActive(w, s, func(e uint32) bool {
				writeMinU64(&owner[e], p)
				o.Env.StateWrite(w, 1)
				return true
			})
		})
		won := make([]uint32, len(competing))
		parallel.ForWorker(len(competing), 1, func(w, i int) {
			s := competing[i]
			p := hash64(uint64(s), o.Seed) | 1
			var cnt uint32
			f.IterActive(w, s, func(e uint32) bool {
				if atomic.LoadUint64(&owner[e]) == p {
					cnt++
				}
				return true
			})
			won[i] = cnt
		})
		winThreshold := float64(floor) / (1 + eps)
		var reinsert []uint32
		var reinsertPrio []uint32
		for i, s := range competing {
			if float64(won[i]) >= winThreshold {
				cover = append(cover, s)
			} else {
				reinsert = append(reinsert, s)
			}
		}
		// Winners cover the elements they own.
		parallel.ForWorker(len(competing), 1, func(w, i int) {
			s := competing[i]
			if float64(won[i]) < winThreshold {
				return
			}
			p := hash64(uint64(s), o.Seed) | 1
			f.IterActive(w, s, func(e uint32) bool {
				if atomic.LoadUint64(&owner[e]) == p {
					covered[e] = true
				}
				return true
			})
		})
		// Reset ownership for the next round.
		parallel.ForWorker(len(competing), 1, func(w, i int) {
			f.IterActive(w, competing[i], func(e uint32) bool {
				atomic.StoreUint64(&owner[e], 0)
				return true
			})
		})
		if len(reinsert) > 0 {
			reinsertPrio = make([]uint32, len(reinsert))
			parallel.ForWorker(len(reinsert), 1, func(w, i int) {
				d, _ := f.PackVertex(w, reinsert[i], func(_, e uint32) bool { return !covered[e] })
				reinsertPrio[i] = bucketOf(d)
			})
			b.UpdateBatch(reinsert, reinsertPrio)
		}
	}
	return cover
}
