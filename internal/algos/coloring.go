package algos

import (
	"sync/atomic"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// Coloring computes a (Δ+1)-coloring with the Jones–Plassmann algorithm
// under the largest-degree-first (LF) priority order that GBBS uses
// (§4.3.3): a vertex is colored once all higher-priority neighbors are
// colored, receiving the smallest color absent among its colored
// neighbors. The result equals the serial greedy coloring over the
// priority order. O(m) expected work, O(log n + L·log Δ) depth, O(n)
// words of small-memory.
func Coloring(g graph.Adj, o *Options) []uint32 {
	n := g.NumVertices()
	const uncolored = Infinity
	prio := parallel.Tabulate(int(n), func(i int) uint64 {
		// Larger degree first; ties broken by hashed id.
		return uint64(^g.Degree(uint32(i)))<<32 | (hash64(uint64(i), o.Seed) >> 32)
	})
	earlier := func(a, b uint32) bool {
		if prio[a] != prio[b] {
			return prio[a] < prio[b]
		}
		return a < b
	}

	color := make([]uint32, n)
	parallel.Fill(color, uncolored)
	count := make([]int32, n)
	o.Env.Alloc(5 * int64(n))
	defer o.Env.Free(5 * int64(n))

	parallel.ForBlocks(int(n), 64, func(w, lo, hi int) {
		var scanned int64
		for i := lo; i < hi; i++ {
			v := uint32(i)
			var c int32
			deg := g.Degree(v)
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if earlier(u, v) {
					c++
				}
				return true
			})
			scanned += int64(deg)
			count[i] = c
		}
		o.Env.GraphRead(w, 0, scanned)
	})

	roots := parallel.PackIndex(int(n), func(i int) bool { return count[i] == 0 })
	for len(roots) > 0 {
		o.Checkpoint()
		nextCand := make([][]uint32, parallel.Workers())
		parallel.ForWorker(len(roots), 4, func(w, i int) {
			v := roots[i]
			deg := g.Degree(v)
			o.Env.GraphRead(w, g.EdgeAddr(v), 2*g.ScanCost(v, 0, deg))
			// Smallest color not used by colored neighbors: a local
			// palette of deg+1 booleans suffices.
			palette := make([]bool, deg+1)
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if c := atomic.LoadUint32(&color[u]); c <= deg {
					palette[c] = true
				}
				return true
			})
			c := uint32(0)
			for c <= deg && palette[c] {
				c++
			}
			atomic.StoreUint32(&color[v], c)
			o.Env.StateWrite(w, int64(deg)+2)
			// Release later neighbors.
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if earlier(v, u) && parallel.FetchAddInt32(&count[u], -1) == 0 {
					nextCand[w] = append(nextCand[w], u)
				}
				return true
			})
		})
		roots = parallel.FlattenUint32(nextCand)
	}
	return color
}
