package algos

import (
	"sage/internal/graph"
	"sage/internal/parallel"
)

// DensestResult reports the approximate densest subgraph: its density
// |E(S)|/|S|, the member flags, and the number of peeling rounds.
type DensestResult struct {
	Density float64
	InSub   []bool
	Rounds  int
}

// ApproxDensestSubgraph computes a 2(1+ε)-approximate densest subgraph
// with Bahmani-style parallel peeling (§4.3.4, with ε = 0.001 matching
// Charikar's 2-approximation in the paper's runs): repeatedly remove all
// vertices of induced degree at most 2(1+ε)·ρ(current), aggregating degree
// losses with the same histogram primitive as k-core (dense variant
// included); the densest prefix over all rounds is returned. O(m) work,
// O(log² n / ε) depth, O(n) words of small-memory.
func ApproxDensestSubgraph(g graph.Adj, o *Options) *DensestResult {
	n := int64(g.NumVertices())
	eps := o.Eps
	if eps <= 0 {
		eps = 0.05
	}
	deg := parallel.Tabulate(int(n), func(i int) uint32 { return g.Degree(uint32(i)) })
	alive := make([]bool, n)
	parallel.Fill(alive, true)
	removedRound := make([]int32, n)
	parallel.Fill(removedRound, -1)
	o.Env.Alloc(3 * n)
	defer o.Env.Free(3 * n)

	liveN := n
	liveArcs := int64(g.NumEdges())
	bestDensity := 0.0
	bestRound := int32(-1) // vertices removed at round <= bestRound are outside
	round := int32(0)

	for liveN > 0 {
		o.Checkpoint()
		density := float64(liveArcs) / 2 / float64(liveN)
		if density > bestDensity {
			bestDensity = density
			bestRound = round - 1
		}
		threshold := 2 * (1 + eps) * density
		peel := parallel.PackIndex(int(n), func(i int) bool {
			return alive[i] && float64(deg[i]) <= threshold
		})
		if len(peel) == 0 {
			// Cannot happen for positive thresholds (the average degree is
			// 2·density), but guard against float corner cases.
			break
		}
		parallel.For(len(peel), 0, func(i int) {
			alive[peel[i]] = false
			removedRound[peel[i]] = round
		})
		var lost int64
		counts := neighborCounts(g, o, peel, func(v uint32) bool { return alive[v] })
		parallel.For(len(counts), 0, func(i int) {
			deg[counts[i].Key] -= counts[i].Count
		})
		lost = parallel.ReduceSum(len(counts), 0, func(i int) int64 {
			return int64(counts[i].Count)
		})
		// Arcs removed: arcs between peeled and surviving vertices count
		// twice (both directions), arcs inside the peeled set too; total
		// arcs lost = Σ deg(peeled) measured before removal.
		peeledDeg := parallel.ReduceSum(len(peel), 0, func(i int) int64 {
			return int64(deg[peel[i]])
		})
		liveArcs -= peeledDeg + lost
		liveN -= int64(len(peel))
		round++
	}
	inSub := parallel.Tabulate(int(n), func(i int) bool {
		return removedRound[i] < 0 || removedRound[i] > bestRound
	})
	return &DensestResult{Density: bestDensity, InSub: inSub, Rounds: int(round)}
}
