package algos

import (
	"sage/internal/gfilter"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// KCliqueCount counts k-cliques (k >= 3). The paper's applicability
// discussion (§3.2) singles this problem out as a natural PSAM extension
// of the filtering technique: edges are oriented from lower to higher
// rank through the graph filter exactly as in triangle counting, and
// cliques are enumerated by recursively intersecting out-neighborhoods
// within the resulting DAG. Mutable state is the filter plus O(k·Δ)
// words of per-worker candidate buffers — no NVRAM writes.
// KCliqueCount(g, o, 3) equals TriangleCount(g, o).Count.
func KCliqueCount(g graph.Adj, o *Options, k int) int64 {
	o.Checkpoint()
	if k < 3 {
		panic("algos: KCliqueCount requires k >= 3")
	}
	rankLess := func(a, b uint32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	f := o.newFilter(g)
	f.FilterEdges(func(u, v uint32) bool { return rankLess(u, v) })

	n := int(g.NumVertices())
	shards := make([]cliqueShard, parallel.MaxWorkers)
	for i := range shards {
		shards[i].levels = make([][]uint32, k)
	}
	parallel.ForWorker(n, 1, func(w, i int) {
		sh := &shards[w]
		v := uint32(i)
		if f.Degree(v) == 0 {
			return
		}
		sh.levels[0] = f.ActiveList(w, v, sh.levels[0], &sh.stats)
		sh.count += sh.extend(o, f, w, 1, k-1)
	})
	// The workers bail out early on cancellation (they cannot panic off
	// their own goroutines); surface it here before totals are trusted.
	o.Checkpoint()
	var total int64
	for i := range shards {
		total += shards[i].count
	}
	return total
}

// cliqueShard is the per-worker recursion state: levels[d] holds the
// candidate set (vertices completing the current partial clique) at
// recursion depth d.
type cliqueShard struct {
	count  int64
	stats  gfilter.IntersectStats
	levels [][]uint32
	nghs   []uint32
	_      [16]byte
}

// extend counts cliques completed by choosing `remaining` more vertices
// from levels[depth-1], intersecting with each candidate's
// out-neighborhood in turn.
func (sh *cliqueShard) extend(o *Options, f EdgeFilter, worker, depth, remaining int) int64 {
	cands := sh.levels[depth-1]
	if remaining == 1 {
		return int64(len(cands))
	}
	var total int64
	for _, u := range cands {
		// Workers poll without panicking; KCliqueCount checkpoints after
		// the sweep, so a partial count never escapes.
		if o.Env != nil && o.Env.Ctx != nil && o.Env.Ctx.Err() != nil {
			return total
		}
		if f.Degree(u) == 0 {
			continue
		}
		sh.nghs = f.ActiveList(worker, u, sh.nghs, &sh.stats)
		next := sh.levels[depth][:0]
		next = intersectInto(next, cands, sh.nghs, &sh.stats)
		sh.levels[depth] = next
		if len(next) >= remaining-1 {
			total += sh.extend(o, f, worker, depth+1, remaining-1)
		}
	}
	return total
}

// intersectInto appends the intersection of the two sorted lists to dst.
func intersectInto(dst, a, b []uint32, stats *gfilter.IntersectStats) []uint32 {
	i, j := 0, 0
	var steps int64
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	if stats != nil {
		stats.MergeSteps += steps
	}
	return dst
}
