package algos

import (
	"math"
	"testing"

	"sage/internal/compress"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/psam"
	"sage/internal/refalgo"
	"sage/internal/traverse"
)

// battery is the shared set of structurally diverse test graphs.
func battery() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat":  gen.RMAT(9, 10, 1),
		"er":    gen.ErdosRenyi(600, 2500, 2),
		"plaw":  gen.PowerLaw(800, 4, 3),
		"grid":  gen.Grid2D(25, 25, false),
		"star":  gen.Star(300),
		"chain": gen.Chain(200),
		"cycle": gen.Cycle(150),
		"two-comp": graph.FromEdges(8, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 4, V: 5}, {U: 5, V: 6},
		}, graph.BuildOpts{Symmetrize: true}),
	}
}

func opts() *Options { return Defaults() }

func optsEnv() *Options {
	return Defaults().WithEnv(psam.NewEnv(psam.AppDirect))
}

func TestBFSDistancesMatchSerial(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.BFSDistances(g, 0)
		parents := BFS(g, opts(), 0)
		// Parent array -> distances by walking up.
		for v := uint32(0); v < g.NumVertices(); v++ {
			if (parents[v] == Infinity) != (want[v] == Infinity) {
				t.Fatalf("%s: reachability mismatch at %d", name, v)
			}
			if parents[v] == Infinity || v == 0 {
				continue
			}
			// Parent must be exactly one hop closer.
			if want[parents[v]]+1 != want[v] {
				t.Fatalf("%s: parent of %d (dist %d) is %d (dist %d)",
					name, v, want[v], parents[v], want[parents[v]])
			}
			if !g.HasEdge(parents[v], v) {
				t.Fatalf("%s: parent edge missing", name)
			}
		}
	}
}

func TestBFSAllStrategies(t *testing.T) {
	g := gen.RMAT(9, 10, 4)
	want := refalgo.BFSDistances(g, 0)
	for _, strat := range []traverse.Strategy{traverse.Chunked, traverse.Blocked, traverse.Sparse} {
		o := opts()
		o.Traverse.Strategy = strat
		parents := BFS(g, o, 0)
		for v := uint32(0); v < g.NumVertices(); v++ {
			if (parents[v] == Infinity) != (want[v] == ^uint32(0)) {
				t.Fatalf("strategy %v: mismatch at %d", strat, v)
			}
		}
	}
}

func TestBFSOnCompressedGraph(t *testing.T) {
	g := gen.RMAT(9, 10, 5)
	cg := compress.Compress(g, 64)
	want := refalgo.BFSDistances(g, 0)
	parents := BFS(cg, opts(), 0)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if (parents[v] == Infinity) != (want[v] == ^uint32(0)) {
			t.Fatalf("compressed BFS mismatch at %d", v)
		}
	}
}

func TestWBFSMatchesDijkstra(t *testing.T) {
	for name, g := range battery() {
		wg := gen.AddUniformWeights(g, 7)
		want := refalgo.Dijkstra(wg, 0)
		got := WBFS(wg, opts(), 0)
		for v := uint32(0); v < wg.NumVertices(); v++ {
			w := want[v]
			if w == math.MaxInt64 {
				if got[v] != Infinity {
					t.Fatalf("%s: %d should be unreachable, got %d", name, v, got[v])
				}
				continue
			}
			if int64(got[v]) != w {
				t.Fatalf("%s: dist[%d]=%d want %d", name, v, got[v], w)
			}
		}
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	for name, g := range battery() {
		wg := gen.AddUniformWeights(g, 9)
		want := refalgo.Dijkstra(wg, 0)
		got := BellmanFord(wg, opts(), 0)
		for v := uint32(0); v < wg.NumVertices(); v++ {
			if want[v] == math.MaxInt64 {
				if got[v] != InfDist {
					t.Fatalf("%s: %d reachable?", name, v)
				}
				continue
			}
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestWidestPathBothVariants(t *testing.T) {
	for name, g := range battery() {
		wg := gen.AddUniformWeights(g, 13)
		want := refalgo.WidestPath(wg, 0)
		for variant, run := range map[string]func() []int64{
			"bellman-ford": func() []int64 { return WidestPath(wg, opts(), 0) },
			"bucketed":     func() []int64 { return WidestPathBucketed(wg, opts(), 0) },
		} {
			got := run()
			for v := uint32(0); v < wg.NumVertices(); v++ {
				switch {
				case want[v] == math.MinInt64:
					if got[v] != NegInf {
						t.Fatalf("%s/%s: %d should be unreachable", name, variant, v)
					}
				case want[v] == math.MaxInt64:
					if got[v] != InfDist {
						t.Fatalf("%s/%s: src width wrong", name, variant)
					}
				default:
					if got[v] != want[v] {
						t.Fatalf("%s/%s: width[%d]=%d want %d", name, variant, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestBetweennessMatchesBrandes(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.Betweenness(g, 0)
		got := Betweenness(g, opts(), 0)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
				t.Fatalf("%s: delta[%d]=%v want %v", name, v, got[v], want[v])
			}
		}
	}
}

func TestLDDIsValidPartition(t *testing.T) {
	g := gen.RMAT(10, 12, 8)
	res := LDD(g, opts(), 0.2, 42)
	n := g.NumVertices()
	for v := uint32(0); v < n; v++ {
		c := res.Cluster[v]
		if c == Infinity {
			t.Fatalf("vertex %d unclustered", v)
		}
		if res.Cluster[c] != c {
			t.Fatalf("center %d not in own cluster", c)
		}
		// Parents chain toward the center within the cluster.
		p := res.Parent[v]
		if p == Infinity {
			t.Fatalf("vertex %d has no parent", v)
		}
		if v != c {
			if res.Cluster[p] != c {
				t.Fatalf("parent of %d in different cluster", v)
			}
			if p != c && !g.HasEdge(p, v) {
				t.Fatalf("parent edge (%d,%d) missing", p, v)
			}
		}
	}
}

func TestLDDInterClusterBound(t *testing.T) {
	// With beta=0.2 the expected inter-cluster fraction is well under
	// beta*m on real graphs (§5.3); assert a loose 2*beta*m bound.
	g := gen.RMAT(11, 16, 4)
	o := opts()
	res := LDD(g, o, 0.2, 7)
	inter := CountInterCluster(g, o, res.Cluster)
	if inter > int64(float64(g.NumEdges())*0.4) {
		t.Fatalf("inter-cluster arcs %d of %d", inter, g.NumEdges())
	}
}

func TestConnectivityMatchesUnionFind(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.Components(g, 0)
		got := Connectivity(g, opts())
		if !refalgo.SameComponents(want, got) {
			t.Fatalf("%s: component partition differs", name)
		}
	}
}

func TestConnectivityOnCompressed(t *testing.T) {
	g := gen.RMAT(9, 10, 11)
	cg := compress.Compress(g, 64)
	want := refalgo.Components(g, 0)
	got := Connectivity(cg, opts())
	if !refalgo.SameComponents(want, got) {
		t.Fatal("compressed connectivity differs")
	}
}

func TestSpanningForest(t *testing.T) {
	for name, g := range battery() {
		forest := SpanningForest(g, opts())
		comps := refalgo.Components(g, 0)
		distinct := map[uint32]bool{}
		for _, c := range comps {
			distinct[c] = true
		}
		wantEdges := int(g.NumVertices()) - len(distinct)
		if len(forest) != wantEdges {
			t.Fatalf("%s: forest has %d edges, want %d", name, len(forest), wantEdges)
		}
		// Acyclic and edges exist in G: union-find over forest edges.
		parent := make([]uint32, g.NumVertices())
		for i := range parent {
			parent[i] = uint32(i)
		}
		var find func(x uint32) uint32
		find = func(x uint32) uint32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range forest {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("%s: forest edge (%d,%d) not in graph", name, e.U, e.V)
			}
			a, b := find(e.U), find(e.V)
			if a == b {
				t.Fatalf("%s: forest has a cycle through (%d,%d)", name, e.U, e.V)
			}
			parent[a] = b
		}
	}
}

func TestSpannerStretch(t *testing.T) {
	g := gen.RMAT(9, 10, 21)
	k := int(math.Ceil(math.Log2(float64(g.NumVertices()))))
	edges := Spanner(g, opts(), k)
	// Spanner must be a subgraph.
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("spanner edge (%d,%d) not in G", e.U, e.V)
		}
	}
	// Size O(n) for k = log n: allow a generous constant.
	if int64(len(edges)) > 8*int64(g.NumVertices()) {
		t.Fatalf("spanner too large: %d edges for n=%d", len(edges), g.NumVertices())
	}
	// Stretch: BFS distances in H within O(k) of G for sampled sources.
	h := graph.FromEdges(g.NumVertices(), edges, graph.BuildOpts{Symmetrize: true})
	for _, src := range []uint32{0, 5, 77} {
		dg := refalgo.BFSDistances(g, src)
		dh := refalgo.BFSDistances(h, src)
		for v := uint32(0); v < g.NumVertices(); v++ {
			if dg[v] == ^uint32(0) {
				continue
			}
			if dh[v] == ^uint32(0) {
				t.Fatalf("spanner disconnected %d from %d", v, src)
			}
			if int(dh[v]) > 8*k*int(dg[v])+8*k {
				t.Fatalf("stretch too large at %d: %d vs %d (k=%d)", v, dh[v], dg[v], k)
			}
		}
	}
}

func TestBiconnectivityMatchesTarjan(t *testing.T) {
	graphs := battery()
	// Classic articulation cases: two triangles sharing a vertex, and a
	// bridge between two cycles.
	graphs["bowtie"] = graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
	}, graph.BuildOpts{Symmetrize: true})
	graphs["bridge"] = graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	}, graph.BuildOpts{Symmetrize: true})
	for name, g := range graphs {
		want := refalgo.Biconnected(g)
		res := Biconnectivity(g, opts())
		got := map[[2]uint32]uint32{}
		for v := uint32(0); v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if v < u {
					got[[2]uint32{v, u}] = res.EdgeLabel(v, u)
				}
			}
		}
		if !refalgo.SamePartition(want, got) {
			t.Fatalf("%s: biconnected partitions differ", name)
		}
	}
}

func TestMISValidAndMaximal(t *testing.T) {
	for name, g := range battery() {
		in := MIS(g, opts())
		for v := uint32(0); v < g.NumVertices(); v++ {
			if in[v] {
				for _, u := range g.Neighbors(v) {
					if in[u] {
						t.Fatalf("%s: adjacent MIS members %d,%d", name, v, u)
					}
				}
			} else {
				hasIn := false
				for _, u := range g.Neighbors(v) {
					if in[u] {
						hasIn = true
						break
					}
				}
				if !hasIn && g.Degree(v) >= 0 {
					t.Fatalf("%s: %d excluded but no MIS neighbor", name, v)
				}
			}
		}
	}
}

func TestMISDeterministic(t *testing.T) {
	g := gen.RMAT(9, 10, 6)
	a := MIS(g, opts())
	b := MIS(g, opts())
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("MIS nondeterministic for fixed seed")
		}
	}
}

func TestMaximalMatchingValid(t *testing.T) {
	for name, g := range battery() {
		match := MaximalMatching(g, opts())
		used := make([]bool, g.NumVertices())
		for _, e := range match {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("%s: matched edge (%d,%d) not in G", name, e.U, e.V)
			}
			if used[e.U] || used[e.V] {
				t.Fatalf("%s: vertex reused in matching", name)
			}
			used[e.U], used[e.V] = true, true
		}
		// Maximality: every edge has a matched endpoint.
		for v := uint32(0); v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if !used[v] && !used[u] {
					t.Fatalf("%s: edge (%d,%d) unmatched and free", name, v, u)
				}
			}
		}
	}
}

func TestColoringValid(t *testing.T) {
	for name, g := range battery() {
		colors := Coloring(g, opts())
		maxDeg := g.MaxDegree()
		for v := uint32(0); v < g.NumVertices(); v++ {
			if colors[v] > maxDeg {
				t.Fatalf("%s: color %d exceeds Δ=%d", name, colors[v], maxDeg)
			}
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] {
					t.Fatalf("%s: edge (%d,%d) monochromatic", name, v, u)
				}
			}
		}
	}
}

func TestKCoreMatchesSerial(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.Coreness(g)
		for _, fetchAdd := range []bool{false, true} {
			o := opts()
			o.KCoreFetchAdd = fetchAdd
			got := KCore(g, o)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s (fetchAdd=%v): core[%d]=%d want %d",
						name, fetchAdd, v, got[v], want[v])
				}
			}
		}
	}
}

func TestKCoreOnCompressed(t *testing.T) {
	g := gen.RMAT(9, 10, 31)
	cg := compress.Compress(g, 64)
	want := refalgo.Coreness(g)
	got := KCore(cg, opts())
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("compressed kcore mismatch at %d", v)
		}
	}
}

func TestDensestSubgraphApproximation(t *testing.T) {
	for name, g := range battery() {
		if g.NumEdges() == 0 {
			continue
		}
		opt := refalgo.MaxDensity(g) // >= OPT/2 certificate
		o := opts()
		o.Eps = 0.05
		res := ApproxDensestSubgraph(g, o)
		// res.Density must be a real density and within 2(1+eps) of the
		// peeling certificate (which itself is within 2 of OPT).
		if res.Density < opt/(2*(1+o.Eps))-1e-9 {
			t.Fatalf("%s: density %.4f below bound (certificate %.4f)", name, res.Density, opt)
		}
		// Verify the reported subgraph really has the reported density.
		var inN, inArcs int64
		for v := uint32(0); v < g.NumVertices(); v++ {
			if !res.InSub[v] {
				continue
			}
			inN++
			for _, u := range g.Neighbors(v) {
				if res.InSub[u] {
					inArcs++
				}
			}
		}
		if inN == 0 {
			t.Fatalf("%s: empty densest subgraph", name)
		}
		gotDensity := float64(inArcs) / 2 / float64(inN)
		if math.Abs(gotDensity-res.Density) > 1e-9 {
			t.Fatalf("%s: reported density %.6f but subgraph has %.6f", name, res.Density, gotDensity)
		}
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.Triangles(g)
		res := TriangleCount(g, opts())
		if res.Count != want {
			t.Fatalf("%s: count %d want %d", name, res.Count, want)
		}
	}
}

func TestTriangleCountCompressedBlockSizes(t *testing.T) {
	g := gen.RMAT(9, 12, 17)
	want := refalgo.Triangles(g)
	var prevTotal int64
	for _, bs := range []int{64, 128, 256} {
		cg := compress.Compress(g, bs)
		o := opts()
		o.FB = bs
		res := TriangleCount(cg, o)
		if res.Count != want {
			t.Fatalf("bs=%d: count %d want %d", bs, res.Count, want)
		}
		// Table 4: total (decode) work grows with the block size, while
		// intersection work is invariant.
		if prevTotal != 0 && res.TotalWork < prevTotal {
			t.Fatalf("bs=%d: total work %d decreased from %d", bs, res.TotalWork, prevTotal)
		}
		prevTotal = res.TotalWork
	}
}

func TestPageRankMatchesSerial(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.PageRank(g, 1e-10, 100)
		got, _ := PageRank(g, opts(), 1e-10, 100)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-8 {
				t.Fatalf("%s: pr[%d]=%v want %v", name, v, got[v], want[v])
			}
		}
	}
}

func TestPageRankIterSumsPreserved(t *testing.T) {
	g := gen.RMAT(9, 10, 2)
	n := int(g.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	for i := range prev {
		prev[i] = 1 / float64(n)
	}
	PageRankIter(g, opts(), prev, next)
	var sum float64
	for _, v := range next {
		sum += v
	}
	// Mass is preserved up to dangling-vertex leakage.
	if sum <= 0 || sum > 1.0+1e-9 {
		t.Fatalf("mass %v", sum)
	}
}

func TestApproxSetCoverValid(t *testing.T) {
	// Random instances plus the classic greedy-adversarial instance.
	instances := map[string]struct {
		sets  [][]uint32
		elems uint32
	}{
		"random": randomSetCover(40, 200, 8, 5),
		"nested": {
			sets: [][]uint32{
				{0, 1, 2, 3, 4, 5, 6, 7},
				{0, 1, 2, 3}, {4, 5, 6, 7},
				{0, 2, 4, 6}, {1, 3, 5, 7},
			},
			elems: 8,
		},
	}
	for name, inst := range instances {
		g := BipartiteFromSets(inst.sets, inst.elems)
		ns := uint32(len(inst.sets))
		cover := ApproxSetCover(g, opts(), ns)
		covered := make([]bool, inst.elems)
		for _, s := range cover {
			if s >= ns {
				t.Fatalf("%s: cover includes non-set %d", name, s)
			}
			for _, e := range inst.sets[s] {
				covered[e] = true
			}
		}
		// Every coverable element must be covered.
		coverable := make([]bool, inst.elems)
		for _, set := range inst.sets {
			for _, e := range set {
				coverable[e] = true
			}
		}
		for e := range covered {
			if coverable[e] && !covered[e] {
				t.Fatalf("%s: element %d uncovered", name, e)
			}
		}
		// Size within a generous factor of greedy.
		greedy := refalgo.GreedySetCover(g, ns)
		if len(greedy) > 0 && len(cover) > 8*len(greedy)+4 {
			t.Fatalf("%s: cover size %d vs greedy %d", name, len(cover), len(greedy))
		}
	}
}

func randomSetCover(numSets, numElems, maxSetSize int, seed uint64) struct {
	sets  [][]uint32
	elems uint32
} {
	sets := make([][]uint32, numSets)
	state := seed
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for s := range sets {
		sz := 1 + next(maxSetSize)
		seen := map[uint32]bool{}
		for i := 0; i < sz; i++ {
			e := uint32(next(numElems))
			if !seen[e] {
				seen[e] = true
				sets[s] = append(sets[s], e)
			}
		}
	}
	return struct {
		sets  [][]uint32
		elems uint32
	}{sets, uint32(numElems)}
}

func TestSageNeverWritesNVRAM(t *testing.T) {
	// The central discipline: every Sage algorithm leaves the NVRAM write
	// counter at zero in AppDirect mode.
	g := gen.RMAT(9, 10, 3)
	wg := gen.AddUniformWeights(g, 5)
	runs := map[string]func(o *Options){
		"bfs":          func(o *Options) { BFS(g, o, 0) },
		"wbfs":         func(o *Options) { WBFS(wg, o, 0) },
		"bellman-ford": func(o *Options) { BellmanFord(wg, o, 0) },
		"widest":       func(o *Options) { WidestPath(wg, o, 0) },
		"betweenness":  func(o *Options) { Betweenness(g, o, 0) },
		"spanner":      func(o *Options) { Spanner(g, o, 0) },
		"ldd":          func(o *Options) { LDD(g, o, 0.2, 1) },
		"connectivity": func(o *Options) { Connectivity(g, o) },
		"forest":       func(o *Options) { SpanningForest(g, o) },
		"biconn":       func(o *Options) { Biconnectivity(g, o) },
		"mis":          func(o *Options) { MIS(g, o) },
		"matching":     func(o *Options) { MaximalMatching(g, o) },
		"coloring":     func(o *Options) { Coloring(g, o) },
		"kcore":        func(o *Options) { KCore(g, o) },
		"densest":      func(o *Options) { ApproxDensestSubgraph(g, o) },
		"triangles":    func(o *Options) { TriangleCount(g, o) },
		"pagerank":     func(o *Options) { PageRank(g, o, 1e-6, 10) },
	}
	for name, run := range runs {
		o := optsEnv()
		run(o)
		tot := o.Env.Totals()
		if tot.NVRAMWrites != 0 {
			t.Fatalf("%s wrote %d words to NVRAM", name, tot.NVRAMWrites)
		}
		if tot.NVRAMReads == 0 {
			t.Fatalf("%s charged no NVRAM reads", name)
		}
	}
}
