package algos

import (
	"fmt"

	"sage/internal/costmodel"
	"sage/internal/graph"
)

// This file is the single algorithm registry: every runnable problem is
// described once — name, parameter schema, and an invoker — and every
// dispatcher in the repository (the public sage.Algorithms API, the
// sage-run CLI, and the experiment harness's Figure 1 suite) is derived
// from it, instead of each maintaining its own switch.

// ArgKind is the type of one algorithm parameter.
type ArgKind int

const (
	// ArgVertex is a vertex id (bound to Args.Src or Args.NumSets).
	ArgVertex ArgKind = iota
	// ArgInt is an integer parameter.
	ArgInt
	// ArgFloat is a floating-point parameter.
	ArgFloat
)

// String names the kind for listings.
func (k ArgKind) String() string {
	switch k {
	case ArgVertex:
		return "vertex"
	case ArgInt:
		return "int"
	case ArgFloat:
		return "float"
	}
	return "unknown"
}

// ArgSpec describes one parameter of an algorithm beyond the graph.
type ArgSpec struct {
	// Name identifies the Args field the parameter binds to: one of
	// "src", "k", "eps", "maxiters", "beta", "damping", "numsets",
	// "maxsize".
	Name string
	Kind ArgKind
	// Default is the value used when the Args field is zero.
	Default float64
	Doc     string
}

// Args carries the per-call parameters of a registry invocation beyond
// the graph. Zero values select each algorithm's documented default.
type Args struct {
	Src      uint32
	K        int
	Eps      float64
	MaxIters int
	Beta     float64
	Damping  float64
	NumSets  uint32
	MaxSize  int
}

// epsOr, itersOr, betaOr, dampingOr resolve zero-valued parameters to an
// algorithm's default.
func (a Args) epsOr(def float64) float64 {
	if a.Eps == 0 {
		return def
	}
	return a.Eps
}

func (a Args) itersOr(def int) int {
	if a.MaxIters == 0 {
		return def
	}
	return a.MaxIters
}

func (a Args) betaOr(def float64) float64 {
	if a.Beta == 0 {
		return def
	}
	return a.Beta
}

func (a Args) dampingOr(def float64) float64 {
	if a.Damping == 0 {
		return def
	}
	return a.Damping
}

// Result is one registry invocation's outcome: the algorithm's raw
// output plus a one-line human-readable summary (what sage-run prints).
type Result struct {
	Value   any
	Summary string
}

// Spec describes one algorithm to the dispatchers.
type Spec struct {
	// Name is the canonical CLI key ("bfs", "kcore", ...).
	Name string
	// Title is the display name used in the paper's figures ("BFS",
	// "k-Core", ...).
	Title string
	Doc   string
	// Weighted algorithms are benchmarked on the weighted workload
	// variant (on unweighted inputs all edges count as weight 1).
	Weighted bool
	// SetCover algorithms run on the bipartite set-cover instance and
	// require Args.NumSets.
	SetCover bool
	// Fig1 marks the 19 problems of the paper's Figure 1 suite, in
	// registry order — the harness derives its problem list from them.
	Fig1 bool
	// Args is the parameter schema (beyond the graph).
	Args []ArgSpec
	// Validate, when non-nil, rejects argument combinations Run would
	// panic on; dispatchers call it before Run and surface the error.
	Validate func(a Args) error
	// DRAMWords, when non-nil, estimates the peak small-memory residency
	// of one run on an n-vertex, m-arc graph in words. Nil selects the
	// O(n) default of Table 1; only the problems whose state is
	// edge-proportional (triangle counting's oriented DAG, k-clique,
	// k-truss's Θ(m)-word output) declare their own. Serving layers use
	// the estimate for admission budgeting.
	DRAMWords func(n, m uint64) int64
	// CostClass buckets the algorithm's memory-traffic shape for pre-run
	// cost prediction (costmodel.EstimateOps). The zero value — Traversal,
	// one streamed pass over the edge set — fits most of the Figure 1
	// suite; only the fixpoint, edge-state, and local problems declare
	// otherwise.
	CostClass costmodel.Class
	// Run invokes the algorithm under o and returns its result.
	Run func(g graph.Adj, o *Options, a Args) Result
}

// Canonical normalizes a for s: parameters outside s's schema are zeroed
// and zero-valued schema parameters are replaced by their documented
// defaults. Two argument sets that select the same computation therefore
// canonicalize to equal Args — the property result caches key on.
func (s Spec) Canonical(a Args) Args {
	var out Args
	for _, p := range s.Args {
		switch p.Name {
		case "src":
			out.Src = a.Src
		case "k":
			out.K = a.K
			if out.K == 0 {
				out.K = int(p.Default)
			}
		case "eps":
			out.Eps = a.epsOr(p.Default)
		case "maxiters":
			out.MaxIters = a.itersOr(int(p.Default))
		case "beta":
			out.Beta = a.betaOr(p.Default)
		case "damping":
			out.Damping = a.dampingOr(p.Default)
		case "numsets":
			out.NumSets = a.NumSets
		case "maxsize":
			out.MaxSize = a.MaxSize
		}
	}
	return out
}

// EstimateDRAMWords estimates the peak small-memory (DRAM) residency of
// one run on an n-vertex, m-arc graph in words: the spec's own estimator
// when declared, else a vertex-proportional default covering the handful
// of n-length arrays plus traversal scratch that the Table 1 algorithms
// keep resident.
func (s Spec) EstimateDRAMWords(n, m uint64) int64 {
	if s.DRAMWords != nil {
		return s.DRAMWords(n, m)
	}
	return int64(16 * n)
}

// edgeStateDRAMWords is the estimator for the edge-proportional problems.
func edgeStateDRAMWords(n, m uint64) int64 { return int64(m + 8*n) }

// Common parameter specs.
var (
	srcArg     = ArgSpec{Name: "src", Kind: ArgVertex, Default: 0, Doc: "source vertex"}
	epsPRArg   = ArgSpec{Name: "eps", Kind: ArgFloat, Default: 1e-6, Doc: "L1 convergence threshold"}
	maxItArg   = ArgSpec{Name: "maxiters", Kind: ArgInt, Default: 100, Doc: "iteration cap"}
	dampingArg = ArgSpec{Name: "damping", Kind: ArgFloat, Default: 0.85, Doc: "damping factor"}
)

// countDistinct counts distinct labels.
func countDistinct(labels []uint32) int {
	distinct := map[uint32]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	return len(distinct)
}

// registry is the authoritative list: the Figure 1 suite in the paper's
// order, then the PSAM-extension problems (§3.2).
var registry = []Spec{
	{
		Name: "bfs", Title: "BFS", Fig1: true,
		Doc:  "breadth-first-search tree (Figure 4)",
		Args: []ArgSpec{srcArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			parents := BFS(g, o, a.Src)
			reached := 0
			for _, p := range parents {
				if p != Infinity {
					reached++
				}
			}
			return Result{parents, fmt.Sprintf("reached %d of %d vertices", reached, g.NumVertices())}
		},
	},
	{
		Name: "wbfs", Title: "wBFS", Weighted: true, Fig1: true,
		Doc:  "integral-weight SSSP via bucketing (§4.3.1)",
		Args: []ArgSpec{srcArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			dist := WBFS(g, o, a.Src)
			return Result{dist, fmt.Sprintf("computed %d distances", len(dist))}
		},
	},
	{
		Name: "bellmanford", Title: "Bellman-Ford", Weighted: true, Fig1: true,
		Doc:  "general-weight SSSP (§4.3.1)",
		Args: []ArgSpec{srcArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			dist := BellmanFord(g, o, a.Src)
			return Result{dist, fmt.Sprintf("computed %d distances", len(dist))}
		},
	},
	{
		Name: "widest", Title: "Widest-Path", Weighted: true, Fig1: true,
		Doc:  "single-source widest paths (§4.3.1)",
		Args: []ArgSpec{srcArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			w := WidestPath(g, o, a.Src)
			return Result{w, fmt.Sprintf("computed %d widths", len(w))}
		},
	},
	{
		Name: "bc", Title: "Betweenness", Fig1: true,
		Doc:  "single-source betweenness dependencies",
		Args: []ArgSpec{srcArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			deps := Betweenness(g, o, a.Src)
			var maxDep float64
			for _, d := range deps {
				if d > maxDep {
					maxDep = d
				}
			}
			return Result{deps, fmt.Sprintf("max dependency %.2f", maxDep)}
		},
	},
	{
		Name: "spanner", Title: "O(k)-Spanner", Fig1: true,
		Doc:  "O(k)-spanner edges (k=0 selects ceil(log2 n))",
		Args: []ArgSpec{{Name: "k", Kind: ArgInt, Default: 0, Doc: "stretch parameter (0 = log2 n)"}},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			edges := Spanner(g, o, a.K)
			return Result{edges, fmt.Sprintf("spanner with %d edges (n=%d)", len(edges), g.NumVertices())}
		},
	},
	{
		Name: "ldd", Title: "LDD", Fig1: true,
		Doc:  "low-diameter decomposition (§4.3.2)",
		Args: []ArgSpec{{Name: "beta", Kind: ArgFloat, Default: 0.2, Doc: "decomposition parameter"}},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			res := LDD(g, o, a.betaOr(0.2), o.Seed)
			return Result{res, fmt.Sprintf("decomposed in %d rounds", res.Rounds)}
		},
	},
	{
		Name: "cc", Title: "Connectivity", Fig1: true,
		Doc:       "connected-component labels (LDD contraction, §4.3.2)",
		CostClass: costmodel.Iterative,
		Run: func(g graph.Adj, o *Options, a Args) Result {
			labels := Connectivity(g, o)
			return Result{labels, fmt.Sprintf("%d connected components", countDistinct(labels))}
		},
	},
	{
		Name: "forest", Title: "SpanningForest", Fig1: true,
		Doc: "spanning forest edges (Corollary C.3)",
		Run: func(g graph.Adj, o *Options, a Args) Result {
			f := SpanningForest(g, o)
			return Result{f, fmt.Sprintf("spanning forest with %d edges", len(f))}
		},
	},
	{
		Name: "biconn", Title: "Biconnectivity", Fig1: true,
		Doc: "biconnected-component labeling (§4.3.2)",
		Run: func(g graph.Adj, o *Options, a Args) Result {
			res := Biconnectivity(g, o)
			distinct := map[uint32]bool{}
			for v, l := range res.Label {
				if res.Parent[v] != uint32(v) && res.Parent[v] != Infinity {
					distinct[l] = true
				}
			}
			return Result{res, fmt.Sprintf("%d biconnected components (tree-edge labels)", len(distinct))}
		},
	},
	{
		Name: "mis", Title: "MIS", Fig1: true,
		Doc: "maximal independent set (§4.3.3)",
		Run: func(g graph.Adj, o *Options, a Args) Result {
			in := MIS(g, o)
			count := 0
			for _, b := range in {
				if b {
					count++
				}
			}
			return Result{in, fmt.Sprintf("independent set of size %d", count)}
		},
	},
	{
		Name: "matching", Title: "Maximal-Matching", Fig1: true,
		Doc: "maximal matching (§4.3.3)",
		Run: func(g graph.Adj, o *Options, a Args) Result {
			m := MaximalMatching(g, o)
			return Result{m, fmt.Sprintf("matching of size %d", len(m))}
		},
	},
	{
		Name: "coloring", Title: "Graph-Coloring", Fig1: true,
		Doc:       "(Delta+1)-coloring (§4.3.3)",
		CostClass: costmodel.Iterative,
		Run: func(g graph.Adj, o *Options, a Args) Result {
			colors := Coloring(g, o)
			maxC := uint32(0)
			for _, c := range colors {
				if c > maxC {
					maxC = c
				}
			}
			return Result{colors, fmt.Sprintf("used %d colors", maxC+1)}
		},
	},
	{
		Name: "setcover", Title: "Apx-Set-Cover", SetCover: true, Fig1: true,
		Doc:  "approximate set cover on a bipartite instance (§4.3.4)",
		Args: []ArgSpec{{Name: "numsets", Kind: ArgVertex, Default: 0, Doc: "vertices [0, numsets) are sets (required)"}},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			cover := ApproxSetCover(g, o, a.NumSets)
			return Result{cover, fmt.Sprintf("cover of %d sets", len(cover))}
		},
	},
	{
		Name: "kcore", Title: "k-Core", Fig1: true,
		Doc:       "coreness of every vertex (Julienne peeling, §4.3.4)",
		CostClass: costmodel.Iterative,
		Run: func(g graph.Adj, o *Options, a Args) Result {
			core := KCore(g, o)
			return Result{core, fmt.Sprintf("max coreness %d", MaxCore(core))}
		},
	},
	{
		Name: "densest", Title: "Apx-Dens-Subgraph", Fig1: true,
		Doc:       "2(1+eps)-approximate densest subgraph (§4.3.4)",
		CostClass: costmodel.Iterative,
		Run: func(g graph.Adj, o *Options, a Args) Result {
			res := ApproxDensestSubgraph(g, o)
			return Result{res, fmt.Sprintf("density %.3f in %d rounds", res.Density, res.Rounds)}
		},
	},
	{
		Name: "tc", Title: "Triangle-Count", Fig1: true,
		Doc:       "triangle count with work counters (§4.3.5)",
		DRAMWords: edgeStateDRAMWords,
		CostClass: costmodel.EdgeState,
		Run: func(g graph.Adj, o *Options, a Args) Result {
			res := TriangleCount(g, o)
			return Result{res, fmt.Sprintf("%d triangles (intersection work %d, total work %d)",
				res.Count, res.IntersectionWork, res.TotalWork)}
		},
	},
	{
		Name: "pagerank-iter", Title: "PageRank-Iter", Fig1: true,
		Doc: "one dense pull-based PageRank iteration from the uniform vector",
		Run: func(g graph.Adj, o *Options, a Args) Result {
			n := int(g.NumVertices())
			prev := make([]float64, n)
			next := make([]float64, n)
			for i := range prev {
				prev[i] = 1 / float64(n)
			}
			diff := PageRankIter(g, o, prev, next)
			return Result{next, fmt.Sprintf("L1 change %.3g after one iteration", diff)}
		},
	},
	{
		Name: "pagerank", Title: "PageRank", Fig1: true,
		Doc:       "PageRank to convergence (§4.3.5)",
		CostClass: costmodel.Iterative,
		Args:      []ArgSpec{epsPRArg, maxItArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			ranks, iters := PageRank(g, o, a.epsOr(1e-6), a.itersOr(100))
			return Result{ranks, fmt.Sprintf("converged in %d iterations", iters)}
		},
	},
	// PSAM extensions (§3.2): regular-model problems beyond the Figure 1
	// suite.
	{
		Name: "widestb", Title: "Widest-Path-Bucketed", Weighted: true,
		Doc:  "bucketing-based widest-path variant (§4.3.1)",
		Args: []ArgSpec{srcArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			w := WidestPathBucketed(g, o, a.Src)
			return Result{w, fmt.Sprintf("computed %d widths", len(w))}
		},
	},
	{
		Name: "ppr", Title: "Personalized-PageRank",
		Doc:       "personalized PageRank vector of src (§3.2)",
		CostClass: costmodel.Local,
		Args:      []ArgSpec{srcArg, dampingArg, {Name: "eps", Kind: ArgFloat, Default: 1e-9, Doc: "L1 convergence threshold"}, maxItArg},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			ranks, iters := PersonalizedPageRank(g, o, a.Src, a.dampingOr(0.85), a.epsOr(1e-9), a.itersOr(100))
			return Result{ranks, fmt.Sprintf("personalized PageRank converged in %d iterations", iters)}
		},
	},
	{
		Name: "kclique", Title: "k-Clique",
		Doc:       "k-clique count over the degree-ordered DAG (§3.2)",
		Args:      []ArgSpec{{Name: "k", Kind: ArgInt, Default: 4, Doc: "clique size (>= 3)"}},
		DRAMWords: edgeStateDRAMWords,
		CostClass: costmodel.EdgeState,
		Validate: func(a Args) error {
			if a.K != 0 && a.K < 3 {
				return fmt.Errorf("kclique requires k >= 3 (got %d)", a.K)
			}
			return nil
		},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			k := a.K
			if k == 0 {
				k = 4
			}
			c := KCliqueCount(g, o, k)
			return Result{c, fmt.Sprintf("%d %d-cliques", c, k)}
		},
	},
	{
		Name: "ktruss", Title: "k-Truss",
		Doc: "trussness of every edge (§3.2; Theta(m)-word output)",
		// Θ(m) small memory is the PSAM boundary the paper draws for this
		// problem (§3.2): support counters and the trussness output are
		// both edge-proportional.
		DRAMWords: func(n, m uint64) int64 { return int64(3*m + 8*n) },
		CostClass: costmodel.EdgeState,
		Run: func(g graph.Adj, o *Options, a Args) Result {
			res := KTruss(g, o)
			maxT := uint32(0)
			for _, tr := range res.Trussness {
				if tr > maxT {
					maxT = tr
				}
			}
			return Result{res, fmt.Sprintf("max trussness %d over %d edges", maxT, len(res.Trussness))}
		},
	},
	{
		Name: "localcluster", Title: "Local-Cluster",
		Doc:       "low-conductance community around src via PPR sweep cut (§3.2)",
		CostClass: costmodel.Local,
		Args:      []ArgSpec{srcArg, dampingArg, {Name: "maxsize", Kind: ArgInt, Default: 0, Doc: "sweep-cut size cap (0 = unbounded)"}},
		Run: func(g graph.Adj, o *Options, a Args) Result {
			res := LocalCluster(g, o, a.Src, a.dampingOr(0.85), a.MaxSize)
			return Result{res, fmt.Sprintf("cluster of %d vertices at conductance %.3f",
				len(res.Members), res.Conductance)}
		},
	},
}

// Registry returns the algorithm specs: the Figure 1 suite in the
// paper's order, then the extensions. The returned slice is shared; do
// not mutate it.
func Registry() []Spec { return registry }

// Lookup finds a spec by its canonical name.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the canonical names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}
