package algos

import (
	"math/rand/v2"
	"testing"

	"sage/internal/graph"
)

// twoCommunities builds two dense clusters joined by a single edge.
func twoCommunities(size uint32, seed uint64) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, 1))
	var edges []graph.Edge
	dense := func(base uint32) {
		for i := uint32(0); i < size; i++ {
			for j := 0; j < 6; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + r.Uint32N(size)})
			}
		}
	}
	dense(0)
	dense(size)
	edges = append(edges, graph.Edge{U: 0, V: size})
	return graph.FromEdges(2*size, edges, graph.BuildOpts{Symmetrize: true})
}

func TestLocalClusterFindsCommunity(t *testing.T) {
	const size = 64
	g := twoCommunities(size, 3)
	res := LocalCluster(g, opts(), 5, 0.85, 0)
	if res.Conductance > 0.2 {
		t.Fatalf("conductance %.3f too high for a planted community", res.Conductance)
	}
	// Most members must come from the seed's community.
	inside := 0
	for _, v := range res.Members {
		if v < size {
			inside++
		}
	}
	if frac := float64(inside) / float64(len(res.Members)); frac < 0.9 {
		t.Fatalf("only %.0f%% of cluster members in the seed's community", 100*frac)
	}
}

func TestLocalClusterConductanceIsCorrect(t *testing.T) {
	g := twoCommunities(32, 9)
	res := LocalCluster(g, opts(), 1, 0.85, 0)
	// Recompute conductance of the returned set exactly.
	inS := map[uint32]bool{}
	for _, v := range res.Members {
		inS[v] = true
	}
	var vol, cut int64
	for _, v := range res.Members {
		vol += int64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if !inS[u] {
				cut++
			}
		}
	}
	denom := min(vol, int64(g.NumEdges())-vol)
	want := float64(cut) / float64(denom)
	if diff := res.Conductance - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("reported conductance %.6f, recomputed %.6f", res.Conductance, want)
	}
}

func TestLocalClusterMaxSize(t *testing.T) {
	g := twoCommunities(64, 5)
	res := LocalCluster(g, opts(), 0, 0.85, 10)
	if len(res.Members) > 10 {
		t.Fatalf("cluster size %d exceeds bound", len(res.Members))
	}
}

func TestLocalClusterNoNVRAMWrites(t *testing.T) {
	g := twoCommunities(32, 7)
	o := optsEnv()
	LocalCluster(g, o, 0, 0.85, 0)
	if o.Env.Totals().NVRAMWrites != 0 {
		t.Fatal("local clustering wrote to NVRAM")
	}
}

func TestTriangleCountOrderingSensitivity(t *testing.T) {
	// Appendix D.1: the input ordering changes the decode-work profile of
	// triangle counting but never the count.
	g := twoCommunities(128, 11)
	base := TriangleCount(g, opts())
	for name, perm := range map[string][]uint32{
		"degree": g.DegreeOrder(),
		"random": g.RandomOrder(13),
	} {
		h := g.Relabel(perm)
		res := TriangleCount(h, opts())
		if res.Count != base.Count {
			t.Fatalf("%s ordering changed the count: %d vs %d", name, res.Count, base.Count)
		}
	}
}
