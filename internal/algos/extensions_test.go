package algos

import (
	"math"
	"testing"

	"sage/internal/compress"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/psam"
	"sage/internal/refalgo"
)

func TestKCliqueMatchesTriangles(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.Triangles(g)
		got := KCliqueCount(g, opts(), 3)
		if got != want {
			t.Fatalf("%s: 3-cliques %d != triangles %d", name, got, want)
		}
	}
}

func TestKCliqueMatchesBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat-small": gen.RMAT(7, 8, 3),
		"er-small":   gen.ErdosRenyi(100, 600, 5),
		"k6": graph.FromEdges(6, completeEdges(6),
			graph.BuildOpts{Symmetrize: true}),
	}
	for name, g := range graphs {
		for k := 3; k <= 5; k++ {
			want := refalgo.KCliques(g, k)
			got := KCliqueCount(g, opts(), k)
			if got != want {
				t.Fatalf("%s k=%d: got %d want %d", name, k, got, want)
			}
		}
	}
}

func TestKCliqueCompleteGraph(t *testing.T) {
	// K_n has C(n, k) k-cliques.
	g := graph.FromEdges(8, completeEdges(8), graph.BuildOpts{Symmetrize: true})
	binom := func(n, k int64) int64 {
		r := int64(1)
		for i := int64(0); i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for k := 3; k <= 6; k++ {
		got := KCliqueCount(g, opts(), k)
		if got != binom(8, int64(k)) {
			t.Fatalf("k=%d: got %d want %d", k, got, binom(8, int64(k)))
		}
	}
}

func TestKCliqueNoNVRAMWrites(t *testing.T) {
	g := gen.RMAT(9, 10, 7)
	o := optsEnv()
	KCliqueCount(g, o, 4)
	if o.Env.Totals().NVRAMWrites != 0 {
		t.Fatal("k-clique wrote to NVRAM")
	}
}

func TestPersonalizedPageRankMatchesSerial(t *testing.T) {
	for name, g := range battery() {
		want := refalgo.PersonalizedPageRank(g, 0, 0.85, 1e-12, 80)
		got, _ := PersonalizedPageRank(g, opts(), 0, 0.85, 1e-12, 80)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: ppr[%d]=%v want %v", name, v, got[v], want[v])
			}
		}
	}
}

func TestPersonalizedPageRankLocalized(t *testing.T) {
	// On a chain, mass should concentrate near the source.
	g := gen.Chain(100)
	pr, _ := PersonalizedPageRank(g, opts(), 50, 0.85, 1e-10, 200)
	if pr[50] < pr[49] || pr[50] < pr[51] {
		t.Fatal("source should hold the most mass")
	}
	if pr[49] < pr[0] || pr[51] < pr[99] {
		t.Fatal("mass should decay with distance from the source")
	}
}

func TestKTrussKnownGraphs(t *testing.T) {
	// Triangle: every edge in exactly 1 triangle -> trussness 3.
	tri := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}},
		graph.BuildOpts{Symmetrize: true})
	res := KTruss(tri, opts())
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}} {
		tr, ok := res.EdgeTrussness(e[0], e[1])
		if !ok || tr != 3 {
			t.Fatalf("triangle edge %v trussness %d want 3", e, tr)
		}
	}
	// K5: every edge in 3 triangles -> trussness 5.
	k5 := graph.FromEdges(5, completeEdges(5), graph.BuildOpts{Symmetrize: true})
	res = KTruss(k5, opts())
	for u := uint32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			tr, _ := res.EdgeTrussness(u, v)
			if tr != 5 {
				t.Fatalf("K5 edge (%d,%d) trussness %d want 5", u, v, tr)
			}
		}
	}
	// Chain: no triangles -> trussness 2 everywhere.
	ch := gen.Chain(10)
	res = KTruss(ch, opts())
	for v := uint32(0); v+1 < 10; v++ {
		tr, _ := res.EdgeTrussness(v, v+1)
		if tr != 2 {
			t.Fatalf("chain edge trussness %d want 2", tr)
		}
	}
}

func TestKTrussMatchesSerial(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":   gen.RMAT(7, 8, 11),
		"er":     gen.ErdosRenyi(120, 700, 13),
		"bowtie": graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2}}, graph.BuildOpts{Symmetrize: true}),
	}
	for name, g := range graphs {
		want := refalgo.Trussness(g)
		res := KTruss(g, opts())
		for e, wt := range want {
			gt, ok := res.EdgeTrussness(e[0], e[1])
			if !ok {
				t.Fatalf("%s: edge %v missing", name, e)
			}
			if gt != wt {
				t.Fatalf("%s: edge %v trussness %d want %d", name, e, gt, wt)
			}
		}
	}
}

func TestKTrussSpaceIsThetaM(t *testing.T) {
	// The §3.2 boundary demonstration: k-truss state is Θ(m) words,
	// unlike the O(n + m/64) of the Table 1 algorithms.
	g := gen.RMAT(11, 16, 17)
	env := psam.NewEnv(psam.AppDirect)
	o := opts().WithEnv(env)
	KTruss(g, o)
	peak := env.Space.Peak()
	if peak < int64(g.NumEdges())/2 {
		t.Fatalf("k-truss peak %d words should be Theta(m) (m=%d)", peak, g.NumEdges())
	}
	if env.Totals().NVRAMWrites != 0 {
		t.Fatal("k-truss wrote to NVRAM (state should be DRAM)")
	}
}

// completeEdges returns the edges of K_n.
func completeEdges(n uint32) []graph.Edge {
	var edges []graph.Edge
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return edges
}

func TestWBFSOnWeightedCompressed(t *testing.T) {
	// Weighted byte-compressed graphs (the paper runs wBFS on compressed
	// ClueWeb): distances must match Dijkstra on the uncompressed graph.
	g := gen.AddUniformWeights(gen.RMAT(9, 10, 23), 9)
	cg := compress.Compress(g, 64)
	if !cg.Weighted() {
		t.Fatal("compression dropped weights")
	}
	want := refalgo.Dijkstra(g, 0)
	got := WBFS(cg, opts(), 0)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if want[v] == math.MaxInt64 {
			if got[v] != Infinity {
				t.Fatalf("vertex %d should be unreachable", v)
			}
			continue
		}
		if int64(got[v]) != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestBellmanFordOnWeightedCompressed(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 10, 29), 3)
	cg := compress.Compress(g, 64)
	want := refalgo.Dijkstra(g, 0)
	got := BellmanFord(cg, opts(), 0)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if want[v] == math.MaxInt64 {
			continue
		}
		if got[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}
