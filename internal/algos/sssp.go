package algos

import (
	"sync/atomic"

	"sage/internal/bucket"
	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/traverse"
)

// WBFS is integral-weight SSSP via the Julienne bucketing approach (§4.3.1):
// vertices are bucketed by tentative distance; popping the minimum bucket
// settles its vertices (weights are >= 1), whose out-edges are relaxed with
// priority-writes; updated vertices move buckets in bulk. O(m) expected
// work, O(dG log n) depth whp, O(n) words of small-memory (the bucket
// structure is semi-eager, Appendix B).
func WBFS(g graph.Adj, o *Options, src uint32) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	parallel.Fill(dist, Infinity)
	dist[src] = 0
	o.Env.Alloc(2 * int64(n))
	defer o.Env.Free(2 * int64(n))

	prio := make([]uint32, n)
	parallel.Fill(prio, bucket.Null)
	prio[src] = 0
	b := bucket.New(prio, bucket.Increasing)

	for {
		d, settled, ok := b.NextBucket()
		if !ok {
			break
		}
		fr := frontier.FromSparse(n, settled)
		ops := traverse.Ops{
			Update: func(_, v uint32, w int32) bool {
				nd := d + uint32(w)
				if nd < dist[v] {
					dist[v] = nd
					return true
				}
				return false
			},
			UpdateAtomic: func(_, v uint32, w int32) bool {
				return parallel.WriteMinUint32(&dist[v], d+uint32(w))
			},
			Cond: traverse.CondTrue,
		}
		out := o.edgeMap(g, fr, ops, func(t *traverse.Options) { t.Dedup = true })
		ids := out.Sparse()
		prios := make([]uint32, len(ids))
		parallel.For(len(ids), 0, func(i int) {
			prios[i] = atomic.LoadUint32(&dist[ids[i]])
		})
		b.UpdateBatch(ids, prios)
	}
	return dist
}

// BellmanFord is general-weight SSSP (§4.3.1): rounds of relaxations over
// the frontier of improved vertices until a fixpoint, O(dG·m) work and
// O(dG log n) depth for graphs without negative cycles. Vertices on or
// reachable from a negative-weight cycle reachable from src are reported
// with distance NegInf.
func BellmanFord(g graph.Adj, o *Options, src uint32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	parallel.Fill(dist, InfDist)
	dist[src] = 0
	o.Env.Alloc(2 * int64(n))
	defer o.Env.Free(2 * int64(n))
	fr := frontier.Single(n, src)
	// Unlike BFS, a vertex's distance is read as a *source* while it is
	// concurrently written as a *destination* (the standard Bellman-Ford
	// relaxation race), so even the dense update must be atomic.
	relax := func(s, v uint32, w int32) bool {
		nd := atomic.LoadInt64(&dist[s]) + int64(w)
		return parallel.WriteMinInt64(&dist[v], nd)
	}
	ops := traverse.Ops{
		Update:       relax,
		UpdateAtomic: relax,
		Cond:         traverse.CondTrue,
	}
	rounds := 0
	for !fr.IsEmpty() {
		if rounds >= int(n) {
			// Negative cycle: everything still improving, and everything
			// reachable from it, diverges.
			markNegInf(g, o, fr, dist)
			break
		}
		fr = o.edgeMap(g, fr, ops, func(t *traverse.Options) { t.Dedup = true })
		rounds++
	}
	return dist
}

// InfDist and NegInf are the unreachable / divergent markers of
// BellmanFord.
const (
	InfDist = int64(1) << 62
	NegInf  = -(int64(1) << 62)
)

// markNegInf floods NegInf from the still-improving frontier.
func markNegInf(g graph.Adj, o *Options, fr *frontier.VertexSubset, dist []int64) {
	n := g.NumVertices()
	fr.ForEach(func(v uint32) { atomic.StoreInt64(&dist[v], NegInf) })
	ops := traverse.Ops{
		Update: func(_, v uint32, _ int32) bool {
			if dist[v] != NegInf {
				dist[v] = NegInf
				return true
			}
			return false
		},
		UpdateAtomic: func(_, v uint32, _ int32) bool {
			return atomic.SwapInt64(&dist[v], NegInf) != NegInf
		},
		Cond: func(v uint32) bool { return atomic.LoadInt64(&dist[v]) != NegInf },
	}
	cur := frontier.FromSparse(n, append([]uint32(nil), fr.Sparse()...))
	for !cur.IsEmpty() {
		cur = o.edgeMap(g, cur, ops, nil)
	}
}

// WidestPath computes single-source widest paths (§4.3.1): W[v] is the
// maximum over src-v paths of the minimum edge weight on the path
// (Bellman-Ford-style max-min relaxation, the paper's first variant).
func WidestPath(g graph.Adj, o *Options, src uint32) []int64 {
	n := g.NumVertices()
	width := make([]int64, n)
	parallel.Fill(width, NegInf)
	width[src] = InfDist
	o.Env.Alloc(int64(n))
	defer o.Env.Free(int64(n))
	fr := frontier.Single(n, src)
	// As in BellmanFord, sources are read while destinations are written,
	// so both update variants are atomic.
	relax := func(s, v uint32, w int32) bool {
		nw := min(atomic.LoadInt64(&width[s]), int64(w))
		return parallel.WriteMaxInt64(&width[v], nw)
	}
	ops := traverse.Ops{
		Update:       relax,
		UpdateAtomic: relax,
		Cond:         traverse.CondTrue,
	}
	for !fr.IsEmpty() {
		fr = o.edgeMap(g, fr, ops, func(t *traverse.Options) { t.Dedup = true })
	}
	return width
}

// WidestPathBucketed is the paper's second widest-path variant, built on
// decreasing buckets (the wBFS analogue): popping the maximum-width bucket
// settles its vertices because widths only decrease along paths.
func WidestPathBucketed(g graph.Adj, o *Options, src uint32) []int64 {
	n := g.NumVertices()
	width := make([]uint32, n) // width+1; 0 = unreached
	width[src] = Infinity      // effectively +inf
	o.Env.Alloc(2 * int64(n))
	defer o.Env.Free(2 * int64(n))

	prio := make([]uint32, n)
	parallel.Fill(prio, bucket.Null)
	// Null is also ^uint32(0); encode the source's "infinite" width as the
	// largest non-Null priority.
	prio[src] = Infinity - 1
	b := bucket.New(prio, bucket.Decreasing)

	for {
		_, settled, ok := b.NextBucket()
		if !ok {
			break
		}
		fr := frontier.FromSparse(n, settled)
		ops := traverse.Ops{
			Update: func(s, v uint32, w int32) bool {
				nw := min(width[s], uint32(w))
				if nw > width[v] {
					width[v] = nw
					return true
				}
				return false
			},
			UpdateAtomic: func(s, v uint32, w int32) bool {
				nw := min(atomic.LoadUint32(&width[s]), uint32(w))
				return parallel.WriteMaxUint32(&width[v], nw)
			},
			Cond: traverse.CondTrue,
		}
		out := o.edgeMap(g, fr, ops, func(t *traverse.Options) { t.Dedup = true })
		ids := out.Sparse()
		prios := make([]uint32, len(ids))
		parallel.For(len(ids), 0, func(i int) {
			w := atomic.LoadUint32(&width[ids[i]])
			if w >= Infinity-1 {
				w = Infinity - 1
			}
			prios[i] = w
		})
		b.UpdateBatch(ids, prios)
	}
	out := make([]int64, n)
	parallel.For(int(n), 0, func(i int) {
		switch {
		case width[i] == 0:
			out[i] = NegInf
		case uint32(i) == src:
			out[i] = InfDist
		default:
			out[i] = int64(width[i])
		}
	})
	return out
}
