package algos

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/refalgo"
)

func TestAlgorithmsOnTinyGraphs(t *testing.T) {
	single := graph.FromEdges(1, nil, graph.BuildOpts{})
	pair := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, graph.BuildOpts{Symmetrize: true})
	isolated := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, graph.BuildOpts{Symmetrize: true})

	for name, g := range map[string]*graph.Graph{
		"single": single, "pair": pair, "isolated": isolated,
	} {
		o := opts()
		parents := BFS(g, o, 0)
		if parents[0] != 0 {
			t.Fatalf("%s: bfs source", name)
		}
		labels := Connectivity(g, o)
		if len(labels) != int(g.NumVertices()) {
			t.Fatalf("%s: connectivity", name)
		}
		if in := MIS(g, o); len(in) > 0 && !anyTrue(in) && g.NumVertices() > 0 {
			t.Fatalf("%s: empty MIS", name)
		}
		core := KCore(g, o)
		for v, k := range core {
			if k > g.Degree(uint32(v)) {
				t.Fatalf("%s: coreness exceeds degree", name)
			}
		}
		if tc := TriangleCount(g, o); tc.Count != 0 {
			t.Fatalf("%s: phantom triangles", name)
		}
		forest := SpanningForest(g, o)
		_ = forest
		res := Biconnectivity(g, o)
		if len(res.Label) != int(g.NumVertices()) {
			t.Fatalf("%s: biconnectivity", name)
		}
	}
}

func anyTrue(b []bool) bool {
	for _, v := range b {
		if v {
			return true
		}
	}
	return false
}

func TestBFSFromUnconnectedSource(t *testing.T) {
	// Source in the small component: nothing in the big one is reached.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
	}, graph.BuildOpts{Symmetrize: true})
	parents := BFS(g, opts(), 0)
	if parents[1] == Infinity || parents[2] != Infinity {
		t.Fatal("reachability wrong across components")
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	// A negative undirected edge is a negative 2-cycle: Bellman-Ford must
	// report -inf for everything reachable through it.
	g := graph.FromWeightedEdges(4, []graph.WEdge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: -5}, {U: 2, V: 3, W: 1},
	}, graph.BuildOpts{Symmetrize: true})
	want := refalgo.BellmanFord(g, 0)
	got := BellmanFord(g, opts(), 0)
	for v := range want {
		gotNeg := got[v] == NegInf
		wantNeg := want[v] == -int64(1)<<63+1 || want[v] < -(int64(1)<<40) // MinInt64 marker
		if gotNeg != wantNeg {
			t.Fatalf("vertex %d: got %d, ref %d", v, got[v], want[v])
		}
	}
	// At minimum, the cycle's endpoints diverge.
	if got[1] != NegInf || got[2] != NegInf {
		t.Fatal("negative cycle not detected")
	}
}

func TestConnectivityQuick(t *testing.T) {
	f := func(raw []uint16, nSeed uint8) bool {
		n := uint32(nSeed)%100 + 2
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{U: uint32(raw[i]) % n, V: uint32(raw[i+1]) % n})
		}
		g := graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
		return refalgo.SameComponents(refalgo.Components(g, 0), Connectivity(g, opts()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreQuick(t *testing.T) {
	f := func(raw []uint16, nSeed uint8) bool {
		n := uint32(nSeed)%60 + 2
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{U: uint32(raw[i]) % n, V: uint32(raw[i+1]) % n})
		}
		g := graph.FromEdges(n, edges, graph.BuildOpts{Symmetrize: true})
		want := refalgo.Coreness(g)
		got := KCore(g, opts())
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMISSeedsIndependent(t *testing.T) {
	// Different seeds give different (but always valid) sets.
	g := gen.RMAT(9, 10, 77)
	sizes := map[int]bool{}
	for seed := uint64(1); seed <= 4; seed++ {
		o := opts()
		o.Seed = seed
		in := MIS(g, o)
		count := 0
		for v := uint32(0); v < g.NumVertices(); v++ {
			if in[v] {
				count++
				for _, u := range g.Neighbors(v) {
					if in[u] {
						t.Fatalf("seed %d: invalid MIS", seed)
					}
				}
			}
		}
		sizes[count] = true
	}
	if len(sizes) < 2 {
		t.Log("all seeds produced the same MIS size (possible but unusual)")
	}
}

func TestWBFSManySources(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(8, 10, 5), 3)
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 5; trial++ {
		src := r.Uint32N(g.NumVertices())
		want := refalgo.Dijkstra(g, src)
		got := WBFS(g, opts(), src)
		for v := uint32(0); v < g.NumVertices(); v++ {
			if want[v] == int64(^uint64(0)>>1) {
				continue
			}
			if want[v] < int64(^uint32(0)) && int64(got[v]) != want[v] {
				t.Fatalf("src %d: dist[%d]=%d want %d", src, v, got[v], want[v])
			}
		}
	}
}

func TestDirectionOptimizationEquivalence(t *testing.T) {
	// Forced-dense and forced-sparse BFS agree with the reference on a
	// graph whose frontier sizes cross the m/20 threshold both ways.
	g := gen.RMAT(11, 24, 9)
	want := refalgo.BFSDistances(g, 0)
	for _, force := range []string{"auto", "dense", "sparse"} {
		o := opts()
		switch force {
		case "dense":
			o.Traverse.ForceDense = true
		case "sparse":
			o.Traverse.ForceSparse = true
		}
		parents := BFS(g, o, 0)
		for v := uint32(0); v < g.NumVertices(); v++ {
			if (parents[v] == Infinity) != (want[v] == ^uint32(0)) {
				t.Fatalf("%s: mismatch at %d", force, v)
			}
		}
	}
}

func TestSpannerOnDisconnectedGraph(t *testing.T) {
	g := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 4},
	}, graph.BuildOpts{Symmetrize: true})
	edges := Spanner(g, opts(), 2)
	h := graph.FromEdges(8, edges, graph.BuildOpts{Symmetrize: true})
	if !refalgo.SameComponents(refalgo.Components(g, 0), refalgo.Components(h, 0)) {
		t.Fatal("spanner changed the component structure")
	}
}

func TestColoringOnBipartite(t *testing.T) {
	// K_{a,b} is 2-chromatic; greedy-by-degree should not exceed a+... but
	// must at least be proper and within Δ+1.
	g := gen.CompleteBipartite(5, 7)
	colors := Coloring(g, opts())
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				t.Fatal("improper coloring")
			}
		}
	}
	maxC := uint32(0)
	for _, c := range colors {
		maxC = max(maxC, c)
	}
	if maxC > g.MaxDegree() {
		t.Fatalf("used %d colors, Δ=%d", maxC+1, g.MaxDegree())
	}
}

func TestDensestSubgraphPlantedClique(t *testing.T) {
	// Sparse background + planted K16: density must find ~(16-1)/2 = 7.5.
	edges := completeEdges(16)
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 800; i++ {
		u := 16 + r.Uint32N(400)
		v := 16 + r.Uint32N(400)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g := graph.FromEdges(416, edges, graph.BuildOpts{Symmetrize: true})
	o := opts()
	o.Eps = 0.01
	res := ApproxDensestSubgraph(g, o)
	if res.Density < 7.5/(2*(1+o.Eps)) {
		t.Fatalf("missed the planted clique: density %.2f", res.Density)
	}
}
