package algos

import (
	"sage/internal/frontier"
	"sage/internal/gfilter"
	"sage/internal/graph"
	"sage/internal/psam"
)

// EdgeFilter abstracts the batch-deletion structure used by the four
// filtering algorithms (biconnectivity, approximate set cover, triangle
// counting, maximal matching). Sage's implementation is the bit-packed
// DRAM graph filter (§4.2); the GBBS baseline implementation packs the
// adjacency arrays in place, which — on NVRAM — turns every deletion into
// expensive NVRAM writes. Swapping the factory is how the Figure 1/7
// experiments compare the two designs over identical algorithm code.
type EdgeFilter interface {
	graph.Adj
	// PackVertex removes v's active edges failing pred, returning the new
	// degree and the number removed.
	PackVertex(worker int, v uint32, pred func(u, ngh uint32) bool) (uint32, int64)
	// EdgeMapPack packs every vertex of vs, returning the subset and the
	// new degrees.
	EdgeMapPack(vs *frontier.VertexSubset, pred func(u, ngh uint32) bool) (*frontier.VertexSubset, []uint32)
	// FilterEdges packs all vertices and returns the remaining edge count.
	FilterEdges(pred func(u, ngh uint32) bool) int64
	// ActiveEdges returns the current active-edge count.
	ActiveEdges() int64
	// IterActive visits v's active neighbors in order.
	IterActive(worker int, v uint32, fn func(ngh uint32) bool)
	// ActiveList materializes v's active neighbors into dst, accounting
	// decode work.
	ActiveList(worker int, v uint32, dst []uint32, stats *gfilter.IntersectStats) []uint32
}

// FilterFactory builds an EdgeFilter over a graph.
type FilterFactory func(g graph.Adj, fb int, env *psam.Env) EdgeFilter

// newFilter builds the configured filter (Sage's gfilter by default).
func (o *Options) newFilter(g graph.Adj) EdgeFilter {
	if o.NewFilter != nil {
		return o.NewFilter(g, o.FB, o.Env)
	}
	return gfilter.New(g, o.FB, o.Env)
}
