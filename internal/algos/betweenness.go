package algos

import (
	"math"
	"sync/atomic"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/traverse"
)

// Betweenness computes single-source betweenness centrality contributions
// from src (Brandes' dependency accumulation, §4.3.1): a forward BFS
// phase counts shortest paths σ per vertex level by level, and a backward
// phase accumulates dependencies δ(v) = Σ_{w: succ(v)} σ(v)/σ(w)·(1+δ(w)).
// Following Ligra's BC, vertices are marked visited in a vertex map
// *after* each edgeMap round, so σ accumulates across all same-round
// contributors; the first contributor (σ was zero) claims the vertex for
// the output frontier. O(m) work, O(dG log n) depth, O(n) words of
// small-memory.
func Betweenness(g graph.Adj, o *Options, src uint32) []float64 {
	n := g.NumVertices()
	sigma := make([]uint64, n) // float64 bits
	level := make([]uint32, n)
	visited := make([]bool, n)
	o.Env.Alloc(3 * int64(n))
	defer o.Env.Free(3 * int64(n))

	parallel.StoreFloat64(&sigma[src], 1)
	visited[src] = true
	parallel.Fill(level, Infinity)
	level[src] = 0

	fwd := traverse.Ops{
		Update: func(s, d uint32, _ int32) bool {
			old := parallel.LoadFloat64(&sigma[d])
			parallel.StoreFloat64(&sigma[d], old+parallel.LoadFloat64(&sigma[s]))
			return old == 0
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return addFloat64Old(&sigma[d], parallel.LoadFloat64(&sigma[s])) == 0
		},
		Cond: func(d uint32) bool { return !visited[d] },
	}

	var rounds [][]uint32
	fr := frontier.Single(n, src)
	round := uint32(0)
	for !fr.IsEmpty() {
		rounds = append(rounds, append([]uint32(nil), fr.Sparse()...))
		fr = o.edgeMap(g, fr, fwd, nil)
		round++
		fr.ForEach(func(v uint32) {
			visited[v] = true
			level[v] = round
		})
	}

	// Backward phase: pull-based accumulation level by level from the
	// deepest frontier; each vertex owns its δ so no atomics are needed.
	delta := make([]float64, n)
	o.Env.Alloc(int64(n))
	defer o.Env.Free(int64(n))
	for l := len(rounds) - 2; l >= 0; l-- {
		o.Checkpoint()
		lvl := uint32(l)
		ids := rounds[l]
		parallel.ForWorker(len(ids), 8, func(w, i int) {
			v := ids[i]
			deg := g.Degree(v)
			o.Env.GraphRead(w, g.EdgeAddr(v), g.ScanCost(v, 0, deg))
			sv := parallel.LoadFloat64(&sigma[v])
			var acc float64
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if level[u] == lvl+1 {
					acc += sv / parallel.LoadFloat64(&sigma[u]) * (1 + delta[u])
				}
				return true
			})
			o.Env.StateRead(w, int64(deg))
			delta[v] = acc
		})
	}
	delta[src] = 0
	return delta
}

// addFloat64Old atomically adds delta to the float64 bits at p, returning
// the previous value.
func addFloat64Old(p *uint64, delta float64) float64 {
	for {
		old := atomic.LoadUint64(p)
		of := math.Float64frombits(old)
		if atomic.CompareAndSwapUint64(p, old, math.Float64bits(of+delta)) {
			return of
		}
	}
}
