package algos

import (
	"sage/internal/graph"
	"sage/internal/parallel"
)

// BiconnResult carries the biconnectivity labeling (§4.3.2): for every
// non-root vertex v, Label[v] identifies the biconnected component of the
// tree edge {v, Parent[v]}; EdgeLabel extends this to arbitrary edges via
// the deeper endpoint, the Tarjan–Vishkin edge labeling.
type BiconnResult struct {
	Parent []uint32
	Level  []uint32
	Pre    []uint32
	Size   []uint32
	Low    []uint32
	High   []uint32
	Label  []uint32
}

// EdgeLabel returns the biconnected-component label of edge {u, v}.
func (r *BiconnResult) EdgeLabel(u, v uint32) uint32 {
	if r.Level[u] > r.Level[v] {
		return r.Label[u]
	}
	return r.Label[v]
}

// IsBridge reports whether tree edge {v, Parent[v]} is a bridge: no
// non-tree edge escapes v's subtree, so the tree edge forms its own
// biconnected component.
func (r *BiconnResult) IsBridge(v uint32) bool {
	p := r.Parent[v]
	if p == v || p == Infinity {
		return false
	}
	return !(r.Low[v] < r.Pre[v] || r.High[v] >= r.Pre[v]+r.Size[v])
}

// Biconnectivity computes biconnected components with the Tarjan–Vishkin
// reduction the paper uses (§4.3.2): a BFS spanning forest, preorder
// numbers / subtree sizes / low / high computed level-synchronously over
// the tree, then one connectivity call on the input graph with the
// non-qualifying edges removed through a graph filter — the filter is the
// practical optimization the paper highlights ("uses the graph filtering
// structure to optimize a call to connectivity that runs on the input
// graph, with a large subset of the edges removed"). O(m) expected work,
// O(dG log n + log³ n) depth whp, O(n + m/64) words in practice.
func Biconnectivity(g graph.Adj, o *Options) *BiconnResult {
	o.Checkpoint()
	n := g.NumVertices()

	// 1. Spanning forest roots: one BFS source per connected component.
	conn := Connectivity(g, o)
	minRoot := make([]uint32, n)
	parallel.Fill(minRoot, Infinity)
	parallel.For(int(n), 0, func(i int) {
		parallel.WriteMinUint32(&minRoot[conn[i]], uint32(i))
	})
	roots := parallel.Filter(minRoot, func(v uint32) bool { return v != Infinity })

	// 2. BFS forest with levels.
	parent, level, _ := BFSTree(g, o, roots)
	o.Env.Alloc(8 * int64(n))
	defer o.Env.Free(8 * int64(n))

	t := buildTree(parent, level, roots)

	// 3. Subtree sizes bottom-up, preorder numbers top-down.
	size := make([]uint32, n)
	t.bottomUp(o, func(v uint32) {
		s := uint32(1)
		for _, c := range t.children(v) {
			s += size[c]
		}
		size[v] = s
	})
	pre := make([]uint32, n)
	rootOffsets := make([]uint32, len(roots))
	parallel.For(len(roots), 0, func(i int) { rootOffsets[i] = size[roots[i]] })
	parallel.Scan(rootOffsets)
	parallel.For(len(roots), 0, func(i int) { pre[roots[i]] = rootOffsets[i] })
	t.topDown(o, func(v uint32) {
		off := pre[v] + 1
		for _, c := range t.children(v) {
			pre[c] = off
			off += size[c]
		}
	})

	// 4. low/high: extremes of preorder numbers reachable from each
	// subtree via non-tree edges, seeded per vertex and folded bottom-up.
	low := make([]uint32, n)
	high := make([]uint32, n)
	parallel.ForBlocks(int(n), 64, func(w, lo, hi int) {
		var scanned int64
		for i := lo; i < hi; i++ {
			v := uint32(i)
			lo0, hi0 := pre[v], pre[v]
			deg := g.Degree(v)
			g.IterRange(v, 0, deg, func(_, u uint32, _ int32) bool {
				if parent[v] != u && parent[u] != v {
					lo0 = min(lo0, pre[u])
					hi0 = max(hi0, pre[u])
				}
				return true
			})
			scanned += int64(deg)
			low[v], high[v] = lo0, hi0
		}
		o.Env.GraphRead(w, 0, scanned)
	})
	t.bottomUp(o, func(v uint32) {
		for _, c := range t.children(v) {
			low[v] = min(low[v], low[c])
			high[v] = max(high[v], high[c])
		}
	})

	// 5. Filter the graph to the Tarjan–Vishkin auxiliary edges and run
	// connectivity on the filtered view.
	isAncestor := func(a, d uint32) bool {
		return pre[a] <= pre[d] && pre[d] < pre[a]+size[a]
	}
	keep := func(u, v uint32) bool {
		switch {
		case parent[v] == u: // tree edge, v is the child
			return low[v] < pre[u] || high[v] >= pre[u]+size[u]
		case parent[u] == v: // tree edge, u is the child
			return low[u] < pre[v] || high[u] >= pre[v]+size[v]
		default: // non-tree: keep only unrelated endpoints
			return !isAncestor(u, v) && !isAncestor(v, u)
		}
	}
	f := o.newFilter(g)
	f.FilterEdges(keep)
	label := Connectivity(f, o)

	return &BiconnResult{Parent: parent, Level: level, Pre: pre, Size: size, Low: low, High: high, Label: label}
}

// tree is the level-synchronous rooted-forest helper: children lists via a
// parallel sort by parent, level buckets for bottom-up/top-down sweeps.
type tree struct {
	parent    []uint32
	childIdx  []uint32 // vertices sorted by (parent, id), roots excluded
	childOff  []uint64 // per-vertex start into childIdx
	levelIdx  []uint32 // vertices with a level, sorted by level
	levelOff  []int    // per-level start into levelIdx
	maxLevel  uint32
	reachable []uint32
}

func buildTree(parent, level []uint32, roots []uint32) *tree {
	n := len(parent)
	t := &tree{parent: parent}
	// Children: all reachable non-root vertices sorted by parent.
	kids := parallel.PackIndex(n, func(i int) bool {
		return parent[i] != Infinity && parent[i] != uint32(i)
	})
	parallel.Sort(kids, func(a, b uint32) bool {
		if parent[a] != parent[b] {
			return parent[a] < parent[b]
		}
		return a < b
	})
	t.childIdx = kids
	counts := make([]uint64, n+1)
	parallel.For(len(kids), 0, func(i int) {
		if i == 0 || parent[kids[i-1]] != parent[kids[i]] {
			j := i + 1
			for j < len(kids) && parent[kids[j]] == parent[kids[i]] {
				j++
			}
			counts[parent[kids[i]]] = uint64(j - i)
		}
	})
	parallel.Scan(counts)
	t.childOff = counts

	// Level buckets.
	reach := parallel.PackIndex(n, func(i int) bool { return level[i] != Infinity })
	parallel.Sort(reach, func(a, b uint32) bool { return level[a] < level[b] })
	t.levelIdx = reach
	t.maxLevel = 0
	if len(reach) > 0 {
		t.maxLevel = level[reach[len(reach)-1]]
	}
	t.levelOff = make([]int, t.maxLevel+2)
	parallel.For(len(reach), 0, func(i int) {
		if i == 0 || level[reach[i-1]] != level[reach[i]] {
			t.levelOff[level[reach[i]]] = i
		}
	})
	t.levelOff[t.maxLevel+1] = len(reach)
	// BFS levels are contiguous, so every slot was written above; backfill
	// defensively in case of empty levels.
	for l := int(t.maxLevel); l >= 1; l-- {
		if t.levelOff[l] == 0 {
			t.levelOff[l] = t.levelOff[l+1]
		}
	}
	return t
}

// children returns the child list of v.
func (t *tree) children(v uint32) []uint32 {
	return t.childIdx[t.childOff[v]:t.childOff[v+1]]
}

// bottomUp applies fn to every reachable vertex, deepest level first, in
// parallel within a level.
func (t *tree) bottomUp(o *Options, fn func(v uint32)) {
	for l := int(t.maxLevel); l >= 0; l-- {
		o.Checkpoint()
		seg := t.levelIdx[t.levelOff[l]:t.levelOff[l+1]]
		parallel.For(len(seg), 16, func(i int) { fn(seg[i]) })
	}
}

// topDown applies fn level 0 downward.
func (t *tree) topDown(o *Options, fn func(v uint32)) {
	for l := 0; l <= int(t.maxLevel); l++ {
		o.Checkpoint()
		seg := t.levelIdx[t.levelOff[l]:t.levelOff[l+1]]
		parallel.For(len(seg), 16, func(i int) { fn(seg[i]) })
	}
}
