package algos

import (
	"math"
	"sync/atomic"

	"sage/internal/frontier"
	"sage/internal/graph"
	"sage/internal/parallel"
	"sage/internal/traverse"
)

// LDDResult carries a low-diameter decomposition: cluster labels (the id
// of the cluster's center vertex), the BFS-tree parent of every vertex
// within its cluster (parent[center] = center), and the number of growth
// rounds.
type LDDResult struct {
	Cluster []uint32
	Parent  []uint32
	Rounds  int
}

// LDD computes a (O(β), O(log n / β)) low-diameter decomposition with the
// Miller–Peng–Xu exponential-shift algorithm (§4.3.2): each vertex draws a
// shift δ_v ~ Exp(β); vertex v starts a cluster at round ⌊max δ − δ_v⌋
// unless already claimed; clusters grow level-synchronously with CAS
// claims (the practical tie-break GBBS uses). O(m) expected work,
// O(log² n) depth whp, O(n) words of small-memory.
func LDD(g graph.Adj, o *Options, beta float64, seed uint64) *LDDResult {
	n := g.NumVertices()
	if beta <= 0 {
		beta = 0.2
	}
	shifts := make([]float64, n)
	parallel.For(int(n), 0, func(i int) {
		u := float64(hash64(uint64(i), seed)>>11) / float64(1<<53)
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		shifts[i] = -math.Log(u) / beta
	})
	maxShift := parallel.Reduce(int(n), 0, 0.0, func(i int) float64 { return shifts[i] },
		func(a, b float64) float64 { return math.Max(a, b) })
	// start[v]: the round at which v may open its own cluster.
	start := make([]uint32, n)
	parallel.For(int(n), 0, func(i int) {
		start[i] = uint32(maxShift - shifts[i])
	})
	// Bucket vertices by start round (counting sort via histogram).
	order := parallel.Tabulate(int(n), func(i int) uint32 { return uint32(i) })
	parallel.Sort(order, func(a, b uint32) bool { return start[a] < start[b] })

	cluster := make([]uint32, n)
	parent := make([]uint32, n)
	parallel.Fill(cluster, Infinity)
	parallel.Fill(parent, Infinity)
	o.Env.Alloc(4 * int64(n))
	defer o.Env.Free(4 * int64(n))

	ops := traverse.Ops{
		Update: func(s, d uint32, _ int32) bool {
			if cluster[d] == Infinity {
				cluster[d] = cluster[s]
				parent[d] = s
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			if parallel.CASUint32(&cluster[d], Infinity, atomic.LoadUint32(&cluster[s])) {
				parent[d] = s
				return true
			}
			return false
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&cluster[d]) == Infinity },
	}

	fr := frontier.Empty(n)
	next := 0 // next index into order to admit as centers
	round := 0
	for {
		// Admit new centers whose start round has arrived and that are
		// still unclaimed.
		admit := next
		for admit < int(n) && start[order[admit]] <= uint32(round) {
			admit++
		}
		if admit > next {
			// Claim first (side-effecting CAS), then filter on the pure
			// outcome: parallel.Filter evaluates its predicate twice.
			cand := order[next:admit]
			claimed := make([]bool, len(cand))
			parallel.For(len(cand), 0, func(i int) {
				claimed[i] = parallel.CASUint32(&cluster[cand[i]], Infinity, cand[i])
			})
			centers := parallel.FilterIndex(cand, func(i int, _ uint32) bool {
				return claimed[i]
			})
			parallel.For(len(centers), 0, func(i int) { parent[centers[i]] = centers[i] })
			if len(centers) > 0 {
				merged := append(append([]uint32{}, fr.Sparse()...), centers...)
				fr = frontier.FromSparse(n, merged)
			}
			next = admit
		}
		if fr.IsEmpty() && next >= int(n) {
			break
		}
		fr = o.edgeMap(g, fr, ops, nil)
		round++
	}
	return &LDDResult{Cluster: cluster, Parent: parent, Rounds: round}
}

// CountInterCluster returns the number of arcs (u, v) whose endpoints lie
// in different clusters. Connectivity's Appendix C.2 restart rule checks
// this against its O(n) budget.
func CountInterCluster(g graph.Adj, o *Options, cluster []uint32) int64 {
	n := int(g.NumVertices())
	var shards [parallel.MaxWorkers]struct {
		c int64
		_ [56]byte
	}
	flat := graph.NewFlat(g)
	parallel.ForBlocks(n, 64, func(w, lo, hi int) {
		sc := o.scratch(w)
		var c, scanned int64
		for i := lo; i < hi; i++ {
			v := uint32(i)
			deg := g.Degree(v)
			cv := cluster[v]
			nghs, _ := flat.Slice(v, 0, deg, sc)
			for _, u := range nghs {
				if cluster[u] != cv {
					c++
				}
			}
			scanned += int64(deg)
		}
		o.Env.GraphRead(w, 0, scanned)
		o.Env.StateRead(w, scanned)
		shards[w].c += c
	})
	var total int64
	for i := range shards {
		total += shards[i].c
	}
	return total
}
