package algos

import (
	"sync/atomic"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// MaximalMatching computes a maximal matching with the phase-based
// filtering algorithm of Appendix C.3: each phase extracts the active
// edges of a prefix of vertices (O(n) edges), resolves them with
// deterministic reservations over random edge priorities (Blelloch et
// al.), and then packs the graph filter — removing processed edges and
// all edges incident to newly matched vertices — instead of mutating the
// NVRAM-resident graph. O(m) expected work, O(log³ m) depth whp,
// O(n + m/64) words of small-memory.
func MaximalMatching(g graph.Adj, o *Options) []graph.Edge {
	n := g.NumVertices()
	f := o.newFilter(g)
	matched := make([]uint32, n) // 0 = free, 1 = matched
	reserve := make([]uint64, n)
	o.Env.Alloc(3 * int64(n))
	defer o.Env.Free(3 * int64(n))

	var matchedEdges []graph.Edge
	vCut := uint32(0) // vertices below vCut have had their edges processed
	budget := int64(2 * n)

	for f.ActiveEdges() > 0 && vCut < n {
		o.Checkpoint()
		// Advance the cut so the phase covers ~budget active edges.
		newCut := vCut
		var acc int64
		for newCut < n && acc < budget {
			o.Checkpoint()
			acc += int64(f.Degree(newCut))
			newCut++
		}
		// Extract active edges (u, v) with vCut <= u < newCut and v > u.
		// Edges whose lower endpoint is below vCut were processed in an
		// earlier phase; edges with lower endpoint in [vCut, newCut) are
		// processed now.
		lists := make([][]uint32, parallel.Workers()) // packed u,v pairs
		parallel.ForWorker(int(newCut-vCut), 4, func(w, i int) {
			u := vCut + uint32(i)
			if atomic.LoadUint32(&matched[u]) == 1 {
				return
			}
			f.IterActive(w, u, func(v uint32) bool {
				if v > u && atomic.LoadUint32(&matched[v]) == 0 {
					lists[w] = append(lists[w], u, v)
				}
				return true
			})
		})
		flat := parallel.FlattenUint32(lists)
		live := make([]graph.Edge, len(flat)/2)
		parallel.For(len(live), 0, func(i int) {
			live[i] = graph.Edge{U: flat[2*i], V: flat[2*i+1]}
		})
		phaseWords := int64(len(live))
		o.Env.Alloc(phaseWords)

		// Deterministic reservations until the extracted set drains.
		for len(live) > 0 {
			o.Checkpoint()
			parallel.ForWorker(len(live), 0, func(w, i int) {
				e := live[i]
				p := hash64(edgeKey(e.U, e.V), o.Seed) | 1
				writeMinU64(&reserve[e.U], p)
				writeMinU64(&reserve[e.V], p)
				o.Env.StateWrite(w, 2)
			})
			winners := make([]bool, len(live))
			wonLists := make([][]uint32, parallel.Workers())
			parallel.ForWorker(len(live), 0, func(w, i int) {
				e := live[i]
				p := hash64(edgeKey(e.U, e.V), o.Seed) | 1
				if atomic.LoadUint64(&reserve[e.U]) == p && atomic.LoadUint64(&reserve[e.V]) == p {
					winners[i] = true
					atomic.StoreUint32(&matched[e.U], 1)
					atomic.StoreUint32(&matched[e.V], 1)
					wonLists[w] = append(wonLists[w], e.U, e.V)
				}
			})
			wonFlat := parallel.FlattenUint32(wonLists)
			for i := 0; i < len(wonFlat); i += 2 {
				matchedEdges = append(matchedEdges, graph.Edge{U: wonFlat[i], V: wonFlat[i+1]})
			}
			// Drop matched-incident edges and reset reservations of
			// surviving endpoints.
			next := parallel.Filter(live, func(e graph.Edge) bool {
				return atomic.LoadUint32(&matched[e.U]) == 0 &&
					atomic.LoadUint32(&matched[e.V]) == 0
			})
			parallel.For(len(next), 0, func(i int) {
				atomic.StoreUint64(&reserve[next[i].U], ^uint64(0))
				atomic.StoreUint64(&reserve[next[i].V], ^uint64(0))
			})
			live = next
		}
		o.Env.Free(phaseWords)

		// Pack the filter: processed edges (lower endpoint below newCut)
		// and matched-incident edges disappear.
		cut := newCut
		f.FilterEdges(func(u, v uint32) bool {
			if matched[u] == 1 || matched[v] == 1 {
				return false
			}
			return min(u, v) >= cut
		})
		vCut = newCut
	}
	return matchedEdges
}

// writeMinU64 is a priority-write on uint64 (reservations start at zero,
// which would always win; initialize by treating 0 as "empty").
func writeMinU64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old != 0 && old <= v {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}
