package algos

import (
	"math"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// Spanner computes an O(k)-spanner (§4.3.1) with the Miller–Peng–Vladu–Xu
// construction: run LDD with β = log n / (2k), keep every cluster's BFS
// tree edge, and keep one edge between each pair of adjacent clusters.
// The result has expected size O(n^(1+1/k)) and preserves distances within
// O(k). With the paper's default k = ⌈log₂ n⌉ the spanner has O(n) edges.
// O(m) expected work, O(k log n) depth whp.
func Spanner(g graph.Adj, o *Options, k int) []graph.Edge {
	o.Checkpoint()
	n := g.NumVertices()
	if k <= 0 {
		k = int(math.Ceil(math.Log2(float64(max(n, 2)))))
	}
	beta := math.Log(float64(max(n, 2))) / (2 * float64(k))
	ldd := LDD(g, o, beta, o.Seed)

	// Tree edges.
	treeIdx := parallel.PackIndex(int(n), func(i int) bool {
		p := ldd.Parent[i]
		return p != Infinity && p != uint32(i)
	})
	out := make([]graph.Edge, len(treeIdx))
	parallel.For(len(treeIdx), 0, func(i int) {
		v := treeIdx[i]
		out[i] = graph.Edge{U: ldd.Parent[v], V: v}
	})

	// One witness edge per adjacent cluster pair, selected with a
	// concurrent hash map keyed by the canonical cluster pair.
	inter := CountInterCluster(g, o, ldd.Cluster)
	if inter == 0 {
		return out
	}
	witness := parallel.NewHashMap64(int(inter) + 1)
	o.Env.Alloc(4 * (inter + 1))
	defer o.Env.Free(4 * (inter + 1))
	parallel.ForBlocks(int(n), 64, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := uint32(i)
			cv := ldd.Cluster[v]
			g.IterRange(v, 0, g.Degree(v), func(_, u uint32, _ int32) bool {
				cu := ldd.Cluster[u]
				if cu != cv {
					witness.InsertMin(edgeKey(cu, cv), edgeKey(v, u))
					o.Env.StateWrite(w, 1)
				}
				return true
			})
		}
	})
	witness.ForEach(func(_, val uint64) {
		u, v := decodeEdgeKey(val)
		out = append(out, graph.Edge{U: u, V: v})
	})
	return out
}
