package algos

import (
	"sage/internal/gfilter"
	"sage/internal/graph"
	"sage/internal/parallel"
)

// TriangleResult carries the count and the two work measures of
// Appendix D.1 / Table 4: IntersectionWork is the number of merge steps
// over directed wedges (fixed by the graph and ordering), and TotalWork
// is the number of edges physically decoded from filter blocks — the
// quantity that grows with the filter block size on compressed inputs.
type TriangleResult struct {
	Count            int64
	IntersectionWork int64
	TotalWork        int64
}

// TriangleCount counts triangles with the oriented intersection algorithm
// of Shun–Tangwongsan as adapted to Sage (§4.3.4): edges are oriented
// from lower to higher rank (degree, then id) *through the graph filter*
// instead of by rewriting the graph, and each directed edge (u, v)
// contributes |N⁺(u) ∩ N⁺(v)| via merge intersection over the filters'
// active lists. O(m^{3/2}) work, O(n + m/64) words of small-memory.
func TriangleCount(g graph.Adj, o *Options) *TriangleResult {
	o.Checkpoint()
	rankLess := func(a, b uint32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	f := o.newFilter(g)
	f.FilterEdges(func(u, v uint32) bool { return rankLess(u, v) })

	n := int(g.NumVertices())
	var shards [parallel.MaxWorkers]struct {
		count int64
		stats gfilter.IntersectStats
		listU []uint32
		listV []uint32
		_     [8]byte
	}
	parallel.ForWorker(n, 1, func(w, i int) {
		sh := &shards[w]
		u := uint32(i)
		if f.Degree(u) == 0 {
			return
		}
		sh.listU = f.ActiveList(w, u, sh.listU, &sh.stats)
		for _, v := range sh.listU {
			if f.Degree(v) == 0 {
				continue
			}
			sh.listV = f.ActiveList(w, v, sh.listV, &sh.stats)
			sh.count += gfilter.IntersectSorted(sh.listU, sh.listV, &sh.stats)
		}
	})
	res := &TriangleResult{}
	for i := range shards {
		res.Count += shards[i].count
		res.IntersectionWork += shards[i].stats.MergeSteps
		res.TotalWork += shards[i].stats.DecodedEdges
	}
	return res
}
