package compress

// LEB128 varints with zigzag encoding for the (possibly negative) first
// difference of each block. These mirror the byte codes of Ligra+ [87].

// varintLen returns the encoded length of x in bytes.
func varintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// putVarint writes x into out, returning the number of bytes written.
func putVarint(out []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		out[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	out[i] = byte(x)
	return i + 1
}

// getVarint decodes a varint from in, returning the value and the number
// of bytes consumed.
//
//sage:hotpath
func getVarint(in []byte) (uint64, int) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		b := in[i]
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, i + 1
		}
		shift += 7
	}
}

// zigzag maps signed to unsigned so small magnitudes stay short.
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
//
//sage:hotpath
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// putU32 writes a little-endian uint32.
func putU32(out []byte, x uint32) {
	out[0] = byte(x)
	out[1] = byte(x >> 8)
	out[2] = byte(x >> 16)
	out[3] = byte(x >> 24)
}

// getU32 reads a little-endian uint32.
//
//sage:hotpath
func getU32(in []byte) uint32 {
	return uint32(in[0]) | uint32(in[1])<<8 | uint32(in[2])<<16 | uint32(in[3])<<24
}
