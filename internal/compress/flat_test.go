package compress

import (
	"math/rand/v2"
	"testing"

	"sage/internal/gen"
	"sage/internal/graph"
)

// TestDecodeRangeMatchesIterRange checks the closure-free decode path
// against the callback path over random ranges, weighted and unweighted,
// across block sizes (including ranges straddling block boundaries).
func TestDecodeRangeMatchesIterRange(t *testing.T) {
	base := gen.RMAT(9, 12, 5)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"unweighted", base},
		{"weighted", gen.AddUniformWeights(base, 3)},
	} {
		for _, bs := range []int{16, 64, 256} {
			c := Compress(tc.g, bs)
			r := rand.New(rand.NewPCG(uint64(bs), 99))
			var buf []uint32
			var wbuf []int32
			for trial := 0; trial < 2000; trial++ {
				v := uint32(r.IntN(int(c.NumVertices())))
				d := c.Degree(v)
				lo := uint32(r.IntN(int(d) + 1))
				hi := lo + uint32(r.IntN(int(d-lo)+2)) // may exceed deg: must clamp
				var wantN []uint32
				var wantW []int32
				c.IterRange(v, lo, hi, func(_, ngh uint32, w int32) bool {
					wantN = append(wantN, ngh)
					wantW = append(wantW, w)
					return true
				})
				buf = c.DecodeRange(v, lo, hi, buf)
				if len(buf) != len(wantN) {
					t.Fatalf("%s/bs%d v=%d [%d,%d): DecodeRange len %d, want %d",
						tc.name, bs, v, lo, hi, len(buf), len(wantN))
				}
				for i := range buf {
					if buf[i] != wantN[i] {
						t.Fatalf("%s/bs%d v=%d [%d,%d): neighbor %d = %d, want %d",
							tc.name, bs, v, lo, hi, i, buf[i], wantN[i])
					}
				}
				buf, wbuf = c.DecodeRangeW(v, lo, hi, buf, wbuf)
				if len(buf) != len(wantN) {
					t.Fatalf("%s/bs%d DecodeRangeW len %d, want %d", tc.name, bs, len(buf), len(wantN))
				}
				if tc.g.Weighted() {
					for i := range wbuf {
						if wbuf[i] != wantW[i] {
							t.Fatalf("%s/bs%d v=%d [%d,%d): weight %d = %d, want %d",
								tc.name, bs, v, lo, hi, i, wbuf[i], wantW[i])
						}
					}
				} else if wbuf != nil {
					t.Fatalf("unweighted DecodeRangeW returned non-nil weights")
				}
			}
		}
	}
}
