package compress

// Closure-free block decoding (the graph.FlatAdj implementation). The
// hot traversal loops hand DecodeRange a per-worker scratch buffer and
// get back a flat neighbor slice: varint decode cost is paid once per
// compression block entered, and the per-edge cost downstream is a plain
// slice iteration instead of an interface-dispatched callback.

// FlatRange implements graph.FlatAdj: byte-compressed adjacency is never
// flat, so callers must decode.
//
//sage:hotpath
func (c *CGraph) FlatRange(_, _, _ uint32) ([]uint32, []int32, bool) {
	return nil, nil, false
}

// DecodeRange implements graph.FlatAdj: it block-decodes the neighbors at
// positions [lo, hi) of v into buf (contents overwritten, capacity grown
// as needed) and returns the filled slice. Positions before lo inside the
// first block are decoded and skipped, the same cost behaviour as
// IterRange (Appendix D.1).
//
//sage:hotpath
func (c *CGraph) DecodeRange(v, lo, hi uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	if hi > c.degrees[v] {
		hi = c.degrees[v]
	}
	if hi <= lo {
		return buf
	}
	region := c.region(v)
	nb := c.numBlocks(v)
	for b := lo / c.blockSize; b <= (hi-1)/c.blockSize && b < nb; b++ {
		blo := b * c.blockSize
		bhi := min(blo+c.blockSize, c.degrees[v])
		pos := int(getU32(region[4*b:]))
		first, k := getVarint(region[pos:])
		pos += k
		ngh := uint32(int64(v) + unzigzag(first))
		if c.weighted {
			_, k := getVarint(region[pos:])
			pos += k
		}
		if blo >= lo {
			buf = append(buf, ngh)
		}
		if blo >= lo && bhi <= hi {
			// Interior block: no per-edge bounds checks needed.
			if c.weighted {
				for i := blo + 1; i < bhi; i++ {
					gap, k := getVarint(region[pos:])
					pos += k
					ngh += uint32(gap)
					_, k = getVarint(region[pos:])
					pos += k
					buf = append(buf, ngh)
				}
			} else {
				for i := blo + 1; i < bhi; i++ {
					gap, k := getVarint(region[pos:])
					pos += k
					ngh += uint32(gap)
					buf = append(buf, ngh)
				}
			}
			continue
		}
		// Boundary block: decode until hi, keep the positions >= lo.
		for i := blo + 1; i < bhi; i++ {
			if i >= hi {
				break
			}
			gap, k := getVarint(region[pos:])
			pos += k
			ngh += uint32(gap)
			if c.weighted {
				_, k := getVarint(region[pos:])
				pos += k
			}
			if i >= lo {
				buf = append(buf, ngh)
			}
		}
	}
	return buf
}

// DecodeRangeW implements graph.FlatAdj: like DecodeRange but also
// decoding the interleaved zigzag-varint weights into wbuf. For
// unweighted graphs the returned weight slice is nil (weights all 1).
//
//sage:hotpath
func (c *CGraph) DecodeRangeW(v, lo, hi uint32, buf []uint32, wbuf []int32) ([]uint32, []int32) {
	if !c.weighted {
		return c.DecodeRange(v, lo, hi, buf), nil
	}
	buf = buf[:0]
	wbuf = wbuf[:0]
	if hi > c.degrees[v] {
		hi = c.degrees[v]
	}
	if hi <= lo {
		return buf, wbuf
	}
	region := c.region(v)
	nb := c.numBlocks(v)
	for b := lo / c.blockSize; b <= (hi-1)/c.blockSize && b < nb; b++ {
		blo := b * c.blockSize
		bhi := min(blo+c.blockSize, c.degrees[v])
		pos := int(getU32(region[4*b:]))
		first, k := getVarint(region[pos:])
		pos += k
		ngh := uint32(int64(v) + unzigzag(first))
		enc, k := getVarint(region[pos:])
		pos += k
		w := int32(unzigzag(enc))
		if blo >= lo {
			buf = append(buf, ngh)
			wbuf = append(wbuf, w)
		}
		for i := blo + 1; i < bhi; i++ {
			if i >= hi {
				break
			}
			gap, k := getVarint(region[pos:])
			pos += k
			ngh += uint32(gap)
			enc, k := getVarint(region[pos:])
			pos += k
			w = int32(unzigzag(enc))
			if i >= lo {
				buf = append(buf, ngh)
				wbuf = append(wbuf, w)
			}
		}
	}
	return buf, wbuf
}
