package compress

import (
	"testing"
	"testing/quick"

	"sage/internal/gen"
	"sage/internal/graph"
)

func TestVarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<35 + 7, ^uint64(0)}
	buf := make([]byte, 12)
	for _, v := range vals {
		n := putVarint(buf, v)
		if n != varintLen(v) {
			t.Fatalf("len mismatch for %d", v)
		}
		got, k := getVarint(buf)
		if got != v || k != n {
			t.Fatalf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestVarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		buf := make([]byte, 12)
		n := putVarint(buf, v)
		got, k := getVarint(buf)
		return got == v && k == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag %d", v)
		}
	}
}

func checkEquivalent(t *testing.T, g *graph.Graph, c *CGraph) {
	t.Helper()
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("header mismatch")
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		if c.Degree(v) != g.Degree(v) {
			t.Fatalf("deg(%d): %d vs %d", v, c.Degree(v), g.Degree(v))
		}
		want := g.Neighbors(v)
		var got []uint32
		c.IterRange(v, 0, c.Degree(v), func(i, ngh uint32, _ int32) bool {
			if int(i) != len(got) {
				t.Fatalf("position misnumbered at %d", v)
			}
			got = append(got, ngh)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d nghs vs %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d[%d]: %d vs %d", v, i, got[i], want[i])
			}
		}
	}
}

func TestCompressRoundTripBlockSizes(t *testing.T) {
	g := gen.RMAT(10, 8, 42)
	for _, bs := range []int{64, 128, 256} {
		c := Compress(g, bs)
		if c.BlockSize() != bs {
			t.Fatalf("block size %d", c.BlockSize())
		}
		checkEquivalent(t, g, c)
	}
}

func TestCompressGrid(t *testing.T) {
	g := gen.Grid2D(20, 20, false)
	checkEquivalent(t, g, Compress(g, 64))
}

func TestCompressSubRange(t *testing.T) {
	g := gen.RMAT(8, 16, 7)
	c := Compress(g, 64)
	for v := uint32(0); v < g.NumVertices(); v++ {
		deg := g.Degree(v)
		if deg < 5 {
			continue
		}
		lo, hi := deg/4, deg/4*3
		want := g.Neighbors(v)[lo:hi]
		var got []uint32
		c.IterRange(v, lo, hi, func(_, ngh uint32, _ int32) bool {
			got = append(got, ngh)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("v=%d range [%d,%d): %d vs %d", v, lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v=%d[%d]", v, i)
			}
		}
	}
}

func TestCompressEarlyExit(t *testing.T) {
	g := gen.Star(100)
	c := Compress(g, 64)
	count := 0
	c.IterRange(0, 0, c.Degree(0), func(_, _ uint32, _ int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early exit count=%d", count)
	}
}

func TestDecodeBlockInto(t *testing.T) {
	g := gen.RMAT(8, 16, 3)
	c := Compress(g, 64)
	buf := make([]uint32, 0, 64)
	for v := uint32(0); v < g.NumVertices(); v++ {
		deg := g.Degree(v)
		nb := (deg + 63) / 64
		var all []uint32
		for b := uint32(0); b < nb; b++ {
			blk := c.DecodeBlockInto(v, b, buf)
			all = append(all, blk...)
		}
		want := g.Neighbors(v)
		if len(all) != len(want) {
			t.Fatalf("v=%d: %d vs %d", v, len(all), len(want))
		}
		for i := range want {
			if all[i] != want[i] {
				t.Fatalf("v=%d[%d]", v, i)
			}
		}
	}
}

func TestScanCostBlockAligned(t *testing.T) {
	g := gen.Star(200) // center degree 199, 4 blocks at bs=64
	c := Compress(g, 64)
	// Reading one edge should cost a full block, not one word.
	oneEdge := c.ScanCost(0, 0, 1)
	fullBlock := c.ScanCost(0, 0, 64)
	if oneEdge != fullBlock {
		t.Fatalf("partial block read cost %d != full block cost %d", oneEdge, fullBlock)
	}
	all := c.ScanCost(0, 0, 199)
	if all < fullBlock {
		t.Fatalf("full scan cheaper than one block")
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	g := gen.RMAT(12, 16, 99)
	c := Compress(g, 64)
	if c.SizeWords() >= g.SizeWords() {
		t.Fatalf("compressed %d words >= raw %d words", c.SizeWords(), g.SizeWords())
	}
}

func TestCompressEmptyAndTinyVertices(t *testing.T) {
	// Vertex 3 is isolated.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOpts{Symmetrize: true})
	c := Compress(g, 64)
	checkEquivalent(t, g, c)
	if c.Degree(3) != 0 {
		t.Fatal("isolated vertex degree")
	}
	c.IterRange(3, 0, 0, func(_, _ uint32, _ int32) bool {
		t.Fatal("iterated empty vertex")
		return false
	})
}

func TestCompressWeightedRoundTrip(t *testing.T) {
	g := gen.AddUniformWeights(gen.RMAT(9, 10, 13), 7)
	c := Compress(g, 64)
	if !c.Weighted() {
		t.Fatal("weighted flag lost")
	}
	for v := uint32(0); v < g.NumVertices(); v++ {
		want := g.Neighbors(v)
		ws := g.NeighborWeights(v)
		var gotN []uint32
		var gotW []int32
		c.IterRange(v, 0, c.Degree(v), func(_, ngh uint32, w int32) bool {
			gotN = append(gotN, ngh)
			gotW = append(gotW, w)
			return true
		})
		if len(gotN) != len(want) {
			t.Fatalf("v=%d: %d vs %d neighbors", v, len(gotN), len(want))
		}
		for i := range want {
			if gotN[i] != want[i] || gotW[i] != ws[i] {
				t.Fatalf("v=%d[%d]: (%d,%d) vs (%d,%d)", v, i, gotN[i], gotW[i], want[i], ws[i])
			}
		}
	}
}

func TestCompressWeightedNegativeWeights(t *testing.T) {
	g := graph.FromWeightedEdges(3, []graph.WEdge{
		{U: 0, V: 1, W: -7}, {U: 1, V: 2, W: 1000000},
	}, graph.BuildOpts{Symmetrize: true})
	c := Compress(g, 64)
	var got []int32
	c.IterRange(1, 0, c.Degree(1), func(_, _ uint32, w int32) bool {
		got = append(got, w)
		return true
	})
	if len(got) != 2 || got[0] != -7 || got[1] != 1000000 {
		t.Fatalf("weights %v", got)
	}
}
