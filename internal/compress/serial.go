package compress

// (De)serialization support for the byte-compressed representation: the
// CGraph's three flat arrays (degrees, per-vertex byte offsets, encoded
// block data) map one-to-one onto v2 container sections, so a compressed
// graph persists without re-encoding and — because every array is flat —
// reopens as views over a memory mapping, exactly like the CSR arrays.

import (
	"fmt"

	"sage/internal/graph"
)

// Degrees exposes the per-vertex degree array (read-only; len n).
func (c *CGraph) Degrees() []uint32 { return c.degrees }

// VtxOff exposes the per-vertex byte-offset array into Data (read-only;
// len n+1).
func (c *CGraph) VtxOff() []uint64 { return c.vtxOff }

// Data exposes the encoded block data (read-only).
func (c *CGraph) Data() []byte { return c.data }

// Sections returns the container sections serializing c (header plus the
// three compressed arrays), streaming from the graph's own storage.
func (c *CGraph) Sections() []graph.Section {
	h := graph.Header{N: c.n, M: c.m, Flags: graph.FlagCompressed, BlockSize: c.blockSize}
	if c.weighted {
		h.Flags |= graph.FlagWeighted
	}
	return []graph.Section{
		graph.HeaderSection(h),
		graph.Uint32Section(graph.SecCDegrees, c.degrees),
		graph.Uint64Section(graph.SecCVtxOff, c.vtxOff),
		graph.BytesSection(graph.SecCData, c.data),
	}
}

// FromParts assembles a CGraph from pre-built arrays (typically views over
// an arena), validating the structural invariants the decoder indexes by:
// array lengths match n, vtxOff is monotone and ends at len(data), degrees
// sum to m, and the block size is positive. Encoded block content is not
// re-walked — like the CSR loader, per-edge validation would fault in the
// whole mapping.
func FromParts(n uint32, m uint64, blockSize uint32, weighted bool,
	degrees []uint32, vtxOff []uint64, data []byte) (*CGraph, error) {
	if blockSize == 0 {
		return nil, fmt.Errorf("compress: zero block size")
	}
	if uint64(len(degrees)) != uint64(n) {
		return nil, fmt.Errorf("compress: %d degrees for n=%d", len(degrees), n)
	}
	if uint64(len(vtxOff)) != uint64(n)+1 {
		return nil, fmt.Errorf("compress: %d vertex offsets for n=%d", len(vtxOff), n)
	}
	if vtxOff[n] != uint64(len(data)) {
		return nil, fmt.Errorf("compress: vertex offsets end %d != data length %d",
			vtxOff[n], len(data))
	}
	var sum uint64
	for v := uint32(0); v < n; v++ {
		if vtxOff[v] > vtxOff[v+1] {
			return nil, fmt.Errorf("compress: vertex offsets not monotone at %d", v)
		}
		sum += uint64(degrees[v])
	}
	if sum != m {
		return nil, fmt.Errorf("compress: degrees sum %d != m %d", sum, m)
	}
	return &CGraph{n: n, m: m, blockSize: blockSize, weighted: weighted,
		degrees: degrees, vtxOff: vtxOff, data: data}, nil
}

// CGraphFromSections assembles a CGraph from parsed container sections.
// With forceCopy false (on a little-endian host) the arrays alias the
// section bytes.
func CGraphFromSections(secs map[uint64][]byte, h graph.Header, forceCopy bool) (*CGraph, error) {
	db, vb := secs[graph.SecCDegrees], secs[graph.SecCVtxOff]
	if uint64(len(db)) != 4*uint64(h.N) {
		return nil, fmt.Errorf("compress: degrees section is %d bytes, want %d for n=%d",
			len(db), 4*uint64(h.N), h.N)
	}
	if uint64(len(vb)) != 8*(uint64(h.N)+1) {
		return nil, fmt.Errorf("compress: vertex-offset section is %d bytes, want %d for n=%d",
			len(vb), 8*(uint64(h.N)+1), h.N)
	}
	data, ok := secs[graph.SecCData]
	if !ok {
		return nil, fmt.Errorf("compress: missing data section")
	}
	if forceCopy {
		data = append([]byte(nil), data...)
	}
	return FromParts(h.N, h.M, h.BlockSize, h.Weighted(),
		graph.Uint32sLE(db, forceCopy), graph.Uint64sLE(vb, forceCopy), data)
}
