// Package compress implements the parallel byte-encoded adjacency format
// that Sage inherits from Ligra+ (§2, §4.2.1): each vertex's sorted
// adjacency list is divided into compression blocks of a fixed number of
// edges; within a block the first neighbor is difference-encoded against
// the vertex id with a signed varint and subsequent neighbors as unsigned
// varint gaps. Each vertex stores a table of per-block byte offsets so
// blocks decode independently and in parallel — the property the graph
// filter relies on (the filter block size must equal the compression
// block size, §4.2.1).
package compress

import (
	"fmt"

	"sage/internal/graph"
	"sage/internal/parallel"
)

// DefaultBlockSize is the compression block size used by the experiments
// unless a sweep overrides it; the paper settles on 64 (Appendix D.1).
const DefaultBlockSize = 64

// CGraph is an immutable byte-compressed graph implementing graph.Adj.
// The degrees, block-offset tables, and encoded data all reside in the
// simulated NVRAM region. Weighted graphs interleave a zigzag-varint
// weight after each difference-encoded neighbor, as Ligra+ does [87].
type CGraph struct {
	n         uint32
	m         uint64
	blockSize uint32
	weighted  bool
	//sage:arena
	degrees []uint32
	//sage:arena
	vtxOff []uint64 // byte offset of each vertex's region in data; len n+1
	//sage:arena
	data []byte
}

// Compress encodes g with the given block size (edges per block).
// Weighted graphs are supported: weights are interleaved per edge.
func Compress(g *graph.Graph, blockSize int) *CGraph {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := g.NumVertices()
	bs := uint32(blockSize)
	weighted := g.Weighted()
	sizes := make([]uint64, n+1)
	parallel.For(int(n), 64, func(i int) {
		v := uint32(i)
		sizes[i] = uint64(encodedSize(v, g.Neighbors(v), g.NeighborWeights(v), bs))
	})
	total := parallel.Scan(sizes)
	data := make([]byte, total)
	degrees := make([]uint32, n)
	parallel.For(int(n), 64, func(i int) {
		v := uint32(i)
		degrees[i] = g.Degree(v)
		encodeVertex(v, g.Neighbors(v), g.NeighborWeights(v), bs, data[sizes[i]:sizes[i+1]])
	})
	return &CGraph{n: n, m: g.NumEdges(), blockSize: bs, weighted: weighted,
		degrees: degrees, vtxOff: sizes, data: data}
}

// numBlocks returns ceil(deg/blockSize) for vertex v.
//
//sage:hotpath
func (c *CGraph) numBlocks(v uint32) uint32 {
	d := c.degrees[v]
	if d == 0 {
		return 0
	}
	return (d + c.blockSize - 1) / c.blockSize
}

// encodedSize computes the byte length of a vertex's region: the block
// offset table (4 bytes per block) plus the encoded blocks (gaps, with a
// zigzag weight after each neighbor when ws is non-nil).
func encodedSize(v uint32, nghs []uint32, ws []int32, bs uint32) int {
	d := uint32(len(nghs))
	if d == 0 {
		return 0
	}
	nb := int((d + bs - 1) / bs)
	size := 4 * nb
	for b := 0; b < nb; b++ {
		lo := b * int(bs)
		hi := min(lo+int(bs), len(nghs))
		size += varintLen(zigzag(int64(nghs[lo]) - int64(v)))
		if ws != nil {
			size += varintLen(zigzag(int64(ws[lo])))
		}
		for i := lo + 1; i < hi; i++ {
			size += varintLen(uint64(nghs[i] - nghs[i-1]))
			if ws != nil {
				size += varintLen(zigzag(int64(ws[i])))
			}
		}
	}
	return size
}

// encodeVertex writes the block table and encoded blocks into out, which
// must have the exact encodedSize length.
func encodeVertex(v uint32, nghs []uint32, ws []int32, bs uint32, out []byte) {
	d := uint32(len(nghs))
	if d == 0 {
		return
	}
	nb := int((d + bs - 1) / bs)
	pos := 4 * nb
	for b := 0; b < nb; b++ {
		putU32(out[4*b:], uint32(pos))
		lo := b * int(bs)
		hi := min(lo+int(bs), len(nghs))
		pos += putVarint(out[pos:], zigzag(int64(nghs[lo])-int64(v)))
		if ws != nil {
			pos += putVarint(out[pos:], zigzag(int64(ws[lo])))
		}
		for i := lo + 1; i < hi; i++ {
			pos += putVarint(out[pos:], uint64(nghs[i]-nghs[i-1]))
			if ws != nil {
				pos += putVarint(out[pos:], zigzag(int64(ws[i])))
			}
		}
	}
	if pos != len(out) {
		panic(fmt.Sprintf("compress: encoded %d bytes, expected %d", pos, len(out)))
	}
}

// NumVertices implements graph.Adj.
func (c *CGraph) NumVertices() uint32 { return c.n }

// NumEdges implements graph.Adj.
func (c *CGraph) NumEdges() uint64 { return c.m }

// Degree implements graph.Adj.
//
//sage:hotpath
func (c *CGraph) Degree(v uint32) uint32 { return c.degrees[v] }

// Weighted implements graph.Adj.
func (c *CGraph) Weighted() bool { return c.weighted }

// BlockSize implements graph.Adj.
func (c *CGraph) BlockSize() int { return int(c.blockSize) }

// AvgDegree implements graph.Adj.
func (c *CGraph) AvgDegree() uint32 {
	if c.n == 0 {
		return 1
	}
	d := uint32(c.m / uint64(c.n))
	if d < 1 {
		d = 1
	}
	return d
}

// EdgeAddr implements graph.Adj: the simulated address space places the
// degree/offset arrays at [0, 2n) and the byte data (word-granular) after.
func (c *CGraph) EdgeAddr(v uint32) int64 {
	return 2*int64(c.n) + int64(c.vtxOff[v]/8)
}

// ScanCost implements graph.Adj: decoding positions [lo, hi) requires
// reading the whole blocks covering the range; partial blocks cost fully.
func (c *CGraph) ScanCost(v uint32, lo, hi uint32) int64 {
	if hi <= lo || c.degrees[v] == 0 {
		return 0
	}
	b0 := lo / c.blockSize
	b1 := (hi - 1) / c.blockSize
	region := c.region(v)
	nb := c.numBlocks(v)
	start := getU32(region[4*b0:])
	var end uint32
	if b1+1 < nb {
		end = getU32(region[4*(b1+1):])
	} else {
		end = uint32(len(region))
	}
	// Block table reads (half a word per block) plus encoded bytes in words.
	return int64(b1-b0+1)/2 + int64(end-start+7)/8
}

// region returns the encoded byte region of v.
//
//sage:arena-view
//sage:hotpath
func (c *CGraph) region(v uint32) []byte {
	return c.data[c.vtxOff[v]:c.vtxOff[v+1]]
}

// DecodedEdges is a decode-work counter: IterRange and DecodeBlockInto add
// the number of edges physically decoded (Table 4's "total work" column is
// accumulated by the caller from the return values below).

// IterRange implements graph.Adj. Because blocks decode sequentially,
// positions before lo inside the first block are decoded and skipped — the
// cost behaviour Appendix D.1 studies.
func (c *CGraph) IterRange(v uint32, lo, hi uint32, fn func(i, ngh uint32, w int32) bool) {
	if hi > c.degrees[v] {
		hi = c.degrees[v]
	}
	if hi <= lo {
		return
	}
	region := c.region(v)
	nb := c.numBlocks(v)
	for b := lo / c.blockSize; b <= (hi-1)/c.blockSize && b < nb; b++ {
		if !c.decodeBlock(v, b, region, func(i, ngh uint32, w int32) bool {
			if i < lo {
				return true
			}
			if i >= hi {
				return false
			}
			return fn(i, ngh, w)
		}) {
			return
		}
	}
}

// decodeBlock walks block b of v's region, calling fn(pos, ngh, w) with
// the global adjacency position; it returns false if fn aborted.
// Unweighted graphs pass w = 1.
//
//sage:hotpath
func (c *CGraph) decodeBlock(v, b uint32, region []byte, fn func(i, ngh uint32, w int32) bool) bool {
	lo := b * c.blockSize
	hi := min(lo+c.blockSize, c.degrees[v])
	pos := int(getU32(region[4*b:]))
	first, k := getVarint(region[pos:])
	pos += k
	ngh := uint32(int64(v) + unzigzag(first))
	w := int32(1)
	if c.weighted {
		enc, k := getVarint(region[pos:])
		pos += k
		w = int32(unzigzag(enc))
	}
	if !fn(lo, ngh, w) {
		return false
	}
	for i := lo + 1; i < hi; i++ {
		gap, k := getVarint(region[pos:])
		pos += k
		ngh += uint32(gap)
		if c.weighted {
			enc, k := getVarint(region[pos:])
			pos += k
			w = int32(unzigzag(enc))
		}
		if !fn(i, ngh, w) {
			return false
		}
	}
	return true
}

// DecodeBlockInto decodes the full compression block b of vertex v into
// buf and returns the neighbor slice. The graph filter uses it to fetch
// the edges behind a filter block (§4.2.3: "we immediately decompress the
// entire block and store it locally").
func (c *CGraph) DecodeBlockInto(v, b uint32, buf []uint32) []uint32 {
	if b >= c.numBlocks(v) {
		return buf[:0]
	}
	lo := b * c.blockSize
	return c.DecodeRange(v, lo, lo+c.blockSize, buf)
}

// SizeWords reports the simulated NVRAM footprint in words.
func (c *CGraph) SizeWords() int64 {
	return 2*int64(c.n) + int64(len(c.data)+7)/8
}

// DataBytes reports the encoded data size (compression-ratio reporting).
func (c *CGraph) DataBytes() int { return len(c.data) }
