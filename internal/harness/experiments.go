package harness

import (
	"fmt"
	"time"

	"sage/internal/algos"
	"sage/internal/galois"
	"sage/internal/gbbs"
	"sage/internal/psam"
	"sage/internal/traverse"
)

// SageConfig is the paper's Sage configuration: App-Direct NVRAM,
// chunked traversal, DRAM graph filters.
func SageConfig() Config {
	return Config{Name: "Sage-NVRAM", Mode: psam.AppDirect, Strategy: traverse.Chunked}
}

// RunFig1 regenerates Figure 1: the 19 problems on a larger-than-DRAM
// graph under Sage (App-Direct), GBBS under Memory Mode, and the
// Galois-style vertex-centric baseline under Memory Mode, reporting the
// slowdown of each system relative to the fastest per problem.
func RunFig1(scale int) *Report {
	w := NewWorkload(scale)
	configs := []Config{
		SageConfig(),
		{Name: "GBBS-MemMode", Mode: psam.MemoryMode, Strategy: traverse.Blocked, Mutating: true, CacheDiv: 8},
	}
	rep := &Report{
		ID:      "fig1",
		Title:   fmt.Sprintf("NVRAM systems on larger-than-DRAM graph (RMAT scale %d: n=%d, m=%d)", scale, w.G.NumVertices(), w.G.NumEdges()),
		Columns: []string{"Problem", "Sage-NVRAM", "GBBS-MemMode", "Galois", "slow(Sage)", "slow(GBBS)", "slow(Galois)"},
	}
	// The Galois average covers the five problems Gill et al. [43]
	// implement comparably; their k-core solves a different problem
	// (single-k, §5.5) and is excluded from the average as in the paper.
	galoisComparable := map[string]bool{
		"BFS": true, "Bellman-Ford": true, "Betweenness": true,
		"Connectivity": true, "PageRank": true,
	}
	var sageVsGBBS, sageVsGalois []float64
	for _, p := range Problems() {
		costs := make([]float64, len(configs))
		for i, c := range configs {
			cost, _ := c.run(p, w)
			costs[i] = float64(cost)
		}
		galoisCost := -1.0
		if p.Galois != nil {
			g := w.graphFor(p)
			e := galois.New(g, g.SizeWords()/8)
			p.Galois(e)
			galoisCost = float64(e.Env.Cost())
		}
		best := costs[0]
		for _, c := range costs[1:] {
			best = min(best, c)
		}
		if galoisCost > 0 {
			best = min(best, galoisCost)
		}
		row := []string{p.Name, fmtCost(costs[0]), fmtCost(costs[1])}
		if galoisCost > 0 {
			row = append(row, fmtCost(galoisCost))
		} else {
			row = append(row, "-")
		}
		row = append(row, fmtRatio(costs[0]/best), fmtRatio(costs[1]/best))
		switch {
		case galoisCost > 0 && galoisComparable[p.Name]:
			row = append(row, fmtRatio(galoisCost/best))
			sageVsGalois = append(sageVsGalois, galoisCost/costs[0])
		case galoisCost > 0:
			row = append(row, fmtRatio(galoisCost/best)+"*")
		default:
			row = append(row, "-")
		}
		rep.Rows = append(rep.Rows, row)
		sageVsGBBS = append(sageVsGBBS, costs[1]/costs[0])
		rep.Metric(p.Name+"/gbbs_over_sage", costs[1]/costs[0])
		if galoisCost > 0 {
			rep.Metric(p.Name+"/galois_over_sage", galoisCost/costs[0])
		}
	}
	gm := geoMean(sageVsGBBS)
	rep.Metric("avg/gbbs_over_sage", gm)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Sage (App-Direct) vs GBBS (Memory Mode): %.2fx faster on average (paper: 1.87x)", gm))
	if len(sageVsGalois) > 0 {
		gm2 := geoMean(sageVsGalois)
		rep.Metric("avg/galois_over_sage", gm2)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"Sage (App-Direct) vs Galois-style (Memory Mode), 5 comparable problems: %.2fx faster on average (paper: 1.94x)", gm2))
		rep.Notes = append(rep.Notes,
			"* Galois k-core computes a single k-core, not all corenesses; excluded from the average (§5.5).")
	}
	return rep
}

// RunFig7 regenerates Figure 7: the four in-DRAM-capable configurations
// on a graph that fits in DRAM — GBBS-DRAM, GBBS-NVRAM (libvmmalloc),
// Sage-DRAM, and Sage-NVRAM — as slowdowns against the fastest.
func RunFig7(scale int) *Report {
	w := NewWorkload(scale)
	configs := []Config{
		{Name: "GBBS-DRAM", Mode: psam.DRAMOnly, Strategy: traverse.Blocked, Mutating: true},
		{Name: "GBBS-NVRAM(libvmmalloc)", Mode: psam.NVRAMAll, Strategy: traverse.Blocked, Mutating: true},
		{Name: "Sage-DRAM", Mode: psam.DRAMOnly, Strategy: traverse.Chunked},
		{Name: "Sage-NVRAM", Mode: psam.AppDirect, Strategy: traverse.Chunked},
	}
	rep := &Report{
		ID:    "fig7",
		Title: fmt.Sprintf("DRAM vs NVRAM configurations on in-memory graph (RMAT scale %d)", scale),
		Columns: []string{"Problem", "GBBS-DRAM", "GBBS-libvmm", "Sage-DRAM", "Sage-NVRAM",
			"slowdowns (vs fastest)"},
	}
	var nvramOverDram, vmOverSage, gbbsOverSageDram []float64
	for _, p := range Problems() {
		costs := make([]float64, len(configs))
		for i, c := range configs {
			cost, _ := c.run(p, w)
			costs[i] = float64(cost)
		}
		best := costs[0]
		for _, c := range costs[1:] {
			best = min(best, c)
		}
		slows := make([]string, len(configs))
		for i := range configs {
			slows[i] = fmtRatio(costs[i] / best)
		}
		rep.Rows = append(rep.Rows, []string{
			p.Name, fmtCost(costs[0]), fmtCost(costs[1]), fmtCost(costs[2]), fmtCost(costs[3]),
			fmt.Sprintf("%s / %s / %s / %s", slows[0], slows[1], slows[2], slows[3]),
		})
		nvramOverDram = append(nvramOverDram, costs[3]/costs[2])
		vmOverSage = append(vmOverSage, costs[1]/costs[3])
		gbbsOverSageDram = append(gbbsOverSageDram, costs[0]/costs[2])
		rep.Metric(p.Name+"/sage_nvram_over_sage_dram", costs[3]/costs[2])
		rep.Metric(p.Name+"/libvmm_over_sage_nvram", costs[1]/costs[3])
		rep.Metric(p.Name+"/gbbs_dram_over_sage_dram", costs[0]/costs[2])
	}
	rep.Metric("avg/sage_nvram_over_sage_dram", geoMean(nvramOverDram))
	rep.Metric("avg/libvmm_over_sage_nvram", geoMean(vmOverSage))
	rep.Metric("avg/gbbs_dram_over_sage_dram", geoMean(gbbsOverSageDram))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Sage-NVRAM vs Sage-DRAM: %.2fx (paper: ~1.05x — NVRAM reads mostly hidden)",
			geoMean(nvramOverDram)),
		fmt.Sprintf("GBBS-libvmmalloc vs Sage-NVRAM: %.2fx slower (paper: 6.69x)",
			geoMean(vmOverSage)),
		fmt.Sprintf("GBBS-DRAM vs Sage-DRAM: %.2fx (paper: Sage 1.17x faster in DRAM)",
			geoMean(gbbsOverSageDram)),
	)
	return rep
}

// RunTable1 regenerates Table 1's asymmetry claim: Sage's measured PSAM
// cost is independent of ω, while the GBBS/libvmmalloc configuration
// scales with it (Θ(ωW)).
func RunTable1(scale int) *Report {
	w := NewWorkload(scale)
	omegas := []int64{1, 4, 8, 16}
	rep := &Report{
		ID:      "table1",
		Title:   "PSAM cost as a function of write asymmetry omega",
		Columns: []string{"Problem", "System", "w=1", "w=4", "w=8", "w=16", "growth(w16/w1)"},
	}
	problems := []string{"BFS", "Connectivity", "Maximal-Matching", "Triangle-Count", "k-Core", "PageRank-Iter"}
	want := map[string]bool{}
	for _, p := range problems {
		want[p] = true
	}
	for _, p := range Problems() {
		if !want[p.Name] {
			continue
		}
		for _, sys := range []struct {
			name string
			cfg  Config
		}{
			{"Sage", SageConfig()},
			{"GBBS-NVRAM", Config{Name: "gbbs", Mode: psam.NVRAMAll, Strategy: traverse.Blocked, Mutating: true}},
		} {
			// Run once; recost under each omega (counts are fixed).
			g := w.graphFor(p)
			env := psam.NewEnv(sys.cfg.Mode)
			o := optionsFor(sys.cfg, env)
			p.Run(o, w, g)
			counts := env.Totals()
			row := []string{p.Name, sys.name}
			var first, last int64
			for i, om := range omegas {
				cost := counts.Cost(psam.Config{NVRAMRead: 1, Omega: om})
				row = append(row, fmtCost(float64(cost)))
				if i == 0 {
					first = cost
				}
				last = cost
			}
			growth := float64(last) / float64(first)
			row = append(row, fmtRatio(growth))
			rep.Rows = append(rep.Rows, row)
			rep.Metric(p.Name+"/"+sys.name+"/growth", growth)
		}
	}
	rep.Notes = append(rep.Notes,
		"Sage growth = 1.00 for every problem: zero NVRAM writes means cost independent of omega (Table 1, 'Sage Work').",
		"GBBS growth > 1: write-bearing work scales as Theta(omega*W) (Table 1, 'GBBS Work').")
	return rep
}

// optionsFor builds algorithm options for a config over an existing env.
func optionsFor(c Config, env *psam.Env) *algos.Options {
	var o *algos.Options
	if c.Mutating {
		o = gbbs.Options(env)
	} else {
		o = algos.Defaults().WithEnv(env)
	}
	o.Traverse.Strategy = c.Strategy
	return o
}

func fmtCost(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }
