package harness

// Workload caching through the dataset layer: regenerating the R-MAT
// workload dominates short benchmark runs, so the harness can persist the
// three workload graphs in the v2 binary container and reopen them
// memory-mapped on subsequent runs — the graphs are then consumed in
// place from storage, which is the system configuration the paper
// benchmarks in the first place (graph on NVRAM, state in DRAM).

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/store"
)

var cacheMu sync.Mutex
var cacheDir string
var cacheOpen []*store.Dataset

// SetWorkloadCache points NewWorkload at a directory of persisted
// workloads (creating it if needed). An empty dir disables caching.
// Datasets opened from the cache stay mapped until CloseWorkloadCache.
func SetWorkloadCache(dir string) error {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	cacheDir = dir
	return nil
}

// CloseWorkloadCache releases every mapping the cache handed out. The
// workloads obtained from cached NewWorkload calls are invalid afterwards.
func CloseWorkloadCache() error {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	var first error
	for _, ds := range cacheOpen {
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	cacheOpen = nil
	return first
}

// cachedWorkload loads (or builds and best-effort persists) the workload
// for scale.
func cachedWorkload(scale int, dir string) *Workload {
	names := []string{"g", "wg", "setcover"}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(dir, fmt.Sprintf("rmat-s%d-%s.sg", scale, name))
	}
	graphs := make([]*graph.Graph, len(names))
	var opened []*store.Dataset
	hit := true
	for i, p := range paths {
		ds, err := store.Open(p, store.OpenOptions{})
		if err != nil {
			hit = false
			break
		}
		if ds.CSR() == nil {
			ds.Close()
			hit = false
			break
		}
		opened = append(opened, ds)
		graphs[i] = ds.CSR()
	}
	if hit {
		cacheMu.Lock()
		cacheOpen = append(cacheOpen, opened...)
		cacheMu.Unlock()
		return &Workload{Scale: scale, G: graphs[0], WG: graphs[1],
			SetCover: graphs[2], NumSets: graphs[0].NumVertices()}
	}
	for _, ds := range opened {
		ds.Close()
	}
	// Miss: build in memory and persist for the next run. Persisting is
	// best-effort — the workload was just generated at full cost, so a
	// cache-write failure (read-only dir, full disk) must not throw it
	// away and force a second generation.
	g := gen.RMAT(scale, 16, 0x5a6e+uint64(scale))
	wg := gen.AddUniformWeights(g, 77)
	sc, ns := SetCoverInstance(g)
	for i, gr := range []*graph.Graph{g, wg, sc} {
		if err := store.Create(paths[i], store.NewDataset(gr, nil), store.FormatBinary); err != nil {
			break // a partial cache is fine: the next run re-misses
		}
	}
	return &Workload{Scale: scale, G: g, WG: wg, SetCover: sc, NumSets: ns}
}
