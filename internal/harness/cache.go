package harness

// Workload caching through the dataset layer: regenerating the R-MAT
// workload dominates short benchmark runs, so the harness can persist the
// three workload graphs in the v2 binary container and reopen them
// memory-mapped on subsequent runs — the graphs are then consumed in
// place from storage, which is the system configuration the paper
// benchmarks in the first place (graph on NVRAM, state in DRAM).
//
// The opened datasets are held in the shared store.Cache — the same
// refcounted cache the serving layer's catalog uses — so repeated
// NewWorkload calls at one scale share a single mapping.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/store"
)

var cacheMu sync.Mutex
var cacheDir string
var datasetCache = store.NewCache(0) // unlimited: benchmarks pin their workloads
var cacheHeld []*store.Handle

// SetWorkloadCache points NewWorkload at a directory of persisted
// workloads (creating it if needed). An empty dir disables caching.
// Datasets opened from the cache stay mapped until CloseWorkloadCache.
func SetWorkloadCache(dir string) error {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	cacheDir = dir
	return nil
}

// CloseWorkloadCache releases every mapping the cache handed out. The
// workloads obtained from cached NewWorkload calls are invalid afterwards.
func CloseWorkloadCache() error {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	for _, h := range cacheHeld {
		h.Release()
	}
	cacheHeld = nil
	return datasetCache.Clear()
}

// cachedWorkload loads (or builds and best-effort persists) the workload
// for scale.
func cachedWorkload(scale int, dir string) *Workload {
	names := []string{"g", "wg", "setcover"}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(dir, fmt.Sprintf("rmat-s%d-%s.sg", scale, name))
	}
	graphs := make([]*graph.Graph, len(names))
	var held []*store.Handle
	hit := true
	for i, p := range paths {
		h, err := datasetCache.Acquire(p, store.OpenOptions{})
		if err != nil {
			hit = false
			break
		}
		if h.Dataset().CSR() == nil {
			h.Release()
			hit = false
			break
		}
		held = append(held, h)
		graphs[i] = h.Dataset().CSR()
	}
	if hit {
		cacheMu.Lock()
		cacheHeld = append(cacheHeld, held...)
		cacheMu.Unlock()
		return &Workload{Scale: scale, G: graphs[0], WG: graphs[1],
			SetCover: graphs[2], NumSets: graphs[0].NumVertices()}
	}
	for _, h := range held {
		h.Release()
	}
	// Best-effort: drop idle mappings of these paths before the files
	// are rewritten below. Entries another goroutine still references
	// survive (store.Create replaces the path by rename, so a live
	// mapping keeps the old inode — never corruption), and a stale hit
	// on such an entry is harmless because the workload content is
	// deterministic in (scale, seed): old and new bytes are identical.
	for _, p := range paths {
		datasetCache.Evict(p)
	}
	// Miss: build in memory and persist for the next run. Persisting is
	// best-effort — the workload was just generated at full cost, so a
	// cache-write failure (read-only dir, full disk) must not throw it
	// away and force a second generation.
	g := gen.RMAT(scale, 16, 0x5a6e+uint64(scale))
	wg := gen.AddUniformWeights(g, 77)
	sc, ns := SetCoverInstance(g)
	for i, gr := range []*graph.Graph{g, wg, sc} {
		if err := store.Create(paths[i], store.NewDataset(gr, nil), store.FormatBinary); err != nil {
			break // a partial cache is fine: the next run re-misses
		}
	}
	return &Workload{Scale: scale, G: g, WG: wg, SetCover: sc, NumSets: ns}
}
