package harness

import (
	"path/filepath"
	"testing"
)

// TestWorkloadCacheRoundTrip builds a workload twice through a cache
// directory: the second call must reopen the persisted graphs (mapped,
// when the platform supports it) and agree with the first structurally.
func TestWorkloadCacheRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	if err := SetWorkloadCache(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		SetWorkloadCache("")
		if err := CloseWorkloadCache(); err != nil {
			t.Fatal(err)
		}
	}()
	a := NewWorkload(8) // miss: generates and persists
	b := NewWorkload(8) // hit: reopens from disk
	if a.G.NumEdges() != b.G.NumEdges() || a.WG.NumEdges() != b.WG.NumEdges() ||
		a.SetCover.NumEdges() != b.SetCover.NumEdges() || a.NumSets != b.NumSets {
		t.Fatalf("cached workload differs: %+v vs %+v", a, b)
	}
	if !b.WG.Weighted() {
		t.Fatal("weighted graph lost its weights through the cache")
	}
	for v := uint32(0); v < a.G.NumVertices(); v++ {
		an, bn := a.G.Neighbors(v), b.G.Neighbors(v)
		if len(an) != len(bn) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(an), len(bn))
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("vertex %d neighbor %d differs", v, i)
			}
		}
	}
}
