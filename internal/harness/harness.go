// Package harness drives the paper's experiments (§5): each exported
// RunXxx function regenerates one table or figure of the evaluation over
// the synthetic workloads, returning a Report that the cmd/sage-bench
// tool prints and the test suite asserts shape properties on
// (who wins, by roughly what factor, where crossovers fall).
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sage/internal/algos"
	"sage/internal/galois"
	"sage/internal/gbbs"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/psam"
	"sage/internal/traverse"
)

// Report is one experiment's output: a titled table plus free-form
// summary lines (the "averages" sentences of the paper's prose).
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics holds machine-readable values keyed by "row/column" for the
	// shape assertions in the test suite.
	Metrics map[string]float64
}

// Metric records a machine-readable value.
func (r *Report) Metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = v
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "-- %s\n", n)
	}
	return b.String()
}

// Workload bundles the graphs one experiment scale uses.
type Workload struct {
	Scale    int
	G        *graph.Graph // symmetrized R-MAT
	WG       *graph.Graph // weighted variant
	SetCover *graph.Graph // bipartite instance derived from G
	NumSets  uint32
}

// NewWorkload builds the standard workload at 2^scale vertices with
// average degree ~16 (the social/web regime of Table 2). When a workload
// cache is configured (SetWorkloadCache), the graphs are persisted through
// the dataset layer and reopened memory-mapped instead of regenerated.
func NewWorkload(scale int) *Workload {
	cacheMu.Lock()
	dir := cacheDir
	cacheMu.Unlock()
	if dir != "" {
		// Cache trouble (unwritable dir, corrupt file) degrades to plain
		// generation inside cachedWorkload: the benchmark must still run.
		return cachedWorkload(scale, dir)
	}
	g := gen.RMAT(scale, 16, 0x5a6e+uint64(scale))
	wg := gen.AddUniformWeights(g, 77)
	sc, ns := SetCoverInstance(g)
	return &Workload{Scale: scale, G: g, WG: wg, SetCover: sc, NumSets: ns}
}

// SetCoverInstance derives a bipartite set-cover instance from a graph:
// every vertex is a set covering its neighborhood (the GBBS formulation).
func SetCoverInstance(g *graph.Graph) (*graph.Graph, uint32) {
	n := g.NumVertices()
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := uint32(0); v < n; v++ {
		for _, u := range g.Neighbors(v) {
			edges = append(edges, graph.Edge{U: v, V: n + u})
		}
	}
	return graph.FromEdges(2*n, edges, graph.BuildOpts{Symmetrize: true}), n
}

// Problem is one of the benchmarked graph problems. Run executes it
// against the appropriate workload graph under the given options.
type Problem struct {
	Name     string
	Weighted bool
	SetCover bool
	// Run executes the Sage/GBBS implementation.
	Run func(o *algos.Options, w *Workload, adj graph.Adj)
	// Galois executes the vertex-centric baseline (nil when [43] has no
	// implementation for the problem).
	Galois func(e *galois.Engine)
}

// galoisRunners maps registry names to the vertex-centric baseline of
// Gill et al. [43], for the problems it implements comparably (plus its
// single-k k-core, excluded from averages as in §5.5).
func galoisRunners() map[string]func(*galois.Engine) {
	return map[string]func(*galois.Engine){
		"bfs":           func(e *galois.Engine) { e.BFS(0) },
		"bellmanford":   func(e *galois.Engine) { e.SSSP(0) },
		"bc":            func(e *galois.Engine) { e.Betweenness(0) },
		"cc":            func(e *galois.Engine) { e.Connectivity() },
		"kcore":         func(e *galois.Engine) { e.KCoreSingleK(10) },
		"pagerank-iter": func(e *galois.Engine) { e.PageRank(1) },
		"pagerank":      func(e *galois.Engine) { e.PageRank(30) },
	}
}

// benchArgs pins the evaluation's per-problem parameters where they
// differ from the registry defaults (§5.3 runs PageRank for at most 30
// iterations).
var benchArgs = map[string]algos.Args{
	"pagerank": {Eps: 1e-6, MaxIters: 30},
}

// Problems is the Figure 1 suite in the paper's order, derived from the
// shared algorithm registry: the specs flagged Fig1, each bound to the
// evaluation's parameters and (where available) the Galois baseline.
func Problems() []Problem {
	gal := galoisRunners()
	var out []Problem
	for _, s := range algos.Registry() {
		if !s.Fig1 {
			continue
		}
		spec := s
		args := benchArgs[s.Name]
		out = append(out, Problem{
			Name:     spec.Title,
			Weighted: spec.Weighted,
			SetCover: spec.SetCover,
			Run: func(o *algos.Options, w *Workload, adj graph.Adj) {
				a := args
				if spec.SetCover {
					a.NumSets = w.NumSets
				}
				spec.Run(adj, o, a)
			},
			Galois: gal[spec.Name],
		})
	}
	return out
}

// graphFor selects the workload graph a problem runs against.
func (w *Workload) graphFor(p Problem) *graph.Graph {
	switch {
	case p.Weighted:
		return w.WG
	case p.SetCover:
		return w.SetCover
	default:
		return w.G
	}
}

// Config is one memory/traversal configuration under comparison.
type Config struct {
	Name     string
	Mode     psam.Mode
	Strategy traverse.Strategy
	Mutating bool  // GBBS mutation-based filtering
	CacheDiv int64 // MemoryMode cache = graph words / CacheDiv
}

// run executes problem p under configuration c, returning the simulated
// PSAM cost and the wall-clock time.
func (c Config) run(p Problem, w *Workload) (int64, time.Duration) {
	g := w.graphFor(p)
	env := psam.NewEnv(c.Mode)
	if c.Mode == psam.MemoryMode {
		div := c.CacheDiv
		if div == 0 {
			div = 8
		}
		env.WithCache(g.SizeWords() / div)
	}
	var o *algos.Options
	if c.Mutating {
		o = gbbs.Options(env)
	} else {
		o = algos.Defaults().WithEnv(env)
	}
	o.Traverse.Strategy = c.Strategy
	start := time.Now()
	p.Run(o, w, g)
	return env.Cost(), time.Since(start)
}

// fmtRatio formats a slowdown ratio like the figures' bar labels.
func fmtRatio(v float64) string { return fmt.Sprintf("%.2f", v) }

// geoMean computes the geometric mean of the values.
func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	acc := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		acc += math.Log(v)
	}
	return math.Exp(acc / float64(len(vals)))
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
