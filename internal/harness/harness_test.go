package harness

import (
	"strings"
	"testing"
)

// The harness tests assert the *shape* of every reproduced result: who
// wins, in which direction, and (loosely) by what kind of factor — the
// reproduction criteria for the paper's evaluation.

const testScale = 12

func TestFig1Shape(t *testing.T) {
	rep := RunFig1(testScale)
	if got := rep.Metrics["avg/gbbs_over_sage"]; got < 1.2 {
		t.Fatalf("Sage should beat GBBS-MemMode on average; got %.2fx (paper 1.87x)", got)
	}
	if got := rep.Metrics["avg/galois_over_sage"]; got < 1.0 {
		t.Fatalf("Sage should beat the Galois baseline on average; got %.2fx (paper 1.94x)", got)
	}
	// Every problem must have been measured.
	if len(rep.Rows) != len(Problems()) {
		t.Fatalf("expected %d rows, got %d", len(Problems()), len(rep.Rows))
	}
}

func TestFig2Shape(t *testing.T) {
	rep := RunFig2()
	if frac := rep.Metrics["frac_davg_ge_10"]; frac < 0.9 {
		t.Fatalf("corpus density fraction %.2f < 0.9", frac)
	}
	if len(rep.Rows) != 42 {
		t.Fatalf("corpus rows %d != 42", len(rep.Rows))
	}
}

func TestFig7Shape(t *testing.T) {
	rep := RunFig7(testScale)
	// Sage on NVRAM matches Sage on DRAM in the PSAM (paper: within 5%).
	if r := rep.Metrics["avg/sage_nvram_over_sage_dram"]; r < 0.99 || r > 1.06 {
		t.Fatalf("Sage-NVRAM/Sage-DRAM = %.3f, want ~1.0 (paper 1.05)", r)
	}
	// libvmmalloc conversion is substantially slower than Sage on NVRAM.
	if r := rep.Metrics["avg/libvmm_over_sage_nvram"]; r < 1.5 {
		t.Fatalf("libvmmalloc only %.2fx slower than Sage-NVRAM (paper 6.69x)", r)
	}
	// Every problem individually: libvmmalloc never beats Sage-NVRAM.
	for _, p := range Problems() {
		if r := rep.Metrics[p.Name+"/libvmm_over_sage_nvram"]; r < 1.0 {
			t.Fatalf("%s: libvmmalloc beat Sage-NVRAM (%.2f)", p.Name, r)
		}
	}
	// Triangle counting is the paper's noted non-win (GBBS-DRAM 1.73x
	// faster on compressed inputs; Table 4 covers the decode
	// amplification). On CSR the filter's active-position fast path
	// brings the two designs to parity — assert they stay comparable
	// rather than Sage winning outright.
	if r := rep.Metrics["Triangle-Count/gbbs_dram_over_sage_dram"]; r < 0.4 || r > 2.5 {
		t.Fatalf("triangle counting should be comparable across designs, ratio %.2f", r)
	}
}

func TestTable1Shape(t *testing.T) {
	rep := RunTable1(testScale)
	for key, v := range rep.Metrics {
		switch {
		case strings.Contains(key, "/Sage/growth"):
			if v != 1.0 {
				t.Fatalf("%s = %.3f, Sage cost must be independent of omega", key, v)
			}
		case strings.Contains(key, "/GBBS-NVRAM/growth"):
			if v <= 1.0 {
				t.Fatalf("%s = %.3f, GBBS cost must grow with omega", key, v)
			}
		}
	}
	if len(rep.Rows) != 12 {
		t.Fatalf("expected 6 problems x 2 systems, got %d rows", len(rep.Rows))
	}
}

func TestTable2Shape(t *testing.T) {
	rep := RunTable2(testScale)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	// Social/web graphs sit in the paper's davg envelope; the road grid
	// is sparse.
	if rep.Metrics["rmat-web/davg"] < 10 {
		t.Fatal("web graph below the Figure 2 density line")
	}
	if rep.Metrics["grid-road/davg"] > 10 {
		t.Fatal("road network unexpectedly dense")
	}
}

func TestTable3Shape(t *testing.T) {
	rep := RunTable3(testScale)
	if avg := rep.Metrics["avg/semiext_over_sage"]; avg < 3 {
		t.Fatalf("semi-external engine only %.1fx more expensive (paper ~9-12x)", avg)
	}
	for _, key := range []string{"BFS", "SSSP", "Connectivity", "PageRank(1 iter)"} {
		if r := rep.Metrics[key+"/semiext_over_sage"]; r < 1 {
			t.Fatalf("%s: semi-external beat Sage (%.2f)", key, r)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rep := RunTable4(testScale)
	iw64 := rep.Metrics["bs64/intersection_work"]
	iw256 := rep.Metrics["bs256/intersection_work"]
	if iw64 != iw256 {
		t.Fatalf("intersection work should be invariant: %v vs %v", iw64, iw256)
	}
	tw64 := rep.Metrics["bs64/total_work"]
	tw128 := rep.Metrics["bs128/total_work"]
	tw256 := rep.Metrics["bs256/total_work"]
	if !(tw64 < tw128 && tw128 < tw256) {
		t.Fatalf("total work should grow with block size: %v %v %v", tw64, tw128, tw256)
	}
	if c64, c256 := rep.Metrics["bs64/cost"], rep.Metrics["bs256/cost"]; c64 >= c256 {
		t.Fatalf("cost should grow with block size: %v vs %v", c64, c256)
	}
}

func TestTable5Shape(t *testing.T) {
	rep := RunTable5(testScale)
	sparse := rep.Metrics["edgeMapSparse/peak"]
	blocked := rep.Metrics["edgeMapBlocked/peak"]
	chunked := rep.Metrics["edgeMapChunked/peak"]
	if chunked >= sparse {
		t.Fatalf("chunked peak %v >= sparse peak %v", chunked, sparse)
	}
	if chunked >= blocked {
		t.Fatalf("chunked peak %v >= blocked peak %v", chunked, blocked)
	}
	if gain := rep.Metrics["direction_opt_gain"]; gain < 1.5 {
		t.Fatalf("direction optimization gain %.1fx too small (paper 3.1x)", gain)
	}
}

func TestSec52Shape(t *testing.T) {
	rep := RunSec52(testScale)
	cross := rep.Metrics["cross-socket/rel"]
	repl := rep.Metrics["replicated/rel"]
	if cross < 3.5 || cross > 3.9 {
		t.Fatalf("cross-socket ratio %.2f, want ~3.7", cross)
	}
	if repl > 0.7 || repl < 0.55 {
		t.Fatalf("replicated ratio %.2f, want ~0.625 (1.6x faster)", repl)
	}
}

func TestReportFormatting(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "t",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{"1", "22"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	out := rep.String()
	for _, want := range []string{"== x: t ==", "A", "333", "-- note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(10)
	b := NewWorkload(10)
	if a.G.NumEdges() != b.G.NumEdges() || a.WG.NumEdges() != b.WG.NumEdges() {
		t.Fatal("workload not deterministic")
	}
}

func TestSetCoverInstanceLayout(t *testing.T) {
	w := NewWorkload(8)
	if w.SetCover.NumVertices() != 2*w.G.NumVertices() {
		t.Fatal("bipartite layout wrong")
	}
	// Sets only connect to elements.
	ns := w.NumSets
	for v := uint32(0); v < ns; v++ {
		for _, u := range w.SetCover.Neighbors(v) {
			if u < ns {
				t.Fatalf("set %d adjacent to set %d", v, u)
			}
		}
	}
}

func TestAppD1Shape(t *testing.T) {
	rep := RunAppD1(testScale)
	base := rep.Metrics["original/count"]
	if base <= 0 {
		t.Fatal("no triangles counted")
	}
	for _, ord := range []string{"degree", "random"} {
		if rep.Metrics[ord+"/count"] != base {
			t.Fatalf("%s ordering changed the count", ord)
		}
	}
	// The work profiles must differ across orderings (the D.1 effect).
	if rep.Metrics["degree/intersection"] == rep.Metrics["random/intersection"] {
		t.Fatal("orderings produced identical work profiles (suspicious)")
	}
}
