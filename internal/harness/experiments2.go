package harness

import (
	"fmt"
	"time"

	"sage/internal/algos"
	"sage/internal/compress"
	"sage/internal/gen"
	"sage/internal/graph"
	"sage/internal/numa"
	"sage/internal/parallel"
	"sage/internal/psam"
	"sage/internal/semiext"
	"sage/internal/traverse"
)

// RunFig2 regenerates Figure 2: the vertex-count vs average-degree
// envelope of the 42-graph corpus, and the >90%-above-10 claim.
func RunFig2() *Report {
	entries := gen.Fig2Corpus(42)
	rep := &Report{
		ID:      "fig2",
		Title:   "Synthetic corpus matching the SNAP/LAW envelope (42 graphs)",
		Columns: []string{"Graph", "Kind", "n", "m/n"},
	}
	dense := 0
	for _, e := range entries {
		if e.AvgDegree >= 10 {
			dense++
		}
		rep.Rows = append(rep.Rows, []string{
			e.Name, e.Kind, fmt.Sprintf("%d", e.N), fmt.Sprintf("%.1f", e.AvgDegree),
		})
	}
	frac := float64(dense) / float64(len(entries))
	rep.Metric("frac_davg_ge_10", frac)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%.0f%% of the corpus has m/n >= 10 (paper: over 90%%)", 100*frac))
	return rep
}

// RunFig6 regenerates Figure 6: self-relative speedup (T1/Tp) of every
// problem, sweeping the worker count, with the parallel wall-clock time
// annotated as in the figure.
func RunFig6(scale int) *Report {
	w := NewWorkload(scale)
	maxP := parallel.Workers()
	rep := &Report{
		ID:      "fig6",
		Title:   fmt.Sprintf("Self-relative speedup on RMAT scale %d with %d workers", scale, maxP),
		Columns: []string{"Problem", "T1", fmt.Sprintf("T%d", maxP), "Speedup"},
	}
	defer parallel.SetWorkers(maxP)
	cfg := SageConfig()
	for _, p := range Problems() {
		parallel.SetWorkers(1)
		_, t1 := cfg.run(p, w)
		parallel.SetWorkers(maxP)
		_, tp := cfg.run(p, w)
		speedup := float64(t1) / float64(tp)
		rep.Rows = append(rep.Rows, []string{
			p.Name, fmtDur(t1), fmtDur(tp), fmt.Sprintf("%.1fx", speedup),
		})
		rep.Metric(p.Name+"/speedup", speedup)
	}
	rep.Notes = append(rep.Notes,
		"Paper reports 9-63x on 48 cores / 96 hyper-threads; this machine has fewer cores, so absolute speedups are proportionally lower.")
	return rep
}

// RunTable2 regenerates Table 2: the graph inputs with their sizes.
func RunTable2(scale int) *Report {
	rep := &Report{
		ID:      "table2",
		Title:   "Graph inputs (synthetic stand-ins for Table 2)",
		Columns: []string{"Graph", "Vertices", "Edges(arcs)", "davg"},
	}
	add := func(name string, g *graph.Graph) {
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%d", g.NumVertices()),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%.1f", float64(g.NumEdges())/float64(g.NumVertices())),
		})
		rep.Metric(name+"/davg", float64(g.NumEdges())/float64(g.NumVertices()))
	}
	add("rmat-social", gen.RMAT(scale, 16, 1))
	add("rmat-web", gen.RMAT(scale-1, 64, 2))
	add("powerlaw", gen.PowerLaw(1<<(scale-1), 8, 3))
	add("erdos-renyi", gen.ErdosRenyi(1<<(scale-1), 1<<(scale+2), 4))
	add("grid-road", gen.Grid2D(1<<(scale/2), 1<<(scale/2), false))
	return rep
}

// RunTable3 regenerates Table 3: Sage against the semi-external
// streaming engine (GridGraph-style over a simulated block device) on
// BFS, SSSP, Connectivity, and PageRank.
func RunTable3(scale int) *Report {
	w := NewWorkload(scale)
	grid := semiext.NewGrid(w.G, 8)
	wgrid := semiext.NewGrid(w.WG, 8)
	rep := &Report{
		ID:      "table3",
		Title:   "Sage vs semi-external streaming engine (simulated SSD pages)",
		Columns: []string{"Problem", "Sage cost", "SemiExt cost", "SemiExt/Sage"},
	}
	type entry struct {
		name string
		sage func(o *algos.Options)
		semi func() int64
	}
	entries := []entry{
		{"BFS", func(o *algos.Options) { algos.BFS(w.G, o, 0) }, func() int64 {
			grid.Dev = freshDevice()
			grid.BFS(0)
			return grid.Dev.Cost()
		}},
		{"SSSP", func(o *algos.Options) { algos.BellmanFord(w.WG, o, 0) }, func() int64 {
			wgrid.Dev = freshDevice()
			wgrid.SSSP(0, func(u, v uint32) int32 {
				wt, _ := w.WG.EdgeWeight(u, v)
				return wt
			})
			return wgrid.Dev.Cost()
		}},
		{"Connectivity", func(o *algos.Options) { algos.Connectivity(w.G, o) }, func() int64 {
			grid.Dev = freshDevice()
			grid.Connectivity()
			return grid.Dev.Cost()
		}},
		{"PageRank(1 iter)", func(o *algos.Options) {
			n := int(w.G.NumVertices())
			prev := make([]float64, n)
			next := make([]float64, n)
			algos.PageRankIter(w.G, o, prev, next)
		}, func() int64 {
			grid.Dev = freshDevice()
			grid.PageRank(1)
			return grid.Dev.Cost()
		}},
	}
	var ratios []float64
	for _, e := range entries {
		env := psam.NewEnv(psam.AppDirect)
		o := algos.Defaults().WithEnv(env)
		e.sage(o)
		sageCost := float64(env.Cost())
		semiCost := float64(e.semi())
		ratio := semiCost / sageCost
		ratios = append(ratios, ratio)
		rep.Rows = append(rep.Rows, []string{
			e.name, fmtCost(sageCost), fmtCost(semiCost), fmtRatio(ratio),
		})
		rep.Metric(e.name+"/semiext_over_sage", ratio)
	}
	rep.Metric("avg/semiext_over_sage", geoMean(ratios))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Semi-external streaming is %.1fx more expensive on average (paper: 9.3-12x vs FlashGraph/Mosaic, up to 8024x vs GridGraph)",
		geoMean(ratios)))
	return rep
}

// RunTable4 regenerates Table 4: the filter-block-size tradeoff for
// triangle counting on a compressed graph — intersection work is
// invariant while total decode work and cost grow with the block size.
func RunTable4(scale int) *Report {
	g := gen.RMAT(scale, 16, 0x5a6e+uint64(scale))
	rep := &Report{
		ID:      "table4",
		Title:   "Triangle counting vs filter block size (compressed input)",
		Columns: []string{"BlockSize", "IntersectionWork", "TotalWork", "PSAM cost", "Time"},
	}
	var firstIW int64
	for _, bs := range []int{64, 128, 256} {
		cg := compress.Compress(g, bs)
		env := psam.NewEnv(psam.AppDirect)
		o := algos.Defaults().WithEnv(env)
		o.FB = bs
		start := time.Now()
		res := algos.TriangleCount(cg, o)
		elapsed := time.Since(start)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", bs),
			fmt.Sprintf("%d", res.IntersectionWork),
			fmt.Sprintf("%d", res.TotalWork),
			fmtCost(float64(env.Cost())),
			fmtDur(elapsed),
		})
		rep.Metric(fmt.Sprintf("bs%d/total_work", bs), float64(res.TotalWork))
		rep.Metric(fmt.Sprintf("bs%d/intersection_work", bs), float64(res.IntersectionWork))
		rep.Metric(fmt.Sprintf("bs%d/cost", bs), float64(env.Cost()))
		if firstIW == 0 {
			firstIW = res.IntersectionWork
		}
	}
	rep.Notes = append(rep.Notes,
		"Intersection work is fixed by the graph and ordering; total (decode) work grows with the block size (Appendix D.1).")
	return rep
}

// RunTable5 regenerates Table 5 (Appendix D.2): peak DRAM usage and time
// of a full BFS under the three sparse-traversal strategies, forced
// sparse-only as in the appendix, plus the direction-optimization
// speedup comparison.
func RunTable5(scale int) *Report {
	// Two scales above the other experiments with double the density: the
	// memory gap between the strategies is proportional to the widest
	// frontier's edge count, which must dwarf the O(n + P*chunk) floor.
	g := gen.RMAT(scale+2, 32, 0x5a6e)
	rep := &Report{
		ID:      "table5",
		Title:   "BFS memory usage by traversal strategy (sparse-only, Appendix D.2)",
		Columns: []string{"Algorithm", "Peak DRAM (words)", "PSAM cost", "Time"},
	}
	run := func(strategy traverse.Strategy, forceSparse bool) (int64, int64, time.Duration) {
		env := psam.NewEnv(psam.AppDirect)
		o := algos.Defaults().WithEnv(env)
		o.Traverse.Strategy = strategy
		o.Traverse.ForceSparse = forceSparse
		start := time.Now()
		algos.BFS(g, o, 0)
		return env.Space.Peak(), env.Cost(), time.Since(start)
	}
	for _, s := range []traverse.Strategy{traverse.Sparse, traverse.Blocked, traverse.Chunked} {
		peak, cost, dur := run(s, true)
		rep.Rows = append(rep.Rows, []string{
			s.String(), fmt.Sprintf("%d", peak), fmtCost(float64(cost)), fmtDur(dur),
		})
		rep.Metric(s.String()+"/peak", float64(peak))
	}
	// Direction optimization: sparse-only vs direction-optimized chunked.
	_, costSparse, _ := run(traverse.Chunked, true)
	_, costAuto, _ := run(traverse.Chunked, false)
	ratio := float64(costSparse) / float64(costAuto)
	rep.Metric("direction_opt_gain", ratio)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Direction optimization reduces BFS cost by %.1fx over sparse-only (paper: 3.1x on Hyperlink2012)", ratio))
	return rep
}

// RunSec52 regenerates the §5.2 NUMA micro-benchmark: degree counting
// under the three graph layouts.
func RunSec52(scale int) *Report {
	g := gen.RMAT(scale, 16, 0x52)
	_, words := numa.DegreeCount(g)
	m := numa.DefaultModel()
	p := 2 * parallel.Workers() // model both sockets fully populated
	rep := &Report{
		ID:      "sec52",
		Title:   "NUMA graph layout micro-benchmark (degree counting)",
		Columns: []string{"Layout", "Sim time", "vs single-socket"},
	}
	single := m.SimulatedTime(numa.SingleSocket, words, p)
	for _, pl := range []numa.Placement{numa.SingleSocket, numa.Interleaved, numa.Replicated} {
		tm := m.SimulatedTime(pl, words, p)
		rep.Rows = append(rep.Rows, []string{
			pl.String(), fmt.Sprintf("%.0f", tm), fmtRatio(tm / single),
		})
		rep.Metric(pl.String()+"/rel", tm/single)
	}
	rep.Notes = append(rep.Notes,
		"Paper §5.2: cross-socket 3.7x slower than single-socket; replicated 1.6x faster than single-socket (6.2x faster than cross-socket).")
	return rep
}

// RunAll executes every experiment at the given scale.
func RunAll(scale int) []*Report {
	return []*Report{
		RunFig1(scale), RunFig2(), RunFig6(scale), RunFig7(scale),
		RunTable1(scale), RunTable2(scale), RunTable3(scale),
		RunTable4(scale), RunTable5(scale), RunSec52(scale),
		RunAppD1(scale),
	}
}

// freshDevice resets page accounting between semi-external runs.
func freshDevice() *semiext.Device {
	return &semiext.Device{PageCost: semiext.DefaultPageCost}
}

// RunAppD1 regenerates the Appendix D.1 ordering study: triangle
// counting's decode work under the original, degree (hubs-first), and
// random vertex orderings of the same graph — the count is invariant,
// the work profile is not.
func RunAppD1(scale int) *Report {
	g := gen.RMAT(scale, 16, 0xd1)
	rep := &Report{
		ID:      "appD1",
		Title:   "Triangle counting vs vertex ordering (Appendix D.1)",
		Columns: []string{"Ordering", "Triangles", "IntersectionWork", "TotalWork"},
	}
	runTC := func(name string, h *graph.Graph) {
		env := psam.NewEnv(psam.AppDirect)
		o := algos.Defaults().WithEnv(env)
		res := algos.TriangleCount(h, o)
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%d", res.Count),
			fmt.Sprintf("%d", res.IntersectionWork),
			fmt.Sprintf("%d", res.TotalWork),
		})
		rep.Metric(name+"/count", float64(res.Count))
		rep.Metric(name+"/intersection", float64(res.IntersectionWork))
	}
	runTC("original", g)
	runTC("degree", g.Relabel(g.DegreeOrder()))
	runTC("random", g.Relabel(g.RandomOrder(17)))
	rep.Notes = append(rep.Notes,
		"The triangle count is ordering-invariant; the work counters shift with the ordering — the effect Appendix D.1 reports between ClueWeb and the Hyperlink graphs.")
	return rep
}
