package numa

import (
	"testing"

	"sage/internal/gen"
)

func TestDegreeCountWords(t *testing.T) {
	g := gen.RMAT(9, 8, 1)
	counts, words := DegreeCount(g)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if counts[v] != g.Degree(v) {
			t.Fatalf("count[%d]=%d deg=%d", v, counts[v], g.Degree(v))
		}
	}
	want := int64(g.NumEdges()) + int64(g.NumVertices())
	if words != want {
		t.Fatalf("words=%d want %d (n+m)", words, want)
	}
}

func TestPlacementRatiosMatchSection52(t *testing.T) {
	m := DefaultModel()
	const words = int64(1 << 30)
	const p = 96
	single := m.SimulatedTime(SingleSocket, words, p)
	cross := m.SimulatedTime(Interleaved, words, p)
	repl := m.SimulatedTime(Replicated, words, p)
	// §5.2: cross-socket ≈ 3.7x slower than single-socket; replicated ≈
	// 1.6x faster than single-socket; and ≈ 6.2x faster than cross-socket.
	if r := cross / single; r < 3.5 || r > 3.9 {
		t.Fatalf("cross/single = %.2f, want ~3.7", r)
	}
	if r := single / repl; r < 1.5 || r > 1.7 {
		t.Fatalf("single/repl = %.2f, want ~1.6", r)
	}
	if r := cross / repl; r < 5.5 || r > 6.5 {
		t.Fatalf("cross/repl = %.2f, want ~6.2", r)
	}
}

func TestPlacementNames(t *testing.T) {
	if SingleSocket.String() != "single-socket" || Interleaved.String() != "cross-socket" ||
		Replicated.String() != "replicated" {
		t.Fatal("placement names")
	}
}
